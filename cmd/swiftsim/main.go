// Command swiftsim runs one job on the simulated cluster under any of the
// four engines and reports the schedule: graphlets, per-stage phases and
// end-to-end latency.
//
// Usage:
//
//	swiftsim -job q9 -system swift
//	swiftsim -job terasort=1000x1000 -system spark -machines 100
//	swiftsim -job q13 -system swift -failstage J3 -failat 0.4
//	swiftsim -submit 127.0.0.1:7411 -jobs 80 -drain   (client mode: burst-submit to swiftd)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"swift/internal/baseline"
	"swift/internal/cluster"
	"swift/internal/core"
	"swift/internal/dag"
	"swift/internal/obs"
	"swift/internal/sim"
	"swift/internal/simrun"
	"swift/internal/tpch"
)

func main() {
	jobName := flag.String("job", "q9", "q1..q22, or terasort=MxN")
	system := flag.String("system", "swift", "swift | spark | jetscope | bubble")
	machines := flag.Int("machines", 100, "cluster machines")
	execs := flag.Int("executors", 60, "executors per machine")
	seed := flag.Int64("seed", 1, "simulation seed")
	failStage := flag.String("failstage", "", "inject a failure into this stage")
	failAt := flag.Float64("failat", 0.5, "failure time as a fraction of the clean runtime")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file")
	stats := flag.Bool("stats", false, "print the observability snapshot (critical path + counters)")
	submitAddr := flag.String("submit", "", "client mode: burst-submit generated jobs to the swiftd at this address")
	submitJobs := flag.Int("jobs", 40, "client mode: number of jobs to submit")
	tenant := flag.String("tenant", "", "client mode: tenant label on submitted jobs (empty = default tenant)")
	drain := flag.Bool("drain", false, "client mode: drain the server after submitting and wait for it to empty")
	flag.Parse()

	if *submitAddr != "" {
		os.Exit(runSubmit(*submitAddr, *submitJobs, *seed, *tenant, *drain))
	}

	job, err := buildJob(*jobName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swiftsim:", err)
		os.Exit(2)
	}
	opts, err := systemOptions(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swiftsim:", err)
		os.Exit(2)
	}

	ccfg := cluster.Config{Machines: *machines, ExecutorsPerMachine: *execs, Model: cluster.DefaultModel()}

	// The observed run is the faulty one when a failure is injected (that
	// is the interesting trace); otherwise the clean run.
	var rec *obs.Recorder
	if *tracePath != "" || *stats {
		rec = obs.New()
	}
	cleanRec := rec
	if *failStage != "" {
		cleanRec = nil
	}

	// Clean run (also the baseline for failure injection timing).
	clean := runOnce(job.Clone(), ccfg, opts, *seed, "", 0, cleanRec)
	fmt.Printf("system=%s job=%s machines=%d executors=%d\n", *system, job.ID, *machines, *machines**execs)
	fmt.Printf("stages=%d tasks=%d\n", job.NumStages(), job.NumTasks())
	printGraphlets(job, opts)
	fmt.Printf("\nclean run: %.2fs\n", clean.Duration())
	printPhases(clean)

	if *failStage != "" {
		at := clean.Duration() * *failAt
		faulty := runOnce(job.Clone(), ccfg, opts, *seed, *failStage, at, rec)
		fmt.Printf("\nwith failure in %s at %.1fs: %.2fs (%+.1f%%), restarts=%d resends=%d\n",
			*failStage, at, faulty.Duration(), (faulty.Duration()/clean.Duration()-1)*100,
			faulty.Restarts, faulty.Resends)
	}

	if *stats {
		fmt.Println()
		if err := rec.WriteBreakdown(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "swiftsim:", err)
			os.Exit(1)
		}
		if _, err := rec.Registry().WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "swiftsim:", err)
			os.Exit(1)
		}
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, rec); err != nil {
			fmt.Fprintln(os.Stderr, "swiftsim:", err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace written to %s (%d events)\n", *tracePath, len(rec.Events()))
	}
}

// writeTrace dumps the recorder's Chrome trace-event JSON to path.
func writeTrace(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func buildJob(name string) (*dag.Job, error) {
	name = strings.ToLower(strings.TrimSpace(name))
	if strings.HasPrefix(name, "terasort=") {
		var m, n int
		if _, err := fmt.Sscanf(strings.TrimPrefix(name, "terasort="), "%dx%d", &m, &n); err != nil {
			return nil, fmt.Errorf("bad terasort size %q (want MxN)", name)
		}
		return tpch.Terasort(m, n), nil
	}
	var q int
	if _, err := fmt.Sscanf(name, "q%d", &q); err != nil || q < 1 || q > 22 {
		return nil, fmt.Errorf("unknown job %q (q1..q22 or terasort=MxN)", name)
	}
	return tpch.Query(q), nil
}

func systemOptions(name string) (core.Options, error) {
	switch strings.ToLower(name) {
	case "swift":
		return baseline.Swift(), nil
	case "spark":
		return baseline.Spark(), nil
	case "jetscope":
		return baseline.JetScope(), nil
	case "bubble":
		return baseline.Bubble(baseline.DefaultBubbleTasks, 96<<20), nil
	}
	return core.Options{}, fmt.Errorf("unknown system %q", name)
}

func runOnce(job *dag.Job, ccfg cluster.Config, opts core.Options, seed int64, failStage string, failAt float64, rec *obs.Recorder) *simrun.JobResult {
	opts.Obs = rec
	r := simrun.New(simrun.Config{Cluster: ccfg, Options: opts, Seed: seed})
	r.SubmitAt(0, job)
	if failStage != "" {
		r.InjectTaskFailureAt(sim.FromSeconds(failAt), job.ID, failStage, core.FailCrash)
	}
	res := r.Run()
	jr := res.Jobs[job.ID]
	if jr == nil || !jr.Completed {
		fmt.Fprintln(os.Stderr, "swiftsim: job did not complete")
		os.Exit(1)
	}
	return jr
}

func printGraphlets(job *dag.Job, opts core.Options) {
	gs, err := opts.Partition(job)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swiftsim: partition:", err)
		return
	}
	fmt.Printf("graphlets=%d\n", len(gs))
	for _, g := range gs {
		fmt.Printf("  %s deps=%v\n", g, g.DependsOn)
	}
}

func printPhases(jr *simrun.JobResult) {
	stages := make([]string, 0, len(jr.Phases))
	for s := range jr.Phases {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	fmt.Printf("%-6s %8s %8s %8s %8s\n", "stage", "launch", "read", "process", "write")
	for _, s := range stages {
		p := jr.Phases[s]
		fmt.Printf("%-6s %8.2f %8.2f %8.2f %8.2f\n", s, p.Launch, p.ShuffleRead, p.Process, p.ShuffleWrite)
	}
}
