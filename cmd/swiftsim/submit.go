// Client mode: swiftsim -submit <addr> bursts generated jobs at a running
// swiftd and reports the admission decisions, exercising the flow
// controller's accept/queue/shed ladder from outside the process.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"time"

	"swift/internal/rpc"
	"swift/internal/trace"
)

// runSubmit generates jobs jobs from seed, submits them all at once to the
// swiftd at addr (labelled with tenant when non-empty), prints the decision
// tally, and (with -drain) asks the server to drain and waits until
// everything admitted has finished.
func runSubmit(addr string, jobs int, seed int64, tenant string, drain bool) int {
	fc, err := rpc.DialFlow(addr, 5*time.Second)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swiftsim: dial %s: %v\n", addr, err)
		return 1
	}
	defer fc.Close()

	tr := trace.Generate(trace.Spec{Jobs: jobs, Seed: seed})
	for _, j := range tr.Jobs {
		j.Job.Tenant = tenant
		if tenant != "" {
			// Prefix IDs so concurrent same-seed clients for different
			// tenants do not collide in the server's dedup map.
			j.Job.ID = tenant + "-" + j.Job.ID
		}
	}
	var admitted, queued, shed, failed int
	for _, j := range tr.Jobs {
		var buf bytes.Buffer
		one := &trace.Trace{Jobs: []trace.Job{j}}
		if err := one.Write(&buf); err != nil {
			fmt.Fprintf(os.Stderr, "swiftsim: encode %s: %v\n", j.Job.ID, err)
			return 1
		}
		rep, err := fc.Submit(j.Job.ID, buf.Bytes())
		if err != nil {
			fmt.Fprintf(os.Stderr, "swiftsim: submit %s: %v\n", j.Job.ID, err)
			failed++
			continue
		}
		switch rep.Decision {
		case "admitted":
			admitted++
		case "queued":
			queued++
		case "shed":
			shed++
		case "":
			fmt.Fprintf(os.Stderr, "swiftsim: submit %s rejected: %s\n", j.Job.ID, rep.Reason)
			failed++
		default:
			fmt.Fprintf(os.Stderr, "swiftsim: submit %s: unknown decision %q (%s)\n", j.Job.ID, rep.Decision, rep.Reason)
			failed++
		}
	}
	fmt.Printf("submitted=%d admitted=%d queued=%d shed=%d failed=%d\n",
		len(tr.Jobs), admitted, queued, shed, failed)

	if st, err := fc.Status(); err == nil {
		fmt.Printf("server: admitted=%d queued=%d shed=%d inflight=%d/%d level=%s\n",
			st.Admitted, st.Queued, st.Shed,
			st.PendingTasks+st.RunningTasks, st.TotalExecutors, st.Level)
		for _, t := range st.Tenants {
			budget := "unbounded"
			if t.Budget > 0 {
				budget = fmt.Sprintf("%d", t.Budget)
			}
			fmt.Printf("tenant %s: admitted=%d queued=%d shed=%d waitq=%d inflight=%d budget=%s\n",
				t.Tenant, t.Admitted, t.Queued, t.Shed, t.QueueLen, t.InFlight, budget)
		}
	} else {
		fmt.Fprintf(os.Stderr, "swiftsim: status: %v\n", err)
	}

	if drain {
		if err := fc.Drain(); err != nil {
			fmt.Fprintf(os.Stderr, "swiftsim: drain: %v\n", err)
			return 1
		}
		// Poll until the server empties or exits. A connection error after
		// a drain request means the server finished and shut down — that is
		// the clean outcome, not a failure.
		for {
			time.Sleep(100 * time.Millisecond)
			st, err := fc.Status()
			if err != nil {
				if errors.Is(err, rpc.ErrClosed) {
					fmt.Fprintln(os.Stderr, "swiftsim: client closed while draining")
					return 1
				}
				fmt.Println("drain: server exited")
				return 0
			}
			if st.LiveJobs == 0 && st.FlowQueueLen == 0 {
				fmt.Println("drain: server idle")
				return 0
			}
		}
	}
	return 0
}
