// Command swiftsql parses a statement in the Swift programming language
// (Section II-A, Fig. 1), lowers it to the DAG job model and prints the
// plan plus its graphlet partition — the Fig. 1 → Fig. 4 pipeline.
//
// Usage:
//
//	swiftsql -q9                 # use the paper's Fig. 1 query
//	swiftsql 'select k, sum(v) from tpch_orders group by k order by k'
//	swiftsql -file query.sql -run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"swift/internal/baseline"
	"swift/internal/cluster"
	"swift/internal/graphlet"
	"swift/internal/simrun"
	"swift/internal/sqlparse"
	"swift/internal/tpch"
)

func main() {
	file := flag.String("file", "", "read the query from a file")
	useQ9 := flag.Bool("q9", false, "use the paper's Fig. 1 TPC-H Q9 text")
	run := flag.Bool("run", false, "also run the plan on the simulated cluster")
	machines := flag.Int("machines", 100, "cluster machines for -run")
	flag.Parse()

	var src string
	switch {
	case *useQ9:
		src = tpch.Q9SwiftSQL
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	case flag.NArg() > 0:
		src = strings.Join(flag.Args(), " ")
	default:
		fmt.Fprintln(os.Stderr, "swiftsql: provide a query, -file or -q9")
		os.Exit(2)
	}

	job, err := sqlparse.ParseAndPlan("swiftsql", src)
	if err != nil {
		fatal(err)
	}
	fmt.Print(job)
	gs, err := graphlet.Partition(job)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\npartitioned into %d graphlets:\n", len(gs))
	for _, g := range gs {
		fmt.Printf("  %s deps=%v\n", g, g.DependsOn)
	}

	if *run {
		r := simrun.New(simrun.Config{
			Cluster: cluster.Config{Machines: *machines, ExecutorsPerMachine: 60, Model: cluster.DefaultModel()},
			Options: baseline.Swift(),
			Seed:    1,
		})
		r.SubmitAt(0, job)
		res := r.Run()
		jr := res.Jobs[job.ID]
		if jr == nil || !jr.Completed {
			fatal(fmt.Errorf("job did not complete"))
		}
		fmt.Printf("\nsimulated run on %d machines: %.2fs\n", *machines, jr.Duration())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swiftsql:", err)
	os.Exit(1)
}
