// Command swiftbench regenerates the tables and figures of the paper's
// evaluation (Section V) on the simulated platform.
//
// Usage:
//
//	swiftbench [-reduced] [-seed N] [-run fig9a,table1,...]
//
// With no -run flag every experiment runs in paper order. The -reduced
// flag shrinks workloads to the CI-sized configurations used by the
// repository's benchmarks.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"swift/internal/exp"
)

func main() {
	reduced := flag.Bool("reduced", false, "run the CI-sized configurations")
	seed := flag.Int64("seed", 1, "simulation seed")
	run := flag.String("run", "", "comma-separated experiment ids (default: all); one of "+strings.Join(exp.Names(), ","))
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(exp.Names(), "\n"))
		return
	}

	cfg := exp.Config{Reduced: *reduced, Seed: *seed}
	order := []string{"fig3", "fig8", "fig9a", "fig9b", "table1", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16"}
	if *run != "" {
		order = strings.Split(*run, ",")
	}
	for i, name := range order {
		name = strings.TrimSpace(name)
		if i > 0 {
			fmt.Println()
		}
		t0 := time.Now()
		ok, err := exp.Run(name, cfg, os.Stdout)
		if !ok {
			fmt.Fprintf(os.Stderr, "swiftbench: unknown experiment %q (try -list)\n", name)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "swiftbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s in %.1fs]\n", name, time.Since(t0).Seconds())
	}
}
