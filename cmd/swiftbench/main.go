// Command swiftbench regenerates the tables and figures of the paper's
// evaluation (Section V) on the simulated platform.
//
// Usage:
//
//	swiftbench [-reduced] [-seed N] [-run fig9a,table1,...] [-workers K]
//
// With no -run flag every experiment runs in paper order. The -reduced
// flag shrinks workloads to the CI-sized configurations used by the
// repository's benchmarks. -workers fans experiments across a worker
// pool; reports still print in input order. -hashes prints one
// "name hash" line per experiment instead of the reports — the obs
// stream hashes that witness a parallel sweep matching a serial one.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"swift/internal/exp"
)

func main() {
	reduced := flag.Bool("reduced", false, "run the CI-sized configurations")
	seed := flag.Int64("seed", 1, "simulation seed")
	run := flag.String("run", "", "comma-separated experiment ids (default: all); one of "+strings.Join(exp.Names(), ","))
	workers := flag.Int("workers", 1, "parallel experiment workers (0 = GOMAXPROCS)")
	hashes := flag.Bool("hashes", false, "print per-experiment obs stream hashes instead of reports")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(exp.Names(), "\n"))
		return
	}

	cfg := exp.Config{Reduced: *reduced, Seed: *seed}
	order := []string{"fig3", "fig8", "fig9a", "fig9b", "table1", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16"}
	if *run != "" {
		order = strings.Split(*run, ",")
		for i := range order {
			order[i] = strings.TrimSpace(order[i])
		}
	}

	t0 := time.Now()
	results := exp.RunAll(order, cfg, *workers)
	printed := 0
	for _, r := range results {
		if errors.Is(r.Err, exp.ErrUnknown) {
			fmt.Fprintf(os.Stderr, "swiftbench: unknown experiment %q (try -list)\n", r.Name)
			os.Exit(2)
		}
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "swiftbench: %s: %v\n", r.Name, r.Err)
			os.Exit(1)
		}
		if *hashes {
			fmt.Printf("%s %016x\n", r.Name, r.Hash)
			continue
		}
		if printed > 0 {
			fmt.Println()
		}
		fmt.Print(r.Output)
		printed++
	}
	if !*hashes {
		fmt.Printf("[%d experiments in %.1fs on %d workers]\n", len(results), time.Since(t0).Seconds(), *workers)
	}
}
