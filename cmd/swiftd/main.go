// Command swiftd runs the Swift controller as a long-running service: it
// accepts streaming job submissions over the rpc plane, pushes every one
// through the global flow controller (admission control, backpressure,
// load shedding — see internal/flow), schedules admitted jobs on a
// simulated cluster, and executes tasks on wall-clock timers scaled by
// -timescale. SIGINT/SIGTERM or the flow.drain endpoint start a graceful
// drain: new submissions shed, queued work re-admits, and the process
// exits 0 once nothing is in flight.
//
// Submit jobs with `swiftsim -submit <addr>` (see README).
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"swift/internal/cluster"
	"swift/internal/core"
	"swift/internal/dag"
	"swift/internal/flow"
	"swift/internal/obs"
	"swift/internal/rpc"
	"swift/internal/sched"
	"swift/internal/sim"
	"swift/internal/trace"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7411", "listen address (use :0 for an ephemeral port)")
		addrFile  = flag.String("addrfile", "", "write the bound address to this file once listening")
		machines  = flag.Int("machines", 8, "simulated machines")
		execs     = flag.Int("executors", 4, "executors per machine")
		timescale = flag.Float64("timescale", 100, "virtual task seconds per wall second")
		budget    = flag.Int("budget", 0, "max in-flight tasks (0 = 4x executors)")
		maxQueue  = flag.Int("maxqueue", 64, "admission wait-queue bound")
		rate      = flag.Float64("rate", 0, "token-bucket admission rate, jobs/sec (0 = ungoverned)")
		burst     = flag.Int("burst", 0, "token-bucket capacity (0 = derive from rate)")
		tbudgets  = flag.String("tenantbudget", "", `per-tenant in-flight task budgets, "name=N,name=N" (unlisted tenants unbounded)`)
		policy    = flag.String("policy", "fifo", `scheduling policy: "fifo" or "fair" (equal-weight fair share with borrowing)`)
		drainWait = flag.Duration("drainwait", 120*time.Second, "max time to wait for a clean drain")
		verbose   = flag.Bool("v", false, "log every admission decision")
	)
	flag.Parse()
	os.Exit(run(*addr, *addrFile, *machines, *execs, *timescale, *budget, *maxQueue, *rate, *burst, *tbudgets, *policy, *drainWait, *verbose))
}

// parseTenantBudgets parses the -tenantbudget flag: comma-separated
// name=N pairs.
func parseTenantBudgets(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad tenant budget %q (want name=N)", pair)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad tenant budget %q: count must be a positive integer", pair)
		}
		out[name] = n
	}
	return out, nil
}

type daemon struct {
	svc       *flow.Service
	reg       *obs.Registry
	start     time.Time
	timescale float64
	verbose   bool

	mu   sync.Mutex
	jobs map[string]*dag.Job // submitted payloads, for task cost lookup

	drainOnce sync.Once
	drainReq  chan struct{}
}

// now is the injected service clock: monotonic wall micros since start.
func (d *daemon) now() sim.Time { return sim.Time(time.Since(d.start).Microseconds()) }

// onActions is the service's action sink: every started task is armed as a
// wall-clock timer that reports completion back into the service. Aborts
// need no timer cancellation — the controller ignores stale attempts.
func (d *daemon) onActions(_ sim.Time, acts []core.Action) {
	for _, a := range acts {
		switch act := a.(type) {
		case core.ActStartTask:
			d.armFinish(act)
		case core.ActJobCompleted:
			if d.verbose {
				fmt.Printf("swiftd: job %s completed\n", act.Job)
			}
		case core.ActJobFailed:
			fmt.Printf("swiftd: job %s failed: %s\n", act.Job, act.Reason)
		case core.ActAbortTask:
			// No timer cancellation needed: the controller ignores the
			// stale attempt's finish report.
		case core.ActResend, core.ActShuffleDegraded, core.ActReplicate:
			// Data-plane directives; the wall-clock driver models task cost
			// only, so transfers (and replica copies) are free.
		case core.ActJobRestarted, core.ActMachineHealthy, core.ActMachineReadOnly:
			// No machine faults or whole-job restarts in service mode.
		}
	}
}

func (d *daemon) armFinish(act core.ActStartTask) {
	d.mu.Lock()
	job := d.jobs[act.Task.Job]
	d.mu.Unlock()
	secs := 0.05 // default virtual task cost when the trace carries none
	if job != nil {
		if st := job.Stage(act.Task.Stage); st != nil && st.Cost.ProcessSecondsPerTask > 0 {
			secs = st.Cost.ProcessSecondsPerTask
		}
	}
	wall := time.Duration(secs / d.timescale * float64(time.Second))
	if wall < 200*time.Microsecond {
		wall = 200 * time.Microsecond
	}
	ref, attempt := act.Task, act.Attempt
	time.AfterFunc(wall, func() { d.svc.TaskFinished(ref, attempt) })
}

// FlowSubmit implements rpc.FlowHandler: decode the trace-encoded job and
// push it through admission.
func (d *daemon) FlowSubmit(id string, payload []byte) (rpc.FlowSubmitReply, error) {
	tr, err := trace.Read(bytes.NewReader(payload))
	if err != nil {
		return rpc.FlowSubmitReply{}, fmt.Errorf("swiftd: decode submission %q: %w", id, err)
	}
	if len(tr.Jobs) != 1 {
		return rpc.FlowSubmitReply{}, fmt.Errorf("swiftd: submission %q carries %d jobs, want exactly 1", id, len(tr.Jobs))
	}
	job := tr.Jobs[0].Job
	d.mu.Lock()
	d.jobs[job.ID] = job
	d.mu.Unlock()
	out, err := d.svc.Submit(job)
	rep := rpc.FlowSubmitReply{
		Decision:         out.Decision.String(),
		Level:            out.Level.String(),
		QueuePos:         out.QueuePos,
		RetryAfterMicros: int64(out.RetryAfter),
	}
	if err != nil {
		rep.Reason = err.Error()
		// Shed/drain rejections carry their flow decision; any other error
		// (duplicate id, scheduler rejection, isolated panic) happened
		// outside the admission state machine, and the zero Outcome must
		// not read as "admitted" on the wire.
		if !errors.Is(err, flow.ErrOverloaded) && !errors.Is(err, flow.ErrDraining) {
			rep.Decision = ""
		}
	}
	if d.verbose {
		fmt.Printf("swiftd: submit %s -> %s (%s) %s\n", job.ID, rep.Decision, rep.Level, rep.Reason)
	}
	return rep, nil
}

// FlowStatus implements rpc.FlowHandler.
func (d *daemon) FlowStatus() (rpc.FlowStatusReply, error) {
	st := d.svc.Status()
	var tenants []rpc.FlowTenantStatus
	for _, t := range st.Tenants {
		tenants = append(tenants, rpc.FlowTenantStatus{
			Tenant: t.Tenant, Admitted: t.Admitted, Queued: t.Queued, Shed: t.Shed,
			QueueLen: t.QueueLen, InFlight: t.InFlight, Budget: t.Budget,
		})
	}
	return rpc.FlowStatusReply{
		Tenants:        tenants,
		LiveJobs:       st.Snapshot.LiveJobs,
		PendingTasks:   st.Snapshot.PendingTasks,
		RunningTasks:   st.Snapshot.RunningTasks,
		DoneTasks:      st.Snapshot.DoneTasks,
		SchedQueueLen:  st.Snapshot.SchedQueueLen,
		FreeExecutors:  st.Snapshot.FreeExecutors,
		TotalExecutors: st.Snapshot.TotalExecutors,
		Admitted:       st.Flow.Admitted,
		Queued:         st.Flow.Queued,
		Shed:           st.Flow.Shed,
		Decisions:      st.Flow.Decisions,
		FlowQueueLen:   st.Flow.QueueLen,
		MaxQueueLen:    st.Flow.MaxQueue,
		Draining:       st.Flow.Draining,
		Level:          st.Level.String(),
		Panics:         st.Panics,
	}, nil
}

// FlowCancel implements rpc.FlowHandler.
func (d *daemon) FlowCancel(id string) (rpc.FlowCancelReply, error) {
	err := d.svc.Cancel(id)
	return rpc.FlowCancelReply{Cancelled: err == nil}, nil
}

// FlowDrain implements rpc.FlowHandler: starts the shutdown sequence.
func (d *daemon) FlowDrain() error {
	d.drainOnce.Do(func() { close(d.drainReq) })
	return nil
}

func run(addr, addrFile string, machines, execs int, timescale float64, budget, maxQueue int, rate float64, burst int, tbudgets, policy string, drainWait time.Duration, verbose bool) int {
	if timescale <= 0 {
		timescale = 1
	}
	tenantBudgets, err := parseTenantBudgets(tbudgets)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swiftd: -tenantbudget: %v\n", err)
		return 1
	}
	copts := core.DefaultOptions()
	switch policy {
	case "", "fifo":
	case "fair":
		copts.Policy = sched.NewFairShare(sched.FairShareConfig{})
	default:
		fmt.Fprintf(os.Stderr, "swiftd: unknown -policy %q (want fifo or fair)\n", policy)
		return 1
	}
	cl := cluster.New(cluster.Config{Machines: machines, ExecutorsPerMachine: execs})
	reg := obs.NewRegistry()
	d := &daemon{
		reg:       reg,
		start:     time.Now(),
		timescale: timescale,
		verbose:   verbose,
		jobs:      make(map[string]*dag.Job),
		drainReq:  make(chan struct{}),
	}
	fcfg := flow.Config{
		MaxInFlightTasks: budget,
		MaxQueue:         maxQueue,
		Rate:             rate,
		Burst:            burst,
		Metrics:          reg,
		TenantBudgets:    tenantBudgets,
	}
	d.svc = flow.NewService(cl, copts, fcfg, d.now)
	d.svc.SetActionSink(d.onActions)

	server := rpc.NewServer()
	rpc.ServeFlow(server, d)
	bound, err := server.Listen(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swiftd: listen %s: %v\n", addr, err)
		return 1
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "swiftd: write addrfile: %v\n", err)
			return 1
		}
	}
	fmt.Printf("swiftd: listening on %s (%d machines x %d executors, budget=%d queue=%d rate=%.1f/s timescale=%.0fx)\n",
		bound, machines, execs, budget, maxQueue, rate, timescale)

	// Periodic tick: refills the token bucket and pumps the wait queue
	// even when no completions arrive.
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	tickDone := make(chan struct{})
	go func() {
		for {
			select {
			case <-tick.C:
				d.svc.Tick()
			case <-tickDone:
				return
			}
		}
	}()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sigc:
		fmt.Printf("swiftd: %v received, draining\n", s)
	case <-d.drainReq:
		fmt.Println("swiftd: drain requested, draining")
	}
	d.svc.Drain()
	code := 0
	select {
	case <-d.svc.Drained():
	case <-time.After(drainWait):
		fmt.Fprintln(os.Stderr, "swiftd: drain timed out")
		code = 1
	case s := <-sigc:
		fmt.Fprintf(os.Stderr, "swiftd: second %v, aborting drain\n", s)
		code = 1
	}
	close(tickDone)
	st := d.svc.Status()
	fmt.Printf("swiftd: drained admitted=%d queued=%d shed=%d live=%d panics=%d\n",
		st.Flow.Admitted, st.Flow.Queued, st.Flow.Shed, st.Snapshot.LiveJobs, st.Panics)
	if v := d.svc.Invariants(); len(v) != 0 {
		for _, msg := range v {
			fmt.Fprintf(os.Stderr, "swiftd: invariant violated: %s\n", msg)
		}
		code = 1
	}
	_ = server.Close()
	return code
}
