// Command swiftchaos runs deterministic chaos soaks: seeded fault
// schedules (machine crashes, executor restarts, task crashes/timeouts,
// cache-worker storms, read-only drains, stragglers) injected into many
// concurrent trace-generated jobs, with the scheduler invariant auditor
// checking every controller action and event boundary.
//
// Usage:
//
//	swiftchaos -seeds 64
//	swiftchaos -seed 7 -jobs 40 -machines 50 -v
//	swiftchaos -seeds 8 -verify     # re-run each seed, compare trace hashes
//	swiftchaos -seeds 64 -workers 0 # fan seeds across GOMAXPROCS workers
//	swiftchaos -fair -seeds 1 -verify # 3-tenant fair-share soak under fire
//
// -fair switches the workload to the multi-tenant fairness soak: three
// tenants with 2:1:1 weights (one bursty, one hard-quota-capped) under
// the hierarchical fair-share policy, with the auditor's no-starvation
// and quota invariants armed. Per-tenant terminal tallies and the reclaim
// count print on each seed's summary line (-jobs is ignored).
//
// Exit status is non-zero if any seed reports an invariant violation, an
// unfinished job at the horizon, or (with -verify) a determinism mismatch.
// Every soak is an isolated simulation, so -workers changes wall-clock
// time only: results print in seed order and are byte-identical to a
// serial run.
package main

import (
	"flag"
	"fmt"
	"os"

	"swift/internal/chaos"
	"swift/internal/core"
	"swift/internal/exp"
	"swift/internal/obs"
	"swift/internal/sched"
	"swift/internal/sim"
	"swift/internal/trace"
)

// seedOutcome carries one soak's results out of the worker pool; printing
// stays sequential (and in seed order) in main.
type seedOutcome struct {
	res   *chaos.Result
	rec   *obs.Recorder // first seed only, when -trace/-stats ask for it
	again *chaos.Result // the -verify re-run, nil without -verify
}

func main() {
	seeds := flag.Int("seeds", 8, "number of consecutive seeds to soak (starting at -seed)")
	seed := flag.Int64("seed", 0, "first seed")
	jobs := flag.Int("jobs", 20, "trace-generated jobs per soak")
	machines := flag.Int("machines", 20, "cluster machines")
	execs := flag.Int("executors", 4, "executors per machine")
	horizon := flag.Float64("horizon", 3600, "bounded-termination deadline (virtual seconds)")
	verify := flag.Bool("verify", false, "run every seed twice and compare trace hashes")
	workers := flag.Int("workers", 1, "parallel soak workers (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print violations as they are found")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the first seed's soak")
	stats := flag.Bool("stats", false, "print the first seed's observability snapshot")
	fair := flag.Bool("fair", false, "multi-tenant fair-share soak: 3 tenants (weights 2:1:1, one bursty, one quota-capped) under the fair policy")
	shuffleRep := flag.Bool("shuffle", false, "replicated-shuffle soak: R=3 outputs under a Cache-Worker-crash-only fault mix (every loss should fail over, zero recomputes)")
	flag.Parse()

	outcomes := exp.Sweep(*seeds, *workers, func(i int) seedOutcome {
		cfg := chaos.Config{
			Seed:                *seed + int64(i),
			Jobs:                *jobs,
			Machines:            *machines,
			ExecutorsPerMachine: *execs,
			Horizon:             sim.FromSeconds(*horizon),
		}
		// Observe the first seed only: each soak needs its own recorder.
		var rec *obs.Recorder
		if (*tracePath != "" || *stats) && i == 0 {
			rec = obs.New()
		}
		configure(&cfg, rec, *fair, *shuffleRep)
		out := seedOutcome{res: chaos.Run(cfg), rec: rec}
		if *verify {
			// The re-run must not share (and re-append to) the first run's
			// recorder; rebuilding the options drops it (and keeps the fair
			// policy, which is part of the schedule being verified).
			configure(&cfg, nil, *fair, *shuffleRep)
			out.again = chaos.Run(cfg)
		}
		return out
	})

	failed := 0
	for i, o := range outcomes {
		s := *seed + int64(i)
		res := o.res
		fmt.Println(res)
		if *verbose {
			for _, v := range res.Violations {
				fmt.Println("  violation:", v)
			}
		}
		if o.rec != nil {
			if err := dumpObs(o.rec, *tracePath, *stats); err != nil {
				fmt.Fprintln(os.Stderr, "swiftchaos:", err)
				os.Exit(1)
			}
		}
		ok := len(res.Violations) == 0
		if o.again != nil {
			if o.again.TraceHash != res.TraceHash {
				ok = false
				fmt.Printf("  DETERMINISM MISMATCH: seed %d hashes %016x != %016x\n", s, res.TraceHash, o.again.TraceHash)
			} else if *verbose {
				fmt.Printf("  verified: re-run reproduced hash %016x\n", res.TraceHash)
			}
		}
		if !ok {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "swiftchaos: %d of %d seeds failed\n", failed, *seeds)
		os.Exit(1)
	}
	fmt.Printf("all %d seeds clean\n", *seeds)
}

// configure rebuilds cfg.Options (and, with fair, the tenant workload)
// for one soak run: a non-nil recorder attaches observability, fair
// swaps in the 3-tenant fair-share mix — weights 2:1:1, tenant b bursting
// 10x for 30 s, tenant c hard-capped at 30 executors with the auditor's
// quota invariant armed — and shuffleRep turns on 3-way output
// replication under a Cache-Worker-crash-only fault profile, where every
// lost serving copy must promote a survivor and recomputes stay at zero.
// Leaves Options nil (library defaults) when none applies.
func configure(cfg *chaos.Config, rec *obs.Recorder, fair, shuffleRep bool) {
	cfg.Options = nil
	if rec != nil || fair || shuffleRep {
		o := core.DefaultOptions()
		o.Obs = rec
		if shuffleRep {
			o.ShuffleReplicas = 3
		}
		if fair {
			o.Policy = sched.NewFairShare(sched.FairShareConfig{Queues: []sched.QueueSpec{
				{Name: "a", Weight: 2},
				{Name: "b", Weight: 1},
				{Name: "c", Weight: 1, Quota: 30},
			}})
		}
		cfg.Options = &o
	}
	if fair {
		cfg.Tenants = []trace.TenantSpec{
			{Name: "a", Jobs: 12, Rate: 0.4},
			{Name: "b", Jobs: 12, Rate: 0.4, BurstAt: 20, BurstDur: 30, BurstFactor: 10},
			{Name: "c", Jobs: 8, ArrivalWindow: 60},
		}
		cfg.TenantQuotas = map[string]int{"c": 30}
	}
	if shuffleRep {
		// Cache-Worker crashes only: each one wipes a single machine's
		// buffered copies, so with R=3 a survivor always remains and the
		// soak must report recomputes=0. Machine crashes and direct
		// output-lost faults are excluded — the former can take several
		// homes down in one window, the latter models fleet-wide eviction
		// that bypasses replicas by design.
		p := chaos.DefaultProfile()
		p.MachineCrashPerMin = 0
		p.MachineUnhealthyPerMin = 0
		p.OutputLostPerMin = 0
		p.CacheWorkerCrashPerMin = 8
		cfg.Profile = &p
	}
}

// dumpObs writes the recorder's snapshot (stats to stdout, trace to path).
func dumpObs(rec *obs.Recorder, tracePath string, stats bool) error {
	if stats {
		if err := rec.WriteBreakdown(os.Stdout); err != nil {
			return err
		}
		if _, err := rec.Registry().WriteTo(os.Stdout); err != nil {
			return err
		}
	}
	if tracePath == "" {
		return nil
	}
	f, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("  trace written to %s (%d events)\n", tracePath, len(rec.Events()))
	return nil
}
