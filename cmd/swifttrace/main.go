// Command swifttrace generates production-like job traces (calibrated to
// the paper's Fig. 8) and optionally replays them on the simulated Swift
// deployment.
//
// Usage:
//
//	swifttrace -jobs 2000 -seed 7            # print trace statistics
//	swifttrace -jobs 500 -replay -machines 50
package main

import (
	"flag"
	"fmt"
	"os"

	"swift/internal/baseline"
	"swift/internal/cluster"
	"swift/internal/metrics"
	"swift/internal/obs"
	"swift/internal/sim"
	"swift/internal/simrun"
	"swift/internal/trace"
)

func main() {
	jobs := flag.Int("jobs", 2000, "number of jobs")
	seed := flag.Int64("seed", 1, "generator seed")
	window := flag.Float64("window", 200, "arrival window in seconds")
	scale := flag.Float64("scale", 1, "task-count scale factor")
	replay := flag.Bool("replay", false, "replay the trace on simulated Swift")
	machines := flag.Int("machines", 100, "cluster machines for -replay")
	out := flag.String("out", "", "write the trace as JSON lines to this file")
	in := flag.String("in", "", "read a previously written trace instead of generating")
	tracePath := flag.String("trace", "", "with -replay: write a Chrome trace-event JSON of the replay")
	stats := flag.Bool("stats", false, "with -replay: print the observability snapshot")
	flag.Parse()

	var tr *trace.Trace
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		tr, err = trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		*jobs = len(tr.Jobs)
	} else {
		tr = trace.Generate(trace.Spec{Jobs: *jobs, Seed: *seed, ArrivalWindow: *window, Scale: *scale})
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := tr.Write(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d jobs to %s\n", len(tr.Jobs), *out)
	}
	var tasks, stages []float64
	for _, j := range tr.Jobs {
		tasks = append(tasks, float64(j.Job.NumTasks()))
		stages = append(stages, float64(j.Job.NumStages()))
	}
	fmt.Printf("trace: %d jobs, seed %d, window %.0fs\n", *jobs, *seed, *window)
	fmt.Printf("tasks:  %s  P(<=80)=%.2f\n", metrics.FourQuartiles(tasks), metrics.FractionBelow(tasks, 80))
	fmt.Printf("stages: %s  P(<=4)=%.2f\n", metrics.FourQuartiles(stages), metrics.FractionBelow(stages, 4))

	if !*replay {
		return
	}
	var rec *obs.Recorder
	if *tracePath != "" || *stats {
		rec = obs.New()
	}
	ropts := baseline.Swift()
	ropts.Obs = rec
	r := simrun.New(simrun.Config{
		Cluster: cluster.Config{Machines: *machines, ExecutorsPerMachine: 60, Model: cluster.DefaultModel()},
		Options: ropts,
		Seed:    *seed,
	})
	for _, j := range tr.Jobs {
		r.SubmitAt(sim.FromSeconds(j.SubmitAt), j.Job)
	}
	res := r.Run()
	var durations []float64
	done := 0
	for _, jr := range res.Jobs {
		if jr.Completed {
			done++
			durations = append(durations, jr.Duration())
		}
	}
	fmt.Printf("\nreplay on %d machines: %d/%d jobs completed, makespan %.0fs\n", *machines, done, *jobs, res.Makespan.Seconds())
	fmt.Printf("job runtime: %s  mean=%.1fs  P(<120s)=%.2f\n",
		metrics.FourQuartiles(durations), metrics.Mean(durations), metrics.FractionBelow(durations, 120))
	fmt.Printf("peak running executors: %.0f\n", res.ExecSeries.Max())

	if *stats {
		fmt.Println()
		if err := rec.WriteBreakdown(os.Stdout); err != nil {
			fatal(err)
		}
		if _, err := rec.Registry().WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (%d events)\n", *tracePath, len(rec.Events()))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swifttrace:", err)
	os.Exit(1)
}
