// Command swiftvet runs the project's static analyzers (internal/lint)
// over the named packages — the repository-specific companion to go vet,
// enforcing the invariants stock tooling cannot know about: simulator
// determinism (direct and transitive, via the whole-program call graph),
// lock discipline and global lock ordering, hot-path allocation budgets,
// error discipline, enum-switch exhaustiveness, and batch/row kernel
// parity.
//
// Usage:
//
//	go run ./cmd/swiftvet [-json] [-why] [-analyzers a,b] [-changed files] [packages...]
//
// Packages default to ./... . Exit status is 0 when clean, 1 when any
// finding survives suppression, 2 on load/usage errors. Note that a
// narrow explicit pattern parses only the named packages' bodies, so
// interprocedural chains through unlisted packages are invisible; run
// ./... (as CI does) for authoritative whole-program results. With -json the
// findings stream to stdout as a single JSON array of
// {analyzer, file, line, col, message, why} objects for tooling. With
// -why each interprocedural finding is followed by its indented
// call-chain witness, one frame per line, ending at the terminal fact.
//
// -changed takes a comma-separated changed-file list (e.g. from
// `git diff --name-only`) and narrows reporting to those files' packages
// plus their reverse-dependency closure; the whole program is still
// loaded, because the interprocedural summaries need the full call
// graph. When the list cannot be mapped onto the loaded graph (go.mod
// changed, unknown file) swiftvet falls back to a full-tree run and says
// so on stderr.
//
// Findings are silenced only by an inline
//
//	//lint:allow <analyzer> <reason>
//
// comment (reason mandatory) on the offending line, the line above, or
// the first line of the offending multi-line statement; see DESIGN.md's
// "Static analysis" section for the analyzer catalogue.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"swift/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	why := flag.Bool("why", false, "print the call-chain witness under each interprocedural finding")
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	changed := flag.String("changed", "", "comma-separated changed-file list; analyze only affected packages")
	list := flag.Bool("list", false, "print the analyzer catalogue and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := lint.ByName(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swiftvet:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if *changed != "" && len(patterns) == 0 {
		// Incremental mode narrows reporting, but the summaries need the
		// whole module loaded regardless of the default pattern.
		patterns = []string{"./..."}
	}
	pkgs, fset, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swiftvet:", err)
		os.Exit(2)
	}
	cfg := lint.DefaultConfig()
	if len(pkgs) > 0 && pkgs[0].Module != "" {
		cfg = lint.ConfigForModule(pkgs[0].Module)
	}
	var only map[string]bool
	if *changed != "" {
		files := strings.Split(*changed, ",")
		var stale string
		only, stale = lint.Affected(pkgs, files)
		if stale != "" {
			fmt.Fprintf(os.Stderr, "swiftvet: -changed: %s; analyzing the full tree\n", stale)
			only = nil
		} else {
			fmt.Fprintf(os.Stderr, "swiftvet: -changed: analyzing %d of %d packages\n", len(only), len(pkgs))
		}
	}
	findings := lint.RunPackages(fset, pkgs, cfg, analyzers, only)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "swiftvet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
			if *why {
				for _, frame := range f.Why {
					fmt.Printf("\t%s\n", frame)
				}
			}
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "swiftvet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}
