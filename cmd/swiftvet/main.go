// Command swiftvet runs the project's static analyzers (internal/lint)
// over the named packages — the repository-specific companion to go vet,
// enforcing the invariants stock tooling cannot know about: simulator
// determinism, lock discipline, error discipline, enum-switch
// exhaustiveness, and batch/row kernel parity.
//
// Usage:
//
//	go run ./cmd/swiftvet [-json] [-analyzers a,b] [packages...]
//
// Packages default to ./... . Exit status is 0 when clean, 1 when any
// finding survives suppression, 2 on load/usage errors. With -json the
// findings stream to stdout as a single JSON array of
// {analyzer, file, line, col, message} objects for tooling.
//
// Findings are silenced only by an inline
//
//	//lint:allow <analyzer> <reason>
//
// comment (reason mandatory) on the offending line or the line above; see
// DESIGN.md's "Static analysis" section for the analyzer catalogue.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"swift/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "print the analyzer catalogue and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := lint.ByName(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swiftvet:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	pkgs, fset, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swiftvet:", err)
		os.Exit(2)
	}
	cfg := lint.DefaultConfig()
	if len(pkgs) > 0 && pkgs[0].Module != "" {
		cfg = lint.ConfigForModule(pkgs[0].Module)
	}
	findings := lint.Run(fset, pkgs, cfg, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "swiftvet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "swiftvet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}
