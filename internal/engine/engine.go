package engine

import (
	"errors"
	"fmt"
	"sync"

	"swift/internal/cluster"
	"swift/internal/core"
	"swift/internal/dag"
)

// StageFn is the body of one task of a stage. It reads inputs and emits
// outputs through the TaskContext; returning an error fails the task
// attempt and triggers the controller's recovery.
type StageFn func(ctx *TaskContext) error

// Plans maps stage names to their task bodies.
type Plans map[string]StageFn

// ErrInjected is returned by tasks killed through FailTask.
var ErrInjected = errors.New("engine: injected task failure")

// Config sizes the engine's executor pool.
type Config struct {
	Machines            int
	ExecutorsPerMachine int
	Options             core.Options
	// CacheWorkerCapacity bounds each machine's Cache Worker memory in
	// bytes (0 = unbounded).
	CacheWorkerCapacity int64
}

// DefaultConfig returns a small local deployment (4 machines × 4
// executors) with Swift's production scheduling options.
func DefaultConfig() Config {
	return Config{Machines: 4, ExecutorsPerMachine: 4, Options: core.DefaultOptions()}
}

type event struct {
	fn func()
}

type jobState struct {
	job   *dag.Job
	plans Plans
	// sunk holds committed sink output per task ("stage|index"). Sink
	// rows are buffered in the TaskContext and committed only when the
	// controller accepts the attempt's completion, so a task killed
	// after sinking cannot double-count against its retry.
	sunk map[string][]Row
	done chan struct{}
	err  error
}

type taskRun struct {
	ref     core.TaskRef
	attempt int
	abort   chan struct{}
}

// Engine executes DAG jobs on real rows with goroutine executors, driven
// by the same core.Controller as the simulator.
type Engine struct {
	cfg    Config
	ctrl   *core.Controller
	cl     *cluster.Cluster
	store  *Store
	events chan event
	quit   chan struct{}
	loopWG sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*jobState
	running map[core.TaskRef]*taskRun
	tables  map[string]*Table
}

// New starts an engine; Close releases its event loop.
func New(cfg Config) *Engine {
	if cfg.Machines <= 0 {
		cfg.Machines = 4
	}
	if cfg.ExecutorsPerMachine <= 0 {
		cfg.ExecutorsPerMachine = 4
	}
	if cfg.Options.Partition == nil {
		cfg.Options = core.DefaultOptions()
	}
	cl := cluster.New(cluster.Config{Machines: cfg.Machines, ExecutorsPerMachine: cfg.ExecutorsPerMachine})
	e := &Engine{
		cfg:     cfg,
		cl:      cl,
		ctrl:    core.NewController(cl, cfg.Options),
		store:   NewStore(cfg.Machines, cfg.CacheWorkerCapacity),
		events:  make(chan event, 256),
		quit:    make(chan struct{}),
		jobs:    make(map[string]*jobState),
		running: make(map[core.TaskRef]*taskRun),
		tables:  make(map[string]*Table),
	}
	e.loopWG.Add(1)
	go e.loop()
	return e
}

// Close stops the engine's event loop. Jobs in flight are abandoned.
func (e *Engine) Close() {
	close(e.quit)
	e.loopWG.Wait()
}

// RegisterTable makes a dataset available to scan stages of all jobs.
func (e *Engine) RegisterTable(t *Table) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tables[t.Name] = t
}

// loop is the single goroutine that owns the controller — the engine's
// Event Processor (Section II-B).
func (e *Engine) loop() {
	defer e.loopWG.Done()
	for {
		select {
		case ev := <-e.events:
			ev.fn()
		case <-e.quit:
			return
		}
	}
}

// post runs fn on the controller loop.
func (e *Engine) post(fn func()) {
	select {
	case e.events <- event{fn}:
	case <-e.quit:
	}
}

// Submit admits a job with its stage plans and returns a wait function
// that blocks until completion, yielding the rows collected by sink stages
// (in deterministic order) or the job error.
func (e *Engine) Submit(job *dag.Job, plans Plans) (wait func() ([]Row, error), err error) {
	for _, s := range job.Stages() {
		if plans[s.Name] == nil {
			return nil, fmt.Errorf("engine: no plan for stage %s", s.Name)
		}
	}
	js := &jobState{job: job, plans: plans, sunk: make(map[string][]Row), done: make(chan struct{})}
	errc := make(chan error, 1)
	e.mu.Lock()
	if _, dup := e.jobs[job.ID]; dup {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: duplicate job %s", job.ID)
	}
	e.jobs[job.ID] = js
	e.mu.Unlock()

	e.post(func() {
		if err := e.ctrl.SubmitJob(job); err != nil {
			errc <- err
			return
		}
		errc <- nil
		e.applyActions()
	})
	if err := <-errc; err != nil {
		e.mu.Lock()
		delete(e.jobs, job.ID)
		e.mu.Unlock()
		return nil, err
	}
	return func() ([]Row, error) {
		<-js.done
		e.mu.Lock()
		defer e.mu.Unlock()
		if js.err != nil {
			return nil, js.err
		}
		// Deterministic order: sink stages in job order, tasks by index.
		var out []Row
		for _, st := range js.job.Stages() {
			for i := 0; i < st.Tasks; i++ {
				out = append(out, js.sunk[sinkKey(st.Name, i)]...)
			}
		}
		return out, nil
	}, nil
}

func sinkKey(stage string, index int) string { return fmt.Sprintf("%s|%d", stage, index) }

// Run is Submit + wait.
func (e *Engine) Run(job *dag.Job, plans Plans) ([]Row, error) {
	wait, err := e.Submit(job, plans)
	if err != nil {
		return nil, err
	}
	return wait()
}

// applyActions drains controller actions on the loop goroutine.
func (e *Engine) applyActions() {
	for _, a := range e.ctrl.Drain() {
		switch a := a.(type) {
		case core.ActStartTask:
			e.startTask(a)
		case core.ActAbortTask:
			e.abortTask(a)
		case core.ActResend:
			// Surviving producers' segments are still in the Store;
			// the re-launched reader re-pulls them, so no transfer
			// action is needed in-process.
		case core.ActJobCompleted:
			e.finishJob(a.Job, nil)
		case core.ActJobFailed:
			e.finishJob(a.Job, errors.New(a.Reason))
		case core.ActJobRestarted, core.ActMachineReadOnly, core.ActMachineHealthy:
			// Health transitions and restart accounting have no in-process
			// work: the controller already rescheduled what they affect.
		case core.ActShuffleDegraded:
			// Mode downgrades only matter to the simulator's cost model;
			// the in-process store serves segments the same way in every
			// mode.
		case core.ActReplicate:
			// The in-process store keeps one authoritative copy per
			// segment; replication is a simulator-cost concern.
		}
	}
}

func (e *Engine) finishJob(id string, err error) {
	e.mu.Lock()
	js := e.jobs[id]
	if js == nil {
		e.mu.Unlock()
		return
	}
	js.err = err
	delete(e.jobs, id)
	e.mu.Unlock()
	e.store.DropJob(id)
	close(js.done)
}

func (e *Engine) startTask(a core.ActStartTask) {
	e.mu.Lock()
	js := e.jobs[a.Task.Job]
	if js == nil {
		e.mu.Unlock()
		return
	}
	tr := &taskRun{ref: a.Task, attempt: a.Attempt, abort: make(chan struct{})}
	e.running[a.Task] = tr
	e.mu.Unlock()

	machine := int(e.cl.MachineOf(a.Executor))
	ctx := &TaskContext{
		engine:  e,
		js:      js,
		ref:     a.Task,
		attempt: a.Attempt,
		machine: machine,
		abort:   tr.abort,
	}
	go func() {
		err := e.runBody(ctx, js)
		e.post(func() {
			e.mu.Lock()
			cur := e.running[a.Task]
			if cur == nil || cur.attempt != a.Attempt {
				e.mu.Unlock()
				return // aborted; a newer attempt owns the task
			}
			delete(e.running, a.Task)
			if err == nil {
				// Commit this attempt's sink output (replacing any
				// earlier attempt's).
				js.sunk[sinkKey(a.Task.Stage, a.Task.Index)] = ctx.sink
			}
			e.mu.Unlock()
			if err != nil {
				kind := core.FailCrash
				var app *AppError
				if errors.As(err, &app) {
					kind = core.FailAppError
				}
				e.ctrl.TaskFailed(a.Task, a.Attempt, kind)
			} else {
				e.ctrl.TaskFinished(a.Task, a.Attempt)
			}
			e.applyActions()
		})
	}()
}

// runBody executes the stage function, converting panics into task
// failures so a buggy operator cannot take the engine down.
func (e *Engine) runBody(ctx *TaskContext, js *jobState) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: task %s panicked: %v", ctx.ref, r)
		}
	}()
	return js.plans[ctx.ref.Stage](ctx)
}

func (e *Engine) abortTask(a core.ActAbortTask) {
	e.mu.Lock()
	tr := e.running[a.Task]
	if tr != nil && tr.attempt == a.Attempt {
		delete(e.running, a.Task)
		close(tr.abort)
	}
	e.mu.Unlock()
	e.store.Wake()
}

// FailTask injects a crash into a currently running task of the stage and
// reports whether one was found — the engine-side equivalent of the
// simulator's fault injection.
func (e *Engine) FailTask(job, stage string) bool {
	e.mu.Lock()
	// Deterministic victim: the lowest task index among the stage's
	// running tasks, not whatever the map yields first.
	var victim *taskRun
	for ref, tr := range e.running {
		if ref.Job == job && ref.Stage == stage {
			if victim == nil || ref.Index < victim.ref.Index {
				victim = tr
			}
		}
	}
	e.mu.Unlock()
	if victim == nil {
		return false
	}
	e.post(func() {
		e.mu.Lock()
		cur := e.running[victim.ref]
		if cur != victim {
			e.mu.Unlock()
			return
		}
		delete(e.running, victim.ref)
		close(victim.abort)
		e.mu.Unlock()
		e.store.Wake()
		e.ctrl.TaskFailed(victim.ref, victim.attempt, core.FailCrash)
		e.applyActions()
	})
	return true
}

// AppError marks a task failure as an application-logic error, which Swift
// reports without attempting recovery (Section IV-C).
type AppError struct{ Msg string }

// Error implements error.
func (e *AppError) Error() string { return "application error: " + e.Msg }

// Store exposes the shuffle fabric (stats in tests and examples).
func (e *Engine) Store() *Store { return e.store }

// Controller exposes the Swift Admin driving this engine.
func (e *Engine) Controller() *core.Controller { return e.ctrl }
