package engine

// Dictionary encoding: DictifyBatch rewrites low-cardinality plain string
// columns as TDict (dictionary + packed codes) at storage and wire
// boundaries — Store.put and the rpc codec — where the smaller encoding
// pays for the scan. Kernels accept both representations, and row hashes
// are computed over the dictionary strings, so a dictified batch hashes,
// joins and partitions bit-identically to its plain form.

// maxDictEntries bounds auto-dictionarization: beyond 256 distinct values
// the dictionary scan costs more than the duplicate strings save, and the
// code width passes a byte.
const maxDictEntries = 256

// DictifyBatch returns a batch whose eligible plain string columns are
// dictionary-encoded; columns are rewritten only when the encoded
// dictionary form is strictly smaller than the plain form. Ineligible
// batches come back unchanged (same pointer); lazy batches materialize
// first.
func DictifyBatch(b *Batch) *Batch {
	if b == nil {
		return nil
	}
	b = b.Materialize()
	var out *Batch
	for i := range b.Cols {
		dc, ok := dictifyCol(&b.Cols[i], b.Len)
		if !ok {
			continue
		}
		if out == nil {
			cols := make([]Column, len(b.Cols))
			copy(cols, b.Cols)
			out = &Batch{Cols: cols, Len: b.Len}
		}
		out.Cols[i] = dc
	}
	if out == nil {
		return b
	}
	return out
}

// dictifyCol builds the dictionary form of a plain string column, in
// first-occurrence order so equal inputs dictify identically. NULL slots
// hold the empty string (the column's zero value), so they code like any
// other row and the bitmap stays authoritative.
func dictifyCol(c *Column, rows int) (Column, bool) {
	if c.Type != TString || rows == 0 {
		return Column{}, false
	}
	idx := make(map[string]uint32, 16)
	codes := make([]uint32, rows)
	dict := make([]string, 0, 16)
	dictBytes := 0
	plainBytes := 0
	for i, s := range c.Strs {
		plainBytes += uvarintLen(uint64(len(s))) + len(s)
		code, seen := idx[s]
		if !seen {
			if len(dict) == maxDictEntries {
				return Column{}, false
			}
			code = uint32(len(dict))
			idx[s] = code
			dict = append(dict, s)
			dictBytes += uvarintLen(uint64(len(s))) + len(s)
		}
		codes[i] = code
	}
	encoded := uvarintLen(uint64(len(dict))) + dictBytes + (rows*dictBits(len(dict))+7)/8
	if encoded >= plainBytes {
		return Column{}, false
	}
	return Column{Type: TDict, Dict: dict, Codes: codes, Nulls: c.Nulls}, true
}
