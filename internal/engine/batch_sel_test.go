package engine

import (
	"bytes"
	"math/rand"
	"testing"
)

// Selection-vector semantics: FilterBatch returns a lazy view over the
// input's vectors, every kernel consumes it as if it were the materialised
// batch, and materialization happens only at emit/codec boundaries.

func lazyHalf(t *testing.T, b *Batch) *Batch {
	t.Helper()
	out := FilterBatch(b, func(i int) bool { return i%2 == 0 })
	if out.Sel == nil {
		t.Fatal("FilterBatch did not return a lazy view")
	}
	if len(out.Cols) > 0 && &out.Cols[0] != &b.Cols[0] {
		t.Fatal("lazy view copied the column vectors")
	}
	return out
}

func TestFilterBatchLazyView(t *testing.T) {
	r := rand.New(rand.NewSource(70))
	b := BatchFromRows(randRows(r, 101))
	lazy := lazyHalf(t, b)
	if lazy.Len != 51 {
		t.Fatalf("lazy Len = %d, want 51", lazy.Len)
	}
	dense := lazy.Materialize()
	if dense.Sel != nil {
		t.Fatal("Materialize left a selection vector")
	}
	if lazy.Len != dense.Len {
		t.Fatalf("materialise changed Len %d -> %d", lazy.Len, dense.Len)
	}
	batchesEqual(t, "lazy vs dense cells", lazy, dense)
	rowsEqual(t, "lazy rows", lazy.Rows(), dense.Rows())

	// Filters compose: the second predicate sees physical indices and the
	// selections intersect.
	second := FilterBatch(lazy, func(i int) bool { return i%4 == 0 })
	if second.Len != 26 {
		t.Fatalf("composed Len = %d, want 26", second.Len)
	}
	for j := 0; j < second.Len; j++ {
		if int(second.Sel[j]) != 4*j {
			t.Fatalf("composed sel[%d] = %d, want %d", j, second.Sel[j], 4*j)
		}
	}

	// Project shares the selection; WithCol and Gather densify.
	proj := lazy.Project([]int{2, 0})
	if proj.Sel == nil || proj.Len != lazy.Len {
		t.Fatal("Project dropped the selection")
	}
	batchesEqual(t, "projected lazy", proj, dense.Project([]int{2, 0}))
}

func TestSelKernelEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	b := BatchFromRows(randRows(r, 257))
	lazy := lazyHalf(t, b)
	dense := lazy.Materialize()

	keys := []int{0, 2}
	hl := make([]uint64, lazy.Len)
	hd := make([]uint64, dense.Len)
	HashBatchInto(lazy, keys, hl)
	HashBatchInto(dense, keys, hd)
	for i := range hl {
		if hl[i] != hd[i] {
			t.Fatalf("row %d hash %x (lazy) != %x (dense)", i, hl[i], hd[i])
		}
	}

	batchesEqual(t, "sort", SortBatch(lazy, []int{2, 0}), SortBatch(dense, []int{2, 0}))

	pl := PartitionBatchByKey(lazy, keys, 4)
	pd := PartitionBatchByKey(dense, keys, 4)
	for p := range pd {
		batchesEqual(t, "partition by key", pl[p], pd[p])
	}

	bounds := []Row{{int64(5), 12.0, "b", false, nil}, {int64(12), 3.0, "e", true, nil}}
	rl := PartitionBatchByRange(lazy, keys, bounds)
	rd := PartitionBatchByRange(dense, keys, bounds)
	for p := range rd {
		batchesEqual(t, "partition by range", rl[p].Materialize(), rd[p].Materialize())
	}

	aggs := []Agg{{AggCount, 0}, {AggSum, 1}, {AggMin, 2}, {AggMax, 4}}
	batchesEqual(t, "aggregate",
		HashAggregateBatch(lazy, []int{2}, aggs),
		HashAggregateBatch(dense, []int{2}, aggs))

	probe := BatchFromRows(randRows(rand.New(rand.NewSource(72)), 120))
	lazyProbe := FilterBatch(probe, func(i int) bool { return i%3 != 0 })
	batchesEqual(t, "join lazy build+probe",
		HashJoinBatch(lazy, []int{2}, lazyProbe, []int{2}),
		HashJoinBatch(dense, []int{2}, lazyProbe.Materialize(), []int{2}))

	// CompareBatchRows takes logical rows on both sides.
	for j := 0; j < lazy.Len; j++ {
		if CompareBatchRows(lazy, j, keys, dense, j, keys) != 0 {
			t.Fatalf("logical row %d differs between lazy and dense", j)
		}
	}

	batchesEqual(t, "window",
		WindowBatch(lazy, WindowSpec{Func: WinRank, PartitionBy: []int{2}, OrderBy: []int{0}}),
		WindowBatch(dense, WindowSpec{Func: WinRank, PartitionBy: []int{2}, OrderBy: []int{0}}))
}

// TestSelCodecBoundary pins the materialization boundary: encoding a lazy
// batch yields exactly the dense encoding (selections never travel), and
// the store densifies on put.
func TestSelCodecBoundary(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	b := BatchFromRows(randRows(r, 90))
	lazy := lazyHalf(t, b)
	dense := lazy.Materialize()
	if !bytes.Equal(EncodeBatch(lazy), EncodeBatch(dense)) {
		t.Fatal("lazy encoding differs from dense")
	}
	if EncodedBatchSize(lazy) != len(EncodeBatch(dense)) {
		t.Fatal("EncodedBatchSize ignores the selection")
	}

	s := NewStore(1, 0)
	if err := s.PutBatch("job", 0, "k", lazy); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetBatch("k", nil)
	if !ok {
		t.Fatal("segment missing")
	}
	if got.Sel != nil {
		t.Fatal("store kept a lazy segment")
	}
	batchesEqual(t, "stored lazy segment", got, dense)

	// ConcatBatches over a mix of lazy and dense runs sees logical rows.
	cat := ConcatBatches([]*Batch{lazy, dense, lazyHalf(t, b)})
	if cat.Len != 3*dense.Len {
		t.Fatalf("concat Len = %d, want %d", cat.Len, 3*dense.Len)
	}
	catDense := ConcatBatches([]*Batch{dense, dense, dense})
	batchesEqual(t, "concat lazy runs", cat, catDense)
}
