package engine

import (
	"math/rand"
	"reflect"
	"testing"
)

// randRows builds kind-homogeneous columns (int64, float64, string, bool)
// plus one mixed column, each with ~15% NULLs, so every typed vector lane
// and the TAny escape hatch get exercised.
func randRows(r *rand.Rand, n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		row := Row{
			int64(r.Intn(20)),
			float64(r.Intn(100)) / 4,
			string(rune('a' + r.Intn(6))),
			r.Intn(2) == 0,
			nil, // mixed
		}
		// Mixed numeric kinds (comparable cross-kind, unlike string vs
		// number, which Compare rejects in both row and batch paths).
		switch r.Intn(3) {
		case 0:
			row[4] = int64(r.Intn(10))
		case 1:
			row[4] = float64(r.Intn(10))
		case 2:
			row[4] = float64(r.Intn(10)) + 0.5
		}
		for c := 0; c < 4; c++ {
			if r.Intn(7) == 0 {
				row[c] = nil
			}
		}
		if r.Intn(7) == 0 {
			row[4] = nil
		}
		rows[i] = row
	}
	return rows
}

func rowsEqual(t *testing.T, what string, got, want []Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", what, len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: row %d = %#v, want %#v", what, i, got[i], want[i])
		}
	}
}

func TestCompareNilTotal(t *testing.T) {
	if Compare(nil, nil) != 0 {
		t.Error("Compare(nil, nil) != 0")
	}
	for _, v := range []Value{int64(0), int64(-5), float64(0), "", "a", false, true} {
		if Compare(nil, v) != -1 {
			t.Errorf("Compare(nil, %#v) = %d, want -1", v, Compare(nil, v))
		}
		if Compare(v, nil) != 1 {
			t.Errorf("Compare(%#v, nil) = %d, want 1", v, Compare(v, nil))
		}
	}
	// NULL sorts first.
	rows := []Row{{int64(2)}, {nil}, {int64(1)}, {nil}}
	SortRows(rows, []int{0})
	if rows[0][0] != nil || rows[1][0] != nil || rows[2][0] != int64(1) || rows[3][0] != int64(2) {
		t.Errorf("sorted = %v", rows)
	}
}

func TestBatchFromRowsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	rows := randRows(r, 257) // not a multiple of 64: partial bitmap word
	b := BatchFromRows(rows)
	if b.Len != len(rows) || b.NumCols() != 5 {
		t.Fatalf("batch %dx%d", b.Len, b.NumCols())
	}
	wantTypes := []ColType{TInt64, TFloat64, TString, TBool, TAny}
	for c, w := range wantTypes {
		if b.Cols[c].Type != w {
			t.Errorf("col %d type = %v, want %v", c, b.Cols[c].Type, w)
		}
	}
	rowsEqual(t, "round trip", b.Rows(), rows)

	// Ragged rows: short rows read as NULL in the missing cells.
	ragged := []Row{{int64(1), "x"}, {int64(2)}, nil}
	rb := BatchFromRows(ragged)
	if rb.Len != 3 || rb.NumCols() != 2 {
		t.Fatalf("ragged %dx%d", rb.Len, rb.NumCols())
	}
	if !rb.IsNull(1, 1) || !rb.IsNull(0, 2) || !rb.IsNull(1, 2) || rb.Value(1, 0) != "x" {
		t.Errorf("ragged cells: %v", rb.Rows())
	}
}

func TestHashBatchMatchesRowHash(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	rows := randRows(r, 300)
	b := BatchFromRows(rows)
	for _, keys := range [][]int{{0}, {2}, {4}, {0, 1, 2, 3, 4}, {3, 2}} {
		dst := make([]uint64, b.Len)
		HashBatchInto(b, keys, dst)
		for i, row := range rows {
			if want := Hash(row, keys); dst[i] != want {
				t.Fatalf("keys %v row %d: batch hash %x, row hash %x", keys, i, dst[i], want)
			}
		}
	}
	// Numeric normalisation across vector types: int64 5 and float64 5.0
	// must co-hash whichever vector they sit in.
	ints := BatchFromRows([]Row{{int64(5)}})
	floats := BatchFromRows([]Row{{float64(5)}})
	hi := make([]uint64, 1)
	hf := make([]uint64, 1)
	HashBatchInto(ints, []int{0}, hi)
	HashBatchInto(floats, []int{0}, hf)
	if hi[0] != hf[0] {
		t.Error("int64 5 and float64 5.0 hash differently")
	}
}

func TestFilterBatchEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	rows := randRows(r, 200)
	b := BatchFromRows(rows)
	keep := func(i int) bool { return i%3 != 0 }
	var want []Row
	for i, row := range rows {
		if keep(i) {
			want = append(want, row)
		}
	}
	rowsEqual(t, "filter", FilterBatch(b, keep).Rows(), want)
	if got := FilterBatch(b, func(int) bool { return false }); got.Len != 0 {
		t.Errorf("empty filter kept %d rows", got.Len)
	}
}

func TestProjectAndGatherEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	rows := randRows(r, 100)
	b := BatchFromRows(rows)
	p := b.Project([]int{4, 0, 0, 2})
	var want []Row
	for _, row := range rows {
		want = append(want, Row{row[4], row[0], row[0], row[2]})
	}
	rowsEqual(t, "project", p.Rows(), want)

	sel := []int32{99, 0, 50, 50, 7}
	g := b.Gather(sel)
	want = want[:0]
	for _, i := range sel {
		want = append(want, rows[i])
	}
	rowsEqual(t, "gather", g.Rows(), want)
}

func TestSortBatchEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, keys := range [][]int{{0}, {1}, {2}, {3}, {4}, {2, 0}, {4, 1, 0}} {
		rows := randRows(r, 150)
		want := append([]Row(nil), rows...)
		SortRows(want, keys)
		got := SortBatch(BatchFromRows(rows), keys)
		rowsEqual(t, "sort", got.Rows(), want)
	}
}

func TestHashJoinBatchEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	build := randRows(r, 80)
	probe := randRows(r, 120)
	for _, tc := range []struct{ bk, pk []int }{
		{[]int{0}, []int{0}},
		{[]int{2, 3}, []int{2, 3}},
		{[]int{4}, []int{4}},
		{[]int{0}, []int{4}}, // cross-kind numeric keys
	} {
		want := Drain(NewHashJoin(build, tc.bk, NewSliceIter(probe), tc.pk))
		got := HashJoinBatch(BatchFromRows(build), tc.bk, BatchFromRows(probe), tc.pk)
		// Row join emits probe||build; batch join emits probe cols then
		// build cols — same layout, same order.
		rowsEqual(t, "join", got.Rows(), want)
	}
}

func TestHashAggregateBatchEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	rows := randRows(r, 400)
	for _, tc := range []struct {
		keys []int
		aggs []Agg
	}{
		{[]int{0}, []Agg{{AggSum, 1}, {AggCount, 0}}},
		{[]int{2}, []Agg{{AggSum, 0}, {AggMin, 1}, {AggMax, 1}}},
		{[]int{2, 3}, []Agg{{AggCount, 0}, {AggMin, 2}, {AggMax, 4}}},
		{[]int{4}, []Agg{{AggSum, 4}, {AggCount, 4}}}, // mixed-kind keys and inputs
		{[]int{0, 1, 2, 3, 4}, []Agg{{AggCount, 0}}},
		{[]int{3}, nil}, // distinct
	} {
		want := HashAggregate(rows, tc.keys, tc.aggs)
		got := HashAggregateBatch(BatchFromRows(rows), tc.keys, tc.aggs)
		if want == nil {
			if got.Len != 0 {
				t.Fatalf("empty aggregate returned %d rows", got.Len)
			}
			continue
		}
		rowsEqual(t, "aggregate", got.Rows(), want)
	}
	// Empty input.
	if got := HashAggregateBatch(&Batch{}, []int{0}, []Agg{{AggSum, 0}}); got.Len != 0 {
		t.Errorf("aggregate of empty batch = %d rows", got.Len)
	}
}

func TestWindowBatchEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	rows := randRows(r, 120)
	for _, fn := range []WindowFunc{WinRowNumber, WinRank, WinDenseRank, WinRunningSum} {
		spec := WindowSpec{PartitionBy: []int{2}, OrderBy: []int{0}, Func: fn, ValueCol: 1}
		want := Window(rows, spec)
		got := WindowBatch(BatchFromRows(rows), spec)
		rowsEqual(t, "window", got.Rows(), want)
	}
}

func TestPartitionBatchByKeyEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	rows := randRows(r, 300)
	for _, n := range []int{1, 2, 7} {
		wantParts := PartitionByKey(rows, []int{0, 2}, n)
		gotParts := PartitionBatchByKey(BatchFromRows(rows), []int{0, 2}, n)
		if len(gotParts) != len(wantParts) {
			t.Fatalf("n=%d: %d parts, want %d", n, len(gotParts), len(wantParts))
		}
		for p := range wantParts {
			rowsEqual(t, "partition", gotParts[p].Rows(), wantParts[p])
		}
	}
}

func TestPartitionBatchByRangeEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	rows := randRows(r, 200)
	bounds := []Row{{int64(5)}, {int64(12)}}
	wantParts := PartitionByRange(rows, []int{0}, bounds)
	gotParts := PartitionBatchByRange(BatchFromRows(rows), []int{0}, bounds)
	if len(gotParts) != len(wantParts) {
		t.Fatalf("%d parts, want %d", len(gotParts), len(wantParts))
	}
	for p := range wantParts {
		rowsEqual(t, "range partition", gotParts[p].Rows(), wantParts[p])
	}
}

func TestConcatBatches(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := randRows(r, 70)
	b := randRows(r, 130)
	got := ConcatBatches([]*Batch{BatchFromRows(a), {}, BatchFromRows(b)})
	rowsEqual(t, "concat", got.Rows(), append(append([]Row(nil), a...), b...))

	// Kind mismatch across runs degrades the column to TAny without losing
	// values; an all-NULL run merges into any type.
	ints := BatchFromRows([]Row{{int64(1)}})
	strs := BatchFromRows([]Row{{"s"}})
	nulls := BatchFromRows([]Row{{nil}})
	m := ConcatBatches([]*Batch{ints, nulls, strs})
	if m.Cols[0].Type != TAny {
		t.Errorf("mixed concat type = %v", m.Cols[0].Type)
	}
	rowsEqual(t, "mixed concat", m.Rows(), []Row{{int64(1)}, {nil}, {"s"}})
	n := ConcatBatches([]*Batch{ints, nulls})
	if n.Cols[0].Type != TInt64 {
		t.Errorf("int+null concat type = %v", n.Cols[0].Type)
	}
	rowsEqual(t, "int+null concat", n.Rows(), []Row{{int64(1)}, {nil}})
}
