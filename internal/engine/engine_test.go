package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"swift/internal/dag"
)

// wordcountJob builds a 2-stage scan→aggregate job over the "words" table.
func wordcountJob(id string, scanTasks, aggTasks int) (*dag.Job, Plans) {
	job := dag.NewBuilder(id).
		Stage("scan", scanTasks, dag.Op(dag.OpTableScan), dag.Op(dag.OpShuffleWrite)).
		Stage("count", aggTasks, dag.Op(dag.OpShuffleRead), dag.Op(dag.OpHashAggregate), dag.Op(dag.OpAdhocSink)).
		Pipeline("scan", "count", 1<<20).
		MustBuild()
	plans := Plans{
		"scan": func(ctx *TaskContext) error {
			rows, err := ctx.TablePartition("words")
			if err != nil {
				return err
			}
			return ctx.EmitByKey("count", rows, []int{0})
		},
		"count": func(ctx *TaskContext) error {
			rows, err := ctx.Input("scan")
			if err != nil {
				return err
			}
			ctx.Sink(HashAggregate(rows, []int{0}, []Agg{{AggCount, 0}}))
			return nil
		},
	}
	return job, plans
}

func wordsTable(n, scanTasks int) (*Table, map[string]int64) {
	words := []string{"swift", "graphlet", "shuffle", "cache", "worker"}
	rng := rand.New(rand.NewSource(7))
	rows := make([]Row, n)
	want := map[string]int64{}
	for i := range rows {
		w := words[rng.Intn(len(words))]
		rows[i] = Row{w}
		want[w]++
	}
	return NewTable("words", Schema{"word"}, rows, scanTasks), want
}

func counts(rows []Row) map[string]int64 {
	out := map[string]int64{}
	for _, r := range rows {
		out[r[0].(string)] += r[1].(int64)
	}
	return out
}

func TestWordcountEndToEnd(t *testing.T) {
	e := New(DefaultConfig())
	defer e.Close()
	table, want := wordsTable(5000, 6)
	e.RegisterTable(table)
	job, plans := wordcountJob("wc", 6, 3)
	rows, err := e.Run(job, plans)
	if err != nil {
		t.Fatal(err)
	}
	if got := counts(rows); !reflect.DeepEqual(got, want) {
		t.Errorf("counts = %v, want %v", got, want)
	}
	if e.Controller().Cluster().BusyExecutors() != 0 {
		t.Error("executors leaked")
	}
	if st := e.Store().Stats(); st.Puts == 0 {
		t.Error("no shuffle segments written")
	}
}

func TestSortJobProducesGloballySortedOutput(t *testing.T) {
	// Terasort in miniature: scan+local sort, range partition, k-way
	// merge per reducer.
	e := New(DefaultConfig())
	defer e.Close()
	rng := rand.New(rand.NewSource(3))
	n := 4000
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{int64(rng.Intn(1000000))}
	}
	e.RegisterTable(NewTable("records", Schema{"key"}, rows, 5))

	reducers := 4
	bounds := []Row{{int64(250000)}, {int64(500000)}, {int64(750000)}}
	job := dag.NewBuilder("tsort").
		StageOpt(&dag.Stage{Name: "map", Tasks: 5, Idempotent: true,
			Operators: []dag.Operator{dag.Op(dag.OpTableScan), dag.Op(dag.OpMergeSort), dag.Op(dag.OpShuffleWrite)}}).
		StageOpt(&dag.Stage{Name: "reduce", Tasks: reducers, Idempotent: true,
			Operators: []dag.Operator{dag.Op(dag.OpShuffleRead), dag.Op(dag.OpMergeSort), dag.Op(dag.OpAdhocSink)}}).
		Barrier("map", "reduce", 1<<20).
		MustBuild()
	plans := Plans{
		"map": func(ctx *TaskContext) error {
			rows, err := ctx.TablePartition("records")
			if err != nil {
				return err
			}
			sorted := append([]Row(nil), rows...)
			SortRows(sorted, []int{0})
			return ctx.EmitByRange("reduce", sorted, []int{0}, bounds)
		},
		"reduce": func(ctx *TaskContext) error {
			runs, err := ctx.InputRuns("map")
			if err != nil {
				return err
			}
			merged := MergeSortedRuns(runs, []int{0})
			// Tag with the reducer index so global order is checkable.
			out := make([]Row, len(merged))
			for i, r := range merged {
				out[i] = Row{int64(ctx.Index()), r[0]}
			}
			ctx.Sink(out)
			return nil
		},
	}
	rowsOut, err := e.Run(job, plans)
	if err != nil {
		t.Fatal(err)
	}
	if len(rowsOut) != n {
		t.Fatalf("row count = %d, want %d", len(rowsOut), n)
	}
	// Global order: sort by (reducer, position preserved) — verify within
	// each reducer ascending and across reducers bounded.
	SortRows(rowsOut, []int{0, 1})
	prev := int64(-1)
	for _, r := range rowsOut {
		v := r[1].(int64)
		if v < prev {
			t.Fatal("output not globally sorted")
		}
		prev = v
	}
}

func TestJoinJobEndToEnd(t *testing.T) {
	e := New(DefaultConfig())
	defer e.Close()
	var orders, customers []Row
	for i := 0; i < 300; i++ {
		orders = append(orders, Row{int64(i % 50), float64(i)})
	}
	for c := 0; c < 50; c++ {
		customers = append(customers, Row{int64(c), fmt.Sprintf("cust-%d", c)})
	}
	e.RegisterTable(NewTable("orders", Schema{"cust", "amount"}, orders, 4))
	e.RegisterTable(NewTable("customers", Schema{"cust", "name"}, customers, 2))

	job := dag.NewBuilder("join").
		Stage("o", 4, dag.Op(dag.OpTableScan), dag.Op(dag.OpShuffleWrite)).
		Stage("c", 2, dag.Op(dag.OpTableScan), dag.Op(dag.OpShuffleWrite)).
		Stage("j", 3, dag.Op(dag.OpShuffleRead), dag.Op(dag.OpHashJoin), dag.Op(dag.OpAdhocSink)).
		Pipeline("o", "j", 1<<20).
		Pipeline("c", "j", 1<<20).
		MustBuild()
	plans := Plans{
		"o": func(ctx *TaskContext) error {
			rows, err := ctx.TablePartition("orders")
			if err != nil {
				return err
			}
			return ctx.EmitByKey("j", rows, []int{0})
		},
		"c": func(ctx *TaskContext) error {
			rows, err := ctx.TablePartition("customers")
			if err != nil {
				return err
			}
			return ctx.EmitByKey("j", rows, []int{0})
		},
		"j": func(ctx *TaskContext) error {
			left, err := ctx.Input("o")
			if err != nil {
				return err
			}
			right, err := ctx.Input("c")
			if err != nil {
				return err
			}
			ctx.Sink(Drain(NewHashJoin(right, []int{0}, NewSliceIter(left), []int{0})))
			return nil
		},
	}
	rows, err := e.Run(job, plans)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 300 {
		t.Fatalf("join produced %d rows, want 300", len(rows))
	}
	for _, r := range rows {
		if r[0] != r[2] {
			t.Fatalf("bad join row %v", r)
		}
	}
}

// TestEmitByKeyMixedNumericJoin is the regression test for numeric key
// normalization in Hash: an int64 key column shuffled through EmitByKey
// must co-locate with the equal float64 keys of the other side, or the
// distributed join silently drops matches (the pre-rewrite Hash formatted
// floats via fmt and partitioned int64(3) away from float64(3)).
func TestEmitByKeyMixedNumericJoin(t *testing.T) {
	e := New(DefaultConfig())
	defer e.Close()
	const keys = 60
	var ints, floats []Row
	for i := 0; i < keys; i++ {
		ints = append(ints, Row{int64(i), fmt.Sprintf("int-%d", i)})
		floats = append(floats, Row{float64(i), fmt.Sprintf("float-%d", i)})
	}
	e.RegisterTable(NewTable("ints", Schema{"k", "tag"}, ints, 3))
	e.RegisterTable(NewTable("floats", Schema{"k", "tag"}, floats, 3))

	job := dag.NewBuilder("mixed-join").
		Stage("a", 3, dag.Op(dag.OpTableScan), dag.Op(dag.OpShuffleWrite)).
		Stage("b", 3, dag.Op(dag.OpTableScan), dag.Op(dag.OpShuffleWrite)).
		Stage("j", 5, dag.Op(dag.OpShuffleRead), dag.Op(dag.OpHashJoin), dag.Op(dag.OpAdhocSink)).
		Pipeline("a", "j", 1<<20).
		Pipeline("b", "j", 1<<20).
		MustBuild()
	scan := func(table, to string) StageFn {
		return func(ctx *TaskContext) error {
			rows, err := ctx.TablePartition(table)
			if err != nil {
				return err
			}
			return ctx.EmitByKey(to, rows, []int{0})
		}
	}
	plans := Plans{
		"a": scan("ints", "j"),
		"b": scan("floats", "j"),
		"j": func(ctx *TaskContext) error {
			left, err := ctx.Input("a")
			if err != nil {
				return err
			}
			right, err := ctx.Input("b")
			if err != nil {
				return err
			}
			ctx.Sink(Drain(NewHashJoin(right, []int{0}, NewSliceIter(left), []int{0})))
			return nil
		},
	}
	rows, err := e.Run(job, plans)
	if err != nil {
		t.Fatal(err)
	}
	// Every int64 key must find its float64 twin despite the kind split.
	if len(rows) != keys {
		t.Fatalf("mixed-kind join produced %d rows, want %d", len(rows), keys)
	}
	for _, r := range rows {
		if Compare(r[0], r[2]) != 0 {
			t.Fatalf("joined unequal keys: %v", r)
		}
	}
}

func TestRecoveryPreservesExactResults(t *testing.T) {
	e := New(DefaultConfig())
	defer e.Close()
	table, want := wordsTable(20000, 8)
	e.RegisterTable(table)
	job, plans := wordcountJob("wc-f", 8, 4)

	// Slow the aggregation slightly so the injection lands mid-flight.
	orig := plans["count"]
	plans["count"] = func(ctx *TaskContext) error {
		time.Sleep(20 * time.Millisecond)
		return orig(ctx)
	}
	wait, err := e.Submit(job, plans)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for !e.FailTask("wc-f", "count") {
		select {
		case <-deadline:
			t.Fatal("never found a running count task to kill")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	rows, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := counts(rows); !reflect.DeepEqual(got, want) {
		t.Errorf("post-recovery counts = %v, want %v", got, want)
	}
}

func TestAppErrorFailsJobWithoutRetry(t *testing.T) {
	e := New(DefaultConfig())
	defer e.Close()
	table, _ := wordsTable(100, 2)
	e.RegisterTable(table)
	job, plans := wordcountJob("wc-app", 2, 1)
	plans["scan"] = func(ctx *TaskContext) error {
		if _, err := ctx.TablePartition("missing_table"); err != nil {
			return err
		}
		return nil
	}
	_, err := e.Run(job, plans)
	if err == nil {
		t.Fatal("job should fail")
	}
}

func TestPanicBecomesTaskFailureThenRecovers(t *testing.T) {
	e := New(DefaultConfig())
	defer e.Close()
	table, want := wordsTable(1000, 3)
	e.RegisterTable(table)
	job, plans := wordcountJob("wc-p", 3, 2)
	panicked := false
	orig := plans["count"]
	plans["count"] = func(ctx *TaskContext) error {
		if ctx.Index() == 0 && !panicked {
			panicked = true
			panic("boom")
		}
		return orig(ctx)
	}
	rows, err := e.Run(job, plans)
	if err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("panic never triggered")
	}
	if got := counts(rows); !reflect.DeepEqual(got, want) {
		t.Errorf("counts after panic recovery = %v", got)
	}
}

func TestConcurrentJobs(t *testing.T) {
	e := New(Config{Machines: 4, ExecutorsPerMachine: 6})
	defer e.Close()
	table, want := wordsTable(3000, 4)
	e.RegisterTable(table)
	type result struct {
		rows []Row
		err  error
	}
	waits := make([]func() ([]Row, error), 5)
	for i := range waits {
		job, plans := wordcountJob(fmt.Sprintf("wc-%d", i), 4, 2)
		w, err := e.Submit(job, plans)
		if err != nil {
			t.Fatal(err)
		}
		waits[i] = w
	}
	for i, w := range waits {
		rows, err := w()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if got := counts(rows); !reflect.DeepEqual(got, want) {
			t.Errorf("job %d counts wrong", i)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	e := New(DefaultConfig())
	defer e.Close()
	job, plans := wordcountJob("v", 1, 1)
	delete(plans, "count")
	if _, err := e.Submit(job, plans); err == nil {
		t.Error("missing plan accepted")
	}
	table, _ := wordsTable(10, 1)
	e.RegisterTable(table)
	job2, plans2 := wordcountJob("v", 1, 1)
	if _, err := e.Submit(job2, plans2); err != nil {
		t.Fatal(err)
	}
	job3, plans3 := wordcountJob("v", 1, 1)
	if _, err := e.Submit(job3, plans3); err == nil {
		t.Error("duplicate job accepted")
	}
}

func TestStoreBlockingAndDrop(t *testing.T) {
	s := NewStore(2, 0)
	done := make(chan []Row, 1)
	go func() {
		rows, ok := s.Get("k", nil)
		if ok {
			done <- rows
		}
	}()
	time.Sleep(5 * time.Millisecond)
	if err := s.Put("j", 0, "k", []Row{{int64(1)}}); err != nil {
		t.Fatal(err)
	}
	select {
	case rows := <-done:
		if len(rows) != 1 {
			t.Errorf("rows = %v", rows)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked reader never woke")
	}
	// Aborted waits return !ok.
	aborted := func() bool { return true }
	if _, ok := s.Get("absent", aborted); ok {
		t.Error("aborted get succeeded")
	}
	// Re-put replaces (recovery path).
	if err := s.Put("j", 1, "k", []Row{{int64(2)}, {int64(3)}}); err != nil {
		t.Fatal(err)
	}
	rows, ok := s.Get("k", nil)
	if !ok || len(rows) != 2 {
		t.Errorf("after re-put: %v %v", rows, ok)
	}
	s.DropJob("j")
	if _, ok := s.Get("k", aborted); ok {
		t.Error("segment survived DropJob")
	}
}
