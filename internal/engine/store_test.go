package engine

import (
	"math/rand"
	"testing"
)

// TestStoreUsedBytesZeroAfterDropJob pins the byte-accounting invariant:
// whatever mix of write paths a job takes — row puts, batch puts, re-puts
// from recovery, LRU spill under pressure — CacheStats.UsedBytes returns
// to zero once DropJob releases the job's segments.
func TestStoreUsedBytesZeroAfterDropJob(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	rows := randRows(r, 100)
	batch := BatchFromRows(randRows(r, 50))

	t.Run("row and batch puts", func(t *testing.T) {
		s := NewStore(3, 0)
		if err := s.Put("job", 0, "k-rows", rows); err != nil {
			t.Fatal(err)
		}
		if err := s.PutBatch("job", 1, "k-batch", batch); err != nil {
			t.Fatal(err)
		}
		if err := s.PutBatch("job", 2, "k-nil", nil); err != nil {
			t.Fatal(err)
		}
		if used := s.Stats().UsedBytes; used <= 0 {
			t.Fatalf("UsedBytes = %d before drop", used)
		}
		// Exact accounting: the worker holds precisely the encoded sizes of
		// what it stores — the dictified form, the same bytes the wire pays.
		want := int64(EncodedBatchSize(DictifyBatch(BatchFromRows(rows))) +
			EncodedBatchSize(DictifyBatch(batch)) + EncodedBatchSize(&Batch{}))
		if used := s.Stats().UsedBytes; used != want {
			t.Fatalf("UsedBytes = %d, want exact encoded %d", used, want)
		}
		s.DropJob("job")
		if used := s.Stats().UsedBytes; used != 0 {
			t.Fatalf("UsedBytes = %d after DropJob", used)
		}
	})

	t.Run("re-put replaces accounting", func(t *testing.T) {
		s := NewStore(2, 0)
		for attempt := 0; attempt < 5; attempt++ {
			// Recovery re-writes the same key, alternating machines.
			if err := s.Put("job", attempt, "k", rows); err != nil {
				t.Fatal(err)
			}
		}
		want := int64(EncodedBatchSize(DictifyBatch(BatchFromRows(rows))))
		if used := s.Stats().UsedBytes; used != want {
			t.Fatalf("UsedBytes = %d after re-puts, want %d", used, want)
		}
		s.DropJob("job")
		if used := s.Stats().UsedBytes; used != 0 {
			t.Fatalf("UsedBytes = %d after DropJob", used)
		}
	})

	t.Run("spill path", func(t *testing.T) {
		// Tiny capacity: every put pushes earlier segments to disk.
		s := NewStore(1, 64)
		for i := 0; i < 8; i++ {
			key := SegmentKey("job", "a", "b", i, 0)
			if err := s.Put("job", 0, key, rows[:10+i]); err != nil {
				t.Fatal(err)
			}
		}
		if st := s.Stats(); st.SpillEvents == 0 {
			t.Fatal("expected spills under a 64-byte budget")
		}
		// Reads load spilled segments back in (and may evict others).
		if _, ok := s.Get(SegmentKey("job", "a", "b", 0, 0), nil); !ok {
			t.Fatal("segment lost")
		}
		s.DropJob("job")
		if used := s.Stats().UsedBytes; used != 0 {
			t.Fatalf("UsedBytes = %d after DropJob with spills", used)
		}
	})

	t.Run("drop task output path", func(t *testing.T) {
		s := NewStore(2, 0)
		for part := 0; part < 3; part++ {
			if err := s.PutBatch("job", 0, SegmentKey("job", "m", "r", 7, part), batch); err != nil {
				t.Fatal(err)
			}
		}
		s.DropTaskOutput("job", "m", "r", 7, 3)
		if used := s.Stats().UsedBytes; used != 0 {
			t.Fatalf("UsedBytes = %d after DropTaskOutput", used)
		}
		// DropJob after DropTaskOutput must not double-free or resurrect.
		s.DropJob("job")
		if used := s.Stats().UsedBytes; used != 0 {
			t.Fatalf("UsedBytes = %d after DropJob", used)
		}
	})
}

// TestStoreRowAndBatchViewsAgree pins the adapter seam: a segment written
// as rows reads back identically through both APIs, and vice versa.
func TestStoreRowAndBatchViewsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	rows := randRows(r, 64)
	s := NewStore(1, 0)
	if err := s.Put("job", 0, "k1", rows); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("k1", nil); !ok {
		t.Fatal("k1 lost")
	} else {
		rowsEqual(t, "row view", got, rows)
	}
	b, ok := s.GetBatch("k1", nil)
	if !ok {
		t.Fatal("k1 batch lost")
	}
	rowsEqual(t, "batch view", b.Rows(), rows)

	if err := s.PutBatch("job", 0, "k2", b); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("k2", nil); !ok {
		t.Fatal("k2 lost")
	} else {
		rowsEqual(t, "batch write, row read", got, rows)
	}
	s.DropJob("job")
	if used := s.Stats().UsedBytes; used != 0 {
		t.Fatalf("UsedBytes = %d after DropJob", used)
	}
}
