package engine

import "testing"

// Batch-kernel counterparts of the row microbenchmarks, on the same
// workloads (same sizes, key domains and seeds), so `benchstat` and the
// EXPERIMENTS.md table compare the two data planes apples-to-apples. The
// row→batch conversion happens outside the timer: plans hold batches
// end-to-end, so conversion is not part of the steady-state cost.

func BenchmarkBatchHashJoin(b *testing.B) {
	build := BatchFromRows(benchRows(1000, 500, 1))
	probe := BatchFromRows(benchRows(4000, 500, 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := HashJoinBatch(build, []int{0}, probe, []int{0})
		if out.Len == 0 {
			b.Fatal("empty join")
		}
	}
}

func BenchmarkBatchHashAggregate(b *testing.B) {
	batch := BatchFromRows(benchRows(8000, 200, 3))
	aggs := []Agg{{AggSum, 2}, {AggCount, 0}, {AggMin, 2}, {AggMax, 2}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := HashAggregateBatch(batch, []int{0}, aggs)
		if out.Len == 0 {
			b.Fatal("no groups")
		}
	}
}

func BenchmarkBatchSort(b *testing.B) {
	cases := []struct {
		name string
		keys []int
	}{
		{"int64Key", []int{0}},
		{"stringKey", []int{1}},
		{"multiKey", []int{0, 1, 2}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			src := BatchFromRows(benchRows(4000, 1000, 4))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := SortBatch(src, c.keys)
				if out.Len != src.Len {
					b.Fatal("lost rows")
				}
			}
		})
	}
}

func BenchmarkBatchPartitionByKey(b *testing.B) {
	batch := BatchFromRows(benchRows(8000, 4000, 6))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := PartitionBatchByKey(batch, []int{0}, 16)
		if len(parts) != 16 {
			b.Fatal("wrong fan-out")
		}
	}
}

func BenchmarkBatchFilter(b *testing.B) {
	batch := BatchFromRows(benchRows(8000, 4000, 9))
	ints := batch.Cols[0].Ints
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := FilterBatch(batch, func(i int) bool { return ints[i]&1 == 0 })
		if out.Len == 0 {
			b.Fatal("filtered everything")
		}
	}
}

func BenchmarkBatchCodecEncode(b *testing.B) {
	batch := BatchFromRows(benchRows(8000, 4000, 10))
	buf := make([]byte, 0, EncodedBatchSize(batch))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendBatch(buf[:0], batch)
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkBatchCodecDecode(b *testing.B) {
	enc := EncodeBatch(BatchFromRows(benchRows(8000, 4000, 10)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := DecodeBatch(enc)
		if err != nil || out.Len != 8000 {
			b.Fatal("bad decode")
		}
	}
	b.SetBytes(int64(len(enc)))
}

func BenchmarkBatchCodecDecodePooled(b *testing.B) {
	enc := EncodeBatch(BatchFromRows(benchRows(8000, 4000, 10)))
	pool := NewBatchPool()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := pool.Decode(enc)
		if err != nil || out.Len != 8000 {
			b.Fatal("bad decode")
		}
		pool.Put(out)
	}
	b.SetBytes(int64(len(enc)))
}

func BenchmarkBatchCodecDecodeDict(b *testing.B) {
	// Low key domain so the string column dictifies (the shuffle-boundary
	// shape DictifyBatch targets).
	enc := EncodeBatch(DictifyBatch(BatchFromRows(benchRows(8000, 50, 10))))
	pool := NewBatchPool()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := pool.Decode(enc)
		if err != nil || out.Len != 8000 {
			b.Fatal("bad decode")
		}
		pool.Put(out)
	}
	b.SetBytes(int64(len(enc)))
}

func BenchmarkDictifyBatch(b *testing.B) {
	batch := BatchFromRows(benchRows(8000, 50, 12))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := DictifyBatch(batch); out == batch {
			b.Fatal("did not dictify")
		}
	}
}

// BenchmarkBatchFilterChain measures a filter flowing into downstream
// kernels — the case selection vectors exist for: the lazy view feeds
// hashing/aggregation directly instead of gathering half the batch first.
func BenchmarkBatchFilterChain(b *testing.B) {
	batch := BatchFromRows(benchRows(8000, 200, 9))
	ints := batch.Cols[0].Ints
	aggs := []Agg{{AggSum, 2}, {AggCount, 0}}
	b.Run("aggregate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f := FilterBatch(batch, func(i int) bool { return ints[i]&1 == 0 })
			if out := HashAggregateBatch(f, []int{1}, aggs); out.Len == 0 {
				b.Fatal("no groups")
			}
		}
	})
	b.Run("partition", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f := FilterBatch(batch, func(i int) bool { return ints[i]&1 == 0 })
			if parts := PartitionBatchByKey(f, []int{1}, 16); len(parts) != 16 {
				b.Fatal("wrong fan-out")
			}
		}
	})
	b.Run("sort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f := FilterBatch(batch, func(i int) bool { return ints[i]&1 == 0 })
			if out := SortBatch(f, []int{1, 0}); out.Len != f.Len {
				b.Fatal("lost rows")
			}
		}
	})
}

func BenchmarkHashBatchInto(b *testing.B) {
	batch := BatchFromRows(benchRows(8000, 4000, 11))
	dst := make([]uint64, batch.Len)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashBatchInto(batch, []int{0, 1, 2}, dst)
	}
}
