package engine

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestHashNumericNormalization pins the mixed-kind key contract: values
// that Compare treats as equal must hash (and therefore partition)
// identically, whatever numeric kind carries them.
func TestHashNumericNormalization(t *testing.T) {
	equalPairs := [][2]Value{
		{int64(3), float64(3)},
		{int64(0), float64(0)},
		{int64(0), math.Copysign(0, -1)}, // -0.0 compares equal to 0
		{int64(-42), float64(-42)},
		{int64(1 << 40), float64(1 << 40)},
		{float64(2.5), float64(2.5)},
	}
	for _, p := range equalPairs {
		ha := Hash(Row{p[0]}, []int{0})
		hb := Hash(Row{p[1]}, []int{0})
		if ha != hb {
			t.Errorf("Hash(%v %T) = %x but Hash(%v %T) = %x; Compare-equal values must hash equal",
				p[0], p[0], ha, p[1], p[1], hb)
		}
	}
	distinctPairs := [][2]Value{
		{int64(3), float64(3.5)},
		{int64(3), float64(4)},
		{float64(1.5), float64(-1.5)},
		{"3", int64(3)}, // a string is never numeric-equal to a number
	}
	for _, p := range distinctPairs {
		if Hash(Row{p[0]}, []int{0}) == Hash(Row{p[1]}, []int{0}) {
			t.Errorf("suspicious collision between %v (%T) and %v (%T)", p[0], p[0], p[1], p[1])
		}
	}
	// Non-finite and huge floats must hash without panicking and stay
	// self-consistent.
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e300, -1e300, 9.3e18} {
		if Hash(Row{v}, []int{0}) != Hash(Row{v}, []int{0}) {
			t.Errorf("hash of %v not deterministic", v)
		}
	}
}

// TestHashZeroAlloc pins the data plane's allocation budget: hashing the
// supported kinds must not allocate per row.
func TestHashZeroAlloc(t *testing.T) {
	row := Row{int64(123), "some-key", 2.718281828, true}
	keys := []int{0, 1, 2, 3}
	allocs := testing.AllocsPerRun(200, func() {
		Hash(row, keys)
	})
	if allocs != 0 {
		t.Errorf("Hash allocates %.1f times per row, want 0", allocs)
	}
}

// TestHashPropertyCompareEqualImpliesHashEqual drives the normalization
// with random numbers in both kinds.
func TestHashPropertyCompareEqualImpliesHashEqual(t *testing.T) {
	f := func(n int32) bool {
		a := Row{int64(n)}
		b := Row{float64(n)}
		return Hash(a, []int{0}) == Hash(b, []int{0})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// sortOracle is the pre-rewrite sort implementation, kept as the property
// oracle for SortRows' typed fast paths.
func sortOracle(rows []Row, keys []int) {
	sort.SliceStable(rows, func(i, j int) bool {
		return CompareRows(rows[i], rows[j], keys) < 0
	})
}

func TestSortRowsMatchesOracle(t *testing.T) {
	gens := map[string]func(r *rand.Rand) Value{
		"int64":  func(r *rand.Rand) Value { return int64(r.Intn(10)) },
		"string": func(r *rand.Rand) Value { return string(rune('a' + r.Intn(6))) },
		"float64": func(r *rand.Rand) Value {
			return float64(r.Intn(10))
		},
		"mixed": func(r *rand.Rand) Value {
			if r.Intn(2) == 0 {
				return int64(r.Intn(10))
			}
			return float64(r.Intn(10))
		},
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				n := r.Intn(60)
				rows := make([]Row, n)
				for i := range rows {
					// Second column is the input position, so the oracle
					// comparison also checks stability.
					rows[i] = Row{gen(r), int64(i)}
				}
				want := append([]Row(nil), rows...)
				sortOracle(want, []int{0})
				got := append([]Row(nil), rows...)
				SortRows(got, []int{0})
				for i := range got {
					if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestSortRowsMultiKey(t *testing.T) {
	rows := []Row{
		{int64(2), "b", int64(0)},
		{int64(1), "z", int64(1)},
		{int64(2), "a", int64(2)},
		{int64(1), "a", int64(3)},
	}
	SortRows(rows, []int{0, 1})
	want := []int64{3, 1, 2, 0} // positions after (col0, col1) sort
	for i, w := range want {
		if rows[i][2] != w {
			t.Fatalf("row %d = %v, want position %d", i, rows[i], w)
		}
	}
}

func TestPartitionByKey(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	rows := make([]Row, 500)
	for i := range rows {
		rows[i] = Row{int64(r.Intn(40)), int64(i)}
	}
	const n = 7
	parts := PartitionByKey(rows, []int{0}, n)
	if len(parts) != n {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for p, part := range parts {
		total += len(part)
		for _, row := range part {
			if got := int(Hash(row, []int{0}) % n); got != p {
				t.Fatalf("row %v in partition %d, hashes to %d", row, p, got)
			}
		}
	}
	if total != len(rows) {
		t.Fatalf("partitions hold %d rows, want %d", total, len(rows))
	}
	// Mixed-kind keys that compare equal co-locate.
	a := PartitionByKey([]Row{{int64(3)}}, []int{0}, n)
	b := PartitionByKey([]Row{{float64(3)}}, []int{0}, n)
	pa, pb := -1, -1
	for i := 0; i < n; i++ {
		if len(a[i]) > 0 {
			pa = i
		}
		if len(b[i]) > 0 {
			pb = i
		}
	}
	if pa != pb {
		t.Errorf("int64(3) lands in partition %d but float64(3) in %d", pa, pb)
	}
	// Single-consumer fan-out short-circuits.
	if one := PartitionByKey(rows, []int{0}, 1); len(one) != 1 || len(one[0]) != len(rows) {
		t.Error("n=1 must yield one full partition")
	}
}

func TestPartitionByRange(t *testing.T) {
	var rows []Row
	for i := 0; i < 100; i++ {
		rows = append(rows, Row{int64(i)})
	}
	bounds := []Row{{int64(25)}, {int64(50)}, {int64(75)}}
	parts := PartitionByRange(rows, []int{0}, bounds)
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	for p, part := range parts {
		if len(part) != 25 {
			t.Errorf("partition %d has %d rows", p, len(part))
		}
		for _, r := range part {
			v := r[0].(int64)
			if p < len(bounds) && v >= int64(25*(p+1)) {
				t.Errorf("row %d above bound in partition %d", v, p)
			}
			if v < int64(25*p) {
				t.Errorf("row %d below partition %d", v, p)
			}
		}
	}
	if one := PartitionByRange(rows, []int{0}, nil); len(one) != 1 || len(one[0]) != len(rows) {
		t.Error("no bounds must yield one full partition")
	}
}

// TestPartitionByKeyAllocBudget pins the two-pass partitioner's constant
// allocation count (pidx + counts + backing + parts).
func TestPartitionByKeyAllocBudget(t *testing.T) {
	rows := make([]Row, 1000)
	for i := range rows {
		rows[i] = Row{int64(i)}
	}
	allocs := testing.AllocsPerRun(50, func() {
		PartitionByKey(rows, []int{0}, 16)
	})
	if allocs > 6 {
		t.Errorf("PartitionByKey allocates %.1f times per call, want a small constant", allocs)
	}
}
