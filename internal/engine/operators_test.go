package engine

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func intRow(vs ...int64) Row {
	r := make(Row, len(vs))
	for i, v := range vs {
		r[i] = v
	}
	return r
}

func TestCompareValues(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{int64(1), int64(2), -1},
		{int64(2), int64(2), 0},
		{int64(3), int64(2), 1},
		{1.5, 2.5, -1},
		{int64(2), 1.5, 1},
		{1.5, int64(2), -1},
		{"a", "b", -1},
		{"b", "b", 0},
		{false, true, -1},
		{true, true, 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("incomparable values did not panic")
		}
	}()
	Compare("x", int64(1))
}

func TestSchemaCol(t *testing.T) {
	s := Schema{"a", "b"}
	if s.Col("b") != 1 || s.Col("z") != -1 {
		t.Error("Col wrong")
	}
	if s.MustCol("a") != 0 {
		t.Error("MustCol wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCol on unknown did not panic")
		}
	}()
	s.MustCol("z")
}

func TestFilterProjectLimit(t *testing.T) {
	rows := []Row{intRow(1), intRow(2), intRow(3), intRow(4)}
	it := &Limit{N: 2, In: &Project{
		Fn: func(r Row) Row { return Row{r[0].(int64) * 10} },
		In: &Filter{Pred: func(r Row) bool { return r[0].(int64)%2 == 0 }, In: NewSliceIter(rows)},
	}}
	got := Drain(it)
	if len(got) != 2 || got[0][0] != int64(20) || got[1][0] != int64(40) {
		t.Errorf("got %v", got)
	}
	if r, ok := it.Next(); ok {
		t.Errorf("limit exceeded: %v", r)
	}
}

func TestHashJoin(t *testing.T) {
	build := []Row{{int64(1), "a"}, {int64(2), "b"}, {int64(2), "c"}}
	probe := []Row{{int64(2), "x"}, {int64(3), "y"}, {int64(1), "z"}}
	j := NewHashJoin(build, []int{0}, NewSliceIter(probe), []int{0})
	got := Drain(j)
	if len(got) != 3 {
		t.Fatalf("got %d rows: %v", len(got), got)
	}
	// Probe row (2,x) matches both (2,b) and (2,c).
	seen := map[string]bool{}
	for _, r := range got {
		seen[r[1].(string)+r[3].(string)] = true
	}
	for _, want := range []string{"xb", "xc", "za"} {
		if !seen[want] {
			t.Errorf("missing join pair %s in %v", want, got)
		}
	}
}

func TestMergeJoin(t *testing.T) {
	left := []Row{{int64(1), "l1"}, {int64(2), "l2"}, {int64(2), "l2b"}, {int64(4), "l4"}}
	right := []Row{{int64(2), "r2"}, {int64(2), "r2b"}, {int64(3), "r3"}, {int64(4), "r4"}}
	m := NewMergeJoin(left, []int{0}, right, []int{0})
	got := Drain(m)
	// key 2: 2x2 = 4 pairs; key 4: 1 pair.
	if len(got) != 5 {
		t.Fatalf("got %d rows: %v", len(got), got)
	}
	for _, r := range got {
		if Compare(r[0], r[2]) != 0 {
			t.Errorf("mismatched keys in %v", r)
		}
	}
}

// TestMergeJoinMatchesHashJoin cross-validates the two join algorithms on
// random inputs.
func TestMergeJoinMatchesHashJoin(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gen := func(n int) []Row {
			rows := make([]Row, n)
			for i := range rows {
				rows[i] = Row{int64(r.Intn(8)), int64(i)}
			}
			return rows
		}
		left, right := gen(r.Intn(30)), gen(r.Intn(30))
		SortRows(left, []int{0})
		SortRows(right, []int{0})
		mj := Drain(NewMergeJoin(left, []int{0}, right, []int{0}))
		hj := Drain(NewHashJoin(right, []int{0}, NewSliceIter(left), []int{0}))
		if len(mj) != len(hj) {
			return false
		}
		key := func(rs []Row) []string {
			out := make([]string, len(rs))
			for i, row := range rs {
				out[i] = rowKey(row)
			}
			sort.Strings(out)
			return out
		}
		return reflect.DeepEqual(key(mj), key(hj))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func rowKey(r Row) string {
	s := ""
	for _, v := range r {
		switch x := v.(type) {
		case int64:
			s += "i" + string(rune('0'+x%10)) + "|"
		default:
			s += "v|"
		}
	}
	return s
}

func TestHashAggregate(t *testing.T) {
	rows := []Row{
		{"a", int64(1)}, {"b", int64(2)}, {"a", int64(3)}, {"b", int64(4)}, {"a", int64(5)},
	}
	got := HashAggregate(rows, []int{0}, []Agg{{AggSum, 1}, {AggCount, 1}, {AggMin, 1}, {AggMax, 1}})
	want := []Row{
		{"a", int64(9), int64(3), int64(1), int64(5)},
		{"b", int64(6), int64(2), int64(2), int64(4)},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestStreamedAggregateMatchesHash(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(100)
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = Row{int64(r.Intn(6)), float64(r.Intn(10))}
		}
		hashed := HashAggregate(rows, []int{0}, []Agg{{AggSum, 1}, {AggCount, 1}})
		sorted := append([]Row(nil), rows...)
		SortRows(sorted, []int{0})
		streamed := StreamedAggregate(NewSliceIter(sorted), []int{0}, []Agg{{AggSum, 1}, {AggCount, 1}})
		return reflect.DeepEqual(hashed, streamed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMergeSortedRuns(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var runs [][]Row
		var all []Row
		for i := 0; i < 1+r.Intn(5); i++ {
			n := r.Intn(20)
			run := make([]Row, n)
			for j := range run {
				run[j] = Row{int64(r.Intn(100))}
			}
			SortRows(run, []int{0})
			runs = append(runs, run)
			all = append(all, run...)
		}
		merged := MergeSortedRuns(runs, []int{0})
		SortRows(all, []int{0})
		if len(merged) != len(all) {
			return false
		}
		for i := range merged {
			if Compare(merged[i][0], all[i][0]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestTopK(t *testing.T) {
	rows := []Row{intRow(5), intRow(1), intRow(3), intRow(2)}
	got := TopK(rows, []int{0}, 2)
	if len(got) != 2 || got[0][0] != int64(1) || got[1][0] != int64(2) {
		t.Errorf("got %v", got)
	}
	if got := TopK(rows, []int{0}, 10); len(got) != 4 {
		t.Errorf("k>len: %v", got)
	}
	// Input not mutated.
	if rows[0][0] != int64(5) {
		t.Error("TopK mutated input")
	}
}

func TestHashStability(t *testing.T) {
	a := Row{"key", int64(7), 1.5, true}
	b := Row{"key", int64(7), 1.5, true}
	if Hash(a, []int{0, 1, 2, 3}) != Hash(b, []int{0, 1, 2, 3}) {
		t.Error("equal rows hash differently")
	}
	if Hash(a, []int{0}) == Hash(Row{"other"}, []int{0}) {
		t.Error("suspicious collision") // not guaranteed, but this pair must differ
	}
}

func TestNewTablePartitioning(t *testing.T) {
	rows := make([]Row, 10)
	for i := range rows {
		rows[i] = intRow(int64(i))
	}
	tab := NewTable("t", Schema{"x"}, rows, 3)
	if len(tab.Partitions) != 3 || tab.NumRows() != 10 {
		t.Errorf("partitions=%d rows=%d", len(tab.Partitions), tab.NumRows())
	}
	tab2 := NewTable("t2", Schema{"x"}, rows, 0)
	if len(tab2.Partitions) != 1 {
		t.Error("zero parts should clamp to 1")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{int64(1), "a"}
	c := r.Clone()
	c[0] = int64(9)
	if r[0] != int64(1) {
		t.Error("clone shares storage")
	}
}
