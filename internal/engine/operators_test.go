package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func intRow(vs ...int64) Row {
	r := make(Row, len(vs))
	for i, v := range vs {
		r[i] = v
	}
	return r
}

func TestCompareValues(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{int64(1), int64(2), -1},
		{int64(2), int64(2), 0},
		{int64(3), int64(2), 1},
		{1.5, 2.5, -1},
		{int64(2), 1.5, 1},
		{1.5, int64(2), -1},
		{"a", "b", -1},
		{"b", "b", 0},
		{false, true, -1},
		{true, true, 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("incomparable values did not panic")
		}
	}()
	Compare("x", int64(1))
}

func TestSchemaCol(t *testing.T) {
	s := Schema{"a", "b"}
	if s.Col("b") != 1 || s.Col("z") != -1 {
		t.Error("Col wrong")
	}
	if s.MustCol("a") != 0 {
		t.Error("MustCol wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCol on unknown did not panic")
		}
	}()
	s.MustCol("z")
}

func TestFilterProjectLimit(t *testing.T) {
	rows := []Row{intRow(1), intRow(2), intRow(3), intRow(4)}
	it := &Limit{N: 2, In: &Project{
		Fn: func(r Row) Row { return Row{r[0].(int64) * 10} },
		In: &Filter{Pred: func(r Row) bool { return r[0].(int64)%2 == 0 }, In: NewSliceIter(rows)},
	}}
	got := Drain(it)
	if len(got) != 2 || got[0][0] != int64(20) || got[1][0] != int64(40) {
		t.Errorf("got %v", got)
	}
	if r, ok := it.Next(); ok {
		t.Errorf("limit exceeded: %v", r)
	}
}

func TestHashJoin(t *testing.T) {
	build := []Row{{int64(1), "a"}, {int64(2), "b"}, {int64(2), "c"}}
	probe := []Row{{int64(2), "x"}, {int64(3), "y"}, {int64(1), "z"}}
	j := NewHashJoin(build, []int{0}, NewSliceIter(probe), []int{0})
	got := Drain(j)
	if len(got) != 3 {
		t.Fatalf("got %d rows: %v", len(got), got)
	}
	// Probe row (2,x) matches both (2,b) and (2,c).
	seen := map[string]bool{}
	for _, r := range got {
		seen[r[1].(string)+r[3].(string)] = true
	}
	for _, want := range []string{"xb", "xc", "za"} {
		if !seen[want] {
			t.Errorf("missing join pair %s in %v", want, got)
		}
	}
}

func TestMergeJoin(t *testing.T) {
	left := []Row{{int64(1), "l1"}, {int64(2), "l2"}, {int64(2), "l2b"}, {int64(4), "l4"}}
	right := []Row{{int64(2), "r2"}, {int64(2), "r2b"}, {int64(3), "r3"}, {int64(4), "r4"}}
	m := NewMergeJoin(left, []int{0}, right, []int{0})
	got := Drain(m)
	// key 2: 2x2 = 4 pairs; key 4: 1 pair.
	if len(got) != 5 {
		t.Fatalf("got %d rows: %v", len(got), got)
	}
	for _, r := range got {
		if Compare(r[0], r[2]) != 0 {
			t.Errorf("mismatched keys in %v", r)
		}
	}
}

// TestMergeJoinMatchesHashJoin cross-validates the two join algorithms on
// random inputs.
func TestMergeJoinMatchesHashJoin(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gen := func(n int) []Row {
			rows := make([]Row, n)
			for i := range rows {
				rows[i] = Row{int64(r.Intn(8)), int64(i)}
			}
			return rows
		}
		left, right := gen(r.Intn(30)), gen(r.Intn(30))
		SortRows(left, []int{0})
		SortRows(right, []int{0})
		mj := Drain(NewMergeJoin(left, []int{0}, right, []int{0}))
		hj := Drain(NewHashJoin(right, []int{0}, NewSliceIter(left), []int{0}))
		if len(mj) != len(hj) {
			return false
		}
		key := func(rs []Row) []string {
			out := make([]string, len(rs))
			for i, row := range rs {
				out[i] = rowKey(row)
			}
			sort.Strings(out)
			return out
		}
		return reflect.DeepEqual(key(mj), key(hj))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func rowKey(r Row) string {
	s := ""
	for _, v := range r {
		switch x := v.(type) {
		case int64:
			s += "i" + string(rune('0'+x%10)) + "|"
		default:
			s += "v|"
		}
	}
	return s
}

func TestHashAggregate(t *testing.T) {
	rows := []Row{
		{"a", int64(1)}, {"b", int64(2)}, {"a", int64(3)}, {"b", int64(4)}, {"a", int64(5)},
	}
	got := HashAggregate(rows, []int{0}, []Agg{{AggSum, 1}, {AggCount, 1}, {AggMin, 1}, {AggMax, 1}})
	want := []Row{
		{"a", int64(9), int64(3), int64(1), int64(5)},
		{"b", int64(6), int64(2), int64(2), int64(4)},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestStreamedAggregateMatchesHash(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(100)
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = Row{int64(r.Intn(6)), float64(r.Intn(10))}
		}
		hashed := HashAggregate(rows, []int{0}, []Agg{{AggSum, 1}, {AggCount, 1}})
		sorted := append([]Row(nil), rows...)
		SortRows(sorted, []int{0})
		streamed := StreamedAggregate(NewSliceIter(sorted), []int{0}, []Agg{{AggSum, 1}, {AggCount, 1}})
		return reflect.DeepEqual(hashed, streamed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMergeSortedRuns(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var runs [][]Row
		var all []Row
		for i := 0; i < 1+r.Intn(5); i++ {
			n := r.Intn(20)
			run := make([]Row, n)
			for j := range run {
				run[j] = Row{int64(r.Intn(100))}
			}
			SortRows(run, []int{0})
			runs = append(runs, run)
			all = append(all, run...)
		}
		merged := MergeSortedRuns(runs, []int{0})
		SortRows(all, []int{0})
		if len(merged) != len(all) {
			return false
		}
		for i := range merged {
			if Compare(merged[i][0], all[i][0]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// mixedKey returns a random numeric key whose kind (int64 vs integral
// float64) is itself random — exercising the Hash normalization and the
// Compare-based equality used by joins and aggregates.
func mixedKey(r *rand.Rand, domain int) Value {
	k := r.Intn(domain)
	if r.Intn(2) == 0 {
		return int64(k)
	}
	return float64(k)
}

// TestHashJoinMixedNumericKeys: an int64 build column joined against a
// float64 probe column must match wherever Compare says the keys are
// equal (the Hash normalization regression).
func TestHashJoinMixedNumericKeys(t *testing.T) {
	build := []Row{{int64(1), "b1"}, {int64(2), "b2"}, {int64(3), "b3"}}
	probe := []Row{{float64(2), "p2"}, {float64(3), "p3"}, {float64(9), "p9"}}
	got := Drain(NewHashJoin(build, []int{0}, NewSliceIter(probe), []int{0}))
	if len(got) != 2 {
		t.Fatalf("join found %d matches, want 2: %v", len(got), got)
	}
	for _, r := range got {
		if Compare(r[0], r[2]) != 0 {
			t.Errorf("mismatched keys in %v", r)
		}
	}
}

// TestMergeJoinMatchesHashJoinMixedKinds cross-validates the joins when
// numeric key kinds are mixed within the same column.
func TestMergeJoinMatchesHashJoinMixedKinds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gen := func(n int) []Row {
			rows := make([]Row, n)
			for i := range rows {
				rows[i] = Row{mixedKey(r, 6), int64(i)}
			}
			return rows
		}
		left, right := gen(r.Intn(30)), gen(r.Intn(30))
		SortRows(left, []int{0})
		SortRows(right, []int{0})
		mj := Drain(NewMergeJoin(left, []int{0}, right, []int{0}))
		hj := Drain(NewHashJoin(right, []int{0}, NewSliceIter(left), []int{0}))
		return len(mj) == len(hj) && reflect.DeepEqual(canonRows(mj), canonRows(hj))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// canonRows renders rows order-insensitively with numerics normalized, so
// int64(3) and float64(3) — equal under Compare — canonicalize alike.
func canonRows(rs []Row) []string {
	out := make([]string, len(rs))
	for i, row := range rs {
		s := ""
		for _, v := range row {
			switch x := v.(type) {
			case int64:
				s += fmt.Sprintf("n%g|", float64(x))
			case float64:
				s += fmt.Sprintf("n%g|", x)
			default:
				s += fmt.Sprintf("v%v|", x)
			}
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

// TestHashAggregateMatchesStreamedMultiKey: the flat-table hash aggregate
// and the one-pass streamed aggregate must agree on random multi-key,
// mixed-kind row sets (after sorting the input for the streamed one).
func TestHashAggregateMatchesStreamedMultiKey(t *testing.T) {
	aggs := []Agg{{AggSum, 2}, {AggCount, 2}, {AggMin, 2}, {AggMax, 2}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(120)
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = Row{int64(r.Intn(4)), string(rune('a' + r.Intn(3))), float64(r.Intn(10))}
		}
		hashed := HashAggregate(rows, []int{0, 1}, aggs)
		sorted := append([]Row(nil), rows...)
		SortRows(sorted, []int{0, 1})
		streamed := StreamedAggregate(NewSliceIter(sorted), []int{0, 1}, aggs)
		return reflect.DeepEqual(hashed, streamed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestHashAggregateMixedKindKeys: rows whose group key arrives sometimes
// as int64 and sometimes as float64 must land in one group.
func TestHashAggregateMixedKindKeys(t *testing.T) {
	rows := []Row{
		{int64(7), int64(1)},
		{float64(7), int64(10)},
		{int64(8), int64(100)},
	}
	got := HashAggregate(rows, []int{0}, []Agg{{AggSum, 1}, {AggCount, 1}})
	if len(got) != 2 {
		t.Fatalf("groups = %d, want 2: %v", len(got), got)
	}
	if got[0][1] != int64(11) || got[0][2] != int64(2) {
		t.Errorf("mixed-kind group folded to %v", got[0])
	}
}

func TestMergeSortedRunsManyRuns(t *testing.T) {
	// More than four runs exercises the cursor-heap path.
	r := rand.New(rand.NewSource(9))
	var runs [][]Row
	var all []Row
	for i := 0; i < 12; i++ {
		n := r.Intn(40)
		run := make([]Row, n)
		for j := range run {
			run[j] = Row{int64(r.Intn(50))}
		}
		SortRows(run, []int{0})
		runs = append(runs, run)
		all = append(all, run...)
	}
	merged := MergeSortedRuns(runs, []int{0})
	SortRows(all, []int{0})
	if len(merged) != len(all) {
		t.Fatalf("merged %d rows, want %d", len(merged), len(all))
	}
	for i := range merged {
		if Compare(merged[i][0], all[i][0]) != 0 {
			t.Fatalf("order diverges at %d: %v vs %v", i, merged[i], all[i])
		}
	}
}

// TestTopKMatchesSortOracle: the bounded heap must reproduce the
// copy+stable-sort+truncate oracle exactly, including tie stability.
func TestTopKMatchesSortOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(80)
		rows := make([]Row, n)
		for i := range rows {
			// Small key domain forces ties; second column is the input
			// position, which the oracle's stability preserves.
			rows[i] = Row{int64(r.Intn(8)), int64(i)}
		}
		k := r.Intn(20)
		oracle := append([]Row(nil), rows...)
		sort.SliceStable(oracle, func(i, j int) bool { return CompareRows(oracle[i], oracle[j], []int{0}) < 0 })
		if k < len(oracle) {
			oracle = oracle[:k]
		}
		got := TopK(rows, []int{0}, k)
		if len(got) != len(oracle) {
			return false
		}
		for i := range got {
			if got[i][0] != oracle[i][0] || got[i][1] != oracle[i][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestTopKDesc(t *testing.T) {
	rows := []Row{intRow(5), intRow(1), intRow(9), intRow(7)}
	got := TopKDesc(rows, []int{0}, 2)
	if len(got) != 2 || got[0][0] != int64(9) || got[1][0] != int64(7) {
		t.Errorf("got %v", got)
	}
	// Stability on ties: the earlier input row ranks first.
	tied := []Row{{int64(3), "first"}, {int64(3), "second"}, {int64(1), "low"}}
	got = TopKDesc(tied, []int{0}, 2)
	if got[0][1] != "first" || got[1][1] != "second" {
		t.Errorf("tie order: %v", got)
	}
}

func TestTopK(t *testing.T) {
	rows := []Row{intRow(5), intRow(1), intRow(3), intRow(2)}
	got := TopK(rows, []int{0}, 2)
	if len(got) != 2 || got[0][0] != int64(1) || got[1][0] != int64(2) {
		t.Errorf("got %v", got)
	}
	if got := TopK(rows, []int{0}, 10); len(got) != 4 {
		t.Errorf("k>len: %v", got)
	}
	// Input not mutated.
	if rows[0][0] != int64(5) {
		t.Error("TopK mutated input")
	}
}

func TestHashStability(t *testing.T) {
	a := Row{"key", int64(7), 1.5, true}
	b := Row{"key", int64(7), 1.5, true}
	if Hash(a, []int{0, 1, 2, 3}) != Hash(b, []int{0, 1, 2, 3}) {
		t.Error("equal rows hash differently")
	}
	if Hash(a, []int{0}) == Hash(Row{"other"}, []int{0}) {
		t.Error("suspicious collision") // not guaranteed, but this pair must differ
	}
}

func TestNewTablePartitioning(t *testing.T) {
	rows := make([]Row, 10)
	for i := range rows {
		rows[i] = intRow(int64(i))
	}
	tab := NewTable("t", Schema{"x"}, rows, 3)
	if len(tab.Partitions) != 3 || tab.NumRows() != 10 {
		t.Errorf("partitions=%d rows=%d", len(tab.Partitions), tab.NumRows())
	}
	tab2 := NewTable("t2", Schema{"x"}, rows, 0)
	if len(tab2.Partitions) != 1 {
		t.Error("zero parts should clamp to 1")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{int64(1), "a"}
	c := r.Clone()
	c[0] = int64(9)
	if r[0] != int64(1) {
		t.Error("clone shares storage")
	}
}
