package engine

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
)

// TestDictifyBatchEquivalence pins DictifyBatch to the plain representation:
// a dictified batch is cell-for-cell the same batch — same values, same
// nulls, bit-identical row hashes — and survives the codec unchanged.
func TestDictifyBatchEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(60))
	b := BatchFromRows(randRows(r, 200)) // string col: 6 distinct values, ~15% NULLs
	d := DictifyBatch(b)
	if d == b {
		t.Fatal("low-cardinality string column did not dictify")
	}
	if d.Cols[2].Type != TDict {
		t.Fatalf("col 2 type = %v, want TDict", d.Cols[2].Type)
	}
	batchesEqual(t, "dictified cells", d, b)

	// Row hashes must be bit-identical so dictified segments co-partition
	// with plain ones.
	keys := []int{0, 2, 4}
	hb := make([]uint64, b.Len)
	hd := make([]uint64, d.Len)
	HashBatchInto(b, keys, hb)
	HashBatchInto(d, keys, hd)
	for i := range hb {
		if hb[i] != hd[i] {
			t.Fatalf("row %d hash %x (plain) != %x (dict)", i, hb[i], hd[i])
		}
	}

	// Dictified batches round-trip the codec and come back smaller.
	encPlain, encDict := EncodeBatch(b), EncodeBatch(d)
	if len(encDict) >= len(encPlain) {
		t.Fatalf("dict encoding %dB not smaller than plain %dB", len(encDict), len(encPlain))
	}
	dec, err := DecodeBatch(encDict)
	if err != nil {
		t.Fatal(err)
	}
	batchesEqual(t, "dict round trip", dec, b)

	// A batch with nothing worth dictifying comes back unchanged.
	hi := BatchFromRows(benchRows(500, 500, 61)) // ~500 distinct strings
	if DictifyBatch(hi) != hi {
		t.Error("high-cardinality batch was rewritten")
	}
	// ... and so does a tiny all-distinct column, where the dictionary
	// costs more than it saves.
	tiny := NewBatch(StringCol([]string{"a", "b", "c"}))
	if DictifyBatch(tiny) != tiny {
		t.Error("all-distinct column was rewritten")
	}
}

// TestDictKernelEquivalence runs every string-touching kernel over the
// dictified and plain forms of one batch and requires identical output.
func TestDictKernelEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	plain := BatchFromRows(randRows(r, 300))
	dict := DictifyBatch(plain)

	batchesEqual(t, "sort", SortBatch(dict, []int{2, 0}), SortBatch(plain, []int{2, 0}))

	f := func(b *Batch) *Batch {
		return FilterBatch(b, func(i int) bool { return !b.Cols[0].IsNull(i) && b.Cols[0].Ints[i]%3 == 0 }).Materialize()
	}
	batchesEqual(t, "filter", f(dict), f(plain))

	pd := PartitionBatchByKey(dict, []int{2}, 4)
	pp := PartitionBatchByKey(plain, []int{2}, 4)
	for p := range pp {
		batchesEqual(t, "partition", pd[p], pp[p])
	}

	aggs := []Agg{{AggCount, 0}, {AggSum, 0}, {AggMin, 2}, {AggMax, 2}}
	batchesEqual(t, "aggregate",
		HashAggregateBatch(dict, []int{2}, aggs),
		HashAggregateBatch(plain, []int{2}, aggs))

	probe := BatchFromRows(randRows(rand.New(rand.NewSource(63)), 150))
	batchesEqual(t, "join",
		HashJoinBatch(dict, []int{2}, DictifyBatch(probe), []int{2}),
		HashJoinBatch(plain, []int{2}, probe, []int{2}))
}

// TestDictCodecWidths round-trips dictionary columns across code widths:
// 0 bits (single entry), 1, 2, full-byte and just-past-a-byte dictionaries,
// empty strings and NULL slots included.
func TestDictCodecWidths(t *testing.T) {
	dicts := [][]string{
		{""},
		{"a", ""},
		{"x", "y", "z"},
		make([]string, 255),
		make([]string, 256),
	}
	for _, d := range dicts {
		for i := range d {
			if d[i] == "" && len(d) > 3 {
				d[i] = strings.Repeat("v", i%7) + string(rune('0'+i%10))
			}
		}
		const rows = 100
		codes := make([]uint32, rows)
		for i := range codes {
			codes[i] = uint32(i*7) % uint32(len(d))
		}
		col := DictCol(d, codes)
		col.setNull(3, rows)
		b := &Batch{Cols: []Column{col}, Len: rows}
		enc := EncodeBatch(b)
		if len(enc) != EncodedBatchSize(b) {
			t.Fatalf("dict %d entries: encoded %dB, size helper %dB", len(d), len(enc), EncodedBatchSize(b))
		}
		dec, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("dict %d entries: %v", len(d), err)
		}
		batchesEqual(t, "dict widths", dec, b)
		if dec.Cols[0].Type != TDict {
			t.Fatalf("dict %d entries decoded as %v", len(d), dec.Cols[0].Type)
		}
		// Canonical form: re-encoding the decoded batch is a fixpoint.
		if !bytes.Equal(EncodeBatch(dec), enc) {
			t.Fatalf("dict %d entries: re-encode differs", len(d))
		}
	}
	// Zero rows with a non-empty dictionary is legal.
	b := &Batch{Cols: []Column{DictCol([]string{"only"}, nil)}}
	dec, err := DecodeBatch(EncodeBatch(b))
	if err != nil {
		t.Fatal(err)
	}
	batchesEqual(t, "zero-row dict", dec, b)
}

// TestDecodeBatchDictRowBound is the satellite regression for the row-count
// bound: a width-0 dictionary column carries thousands of rows in a handful
// of bytes — legitimately under one byte per row — so the old
// rows ≤ 8×payload rejection must not fire; genuinely absurd claims must
// still die before allocation.
func TestDecodeBatchDictRowBound(t *testing.T) {
	const rows = 5000
	codes := make([]uint32, rows)
	b := &Batch{Cols: []Column{DictCol([]string{"x"}, codes)}, Len: rows}
	enc := EncodeBatch(b)
	if rows <= 8*len(enc) {
		t.Fatalf("test vector too fat: %d rows in %d bytes", rows, len(enc))
	}
	dec, err := DecodeBatch(enc)
	if err != nil {
		t.Fatalf("sound sub-byte-per-row batch rejected: %v", err)
	}
	batchesEqual(t, "dict row bound", dec, b)

	// Hostile: a tiny frame claiming more rows than the fixed cap.
	h := binary.AppendUvarint(nil, maxCountOnlyRows+1)
	h = binary.AppendUvarint(h, 1)
	h = append(h, byte(TDict), 0, 1, 1, 'x')
	if _, err := DecodeBatch(h); err == nil {
		t.Error("over-cap dict row count accepted")
	}

	// Hostile: rows with an empty dictionary have no representable value.
	if _, err := DecodeBatch([]byte{3, 1, byte(TDict), 0, 0}); err == nil {
		t.Error("rows with empty dictionary accepted")
	}

	// Hostile: a code outside the dictionary (3-entry dict packs at 2 bits,
	// so the bit pattern 3 is representable but unassigned).
	bad := []byte{1, 1, byte(TDict), 0, 3, 1, 'a', 1, 'b', 1, 'c', 0b11}
	if _, err := DecodeBatch(bad); err == nil {
		t.Error("out-of-range dictionary code accepted")
	}

	// Hostile: a dictionary claiming more entries than the payload holds.
	short := []byte{0, 1, byte(TDict), 0, 0xff, 0x7f}
	if _, err := DecodeBatch(short); err == nil {
		t.Error("oversized dictionary claim accepted")
	}

	// Sloppy-but-decodable: set padding bits in the code block decode fine
	// and one re-encode canonicalises them away (the fuzz fixpoint).
	pad := []byte{1, 1, byte(TDict), 0, 2, 1, 'a', 1, 'b', 0xff}
	dec2, err := DecodeBatch(pad)
	if err != nil {
		t.Fatalf("padding bits rejected: %v", err)
	}
	if got := dec2.Value(0, 0); got != "b" {
		t.Fatalf("padded code decoded to %v, want b", got)
	}
	canon := EncodeBatch(dec2)
	dec3, err := DecodeBatch(canon)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeBatch(dec3), canon) {
		t.Error("re-encode of canonical form is not a fixpoint")
	}
}
