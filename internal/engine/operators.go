package engine

import "sort"

// Iter is the engine's row stream: Next returns the next row and whether
// one was produced. Operators compose Iters the volcano way.
type Iter interface {
	Next() (Row, bool)
}

// SliceIter iterates a row slice.
type SliceIter struct {
	rows []Row
	i    int
}

// NewSliceIter wraps rows.
func NewSliceIter(rows []Row) *SliceIter { return &SliceIter{rows: rows} }

// Next implements Iter.
func (s *SliceIter) Next() (Row, bool) {
	if s.i >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.i]
	s.i++
	return r, true
}

// Drain collects an iterator into a slice.
func Drain(it Iter) []Row {
	var out []Row
	for {
		r, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// Filter yields rows satisfying pred.
type Filter struct {
	In   Iter
	Pred func(Row) bool
}

// Next implements Iter.
func (f *Filter) Next() (Row, bool) {
	for {
		r, ok := f.In.Next()
		if !ok {
			return nil, false
		}
		if f.Pred(r) {
			return r, true
		}
	}
}

// Project maps each row through Fn.
type Project struct {
	In Iter
	Fn func(Row) Row
}

// Next implements Iter.
func (p *Project) Next() (Row, bool) {
	r, ok := p.In.Next()
	if !ok {
		return nil, false
	}
	return p.Fn(r), true
}

// Limit yields at most N rows.
type Limit struct {
	In Iter
	N  int
}

// Next implements Iter.
func (l *Limit) Next() (Row, bool) {
	if l.N <= 0 {
		return nil, false
	}
	r, ok := l.In.Next()
	if !ok {
		return nil, false
	}
	l.N--
	return r, true
}

// HashJoin joins a build side (fully materialised) against a probe stream
// on equal keys, emitting probe-row ++ build-row concatenations (inner
// join).
type HashJoin struct {
	probe     Iter
	probeKeys []int
	table     map[uint64][]Row
	buildKeys []int
	// pending are matches of the current probe row not yet emitted.
	pending []Row
	current Row
}

// NewHashJoin builds the hash table from build rows.
func NewHashJoin(build []Row, buildKeys []int, probe Iter, probeKeys []int) *HashJoin {
	t := make(map[uint64][]Row)
	for _, r := range build {
		h := Hash(r, buildKeys)
		t[h] = append(t[h], r)
	}
	return &HashJoin{probe: probe, probeKeys: probeKeys, table: t, buildKeys: buildKeys}
}

// Next implements Iter.
func (j *HashJoin) Next() (Row, bool) {
	for {
		for len(j.pending) > 0 {
			b := j.pending[0]
			j.pending = j.pending[1:]
			if keysEqual(j.current, j.probeKeys, b, j.buildKeys) {
				out := make(Row, 0, len(j.current)+len(b))
				out = append(out, j.current...)
				out = append(out, b...)
				return out, true
			}
		}
		r, ok := j.probe.Next()
		if !ok {
			return nil, false
		}
		j.current = r
		j.pending = append([]Row(nil), j.table[Hash(r, j.probeKeys)]...)
	}
}

func keysEqual(a Row, ak []int, b Row, bk []int) bool {
	for i := range ak {
		if Compare(a[ak[i]], b[bk[i]]) != 0 {
			return false
		}
	}
	return true
}

// MergeJoin joins two key-sorted inputs on equal keys (inner join),
// emitting left ++ right. Both inputs must be sorted ascending by their
// key columns.
type MergeJoin struct {
	left, right         []Row
	leftKeys, rightKeys []int
	li, ri              int
	pendLeft, pendRight []Row
	pi, pj              int
}

// NewMergeJoin creates a merge join over sorted inputs.
func NewMergeJoin(left []Row, leftKeys []int, right []Row, rightKeys []int) *MergeJoin {
	return &MergeJoin{left: left, right: right, leftKeys: leftKeys, rightKeys: rightKeys}
}

// Next implements Iter.
func (m *MergeJoin) Next() (Row, bool) {
	for {
		if m.pi < len(m.pendLeft) {
			l := m.pendLeft[m.pi]
			r := m.pendRight[m.pj]
			m.pj++
			if m.pj >= len(m.pendRight) {
				m.pj = 0
				m.pi++
			}
			out := make(Row, 0, len(l)+len(r))
			out = append(out, l...)
			out = append(out, r...)
			return out, true
		}
		if m.li >= len(m.left) || m.ri >= len(m.right) {
			return nil, false
		}
		c := compareKeys(m.left[m.li], m.leftKeys, m.right[m.ri], m.rightKeys)
		switch {
		case c < 0:
			m.li++
		case c > 0:
			m.ri++
		default:
			// Gather the equal-key groups on both sides.
			ls, rs := m.li, m.ri
			for m.li < len(m.left) && compareKeys(m.left[m.li], m.leftKeys, m.right[rs], m.rightKeys) == 0 {
				m.li++
			}
			for m.ri < len(m.right) && compareKeys(m.left[ls], m.leftKeys, m.right[m.ri], m.rightKeys) == 0 {
				m.ri++
			}
			m.pendLeft = m.left[ls:m.li]
			m.pendRight = m.right[rs:m.ri]
			m.pi, m.pj = 0, 0
		}
	}
}

func compareKeys(a Row, ak []int, b Row, bk []int) int {
	for i := range ak {
		if c := Compare(a[ak[i]], b[bk[i]]); c != 0 {
			return c
		}
	}
	return 0
}

// Agg is one aggregate specification for HashAggregate: it folds input
// rows' Col into an accumulator.
type Agg struct {
	Kind AggKind
	Col  int
}

// AggKind enumerates supported aggregates.
type AggKind int

// Supported aggregate kinds.
const (
	AggSum AggKind = iota
	AggCount
	AggMin
	AggMax
)

// HashAggregate groups rows by key columns and computes the aggregates,
// emitting key values followed by aggregate values. Output order is
// deterministic (sorted by key).
func HashAggregate(rows []Row, keys []int, aggs []Agg) []Row {
	type group struct {
		key  Row
		accs []Value
	}
	groups := make(map[uint64][]*group)
	find := func(r Row) *group {
		h := Hash(r, keys)
		for _, g := range groups[h] {
			if keysEqual(g.key, identity(len(keys)), r, keys) {
				return g
			}
		}
		key := make(Row, len(keys))
		for i, k := range keys {
			key[i] = r[k]
		}
		g := &group{key: key, accs: make([]Value, len(aggs))}
		groups[h] = append(groups[h], g)
		return g
	}
	for _, r := range rows {
		g := find(r)
		for i, a := range aggs {
			g.accs[i] = fold(a.Kind, g.accs[i], r[a.Col])
		}
	}
	var out []Row
	for _, gs := range groups {
		for _, g := range gs {
			row := make(Row, 0, len(g.key)+len(g.accs))
			row = append(row, g.key...)
			for i, a := range g.accs {
				if a == nil && aggs[i].Kind == AggCount {
					a = int64(0)
				}
				row = append(row, a)
			}
			out = append(out, row)
		}
	}
	SortRows(out, identity(len(keys)))
	return out
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func fold(kind AggKind, acc Value, v Value) Value {
	switch kind {
	case AggCount:
		if acc == nil {
			return int64(1)
		}
		return acc.(int64) + 1
	case AggSum:
		if acc == nil {
			return toFloatOrInt(v)
		}
		return addValues(acc, v)
	case AggMin:
		if acc == nil || Compare(v, acc) < 0 {
			return v
		}
		return acc
	case AggMax:
		if acc == nil || Compare(v, acc) > 0 {
			return v
		}
		return acc
	}
	return acc
}

func toFloatOrInt(v Value) Value { return v }

func addValues(a, b Value) Value {
	switch av := a.(type) {
	case int64:
		switch bv := b.(type) {
		case int64:
			return av + bv
		case float64:
			return float64(av) + bv
		}
	case float64:
		switch bv := b.(type) {
		case int64:
			return av + float64(bv)
		case float64:
			return av + bv
		}
	}
	panic("engine: sum over non-numeric values")
}

// StreamedAggregate aggregates key-sorted input in one pass (the paper's
// sort-aggregate operator): rows must arrive sorted by the key columns.
func StreamedAggregate(in Iter, keys []int, aggs []Agg) []Row {
	var out []Row
	var curKey Row
	var accs []Value
	flush := func() {
		if curKey == nil {
			return
		}
		row := make(Row, 0, len(curKey)+len(accs))
		row = append(row, curKey...)
		for i, a := range accs {
			if a == nil && aggs[i].Kind == AggCount {
				a = int64(0)
			}
			row = append(row, a)
		}
		out = append(out, row)
	}
	for {
		r, ok := in.Next()
		if !ok {
			break
		}
		key := make(Row, len(keys))
		for i, k := range keys {
			key[i] = r[k]
		}
		if curKey == nil || CompareRows(key, curKey, identity(len(keys))) != 0 {
			flush()
			curKey = key
			accs = make([]Value, len(aggs))
		}
		for i, a := range aggs {
			accs[i] = fold(a.Kind, accs[i], r[a.Col])
		}
	}
	flush()
	return out
}

// MergeSortedRuns k-way merges pre-sorted runs into one sorted slice (the
// MergeSort operator of a reduce task over sorted map outputs).
func MergeSortedRuns(runs [][]Row, keys []int) []Row {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]Row, 0, total)
	idx := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for i, r := range runs {
			if idx[i] >= len(r) {
				continue
			}
			if best < 0 || CompareRows(r[idx[i]], runs[best][idx[best]], keys) < 0 {
				best = i
			}
		}
		out = append(out, runs[best][idx[best]])
		idx[best]++
	}
	return out
}

// TopK keeps the k smallest rows under the key ordering (order by +
// limit).
func TopK(rows []Row, keys []int, k int) []Row {
	cp := append([]Row(nil), rows...)
	sort.SliceStable(cp, func(i, j int) bool { return CompareRows(cp[i], cp[j], keys) < 0 })
	if k < len(cp) {
		cp = cp[:k]
	}
	return cp
}
