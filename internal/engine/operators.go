package engine

import "slices"

// Iter is the engine's row stream: Next returns the next row and whether
// one was produced. Operators compose Iters the volcano way.
type Iter interface {
	Next() (Row, bool)
}

// SliceIter iterates a row slice.
type SliceIter struct {
	rows []Row
	i    int
}

// NewSliceIter wraps rows.
func NewSliceIter(rows []Row) *SliceIter { return &SliceIter{rows: rows} }

// Next implements Iter.
func (s *SliceIter) Next() (Row, bool) {
	if s.i >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.i]
	s.i++
	return r, true
}

// Drain collects an iterator into a slice.
func Drain(it Iter) []Row {
	var out []Row
	for {
		r, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// Filter yields rows satisfying pred.
type Filter struct {
	In   Iter
	Pred func(Row) bool
}

// Next implements Iter.
func (f *Filter) Next() (Row, bool) {
	for {
		r, ok := f.In.Next()
		if !ok {
			return nil, false
		}
		if f.Pred(r) {
			return r, true
		}
	}
}

// Project maps each row through Fn.
type Project struct {
	In Iter
	Fn func(Row) Row
}

// Next implements Iter.
func (p *Project) Next() (Row, bool) {
	r, ok := p.In.Next()
	if !ok {
		return nil, false
	}
	return p.Fn(r), true
}

// Limit yields at most N rows.
type Limit struct {
	In Iter
	N  int
}

// Next implements Iter.
func (l *Limit) Next() (Row, bool) {
	if l.N <= 0 {
		return nil, false
	}
	r, ok := l.In.Next()
	if !ok {
		return nil, false
	}
	l.N--
	return r, true
}

// HashJoin joins a build side (fully materialised) against a probe stream
// on equal keys, emitting probe-row ++ build-row concatenations (inner
// join). Buckets are probed in place with a cursor — no per-probe-row
// bucket copy — and output rows are carved from an arena.
type HashJoin struct {
	probe     Iter
	probeKeys []int
	table     map[uint64][]Row
	buildKeys []int
	// bucket/cursor walk the current probe row's candidate bucket.
	bucket  []Row
	cursor  int
	current Row
	arena   rowArena
}

// NewHashJoin builds the hash table from build rows in two passes: count
// per hash, then carve exact-size buckets out of one backing slice, so the
// build side costs O(distinct keys) allocations instead of O(rows).
func NewHashJoin(build []Row, buildKeys []int, probe Iter, probeKeys []int) *HashJoin {
	hashes := make([]uint64, len(build))
	counts := make(map[uint64]int32, len(build))
	for i, r := range build {
		h := Hash(r, buildKeys)
		hashes[i] = h
		counts[h]++
	}
	backing := make([]Row, len(build))
	t := make(map[uint64][]Row, len(counts))
	off := int32(0)
	for h, c := range counts {
		t[h] = backing[off : off : off+c]
		off += c
	}
	for i, r := range build {
		h := hashes[i]
		t[h] = append(t[h], r)
	}
	return &HashJoin{probe: probe, probeKeys: probeKeys, table: t, buildKeys: buildKeys}
}

// Next implements Iter.
func (j *HashJoin) Next() (Row, bool) {
	for {
		for j.cursor < len(j.bucket) {
			b := j.bucket[j.cursor]
			j.cursor++
			if keysEqual(j.current, j.probeKeys, b, j.buildKeys) {
				return j.arena.concat(j.current, b), true
			}
		}
		r, ok := j.probe.Next()
		if !ok {
			return nil, false
		}
		j.current = r
		j.bucket = j.table[Hash(r, j.probeKeys)]
		j.cursor = 0
	}
}

func keysEqual(a Row, ak []int, b Row, bk []int) bool {
	for i := range ak {
		if Compare(a[ak[i]], b[bk[i]]) != 0 {
			return false
		}
	}
	return true
}

// MergeJoin joins two key-sorted inputs on equal keys (inner join),
// emitting left ++ right. Both inputs must be sorted ascending by their
// key columns.
type MergeJoin struct {
	left, right         []Row
	leftKeys, rightKeys []int
	li, ri              int
	pendLeft, pendRight []Row
	pi, pj              int
	arena               rowArena
}

// NewMergeJoin creates a merge join over sorted inputs.
func NewMergeJoin(left []Row, leftKeys []int, right []Row, rightKeys []int) *MergeJoin {
	return &MergeJoin{left: left, right: right, leftKeys: leftKeys, rightKeys: rightKeys}
}

// Next implements Iter.
func (m *MergeJoin) Next() (Row, bool) {
	for {
		if m.pi < len(m.pendLeft) {
			l := m.pendLeft[m.pi]
			r := m.pendRight[m.pj]
			m.pj++
			if m.pj >= len(m.pendRight) {
				m.pj = 0
				m.pi++
			}
			return m.arena.concat(l, r), true
		}
		if m.li >= len(m.left) || m.ri >= len(m.right) {
			return nil, false
		}
		c := compareKeys(m.left[m.li], m.leftKeys, m.right[m.ri], m.rightKeys)
		switch {
		case c < 0:
			m.li++
		case c > 0:
			m.ri++
		default:
			// Gather the equal-key groups on both sides.
			ls, rs := m.li, m.ri
			for m.li < len(m.left) && compareKeys(m.left[m.li], m.leftKeys, m.right[rs], m.rightKeys) == 0 {
				m.li++
			}
			for m.ri < len(m.right) && compareKeys(m.left[ls], m.leftKeys, m.right[m.ri], m.rightKeys) == 0 {
				m.ri++
			}
			m.pendLeft = m.left[ls:m.li]
			m.pendRight = m.right[rs:m.ri]
			m.pi, m.pj = 0, 0
		}
	}
}

func compareKeys(a Row, ak []int, b Row, bk []int) int {
	for i := range ak {
		if c := Compare(a[ak[i]], b[bk[i]]); c != 0 {
			return c
		}
	}
	return 0
}

// Agg is one aggregate specification for HashAggregate: it folds input
// rows' Col into an accumulator.
type Agg struct {
	Kind AggKind
	Col  int
}

// AggKind enumerates supported aggregates.
type AggKind int

// Supported aggregate kinds.
const (
	AggSum AggKind = iota
	AggCount
	AggMin
	AggMax
)

// groupKeyEqual reports whether a stored group key tuple equals r's key
// columns (key[i] corresponds to r[keys[i]]).
func groupKeyEqual(key, r Row, keys []int) bool {
	for i, k := range keys {
		if Compare(key[i], r[k]) != 0 {
			return false
		}
	}
	return true
}

// accCell is one (group, aggregate) accumulator. Sum/Count state is held
// unboxed so folding a numeric stream does not re-box a Value per row;
// boxing happens once per group at emit time.
type accCell struct {
	i    int64   // integer sum / count
	f    float64 // float sum once the stream turns float
	v    Value   // current Min/Max winner (already boxed by the input row)
	isF  bool
	seen bool
}

func (c *accCell) fold(kind AggKind, v Value) {
	// NULL semantics shared with the batch kernels: Count counts rows;
	// Sum/Min/Max skip NULL inputs (a NULL-only group yields NULL).
	if v == nil && kind != AggCount {
		return
	}
	switch kind {
	case AggCount:
		c.i++
	case AggSum:
		switch x := v.(type) {
		case int64:
			if c.isF {
				c.f += float64(x)
			} else {
				c.i += x
			}
		case float64:
			if !c.isF {
				c.isF = true
				c.f = float64(c.i)
			}
			c.f += x
		default:
			panic("engine: sum over non-numeric values")
		}
	case AggMin:
		if !c.seen || Compare(v, c.v) < 0 {
			c.v = v
		}
	case AggMax:
		if !c.seen || Compare(v, c.v) > 0 {
			c.v = v
		}
	}
	c.seen = true
}

// value boxes the accumulator result. Count of an empty stream is 0, like
// the previous implementation's nil-accumulator substitution.
func (c *accCell) value(kind AggKind) Value {
	switch kind {
	case AggCount:
		return c.i
	case AggSum:
		if !c.seen {
			return nil
		}
		if c.isF {
			return c.f
		}
		return c.i
	case AggMin, AggMax:
		return c.v
	}
	return c.v
}

// HashAggregate groups rows by key columns and computes the aggregates,
// emitting key values followed by aggregate values. Output order is
// deterministic (sorted by key). Groups live in a flat table — key tuples
// carved from an arena, accumulators in one contiguous slice, hash
// collisions chained through an index slice — so the cost is O(groups)
// allocations, not O(rows).
func HashAggregate(rows []Row, keys []int, aggs []Agg) []Row {
	nk, na := len(keys), len(aggs)
	var arena rowArena
	head := make(map[uint64]int32, 64) // hash -> first group id
	var (
		groupKeys []Row
		accs      []accCell // group g's accumulators at accs[g*na : (g+1)*na]
		next      []int32   // collision chain: next group id with same hash, -1 ends
	)
	for _, r := range rows {
		h := Hash(r, keys)
		first, seen := head[h]
		gid := int32(-1)
		if seen {
			for g := first; g >= 0; g = next[g] {
				if groupKeyEqual(groupKeys[g], r, keys) {
					gid = g
					break
				}
			}
		}
		if gid < 0 {
			key := arena.alloc(nk)
			for i, k := range keys {
				key[i] = r[k]
			}
			gid = int32(len(groupKeys))
			groupKeys = append(groupKeys, key)
			for i := 0; i < na; i++ {
				accs = append(accs, accCell{})
			}
			if seen {
				next = append(next, first)
			} else {
				next = append(next, -1)
			}
			head[h] = gid
		}
		base := int(gid) * na
		for i, a := range aggs {
			accs[base+i].fold(a.Kind, r[a.Col])
		}
	}
	if len(groupKeys) == 0 {
		return nil
	}
	out := make([]Row, len(groupKeys))
	for g, key := range groupKeys {
		row := arena.alloc(nk + na)
		copy(row, key)
		base := g * na
		for i, a := range aggs {
			row[nk+i] = accs[base+i].value(a.Kind)
		}
		out[g] = row
	}
	SortRows(out, identity(nk))
	return out
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// StreamedAggregate aggregates key-sorted input in one pass (the paper's
// sort-aggregate operator): rows must arrive sorted by the key columns.
// The current group's key columns are compared in place and accumulators
// are unboxed cells, so steady-state rows cost zero allocations.
func StreamedAggregate(in Iter, keys []int, aggs []Agg) []Row {
	var out []Row
	var arena rowArena
	var curKey Row
	started := false
	accs := make([]accCell, len(aggs))
	flush := func() {
		if !started {
			return
		}
		row := arena.alloc(len(curKey) + len(accs))
		copy(row, curKey)
		for i, a := range aggs {
			row[len(curKey)+i] = accs[i].value(a.Kind)
		}
		out = append(out, row)
	}
	for {
		r, ok := in.Next()
		if !ok {
			break
		}
		if !started || !groupKeyEqual(curKey, r, keys) {
			flush()
			started = true
			curKey = arena.alloc(len(keys))
			for i, k := range keys {
				curKey[i] = r[k]
			}
			for i := range accs {
				accs[i] = accCell{}
			}
		}
		for i, a := range aggs {
			accs[i].fold(a.Kind, r[a.Col])
		}
	}
	flush()
	return out
}

// MergeSortedRuns k-way merges pre-sorted runs into one sorted slice (the
// MergeSort operator of a reduce task over sorted map outputs). Small fan-
// ins use a linear scan; larger ones a cursor heap, keeping the merge
// O(total·log runs). Ties pop from the earliest run, matching the stable
// order a single sort of the concatenation would produce.
func MergeSortedRuns(runs [][]Row, keys []int) []Row {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]Row, 0, total)
	if len(runs) <= 4 {
		idx := make([]int, len(runs))
		for len(out) < total {
			best := -1
			for i, r := range runs {
				if idx[i] >= len(r) {
					continue
				}
				if best < 0 || CompareRows(r[idx[i]], runs[best][idx[best]], keys) < 0 {
					best = i
				}
			}
			out = append(out, runs[best][idx[best]])
			idx[best]++
		}
		return out
	}

	type cursor struct{ run, pos int }
	before := func(a, b cursor) bool {
		if c := CompareRows(runs[a.run][a.pos], runs[b.run][b.pos], keys); c != 0 {
			return c < 0
		}
		return a.run < b.run
	}
	h := make([]cursor, 0, len(runs))
	var siftDown func(i int)
	siftDown = func(i int) {
		for {
			l := 2*i + 1
			if l >= len(h) {
				return
			}
			m := l
			if r := l + 1; r < len(h) && before(h[r], h[l]) {
				m = r
			}
			if !before(h[m], h[i]) {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for i, r := range runs {
		if len(r) > 0 {
			h = append(h, cursor{run: i})
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(h) > 0 {
		c := h[0]
		out = append(out, runs[c.run][c.pos])
		c.pos++
		if c.pos < len(runs[c.run]) {
			h[0] = c
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		siftDown(0)
	}
	return out
}

// TopK keeps the k smallest rows under the key ordering (order by +
// limit), stable: ties resolve to the earlier input row.
func TopK(rows []Row, keys []int, k int) []Row {
	return topKBy(rows, k, func(a, b Row) int { return CompareRows(a, b, keys) })
}

// TopKDesc keeps the k largest rows under the key ordering (order by ...
// desc + limit), stable like TopK.
func TopKDesc(rows []Row, keys []int, k int) []Row {
	return topKBy(rows, k, func(a, b Row) int { return -CompareRows(a, b, keys) })
}

// topKBy selects the k first rows of the cmp ordering with a bounded
// max-heap — O(n log k) instead of copy + full sort — whose root is the
// worst row currently kept.
func topKBy(rows []Row, k int, cmp func(a, b Row) int) []Row {
	if k <= 0 {
		return nil
	}
	if k >= len(rows) {
		out := append([]Row(nil), rows...)
		slices.SortStableFunc(out, cmp)
		return out
	}
	type item struct {
		row Row
		idx int // input position: the tie-break that keeps the result stable
	}
	after := func(a, b item) bool {
		if c := cmp(a.row, b.row); c != 0 {
			return c > 0
		}
		return a.idx > b.idx
	}
	h := make([]item, 0, k)
	siftDown := func(i int) {
		for {
			l := 2*i + 1
			if l >= len(h) {
				return
			}
			m := l
			if r := l + 1; r < len(h) && after(h[r], h[l]) {
				m = r
			}
			if !after(h[m], h[i]) {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for i, r := range rows {
		it := item{row: r, idx: i}
		if len(h) < k {
			h = append(h, it)
			// Sift up.
			for j := len(h) - 1; j > 0; {
				p := (j - 1) / 2
				if !after(h[j], h[p]) {
					break
				}
				h[j], h[p] = h[p], h[j]
				j = p
			}
		} else if after(h[0], it) {
			h[0] = it
			siftDown(0)
		}
	}
	slices.SortFunc(h, func(a, b item) int {
		if c := cmp(a.row, b.row); c != 0 {
			return c
		}
		return a.idx - b.idx
	})
	out := make([]Row, len(h))
	for i, it := range h {
		out[i] = it.row
	}
	return out
}
