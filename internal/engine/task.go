package engine

import (
	"fmt"
	"sort"

	"swift/internal/core"
)

// TaskContext is the API a StageFn uses to read its inputs, emit shuffle
// output and deliver sink results. All methods are safe for the single
// task goroutine that owns the context.
type TaskContext struct {
	engine  *Engine
	js      *jobState
	ref     core.TaskRef
	attempt int
	machine int
	abort   chan struct{}
	sink    []Row // buffered sink output, committed on completion
}

// Stage returns the stage name; Index the task index within the stage.
func (c *TaskContext) Stage() string { return c.ref.Stage }

// Index returns the task's index within its stage.
func (c *TaskContext) Index() int { return c.ref.Index }

// Tasks returns the stage's task count.
func (c *TaskContext) Tasks() int { return c.js.job.Stage(c.ref.Stage).Tasks }

// ConsumerTasks returns the task count of the consumer stage of an
// out-edge, i.e. the partition fan-out.
func (c *TaskContext) ConsumerTasks(to string) int {
	return c.js.job.Stage(to).Tasks
}

// Aborted reports whether this attempt has been cancelled (recovery or
// injected failure).
func (c *TaskContext) Aborted() bool {
	select {
	case <-c.abort:
		return true
	default:
		return false
	}
}

// TablePartition returns this task's partition of a registered table
// (scan stages).
func (c *TaskContext) TablePartition(name string) ([]Row, error) {
	c.engine.mu.Lock()
	t := c.engine.tables[name]
	c.engine.mu.Unlock()
	if t == nil {
		return nil, &AppError{Msg: fmt.Sprintf("table %q does not exist", name)}
	}
	if c.ref.Index >= len(t.Partitions) {
		return nil, nil
	}
	return t.Partitions[c.ref.Index], nil
}

// Input blocks until every producer task of the in-edge from `from` has
// written this task's partition, then returns the concatenated rows in
// producer-task order. It returns ErrInjected if the attempt is aborted
// while waiting.
func (c *TaskContext) Input(from string) ([]Row, error) {
	runs, err := c.InputRuns(from)
	if err != nil {
		return nil, err
	}
	var out []Row
	for _, r := range runs {
		out = append(out, r...)
	}
	return out, nil
}

// InputRuns is Input preserving per-producer runs (a MergeSort consumer
// k-way merges pre-sorted runs).
func (c *TaskContext) InputRuns(from string) ([][]Row, error) {
	producers := c.js.job.Stage(from).Tasks
	runs := make([][]Row, producers)
	for p := 0; p < producers; p++ {
		key := SegmentKey(c.js.job.ID, from, c.ref.Stage, p, c.ref.Index)
		rows, ok := c.engine.store.Get(key, c.Aborted)
		if !ok {
			return nil, ErrInjected
		}
		runs[p] = rows
	}
	return runs, nil
}

// EmitPartitioned writes this task's output for the edge to `to`, one row
// slice per consumer task, into the local machine's Cache Worker.
func (c *TaskContext) EmitPartitioned(to string, parts [][]Row) error {
	n := c.ConsumerTasks(to)
	if len(parts) != n {
		return fmt.Errorf("engine: %s->%s: %d partitions for %d consumers", c.ref.Stage, to, len(parts), n)
	}
	for i, rows := range parts {
		key := SegmentKey(c.js.job.ID, c.ref.Stage, to, c.ref.Index, i)
		if err := c.engine.store.Put(c.js.job.ID, c.machine, key, rows); err != nil {
			return err
		}
	}
	return nil
}

// EmitByKey hash-partitions rows by the key columns across the consumer
// stage's tasks and writes them out.
func (c *TaskContext) EmitByKey(to string, rows []Row, keys []int) error {
	return c.EmitPartitioned(to, PartitionByKey(rows, keys, c.ConsumerTasks(to)))
}

// PartitionByKey hash-partitions rows into n buckets by the key columns —
// the shuffle-write kernel behind EmitByKey. It runs two passes (count,
// then place into exact-size buckets carved from one backing slice), so a
// whole shuffle write costs a constant number of allocations instead of
// O(n·log rows) append growth. Partitions may alias the input slice;
// callers must not mutate rows afterwards.
func PartitionByKey(rows []Row, keys []int, n int) [][]Row {
	if n <= 1 {
		return [][]Row{rows}
	}
	pidx := make([]uint32, len(rows))
	counts := make([]int, n)
	for i, r := range rows {
		p := uint32(Hash(r, keys) % uint64(n))
		pidx[i] = p
		counts[p]++
	}
	return scatter(rows, pidx, counts)
}

// scatter places rows into exact-size partitions (partition of row i is
// pidx[i], sized by counts) carved from one backing slice.
func scatter(rows []Row, pidx []uint32, counts []int) [][]Row {
	backing := make([]Row, len(rows))
	parts := make([][]Row, len(counts))
	off := 0
	for p, c := range counts {
		parts[p] = backing[off : off : off+c]
		off += c
	}
	for i, r := range rows {
		p := pidx[i]
		parts[p] = append(parts[p], r)
	}
	return parts
}

// EmitByRange range-partitions key-sorted rows into contiguous consumer
// partitions by sampling bounds — the Terasort layout where reduce i
// receives keys below reduce i+1's.
func (c *TaskContext) EmitByRange(to string, rows []Row, keys []int, bounds []Row) error {
	n := c.ConsumerTasks(to)
	if len(bounds) != n-1 {
		return fmt.Errorf("engine: need %d bounds, got %d", n-1, len(bounds))
	}
	return c.EmitPartitioned(to, PartitionByRange(rows, keys, bounds))
}

// PartitionByRange splits rows into len(bounds)+1 contiguous partitions:
// partition i holds rows below bounds[i] (and the last holds the rest).
// Two-pass like PartitionByKey; partitions may alias the input slice.
func PartitionByRange(rows []Row, keys []int, bounds []Row) [][]Row {
	if len(bounds) == 0 {
		return [][]Row{rows}
	}
	pidx := make([]uint32, len(rows))
	counts := make([]int, len(bounds)+1)
	for i, r := range rows {
		p := uint32(sort.Search(len(bounds), func(i int) bool {
			return CompareRows(r, bounds[i], keys) < 0
		}))
		pidx[i] = p
		counts[p]++
	}
	return scatter(rows, pidx, counts)
}

// Broadcast replicates rows to every consumer task (small build sides).
func (c *TaskContext) Broadcast(to string, rows []Row) error {
	n := c.ConsumerTasks(to)
	parts := make([][]Row, n)
	for i := range parts {
		parts[i] = rows
	}
	return c.EmitPartitioned(to, parts)
}

// Sink buffers rows for the job's final result set (terminal stages). The
// buffer is committed atomically when the attempt completes, giving
// exactly-once sink semantics under failure recovery.
func (c *TaskContext) Sink(rows []Row) {
	c.sink = append(c.sink, rows...)
}

// ---- batch-native task API ----
//
// These are the columnar counterparts of the row methods above. A batch
// plan reads TablePartitionBatch/InputBatch and writes EmitBatch*, so its
// data never passes through []Row; the row methods remain as the adapter
// for Plans written against rows (both views of a segment are the same
// stored batch).

// TablePartitionBatch returns this task's partition of a registered table
// as a (cached) column batch.
func (c *TaskContext) TablePartitionBatch(name string) (*Batch, error) {
	c.engine.mu.Lock()
	t := c.engine.tables[name]
	c.engine.mu.Unlock()
	if t == nil {
		return nil, &AppError{Msg: fmt.Sprintf("table %q does not exist", name)}
	}
	return t.PartitionBatch(c.ref.Index), nil
}

// InputBatch blocks like Input and returns every producer's partition
// concatenated into one batch.
func (c *TaskContext) InputBatch(from string) (*Batch, error) {
	runs, err := c.InputBatchRuns(from)
	if err != nil {
		return nil, err
	}
	return ConcatBatches(runs), nil
}

// InputBatchRuns is InputBatch preserving per-producer runs.
func (c *TaskContext) InputBatchRuns(from string) ([]*Batch, error) {
	producers := c.js.job.Stage(from).Tasks
	runs := make([]*Batch, producers)
	for p := 0; p < producers; p++ {
		key := SegmentKey(c.js.job.ID, from, c.ref.Stage, p, c.ref.Index)
		b, ok := c.engine.store.GetBatch(key, c.Aborted)
		if !ok {
			return nil, ErrInjected
		}
		runs[p] = b
	}
	return runs, nil
}

// EmitBatchPartitioned writes this task's batch output for the edge to
// `to`, one batch per consumer task.
func (c *TaskContext) EmitBatchPartitioned(to string, parts []*Batch) error {
	n := c.ConsumerTasks(to)
	if len(parts) != n {
		return fmt.Errorf("engine: %s->%s: %d partitions for %d consumers", c.ref.Stage, to, len(parts), n)
	}
	for i, b := range parts {
		key := SegmentKey(c.js.job.ID, c.ref.Stage, to, c.ref.Index, i)
		if err := c.engine.store.PutBatch(c.js.job.ID, c.machine, key, b); err != nil {
			return err
		}
	}
	return nil
}

// EmitBatchByKey hash-partitions the batch by the key columns across the
// consumer stage's tasks and writes it out (columnar hash + typed scatter;
// co-partitions exactly with row EmitByKey).
func (c *TaskContext) EmitBatchByKey(to string, b *Batch, keys []int) error {
	return c.EmitBatchPartitioned(to, PartitionBatchByKey(b, keys, c.ConsumerTasks(to)))
}

// EmitBatchByRange range-partitions a key-sorted batch by sampled bounds —
// the batch counterpart of EmitByRange.
func (c *TaskContext) EmitBatchByRange(to string, b *Batch, keys []int, bounds []Row) error {
	n := c.ConsumerTasks(to)
	if len(bounds) != n-1 {
		return fmt.Errorf("engine: need %d bounds, got %d", n-1, len(bounds))
	}
	return c.EmitBatchPartitioned(to, PartitionBatchByRange(b, keys, bounds))
}

// BroadcastBatch replicates the batch to every consumer task.
func (c *TaskContext) BroadcastBatch(to string, b *Batch) error {
	n := c.ConsumerTasks(to)
	parts := make([]*Batch, n)
	for i := range parts {
		parts[i] = b
	}
	return c.EmitBatchPartitioned(to, parts)
}

// SinkBatch buffers a batch for the job's final result set (the sink
// result API stays row-shaped; the adapter materialises here, after the
// heavy operators have already run columnar).
func (c *TaskContext) SinkBatch(b *Batch) {
	c.sink = b.AppendRows(c.sink)
}
