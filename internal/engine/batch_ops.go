package engine

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// Batch-native operator kernels. Each kernel dispatches on column type once
// per batch (building a typed closure or running a typed loop) instead of
// unpacking an interface per cell, which is where the row kernels spend
// their time. Every kernel is pinned to its row counterpart by equivalence
// property tests in batch_test.go.
//
// Kernels consume lazy (selection-vector) batches directly: logical row j
// reads physical row Sel[j], so a filter's output flows into hashing,
// sorting, joining, aggregation and partitioning without materializing.
// Dictionary columns (TDict) take the same typed lanes as plain strings and
// hash bit-identically to them.

// ---- hashing ----

// HashBatchInto computes Hash for every row of the batch into dst
// (len(dst) == b.Len, the logical length), column-at-a-time. The result is
// bit-identical to calling Hash on the materialised rows — dictionary
// columns hash their dictionary strings — so row-emitted, batch-emitted and
// dictified segments all co-partition.
//
//lint:hotpath
func HashBatchInto(b *Batch, keys []int, dst []uint64) {
	for i := range dst {
		dst[i] = fnvOffset64
	}
	for _, k := range keys {
		hashColInto(&b.Cols[k], b.Sel, dst)
		for i := range dst {
			dst[i] ^= fnvPrime64 // column separator, as in Hash
		}
	}
}

// hashFloatValue mirrors Hash's numeric folding: integral floats hash as
// their int64 value so 1.0 and int64(1) collide on purpose.
func hashFloatValue(h uint64, v float64) uint64 {
	h = hashByte(h, tagNumber)
	if v == math.Trunc(v) && v >= -9223372036854775808 && v < 9223372036854775808 {
		return hashUint64(h, uint64(int64(v)))
	}
	return hashUint64(h, math.Float64bits(v))
}

// hashColInto folds one key column into the row hashes. sel maps logical
// slot j to physical row sel[j]; nil means dense. The dense lanes stay
// branch-free over the vectors, which is what keeps HashBatchInto
// allocation- and indirection-free on the hot path.
//
//lint:hotpath
func hashColInto(c *Column, sel []int32, dst []uint64) {
	nulls := c.Nulls
	switch c.Type {
	case TInt64:
		if sel == nil {
			for i, v := range c.Ints {
				if nulls != nil && bitGet(nulls, i) {
					dst[i] = hashByte(dst[i], tagNull)
					continue
				}
				dst[i] = hashUint64(hashByte(dst[i], tagNumber), uint64(v))
			}
		} else {
			for j, s := range sel {
				if nulls != nil && bitGet(nulls, int(s)) {
					dst[j] = hashByte(dst[j], tagNull)
					continue
				}
				dst[j] = hashUint64(hashByte(dst[j], tagNumber), uint64(c.Ints[s]))
			}
		}
	case TFloat64:
		if sel == nil {
			for i, v := range c.Floats {
				if nulls != nil && bitGet(nulls, i) {
					dst[i] = hashByte(dst[i], tagNull)
					continue
				}
				dst[i] = hashFloatValue(dst[i], v)
			}
		} else {
			for j, s := range sel {
				if nulls != nil && bitGet(nulls, int(s)) {
					dst[j] = hashByte(dst[j], tagNull)
					continue
				}
				dst[j] = hashFloatValue(dst[j], c.Floats[s])
			}
		}
	case TString:
		if sel == nil {
			for i, v := range c.Strs {
				if nulls != nil && bitGet(nulls, i) {
					dst[i] = hashByte(dst[i], tagNull)
					continue
				}
				dst[i] = hashString(hashByte(dst[i], tagString), v)
			}
		} else {
			for j, s := range sel {
				if nulls != nil && bitGet(nulls, int(s)) {
					dst[j] = hashByte(dst[j], tagNull)
					continue
				}
				dst[j] = hashString(hashByte(dst[j], tagString), c.Strs[s])
			}
		}
	case TBool:
		if sel == nil {
			for i, v := range c.Bools {
				if nulls != nil && bitGet(nulls, i) {
					dst[i] = hashByte(dst[i], tagNull)
					continue
				}
				h := hashByte(dst[i], tagBool)
				if v {
					h = hashByte(h, 1)
				} else {
					h = hashByte(h, 0)
				}
				dst[i] = h
			}
		} else {
			for j, s := range sel {
				if nulls != nil && bitGet(nulls, int(s)) {
					dst[j] = hashByte(dst[j], tagNull)
					continue
				}
				h := hashByte(dst[j], tagBool)
				if c.Bools[s] {
					h = hashByte(h, 1)
				} else {
					h = hashByte(h, 0)
				}
				dst[j] = h
			}
		}
	case TDict:
		if sel == nil {
			for i, code := range c.Codes {
				if nulls != nil && bitGet(nulls, i) {
					dst[i] = hashByte(dst[i], tagNull)
					continue
				}
				dst[i] = hashString(hashByte(dst[i], tagString), c.Dict[code])
			}
		} else {
			for j, s := range sel {
				if nulls != nil && bitGet(nulls, int(s)) {
					dst[j] = hashByte(dst[j], tagNull)
					continue
				}
				dst[j] = hashString(hashByte(dst[j], tagString), c.Dict[c.Codes[s]])
			}
		}
	case TAny:
		if sel == nil {
			for i := range c.Anys {
				//lint:allow hotpath the any-kind fallback lane formats unknown types; typed columns never reach it
				dst[i] = hashAnyValue(dst[i], c.Value(i))
			}
		} else {
			for j, s := range sel {
				//lint:allow hotpath the any-kind fallback lane formats unknown types; typed columns never reach it
				dst[j] = hashAnyValue(dst[j], c.Value(int(s)))
			}
		}
	}
}

// hashAnyValue mirrors one key column's contribution in Hash.
func hashAnyValue(h uint64, v Value) uint64 {
	switch x := v.(type) {
	case int64:
		return hashUint64(hashByte(h, tagNumber), uint64(x))
	case float64:
		return hashFloatValue(h, x)
	case string:
		return hashString(hashByte(h, tagString), x)
	case bool:
		h = hashByte(h, tagBool)
		if x {
			return hashByte(h, 1)
		}
		return hashByte(h, 0)
	case nil:
		return hashByte(h, tagNull)
	default:
		return hashString(hashByte(h, tagOther), fmt.Sprintf("%v", v))
	}
}

// ---- comparison ----

// colCompare orders cell i of column a against cell j of column b with
// Compare's semantics (NULL first, cross-kind numerics as float64); i and j
// are physical indices. Typed same-kind and int/float pairs avoid boxing —
// dictionary cells compare through their dictionary strings — anything else
// goes through Compare on boxed values.
func colCompare(a *Column, i int, b *Column, j int) int {
	an, bn := a.IsNull(i), b.IsNull(j)
	if an || bn {
		switch {
		case an && bn:
			return 0
		case an:
			return -1
		}
		return 1
	}
	switch a.Type {
	case TInt64:
		switch b.Type {
		case TInt64:
			av, bv := a.Ints[i], b.Ints[j]
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			}
			return 0
		case TFloat64:
			return cmpFloat(float64(a.Ints[i]), b.Floats[j])
		default:
			// other pairings: boxed compare below
		}
	case TFloat64:
		switch b.Type {
		case TFloat64:
			return cmpFloat(a.Floats[i], b.Floats[j])
		case TInt64:
			return cmpFloat(a.Floats[i], float64(b.Ints[j]))
		default:
			// other pairings: boxed compare below
		}
	case TString, TDict:
		if b.Type == TString || b.Type == TDict {
			av, bv := a.strAt(i), b.strAt(j)
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			}
			return 0
		}
	case TBool:
		if b.Type == TBool {
			av, bv := a.Bools[i], b.Bools[j]
			switch {
			case !av && bv:
				return -1
			case av && !bv:
				return 1
			}
			return 0
		}
	default:
		// TAny and kind-mixed columns: boxed compare below
	}
	return Compare(a.Value(i), b.Value(j))
}

// batchKeysEqual reports whether physical rows i and j of one batch agree
// on the key columns.
func batchKeysEqual(b *Batch, i, j int, keys []int) bool {
	for _, k := range keys {
		if colCompare(&b.Cols[k], i, &b.Cols[k], j) != 0 {
			return false
		}
	}
	return true
}

// CompareBatchRows orders logical row i of batch a against logical row j of
// batch b by the paired key columns (akeys[x] against bkeys[x]).
func CompareBatchRows(a *Batch, i int, akeys []int, b *Batch, j int, bkeys []int) int {
	pi, pj := a.physical(i), b.physical(j)
	for x := range akeys {
		if c := colCompare(&a.Cols[akeys[x]], pi, &b.Cols[bkeys[x]], pj); c != 0 {
			return c
		}
	}
	return 0
}

// ---- filter / sort ----

// FilterBatch returns a lazy view of the rows where keep reports true: the
// result shares the input's column vectors and carries a selection vector
// instead of gathering. The predicate receives a PHYSICAL row index, so
// typed plan code reads the column vectors directly; filters compose (a
// second FilterBatch narrows the same selection). Materialization happens
// at emit/codec boundaries or via (*Batch).Materialize.
//
//lint:hotpath
func FilterBatch(b *Batch, keep func(i int) bool) *Batch {
	sel := make([]int32, 0, b.Len)
	if b.Sel == nil {
		for i := 0; i < b.Len; i++ {
			if keep(i) {
				sel = append(sel, int32(i))
			}
		}
	} else {
		for _, s := range b.Sel {
			if keep(int(s)) {
				sel = append(sel, s)
			}
		}
	}
	return &Batch{Cols: b.Cols, Len: len(sel), Sel: sel}
}

// colComparator builds a same-column ordering closure over physical
// indices, selecting the typed loop once per column (null-free fast lanes;
// null-aware otherwise).
func colComparator(c *Column) func(i, j int) int {
	if c.Nulls == nil {
		switch c.Type {
		case TInt64:
			v := c.Ints
			return func(i, j int) int {
				switch {
				case v[i] < v[j]:
					return -1
				case v[i] > v[j]:
					return 1
				}
				return 0
			}
		case TFloat64:
			v := c.Floats
			return func(i, j int) int { return cmpFloat(v[i], v[j]) }
		case TString:
			v := c.Strs
			return func(i, j int) int {
				switch {
				case v[i] < v[j]:
					return -1
				case v[i] > v[j]:
					return 1
				}
				return 0
			}
		case TBool:
			v := c.Bools
			return func(i, j int) int {
				switch {
				case !v[i] && v[j]:
					return -1
				case v[i] && !v[j]:
					return 1
				}
				return 0
			}
		case TDict:
			dict, codes := c.Dict, c.Codes
			return func(i, j int) int {
				a, b := dict[codes[i]], dict[codes[j]]
				switch {
				case a < b:
					return -1
				case a > b:
					return 1
				}
				return 0
			}
		case TAny:
			// boxed comparator below
		}
	}
	cc := c
	return func(i, j int) int { return colCompare(cc, i, cc, j) }
}

// SortBatch returns the batch's rows stably sorted by the key columns
// (argsort over an index vector, then one typed gather; a lazy input's
// selection vector seeds the argsort, so sorting a filtered batch never
// materialises the pre-sort view). A single null-free typed key takes a
// direct comparator — no closure chain — the same fast lane SortRows has
// for kind-homogeneous columns. The result is dense.
//
//lint:hotpath
func SortBatch(b *Batch, keys []int) *Batch {
	idx := make([]int32, b.Len)
	if b.Sel == nil {
		for i := range idx {
			idx[i] = int32(i)
		}
	} else {
		copy(idx, b.Sel)
	}
	if len(keys) == 1 && sortIdxSingleKey(idx, &b.Cols[keys[0]]) {
		return b.Gather(idx)
	}
	cmps := make([]func(i, j int) int, len(keys))
	for x, k := range keys {
		cmps[x] = colComparator(&b.Cols[k])
	}
	slices.SortStableFunc(idx, func(x, y int32) int {
		for _, cmp := range cmps {
			if c := cmp(int(x), int(y)); c != 0 {
				return c
			}
		}
		return 0
	})
	return b.Gather(idx)
}

// sortIdxSingleKey stably argsorts idx (physical indices) by a null-free
// typed column with an inlined comparator, reporting whether it handled the
// column.
func sortIdxSingleKey(idx []int32, c *Column) bool {
	if c.Nulls != nil {
		return false
	}
	switch c.Type {
	case TInt64:
		v := c.Ints
		slices.SortStableFunc(idx, func(x, y int32) int {
			a, b := v[x], v[y]
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			}
			return 0
		})
	case TFloat64:
		v := c.Floats
		slices.SortStableFunc(idx, func(x, y int32) int { return cmpFloat(v[x], v[y]) })
	case TString:
		v := c.Strs
		slices.SortStableFunc(idx, func(x, y int32) int {
			a, b := v[x], v[y]
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			}
			return 0
		})
	case TDict:
		dict, codes := c.Dict, c.Codes
		slices.SortStableFunc(idx, func(x, y int32) int {
			a, b := dict[codes[x]], dict[codes[y]]
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			}
			return 0
		})
	default:
		return false
	}
	return true
}

// ---- partitioning ----

// PartitionBatchByKey hash-partitions the batch into n sub-batches by the
// key columns — the batch shuffle-write kernel behind EmitBatchByKey.
// Hashing is columnar, placement a typed scatter into exact-size vectors;
// lazy inputs scatter straight from the selection without materializing.
//
//lint:hotpath
func PartitionBatchByKey(b *Batch, keys []int, n int) []*Batch {
	if n <= 1 {
		return []*Batch{b}
	}
	hashes := make([]uint64, b.Len)
	HashBatchInto(b, keys, hashes)
	pidx := make([]uint32, b.Len)
	counts := make([]int, n)
	for i, h := range hashes {
		p := uint32(h % uint64(n))
		pidx[i] = p
		counts[p]++
	}
	return scatterBatch(b, pidx, counts)
}

// PartitionBatchByRange splits the batch into len(bounds)+1 contiguous
// partitions: partition i holds rows below bounds[i] under the key columns
// (bounds are rows, as sampled by a Terasort-style plan).
//
//lint:hotpath
func PartitionBatchByRange(b *Batch, keys []int, bounds []Row) []*Batch {
	if len(bounds) == 0 {
		return []*Batch{b}
	}
	bb := BatchFromRows(bounds)
	pidx := make([]uint32, b.Len)
	counts := make([]int, len(bounds)+1)
	for i := 0; i < b.Len; i++ {
		p := uint32(sort.Search(len(bounds), func(bi int) bool {
			return CompareBatchRows(b, i, keys, bb, bi, keys) < 0
		}))
		pidx[i] = p
		counts[p]++
	}
	return scatterBatch(b, pidx, counts)
}

// scatterBatch places rows into exact-size dense partitions (logical row j
// goes to pidx[j], partition sizes given by counts), one typed pass per
// column. Dictionary partitions share the source dictionary; lazy sources
// scatter through the selection vector.
//
//lint:hotpath
func scatterBatch(b *Batch, pidx []uint32, counts []int) []*Batch {
	sel := b.Sel
	parts := make([]*Batch, len(counts))
	for p, n := range counts {
		parts[p] = &Batch{Cols: make([]Column, len(b.Cols)), Len: n}
	}
	offs := make([]int, len(counts))
	for c := range b.Cols {
		src := &b.Cols[c]
		for p, n := range counts {
			dst := &parts[p].Cols[c]
			dst.Type = src.Type
			switch src.Type {
			case TInt64:
				dst.Ints = make([]int64, n)
			case TFloat64:
				dst.Floats = make([]float64, n)
			case TString:
				dst.Strs = make([]string, n)
			case TBool:
				dst.Bools = make([]bool, n)
			case TAny:
				dst.Anys = make([]Value, n)
			case TDict:
				dst.Dict = src.Dict
				dst.Codes = make([]uint32, n)
			}
		}
		clear(offs)
		switch src.Type {
		case TInt64:
			if sel == nil {
				for i, v := range src.Ints {
					p := pidx[i]
					parts[p].Cols[c].Ints[offs[p]] = v
					offs[p]++
				}
			} else {
				for j, s := range sel {
					p := pidx[j]
					parts[p].Cols[c].Ints[offs[p]] = src.Ints[s]
					offs[p]++
				}
			}
		case TFloat64:
			if sel == nil {
				for i, v := range src.Floats {
					p := pidx[i]
					parts[p].Cols[c].Floats[offs[p]] = v
					offs[p]++
				}
			} else {
				for j, s := range sel {
					p := pidx[j]
					parts[p].Cols[c].Floats[offs[p]] = src.Floats[s]
					offs[p]++
				}
			}
		case TString:
			if sel == nil {
				for i, v := range src.Strs {
					p := pidx[i]
					parts[p].Cols[c].Strs[offs[p]] = v
					offs[p]++
				}
			} else {
				for j, s := range sel {
					p := pidx[j]
					parts[p].Cols[c].Strs[offs[p]] = src.Strs[s]
					offs[p]++
				}
			}
		case TBool:
			if sel == nil {
				for i, v := range src.Bools {
					p := pidx[i]
					parts[p].Cols[c].Bools[offs[p]] = v
					offs[p]++
				}
			} else {
				for j, s := range sel {
					p := pidx[j]
					parts[p].Cols[c].Bools[offs[p]] = src.Bools[s]
					offs[p]++
				}
			}
		case TAny:
			if sel == nil {
				for i, v := range src.Anys {
					p := pidx[i]
					parts[p].Cols[c].Anys[offs[p]] = v
					offs[p]++
				}
			} else {
				for j, s := range sel {
					p := pidx[j]
					parts[p].Cols[c].Anys[offs[p]] = src.Anys[s]
					offs[p]++
				}
			}
		case TDict:
			if sel == nil {
				for i, v := range src.Codes {
					p := pidx[i]
					parts[p].Cols[c].Codes[offs[p]] = v
					offs[p]++
				}
			} else {
				for j, s := range sel {
					p := pidx[j]
					parts[p].Cols[c].Codes[offs[p]] = src.Codes[s]
					offs[p]++
				}
			}
		}
		if src.Nulls != nil {
			clear(offs)
			for j := 0; j < b.Len; j++ {
				p := pidx[j]
				if bitGet(src.Nulls, b.physical(j)) {
					parts[p].Cols[c].setNull(offs[p], counts[p])
				}
				offs[p]++
			}
		}
	}
	return parts
}

// ---- hash join ----

// HashJoinBatch inner-joins probe rows against a materialised build side on
// equal keys, emitting probe columns followed by build columns — the same
// rows in the same order as the row HashJoin over the same inputs. The
// build table maps hash → carved index bucket; matches accumulate as
// physical index pairs and materialise with two typed gathers, so lazy
// inputs join through their selections.
//
//lint:hotpath
func HashJoinBatch(build *Batch, buildKeys []int, probe *Batch, probeKeys []int) *Batch {
	bh := make([]uint64, build.Len)
	HashBatchInto(build, buildKeys, bh)
	counts := make(map[uint64]int32, build.Len)
	for _, h := range bh {
		counts[h]++
	}
	backing := make([]int32, build.Len)
	table := make(map[uint64][]int32, len(counts))
	off := int32(0)
	//lint:allow hotpath one table-sizing pass per build batch, amortized over all probe rows; order only carves sub-slices
	for h, c := range counts {
		table[h] = backing[off : off : off+c]
		off += c
	}
	for i, h := range bh {
		table[h] = append(table[h], int32(i))
	}

	ph := make([]uint64, probe.Len)
	HashBatchInto(probe, probeKeys, ph)
	// Candidate count bounds the match count (over only by 64-bit hash
	// collisions between distinct keys), so the match index arrays are
	// allocated once at exact-ish size instead of append-doubling.
	cand := 0
	for _, h := range ph {
		cand += len(table[h])
	}
	pIdx := make([]int32, 0, cand)
	bIdx := make([]int32, 0, cand)
	for i := 0; i < probe.Len; i++ {
		for _, bi := range table[ph[i]] {
			if CompareBatchRows(probe, i, probeKeys, build, int(bi), buildKeys) == 0 {
				pIdx = append(pIdx, int32(probe.physical(i)))
				bIdx = append(bIdx, int32(build.physical(int(bi))))
			}
		}
	}
	out := &Batch{Cols: make([]Column, len(probe.Cols)+len(build.Cols)), Len: len(pIdx)}
	for c := range probe.Cols {
		out.Cols[c] = gatherCol(&probe.Cols[c], pIdx)
	}
	for c := range build.Cols {
		out.Cols[len(probe.Cols)+c] = gatherCol(&build.Cols[c], bIdx)
	}
	return out
}

// ---- hash aggregate ----

// HashAggregateBatch groups the batch by the key columns and folds the
// aggregates, emitting key columns followed by one column per aggregate,
// sorted by key like HashAggregate. Group discovery hashes columnar and
// chains collisions through index slices; each aggregate then folds in one
// typed pass over the whole batch, so sums over an int64 or float64 column
// never box a value. Output columns stay typed: Count and int sums are
// TInt64 vectors, float sums TFloat64, Min/Max the input column's type.
//
//lint:hotpath
func HashAggregateBatch(b *Batch, keys []int, aggs []Agg) *Batch {
	nk, na := len(keys), len(aggs)
	if b == nil || b.Len == 0 {
		return &Batch{Cols: make([]Column, nk+na)}
	}
	hashes := make([]uint64, b.Len)
	HashBatchInto(b, keys, hashes)
	head := make(map[uint64]int32, 64)
	// Worst case every row is its own group; sizing both chains up front
	// keeps the grouping loop growth-free.
	rep := make([]int32, 0, b.Len)  // group id -> representative (first) row, physical
	next := make([]int32, 0, b.Len) // collision chain
	gids := make([]int32, b.Len)    // logical row -> group id
	for i := 0; i < b.Len; i++ {
		h := hashes[i]
		pi := b.physical(i)
		first, seen := head[h]
		gid := int32(-1)
		if seen {
			for g := first; g >= 0; g = next[g] {
				if batchKeysEqual(b, int(rep[g]), pi, keys) {
					gid = g
					break
				}
			}
		}
		if gid < 0 {
			gid = int32(len(rep))
			rep = append(rep, int32(pi))
			if seen {
				next = append(next, first)
			} else {
				next = append(next, -1)
			}
			head[h] = gid
		}
		gids[i] = gid
	}
	groups := len(rep)
	out := &Batch{Cols: make([]Column, nk+na), Len: groups}
	for x, k := range keys {
		out.Cols[x] = gatherCol(&b.Cols[k], rep)
	}
	for x, a := range aggs {
		out.Cols[nk+x] = aggColumn(b, a, gids, groups)
	}
	return SortBatch(out, identity(nk))
}

// aggColumn folds one aggregate over the whole batch in a typed loop,
// producing one value per group; gids is logical-indexed, so lazy inputs
// fold through the selection. NULL inputs are skipped by Sum/Min/Max (a
// group with no non-NULL input yields NULL); Count counts rows.
func aggColumn(b *Batch, a Agg, gids []int32, groups int) Column {
	col := &b.Cols[a.Col]
	if a.Kind == AggCount {
		out := make([]int64, groups)
		for _, g := range gids {
			out[g]++
		}
		return Int64Col(out)
	}
	switch col.Type {
	case TInt64:
		switch a.Kind {
		case AggCount:
			// handled before the switch
		case AggSum, AggMin, AggMax:
			acc := make([]int64, groups)
			seen := make([]bool, groups)
			for j := range gids {
				i := b.physical(j)
				if col.Nulls != nil && bitGet(col.Nulls, i) {
					continue
				}
				v := col.Ints[i]
				g := gids[j]
				switch {
				case !seen[g]:
					acc[g] = v
				case a.Kind == AggSum:
					acc[g] += v
				case a.Kind == AggMin && v < acc[g]:
					acc[g] = v
				case a.Kind == AggMax && v > acc[g]:
					acc[g] = v
				}
				seen[g] = true
			}
			return withUnseenNulls(Int64Col(acc), seen)
		}
	case TFloat64:
		switch a.Kind {
		case AggCount:
			// handled before the switch
		case AggSum, AggMin, AggMax:
			acc := make([]float64, groups)
			seen := make([]bool, groups)
			for j := range gids {
				i := b.physical(j)
				if col.Nulls != nil && bitGet(col.Nulls, i) {
					continue
				}
				v := col.Floats[i]
				g := gids[j]
				switch {
				case !seen[g]:
					acc[g] = v
				case a.Kind == AggSum:
					acc[g] += v
				case a.Kind == AggMin && cmpFloat(v, acc[g]) < 0:
					acc[g] = v
				case a.Kind == AggMax && cmpFloat(v, acc[g]) > 0:
					acc[g] = v
				}
				seen[g] = true
			}
			return withUnseenNulls(Float64Col(acc), seen)
		}
	case TString, TDict:
		if a.Kind == AggMin || a.Kind == AggMax {
			acc := make([]string, groups)
			seen := make([]bool, groups)
			for j := range gids {
				i := b.physical(j)
				if col.Nulls != nil && bitGet(col.Nulls, i) {
					continue
				}
				v := col.strAt(i)
				g := gids[j]
				switch {
				case !seen[g]:
					acc[g] = v
				case a.Kind == AggMin && v < acc[g]:
					acc[g] = v
				case a.Kind == AggMax && v > acc[g]:
					acc[g] = v
				}
				seen[g] = true
			}
			return withUnseenNulls(StringCol(acc), seen)
		}
	default:
		// TBool and TAny: boxed lane below
	}
	// Boxed lane: TAny columns (mixed numeric sums promote per group, like
	// accCell), bool min/max, and sums over non-numeric types (which panic
	// inside fold, matching the row kernel).
	accs := make([]accCell, groups)
	for j := range gids {
		accs[gids[j]].fold(a.Kind, col.Value(b.physical(j)))
	}
	out := Column{Type: TAny, Anys: make([]Value, groups)}
	for g := range accs {
		v := accs[g].value(a.Kind)
		out.Anys[g] = v
		if v == nil {
			out.setNull(g, groups)
		}
	}
	return out
}

// withUnseenNulls marks groups that never saw a non-NULL input as NULL.
func withUnseenNulls(c Column, seen []bool) Column {
	for g, s := range seen {
		if !s {
			c.setNull(g, len(seen))
		}
	}
	return c
}

// ---- window ----

// WindowBatch evaluates the window spec over the batch, returning the rows
// ordered by (PartitionBy, OrderBy) with the window value appended as a new
// typed column (int64 for ranks, float64 for running sums) — the batch
// counterpart of Window. SortBatch densifies first, so the pass below runs
// over physical rows.
//
//lint:hotpath
func WindowBatch(b *Batch, spec WindowSpec) *Batch {
	keys := append(append([]int(nil), spec.PartitionBy...), spec.OrderBy...)
	sorted := SortBatch(b, keys)
	var (
		ints   []int64
		floats []float64
	)
	if spec.Func == WinRunningSum {
		floats = make([]float64, sorted.Len)
	} else {
		ints = make([]int64, sorted.Len)
	}
	var valAt func(i int) (float64, bool)
	if spec.Func == WinRunningSum {
		vc := &sorted.Cols[spec.ValueCol]
		switch vc.Type {
		case TInt64:
			valAt = func(i int) (float64, bool) { return float64(vc.Ints[i]), !vc.IsNull(i) }
		case TFloat64:
			valAt = func(i int) (float64, bool) { return vc.Floats[i], !vc.IsNull(i) }
		default:
			valAt = func(i int) (float64, bool) {
				v := vc.Value(i)
				if v == nil {
					return 0, false
				}
				return asFloat(v), true
			}
		}
	}
	var rowNum, rank, denseRank int64
	var running float64
	for i := 0; i < sorted.Len; i++ {
		newPart := i == 0 || !batchKeysEqual(sorted, i, i-1, spec.PartitionBy)
		if newPart {
			rowNum, rank, denseRank, running = 0, 0, 0, 0
		}
		rowNum++
		if newPart || !batchKeysEqual(sorted, i, i-1, spec.OrderBy) {
			rank = rowNum
			denseRank++
		}
		switch spec.Func {
		case WinRowNumber:
			ints[i] = rowNum
		case WinRank:
			ints[i] = rank
		case WinDenseRank:
			ints[i] = denseRank
		case WinRunningSum:
			if v, ok := valAt(i); ok {
				running += v
			}
			floats[i] = running
		}
	}
	if spec.Func == WinRunningSum {
		return sorted.WithCol(Float64Col(floats))
	}
	return sorted.WithCol(Int64Col(ints))
}
