package engine

import (
	"math/rand"
	"testing"
)

// batchesEqual compares semantically: same shape, types, and per-cell
// value/nullness (bitmap storage may differ, e.g. nil vs all-zero words).
// TString and TDict are the same logical type — two representations of a
// string column — so they compare equal cell-by-cell.
func batchesEqual(t *testing.T, what string, got, want *Batch) {
	t.Helper()
	if got.Len != want.Len || got.NumCols() != want.NumCols() {
		t.Fatalf("%s: %dx%d, want %dx%d", what, got.Len, got.NumCols(), want.Len, want.NumCols())
	}
	isStr := func(ct ColType) bool { return ct == TString || ct == TDict }
	for c := range want.Cols {
		if gt, wt := got.Cols[c].Type, want.Cols[c].Type; gt != wt && !(isStr(gt) && isStr(wt)) {
			t.Fatalf("%s: col %d type %v, want %v", what, c, gt, wt)
		}
		for i := 0; i < want.Len; i++ {
			if got.IsNull(c, i) != want.IsNull(c, i) || got.Value(c, i) != want.Value(c, i) {
				t.Fatalf("%s: cell (%d,%d) = %#v/null=%v, want %#v/null=%v", what, c, i,
					got.Value(c, i), got.IsNull(c, i), want.Value(c, i), want.IsNull(c, i))
			}
		}
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	rows := randRows(r, 129)
	// Add a string-bearing mixed column via a ragged append so the TAny
	// string lane encodes too.
	for i := range rows {
		v := Value(nil)
		switch i % 3 {
		case 0:
			v = "mixed"
		case 1:
			v = int64(i)
		}
		rows[i] = append(rows[i], v)
	}
	b := BatchFromRows(rows)
	enc := EncodeBatch(b)
	if len(enc) != EncodedBatchSize(b) {
		t.Fatalf("encoded %d bytes, size helper says %d", len(enc), EncodedBatchSize(b))
	}
	dec, err := DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	batchesEqual(t, "round trip", dec, b)
}

func TestBatchCodecEmptyAndAllNull(t *testing.T) {
	for _, b := range []*Batch{
		{},                                      // zero columns, zero rows
		NewBatch(Int64Col(nil), StringCol(nil)), // columns, zero rows
		BatchFromRows([]Row{{nil, nil}, {nil, nil}, {nil, nil}}), // all-NULL columns
		{Len: 4}, // rows but no columns (count-only segment)
	} {
		enc := EncodeBatch(b)
		if len(enc) != EncodedBatchSize(b) {
			t.Fatalf("encoded %d bytes, size helper says %d", len(enc), EncodedBatchSize(b))
		}
		dec, err := DecodeBatch(enc)
		if err != nil {
			t.Fatal(err)
		}
		batchesEqual(t, "empty/all-null", dec, b)
	}
}

func TestBatchCodecTruncationErrors(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	b := BatchFromRows(randRows(r, 40))
	enc := EncodeBatch(b)
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeBatch(enc[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded cleanly", n, len(enc))
		}
	}
	// Trailing garbage is an error, not silently ignored.
	if _, err := DecodeBatch(append(append([]byte(nil), enc...), 0xff)); err == nil {
		t.Error("trailing byte accepted")
	}
	// A header promising absurd dimensions must error, not allocate.
	if _, err := DecodeBatch([]byte{0xff, 0xff, 0xff, 0xff, 0x7f, 0x01}); err == nil {
		t.Error("absurd row count accepted")
	}
}

func TestEncodeBatchAppendReuse(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	b := BatchFromRows(randRows(r, 64))
	buf := make([]byte, 0, EncodedBatchSize(b))
	buf = AppendBatch(buf, b)
	dec, err := DecodeBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	batchesEqual(t, "append reuse", dec, b)
}
