package engine

import (
	"reflect"
	"testing"
)

func windowInput() []Row {
	return []Row{
		{"a", int64(3), 1.0},
		{"a", int64(1), 2.0},
		{"b", int64(2), 3.0},
		{"a", int64(1), 4.0},
		{"b", int64(5), 5.0},
	}
}

func lastCol(rows []Row) []Value {
	out := make([]Value, len(rows))
	for i, r := range rows {
		out[i] = r[len(r)-1]
	}
	return out
}

func TestWindowRowNumber(t *testing.T) {
	got := Window(windowInput(), WindowSpec{PartitionBy: []int{0}, OrderBy: []int{1}, Func: WinRowNumber})
	want := []Value{int64(1), int64(2), int64(3), int64(1), int64(2)}
	if !reflect.DeepEqual(lastCol(got), want) {
		t.Errorf("row_number = %v, want %v", lastCol(got), want)
	}
	// Partition a sorted before b; within a, order keys 1,1,3.
	if got[0][0] != "a" || got[3][0] != "b" {
		t.Errorf("partition order wrong: %v", got)
	}
}

func TestWindowRankAndDenseRank(t *testing.T) {
	rank := Window(windowInput(), WindowSpec{PartitionBy: []int{0}, OrderBy: []int{1}, Func: WinRank})
	// Partition a ordered by key: (1),(1),(3) -> ranks 1,1,3.
	want := []Value{int64(1), int64(1), int64(3), int64(1), int64(2)}
	if !reflect.DeepEqual(lastCol(rank), want) {
		t.Errorf("rank = %v, want %v", lastCol(rank), want)
	}
	dense := Window(windowInput(), WindowSpec{PartitionBy: []int{0}, OrderBy: []int{1}, Func: WinDenseRank})
	wantD := []Value{int64(1), int64(1), int64(2), int64(1), int64(2)}
	if !reflect.DeepEqual(lastCol(dense), wantD) {
		t.Errorf("dense_rank = %v, want %v", lastCol(dense), wantD)
	}
}

func TestWindowRunningSum(t *testing.T) {
	got := Window(windowInput(), WindowSpec{PartitionBy: []int{0}, OrderBy: []int{1}, Func: WinRunningSum, ValueCol: 2})
	// Partition a sorted: rows with value 2,4 (keys 1,1 stable) then 1.
	want := []Value{2.0, 6.0, 7.0, 3.0, 8.0}
	if !reflect.DeepEqual(lastCol(got), want) {
		t.Errorf("running sum = %v, want %v", lastCol(got), want)
	}
	// Input untouched.
	in := windowInput()
	if len(in[0]) != 3 {
		t.Error("input mutated")
	}
}

func TestWindowEmptyAndSinglePartition(t *testing.T) {
	if got := Window(nil, WindowSpec{Func: WinRowNumber}); len(got) != 0 {
		t.Errorf("empty input gave %v", got)
	}
	rows := []Row{{int64(2)}, {int64(1)}}
	got := Window(rows, WindowSpec{OrderBy: []int{0}, Func: WinRowNumber})
	if got[0][0] != int64(1) || got[0][1] != int64(1) || got[1][1] != int64(2) {
		t.Errorf("single partition = %v", got)
	}
}
