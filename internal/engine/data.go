// Package engine is Swift's real execution runtime: it runs DAG jobs on
// actual rows, with executors as goroutines, in-memory Cache Workers
// backing the Local/Remote shuffle paths, per-task channels backing Direct
// Shuffle, and the same controller (package core) that drives the
// simulator making every scheduling and recovery decision. It is the
// engine behind the runnable examples and the swiftsim tool's --engine
// mode; the discrete-event simulator (package simrun) remains the
// substrate for paper-scale experiments.
package engine

import (
	"fmt"
	"math"
	"slices"
	"strings"
	"sync"
)

// Value is one field of a row. The engine operates on untyped values the
// way a columnar runtime would on decoded cells; comparisons follow Compare.
type Value interface{}

// Row is one record.
type Row []Value

// Clone copies the row.
func (r Row) Clone() Row { return append(Row(nil), r...) }

// Schema names the columns of a row stream.
type Schema []string

// Col returns the index of a named column, or -1.
func (s Schema) Col(name string) int {
	for i, c := range s {
		if c == name {
			return i
		}
	}
	return -1
}

// MustCol is Col but panics on unknown names (plan-construction time).
func (s Schema) MustCol(name string) int {
	i := s.Col(name)
	if i < 0 {
		panic(fmt.Sprintf("engine: unknown column %q in %v", name, s))
	}
	return i
}

// Compare orders two values: numerics numerically (int64/float64), strings
// lexicographically, booleans false<true. Mixed numeric kinds compare as
// float64. NULL (nil) is total: it sorts before every non-NULL value and
// NULL == NULL, matching the batch null-bitmap semantics. It panics on
// incomparable non-nil kinds — a plan bug, not runtime data.
func Compare(a, b Value) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		}
		return 1
	}
	switch av := a.(type) {
	case int64:
		switch bv := b.(type) {
		case int64:
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			}
			return 0
		case float64:
			return cmpFloat(float64(av), bv)
		}
	case float64:
		switch bv := b.(type) {
		case float64:
			return cmpFloat(av, bv)
		case int64:
			return cmpFloat(av, float64(bv))
		}
	case string:
		if bv, ok := b.(string); ok {
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			}
			return 0
		}
	case bool:
		if bv, ok := b.(bool); ok {
			switch {
			case !av && bv:
				return -1
			case av && !bv:
				return 1
			}
			return 0
		}
	}
	panic(fmt.Sprintf("engine: incomparable values %T and %T", a, b))
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// CompareRows orders rows by the given key columns.
func CompareRows(a, b Row, keys []int) int {
	for _, k := range keys {
		if c := Compare(a[k], b[k]); c != 0 {
			return c
		}
	}
	return 0
}

// SortRows sorts rows in place by the key columns (stable). Single-key
// sorts over a kind-homogeneous column take a typed fast path that skips
// the per-comparison type switch of Compare.
func SortRows(rows []Row, keys []int) {
	if len(keys) == 1 && sortSingleKey(rows, keys[0]) {
		return
	}
	slices.SortStableFunc(rows, func(a, b Row) int { return CompareRows(a, b, keys) })
}

// sortSingleKey dispatches to a typed comparator when every value in the
// key column shares one concrete kind, reporting whether it sorted.
func sortSingleKey(rows []Row, k int) bool {
	if len(rows) < 2 {
		return true
	}
	switch rows[0][k].(type) {
	case int64:
		for _, r := range rows {
			if _, ok := r[k].(int64); !ok {
				return false
			}
		}
		slices.SortStableFunc(rows, func(a, b Row) int {
			av, bv := a[k].(int64), b[k].(int64)
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			}
			return 0
		})
	case string:
		for _, r := range rows {
			if _, ok := r[k].(string); !ok {
				return false
			}
		}
		slices.SortStableFunc(rows, func(a, b Row) int {
			return strings.Compare(a[k].(string), b[k].(string))
		})
	case float64:
		for _, r := range rows {
			if _, ok := r[k].(float64); !ok {
				return false
			}
		}
		slices.SortStableFunc(rows, func(a, b Row) int {
			return cmpFloat(a[k].(float64), b[k].(float64))
		})
	default:
		return false
	}
	return true
}

// FNV-1a parameters and per-kind tags. Tags keep values of different kinds
// from trivially colliding; int64 and float64 share the number tag because
// Compare treats them as one numeric domain.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211

	tagNumber = 0x4e
	tagString = 0x53
	tagBool   = 0x42
	tagNull   = 0x30
	tagOther  = 0x3f
)

func hashByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func hashUint64(h, u uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (u & 0xff)) * fnvPrime64
		u >>= 8
	}
	return h
}

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// Hash computes a partition-stable hash of the key columns without
// allocating for int64, float64, string or bool values. Numeric values are
// normalized before hashing: a float64 that is exactly an integer hashes
// identically to the equal int64, so mixed-kind keys that Compare as equal
// land in the same EmitByKey partition and HashJoin/HashAggregate bucket.
func Hash(r Row, keys []int) uint64 {
	h := uint64(fnvOffset64)
	for _, k := range keys {
		switch v := r[k].(type) {
		case int64:
			h = hashByte(h, tagNumber)
			h = hashUint64(h, uint64(v))
		case float64:
			h = hashByte(h, tagNumber)
			// Integral floats in int64 range hash as that integer; the
			// bounds are exact float64 values (±2^63), and NaN/±Inf fail
			// the Trunc test into the raw-bits path.
			if v == math.Trunc(v) && v >= -9223372036854775808 && v < 9223372036854775808 {
				h = hashUint64(h, uint64(int64(v)))
			} else {
				h = hashUint64(h, math.Float64bits(v))
			}
		case string:
			h = hashByte(h, tagString)
			h = hashString(h, v)
		case bool:
			h = hashByte(h, tagBool)
			if v {
				h = hashByte(h, 1)
			} else {
				h = hashByte(h, 0)
			}
		case nil:
			// NULL hashes by its own tag so nil keys co-partition with the
			// batch null bitmap's hashing.
			h = hashByte(h, tagNull)
		default:
			h = hashByte(h, tagOther)
			h = hashString(h, fmt.Sprintf("%v", v))
		}
		h ^= fnvPrime64 // column separator
	}
	return h
}

// rowArena carves output rows from shared value blocks, replacing the
// one-allocation-per-row cost of operators that materialise concatenated
// or aggregated rows. Carved rows have len == cap, so appending to one
// copies out instead of clobbering its arena neighbour. Arenas are
// single-goroutine and never reuse carved space.
type rowArena struct{ buf []Value }

const arenaBlockValues = 4096

func (a *rowArena) alloc(n int) Row {
	if n > len(a.buf) {
		size := arenaBlockValues
		if n > size {
			size = n
		}
		a.buf = make([]Value, size)
	}
	r := a.buf[:n:n]
	a.buf = a.buf[n:]
	return r
}

// concat carves a ++ b as one row.
func (a *rowArena) concat(x, y Row) Row {
	out := a.alloc(len(x) + len(y))
	copy(out, x)
	copy(out[len(x):], y)
	return out
}

// Table is a named, partitioned dataset registered with the engine;
// partition i feeds scan task i.
type Table struct {
	Name       string
	Schema     Schema
	Partitions [][]Row

	// batches lazily caches the columnar view of each partition, built on
	// first PartitionBatch call, so batch scans convert a partition once
	// per table lifetime instead of once per task attempt.
	batchMu sync.Mutex
	batches []*Batch
}

// PartitionBatch returns the columnar view of partition i (cached; callers
// must treat it as immutable). Out-of-range partitions return an empty
// batch, mirroring TablePartition's nil-rows behaviour.
func (t *Table) PartitionBatch(i int) *Batch {
	if i < 0 || i >= len(t.Partitions) {
		return &Batch{}
	}
	t.batchMu.Lock()
	defer t.batchMu.Unlock()
	if t.batches == nil {
		t.batches = make([]*Batch, len(t.Partitions))
	}
	if t.batches[i] == nil {
		t.batches[i] = BatchFromRows(t.Partitions[i])
	}
	return t.batches[i]
}

// NewTable partitions rows round-robin into parts partitions.
func NewTable(name string, schema Schema, rows []Row, parts int) *Table {
	if parts < 1 {
		parts = 1
	}
	t := &Table{Name: name, Schema: schema, Partitions: make([][]Row, parts)}
	for i, r := range rows {
		p := i % parts
		t.Partitions[p] = append(t.Partitions[p], r)
	}
	return t
}

// NumRows counts all rows.
func (t *Table) NumRows() int {
	n := 0
	for _, p := range t.Partitions {
		n += len(p)
	}
	return n
}
