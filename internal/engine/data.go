// Package engine is Swift's real execution runtime: it runs DAG jobs on
// actual rows, with executors as goroutines, in-memory Cache Workers
// backing the Local/Remote shuffle paths, per-task channels backing Direct
// Shuffle, and the same controller (package core) that drives the
// simulator making every scheduling and recovery decision. It is the
// engine behind the runnable examples and the swiftsim tool's --engine
// mode; the discrete-event simulator (package simrun) remains the
// substrate for paper-scale experiments.
package engine

import (
	"fmt"
	"sort"
)

// Value is one field of a row. The engine operates on untyped values the
// way a columnar runtime would on decoded cells; comparisons follow Compare.
type Value interface{}

// Row is one record.
type Row []Value

// Clone copies the row.
func (r Row) Clone() Row { return append(Row(nil), r...) }

// Schema names the columns of a row stream.
type Schema []string

// Col returns the index of a named column, or -1.
func (s Schema) Col(name string) int {
	for i, c := range s {
		if c == name {
			return i
		}
	}
	return -1
}

// MustCol is Col but panics on unknown names (plan-construction time).
func (s Schema) MustCol(name string) int {
	i := s.Col(name)
	if i < 0 {
		panic(fmt.Sprintf("engine: unknown column %q in %v", name, s))
	}
	return i
}

// Compare orders two values: numerics numerically (int64/float64), strings
// lexicographically, booleans false<true. Mixed numeric kinds compare as
// float64. It panics on incomparable kinds — a plan bug, not runtime data.
func Compare(a, b Value) int {
	switch av := a.(type) {
	case int64:
		switch bv := b.(type) {
		case int64:
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			}
			return 0
		case float64:
			return cmpFloat(float64(av), bv)
		}
	case float64:
		switch bv := b.(type) {
		case float64:
			return cmpFloat(av, bv)
		case int64:
			return cmpFloat(av, float64(bv))
		}
	case string:
		if bv, ok := b.(string); ok {
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			}
			return 0
		}
	case bool:
		if bv, ok := b.(bool); ok {
			switch {
			case !av && bv:
				return -1
			case av && !bv:
				return 1
			}
			return 0
		}
	}
	panic(fmt.Sprintf("engine: incomparable values %T and %T", a, b))
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// CompareRows orders rows by the given key columns.
func CompareRows(a, b Row, keys []int) int {
	for _, k := range keys {
		if c := Compare(a[k], b[k]); c != 0 {
			return c
		}
	}
	return 0
}

// SortRows sorts rows in place by the key columns (stable).
func SortRows(rows []Row, keys []int) {
	sort.SliceStable(rows, func(i, j int) bool {
		return CompareRows(rows[i], rows[j], keys) < 0
	})
}

// Hash computes a partition-stable hash of the key columns.
func Hash(r Row, keys []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(bs []byte) {
		for _, b := range bs {
			h ^= uint64(b)
			h *= prime64
		}
	}
	for _, k := range keys {
		switch v := r[k].(type) {
		case int64:
			var buf [8]byte
			u := uint64(v)
			for i := 0; i < 8; i++ {
				buf[i] = byte(u >> (8 * i))
			}
			mix(buf[:])
		case float64:
			mix([]byte(fmt.Sprintf("%g", v)))
		case string:
			mix([]byte(v))
		case bool:
			if v {
				mix([]byte{1})
			} else {
				mix([]byte{0})
			}
		default:
			mix([]byte(fmt.Sprintf("%v", v)))
		}
		h ^= prime64 // column separator
	}
	return h
}

// Table is a named, partitioned dataset registered with the engine;
// partition i feeds scan task i.
type Table struct {
	Name       string
	Schema     Schema
	Partitions [][]Row
}

// NewTable partitions rows round-robin into parts partitions.
func NewTable(name string, schema Schema, rows []Row, parts int) *Table {
	if parts < 1 {
		parts = 1
	}
	t := &Table{Name: name, Schema: schema, Partitions: make([][]Row, parts)}
	for i, r := range rows {
		p := i % parts
		t.Partitions[p] = append(t.Partitions[p], r)
	}
	return t
}

// NumRows counts all rows.
func (t *Table) NumRows() int {
	n := 0
	for _, p := range t.Partitions {
		n += len(p)
	}
	return n
}
