package engine

import (
	"strconv"
	"sync"

	"swift/internal/shuffle"
)

// Store is the engine's in-memory shuffle fabric: one Cache Worker per
// machine holding real segment payloads, with blocking reads so a consumer
// task launched before its producer (gang scheduling within a graphlet)
// simply waits for the segment to appear — the pipeline-edge behaviour of
// Section III-B ("after the destination Cache Worker receives the desired
// shuffle data, the reader tasks are notified").
//
// Segments are columnar: every payload is a Batch, whatever API wrote it.
// Rows arriving through the row adapter (Put) are converted once at write
// time and the original rows kept as the cached row view, so row-plan
// readers see the very slices their producer emitted. Byte accounting uses
// the column codec's exact encoded size (EncodedBatchSize) — the same
// number the wire transfer pays — not a per-row estimate.
//
// Segments are retained until the whole job completes rather than being
// freed at first consumption, so fine-grained recovery can re-read them;
// DropJob releases everything at job completion (the simulator's cost
// model covers the memory-pressure/LRU behaviour via shuffle.CacheWorker,
// which also backs this store).
type Store struct {
	mu      sync.Mutex
	cond    *sync.Cond
	workers []*shuffle.CacheWorker // per machine
	home    map[string]int         // segment key -> machine
	segs    map[string]*storedSeg  // segment payloads
	jobKeys map[string][]string
}

// storedSeg is one resident segment: the authoritative batch plus a lazily
// materialised (or producer-provided) row view.
type storedSeg struct {
	batch *Batch
	rows  []Row
}

// NewStore creates a store with one Cache Worker per machine; capacity is
// the per-worker memory budget in bytes (0 = unbounded).
func NewStore(machines int, capacity int64) *Store {
	s := &Store{
		home:    make(map[string]int),
		segs:    make(map[string]*storedSeg),
		jobKeys: make(map[string][]string),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < machines; i++ {
		s.workers = append(s.workers, shuffle.NewCacheWorker(capacity))
	}
	return s
}

// SetStatsSink mirrors every worker's counters into sink under one shared
// prefix (per-worker attribution stays available via Stats; the sink is
// for cluster-wide aggregates like an obs.Registry). Nil disables.
func (s *Store) SetStatsSink(prefix string, sink shuffle.StatsSink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.workers {
		w.SetStatsSink(prefix, sink)
	}
}

// SegmentKey names one shuffle partition: the rows produced by task
// `producer` of edge from->to destined for consumer task `part`. Built by
// appending rather than fmt — every shuffle read and write forms one.
func SegmentKey(job, from, to string, producer, part int) string {
	b := make([]byte, 0, len(job)+len(from)+len(to)+24)
	b = append(b, job...)
	b = append(b, '|')
	b = append(b, from...)
	b = append(b, '>')
	b = append(b, to...)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(producer), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(part), 10)
	return string(b)
}

// Put stores a row segment (the row-adapter write path): rows convert to a
// batch once here, and the batch's exact encoded size is what the Cache
// Worker accounts. Replaces any previous attempt's segment (failure
// recovery re-writes).
func (s *Store) Put(job string, machine int, key string, rows []Row) error {
	return s.put(job, machine, key, &storedSeg{batch: BatchFromRows(rows), rows: rows})
}

// PutBatch stores a batch segment — the native write path of batch plans;
// no row materialisation happens unless a row-API consumer reads it.
func (s *Store) PutBatch(job string, machine int, key string, b *Batch) error {
	if b == nil {
		b = &Batch{}
	}
	return s.put(job, machine, key, &storedSeg{batch: b})
}

func (s *Store) put(job string, machine int, key string, seg *storedSeg) error {
	// Storage boundary: lazy views materialise and low-cardinality string
	// columns dictionary-encode here, so resident segments are dense and
	// the accounted size matches the (dictified) wire encoding.
	seg.batch = DictifyBatch(seg.batch)
	size := int64(EncodedBatchSize(seg.batch)) // exact wire bytes, computed outside the lock
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.home[key]; ok {
		s.workers[old].Drop(key)
	} else {
		s.jobKeys[job] = append(s.jobKeys[job], key)
	}
	w := s.workers[machine%len(s.workers)]
	// The Cache Worker tracks memory accounting and spill behaviour; the
	// payload rides in the segment side table.
	if _, err := w.Put(key, size, nil, 1<<30); err != nil {
		return err
	}
	s.home[key] = machine % len(s.workers)
	s.segs[key] = seg
	s.cond.Broadcast()
	return nil
}

// Get blocks until the segment exists (or abort closes), then returns its
// row view (materialised from the batch on first row read, cached after).
// ok is false if the wait was aborted.
func (s *Store) Get(key string, aborted func() bool) (rows []Row, ok bool) {
	seg, ok := s.wait(key, aborted, true)
	if !ok {
		return nil, false
	}
	return seg.rows, true
}

// GetBatch is Get for batch consumers: no row materialisation.
func (s *Store) GetBatch(key string, aborted func() bool) (*Batch, bool) {
	seg, ok := s.wait(key, aborted, false)
	if !ok {
		return nil, false
	}
	return seg.batch, true
}

// wait blocks until the key exists or the wait aborts. When materialiseRows
// is set, the segment's row view is built (once, under the lock) before the
// segment is returned, so concurrent readers never race on the cache.
func (s *Store) wait(key string, aborted func() bool, materialiseRows bool) (*storedSeg, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if seg, exists := s.segs[key]; exists {
			if m, ok2 := s.home[key]; ok2 {
				s.workers[m].Get(key) // touch LRU / reload accounting
			}
			if materialiseRows && seg.rows == nil && seg.batch.Len > 0 {
				seg.rows = seg.batch.Rows()
			}
			return seg, true
		}
		if aborted != nil && aborted() {
			return nil, false
		}
		s.cond.Wait()
	}
}

// Wake re-checks all blocked readers (used by task aborts).
func (s *Store) Wake() {
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// DropTaskOutput discards every segment a producer task wrote for an edge
// (machine-failure recovery invalidates lost outputs).
func (s *Store) DropTaskOutput(job, from, to string, producer, consumers int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for part := 0; part < consumers; part++ {
		key := SegmentKey(job, from, to, producer, part)
		if m, ok := s.home[key]; ok {
			s.workers[m].Drop(key)
			delete(s.home, key)
			delete(s.segs, key)
		}
	}
	s.cond.Broadcast()
}

// DropJob releases every segment of a job.
func (s *Store) DropJob(job string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, key := range s.jobKeys[job] {
		if m, ok := s.home[key]; ok {
			s.workers[m].Drop(key)
			delete(s.home, key)
			delete(s.segs, key)
		}
	}
	delete(s.jobKeys, job)
}

// Stats aggregates Cache Worker statistics across machines.
func (s *Store) Stats() shuffle.CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out shuffle.CacheStats
	for _, w := range s.workers {
		st := w.Stats()
		out.Puts += st.Puts
		out.Gets += st.Gets
		out.Misses += st.Misses
		out.SpillEvents += st.SpillEvents
		out.SpillBytes += st.SpillBytes
		out.LoadBytes += st.LoadBytes
		out.Freed += st.Freed
		out.UsedBytes += st.UsedBytes
	}
	return out
}
