package engine

import (
	"strconv"
	"sync"

	"swift/internal/shuffle"
)

// Store is the engine's in-memory shuffle fabric: one Cache Worker per
// machine holding real row payloads, with blocking reads so a consumer
// task launched before its producer (gang scheduling within a graphlet)
// simply waits for the segment to appear — the pipeline-edge behaviour of
// Section III-B ("after the destination Cache Worker receives the desired
// shuffle data, the reader tasks are notified").
//
// Segments are retained until the whole job completes rather than being
// freed at first consumption, so fine-grained recovery can re-read them;
// DropJob releases everything at job completion (the simulator's cost
// model covers the memory-pressure/LRU behaviour via shuffle.CacheWorker,
// which also backs this store).
type Store struct {
	mu      sync.Mutex
	cond    *sync.Cond
	workers []*shuffle.CacheWorker // per machine
	home    map[string]int         // segment key -> machine
	rows    map[string][]Row       // segment payloads
	jobKeys map[string][]string
}

// NewStore creates a store with one Cache Worker per machine; capacity is
// the per-worker memory budget in bytes (0 = unbounded).
func NewStore(machines int, capacity int64) *Store {
	s := &Store{
		home:    make(map[string]int),
		rows:    make(map[string][]Row),
		jobKeys: make(map[string][]string),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < machines; i++ {
		s.workers = append(s.workers, shuffle.NewCacheWorker(capacity))
	}
	return s
}

// SegmentKey names one shuffle partition: the rows produced by task
// `producer` of edge from->to destined for consumer task `part`. Built by
// appending rather than fmt — every shuffle read and write forms one.
func SegmentKey(job, from, to string, producer, part int) string {
	b := make([]byte, 0, len(job)+len(from)+len(to)+24)
	b = append(b, job...)
	b = append(b, '|')
	b = append(b, from...)
	b = append(b, '>')
	b = append(b, to...)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(producer), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(part), 10)
	return string(b)
}

// Put stores a segment on the given machine's Cache Worker, replacing any
// previous attempt's segment (failure recovery re-writes).
func (s *Store) Put(job string, machine int, key string, rows []Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.home[key]; ok {
		s.workers[old].Drop(key)
	} else {
		s.jobKeys[job] = append(s.jobKeys[job], key)
	}
	w := s.workers[machine%len(s.workers)]
	// Sizes are tracked by the Cache Worker; rows ride out of band, so no
	// payload bytes are materialised.
	if _, err := w.Put(key, int64(len(rows)*16+1), nil, 1<<30); err != nil {
		return err
	}
	s.home[key] = machine % len(s.workers)
	// Rows ride in a side table keyed the same way; the Cache Worker
	// tracks memory accounting and spill behaviour.
	s.rows[key] = rows
	s.cond.Broadcast()
	return nil
}

// Get blocks until the segment exists (or abort closes), then returns its
// rows. ok is false if the wait was aborted.
func (s *Store) Get(key string, aborted func() bool) (rows []Row, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if r, exists := s.rows[key]; exists {
			if m, ok2 := s.home[key]; ok2 {
				s.workers[m].Get(key) // touch LRU / reload accounting
			}
			return r, true
		}
		if aborted != nil && aborted() {
			return nil, false
		}
		s.cond.Wait()
	}
}

// Wake re-checks all blocked readers (used by task aborts).
func (s *Store) Wake() {
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// DropTaskOutput discards every segment a producer task wrote for an edge
// (machine-failure recovery invalidates lost outputs).
func (s *Store) DropTaskOutput(job, from, to string, producer, consumers int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for part := 0; part < consumers; part++ {
		key := SegmentKey(job, from, to, producer, part)
		if m, ok := s.home[key]; ok {
			s.workers[m].Drop(key)
			delete(s.home, key)
			delete(s.rows, key)
		}
	}
	s.cond.Broadcast()
}

// DropJob releases every segment of a job.
func (s *Store) DropJob(job string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, key := range s.jobKeys[job] {
		if m, ok := s.home[key]; ok {
			s.workers[m].Drop(key)
			delete(s.home, key)
			delete(s.rows, key)
		}
	}
	delete(s.jobKeys, job)
}

// Stats aggregates Cache Worker statistics across machines.
func (s *Store) Stats() shuffle.CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out shuffle.CacheStats
	for _, w := range s.workers {
		st := w.Stats()
		out.Puts += st.Puts
		out.Gets += st.Gets
		out.Misses += st.Misses
		out.SpillEvents += st.SpillEvents
		out.SpillBytes += st.SpillBytes
		out.LoadBytes += st.LoadBytes
		out.Freed += st.Freed
	}
	return out
}
