package engine

import (
	"math/rand"
	"testing"
)

// Allocation regression guards: the batch kernels' costs must stay
// O(columns), never O(rows). Bounds are deliberately a little loose so a
// runtime version bump doesn't trip them, but an accidental per-row
// allocation (boxing a cell, growing a slice per element) blows straight
// through.

// skipUnderRace skips allocation-count assertions when the race detector
// is on: its instrumentation allocates, making AllocsPerRun overcount.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
}

// typedBatch is a 4-column null-free typed batch (the hot-path shape).
func typedBatch(n int) *Batch {
	r := rand.New(rand.NewSource(40))
	ints := make([]int64, n)
	floats := make([]float64, n)
	strs := make([]string, n)
	bools := make([]bool, n)
	for i := 0; i < n; i++ {
		ints[i] = int64(r.Intn(100))
		floats[i] = float64(r.Intn(100)) / 3
		strs[i] = string(rune('a' + r.Intn(26)))
		bools[i] = r.Intn(2) == 0
	}
	return NewBatch(Int64Col(ints), Float64Col(floats), StringCol(strs), BoolCol(bools))
}

func TestFilterBatchAllocs(t *testing.T) {
	skipUnderRace(t)
	b := typedBatch(4096)
	allocs := testing.AllocsPerRun(20, func() {
		FilterBatch(b, func(i int) bool { return i%2 == 0 })
	})
	// sel slice + output batch + one vector per column.
	if allocs > 12 {
		t.Errorf("FilterBatch allocs = %.0f, want ≤ 12", allocs)
	}
}

func TestPartitionBatchByKeyAllocs(t *testing.T) {
	skipUnderRace(t)
	b := typedBatch(4096)
	const parts = 8
	allocs := testing.AllocsPerRun(20, func() {
		PartitionBatchByKey(b, []int{0, 2}, parts)
	})
	// hash/pidx/count scratch plus, per partition, a batch header and one
	// exact-size vector per column — independent of row count.
	limit := float64(8 + parts*(3+b.NumCols()))
	if allocs > limit {
		t.Errorf("PartitionBatchByKey allocs = %.0f, want ≤ %.0f", allocs, limit)
	}
}

func TestAppendBatchAllocs(t *testing.T) {
	skipUnderRace(t)
	b := typedBatch(4096)
	buf := make([]byte, 0, EncodedBatchSize(b))
	allocs := testing.AllocsPerRun(20, func() {
		buf = AppendBatch(buf[:0], b)
	})
	if allocs != 0 {
		t.Errorf("AppendBatch into sized buffer allocs = %.0f, want 0", allocs)
	}
}

func TestBatchPoolDecodeAllocs(t *testing.T) {
	skipUnderRace(t)
	pool := NewBatchPool()
	enc := EncodeBatch(typedBatch(4096))
	warm, err := pool.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(warm)
	allocs := testing.AllocsPerRun(20, func() {
		b, err := pool.Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		pool.Put(b)
	})
	// Steady state pays one string slab per string column — never a per-row
	// or per-value allocation. The loose bound absorbs sync.Pool internals.
	if allocs > 4 {
		t.Errorf("pooled decode allocs = %.0f, want ≤ 4", allocs)
	}
}

func TestDecodeBatchAllocs(t *testing.T) {
	skipUnderRace(t)
	enc := EncodeBatch(typedBatch(4096))
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := DecodeBatch(enc); err != nil {
			t.Fatal(err)
		}
	})
	// Unpooled: batch header, column headers, one vector per column and one
	// string slab — O(columns), never O(rows).
	if allocs > 16 {
		t.Errorf("DecodeBatch allocs = %.0f, want ≤ 16", allocs)
	}
}

func TestHashBatchIntoAllocs(t *testing.T) {
	skipUnderRace(t)
	b := typedBatch(4096)
	dst := make([]uint64, b.Len)
	allocs := testing.AllocsPerRun(20, func() {
		HashBatchInto(b, []int{0, 1, 2, 3}, dst)
	})
	if allocs != 0 {
		t.Errorf("HashBatchInto allocs = %.0f, want 0", allocs)
	}
}
