package engine

import (
	"fmt"
	"math/rand"
	"testing"
)

// Microbenchmarks for the engine's data-plane hot paths. Every benchmark
// reports allocations (b.ReportAllocs) so the per-row allocation budget of
// each operator is visible in the bench trajectory; scripts/bench.sh runs
// the suite and snapshots the numbers, and `benchstat` compares runs (see
// DESIGN.md, "Data-plane performance").

// benchRows builds n rows of (int64 key, string key, float64 payload) with
// keys drawn from a small domain so joins and aggregates form real groups.
func benchRows(n, keyDomain int, seed int64) []Row {
	r := rand.New(rand.NewSource(seed))
	rows := make([]Row, n)
	for i := range rows {
		k := int64(r.Intn(keyDomain))
		rows[i] = Row{k, fmt.Sprintf("key-%04d", k), r.Float64() * 1000}
	}
	return rows
}

func BenchmarkHash(b *testing.B) {
	row := Row{int64(123456789), "some-string-key", 3.14159, true}
	cases := []struct {
		name string
		keys []int
	}{
		{"int64", []int{0}},
		{"string", []int{1}},
		{"float64", []int{2}},
		{"all", []int{0, 1, 2, 3}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink ^= Hash(row, c.keys)
			}
			_ = sink
		})
	}
}

func BenchmarkHashJoin(b *testing.B) {
	build := benchRows(1000, 500, 1)
	probe := benchRows(4000, 500, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := NewHashJoin(build, []int{0}, NewSliceIter(probe), []int{0})
		n := 0
		for {
			_, ok := j.Next()
			if !ok {
				break
			}
			n++
		}
		if n == 0 {
			b.Fatal("empty join")
		}
	}
}

func BenchmarkHashAggregate(b *testing.B) {
	rows := benchRows(8000, 200, 3)
	aggs := []Agg{{AggSum, 2}, {AggCount, 0}, {AggMin, 2}, {AggMax, 2}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := HashAggregate(rows, []int{0}, aggs)
		if len(out) == 0 {
			b.Fatal("no groups")
		}
	}
}

func BenchmarkSortRows(b *testing.B) {
	cases := []struct {
		name string
		keys []int
	}{
		{"int64Key", []int{0}},
		{"stringKey", []int{1}},
		{"multiKey", []int{0, 1, 2}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			src := benchRows(4000, 1000, 4)
			scratch := make([]Row, len(src))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(scratch, src)
				SortRows(scratch, c.keys)
			}
		})
	}
}

func BenchmarkTopK(b *testing.B) {
	rows := benchRows(8000, 8000, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := TopK(rows, []int{0}, 50)
		if len(out) != 50 {
			b.Fatal("wrong k")
		}
	}
}

func BenchmarkEmitByKey(b *testing.B) {
	// PartitionByKey is EmitByKey's kernel; benchmarking it directly keeps
	// the Store and controller out of the measurement.
	rows := benchRows(8000, 4000, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := PartitionByKey(rows, []int{0}, 16)
		if len(parts) != 16 {
			b.Fatal("wrong fan-out")
		}
	}
}

func BenchmarkEmitByRange(b *testing.B) {
	rows := benchRows(8000, 1<<30, 7)
	SortRows(rows, []int{0})
	bounds := make([]Row, 15)
	for i := range bounds {
		bounds[i] = rows[(i+1)*len(rows)/16]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := PartitionByRange(rows, []int{0}, bounds)
		if len(parts) != 16 {
			b.Fatal("wrong fan-out")
		}
	}
}

func BenchmarkMergeSortedRuns(b *testing.B) {
	var runs [][]Row
	for i := 0; i < 16; i++ {
		run := benchRows(500, 1<<30, int64(8+i))
		SortRows(run, []int{0})
		runs = append(runs, run)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := MergeSortedRuns(runs, []int{0})
		if len(out) != 16*500 {
			b.Fatal("lost rows")
		}
	}
}
