package engine

import "sync"

// BatchPool recycles decoded batches so steady-state shuffle consumption
// stops allocating: Decode reuses the recycled batch's column vectors
// whenever their capacity covers the incoming rows, leaving only the
// per-column string slab (and growth on a larger batch) as live
// allocations. The zero BatchPool is ready to use.
//
// Ownership is strict: a batch handed to Put must no longer be referenced
// by the caller — its vectors are overwritten by the next Decode. Decoded
// string values alias the batch's slab, so they recycle with it.
type BatchPool struct {
	pool sync.Pool
}

// NewBatchPool returns an empty pool.
func NewBatchPool() *BatchPool { return &BatchPool{} }

// Get returns a recycled batch, or a fresh empty one.
func (p *BatchPool) Get() *Batch {
	if b, ok := p.pool.Get().(*Batch); ok {
		return b
	}
	return &Batch{}
}

// Put recycles a batch for a later Decode. The caller must drop every
// reference into it first.
func (p *BatchPool) Put(b *Batch) {
	if b == nil {
		return
	}
	p.pool.Put(b)
}

// Decode decodes data into a recycled batch. On error the batch returns to
// the pool and the error surfaces; decodeBatchInto fully overwrites or
// clears every field it touches, so a failed decode cannot poison a later
// one.
func (p *BatchPool) Decode(data []byte) (*Batch, error) {
	b := p.Get()
	if err := decodeBatchInto(b, data); err != nil {
		p.Put(b)
		return nil, err
	}
	return b, nil
}
