package engine

import "fmt"

// Batch is the engine's columnar record set: a fixed-schema slice of typed
// vectors plus per-column null bitmaps. Operators carry batches end-to-end
// — scan, filter, join, aggregate, shuffle write, wire transfer — so the
// per-cell interface boxing and interface-dispatch comparison of the row
// model is paid only at the row↔batch adapter seam (Rows/BatchFromRows),
// which exists for Plans written against the row API.
type Batch struct {
	Cols []Column
	Len  int // row count; every column holds exactly Len values
	// Sel is the batch's selection vector: when non-nil, the batch is a
	// lazy view over its columns' physical vectors and logical row j lives
	// at physical row Sel[j] (Len == len(Sel)). FilterBatch produces these
	// views so a filter costs one index vector instead of a full gather;
	// the batch kernels consume them in place and Materialize (or any
	// emit/codec boundary) densifies. A nil Sel is the dense case: logical
	// and physical rows coincide.
	Sel []int32
}

// ColType identifies a column's physical vector type.
type ColType uint8

// Physical column types. TAny is the escape hatch for kind-mixed columns
// (e.g. an int64/float64 union key): values stay boxed, exactly as the row
// model held them, so the adapter is total over any row input.
const (
	TInt64 ColType = iota
	TFloat64
	TString
	TBool
	TAny
	// TDict is a dictionary-encoded string column: Codes[i] indexes Dict.
	// Value-wise it is indistinguishable from a TString column (hashes,
	// comparisons and boxed reads all see the dictionary strings), but a
	// low-cardinality column encodes as the dictionary plus bit-packed
	// codes instead of one length-prefixed string per row. DictifyBatch
	// builds these at encode-side boundaries when the coding pays.
	TDict
)

func (t ColType) String() string {
	switch t {
	case TInt64:
		return "int64"
	case TFloat64:
		return "float64"
	case TString:
		return "string"
	case TBool:
		return "bool"
	case TAny:
		return "any"
	case TDict:
		return "dict"
	}
	return fmt.Sprintf("ColType(%d)", uint8(t))
}

// Column is one typed vector. Exactly one of the payload slices is
// populated, selected by Type; null slots hold the zero value there and set
// their bit in Nulls. A nil Nulls means no nulls.
type Column struct {
	Type   ColType
	Nulls  []uint64 // bitmap, bit i set = row i is NULL; nil when null-free
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	Anys   []Value
	// TDict payload: row i holds the string Dict[Codes[i]]. NULL slots
	// carry a valid (zeroth-entry) code, exactly as NULL TString slots
	// carry ""; the bitmap stays authoritative.
	Dict  []string
	Codes []uint32
}

// Typed column constructors (null-free).

// Int64Col wraps vals as a TInt64 column.
func Int64Col(vals []int64) Column { return Column{Type: TInt64, Ints: vals} }

// Float64Col wraps vals as a TFloat64 column.
func Float64Col(vals []float64) Column { return Column{Type: TFloat64, Floats: vals} }

// StringCol wraps vals as a TString column.
func StringCol(vals []string) Column { return Column{Type: TString, Strs: vals} }

// BoolCol wraps vals as a TBool column.
func BoolCol(vals []bool) Column { return Column{Type: TBool, Bools: vals} }

// DictCol wraps a dictionary and code vector as a TDict column. Every code
// must index dict; DictifyBatch is the checked builder for arbitrary
// string columns.
func DictCol(dict []string, codes []uint32) Column {
	return Column{Type: TDict, Dict: dict, Codes: codes}
}

func bitGet(bm []uint64, i int) bool { return bm[i>>6]&(1<<(uint(i)&63)) != 0 }

func bitSet(bm []uint64, i int) { bm[i>>6] |= 1 << (uint(i) & 63) }

func bitmapWords(n int) int { return (n + 63) / 64 }

// IsNull reports whether row i of the column is NULL.
func (c *Column) IsNull(i int) bool { return c.Nulls != nil && bitGet(c.Nulls, i) }

// setNull marks row i NULL, allocating the bitmap on first use (n is the
// column's full length).
func (c *Column) setNull(i, n int) {
	if c.Nulls == nil {
		c.Nulls = make([]uint64, bitmapWords(n))
	}
	bitSet(c.Nulls, i)
}

// hasNulls reports whether any bit is set.
func (c *Column) hasNulls() bool {
	for _, w := range c.Nulls {
		if w != 0 {
			return true
		}
	}
	return false
}

// Value boxes row i of the column (nil for NULL). This is the adapter-seam
// read; batch kernels read the typed vectors directly.
func (c *Column) Value(i int) Value {
	if c.IsNull(i) {
		return nil
	}
	switch c.Type {
	case TInt64:
		return c.Ints[i]
	case TFloat64:
		return c.Floats[i]
	case TString:
		return c.Strs[i]
	case TBool:
		return c.Bools[i]
	case TAny:
		return c.Anys[i]
	case TDict:
		return c.Dict[c.Codes[i]]
	}
	return c.Anys[i]
}

// strAt reads the string at row i of a TString or TDict column.
func (c *Column) strAt(i int) string {
	if c.Type == TDict {
		return c.Dict[c.Codes[i]]
	}
	return c.Strs[i]
}

// length returns the column's value count.
func (c *Column) length() int {
	switch c.Type {
	case TInt64:
		return len(c.Ints)
	case TFloat64:
		return len(c.Floats)
	case TString:
		return len(c.Strs)
	case TBool:
		return len(c.Bools)
	case TAny:
		return len(c.Anys)
	case TDict:
		return len(c.Codes)
	}
	return len(c.Anys)
}

// NewBatch wraps pre-built columns, inferring the row count from the first
// column (0 columns = 0 rows). It panics on ragged columns — a kernel bug,
// not runtime data.
func NewBatch(cols ...Column) *Batch {
	n := 0
	if len(cols) > 0 {
		n = cols[0].length()
	}
	for i := range cols {
		if cols[i].length() != n {
			panic(fmt.Sprintf("engine: ragged batch: column %d has %d values, want %d", i, cols[i].length(), n))
		}
	}
	return &Batch{Cols: cols, Len: n}
}

// NumCols returns the column count.
func (b *Batch) NumCols() int { return len(b.Cols) }

// physical maps logical row j to its physical row in the column vectors.
func (b *Batch) physical(j int) int {
	if b.Sel == nil {
		return j
	}
	return int(b.Sel[j])
}

// Materialize densifies a selection-vector view into a batch whose columns
// hold exactly its logical rows (one typed gather). Dense batches return
// unchanged — the call is free on the common path, so boundaries
// (codec, store, row adapter) invoke it unconditionally.
func (b *Batch) Materialize() *Batch {
	if b == nil || b.Sel == nil {
		return b
	}
	return b.Gather(b.Sel)
}

// Value boxes cell (col, row) — nil for NULL. Row is logical (selection
// vectors are applied).
func (b *Batch) Value(col, row int) Value { return b.Cols[col].Value(b.physical(row)) }

// IsNull reports whether cell (col, row) is NULL.
func (b *Batch) IsNull(col, row int) bool { return b.Cols[col].IsNull(b.physical(row)) }

// BatchFromRows converts rows into a batch: each column becomes the
// narrowest typed vector that holds every value (nil values are NULL bits),
// falling back to TAny when kinds mix. Ragged rows are tolerated — missing
// trailing cells read as NULL — so the adapter is total over anything a
// Plan emits.
func BatchFromRows(rows []Row) *Batch {
	ncols := 0
	for _, r := range rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	b := &Batch{Cols: make([]Column, ncols), Len: len(rows)}
	for c := 0; c < ncols; c++ {
		b.Cols[c] = columnFromRows(rows, c)
	}
	return b
}

// columnFromRows builds column c of the rows. Two passes: infer the
// narrowest type, then fill the typed vector.
func columnFromRows(rows []Row, c int) Column {
	t := ColType(0)
	typed := false
	mixed := false
	for _, r := range rows {
		if c >= len(r) || r[c] == nil {
			continue
		}
		var vt ColType
		switch r[c].(type) {
		case int64:
			vt = TInt64
		case float64:
			vt = TFloat64
		case string:
			vt = TString
		case bool:
			vt = TBool
		default:
			vt = TAny
		}
		if !typed {
			t, typed = vt, true
		} else if vt != t {
			mixed = true
			break
		}
	}
	if mixed || (typed && t == TAny) {
		t = TAny
	} else if !typed {
		t = TInt64 // all-NULL column: values are irrelevant, pick the cheapest
	}
	n := len(rows)
	col := Column{Type: t}
	switch t {
	case TInt64:
		col.Ints = make([]int64, n)
	case TFloat64:
		col.Floats = make([]float64, n)
	case TString:
		col.Strs = make([]string, n)
	case TBool:
		col.Bools = make([]bool, n)
	case TAny:
		col.Anys = make([]Value, n)
	case TDict:
		panic("engine: rows never infer dictionary columns")
	}
	for i, r := range rows {
		if c >= len(r) || r[c] == nil {
			col.setNull(i, n)
			continue
		}
		switch t {
		case TInt64:
			col.Ints[i] = r[c].(int64)
		case TFloat64:
			col.Floats[i] = r[c].(float64)
		case TString:
			col.Strs[i] = r[c].(string)
		case TBool:
			col.Bools[i] = r[c].(bool)
		case TAny:
			col.Anys[i] = r[c]
		case TDict:
			panic("engine: rows never infer dictionary columns")
		}
	}
	return col
}

// Rows materialises the batch as rows (the adapter-seam read). Row storage
// is carved from an arena, one slab per ~4096 values.
func (b *Batch) Rows() []Row {
	return b.AppendRows(nil)
}

// AppendRows appends the batch's rows to dst.
func (b *Batch) AppendRows(dst []Row) []Row {
	if b == nil || b.Len == 0 {
		return dst
	}
	var arena rowArena
	nc := len(b.Cols)
	for i := 0; i < b.Len; i++ {
		p := b.physical(i)
		r := arena.alloc(nc)
		for c := range b.Cols {
			r[c] = b.Cols[c].Value(p)
		}
		dst = append(dst, r)
	}
	return dst
}

// RowAt materialises (logical) row i.
func (b *Batch) RowAt(i int) Row {
	p := b.physical(i)
	r := make(Row, len(b.Cols))
	for c := range b.Cols {
		r[c] = b.Cols[c].Value(p)
	}
	return r
}

// Project returns a batch holding the selected columns. Column vectors are
// shared, not copied — projection is free in the columnar model — and a
// selection vector is shared along with them.
func (b *Batch) Project(cols []int) *Batch {
	out := &Batch{Cols: make([]Column, len(cols)), Len: b.Len, Sel: b.Sel}
	for i, c := range cols {
		out.Cols[i] = b.Cols[c]
	}
	return out
}

// WithCol returns the batch extended by one more column (shared vectors).
// The new column must have exactly Len values; a selection view
// materialises first so the new dense column lines up with the old ones.
func (b *Batch) WithCol(col Column) *Batch {
	if col.length() != b.Len {
		panic(fmt.Sprintf("engine: WithCol: %d values for %d-row batch", col.length(), b.Len))
	}
	b = b.Materialize()
	cols := make([]Column, len(b.Cols)+1)
	copy(cols, b.Cols)
	cols[len(b.Cols)] = col
	return &Batch{Cols: cols, Len: b.Len}
}

// Gather returns a new dense batch holding the physical rows sel (in that
// order). Each column dispatches on its type once and copies with a typed
// loop — the shared kernel behind batch filter, sort and join
// materialisation. Indices address the column vectors directly; callers
// composing over a selection view map logical indices through Sel first.
func (b *Batch) Gather(sel []int32) *Batch {
	out := &Batch{Cols: make([]Column, len(b.Cols)), Len: len(sel)}
	for c := range b.Cols {
		out.Cols[c] = gatherCol(&b.Cols[c], sel)
	}
	return out
}

func gatherCol(src *Column, sel []int32) Column {
	n := len(sel)
	out := Column{Type: src.Type}
	switch src.Type {
	case TInt64:
		out.Ints = make([]int64, n)
		for i, s := range sel {
			out.Ints[i] = src.Ints[s]
		}
	case TFloat64:
		out.Floats = make([]float64, n)
		for i, s := range sel {
			out.Floats[i] = src.Floats[s]
		}
	case TString:
		out.Strs = make([]string, n)
		for i, s := range sel {
			out.Strs[i] = src.Strs[s]
		}
	case TBool:
		out.Bools = make([]bool, n)
		for i, s := range sel {
			out.Bools[i] = src.Bools[s]
		}
	case TAny:
		out.Anys = make([]Value, n)
		for i, s := range sel {
			out.Anys[i] = src.Anys[s]
		}
	case TDict:
		out.Dict = src.Dict
		out.Codes = make([]uint32, n)
		for i, s := range sel {
			out.Codes[i] = src.Codes[s]
		}
	}
	if src.Nulls != nil {
		for i, s := range sel {
			if bitGet(src.Nulls, int(s)) {
				out.setNull(i, n)
			}
		}
	}
	return out
}

// ConcatBatches concatenates runs into one batch (the batch counterpart of
// flattening Input runs). Columns with matching types append typed;
// dictionary runs widen back to plain strings (different runs carry
// different dictionaries) and genuinely mismatched types degrade that
// column to TAny, preserving each value's boxed kind. Runs must agree on
// column count (empty runs are skipped; selection views materialise).
func ConcatBatches(runs []*Batch) *Batch {
	for _, r := range runs {
		if r != nil && r.Sel != nil {
			// Densify lazily-filtered runs on a copy of the slice, so the
			// caller's runs are left untouched.
			dense := make([]*Batch, len(runs))
			for i, rr := range runs {
				dense[i] = rr.Materialize()
			}
			runs = dense
			break
		}
	}
	total, ncols := 0, -1
	for _, r := range runs {
		if r == nil || r.Len == 0 {
			continue
		}
		total += r.Len
		if ncols < 0 {
			ncols = len(r.Cols)
		} else if len(r.Cols) != ncols {
			panic(fmt.Sprintf("engine: concat of %d-col and %d-col batches", ncols, len(r.Cols)))
		}
	}
	if ncols < 0 {
		return &Batch{}
	}
	out := &Batch{Cols: make([]Column, ncols), Len: total}
	for c := 0; c < ncols; c++ {
		out.Cols[c] = concatCol(runs, c, total)
	}
	return out
}

func concatCol(runs []*Batch, c, total int) Column {
	t := ColType(0)
	typed := false
	for _, r := range runs {
		if r == nil || r.Len == 0 {
			continue
		}
		rt := r.Cols[c].Type
		if rt == TDict {
			// Dictionary runs widen to plain strings: each run carries its
			// own dictionary, and re-dictionarisation happens (when it
			// pays) at the next encode boundary.
			rt = TString
		}
		if !typed {
			t, typed = rt, true
		} else if rt != t {
			// Mixed types across runs: an all-NULL run infers TInt64 and can
			// merge into anything; genuine kind mixes degrade to TAny.
			if allNull(&r.Cols[c], r.Len) {
				continue
			}
			if allNullSoFar(runs, c, r) {
				t = rt
				continue
			}
			t = TAny
			break
		}
	}
	out := Column{Type: t}
	switch t {
	case TInt64:
		out.Ints = make([]int64, 0, total)
	case TFloat64:
		out.Floats = make([]float64, 0, total)
	case TString:
		out.Strs = make([]string, 0, total)
	case TBool:
		out.Bools = make([]bool, 0, total)
	case TAny:
		out.Anys = make([]Value, 0, total)
	case TDict:
		// never the merged type: dictionary runs widen to TString above
	}
	off := 0
	for _, r := range runs {
		if r == nil || r.Len == 0 {
			continue
		}
		src := &r.Cols[c]
		if (src.Type == t || (src.Type == TDict && t == TString)) && t != TAny {
			switch t {
			case TInt64:
				out.Ints = append(out.Ints, src.Ints...)
			case TFloat64:
				out.Floats = append(out.Floats, src.Floats...)
			case TString:
				if src.Type == TDict {
					for _, code := range src.Codes {
						out.Strs = append(out.Strs, src.Dict[code])
					}
				} else {
					out.Strs = append(out.Strs, src.Strs...)
				}
			case TBool:
				out.Bools = append(out.Bools, src.Bools...)
			case TAny, TDict:
				// TAny is excluded by the t != TAny guard on this branch;
				// TDict never survives the type merge above.
			}
			if src.Nulls != nil {
				for i := 0; i < r.Len; i++ {
					if bitGet(src.Nulls, i) {
						out.setNull(off+i, total)
					}
				}
			}
		} else {
			// Slow lane: type differs from the merged type (all-NULL run, or
			// the merged type is TAny) — box through Value.
			for i := 0; i < r.Len; i++ {
				v := src.Value(i)
				switch t {
				case TInt64:
					out.Ints = append(out.Ints, 0)
				case TFloat64:
					out.Floats = append(out.Floats, 0)
				case TString:
					out.Strs = append(out.Strs, "")
				case TBool:
					out.Bools = append(out.Bools, false)
				case TAny:
					out.Anys = append(out.Anys, v)
				case TDict:
					// never the merged type: dictionary runs widen to TString
				}
				if v == nil {
					out.setNull(off+i, total)
				} else if t != TAny {
					// Non-nil value of a different kind forced into a typed
					// column can only happen for TAny targets, handled above.
					panic("engine: concat type drift")
				}
			}
		}
		off += r.Len
	}
	return out
}

func allNull(c *Column, n int) bool {
	if c.Nulls == nil {
		return n == 0
	}
	for i := 0; i < n; i++ {
		if !bitGet(c.Nulls, i) {
			return false
		}
	}
	return true
}

// allNullSoFar reports whether every run before `until` has an all-NULL
// column c.
func allNullSoFar(runs []*Batch, c int, until *Batch) bool {
	for _, r := range runs {
		if r == until {
			return true
		}
		if r == nil || r.Len == 0 {
			continue
		}
		if !allNull(&r.Cols[c], r.Len) {
			return false
		}
	}
	return true
}
