//go:build !race

package engine

// raceEnabled reports whether the race detector instruments this build;
// the allocation guards skip under it (instrumentation allocates).
const raceEnabled = false
