package engine

// Window functions (the paper lists Window among the global-sort-class
// operators): evaluate per-partition ranked computations over key-sorted
// input. A WindowSpec partitions rows by PartitionBy, orders each
// partition by OrderBy, and appends the computed window value to each row.

// WindowFunc identifies a supported window computation.
type WindowFunc int

// Supported window functions.
const (
	// WinRowNumber appends the 1-based position within the partition.
	WinRowNumber WindowFunc = iota
	// WinRank appends the rank with gaps (equal order keys share a rank).
	WinRank
	// WinDenseRank appends the rank without gaps.
	WinDenseRank
	// WinRunningSum appends the running sum of ValueCol within the
	// partition.
	WinRunningSum
)

// WindowSpec configures a window computation.
type WindowSpec struct {
	PartitionBy []int
	OrderBy     []int
	Func        WindowFunc
	// ValueCol is the summed column for WinRunningSum.
	ValueCol int
}

// Window evaluates the spec over the rows and returns new rows with the
// window value appended as the last column. Input order is not assumed;
// output is ordered by (PartitionBy, OrderBy), which is also the order a
// global-sort shuffle would deliver.
func Window(rows []Row, spec WindowSpec) []Row {
	sorted := append([]Row(nil), rows...)
	keys := append(append([]int(nil), spec.PartitionBy...), spec.OrderBy...)
	SortRows(sorted, keys)

	var arena rowArena
	out := make([]Row, 0, len(sorted))
	var (
		partStart int
		rowNum    int64
		rank      int64
		denseRank int64
		running   float64
	)
	samePartition := func(a, b Row) bool {
		return CompareRows(a, b, spec.PartitionBy) == 0
	}
	sameOrder := func(a, b Row) bool {
		return CompareRows(a, b, spec.OrderBy) == 0
	}
	for i, r := range sorted {
		newPart := i == 0 || !samePartition(r, sorted[i-1])
		if newPart {
			partStart = i
			rowNum, rank, denseRank, running = 0, 0, 0, 0
		}
		rowNum++
		if newPart || !sameOrder(r, sorted[i-1]) {
			rank = rowNum
			denseRank++
		}
		var v Value
		switch spec.Func {
		case WinRowNumber:
			v = rowNum
		case WinRank:
			v = rank
		case WinDenseRank:
			v = denseRank
		case WinRunningSum:
			// NULL adds nothing, matching the batch kernel's null skip.
			if x := r[spec.ValueCol]; x != nil {
				running += asFloat(x)
			}
			v = running
		}
		_ = partStart
		nr := arena.alloc(len(r) + 1)
		copy(nr, r)
		nr[len(r)] = v
		out = append(out, nr)
	}
	return out
}

func asFloat(v Value) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	}
	panic("engine: non-numeric value in running sum")
}
