package engine

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Column codec: the wire format shuffle segments travel in (internal/rpc
// wraps it for the multi-process path) and the byte-accounting ground truth
// for the Store and Cache Workers. Layout, all integers little-endian:
//
//	uvarint rows, uvarint cols
//	per column:
//	  1 byte ColType, 1 byte hasNulls
//	  [hasNulls] ceil(rows/64) × 8-byte null-bitmap words
//	  payload:
//	    TInt64 / TFloat64: rows × 8 bytes (two's-complement / IEEE bits)
//	    TString:           per value uvarint length + bytes
//	    TBool:             ceil(rows/8) packed bytes
//	    TAny:              per value 1 kind byte + payload (see anyKind*)
//
// Typed vectors are length-prefixed by the header's row count — no gob, no
// interface registration, no per-cell reflection. NULL slots encode their
// zero value; the bitmap is authoritative.

// TAny per-value kind bytes.
const (
	anyKindNull   = 0
	anyKindInt64  = 1
	anyKindFloat  = 2
	anyKindString = 3
	anyKindBool   = 4
	// anyKindOther carries fmt.Sprintf("%v") of a kind outside the engine's
	// value domain; it decodes as a string. Compare would panic on such a
	// value anyway — this keeps the codec total without gob.
	anyKindOther = 5
)

// maxCountOnlyRows caps the row count of a decoded column-less batch; with
// no per-row payload to bound it, the header alone could otherwise claim an
// arbitrarily expensive batch.
const maxCountOnlyRows = 1 << 20

// EncodedBatchSize returns the exact byte length AppendBatch would produce
// — the shared size helper behind Store.Put accounting.
func EncodedBatchSize(b *Batch) int {
	if b == nil {
		return uvarintLen(0) + uvarintLen(0)
	}
	n := uvarintLen(uint64(b.Len)) + uvarintLen(uint64(len(b.Cols)))
	for c := range b.Cols {
		n += encodedColSize(&b.Cols[c], b.Len)
	}
	return n
}

func encodedColSize(c *Column, rows int) int {
	n := 2 // type + hasNulls
	if c.hasNulls() {
		n += bitmapWords(rows) * 8
	}
	switch c.Type {
	case TInt64, TFloat64:
		n += rows * 8
	case TString:
		for _, s := range c.Strs {
			n += uvarintLen(uint64(len(s))) + len(s)
		}
	case TBool:
		n += (rows + 7) / 8
	case TAny:
		for i := range c.Anys {
			n += 1 + anyValueSize(c.Anys[i])
		}
	}
	return n
}

func anyValueSize(v Value) int {
	switch x := v.(type) {
	case nil:
		return 0
	case int64, float64:
		return 8
	case string:
		return uvarintLen(uint64(len(x))) + len(x)
	case bool:
		return 1
	default:
		s := fmt.Sprintf("%v", v)
		return uvarintLen(uint64(len(s))) + len(s)
	}
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// EncodeBatch encodes the batch into a fresh exact-size buffer.
func EncodeBatch(b *Batch) []byte {
	return AppendBatch(make([]byte, 0, EncodedBatchSize(b)), b)
}

// AppendBatch appends the batch's encoding to dst (zero allocations when
// dst has capacity).
func AppendBatch(dst []byte, b *Batch) []byte {
	if b == nil {
		return binary.AppendUvarint(binary.AppendUvarint(dst, 0), 0)
	}
	dst = binary.AppendUvarint(dst, uint64(b.Len))
	dst = binary.AppendUvarint(dst, uint64(len(b.Cols)))
	for c := range b.Cols {
		dst = appendCol(dst, &b.Cols[c], b.Len)
	}
	return dst
}

func appendCol(dst []byte, c *Column, rows int) []byte {
	hasNulls := c.hasNulls()
	dst = append(dst, byte(c.Type))
	if hasNulls {
		dst = append(dst, 1)
		words := bitmapWords(rows)
		for w := 0; w < words; w++ {
			var v uint64
			if w < len(c.Nulls) {
				v = c.Nulls[w]
			}
			dst = binary.LittleEndian.AppendUint64(dst, v)
		}
	} else {
		dst = append(dst, 0)
	}
	switch c.Type {
	case TInt64:
		for _, v := range c.Ints {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
	case TFloat64:
		for _, v := range c.Floats {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	case TString:
		for _, s := range c.Strs {
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		}
	case TBool:
		nb := (rows + 7) / 8
		start := len(dst)
		dst = append(dst, make([]byte, nb)...)
		for i, v := range c.Bools {
			if v {
				dst[start+i/8] |= 1 << (uint(i) % 8)
			}
		}
	case TAny:
		for _, v := range c.Anys {
			dst = appendAnyValue(dst, v)
		}
	}
	return dst
}

func appendAnyValue(dst []byte, v Value) []byte {
	switch x := v.(type) {
	case nil:
		return append(dst, anyKindNull)
	case int64:
		dst = append(dst, anyKindInt64)
		return binary.LittleEndian.AppendUint64(dst, uint64(x))
	case float64:
		dst = append(dst, anyKindFloat)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	case string:
		dst = append(dst, anyKindString)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		return append(dst, x...)
	case bool:
		dst = append(dst, anyKindBool)
		if x {
			return append(dst, 1)
		}
		return append(dst, 0)
	default:
		s := fmt.Sprintf("%v", v)
		dst = append(dst, anyKindOther)
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		return append(dst, s...)
	}
}

// decoder walks an encoded batch with bounds checks on every read, so a
// truncated or corrupt payload errors instead of panicking or allocating
// unbounded memory.
type decoder struct {
	data []byte
	off  int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("engine: batch codec: bad uvarint at %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.data) || d.off+n < d.off {
		return nil, fmt.Errorf("engine: batch codec: truncated at %d (need %d of %d)", d.off, n, len(d.data))
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) byte() (byte, error) {
	b, err := d.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// DecodeBatch decodes one batch, requiring the input to be fully consumed.
// Strings are copied out of data, so the input buffer may be reused.
func DecodeBatch(data []byte) (*Batch, error) {
	d := &decoder{data: data}
	rows64, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	cols64, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// A column costs ≥2 bytes and a row ≥1 bit of some column, which bounds
	// both counts by the payload length before any allocation happens.
	// Column-less (count-only) batches carry no per-row bytes, so their row
	// count gets a fixed cap instead — a tiny frame claiming billions of
	// rows would otherwise cost the receiver that much work the moment the
	// row adapter walks it.
	if cols64 > uint64(len(data)) {
		return nil, fmt.Errorf("engine: batch codec: %d columns in %d bytes", cols64, len(data))
	}
	if cols64 > 0 && rows64 > 8*uint64(len(data)) {
		return nil, fmt.Errorf("engine: batch codec: %d rows in %d bytes", rows64, len(data))
	}
	if cols64 == 0 && rows64 > maxCountOnlyRows {
		return nil, fmt.Errorf("engine: batch codec: %d rows without columns", rows64)
	}
	rows, cols := int(rows64), int(cols64)
	b := &Batch{Cols: make([]Column, cols), Len: rows}
	for c := 0; c < cols; c++ {
		if err := d.decodeCol(&b.Cols[c], rows); err != nil {
			return nil, err
		}
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("engine: batch codec: %d trailing bytes", len(data)-d.off)
	}
	return b, nil
}

func (d *decoder) decodeCol(c *Column, rows int) error {
	tb, err := d.byte()
	if err != nil {
		return err
	}
	if tb > byte(TAny) {
		return fmt.Errorf("engine: batch codec: unknown column type %d", tb)
	}
	c.Type = ColType(tb)
	nf, err := d.byte()
	if err != nil {
		return err
	}
	if nf > 1 {
		return fmt.Errorf("engine: batch codec: bad null flag %d", nf)
	}
	if nf == 1 {
		words := bitmapWords(rows)
		raw, err := d.bytes(words * 8)
		if err != nil {
			return err
		}
		c.Nulls = make([]uint64, words)
		for w := 0; w < words; w++ {
			c.Nulls[w] = binary.LittleEndian.Uint64(raw[w*8:])
		}
	}
	switch c.Type {
	case TInt64:
		raw, err := d.bytes(rows * 8)
		if err != nil {
			return err
		}
		c.Ints = make([]int64, rows)
		for i := range c.Ints {
			c.Ints[i] = int64(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	case TFloat64:
		raw, err := d.bytes(rows * 8)
		if err != nil {
			return err
		}
		c.Floats = make([]float64, rows)
		for i := range c.Floats {
			c.Floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	case TString:
		c.Strs = make([]string, rows)
		for i := range c.Strs {
			n, err := d.uvarint()
			if err != nil {
				return err
			}
			raw, err := d.bytes(int(n))
			if err != nil {
				return err
			}
			c.Strs[i] = string(raw)
		}
	case TBool:
		raw, err := d.bytes((rows + 7) / 8)
		if err != nil {
			return err
		}
		c.Bools = make([]bool, rows)
		for i := range c.Bools {
			c.Bools[i] = raw[i/8]&(1<<(uint(i)%8)) != 0
		}
	case TAny:
		c.Anys = make([]Value, rows)
		for i := range c.Anys {
			v, err := d.decodeAnyValue()
			if err != nil {
				return err
			}
			c.Anys[i] = v
		}
	}
	return nil
}

func (d *decoder) decodeAnyValue() (Value, error) {
	kind, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch kind {
	case anyKindNull:
		return nil, nil
	case anyKindInt64:
		raw, err := d.bytes(8)
		if err != nil {
			return nil, err
		}
		return int64(binary.LittleEndian.Uint64(raw)), nil
	case anyKindFloat:
		raw, err := d.bytes(8)
		if err != nil {
			return nil, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(raw)), nil
	case anyKindString, anyKindOther:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		raw, err := d.bytes(int(n))
		if err != nil {
			return nil, err
		}
		return string(raw), nil
	case anyKindBool:
		bb, err := d.byte()
		if err != nil {
			return nil, err
		}
		if bb > 1 {
			return nil, fmt.Errorf("engine: batch codec: bad bool byte %d", bb)
		}
		return bb == 1, nil
	default:
		return nil, fmt.Errorf("engine: batch codec: unknown any-kind %d", kind)
	}
}
