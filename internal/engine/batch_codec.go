package engine

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Column codec: the wire format shuffle segments travel in (internal/rpc
// wraps it for the multi-process path) and the byte-accounting ground truth
// for the Store and Cache Workers. Layout, all integers little-endian:
//
//	uvarint rows, uvarint cols
//	per column:
//	  1 byte ColType, 1 byte hasNulls
//	  [hasNulls] ceil(rows/64) × 8-byte null-bitmap words
//	  payload:
//	    TInt64 / TFloat64: rows × 8 bytes (two's-complement / IEEE bits)
//	    TString:           per value uvarint length + bytes
//	    TBool:             ceil(rows/8) packed bytes
//	    TAny:              per value 1 kind byte + payload (see anyKind*)
//	    TDict:             uvarint dict size, per entry uvarint length +
//	                       bytes, then rows × dictBits(size) code bits
//	                       packed LSB-first
//
// Typed vectors are length-prefixed by the header's row count — no gob, no
// interface registration, no per-cell reflection. NULL slots encode their
// zero value; the bitmap is authoritative.
//
// Decoding copies each column's string region out of the input as a single
// slab and slices the individual values from it, so the input buffer may be
// reused while decoded strings stay alive together. Selection vectors never
// travel: encoding materializes a lazy batch first.

// TAny per-value kind bytes.
const (
	anyKindNull   = 0
	anyKindInt64  = 1
	anyKindFloat  = 2
	anyKindString = 3
	anyKindBool   = 4
	// anyKindOther carries fmt.Sprintf("%v") of a kind outside the engine's
	// value domain; it decodes as a string. Compare would panic on such a
	// value anyway — this keeps the codec total without gob.
	anyKindOther = 5
)

// maxCountOnlyRows caps the decoded row count whenever the payload length
// cannot bound it: column-less (count-only) batches, which carry no per-row
// bytes at all, and batches whose columns may cost under a bit per row
// (single-entry dictionaries pack rows at zero code bits).
const maxCountOnlyRows = 1 << 20

// dictBits returns the packed code width for a dictionary of n entries:
// enough bits to address every entry, zero when one entry (or none) makes
// every code trivially 0.
func dictBits(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// EncodedBatchSize returns the exact byte length AppendBatch would produce
// — the shared size helper behind Store.Put accounting.
func EncodedBatchSize(b *Batch) int {
	b = b.Materialize()
	if b == nil {
		return uvarintLen(0) + uvarintLen(0)
	}
	n := uvarintLen(uint64(b.Len)) + uvarintLen(uint64(len(b.Cols)))
	for c := range b.Cols {
		n += encodedColSize(&b.Cols[c], b.Len)
	}
	return n
}

func encodedColSize(c *Column, rows int) int {
	n := 2 // type + hasNulls
	if c.hasNulls() {
		n += bitmapWords(rows) * 8
	}
	switch c.Type {
	case TInt64, TFloat64:
		n += rows * 8
	case TString:
		for _, s := range c.Strs {
			n += uvarintLen(uint64(len(s))) + len(s)
		}
	case TBool:
		n += (rows + 7) / 8
	case TAny:
		for i := range c.Anys {
			n += 1 + anyValueSize(c.Anys[i])
		}
	case TDict:
		n += uvarintLen(uint64(len(c.Dict)))
		for _, s := range c.Dict {
			n += uvarintLen(uint64(len(s))) + len(s)
		}
		n += (len(c.Codes)*dictBits(len(c.Dict)) + 7) / 8
	}
	return n
}

func anyValueSize(v Value) int {
	switch x := v.(type) {
	case nil:
		return 0
	case int64, float64:
		return 8
	case string:
		return uvarintLen(uint64(len(x))) + len(x)
	case bool:
		return 1
	default:
		s := fmt.Sprintf("%v", v)
		return uvarintLen(uint64(len(s))) + len(s)
	}
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// EncodeBatch encodes the batch into a fresh exact-size buffer.
func EncodeBatch(b *Batch) []byte {
	b = b.Materialize()
	return AppendBatch(make([]byte, 0, EncodedBatchSize(b)), b)
}

// AppendBatch appends the batch's encoding to dst (zero allocations when
// dst has capacity and the batch is dense).
func AppendBatch(dst []byte, b *Batch) []byte {
	b = b.Materialize()
	if b == nil {
		return binary.AppendUvarint(binary.AppendUvarint(dst, 0), 0)
	}
	dst = binary.AppendUvarint(dst, uint64(b.Len))
	dst = binary.AppendUvarint(dst, uint64(len(b.Cols)))
	for c := range b.Cols {
		dst = appendCol(dst, &b.Cols[c], b.Len)
	}
	return dst
}

func appendCol(dst []byte, c *Column, rows int) []byte {
	hasNulls := c.hasNulls()
	dst = append(dst, byte(c.Type))
	if hasNulls {
		dst = append(dst, 1)
		words := bitmapWords(rows)
		for w := 0; w < words; w++ {
			var v uint64
			if w < len(c.Nulls) {
				v = c.Nulls[w]
			}
			dst = binary.LittleEndian.AppendUint64(dst, v)
		}
	} else {
		dst = append(dst, 0)
	}
	switch c.Type {
	case TInt64:
		for _, v := range c.Ints {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
	case TFloat64:
		for _, v := range c.Floats {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	case TString:
		for _, s := range c.Strs {
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		}
	case TBool:
		nb := (rows + 7) / 8
		start := len(dst)
		dst = append(dst, make([]byte, nb)...)
		for i, v := range c.Bools {
			if v {
				dst[start+i/8] |= 1 << (uint(i) % 8)
			}
		}
	case TAny:
		for _, v := range c.Anys {
			dst = appendAnyValue(dst, v)
		}
	case TDict:
		dst = binary.AppendUvarint(dst, uint64(len(c.Dict)))
		for _, s := range c.Dict {
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		}
		dst = appendPackedCodes(dst, c.Codes, dictBits(len(c.Dict)))
	}
	return dst
}

func appendAnyValue(dst []byte, v Value) []byte {
	switch x := v.(type) {
	case nil:
		return append(dst, anyKindNull)
	case int64:
		dst = append(dst, anyKindInt64)
		return binary.LittleEndian.AppendUint64(dst, uint64(x))
	case float64:
		dst = append(dst, anyKindFloat)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	case string:
		dst = append(dst, anyKindString)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		return append(dst, x...)
	case bool:
		dst = append(dst, anyKindBool)
		if x {
			return append(dst, 1)
		}
		return append(dst, 0)
	default:
		s := fmt.Sprintf("%v", v)
		dst = append(dst, anyKindOther)
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		return append(dst, s...)
	}
}

// appendPackedCodes packs each code into w bits, LSB-first across bytes.
// Codes are masked to w bits, so padding bits in the final byte are always
// zero — the canonical form the fuzz fixpoint relies on.
func appendPackedCodes(dst []byte, codes []uint32, w int) []byte {
	if w == 0 {
		return dst
	}
	nb := (len(codes)*w + 7) / 8
	start := len(dst)
	dst = append(dst, make([]byte, nb)...)
	mask := uint32(1)<<uint(w) - 1
	bit := 0
	for _, code := range codes {
		v := code & mask
		rem := w
		for rem > 0 {
			sh := uint(bit % 8)
			took := 8 - int(sh)
			if took > rem {
				took = rem
			}
			dst[start+bit/8] |= byte(v << sh)
			v >>= uint(took)
			bit += took
			rem -= took
		}
	}
	return dst
}

// unpackCodes reads len(codes) w-bit values from raw, LSB-first.
func unpackCodes(codes []uint32, raw []byte, w int) {
	if w == 0 {
		for i := range codes {
			codes[i] = 0
		}
		return
	}
	bit := 0
	for i := range codes {
		var v uint32
		got := 0
		for got < w {
			sh := uint(bit % 8)
			took := 8 - int(sh)
			if took > w-got {
				took = w - got
			}
			v |= uint32((raw[bit/8]>>sh)&byte(uint(1)<<uint(took)-1)) << uint(got)
			bit += took
			got += took
		}
		codes[i] = v
	}
}

// decoder walks an encoded batch with bounds checks on every read, so a
// truncated or corrupt payload errors instead of panicking or allocating
// unbounded memory.
type decoder struct {
	data []byte
	off  int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("engine: batch codec: bad uvarint at %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.data) || d.off+n < d.off {
		return nil, fmt.Errorf("engine: batch codec: truncated at %d (need %d of %d)", d.off, n, len(d.data))
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) byte() (byte, error) {
	b, err := d.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *decoder) remaining() int { return len(d.data) - d.off }

// DecodeBatch decodes one batch into fresh storage, requiring the input to
// be fully consumed. Strings are copied out of data (one slab per column),
// so the input buffer may be reused.
//
//lint:hotpath
func DecodeBatch(data []byte) (*Batch, error) {
	b := &Batch{}
	if err := decodeBatchInto(b, data); err != nil {
		return nil, err
	}
	return b, nil
}

// decodeBatchInto decodes into b, reusing b's column vectors when their
// capacity suffices — the BatchPool fast path. Every reused field is fully
// overwritten or cleared, so a recycled batch cannot leak stale rows, null
// bitmaps or selection vectors.
//
//lint:hotpath
func decodeBatchInto(b *Batch, data []byte) error {
	d := &decoder{data: data}
	rows64, err := d.uvarint()
	if err != nil {
		return err
	}
	cols64, err := d.uvarint()
	if err != nil {
		return err
	}
	// A column costs ≥2 bytes, which bounds the column count by the payload
	// length before any allocation happens. Most column types cost ≥1 bit
	// per row, bounding rows by 8× the payload — but dictionary columns
	// pack rows at dictBits(size) bits, which is zero for a single-entry
	// dictionary, so row counts up to the fixed maxCountOnlyRows cap are
	// admitted regardless of payload length. Column-less (count-only)
	// batches carry no per-row bytes either and get the same cap.
	if cols64 > uint64(len(data)) {
		return fmt.Errorf("engine: batch codec: %d columns in %d bytes", cols64, len(data))
	}
	if rows64 > 8*uint64(len(data)) && rows64 > maxCountOnlyRows {
		return fmt.Errorf("engine: batch codec: %d rows in %d bytes", rows64, len(data))
	}
	rows, cols := int(rows64), int(cols64)
	if cap(b.Cols) >= cols {
		b.Cols = b.Cols[:cols]
	} else {
		b.Cols = make([]Column, cols)
	}
	b.Len = rows
	b.Sel = nil
	for c := 0; c < cols; c++ {
		if err := d.decodeCol(&b.Cols[c], rows); err != nil {
			return err
		}
	}
	if d.off != len(data) {
		return fmt.Errorf("engine: batch codec: %d trailing bytes", len(data)-d.off)
	}
	return nil
}

// resizeStrs and friends reuse a recycled vector when its capacity covers n
// rows; each caller overwrites all n slots.
func resizeStrs(s []string, n int) []string {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]string, n)
}

func resizeUint32(s []uint32, n int) []uint32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint32, n)
}

func resizeUint64(s []uint64, n int) []uint64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint64, n)
}

// stringRegion validates n uvarint-length-prefixed values in place (pass
// one), then copies the whole region — length prefixes included — as a
// single slab and slices each value from it (pass two). One allocation per
// region instead of one per string; the handful of prefix bytes kept alive
// inside the slab is the price of not building an offsets array.
func (d *decoder) stringRegion(out []string, n int) ([]string, error) {
	start := d.off
	for i := 0; i < n; i++ {
		ln, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if _, err := d.bytes(int(ln)); err != nil {
			return nil, err
		}
	}
	region := d.data[start:d.off]
	blob := string(region)
	out = resizeStrs(out, n)
	pos := 0
	for i := 0; i < n; i++ {
		ln, sz := binary.Uvarint(region[pos:])
		pos += sz
		out[i] = blob[pos : pos+int(ln)]
		pos += int(ln)
	}
	return out, nil
}

func (d *decoder) decodeCol(c *Column, rows int) error {
	tb, err := d.byte()
	if err != nil {
		return err
	}
	if tb > byte(TDict) {
		return fmt.Errorf("engine: batch codec: unknown column type %d", tb)
	}
	c.Type = ColType(tb)
	nf, err := d.byte()
	if err != nil {
		return err
	}
	if nf > 1 {
		return fmt.Errorf("engine: batch codec: bad null flag %d", nf)
	}
	if nf == 1 {
		words := bitmapWords(rows)
		raw, err := d.bytes(words * 8)
		if err != nil {
			return err
		}
		c.Nulls = resizeUint64(c.Nulls, words)
		for w := 0; w < words; w++ {
			c.Nulls[w] = binary.LittleEndian.Uint64(raw[w*8:])
		}
	} else {
		// A recycled column may carry the previous batch's bitmap.
		c.Nulls = nil
	}
	switch c.Type {
	case TInt64:
		raw, err := d.bytes(rows * 8)
		if err != nil {
			return err
		}
		if cap(c.Ints) >= rows {
			c.Ints = c.Ints[:rows]
		} else {
			c.Ints = make([]int64, rows)
		}
		for i := range c.Ints {
			c.Ints[i] = int64(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	case TFloat64:
		raw, err := d.bytes(rows * 8)
		if err != nil {
			return err
		}
		if cap(c.Floats) >= rows {
			c.Floats = c.Floats[:rows]
		} else {
			c.Floats = make([]float64, rows)
		}
		for i := range c.Floats {
			c.Floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	case TString:
		c.Strs, err = d.stringRegion(c.Strs, rows)
		if err != nil {
			return err
		}
	case TBool:
		raw, err := d.bytes((rows + 7) / 8)
		if err != nil {
			return err
		}
		if cap(c.Bools) >= rows {
			c.Bools = c.Bools[:rows]
		} else {
			c.Bools = make([]bool, rows)
		}
		for i := range c.Bools {
			c.Bools[i] = raw[i/8]&(1<<(uint(i)%8)) != 0
		}
	case TAny:
		// Each TAny value costs at least its kind byte, so the remaining
		// payload bounds the vector before it is allocated.
		if rows > d.remaining() {
			return fmt.Errorf("engine: batch codec: %d any values in %d bytes", rows, d.remaining())
		}
		if cap(c.Anys) >= rows {
			c.Anys = c.Anys[:rows]
		} else {
			c.Anys = make([]Value, rows)
		}
		for i := range c.Anys {
			v, err := d.decodeAnyValue()
			if err != nil {
				return err
			}
			c.Anys[i] = v
		}
	case TDict:
		size64, err := d.uvarint()
		if err != nil {
			return err
		}
		// Each dictionary entry costs at least its length prefix.
		if size64 > uint64(d.remaining()) {
			return fmt.Errorf("engine: batch codec: dictionary of %d entries in %d bytes", size64, d.remaining())
		}
		if size64 == 0 && rows > 0 {
			return fmt.Errorf("engine: batch codec: %d dictionary rows with empty dictionary", rows)
		}
		size := int(size64)
		c.Dict, err = d.stringRegion(c.Dict, size)
		if err != nil {
			return err
		}
		w := dictBits(size)
		raw, err := d.bytes((rows*w + 7) / 8)
		if err != nil {
			return err
		}
		c.Codes = resizeUint32(c.Codes, rows)
		unpackCodes(c.Codes, raw, w)
		for _, code := range c.Codes {
			if code >= uint32(size) {
				return fmt.Errorf("engine: batch codec: dictionary code %d out of range %d", code, size)
			}
		}
	}
	return nil
}

func (d *decoder) decodeAnyValue() (Value, error) {
	kind, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch kind {
	case anyKindNull:
		return nil, nil
	case anyKindInt64:
		raw, err := d.bytes(8)
		if err != nil {
			return nil, err
		}
		return int64(binary.LittleEndian.Uint64(raw)), nil
	case anyKindFloat:
		raw, err := d.bytes(8)
		if err != nil {
			return nil, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(raw)), nil
	case anyKindString, anyKindOther:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		raw, err := d.bytes(int(n))
		if err != nil {
			return nil, err
		}
		return string(raw), nil
	case anyKindBool:
		bb, err := d.byte()
		if err != nil {
			return nil, err
		}
		if bb > 1 {
			return nil, fmt.Errorf("engine: batch codec: bad bool byte %d", bb)
		}
		return bb == 1, nil
	default:
		return nil, fmt.Errorf("engine: batch codec: unknown any-kind %d", kind)
	}
}
