package engine

import (
	"math/rand"
	"testing"
)

// TestBatchPoolDecodeReuse drives one pooled batch through decodes of very
// different shapes and requires each result to match a fresh decode — in
// particular, a recycled null bitmap, selection vector or dictionary must
// never bleed into the next batch.
func TestBatchPoolDecodeReuse(t *testing.T) {
	r := rand.New(rand.NewSource(80))
	pool := NewBatchPool()

	withNulls := EncodeBatch(BatchFromRows(randRows(r, 120)))
	nullFree := EncodeBatch(typedBatch(40))
	dictified := EncodeBatch(DictifyBatch(BatchFromRows(randRows(r, 80))))
	empty := EncodeBatch(&Batch{})

	for round := 0; round < 3; round++ {
		for _, enc := range [][]byte{withNulls, nullFree, dictified, empty, nullFree} {
			got, err := pool.Decode(enc)
			if err != nil {
				t.Fatal(err)
			}
			want, err := DecodeBatch(enc)
			if err != nil {
				t.Fatal(err)
			}
			batchesEqual(t, "pooled decode", got, want)
			for c := range want.Cols {
				if (got.Cols[c].Nulls == nil) != (want.Cols[c].Nulls == nil) {
					t.Fatalf("col %d null bitmap presence differs after reuse", c)
				}
			}
			if got.Sel != nil {
				t.Fatal("pooled decode produced a lazy batch")
			}
			pool.Put(got)
		}
	}

	// A failed decode returns the batch to the pool without poisoning the
	// next decode.
	if _, err := pool.Decode([]byte{3, 1, byte(TDict), 0, 0}); err == nil {
		t.Fatal("corrupt input decoded")
	}
	got, err := pool.Decode(nullFree)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := DecodeBatch(nullFree)
	batchesEqual(t, "decode after failure", got, want)
}
