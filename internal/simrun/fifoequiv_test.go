package simrun

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"swift/internal/core"
	"swift/internal/obs"
	"swift/internal/sched"
	"swift/internal/sim"
	"swift/internal/trace"
)

// dumpResults renders a run's full outcome deterministically: every job in
// ID order with its terminal state, every task sample, and every stage
// phase record in key order. Two runs are byte-identical iff their dumps
// (and obs stream hashes) are.
func dumpResults(res *Results) string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan=%v\n", res.Makespan)
	for _, jr := range res.SortedJobs() {
		fmt.Fprintf(&b, "job=%s tenant=%s submit=%v finish=%v done=%v failed=%v restarts=%d resends=%d\n",
			jr.ID, jr.Tenant, jr.Submit, jr.Finish, jr.Completed, jr.Failed, jr.Restarts, jr.Resends)
		for _, s := range jr.Samples {
			fmt.Fprintf(&b, "  sample=%+v\n", s)
		}
		stages := make([]string, 0, len(jr.Phases))
		for name := range jr.Phases {
			stages = append(stages, name)
		}
		sort.Strings(stages)
		for _, name := range stages {
			fmt.Fprintf(&b, "  phase=%s %+v\n", name, *jr.Phases[name])
		}
	}
	return b.String()
}

// tracedRun executes the standard synthetic trace under the given policy
// and returns the obs stream hash plus the full results dump.
func tracedRun(seed int64, policy sched.Policy) (uint64, string) {
	opts := core.DefaultOptions()
	opts.Policy = policy
	rec := obs.New()
	opts.Obs = rec
	r := New(Config{Cluster: testCluster(), Options: opts, Seed: seed})
	tr := trace.Generate(trace.Spec{Jobs: 24, Seed: seed, ArrivalWindow: 30, Scale: 0.5, RuntimeCap: 60})
	for _, j := range tr.Jobs {
		r.SubmitAt(sim.FromSeconds(j.SubmitAt), j.Job)
	}
	res := r.Run()
	return rec.StreamHash(), dumpResults(res)
}

// TestFairShareReducesToFIFOSingleTenant is the policy layer's equivalence
// property: with a single tenant the hierarchical fair-share policy must
// reproduce the default FIFO schedule exactly — same obs event stream
// (hash) and byte-identical results — across seeds. One tenant's deserved
// share is the whole pool, so budgets never bind, preemption never finds a
// victim, and the budgeted serve must degenerate into the FIFO walk.
func TestFairShareReducesToFIFOSingleTenant(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		fifoHash, fifoDump := tracedRun(seed, sched.FIFO{})
		fairHash, fairDump := tracedRun(seed, sched.NewFairShare(sched.FairShareConfig{}))
		if fifoHash != fairHash {
			t.Errorf("seed %d: obs stream hash differs: fifo %016x, fair %016x", seed, fifoHash, fairHash)
		}
		if fifoDump != fairDump {
			line := 0
			ff, fr := strings.Split(fifoDump, "\n"), strings.Split(fairDump, "\n")
			for line < len(ff) && line < len(fr) && ff[line] == fr[line] {
				line++
			}
			get := func(s []string) string {
				if line < len(s) {
					return s[line]
				}
				return "<EOF>"
			}
			t.Errorf("seed %d: results diverge at line %d:\n  fifo: %s\n  fair: %s",
				seed, line, get(ff), get(fr))
		}
	}
}
