package simrun

import (
	"sort"

	"swift/internal/cluster"
	"swift/internal/core"
	"swift/internal/sim"
)

// This file is the fault-injection surface the chaos engine
// (internal/chaos) drives. Every injector models the paper's detection
// architecture (Section IV-A): the physical event happens now — tasks die,
// machines stop — but the controller only learns about it after the
// corresponding detection delay (executor error report, self-report on
// restart, or heartbeat silence). Injectors return false when the fault
// does not apply (no such running task, machine already down), so the
// chaos schedule can record skipped faults.

// SetActionHook registers an observer for every controller action the
// driver interprets, in interpretation order. Must be called before Run.
func (r *Runner) SetActionHook(fn func(sim.Time, core.Action)) { r.onAction = fn }

// SetEventHook registers a callback that fires after each controller event
// has been processed and its actions drained — the point where the
// controller's invariants must hold. Must be called before Run.
func (r *Runner) SetEventHook(fn func(sim.Time)) { r.afterEvent = fn }

// RunningTaskRefs returns the refs of all simulated running task attempts
// in sorted order, for deterministic fault targeting.
func (r *Runner) RunningTaskRefs() []core.TaskRef {
	out := make([]core.TaskRef, 0, len(r.tasks))
	for ref := range r.tasks {
		out = append(out, ref)
	}
	sortRefs(out)
	return out
}

func sortRefs(refs []core.TaskRef) {
	sort.Slice(refs, func(i, j int) bool {
		a, b := refs[i], refs[j]
		if a.Job != b.Job {
			return a.Job < b.Job
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		return a.Index < b.Index
	})
}

// MachineDown reports whether a machine is crashed (whether or not the
// controller has detected it yet).
func (r *Runner) MachineDown(id cluster.MachineID) bool { return r.down[id] }

// CrashMachine kills a machine now: every task running there dies
// immediately, but the controller only learns of the crash after the
// heartbeat-based detection delay, during which it may even launch new
// tasks onto the corpse (black holes, recovered at detection). Returns
// false if the machine is already down.
func (r *Runner) CrashMachine(id cluster.MachineID) bool {
	if r.down[id] {
		return false
	}
	r.down[id] = true
	var victims []core.TaskRef
	for ref, rt := range r.tasks {
		if r.cl.MachineOf(rt.act.Executor) == id {
			victims = append(victims, ref)
		}
	}
	sortRefs(victims)
	for _, ref := range victims {
		delete(r.tasks, ref)
		r.series.Delta(r.eng.Now().Seconds(), -1)
	}
	delay := sim.FromSeconds(core.MachineFailureDetectionDelay(r.cl.NumMachines()).Seconds())
	r.eng.After(delay, func() {
		if !r.down[id] || r.cl.Machine(id).Health == cluster.Failed {
			return // rebooted first, or detected via another path
		}
		r.ctrl.MachineFailed(id)
		r.handleActions()
	})
	return true
}

// RebootMachine brings a crashed machine back. If the crash was still
// undetected, detection is forced first so the controller's view stays
// consistent (a machine cannot rejoin a pool it never left). Returns false
// if the machine is not down.
func (r *Runner) RebootMachine(id cluster.MachineID) bool {
	if !r.down[id] {
		return false
	}
	if r.cl.Machine(id).Health != cluster.Failed {
		r.ctrl.MachineFailed(id)
		r.handleActions()
	}
	delete(r.down, id)
	r.ctrl.MachineRecovered(id)
	r.handleActions()
	return true
}

// MarkUnhealthy drives the health monitor's unhealthy→read-only transition
// for a machine (it keeps running its tasks but gets no new ones). Returns
// false if the machine is down or already non-healthy.
func (r *Runner) MarkUnhealthy(id cluster.MachineID) bool {
	if r.down[id] || r.cl.Machine(id).Health != cluster.Healthy {
		return false
	}
	r.ctrl.MachineUnhealthy(id)
	r.handleActions()
	return true
}

// RecoverMachine re-admits a read-only machine after its healthy
// observation window. Crashed machines come back via RebootMachine instead.
func (r *Runner) RecoverMachine(id cluster.MachineID) bool {
	if r.down[id] || r.cl.Machine(id).Health != cluster.ReadOnly {
		return false
	}
	r.ctrl.MachineRecovered(id)
	r.handleActions()
	return true
}

// CrashTask kills one running task attempt now; the executor reports the
// error after TaskErrorReportDelay. kind distinguishes infrastructure
// crashes from application errors (which abort the whole job, Section
// IV-C). Returns false if the task is not running.
func (r *Runner) CrashTask(ref core.TaskRef, kind core.FailureKind) bool {
	_, attempt, ok := r.ctrl.RunningTask(ref)
	if !ok {
		return false
	}
	if rt, live := r.tasks[ref]; live && rt.act.Attempt == attempt {
		delete(r.tasks, ref)
		r.series.Delta(r.eng.Now().Seconds(), -1)
	}
	r.eng.After(sim.FromSeconds(core.TaskErrorReportDelay.Seconds()), func() {
		r.ctrl.TaskFailed(ref, attempt, kind)
		r.handleActions()
	})
	return true
}

// TimeoutTask hangs one running task attempt: it stops making progress now
// and the controller declares it dead only after a full heartbeat interval
// of silence. Returns false if the task is not running.
func (r *Runner) TimeoutTask(ref core.TaskRef) bool {
	_, attempt, ok := r.ctrl.RunningTask(ref)
	if !ok {
		return false
	}
	if rt, live := r.tasks[ref]; live && rt.act.Attempt == attempt {
		delete(r.tasks, ref)
		r.series.Delta(r.eng.Now().Seconds(), -1)
	}
	delay := sim.FromSeconds(core.HeartbeatInterval(r.cl.NumMachines()).Seconds())
	r.eng.After(delay, func() {
		r.ctrl.TaskFailed(ref, attempt, core.FailCrash)
		r.handleActions()
	})
	return true
}

// RestartExecutor kills one executor process: its running task (if any)
// dies now, and the fresh process self-reports after SelfReportDelay — the
// fast detection channel. Returns true always; restarting an idle executor
// is a valid (harmless) fault.
func (r *Runner) RestartExecutor(e cluster.ExecutorID) bool {
	var victims []core.TaskRef
	for ref, rt := range r.tasks {
		if rt.act.Executor == e {
			victims = append(victims, ref)
		}
	}
	sortRefs(victims)
	for _, ref := range victims {
		delete(r.tasks, ref)
		r.series.Delta(r.eng.Now().Seconds(), -1)
	}
	r.eng.After(sim.FromSeconds(core.SelfReportDelay.Seconds()), func() {
		r.ctrl.ExecutorRestarted(e)
		r.handleActions()
	})
	return true
}

// LoseOutput destroys the buffered output of one completed task (a Cache
// Worker evicting or dying partially); the controller applies the "no step
// taken" rule immediately.
func (r *Runner) LoseOutput(ref core.TaskRef) {
	r.ctrl.TaskOutputLost(ref)
	r.handleActions()
}

// CrashCacheWorker kills one machine's Cache Worker process without taking
// the machine down: every output hosted there is lost at once and affected
// shuffle edges degrade to Direct. Returns false if the machine is down
// (its worker is already gone with it).
func (r *Runner) CrashCacheWorker(id cluster.MachineID) bool {
	if r.down[id] {
		return false
	}
	r.ctrl.CacheWorkerLost(id)
	r.handleActions()
	return true
}

// SlowTask stretches a running task attempt by factor (> 1): a straggler.
// If the finish is already armed, the remaining work is rescheduled factor
// times further out; if the task is still parked on inputs, the slowdown
// applies when its processing is finally scheduled. Returns false if the
// task is not running.
func (r *Runner) SlowTask(ref core.TaskRef, factor float64) bool {
	rt, ok := r.tasks[ref]
	if !ok || factor <= 1 {
		return false
	}
	rt.slow *= factor
	if rt.armed {
		now := r.eng.Now()
		remaining := rt.finishAt - now
		if remaining < 0 {
			remaining = 0
		}
		r.armFinish(r.jobs[ref.Job], rt, now+sim.Time(float64(remaining)*factor))
	}
	return true
}

// RunBounded executes the simulation up to the horizon with a step budget,
// returning the final time and whether the event queue quiesced (false
// indicates a livelock: events kept firing until the budget ran out).
func (r *Runner) RunBounded(horizon sim.Time, maxSteps int64) (sim.Time, bool) {
	end, quiesced := r.eng.RunBounded(horizon, maxSteps)
	r.results.Makespan = end
	r.results.ExecSeries = r.series
	return end, quiesced
}

// Results returns the accumulated results without running further, for
// bounded chaos runs that end via RunBounded.
func (r *Runner) Results() *Results { return r.results }
