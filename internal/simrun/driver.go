package simrun

import (
	"swift/internal/cluster"
	"swift/internal/core"
	"swift/internal/dag"
	"swift/internal/sim"
)

// handleActions drains the controller and interprets each action under the
// cost model. It must be called after every controller event.
func (r *Runner) handleActions() {
	for _, a := range r.ctrl.Drain() {
		if r.onAction != nil {
			r.onAction(r.eng.Now(), a)
		}
		switch a := a.(type) {
		case core.ActStartTask:
			r.startTask(a)
		case core.ActAbortTask:
			r.abortTask(a)
		case core.ActResend:
			if jr := r.jobs[a.To.Job]; jr != nil {
				jr.res.Resends++
			}
		case core.ActJobCompleted:
			jr := r.jobs[a.Job]
			jr.res.Completed = true
			jr.res.Finish = r.eng.Now()
		case core.ActJobFailed:
			jr := r.jobs[a.Job]
			jr.res.Failed = true
			jr.res.Finish = r.eng.Now()
		case core.ActJobRestarted:
			jr := r.jobs[a.Job]
			jr.res.Restarts++
			// All progress is discarded: stage completions and
			// first-start marks reset.
			jr.doneAt = make(map[string]sim.Time)
			jr.firstStart = make(map[string]sim.Time)
		case core.ActMachineReadOnly:
			// The health monitor drained this machine. With a configured
			// observation window, re-admit it once the window passes and
			// it is still alive and still read-only.
			if r.cfg.ReadmitDelay > 0 {
				id := a.Machine
				r.eng.After(r.cfg.ReadmitDelay, func() {
					if r.down[id] || r.cl.Machine(id).Health != cluster.ReadOnly {
						return
					}
					r.ctrl.MachineRecovered(id)
					r.handleActions()
				})
			}
		case core.ActMachineHealthy, core.ActShuffleDegraded:
			// Allocation/shuffle-mode side effects only; the degraded
			// re-run cost is dominated by the re-execution itself.
		case core.ActReplicate:
			// Replica copies ride the cost model (Breakdown.Replicate via
			// edgeCosts), not per-action charging; the controller already
			// tracks the homes for recovery.
		}
	}
	if r.afterEvent != nil {
		r.afterEvent(r.eng.Now())
	}
}

// startTask begins simulating one task attempt: charge launch cost, park on
// incomplete producer stages, and schedule completion once inputs are ready.
func (r *Runner) startTask(a core.ActStartTask) {
	jr := r.jobs[a.Task.Job]
	now := r.eng.Now()
	if _, seen := jr.firstStart[a.Task.Stage]; !seen {
		jr.firstStart[a.Task.Stage] = now
	}
	rt := &runningTask{act: a, started: now, launch: r.launchCost(jr, a), unmet: make(map[string]bool), slow: 1}
	r.tasks[a.Task] = rt
	r.series.Delta(now.Seconds(), +1)
	if r.down[r.cl.MachineOf(a.Executor)] {
		// The controller launched onto a machine that is already dead but
		// not yet detected: the task is a black hole. It never finishes;
		// the delayed MachineFailed aborts and re-runs it.
		return
	}
	for _, e := range jr.inEdges[a.Task.Stage] {
		if !r.ctrl.StageComplete(jr.job.ID, e.From) {
			rt.unmet[e.From] = true
			r.parked[parkKey(jr.job.ID, e.From)] = append(r.parked[parkKey(jr.job.ID, e.From)], a.Task)
		}
	}
	if len(rt.unmet) == 0 {
		r.scheduleFinish(jr, rt)
	}
}

func parkKey(job, stage string) string { return job + "\x00" + stage }

// launchCost returns the task-launching phase duration: Swift delivers a
// cached plan to a pre-launched executor; cold-launch systems (Spark)
// download packages and start an executor once per (stage, executor).
func (r *Runner) launchCost(jr *jobRun, a core.ActStartTask) float64 {
	m := r.cl.Model()
	launch := m.SwiftPlanDelivery + m.TaskDispatch
	if r.cfg.Options.ColdLaunch {
		per := jr.launched[a.Task.Stage]
		if per == nil {
			per = make(map[cluster.ExecutorID]bool)
			jr.launched[a.Task.Stage] = per
		}
		if !per[a.Executor] {
			per[a.Executor] = true
			launch += m.ColdLaunch
		}
	}
	return launch
}

// abortTask cancels a simulated task attempt (stale completions are
// filtered by attempt number).
func (r *Runner) abortTask(a core.ActAbortTask) {
	rt, ok := r.tasks[a.Task]
	if !ok || rt.act.Attempt != a.Attempt {
		return
	}
	delete(r.tasks, a.Task)
	r.series.Delta(r.eng.Now().Seconds(), -1)
	// Parked references clean themselves up lazily at unpark time.
}

// scheduleFinish computes the task's completion time now that its inputs
// are (or are about to be) available, then arms the finish event.
func (r *Runner) scheduleFinish(jr *jobRun, rt *runningTask) {
	now := r.eng.Now()
	c := jr.costs[rt.act.Task.Stage]
	jitter := 1 + r.cfg.ProcessJitter*(2*r.eng.Rand().Float64()-1)
	rt.process = c.process * jitter * rt.slow
	rt.read = c.scan + c.read
	rt.write = c.write

	effStart := rt.started + sim.FromSeconds(rt.launch)
	if now > effStart {
		effStart = now
	}
	rt.dataArrive = r.dataArrive(jr, rt)
	r.armFinish(jr, rt, effStart+sim.FromSeconds(rt.read+rt.process+rt.write))
}

// armFinish schedules (or reschedules) a task's completion at finishAt.
// Bumping the generation counter invalidates any previously armed finish,
// so straggler injection can stretch a task that is already counting down.
func (r *Runner) armFinish(jr *jobRun, rt *runningTask, finishAt sim.Time) {
	rt.gen++
	rt.armed = true
	rt.finishAt = finishAt
	gen := rt.gen
	attempt := rt.act.Attempt
	ref := rt.act.Task

	r.eng.At(finishAt, func() {
		cur, ok := r.tasks[ref]
		if !ok || cur.act.Attempt != attempt || cur.gen != gen {
			return // aborted or superseded meanwhile
		}
		delete(r.tasks, ref)
		r.series.Delta(r.eng.Now().Seconds(), -1)
		jr.res.Samples = append(jr.res.Samples, TaskSample{
			Ref:        ref,
			Start:      cur.started,
			DataArrive: cur.dataArrive,
			Finish:     r.eng.Now(),
			Attempt:    attempt,
		})
		r.recordPhases(jr, ref.Stage, cur.launch, cur.read, cur.process, cur.write)
		// The driver owns the finish event — only it knows the phase
		// breakdown — while the controller records everything else.
		r.ctrl.Obs().TaskFinished(ref.Job, ref.Stage, ref.Index, attempt,
			int(cur.act.Executor), cur.launch, cur.read, cur.process, cur.write)
		r.ctrl.TaskFinished(ref, attempt)
		r.handleActions()
		r.onStageProgress(jr, ref.Stage)
	})
}

// dataArrive estimates when the task's input data became available: for
// pipeline edges the producer starts streaming shortly after it launches;
// for barrier edges the data is complete only when the producer stage
// finishes.
func (r *Runner) dataArrive(jr *jobRun, rt *runningTask) sim.Time {
	arrive := rt.started
	const streamDelay = 100 * sim.Millisecond
	for _, e := range jr.inEdges[rt.act.Task.Stage] {
		var t sim.Time
		if e.Mode == dag.Pipeline {
			fs, ok := jr.firstStart[e.From]
			if !ok {
				fs = r.eng.Now()
			}
			t = fs + streamDelay
		} else {
			d, ok := jr.doneAt[e.From]
			if !ok {
				d = r.eng.Now()
			}
			t = d
		}
		if t > arrive {
			arrive = t
		}
	}
	return arrive
}

func (r *Runner) recordPhases(jr *jobRun, stage string, launch, read, process, write float64) {
	p := jr.res.Phases[stage]
	if p == nil {
		p = &StagePhases{}
		jr.res.Phases[stage] = p
	}
	if launch > p.Launch {
		p.Launch = launch
	}
	if read > p.ShuffleRead {
		p.ShuffleRead = read
	}
	if process > p.Process {
		p.Process = process
	}
	if write > p.ShuffleWrite {
		p.ShuffleWrite = write
	}
}

// onStageProgress checks whether a stage just completed and unparks the
// tasks waiting on it.
func (r *Runner) onStageProgress(jr *jobRun, stage string) {
	if !r.ctrl.StageComplete(jr.job.ID, stage) {
		return
	}
	jr.doneAt[stage] = r.eng.Now()
	key := parkKey(jr.job.ID, stage)
	waiters := r.parked[key]
	delete(r.parked, key)
	for _, ref := range waiters {
		rt, ok := r.tasks[ref]
		if !ok || !rt.unmet[stage] {
			continue // aborted or already rescheduled
		}
		delete(rt.unmet, stage)
		if len(rt.unmet) == 0 {
			r.scheduleFinish(jr, rt)
		}
	}
}

// InjectTaskFailureAt injects a failure into a task of the named stage at
// the given virtual time, modeling the paper's Fig. 14 experiment. If a
// task of the stage is running, it crashes (detected after the executor
// error-report delay); if the stage already finished, the failure destroys
// a completed task's buffered output instead (detected via heartbeat).
func (r *Runner) InjectTaskFailureAt(at sim.Time, job, stage string, kind core.FailureKind) {
	r.eng.At(at, func() {
		jr := r.jobs[job]
		if jr == nil {
			return
		}
		st := jr.job.Stage(stage)
		if st == nil {
			return
		}
		for i := 0; i < st.Tasks; i++ {
			ref := core.TaskRef{Job: job, Stage: stage, Index: i}
			if _, attempt, ok := r.ctrl.RunningTask(ref); ok {
				delay := sim.FromSeconds(core.TaskErrorReportDelay.Seconds())
				r.eng.After(delay, func() {
					if rt, live := r.tasks[ref]; live && rt.act.Attempt == attempt {
						delete(r.tasks, ref)
						r.series.Delta(r.eng.Now().Seconds(), -1)
					}
					r.ctrl.TaskFailed(ref, attempt, kind)
					r.handleActions()
				})
				return
			}
		}
		// No running task: lose the first completed task's output.
		ref := core.TaskRef{Job: job, Stage: stage, Index: 0}
		delay := sim.FromSeconds(core.SelfReportDelay.Seconds())
		r.eng.After(delay, func() {
			r.ctrl.TaskOutputLost(ref)
			r.handleActions()
		})
	})
}

// InjectMachineFailureAt crashes a machine at the given time; detection
// happens one heartbeat interval later (Section IV-A).
func (r *Runner) InjectMachineFailureAt(at sim.Time, id cluster.MachineID) {
	r.eng.At(at, func() {
		delay := sim.FromSeconds(core.MachineFailureDetectionDelay(r.cl.NumMachines()).Seconds())
		r.eng.After(delay, func() {
			r.ctrl.MachineFailed(id)
			r.handleActions()
		})
	})
}

// Run executes the simulation to quiescence and returns the results.
func (r *Runner) Run() *Results {
	r.results.Makespan = r.eng.Run()
	r.results.ExecSeries = r.series
	return r.results
}
