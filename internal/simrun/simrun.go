// Package simrun binds the Swift controller (package core) to the
// discrete-event cluster simulator (packages sim and cluster): it
// interprets controller actions under the calibrated cost model, feeds
// completion and failure events back, and records the measurements the
// paper's evaluation reports — job latencies, per-task idle samples
// (IdleRatio, Fig. 3), per-stage phase breakdowns (Fig. 9b) and the
// running-executor time series (Fig. 10).
package simrun

import (
	"sort"

	"swift/internal/cluster"
	"swift/internal/core"
	"swift/internal/dag"
	"swift/internal/metrics"
	"swift/internal/shuffle"
	"swift/internal/sim"
)

// Config assembles a simulated Swift (or baseline) deployment.
type Config struct {
	Cluster cluster.Config
	Options core.Options
	Seed    int64
	// ProcessJitter is the ± fraction applied to per-task processing
	// time (default 0.05).
	ProcessJitter float64
	// ReadmitDelay, when positive, re-admits a read-only (drained) machine
	// after that healthy observation window — the paper's health monitor
	// restoring a machine whose failure burst has passed. Zero leaves
	// drained machines out of the pool forever (the pre-hardening
	// behaviour, which starves the cluster under sustained fault storms).
	ReadmitDelay sim.Duration
	// SpillFrac is the expected fraction of each cache-backed edge's bytes
	// served from the Cache Workers' disk tier (shuffle.CostInput.
	// SpilledFrac); zero models an all-memory fleet, the v1 behaviour.
	SpillFrac float64
	// PushMerge enables push-based partition merging for Remote edges in
	// the cost model (shuffle.CostInput.PushMerge).
	PushMerge bool
}

// TaskSample is the per-task timing record behind IdleRatio.
type TaskSample struct {
	Ref        core.TaskRef
	Start      sim.Time // plan arrival at the executor
	DataArrive sim.Time // input data availability
	Finish     sim.Time
	Attempt    int
}

// IdleRatio is (T_data_arrive − T_task_start) / (T_task_finish −
// T_task_start), clamped to [0, 1].
func (s TaskSample) IdleRatio() float64 {
	total := (s.Finish - s.Start).Seconds()
	if total <= 0 {
		return 0
	}
	idle := (s.DataArrive - s.Start).Seconds()
	if idle < 0 {
		idle = 0
	}
	r := idle / total
	if r > 1 {
		r = 1
	}
	return r
}

// StagePhases is the Fig. 9b decomposition for a stage's critical task.
type StagePhases struct {
	Launch       float64
	ShuffleRead  float64 // table scanning for scan stages
	Process      float64
	ShuffleWrite float64 // adhoc sinking for sink stages
}

// JobResult summarises one job's run.
type JobResult struct {
	ID string
	// Tenant is the job's normalized tenant label (core.DefaultTenant for
	// unlabelled jobs), so per-tenant reports need no job-table lookups.
	Tenant    string
	Submit    sim.Time
	Finish    sim.Time
	Completed bool
	Failed    bool
	Restarts  int
	Resends   int
	Samples   []TaskSample
	Phases    map[string]*StagePhases
}

// Duration returns the job's end-to-end latency in seconds.
func (j *JobResult) Duration() float64 { return (j.Finish - j.Submit).Seconds() }

// Results aggregates a whole simulation run.
type Results struct {
	Jobs       map[string]*JobResult
	ExecSeries *metrics.Series // running executors over time
	Makespan   sim.Time
}

// SortedJobs returns the job results ordered by job ID, so callers iterate
// the Jobs map deterministically.
func (r *Results) SortedJobs() []*JobResult {
	ids := make([]string, 0, len(r.Jobs))
	for id := range r.Jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*JobResult, 0, len(ids))
	for _, id := range ids {
		out = append(out, r.Jobs[id])
	}
	return out
}

// JobDurations returns the latencies of completed jobs in seconds.
func (r *Results) JobDurations() []float64 {
	var out []float64
	for _, j := range r.SortedJobs() {
		if j.Completed {
			out = append(out, j.Duration())
		}
	}
	return out
}

// stageCost holds the precomputed per-task cost components of one stage.
type stageCost struct {
	scan    float64
	read    float64
	write   float64
	process float64
}

type jobRun struct {
	job        *dag.Job
	res        *JobResult
	costs      map[string]*stageCost
	costsReady bool
	doneAt     map[string]sim.Time // stage completion times
	firstStart map[string]sim.Time
	launched   map[string]map[cluster.ExecutorID]bool // cold-launch memo
	inEdges    map[string][]*dag.Edge                 // cached per-stage in-edges
}

type runningTask struct {
	act     core.ActStartTask
	started sim.Time
	launch  float64
	unmet   map[string]bool // producer stages not yet complete
	// gen versions the armed finish event: fault injection (straggler
	// slowdowns) supersedes a scheduled completion by bumping gen and
	// re-arming, and the stale closure no-ops.
	gen      int
	armed    bool
	finishAt sim.Time
	// slow accumulates straggler slowdown factors applied before the
	// finish time is computed (parked tasks).
	slow float64
	// Cost components and data-arrival estimate captured when the finish
	// was armed, so a re-armed finish records the same sample breakdown.
	read, process, write float64
	dataArrive           sim.Time
}

// Runner executes jobs on the simulated cluster.
type Runner struct {
	cfg     Config
	eng     *sim.Engine
	cl      *cluster.Cluster
	ctrl    *core.Controller
	jobs    map[string]*jobRun
	tasks   map[core.TaskRef]*runningTask
	parked  map[string][]core.TaskRef // producer stage -> waiting tasks
	series  *metrics.Series
	results *Results
	// down marks machines that have crashed but whose failure the
	// controller has not yet detected: their tasks are dead and new
	// launches on them are black holes until the heartbeat delay elapses.
	down map[cluster.MachineID]bool
	// onAction observes every controller action as the driver interprets
	// it; afterEvent fires once the controller has processed an event and
	// its actions are drained (the chaos auditor's invariant checkpoint).
	onAction   func(sim.Time, core.Action)
	afterEvent func(sim.Time)
}

// New builds a runner. The zero Config is invalid; fill Cluster at least.
func New(cfg Config) *Runner {
	if cfg.ProcessJitter <= 0 {
		cfg.ProcessJitter = 0.05
	}
	cl := cluster.New(cfg.Cluster)
	r := &Runner{
		cfg:     cfg,
		eng:     sim.NewEngine(cfg.Seed),
		cl:      cl,
		ctrl:    core.NewController(cl, cfg.Options),
		jobs:    make(map[string]*jobRun),
		tasks:   make(map[core.TaskRef]*runningTask),
		parked:  make(map[string][]core.TaskRef),
		down:    make(map[cluster.MachineID]bool),
		series:  metrics.NewSeries(),
		results: &Results{Jobs: make(map[string]*JobResult)},
	}
	// Observability events are stamped with the engine's virtual clock, so
	// the trace lives in the same timeline as the results (nil-safe).
	cfg.Options.Obs.SetClock(r.eng.Now)
	return r
}

// Engine exposes the simulation engine (for custom event injection).
func (r *Runner) Engine() *sim.Engine { return r.eng }

// Controller exposes the Swift Admin under simulation.
func (r *Runner) Controller() *core.Controller { return r.ctrl }

// Cluster exposes the simulated cluster.
func (r *Runner) Cluster() *cluster.Cluster { return r.cl }

// SubmitAt schedules a job submission at the given virtual time.
func (r *Runner) SubmitAt(at sim.Time, job *dag.Job) {
	r.eng.At(at, func() { _ = r.Submit(job) })
}

// Submit admits a job at the current virtual time, synchronously. It is
// the hook admission-control drivers (chaos soaks, flow experiments) use
// to submit work at the moment the flow controller releases it, rather
// than at a pre-scheduled instant.
func (r *Runner) Submit(job *dag.Job) error {
	jr := &jobRun{
		job: job,
		res: &JobResult{
			ID:     job.ID,
			Tenant: core.TenantName(job),
			Submit: r.eng.Now(),
			Phases: make(map[string]*StagePhases),
		},
		costs:      r.precompute(job),
		doneAt:     make(map[string]sim.Time),
		firstStart: make(map[string]sim.Time),
		launched:   make(map[string]map[cluster.ExecutorID]bool),
		inEdges:    make(map[string][]*dag.Edge, job.NumStages()),
	}
	for _, name := range job.StageNames() {
		jr.inEdges[name] = job.In(name)
	}
	r.jobs[job.ID] = jr
	r.results.Jobs[job.ID] = jr.res
	if err := r.ctrl.SubmitJob(job); err != nil {
		jr.res.Failed = true
		jr.res.Finish = r.eng.Now()
		return err
	}
	r.edgeCosts(jr)
	r.handleActions()
	return nil
}

// precompute derives the scan and processing cost components of every
// stage. Shuffle read/write components depend on the edge modes the
// controller selects at admission, so edgeCosts fills them in right after
// SubmitJob succeeds.
func (r *Runner) precompute(job *dag.Job) map[string]*stageCost {
	model := r.cl.Model()
	costs := make(map[string]*stageCost, job.NumStages())
	for _, s := range job.Stages() {
		costs[s.Name] = &stageCost{
			scan:    model.ScanTime(s.Cost.ScanBytes, s.Tasks),
			process: s.Cost.ProcessSecondsPerTask,
		}
	}
	return costs
}

// edgeCosts fills the read/write components of a job's stage costs once the
// controller knows the edge modes (i.e., after SubmitJob).
func (r *Runner) edgeCosts(jr *jobRun) {
	if jr.costsReady {
		return
	}
	jr.costsReady = true
	model := r.cl.Model()
	est := func(tasks int) int { return model.Spread(tasks, r.cl.NumMachines()) }
	for _, e := range jr.job.Edges() {
		mode := r.ctrl.EdgeMode(jr.job.ID, e.From, e.To)
		in := shuffle.CostInput{
			M:                jr.job.Stage(e.From).Tasks,
			N:                jr.job.Stage(e.To).Tasks,
			ProducerMachines: est(jr.job.Stage(e.From).Tasks),
			ConsumerMachines: est(jr.job.Stage(e.To).Tasks),
			Bytes:            e.Bytes,
			ClusterMachines:  r.cl.NumMachines(),
			ActiveConns:      0,
			Model:            model,
			SpilledFrac:      r.cfg.SpillFrac,
			Replicas:         r.cfg.Options.ShuffleReplicas,
			PushMerge:        r.cfg.PushMerge,
		}
		b := shuffle.Cost(mode, in)
		jr.costs[e.From].write += b.Write()
		jr.costs[e.To].read += b.Read()
	}
}
