package simrun

import (
	"testing"

	"swift/internal/cluster"
	"swift/internal/core"
	"swift/internal/dag"
	"swift/internal/metrics"
	"swift/internal/sim"
)

func testCluster() cluster.Config {
	return cluster.Config{Machines: 10, ExecutorsPerMachine: 10, Model: cluster.DefaultModel()}
}

// twoPhase builds a scan -> sort -> reduce job with a barrier in the middle
// (two graphlets) and realistic cost annotations.
func twoPhase(id string, mapTasks, redTasks int) *dag.Job {
	return dag.NewBuilder(id).
		StageOpt(&dag.Stage{
			Name: "map", Tasks: mapTasks, Idempotent: true,
			Operators: []dag.Operator{dag.Op(dag.OpTableScan), dag.Op(dag.OpMergeSort), dag.Op(dag.OpShuffleWrite)},
			Cost:      dag.Cost{ScanBytes: int64(mapTasks) * 200 << 20, ProcessSecondsPerTask: 2},
		}).
		StageOpt(&dag.Stage{
			Name: "reduce", Tasks: redTasks, Idempotent: true,
			Operators: []dag.Operator{dag.Op(dag.OpShuffleRead), dag.Op(dag.OpAdhocSink)},
			Cost:      dag.Cost{ProcessSecondsPerTask: 1.5},
		}).
		Barrier("map", "reduce", int64(mapTasks)*100<<20).
		MustBuild()
}

// pipelined builds a two-stage single-graphlet job.
func pipelined(id string, aTasks, bTasks int) *dag.Job {
	return dag.NewBuilder(id).
		StageOpt(&dag.Stage{
			Name: "scan", Tasks: aTasks, Idempotent: true,
			Operators: []dag.Operator{dag.Op(dag.OpTableScan), dag.Op(dag.OpShuffleWrite)},
			Cost:      dag.Cost{ScanBytes: int64(aTasks) * 100 << 20, ProcessSecondsPerTask: 1},
		}).
		StageOpt(&dag.Stage{
			Name: "agg", Tasks: bTasks, Idempotent: true,
			Operators: []dag.Operator{dag.Op(dag.OpShuffleRead), dag.Op(dag.OpHashAggregate)},
			Cost:      dag.Cost{ProcessSecondsPerTask: 0.5},
		}).
		Pipeline("scan", "agg", int64(aTasks)*50<<20).
		MustBuild()
}

func swiftRunner(seed int64) *Runner {
	return New(Config{Cluster: testCluster(), Options: core.DefaultOptions(), Seed: seed})
}

func TestPipelineJobRuns(t *testing.T) {
	r := swiftRunner(1)
	job := pipelined("p", 8, 4)
	r.SubmitAt(0, job)
	res := r.Run()
	jr := res.Jobs["p"]
	if jr == nil || !jr.Completed || jr.Failed {
		t.Fatalf("job result: %+v", jr)
	}
	if jr.Duration() <= 0 {
		t.Error("non-positive duration")
	}
	if len(jr.Samples) != 12 {
		t.Errorf("samples = %d, want 12", len(jr.Samples))
	}
	if got := res.ExecSeries.Max(); got != 12 {
		t.Errorf("peak executors = %g, want 12 (single gang)", got)
	}
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
	if r.Cluster().BusyExecutors() != 0 {
		t.Error("executors leaked")
	}
	if len(res.JobDurations()) != 1 {
		t.Error("JobDurations wrong")
	}
	// Phase records exist for both stages.
	if jr.Phases["scan"] == nil || jr.Phases["agg"] == nil {
		t.Fatal("missing phases")
	}
	if jr.Phases["scan"].ShuffleRead <= 0 {
		t.Error("scan stage should have a scan (read) phase")
	}
	if jr.Phases["scan"].ShuffleWrite <= 0 || jr.Phases["agg"].ShuffleRead <= 0 {
		t.Error("shuffle phases missing")
	}
}

func TestBarrierJobGraphletOrdering(t *testing.T) {
	r := swiftRunner(2)
	r.SubmitAt(0, twoPhase("b", 10, 5))
	res := r.Run()
	jr := res.Jobs["b"]
	if !jr.Completed {
		t.Fatal("job did not complete")
	}
	// Reduce tasks must start after every map task finished.
	var lastMapFinish, firstReduceStart sim.Time
	for _, s := range jr.Samples {
		if s.Ref.Stage == "map" && s.Finish > lastMapFinish {
			lastMapFinish = s.Finish
		}
	}
	firstReduceStart = jr.Finish
	for _, s := range jr.Samples {
		if s.Ref.Stage == "reduce" && s.Start < firstReduceStart {
			firstReduceStart = s.Start
		}
	}
	if firstReduceStart < lastMapFinish {
		t.Errorf("reduce started at %v before maps finished at %v", firstReduceStart, lastMapFinish)
	}
}

func TestGraphletIdleBeatsWholeJobGang(t *testing.T) {
	job := func() *dag.Job { return twoPhase("j", 20, 10) }

	swift := swiftRunner(3)
	swift.SubmitAt(0, job())
	swiftRes := swift.Run()

	gangOpts := core.DefaultOptions()
	gangOpts.Partition = core.WholeJobPartition
	gangOpts.StrictGang = true
	gang := New(Config{Cluster: testCluster(), Options: gangOpts, Seed: 3})
	gang.SubmitAt(0, job())
	gangRes := gang.Run()

	idle := func(res *Results) float64 {
		var xs []float64
		for _, s := range res.Jobs["j"].Samples {
			xs = append(xs, s.IdleRatio())
		}
		return metrics.Mean(xs)
	}
	si, gi := idle(swiftRes), idle(gangRes)
	if si >= gi {
		t.Errorf("swift idle ratio %.3f not below gang %.3f", si, gi)
	}
	if gi < 0.1 {
		t.Errorf("gang idle ratio suspiciously low: %.3f", gi)
	}
}

func TestColdLaunchSlowsJob(t *testing.T) {
	sparkOpts := core.DefaultOptions()
	sparkOpts.Partition = core.PerStagePartition
	sparkOpts.Shuffle = core.DiskShuffle()
	sparkOpts.ColdLaunch = true

	warm := swiftRunner(4)
	warm.SubmitAt(0, twoPhase("j", 10, 5))
	wres := warm.Run()

	cold := New(Config{Cluster: testCluster(), Options: sparkOpts, Seed: 4})
	cold.SubmitAt(0, twoPhase("j", 10, 5))
	cres := cold.Run()

	if !wres.Jobs["j"].Completed || !cres.Jobs["j"].Completed {
		t.Fatal("jobs did not complete")
	}
	if cres.Jobs["j"].Duration() <= wres.Jobs["j"].Duration() {
		t.Errorf("cold+disk %.2fs not slower than swift %.2fs",
			cres.Jobs["j"].Duration(), wres.Jobs["j"].Duration())
	}
}

func TestTaskFailureRecoveryDelaysButCompletes(t *testing.T) {
	clean := swiftRunner(5)
	clean.SubmitAt(0, twoPhase("j", 10, 5))
	cleanDur := clean.Run().Jobs["j"].Duration()

	faulty := swiftRunner(5)
	faulty.SubmitAt(0, twoPhase("j", 10, 5))
	faulty.InjectTaskFailureAt(sim.FromSeconds(cleanDur*0.5), "j", "reduce", core.FailCrash)
	fres := faulty.Run()
	if !fres.Jobs["j"].Completed {
		t.Fatal("job did not survive failure")
	}
	if fres.Jobs["j"].Duration() < cleanDur {
		t.Errorf("failure run %.2fs faster than clean %.2fs", fres.Jobs["j"].Duration(), cleanDur)
	}
}

func TestFineGrainedBeatsJobRestart(t *testing.T) {
	run := func(policy core.RecoveryPolicy) float64 {
		opts := core.DefaultOptions()
		opts.Recovery = policy
		r := New(Config{Cluster: testCluster(), Options: opts, Seed: 6})
		r.SubmitAt(0, twoPhase("j", 10, 5))
		// Inject mid-reduce (the clean run takes ~5.4s with maps
		// finishing ~3.6s) to maximise restart waste.
		r.InjectTaskFailureAt(sim.FromSeconds(4.5), "j", "reduce", core.FailCrash)
		res := r.Run()
		if !res.Jobs["j"].Completed {
			t.Fatal("job did not complete")
		}
		return res.Jobs["j"].Duration()
	}
	fine := run(core.FineGrained)
	restart := run(core.JobRestart)
	if fine >= restart {
		t.Errorf("fine-grained %.2fs not faster than restart %.2fs", fine, restart)
	}
}

func TestMachineFailureSurvived(t *testing.T) {
	r := swiftRunner(7)
	r.SubmitAt(0, twoPhase("j", 10, 5))
	r.InjectMachineFailureAt(sim.FromSeconds(2), 0)
	res := r.Run()
	if !res.Jobs["j"].Completed {
		t.Fatal("job did not survive machine failure")
	}
	if r.Cluster().Machine(0).Health != cluster.Failed {
		t.Error("machine not failed")
	}
}

func TestFailureOnCompletedStageOutputLoss(t *testing.T) {
	r := swiftRunner(8)
	r.SubmitAt(0, twoPhase("j", 4, 2))
	// Inject into "map" long after it finished but (likely) while reduce
	// still runs; the run must still complete either way.
	r.InjectTaskFailureAt(sim.FromSeconds(6), "j", "map", core.FailCrash)
	res := r.Run()
	if !res.Jobs["j"].Completed {
		t.Fatal("job did not complete")
	}
}

func TestAppErrorFailsJob(t *testing.T) {
	r := swiftRunner(9)
	r.SubmitAt(0, twoPhase("j", 4, 2))
	r.InjectTaskFailureAt(sim.FromSeconds(1), "j", "map", core.FailAppError)
	res := r.Run()
	jr := res.Jobs["j"]
	if jr.Completed || !jr.Failed {
		t.Fatalf("app error should fail the job: %+v", jr)
	}
	if r.Cluster().BusyExecutors() != 0 {
		t.Error("executors leaked after failure")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, int64) {
		r := swiftRunner(1234)
		r.SubmitAt(0, twoPhase("a", 8, 4))
		r.SubmitAt(sim.FromSeconds(1), pipelined("b", 6, 3))
		res := r.Run()
		return res.Jobs["a"].Duration() + res.Jobs["b"].Duration(), int64(res.Makespan)
	}
	d1, m1 := run()
	d2, m2 := run()
	if d1 != d2 || m1 != m2 {
		t.Errorf("non-deterministic: (%v,%v) vs (%v,%v)", d1, m1, d2, m2)
	}
}

func TestMultiJobSharing(t *testing.T) {
	r := swiftRunner(10)
	for i := 0; i < 5; i++ {
		r.SubmitAt(sim.FromSeconds(float64(i)*0.5), pipelined(jobName(i), 10, 5))
	}
	res := r.Run()
	for i := 0; i < 5; i++ {
		if !res.Jobs[jobName(i)].Completed {
			t.Errorf("job %d incomplete", i)
		}
	}
	if got := len(res.JobDurations()); got != 5 {
		t.Errorf("completed jobs = %d", got)
	}
}

func jobName(i int) string { return string(rune('a'+i)) + "-job" }

func TestIdleRatioClamps(t *testing.T) {
	s := TaskSample{Start: 100, DataArrive: 50, Finish: 200}
	if s.IdleRatio() != 0 {
		t.Error("negative idle not clamped")
	}
	s = TaskSample{Start: 100, DataArrive: 500, Finish: 200}
	if s.IdleRatio() != 1 {
		t.Error("over-1 idle not clamped")
	}
	s = TaskSample{Start: 100, DataArrive: 100, Finish: 100}
	if s.IdleRatio() != 0 {
		t.Error("zero-duration sample not handled")
	}
}
