// Package shuffle implements Swift's adaptive memory-based in-network
// shuffling (Section III-B): the three shuffle modes (Direct, Local via
// Cache Workers, Remote), their TCP-connection and memory-copy arithmetic,
// runtime mode selection by shuffle edge size, the Cache Worker memory
// manager with LRU spill, and the composed cost model used by the
// simulator. The disk-based mode used by the Spark/Bubble baselines lives
// here too so every engine shares one shuffle vocabulary.
package shuffle

// Mode is a data shuffling scheme.
type Mode int

const (
	// Direct sends shuffle data straight from producer tasks to consumer
	// tasks: fewest memory copies, M×N connections, incast-prone.
	Direct Mode = iota
	// Local routes both sides through the machine-local Cache Workers,
	// which maintain a long-lived mesh: fewest connections
	// (M + N + C(Y,2)), two extra memory copies.
	Local
	// Remote writes to the producer-side Cache Worker and lets consumer
	// tasks pull directly: M + N×Y connections, one extra copy.
	Remote
	// Disk is the file-based shuffle of Dryad/Spark/Bubble Execution:
	// write to local disks, read back over the network. Not used by
	// Swift itself; provided for the baselines.
	Disk
)

// String renders the mode name as used in the paper.
func (m Mode) String() string {
	switch m {
	case Direct:
		return "Direct"
	case Local:
		return "Local"
	case Remote:
		return "Remote"
	case Disk:
		return "Disk"
	}
	return "Invalid"
}

// Thresholds configures adaptive selection. The paper's production values
// are 10,000 and 90,000 shuffle edges. Both boundaries are half-open:
// [0, SmallMax) selects Direct, [SmallMax, LargeMin) Remote, and
// [LargeMin, ∞) Local, so each threshold value belongs to the bucket it
// opens. (An earlier version used `> LargeMin` on the upper boundary,
// silently classifying an edge of exactly LargeMin as middle-sized.)
type Thresholds struct {
	SmallMax int // edge sizes in [0, SmallMax) use Direct
	LargeMin int // edge sizes in [LargeMin, ∞) use Local; between: Remote
}

// DefaultThresholds returns the production thresholds from the paper.
func DefaultThresholds() Thresholds { return Thresholds{SmallMax: 10000, LargeMin: 90000} }

// Select returns the shuffle mode for an edge with the given shuffle size
// (number of producer-task × consumer-task links). "Direct Shuffle is used
// for small-sized shuffle, Local Shuffle for huge-sized shuffle, and Remote
// Shuffle for middle-sized shuffle."
func (t Thresholds) Select(edgeSize int) Mode {
	switch {
	case edgeSize < t.SmallMax:
		return Direct
	case edgeSize >= t.LargeMin:
		return Local
	default:
		return Remote
	}
}

// SizeClass buckets an edge size the way Fig. 12 labels its job categories.
type SizeClass int

// Size classes for reporting.
const (
	SmallShuffle SizeClass = iota
	MediumShuffle
	LargeShuffle
)

// String renders the class label.
func (c SizeClass) String() string {
	switch c {
	case SmallShuffle:
		return "small"
	case MediumShuffle:
		return "medium"
	case LargeShuffle:
		return "large"
	}
	return "invalid"
}

// Class returns the size class of an edge size under the thresholds, with
// the same half-open boundary semantics as Select.
func (t Thresholds) Class(edgeSize int) SizeClass {
	switch {
	case edgeSize < t.SmallMax:
		return SmallShuffle
	case edgeSize >= t.LargeMin:
		return LargeShuffle
	default:
		return MediumShuffle
	}
}

// Connections returns the worst-case TCP connection count each mode needs
// for a shuffle of m producers and n consumers spread over y machines
// (Section III-B's formulas: M×N, M+N+C(Y,2), M+N×Y).
func Connections(mode Mode, m, n, y int) int {
	if m <= 0 || n <= 0 {
		return 0
	}
	if y <= 0 {
		y = 1
	}
	switch mode {
	case Direct:
		return m * n
	case Local:
		return m + n + y*(y-1)/2
	case Remote:
		return m + n*y
	case Disk:
		// File-based shuffle still opens consumer->producer-machine
		// fetch connections, bounded by machines on the producer side.
		return n * min(m, y)
	}
	return 0
}

// ExtraCopies returns the additional memory copies a mode introduces over
// Direct Shuffle ("compared with Direct Shuffle, it introduces two
// additional times of memory copy"; Remote has "modest" — one).
func ExtraCopies(mode Mode) int {
	switch mode {
	case Local:
		return 2
	case Remote:
		return 1
	default:
		return 0
	}
}

// PerTaskConns returns the connections a single producer or consumer task
// must itself establish at shuffle time (long-lived Cache Worker mesh
// connections are pre-established and excluded).
func PerTaskConns(mode Mode, m, n, y int) (producer, consumer int) {
	if y <= 0 {
		y = 1
	}
	switch mode {
	case Direct:
		return n, m
	case Local:
		return 1, 1 // each side talks only to its local Cache Worker
	case Remote:
		return 1, min(m, y) // consumers pull from producer-side Cache Workers
	case Disk:
		return 0, min(m, y) // producers write local files; consumers fetch
	}
	return 0, 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
