package shuffle

import "testing"

// TestSelectThresholds pins the half-open boundary semantics over the
// paper's 10,000/90,000 production values: [0, SmallMax) → Direct,
// [SmallMax, LargeMin) → Remote, [LargeMin, ∞) → Local. The 90,000 row
// fails against the old asymmetric `> LargeMin` comparison, which silently
// classified an edge of exactly LargeMin as middle-sized.
func TestSelectThresholds(t *testing.T) {
	th := DefaultThresholds()
	cases := []struct {
		size int
		want Mode
	}{
		{1, Direct},
		{9999, Direct},
		{10000, Remote}, // boundary: SmallMax opens the Remote bucket
		{50000, Remote},
		{89999, Remote},
		{90000, Local}, // boundary: LargeMin opens the Local bucket
		{90001, Local},
		{2250000, Local}, // 1500x1500 Terasort
	}
	for _, c := range cases {
		if got := th.Select(c.size); got != c.want {
			t.Errorf("Select(%d) = %v, want %v", c.size, got, c.want)
		}
	}
}

// TestSizeClass checks Class agrees with Select on both boundaries.
func TestSizeClass(t *testing.T) {
	th := DefaultThresholds()
	if th.Class(100) != SmallShuffle || th.Class(20000) != MediumShuffle || th.Class(100000) != LargeShuffle {
		t.Error("classes wrong")
	}
	if th.Class(9999) != SmallShuffle || th.Class(10000) != MediumShuffle {
		t.Error("SmallMax boundary not half-open")
	}
	if th.Class(89999) != MediumShuffle || th.Class(90000) != LargeShuffle {
		t.Error("LargeMin boundary not half-open")
	}
	if SmallShuffle.String() != "small" || MediumShuffle.String() != "medium" || LargeShuffle.String() != "large" {
		t.Error("class strings wrong")
	}
	if SizeClass(99).String() != "invalid" {
		t.Error("invalid class string")
	}
}

func TestConnectionsFormulas(t *testing.T) {
	// Section III-B: M×N, M+N+C(Y,2), M+N×Y.
	m, n, y := 100, 200, 10
	if got := Connections(Direct, m, n, y); got != 20000 {
		t.Errorf("Direct conns = %d", got)
	}
	if got := Connections(Local, m, n, y); got != 100+200+45 {
		t.Errorf("Local conns = %d", got)
	}
	if got := Connections(Remote, m, n, y); got != 100+200*10 {
		t.Errorf("Remote conns = %d", got)
	}
	if got := Connections(Direct, 0, 5, 1); got != 0 {
		t.Errorf("degenerate conns = %d", got)
	}
	if got := Connections(Local, 5, 5, 0); got != 10 {
		t.Errorf("zero-machine conns = %d", got)
	}
	// Ordering claimed by the paper for realistic shapes (Y << M, N):
	// Local < Remote < Direct.
	if !(Connections(Local, m, n, y) < Connections(Remote, m, n, y) &&
		Connections(Remote, m, n, y) < Connections(Direct, m, n, y)) {
		t.Error("connection-count ordering violated")
	}
}

func TestExtraCopies(t *testing.T) {
	if ExtraCopies(Direct) != 0 || ExtraCopies(Remote) != 1 || ExtraCopies(Local) != 2 || ExtraCopies(Disk) != 0 {
		t.Error("copy counts wrong")
	}
}

func TestPerTaskConns(t *testing.T) {
	p, c := PerTaskConns(Direct, 100, 200, 10)
	if p != 200 || c != 100 {
		t.Errorf("Direct per-task = %d,%d", p, c)
	}
	p, c = PerTaskConns(Local, 100, 200, 10)
	if p != 1 || c != 1 {
		t.Errorf("Local per-task = %d,%d", p, c)
	}
	p, c = PerTaskConns(Remote, 100, 200, 10)
	if p != 1 || c != 10 {
		t.Errorf("Remote per-task = %d,%d", p, c)
	}
	p, c = PerTaskConns(Disk, 100, 200, 10)
	if p != 0 || c != 10 {
		t.Errorf("Disk per-task = %d,%d", p, c)
	}
}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{Direct: "Direct", Local: "Local", Remote: "Remote", Disk: "Disk", Mode(9): "Invalid"}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
}
