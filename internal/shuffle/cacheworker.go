package shuffle

import (
	"container/list"
	"fmt"
	"sort"
)

// CacheWorker is the per-machine in-memory shuffle store of Section III-B.
// Producer tasks write shuffle segments into it; consumer tasks (local or
// remote) read them; segments are reference counted and freed once every
// consumer has taken its share ("delete them to release memory after they
// have been consumed by all successor tasks"). When memory runs short —
// "only of the probability less than 1% in our production clusters" — the
// least recently used segments are swapped to disk in large chunks and
// transparently loaded back on access.
//
// The same structure backs both runtimes: the simulator stores sizes only,
// the real engine stores payload bytes.
type CacheWorker struct {
	capacity int64
	used     int64 // in-memory bytes (spilled segments excluded)
	lru      *list.List
	segs     map[string]*segment

	stats CacheStats

	// sink, when set, receives live counter increments mirroring the
	// CacheStats fields (prefix + "puts", "spill_bytes", ...). It exists so
	// an observability registry can aggregate across workers without this
	// package knowing about it (the obs.Registry satisfies StatsSink
	// structurally).
	sink       StatsSink
	sinkPrefix string
}

// StatsSink receives named counter increments from a Cache Worker.
type StatsSink interface {
	Count(name string, delta int64)
}

type segment struct {
	key     string
	size    int64
	data    [][]byte // optional payload (real engine)
	refs    int      // remaining consumers
	spilled bool
	elem    *list.Element
}

// CacheStats counts the memory-manager activity a run produced.
type CacheStats struct {
	Puts        int
	Gets        int
	Misses      int
	SpillEvents int
	SpillBytes  int64 // bytes swapped out to disk
	LoadBytes   int64 // spilled bytes loaded back on access
	Freed       int   // segments released after full consumption
	// Drops counts segments removed unconditionally by Drop (failure
	// recovery discarding a failed producer's partial output).
	Drops int
	// LostSpilledBytes is the portion of FailAll losses that lived on the
	// disk tier — the swap file dies with its owner — as opposed to in
	// memory, so recovery cost models can tell the tiers apart.
	LostSpilledBytes int64
	// DiskReads/DiskReadBytes count accesses served directly from the disk
	// tier without loading the segment back into memory (the over-capacity
	// case: a segment larger than the whole worker stays spilled).
	DiskReads     int
	DiskReadBytes int64
	PeakUsed      int64
	// UsedBytes is the worker's current in-memory footprint (a snapshot of
	// Used at Stats time, spilled segments excluded). It must return to
	// zero once every segment is dropped — the leak regression pinned by
	// the store accounting tests.
	UsedBytes int64
}

// NewCacheWorker returns a Cache Worker with the given memory capacity in
// bytes. A non-positive capacity means unbounded (never spills).
func NewCacheWorker(capacity int64) *CacheWorker {
	return &CacheWorker{
		capacity: capacity,
		lru:      list.New(),
		segs:     make(map[string]*segment),
	}
}

// SetStatsSink installs a counter sink; nil disables mirroring. The prefix
// is prepended to every counter name (e.g. "shuffle.cache.").
func (w *CacheWorker) SetStatsSink(prefix string, sink StatsSink) {
	w.sinkPrefix, w.sink = prefix, sink
}

func (w *CacheWorker) count(name string, delta int64) {
	if w.sink != nil {
		w.sink.Count(w.sinkPrefix+name, delta)
	}
}

// Capacity returns the configured memory capacity (0 = unbounded).
func (w *CacheWorker) Capacity() int64 { return w.capacity }

// Used returns the bytes currently held in memory.
func (w *CacheWorker) Used() int64 { return w.used }

// Stats returns a copy of the activity counters plus a snapshot of the
// current in-memory footprint.
func (w *CacheWorker) Stats() CacheStats {
	st := w.stats
	st.UsedBytes = w.used
	return st
}

// Len returns the number of resident segments (in memory or spilled).
func (w *CacheWorker) Len() int { return len(w.segs) }

// Put stores a shuffle segment that refs consumers will read. Payload may
// be nil when only accounting is needed. It returns the bytes spilled to
// make room, so the caller can charge disk time. Re-putting an existing
// key replaces the previous segment — failure recovery re-writes a
// relaunched producer's partition — and the replaced segment leaves the
// memory accounting before the new one enters, so repeated re-puts cannot
// leak `used` bytes.
func (w *CacheWorker) Put(key string, size int64, payload [][]byte, refs int) (spilled int64, err error) {
	if size < 0 {
		return 0, fmt.Errorf("shuffle: cache worker: negative size for %q", key)
	}
	if old, dup := w.segs[key]; dup {
		w.remove(old)
	}
	if refs <= 0 {
		refs = 1
	}
	s := &segment{key: key, size: size, data: payload, refs: refs}
	s.elem = w.lru.PushFront(s)
	w.segs[key] = s
	w.used += size
	w.stats.Puts++
	w.count("puts", 1)
	w.count("put_bytes", size)
	if w.used > w.stats.PeakUsed {
		w.stats.PeakUsed = w.used
	}
	return w.evictTo(w.capacity), nil
}

// evictTo spills LRU segments until used ≤ limit (no-op when unbounded).
func (w *CacheWorker) evictTo(limit int64) int64 {
	if w.capacity <= 0 {
		return 0
	}
	var spilled int64
	for w.used > limit {
		e := w.lru.Back()
		if e == nil {
			break
		}
		s := e.Value.(*segment)
		w.lru.Remove(e)
		s.elem = nil
		if !s.spilled {
			s.spilled = true
			w.used -= s.size
			spilled += s.size
			w.stats.SpillEvents++
			w.stats.SpillBytes += s.size
			w.count("spill_events", 1)
			w.count("spill_bytes", s.size)
		}
	}
	return spilled
}

// Get reads one consumer's view of a segment without consuming it. It
// reports the payload, whether the segment was served from the disk tier
// (the caller charges a disk read), and whether the key exists at all.
// A spilled segment normally returns to memory; a segment larger than the
// worker's whole capacity is served from the disk tier in place instead —
// loading it would only make the trailing eviction re-spill it immediately,
// charging LoadBytes + SpillBytes on every access (the spill/load thrash
// this case used to cause).
func (w *CacheWorker) Get(key string) (payload [][]byte, wasSpilled, ok bool) {
	s, ok := w.segs[key]
	if !ok {
		w.stats.Misses++
		w.count("misses", 1)
		return nil, false, false
	}
	w.stats.Gets++
	w.count("gets", 1)
	wasSpilled = s.spilled
	if s.spilled && w.capacity > 0 && s.size > w.capacity {
		// Over-capacity segment: it can never be memory-resident, so serve
		// it from the disk tier without flapping residency.
		w.stats.DiskReads++
		w.stats.DiskReadBytes += s.size
		w.count("disk_reads", 1)
		w.count("disk_read_bytes", s.size)
		return s.data, true, true
	}
	if s.spilled {
		s.spilled = false
		w.used += s.size
		w.stats.LoadBytes += s.size
		w.count("load_bytes", s.size)
		if w.used > w.stats.PeakUsed {
			w.stats.PeakUsed = w.used
		}
	}
	if s.elem != nil {
		w.lru.MoveToFront(s.elem)
	} else {
		s.elem = w.lru.PushFront(s)
	}
	// Loading one segment back may push others out.
	w.evictTo(w.capacity)
	return s.data, wasSpilled, true
}

// Has reports whether the worker holds a segment (in memory or spilled)
// without touching recency or stats.
func (w *CacheWorker) Has(key string) bool {
	_, ok := w.segs[key]
	return ok
}

// Spilled reports whether the key's segment currently lives on the disk
// tier (false for missing keys).
func (w *CacheWorker) Spilled(key string) bool {
	s, ok := w.segs[key]
	return ok && s.spilled
}

// remove detaches a segment from the LRU list, the key map and the memory
// accounting (spilled segments hold no memory).
func (w *CacheWorker) remove(s *segment) {
	if s.elem != nil {
		w.lru.Remove(s.elem)
	}
	if !s.spilled {
		w.used -= s.size
	}
	delete(w.segs, s.key)
}

// Consume records that one consumer has finished with the segment; the
// segment is freed when all consumers have. It returns whether the key
// existed.
func (w *CacheWorker) Consume(key string) bool {
	s, ok := w.segs[key]
	if !ok {
		return false
	}
	s.refs--
	if s.refs > 0 {
		return true
	}
	w.remove(s)
	w.stats.Freed++
	w.count("freed", 1)
	return true
}

// Drop removes a segment unconditionally (failure recovery discards a
// failed producer's partial output). It reports whether the key existed.
func (w *CacheWorker) Drop(key string) bool {
	s, ok := w.segs[key]
	if !ok {
		return false
	}
	w.remove(s)
	w.stats.Drops++
	w.count("drops", 1)
	return true
}

// FailAll simulates the Cache Worker process dying: every resident
// segment — in memory or spilled, since the swap file dies with its owner
// — is lost at once. It returns the lost keys, sorted, so the caller can
// fan each one out to recovery (the controller's CacheWorkerLost /
// TaskOutputLost path), and leaves the worker empty but reusable, as a
// restarted process would be. Stats survive: the crash does not erase the
// history of what the worker did.
func (w *CacheWorker) FailAll() []string {
	keys := make([]string, 0, len(w.segs))
	var lostSpilled int64
	for k, s := range w.segs {
		keys = append(keys, k)
		if s.spilled {
			lostSpilled += s.size
		}
	}
	sort.Strings(keys)
	w.segs = make(map[string]*segment)
	w.lru.Init()
	w.used = 0
	w.stats.LostSpilledBytes += lostSpilled
	w.count("lost_segments", int64(len(keys)))
	w.count("lost_spilled_bytes", lostSpilled)
	return keys
}
