package shuffle

import (
	"fmt"
	"math/rand"
	"testing"
)

func newTestService(workers int, capacity int64, replicas int) *Service {
	ws := make([]*CacheWorker, workers)
	for i := range ws {
		ws[i] = NewCacheWorker(capacity)
	}
	return NewService(ws, replicas)
}

func TestServicePutReplicates(t *testing.T) {
	s := newTestService(5, 1<<20, 3)
	if _, err := s.Put("k", 100, nil, 1); err != nil {
		t.Fatal(err)
	}
	if got := s.CopiesOf("k"); got != 3 {
		t.Fatalf("CopiesOf = %d, want 3", got)
	}
	if _, _, _, ok := s.Get("k"); !ok {
		t.Fatal("Get missed a key with three copies")
	}
}

func TestServiceReplicasClamped(t *testing.T) {
	if s := newTestService(2, 1<<20, 5); s.Replicas() != 2 {
		t.Errorf("R not clamped to fleet size: %d", s.Replicas())
	}
	if s := newTestService(4, 1<<20, 0); s.Replicas() != 1 {
		t.Errorf("R not clamped to 1: %d", s.Replicas())
	}
}

func TestServiceFailoverServesFromReplica(t *testing.T) {
	s := newTestService(4, 1<<20, 2)
	if _, err := s.Put("k", 64, nil, 1); err != nil {
		t.Fatal(err)
	}
	_, primary, _, ok := s.Get("k")
	if !ok {
		t.Fatal("initial Get missed")
	}
	orphans := s.FailWorker(primary)
	if len(orphans) != 0 {
		t.Fatalf("replica survived but FailWorker reported orphans %v", orphans)
	}
	_, backup, _, ok := s.Get("k")
	if !ok {
		t.Fatal("Get missed after primary crash with a live replica")
	}
	if backup == primary {
		t.Fatal("Get served from the dead worker")
	}
	if got := s.CopiesOf("k"); got != 1 {
		t.Errorf("CopiesOf after crash = %d, want 1", got)
	}
}

func TestServiceOrphansReportedWhenLastCopyDies(t *testing.T) {
	s := newTestService(3, 1<<20, 1) // R=1: every key has one copy
	for i := 0; i < 30; i++ {
		if _, err := s.Put(fmt.Sprintf("k%d", i), 8, nil, 1); err != nil {
			t.Fatal(err)
		}
	}
	var orphans []string
	for i := 0; i < 3; i++ {
		orphans = append(orphans, s.FailWorker(i)...)
	}
	if len(orphans) != 30 {
		t.Fatalf("lost %d orphans, want all 30", len(orphans))
	}
	if s.LiveWorkers() != 0 {
		t.Errorf("LiveWorkers = %d after failing all", s.LiveWorkers())
	}
	// Double-fail is a no-op.
	if got := s.FailWorker(0); got != nil {
		t.Errorf("re-failing a dead worker returned %v", got)
	}
}

func TestServiceReviveRejoinsEmpty(t *testing.T) {
	s := newTestService(2, 1<<20, 2)
	if _, err := s.Put("k", 16, nil, 1); err != nil {
		t.Fatal(err)
	}
	s.FailWorker(0)
	s.ReviveWorker(0)
	if s.LiveWorkers() != 2 {
		t.Fatalf("LiveWorkers = %d after revive", s.LiveWorkers())
	}
	// The restarted worker is empty: only the surviving copy remains.
	if got := s.CopiesOf("k"); got != 1 {
		t.Errorf("CopiesOf after revive = %d, want 1", got)
	}
	// New writes reach the revived worker again.
	if _, err := s.Put("k2", 16, nil, 1); err != nil {
		t.Fatal(err)
	}
	if got := s.CopiesOf("k2"); got != 2 {
		t.Errorf("CopiesOf for post-revive write = %d, want 2", got)
	}
}

func TestServiceConsumeAndDropHitAllCopies(t *testing.T) {
	s := newTestService(4, 1<<20, 3)
	if _, err := s.Put("k", 32, nil, 1); err != nil {
		t.Fatal(err)
	}
	if !s.Consume("k") {
		t.Fatal("Consume missed")
	}
	// refs=1 and one consume: every copy freed.
	if got := s.CopiesOf("k"); got != 0 {
		t.Errorf("CopiesOf after final consume = %d, want 0", got)
	}
	if _, err := s.Put("d", 32, nil, 5); err != nil {
		t.Fatal(err)
	}
	if !s.Drop("d") {
		t.Fatal("Drop missed")
	}
	if got := s.CopiesOf("d"); got != 0 {
		t.Errorf("CopiesOf after drop = %d, want 0", got)
	}
	if s.Drop("d") {
		t.Error("double Drop reported a copy")
	}
}

func TestServiceNoLiveWorkers(t *testing.T) {
	s := newTestService(2, 1<<20, 2)
	s.FailWorker(0)
	s.FailWorker(1)
	if _, err := s.Put("k", 8, nil, 1); err == nil {
		t.Fatal("Put succeeded with no live workers")
	}
	if _, _, _, ok := s.Get("k"); ok {
		t.Fatal("Get succeeded with no live workers")
	}
}

// TestServiceReplicaConsistencyProperty (satellite S4, replication half):
// under a random mix of puts, consumes, drops, crashes and revives, every
// key that was written and not released must (a) still be Get-able as long
// as fewer than R of its writers crashed since the write, and (b) have all
// surviving copies agree; and the fleet-wide accounting invariant from the
// cache-worker property test must hold on every worker at every step.
func TestServiceReplicaConsistencyProperty(t *testing.T) {
	const (
		workers = 5
		R       = 2
		steps   = 300
	)
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := newTestService(workers, 1<<20, R)
		type liveKey struct {
			key     string
			copies  int // copies actually written (fewer than R if workers were down)
			crashes int // worker crashes since this key was written
		}
		var keys []liveKey
		next := 0
		failed := map[int]bool{}

		check := func(step int) {
			for wi, w := range s.workers {
				var resident int64
				for _, seg := range w.segs {
					if !seg.spilled {
						resident += seg.size
					}
				}
				if w.used != resident || w.used < 0 {
					t.Fatalf("seed %d step %d worker %d: used=%d resident=%d", seed, step, wi, w.used, resident)
				}
			}
			for _, lk := range keys {
				if lk.crashes >= lk.copies {
					continue // all copies may legitimately be gone
				}
				if _, _, _, ok := s.Get(lk.key); !ok {
					t.Fatalf("seed %d step %d: key %q lost with only %d crashes since its %d-copy write",
						seed, step, lk.key, lk.crashes, lk.copies)
				}
			}
		}

		for step := 0; step < steps; step++ {
			switch op := rng.Intn(10); {
			case op < 4: // put
				k := fmt.Sprintf("s%d-k%d", seed, next)
				next++
				if _, err := s.Put(k, int64(1+rng.Intn(256)), nil, 1+rng.Intn(3)); err == nil {
					keys = append(keys, liveKey{key: k, copies: s.CopiesOf(k)})
				}
			case op < 6: // get an existing key
				if len(keys) > 0 {
					s.Get(keys[rng.Intn(len(keys))].key)
				}
			case op < 7: // drop: releases the key from tracking
				if len(keys) > 0 {
					i := rng.Intn(len(keys))
					s.Drop(keys[i].key)
					keys = append(keys[:i], keys[i+1:]...)
				}
			case op < 9: // crash a live worker
				w := rng.Intn(workers)
				if !failed[w] && len(failed) < workers-1 {
					s.FailWorker(w)
					failed[w] = true
					for i := range keys {
						keys[i].crashes++
					}
				}
			default: // revive one crashed worker
				for w := range failed {
					s.ReviveWorker(w)
					delete(failed, w)
					break
				}
			}
			check(step)
		}
	}
}

func TestServiceStatsAggregate(t *testing.T) {
	s := newTestService(3, 1<<20, 2)
	for i := 0; i < 10; i++ {
		if _, err := s.Put(fmt.Sprintf("k%d", i), 100, nil, 1); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Puts != 20 { // 10 keys × R=2
		t.Errorf("aggregate Puts = %d, want 20", st.Puts)
	}
	if st.UsedBytes != 2000 {
		t.Errorf("aggregate UsedBytes = %d, want 2000", st.UsedBytes)
	}
}
