package shuffle

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheWorkerPutGetConsume(t *testing.T) {
	w := NewCacheWorker(0) // unbounded
	payload := [][]byte{[]byte("hello")}
	if _, err := w.Put("a", 5, payload, 2); err != nil {
		t.Fatal(err)
	}
	if w.Used() != 5 || w.Len() != 1 {
		t.Errorf("used=%d len=%d", w.Used(), w.Len())
	}
	got, spilled, ok := w.Get("a")
	if !ok || spilled || string(got[0][:]) != "hello" {
		t.Errorf("Get = %v %v %v", got, spilled, ok)
	}
	if !w.Consume("a") {
		t.Error("first consume failed")
	}
	if w.Len() != 1 {
		t.Error("segment freed before all consumers done")
	}
	if !w.Consume("a") {
		t.Error("second consume failed")
	}
	if w.Len() != 0 || w.Used() != 0 {
		t.Errorf("segment not freed: len=%d used=%d", w.Len(), w.Used())
	}
	if w.Consume("a") {
		t.Error("consume of missing key succeeded")
	}
	if w.Stats().Freed != 1 {
		t.Errorf("freed = %d", w.Stats().Freed)
	}
}

func TestCacheWorkerDuplicateAndErrors(t *testing.T) {
	w := NewCacheWorker(100)
	if _, err := w.Put("a", 10, nil, 1); err != nil {
		t.Fatal(err)
	}
	// A re-put replaces the previous attempt's segment (failure recovery
	// re-writes a partition) without leaking the old bytes from `used`.
	if _, err := w.Put("a", 30, nil, 1); err != nil {
		t.Fatalf("re-put rejected: %v", err)
	}
	if w.Used() != 30 || w.Len() != 1 {
		t.Errorf("after replace: used=%d len=%d, want 30/1", w.Used(), w.Len())
	}
	if _, err := w.Put("b", -1, nil, 1); err == nil {
		t.Error("negative size accepted")
	}
	if _, _, ok := w.Get("missing"); ok {
		t.Error("missing key found")
	}
	if w.Stats().Misses != 1 {
		t.Errorf("misses = %d", w.Stats().Misses)
	}
}

func TestCacheWorkerFailAll(t *testing.T) {
	w := NewCacheWorker(25)
	for i, k := range []string{"c", "a", "b"} {
		if _, err := w.Put(k, int64(10*(i+1)), nil, 2); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 25 with 60 bytes resident: something has spilled; the crash
	// loses spilled segments too.
	lost := w.FailAll()
	if want := []string{"a", "b", "c"}; len(lost) != 3 || lost[0] != want[0] || lost[1] != want[1] || lost[2] != want[2] {
		t.Fatalf("lost keys = %v, want %v", lost, want)
	}
	if w.Len() != 0 || w.Used() != 0 {
		t.Errorf("worker not empty after FailAll: len=%d used=%d", w.Len(), w.Used())
	}
	if w.Consume("a") || w.Drop("b") {
		t.Error("segments survived FailAll")
	}
	// The worker is reusable, as a restarted process would be.
	if _, err := w.Put("d", 5, nil, 1); err != nil {
		t.Fatal(err)
	}
	if w.Used() != 5 || w.Len() != 1 {
		t.Errorf("restarted worker: used=%d len=%d", w.Used(), w.Len())
	}
	if w.FailAll()[0] != "d" {
		t.Error("second FailAll did not report the new segment")
	}
}

func TestCacheWorkerLRUSpill(t *testing.T) {
	w := NewCacheWorker(100)
	mustPut := func(k string, size int64) int64 {
		t.Helper()
		sp, err := w.Put(k, size, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	mustPut("a", 40)
	mustPut("b", 40)
	if sp := mustPut("c", 40); sp != 40 {
		t.Errorf("spilled %d, want 40 (oldest: a)", sp)
	}
	if w.Used() != 80 {
		t.Errorf("used = %d", w.Used())
	}
	// "a" was LRU and spilled; reading it loads it back and may evict "b".
	_, wasSpilled, ok := w.Get("a")
	if !ok || !wasSpilled {
		t.Errorf("Get(a) spilled=%v ok=%v", wasSpilled, ok)
	}
	st := w.Stats()
	if st.SpillEvents < 1 || st.SpillBytes < 40 || st.LoadBytes != 40 {
		t.Errorf("stats = %+v", st)
	}
	if w.Used() > 100 {
		t.Errorf("over capacity after reload: %d", w.Used())
	}
}

func TestCacheWorkerRecencyOrder(t *testing.T) {
	w := NewCacheWorker(100)
	w.Put("a", 40, nil, 1)
	w.Put("b", 40, nil, 1)
	w.Get("a") // make "b" the LRU
	w.Put("c", 40, nil, 1)
	if _, spilled, _ := w.Get("b"); !spilled {
		t.Error("b should have spilled (was LRU)")
	}
}

func TestCacheWorkerDrop(t *testing.T) {
	w := NewCacheWorker(0)
	w.Put("x", 7, nil, 3)
	if !w.Drop("x") {
		t.Error("drop failed")
	}
	if w.Drop("x") {
		t.Error("double drop succeeded")
	}
	if w.Used() != 0 || w.Len() != 0 {
		t.Error("drop leaked")
	}
}

func TestCacheWorkerZeroRefsDefaultsToOne(t *testing.T) {
	w := NewCacheWorker(0)
	w.Put("x", 1, nil, 0)
	if !w.Consume("x") || w.Len() != 0 {
		t.Error("refs<=0 should behave as 1")
	}
}

// testSink collects mirrored counter increments for assertions.
type testSink struct{ counts map[string]int64 }

func (s *testSink) Count(name string, delta int64) {
	if s.counts == nil {
		s.counts = make(map[string]int64)
	}
	s.counts[name] += delta
}

// TestCacheWorkerOverCapacityServedFromDiskTier pins the spill/load thrash
// fix: a segment larger than the whole worker can never be memory-resident,
// so repeated Gets must serve it from the disk tier instead of loading it
// back and immediately re-spilling it. Before the fix every access charged
// LoadBytes + SpillBytes; after it, only the initial Put spills and each
// access counts a DiskRead.
func TestCacheWorkerOverCapacityServedFromDiskTier(t *testing.T) {
	w := NewCacheWorker(10)
	sink := &testSink{}
	w.SetStatsSink("cw.", sink)
	if _, err := w.Put("big", 50, nil, 4); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.SpillBytes != 50 || st.UsedBytes != 0 {
		t.Fatalf("after put: %+v", st)
	}
	for i := 0; i < 3; i++ {
		_, wasSpilled, ok := w.Get("big")
		if !ok || !wasSpilled {
			t.Fatalf("Get %d: spilled=%v ok=%v", i, wasSpilled, ok)
		}
	}
	st := w.Stats()
	if st.LoadBytes != 0 {
		t.Errorf("LoadBytes = %d, want 0 (no residency flapping)", st.LoadBytes)
	}
	if st.SpillBytes != 50 || st.SpillEvents != 1 {
		t.Errorf("SpillBytes = %d events = %d, want only the initial spill", st.SpillBytes, st.SpillEvents)
	}
	if st.DiskReads != 3 || st.DiskReadBytes != 150 {
		t.Errorf("DiskReads = %d bytes = %d, want 3/150", st.DiskReads, st.DiskReadBytes)
	}
	if w.Used() != 0 {
		t.Errorf("used = %d, want 0 (segment stays on the disk tier)", w.Used())
	}
	if !w.Spilled("big") {
		t.Error("segment left the disk tier")
	}
	if sink.counts["cw.disk_reads"] != 3 || sink.counts["cw.disk_read_bytes"] != 150 {
		t.Errorf("sink mirror = %v", sink.counts)
	}
	// A normally sized spilled segment still loads back into memory.
	w2 := NewCacheWorker(100)
	w2.Put("a", 60, nil, 1)
	w2.Put("b", 60, nil, 1) // spills a
	if _, wasSpilled, _ := w2.Get("a"); !wasSpilled {
		t.Fatal("a should have been spilled")
	}
	if st := w2.Stats(); st.LoadBytes != 60 || st.DiskReads != 0 {
		t.Errorf("normal reload stats: %+v", st)
	}
}

// TestCacheWorkerDropStats pins the Drop counter gap: recovery-discarded
// segments must be visible in CacheStats and the sink.
func TestCacheWorkerDropStats(t *testing.T) {
	w := NewCacheWorker(0)
	sink := &testSink{}
	w.SetStatsSink("cw.", sink)
	w.Put("x", 7, nil, 3)
	w.Put("y", 9, nil, 1)
	if !w.Drop("x") || !w.Drop("y") {
		t.Fatal("drops failed")
	}
	w.Drop("x") // missing: must not count
	if st := w.Stats(); st.Drops != 2 {
		t.Errorf("Drops = %d, want 2", st.Drops)
	}
	if sink.counts["cw.drops"] != 2 {
		t.Errorf("sink drops = %d, want 2", sink.counts["cw.drops"])
	}
}

// TestCacheWorkerFailAllLostSpilledBytes pins the FailAll tier split: bytes
// lost from the disk tier are distinguished from in-memory losses.
func TestCacheWorkerFailAllLostSpilledBytes(t *testing.T) {
	w := NewCacheWorker(35)
	sink := &testSink{}
	w.SetStatsSink("cw.", sink)
	w.Put("a", 10, nil, 1)
	w.Put("b", 20, nil, 1)
	w.Put("c", 30, nil, 1) // spills a and b (LRU), keeps c resident
	if !w.Spilled("a") || !w.Spilled("b") || w.Spilled("c") {
		t.Fatalf("unexpected tier layout: used=%d", w.Used())
	}
	if lost := w.FailAll(); len(lost) != 3 {
		t.Fatalf("lost = %v", lost)
	}
	if st := w.Stats(); st.LostSpilledBytes != 30 {
		t.Errorf("LostSpilledBytes = %d, want 30 (a+b)", st.LostSpilledBytes)
	}
	if sink.counts["cw.lost_spilled_bytes"] != 30 || sink.counts["cw.lost_segments"] != 3 {
		t.Errorf("sink mirror = %v", sink.counts)
	}
}

// TestCacheWorkerAccountingInvariant drives seeded random op sequences
// (Put/Get/Consume/Drop/FailAll) and asserts after every step that
// used == Σ size of resident non-spilled segments and used ≥ 0 — the
// memory-manager accounting invariant.
func TestCacheWorkerAccountingInvariant(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		capacity := int64(20 + r.Intn(150))
		w := NewCacheWorker(capacity)
		var keys []string
		next := 0
		check := func(step int, op string) {
			t.Helper()
			var want int64
			for _, s := range w.segs {
				if !s.spilled {
					want += s.size
				}
			}
			if w.used != want {
				t.Fatalf("seed %d step %d after %s: used=%d, resident sum=%d", seed, step, op, w.used, want)
			}
			if w.used < 0 {
				t.Fatalf("seed %d step %d after %s: used negative: %d", seed, step, op, w.used)
			}
			if st := w.Stats(); st.PeakUsed < w.used {
				t.Fatalf("seed %d step %d after %s: peak %d < used %d", seed, step, op, st.PeakUsed, w.used)
			}
		}
		for step := 0; step < 400; step++ {
			op := "put"
			switch r.Intn(10) {
			case 0, 1, 2:
				k := fmt.Sprintf("s%d", next)
				next++
				// Sizes occasionally exceed capacity to hit the disk-tier
				// serve path.
				if _, err := w.Put(k, int64(r.Intn(int(capacity)+40)), nil, 1+r.Intn(3)); err != nil {
					t.Fatal(err)
				}
				keys = append(keys, k)
			case 3, 4, 5:
				op = "get"
				if len(keys) > 0 {
					w.Get(keys[r.Intn(len(keys))])
				}
			case 6, 7:
				op = "consume"
				if len(keys) > 0 {
					w.Consume(keys[r.Intn(len(keys))])
				}
			case 8:
				op = "drop"
				if len(keys) > 0 {
					w.Drop(keys[r.Intn(len(keys))])
				}
			case 9:
				op = "failall"
				if r.Intn(10) == 0 { // rare: it resets everything
					w.FailAll()
				}
			}
			check(step, op)
		}
	}
}

// TestCacheWorkerProperty: under random operations, memory accounting never
// exceeds capacity and never goes negative.
func TestCacheWorkerProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cap := int64(50 + r.Intn(200))
		w := NewCacheWorker(cap)
		live := make(map[string]int)
		next := 0
		for i := 0; i < 200; i++ {
			switch r.Intn(3) {
			case 0:
				k := fmt.Sprintf("s%d", next)
				next++
				refs := 1 + r.Intn(3)
				if _, err := w.Put(k, int64(r.Intn(60)), nil, refs); err != nil {
					return false
				}
				live[k] = refs
			case 1:
				for k := range live {
					w.Get(k)
					break
				}
			case 2:
				for k := range live {
					if !w.Consume(k) {
						return false
					}
					live[k]--
					if live[k] == 0 {
						delete(live, k)
					}
					break
				}
			}
			if w.Used() < 0 || w.Used() > cap+60 {
				// Put may momentarily exceed before evictTo runs;
				// after Put returns, usage must be within capacity
				// unless a single segment exceeds it.
				return false
			}
			if w.Len() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
