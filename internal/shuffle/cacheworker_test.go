package shuffle

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheWorkerPutGetConsume(t *testing.T) {
	w := NewCacheWorker(0) // unbounded
	payload := [][]byte{[]byte("hello")}
	if _, err := w.Put("a", 5, payload, 2); err != nil {
		t.Fatal(err)
	}
	if w.Used() != 5 || w.Len() != 1 {
		t.Errorf("used=%d len=%d", w.Used(), w.Len())
	}
	got, spilled, ok := w.Get("a")
	if !ok || spilled || string(got[0][:]) != "hello" {
		t.Errorf("Get = %v %v %v", got, spilled, ok)
	}
	if !w.Consume("a") {
		t.Error("first consume failed")
	}
	if w.Len() != 1 {
		t.Error("segment freed before all consumers done")
	}
	if !w.Consume("a") {
		t.Error("second consume failed")
	}
	if w.Len() != 0 || w.Used() != 0 {
		t.Errorf("segment not freed: len=%d used=%d", w.Len(), w.Used())
	}
	if w.Consume("a") {
		t.Error("consume of missing key succeeded")
	}
	if w.Stats().Freed != 1 {
		t.Errorf("freed = %d", w.Stats().Freed)
	}
}

func TestCacheWorkerDuplicateAndErrors(t *testing.T) {
	w := NewCacheWorker(100)
	if _, err := w.Put("a", 10, nil, 1); err != nil {
		t.Fatal(err)
	}
	// A re-put replaces the previous attempt's segment (failure recovery
	// re-writes a partition) without leaking the old bytes from `used`.
	if _, err := w.Put("a", 30, nil, 1); err != nil {
		t.Fatalf("re-put rejected: %v", err)
	}
	if w.Used() != 30 || w.Len() != 1 {
		t.Errorf("after replace: used=%d len=%d, want 30/1", w.Used(), w.Len())
	}
	if _, err := w.Put("b", -1, nil, 1); err == nil {
		t.Error("negative size accepted")
	}
	if _, _, ok := w.Get("missing"); ok {
		t.Error("missing key found")
	}
	if w.Stats().Misses != 1 {
		t.Errorf("misses = %d", w.Stats().Misses)
	}
}

func TestCacheWorkerFailAll(t *testing.T) {
	w := NewCacheWorker(25)
	for i, k := range []string{"c", "a", "b"} {
		if _, err := w.Put(k, int64(10*(i+1)), nil, 2); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 25 with 60 bytes resident: something has spilled; the crash
	// loses spilled segments too.
	lost := w.FailAll()
	if want := []string{"a", "b", "c"}; len(lost) != 3 || lost[0] != want[0] || lost[1] != want[1] || lost[2] != want[2] {
		t.Fatalf("lost keys = %v, want %v", lost, want)
	}
	if w.Len() != 0 || w.Used() != 0 {
		t.Errorf("worker not empty after FailAll: len=%d used=%d", w.Len(), w.Used())
	}
	if w.Consume("a") || w.Drop("b") {
		t.Error("segments survived FailAll")
	}
	// The worker is reusable, as a restarted process would be.
	if _, err := w.Put("d", 5, nil, 1); err != nil {
		t.Fatal(err)
	}
	if w.Used() != 5 || w.Len() != 1 {
		t.Errorf("restarted worker: used=%d len=%d", w.Used(), w.Len())
	}
	if w.FailAll()[0] != "d" {
		t.Error("second FailAll did not report the new segment")
	}
}

func TestCacheWorkerLRUSpill(t *testing.T) {
	w := NewCacheWorker(100)
	mustPut := func(k string, size int64) int64 {
		t.Helper()
		sp, err := w.Put(k, size, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	mustPut("a", 40)
	mustPut("b", 40)
	if sp := mustPut("c", 40); sp != 40 {
		t.Errorf("spilled %d, want 40 (oldest: a)", sp)
	}
	if w.Used() != 80 {
		t.Errorf("used = %d", w.Used())
	}
	// "a" was LRU and spilled; reading it loads it back and may evict "b".
	_, wasSpilled, ok := w.Get("a")
	if !ok || !wasSpilled {
		t.Errorf("Get(a) spilled=%v ok=%v", wasSpilled, ok)
	}
	st := w.Stats()
	if st.SpillEvents < 1 || st.SpillBytes < 40 || st.LoadBytes != 40 {
		t.Errorf("stats = %+v", st)
	}
	if w.Used() > 100 {
		t.Errorf("over capacity after reload: %d", w.Used())
	}
}

func TestCacheWorkerRecencyOrder(t *testing.T) {
	w := NewCacheWorker(100)
	w.Put("a", 40, nil, 1)
	w.Put("b", 40, nil, 1)
	w.Get("a") // make "b" the LRU
	w.Put("c", 40, nil, 1)
	if _, spilled, _ := w.Get("b"); !spilled {
		t.Error("b should have spilled (was LRU)")
	}
}

func TestCacheWorkerDrop(t *testing.T) {
	w := NewCacheWorker(0)
	w.Put("x", 7, nil, 3)
	if !w.Drop("x") {
		t.Error("drop failed")
	}
	if w.Drop("x") {
		t.Error("double drop succeeded")
	}
	if w.Used() != 0 || w.Len() != 0 {
		t.Error("drop leaked")
	}
}

func TestCacheWorkerZeroRefsDefaultsToOne(t *testing.T) {
	w := NewCacheWorker(0)
	w.Put("x", 1, nil, 0)
	if !w.Consume("x") || w.Len() != 0 {
		t.Error("refs<=0 should behave as 1")
	}
}

// TestCacheWorkerProperty: under random operations, memory accounting never
// exceeds capacity and never goes negative.
func TestCacheWorkerProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cap := int64(50 + r.Intn(200))
		w := NewCacheWorker(cap)
		live := make(map[string]int)
		next := 0
		for i := 0; i < 200; i++ {
			switch r.Intn(3) {
			case 0:
				k := fmt.Sprintf("s%d", next)
				next++
				refs := 1 + r.Intn(3)
				if _, err := w.Put(k, int64(r.Intn(60)), nil, refs); err != nil {
					return false
				}
				live[k] = refs
			case 1:
				for k := range live {
					w.Get(k)
					break
				}
			case 2:
				for k := range live {
					if !w.Consume(k) {
						return false
					}
					live[k]--
					if live[k] == 0 {
						delete(live, k)
					}
					break
				}
			}
			if w.Used() < 0 || w.Used() > cap+60 {
				// Put may momentarily exceed before evictTo runs;
				// after Put returns, usage must be within capacity
				// unless a single segment exceeds it.
				return false
			}
			if w.Len() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
