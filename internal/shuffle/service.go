package shuffle

import "fmt"

// Service is the shuffle-service view over a fleet of Cache Workers: writes
// replicate to R workers chosen by deterministic ring placement, reads fail
// over to any surviving replica, and a worker crash reports exactly the
// keys whose last copy died. It is the data-plane counterpart of the
// controller's replica-aware recovery (core.Options.ShuffleReplicas): the
// controller tracks which machines hold a task's output, this type holds
// the bytes.
type Service struct {
	workers  []*CacheWorker
	live     []bool
	replicas int
}

// NewService builds a service over the given workers with replication
// factor replicas (clamped to [1, len(workers)]).
func NewService(workers []*CacheWorker, replicas int) *Service {
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(workers) {
		replicas = len(workers)
	}
	live := make([]bool, len(workers))
	for i := range live {
		live[i] = true
	}
	return &Service{workers: workers, live: live, replicas: replicas}
}

// Replicas returns the configured replication factor.
func (s *Service) Replicas() int { return s.replicas }

// FNV-1a parameters (the same construction obs and chaos use for their
// determinism hashes).
const (
	fnv1aOffset uint64 = 14695981039346656037
	fnv1aPrime  uint64 = 1099511628211
)

// home returns a key's primary worker index: FNV-1a over the key, mod the
// fleet size — a pure function of the key, so producers, consumers and
// recovery all agree on placement without coordination.
//
//lint:hotpath
func (s *Service) home(key string) int {
	var h uint64 = fnv1aOffset
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnv1aPrime
	}
	return int(h % uint64(len(s.workers)))
}

// placement returns up to R live worker indices for a key, walking the ring
// from the key's home. Fewer than R live workers means fewer copies.
func (s *Service) placement(key string) []int {
	out := make([]int, 0, s.replicas)
	start := s.home(key)
	for i := 0; i < len(s.workers) && len(out) < s.replicas; i++ {
		w := (start + i) % len(s.workers)
		if s.live[w] {
			out = append(out, w)
		}
	}
	return out
}

// Put writes a segment to R live workers. It returns the total bytes the
// writes spilled (summed over replicas, for disk-cost charging) and the
// first error.
func (s *Service) Put(key string, size int64, payload [][]byte, refs int) (spilled int64, err error) {
	targets := s.placement(key)
	if len(targets) == 0 {
		return 0, fmt.Errorf("shuffle: service: no live workers for %q", key)
	}
	for _, w := range targets {
		sp, err := s.workers[w].Put(key, size, payload, refs)
		if err != nil {
			return spilled, err
		}
		spilled += sp
	}
	return spilled, nil
}

// Get reads a segment from the first live replica holding it, walking the
// ring from the key's home. It returns the payload, the serving worker's
// index, whether the read hit the disk tier, and whether any copy exists.
func (s *Service) Get(key string) (payload [][]byte, worker int, wasSpilled, ok bool) {
	start := s.home(key)
	for i := 0; i < len(s.workers); i++ {
		w := (start + i) % len(s.workers)
		if !s.live[w] || !s.workers[w].Has(key) {
			continue
		}
		p, sp, _ := s.workers[w].Get(key)
		return p, w, sp, true
	}
	return nil, -1, false, false
}

// CopiesOf returns how many live workers currently hold the key.
func (s *Service) CopiesOf(key string) int {
	n := 0
	for w, cw := range s.workers {
		if s.live[w] && cw.Has(key) {
			n++
		}
	}
	return n
}

// Consume releases one consumer's reference on every live copy, so replica
// memory frees in step with the primary. It reports whether any copy
// existed.
func (s *Service) Consume(key string) bool {
	any := false
	for w, cw := range s.workers {
		if s.live[w] && cw.Consume(key) {
			any = true
		}
	}
	return any
}

// Drop removes every live copy of a key (failure recovery discarding a
// partial output). It reports whether any copy existed.
func (s *Service) Drop(key string) bool {
	any := false
	for w, cw := range s.workers {
		if s.live[w] && cw.Drop(key) {
			any = true
		}
	}
	return any
}

// FailWorker crashes one worker: its segments (memory and disk tier alike)
// are lost and it leaves the placement ring until ReviveWorker. The return
// value lists only the keys whose LAST live copy died — exactly the set the
// controller must hand to recovery; keys with surviving replicas need no
// step.
func (s *Service) FailWorker(i int) []string {
	if i < 0 || i >= len(s.workers) || !s.live[i] {
		return nil
	}
	s.live[i] = false
	lost := s.workers[i].FailAll()
	orphans := lost[:0]
	for _, k := range lost {
		if s.CopiesOf(k) == 0 {
			orphans = append(orphans, k)
		}
	}
	return orphans
}

// ReviveWorker re-admits a crashed worker to the placement ring, empty, as
// a restarted process would be.
func (s *Service) ReviveWorker(i int) {
	if i >= 0 && i < len(s.workers) {
		s.live[i] = true
	}
}

// LiveWorkers returns how many workers are currently in the ring.
func (s *Service) LiveWorkers() int {
	n := 0
	for _, l := range s.live {
		if l {
			n++
		}
	}
	return n
}

// Stats aggregates the fleet's cache stats (live and dead workers both:
// history survives crashes).
func (s *Service) Stats() CacheStats {
	var agg CacheStats
	for _, w := range s.workers {
		st := w.Stats()
		agg.Puts += st.Puts
		agg.Gets += st.Gets
		agg.Misses += st.Misses
		agg.SpillEvents += st.SpillEvents
		agg.SpillBytes += st.SpillBytes
		agg.LoadBytes += st.LoadBytes
		agg.Freed += st.Freed
		agg.Drops += st.Drops
		agg.LostSpilledBytes += st.LostSpilledBytes
		agg.DiskReads += st.DiskReads
		agg.DiskReadBytes += st.DiskReadBytes
		agg.PeakUsed += st.PeakUsed
		agg.UsedBytes += st.UsedBytes
	}
	return agg
}
