package shuffle

import (
	"fmt"
	"strconv"
)

// Merger implements FuxiShuffle-style push-based partition merging: instead
// of every consumer pulling M small fragments (one per producer), producers
// push fragments to the reducer-side Cache Worker, which appends them into
// one contiguous per-reducer block and seals the block into the worker once
// it crosses the flush threshold. Consumers then fetch a handful of merged
// blocks, collapsing the fetch fan-in from M to the sealed-block count.
//
// The merger is payload-agnostic: fragments arrive already encoded, and the
// engine's batch codec appends encoded batches byte-for-byte (AppendBatch),
// so a merged block decodes exactly like a producer-side stream. The
// simulator pushes nil payloads with sizes only, the same contract as
// CacheWorker.Put.
type Merger struct {
	w *CacheWorker
	// flushSize seals a reducer's block once its accumulated bytes reach
	// this threshold (0 = only Seal flushes).
	flushSize int64
	refs      int
	blocks    map[string]*mergeBlock
	order     []string // reducers in first-push order: deterministic Seal
	stats     MergeStats
}

type mergeBlock struct {
	frags [][]byte
	size  int64
	nfrag int
	seq   int // sealed-block counter for this reducer
}

// MergeStats counts merger activity.
type MergeStats struct {
	Fragments     int
	FragmentBytes int64
	Blocks        int   // blocks sealed into the cache worker
	MergedBytes   int64 // bytes written as merged blocks
	SpillBytes    int64 // bytes the backing worker spilled absorbing blocks
}

// FanIn returns the consumer-side fetch fan-in reduction factor: fragments
// merged per sealed block (1 when nothing merged).
func (s MergeStats) FanIn() float64 {
	if s.Blocks == 0 {
		return 1
	}
	return float64(s.Fragments) / float64(s.Blocks)
}

// NewMerger returns a merger that seals merged blocks into w. refs is the
// consumer count each sealed block will serve (CacheWorker.Put semantics);
// flushSize bounds per-reducer accumulation (0 = unbounded until Seal).
func NewMerger(w *CacheWorker, flushSize int64, refs int) *Merger {
	return &Merger{w: w, flushSize: flushSize, refs: refs, blocks: make(map[string]*mergeBlock)}
}

// BlockKey names the seq-th sealed block of a reducer partition; consumers
// fetch these keys from the backing worker.
func BlockKey(reducer string, seq int) string {
	return reducer + "#" + strconv.Itoa(seq)
}

// Push appends one producer fragment to a reducer's pending block, sealing
// the block if it crosses the flush threshold. frag may be nil when only
// accounting is needed (the simulator); size must then be supplied.
//
//lint:hotpath
func (m *Merger) Push(reducer string, frag []byte, size int64) error {
	if size < 0 {
		return fmt.Errorf("shuffle: merger: negative fragment size for %q", reducer)
	}
	b := m.blocks[reducer]
	if b == nil {
		b = &mergeBlock{}
		m.blocks[reducer] = b
		m.order = append(m.order, reducer)
	}
	if frag != nil {
		b.frags = append(b.frags, frag)
	}
	b.size += size
	b.nfrag++
	m.stats.Fragments++
	m.stats.FragmentBytes += size
	if m.flushSize > 0 && b.size >= m.flushSize {
		return m.seal(reducer, b)
	}
	return nil
}

// seal writes a reducer's accumulated block into the backing worker and
// resets the accumulator for the next block.
//
//lint:hotpath
func (m *Merger) seal(reducer string, b *mergeBlock) error {
	if b.nfrag == 0 {
		return nil
	}
	spilled, err := m.w.Put(BlockKey(reducer, b.seq), b.size, b.frags, m.refs)
	if err != nil {
		return err
	}
	m.stats.Blocks++
	m.stats.MergedBytes += b.size
	m.stats.SpillBytes += spilled
	b.seq++
	b.frags = nil
	b.size = 0
	b.nfrag = 0
	return nil
}

// Seal flushes every partially accumulated block (end of the producer
// stage), in first-push order so reruns are deterministic.
func (m *Merger) Seal() error {
	for _, reducer := range m.order {
		if err := m.seal(reducer, m.blocks[reducer]); err != nil {
			return err
		}
	}
	return nil
}

// Blocks returns how many blocks have been sealed for a reducer so far;
// consumers fetch BlockKey(reducer, 0..Blocks-1).
func (m *Merger) Blocks(reducer string) int {
	b := m.blocks[reducer]
	if b == nil {
		return 0
	}
	return b.seq
}

// Stats returns a copy of the merger's activity counters.
func (m *Merger) Stats() MergeStats { return m.stats }
