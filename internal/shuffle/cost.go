package shuffle

import "swift/internal/cluster"

// CostInput describes one shuffle edge for the cost model. The shuffle-
// service fields (SpilledFrac, Replicas, PushMerge) default to zero values
// that reproduce the v1 cost exactly.
type CostInput struct {
	M, N             int   // producer / consumer task counts
	ProducerMachines int   // machines hosting producers (Y on the write side)
	ConsumerMachines int   // machines hosting consumers
	Bytes            int64 // total shuffle volume
	ClusterMachines  int   // machines in the whole cluster
	ActiveConns      int   // background connections already live
	Model            *cluster.Model
	// SpilledFrac is the fraction of the edge's bytes expected to be read
	// back from the cache workers' disk tier rather than memory, in [0, 1].
	// Spilled segments are a first-class tier: consumers still find them,
	// but pay a disk pass (Breakdown.TierRead) on the read side.
	SpilledFrac float64
	// Replicas is the replication factor R for cache-backed modes; values
	// ≤ 1 add no cost. Each extra copy pays a network transfer plus one
	// memory copy on the write side (Breakdown.Replicate).
	Replicas int
	// PushMerge models push-based partition merging for Remote shuffle:
	// producers push fragments to reducer-side cache workers that merge
	// them into per-reducer blocks, so consumer fetch fan-in collapses
	// from N pullers per worker to the consumer machine count, at the
	// price of one extra merge copy.
	PushMerge bool
}

// Breakdown itemises the cost of performing one shuffle in one mode.
// Setup, Transfer, Copy and Disk components are in seconds; a stage's
// shuffle-write cost is Write(), its consumer's shuffle-read cost is Read().
type Breakdown struct {
	Mode        Mode
	Conns       int     // total TCP connections established
	RetransRate float64 // modeled retransmission rate
	Setup       float64 // connection-establishment time on the critical task
	Transfer    float64 // network transfer incl. retransmission slowdown
	Copy        float64 // additional memory copies vs Direct
	DiskWrite   float64 // file-based shuffle only
	DiskRead    float64 // file-based shuffle only
	// TierRead is the disk-tier read-back cost for cache-backed modes:
	// the SpilledFrac portion of the bytes pays a disk pass at fetch time.
	TierRead float64
	// Replicate is the extra write-side cost of the R−1 replica copies.
	Replicate float64
}

// Total returns the full end-to-end shuffle time.
func (b Breakdown) Total() float64 {
	return b.Setup + b.Transfer + b.Copy + b.DiskWrite + b.DiskRead + b.TierRead + b.Replicate
}

// Write returns the producer-side portion (shuffle-write phase in Fig. 9b):
// half of the copies, disk write for file-based modes, and replica fan-out.
func (b Breakdown) Write() float64 {
	return b.Copy/2 + b.DiskWrite + b.Transfer/2 + b.Replicate
}

// Read returns the consumer-side portion (shuffle-read phase): setup,
// the other transfer half, remaining copies, and disk reads (file-based
// shuffle or the cache workers' disk tier).
func (b Breakdown) Read() float64 {
	return b.Setup + b.Copy/2 + b.DiskRead + b.Transfer/2 + b.TierRead
}

// Cost models one shuffle in the given mode. The model follows Section
// III-B and the Fig. 12 discussion:
//
//   - connection setup: each task establishes its per-task connections with
//     bounded parallelism at a latency that grows with cluster congestion
//     ("establishing a TCP connection would take hundreds of milliseconds
//     in a congested network");
//   - retransmission: Direct's rate grows with the connection count up to
//     the measured 3%, Cache-Worker modes stay at the measured <0.02%;
//   - incast: the per-machine inbound stream count degrades effective
//     bandwidth ("the TCP incast problem"), saturating at MaxIncast;
//   - copies: Local adds two memory copies, Remote one;
//   - Disk mode pays a write and a read pass through the shuffle disks.
func Cost(mode Mode, in CostInput) Breakdown {
	if in.M <= 0 || in.N <= 0 {
		return Breakdown{Mode: mode}
	}
	m := in.Model
	if m == nil {
		m = cluster.DefaultModel()
	}
	py := in.ProducerMachines
	cy := in.ConsumerMachines
	if py <= 0 {
		py = 1
	}
	if cy <= 0 {
		cy = 1
	}
	y := py
	if cy > y {
		y = cy
	}

	b := Breakdown{Mode: mode}
	b.Conns = Connections(mode, in.M, in.N, y)

	congestion := m.Congestion(in.ActiveConns+b.Conns, in.ClusterMachines)
	prodConns, consConns := PerTaskConns(mode, in.M, in.N, y)

	// Machine-local connections (task to its own Cache Worker) skip the
	// network and establish at base latency regardless of congestion.
	switch mode {
	case Local:
		b.Setup = m.ConnSetupBase * 2
	case Disk:
		b.Setup = m.ConnSetupTime(consConns, congestion)
	default:
		ps := m.ConnSetupTime(prodConns, congestion)
		cs := m.ConnSetupTime(consConns, congestion)
		if cs > ps {
			ps = cs
		}
		b.Setup = ps
	}

	// Retransmission.
	switch mode {
	case Direct:
		b.RetransRate = m.RetransRate(b.Conns)
	default:
		b.RetransRate = m.CachedRetransRate
	}

	// Incast at Cache Worker hotspots: a Remote-mode Cache Worker serves
	// all N consumers concurrently; the Local mesh fans in from at most
	// the producer-side machine count; Direct's many short flows show up
	// in the retransmission term instead (the paper's 3% measurement).
	var streams float64
	switch mode {
	case Remote:
		streams = float64(in.N)
	case Local:
		streams = float64(py)
	case Disk:
		streams = float64(in.N) / float64(cy) * float64(min(in.M, py))
	case Direct:
		// many short flows: costed through the retransmission term above
	}
	if in.PushMerge && mode == Remote {
		// Push-based merging: fragments land reducer-side and consumers
		// fetch merged blocks from their local worker, so the fan-in at
		// any worker collapses from N pullers to the consumer machine
		// count. The merge append costs one extra memory copy.
		streams = float64(cy)
		b.Copy += m.MemCopyTime(in.Bytes, y, 1)
	}
	incast := 1 + streams/m.IncastStreamCapacity
	if incast > m.MaxIncastFactor {
		incast = m.MaxIncastFactor
	}
	if mode == Local {
		incast *= m.LocalHopFactor // extra store-and-forward hop
	}

	transferMachines := py
	if cy < py {
		transferMachines = cy // the narrower side bottlenecks
	}
	b.Transfer = m.NetTransferTime(in.Bytes, transferMachines) * incast * m.RetransSlowdown(b.RetransRate)
	b.Copy += m.MemCopyTime(in.Bytes, y, ExtraCopies(mode))
	if mode == Disk {
		// File-based shuffle writes M×N block files; seek overhead
		// grows with the block count (Riffle's small-file problem).
		seek := m.DiskSeekFactor(in.M * in.N)
		b.DiskWrite = m.DiskTime(in.Bytes, py) * seek
		b.DiskRead = m.DiskTime(in.Bytes, py) * seek
	}
	if mode == Local || mode == Remote {
		// Shuffle-service extensions, all zero by default. The disk tier:
		// the spilled fraction of the bytes pays a read-back pass from the
		// producer-side workers' disks. Replication: each of the R−1 extra
		// copies pays a transfer plus one memory copy on the write side.
		if f := in.SpilledFrac; f > 0 {
			if f > 1 {
				f = 1
			}
			b.TierRead = m.DiskTime(int64(float64(in.Bytes)*f), py)
		}
		if in.Replicas > 1 {
			b.Replicate = float64(in.Replicas-1) *
				(m.NetTransferTime(in.Bytes, py) + m.MemCopyTime(in.Bytes, y, 1))
		}
	}
	return b
}

// Adaptive selects a mode from the edge size with the given thresholds and
// returns its cost; it is the runtime policy Swift applies per edge.
func Adaptive(t Thresholds, in CostInput) Breakdown {
	return Cost(t.Select(in.M*in.N), in)
}
