package shuffle

import "swift/internal/cluster"

// CostInput describes one shuffle edge for the cost model.
type CostInput struct {
	M, N             int   // producer / consumer task counts
	ProducerMachines int   // machines hosting producers (Y on the write side)
	ConsumerMachines int   // machines hosting consumers
	Bytes            int64 // total shuffle volume
	ClusterMachines  int   // machines in the whole cluster
	ActiveConns      int   // background connections already live
	Model            *cluster.Model
}

// Breakdown itemises the cost of performing one shuffle in one mode.
// Setup, Transfer, Copy and Disk components are in seconds; a stage's
// shuffle-write cost is Write(), its consumer's shuffle-read cost is Read().
type Breakdown struct {
	Mode        Mode
	Conns       int     // total TCP connections established
	RetransRate float64 // modeled retransmission rate
	Setup       float64 // connection-establishment time on the critical task
	Transfer    float64 // network transfer incl. retransmission slowdown
	Copy        float64 // additional memory copies vs Direct
	DiskWrite   float64 // file-based shuffle only
	DiskRead    float64 // file-based shuffle only
}

// Total returns the full end-to-end shuffle time.
func (b Breakdown) Total() float64 {
	return b.Setup + b.Transfer + b.Copy + b.DiskWrite + b.DiskRead
}

// Write returns the producer-side portion (shuffle-write phase in Fig. 9b):
// half of the copies plus disk write for file-based modes.
func (b Breakdown) Write() float64 {
	return b.Copy/2 + b.DiskWrite + b.Transfer/2
}

// Read returns the consumer-side portion (shuffle-read phase): setup,
// the other transfer half, remaining copies and disk read.
func (b Breakdown) Read() float64 {
	return b.Setup + b.Copy/2 + b.DiskRead + b.Transfer/2
}

// Cost models one shuffle in the given mode. The model follows Section
// III-B and the Fig. 12 discussion:
//
//   - connection setup: each task establishes its per-task connections with
//     bounded parallelism at a latency that grows with cluster congestion
//     ("establishing a TCP connection would take hundreds of milliseconds
//     in a congested network");
//   - retransmission: Direct's rate grows with the connection count up to
//     the measured 3%, Cache-Worker modes stay at the measured <0.02%;
//   - incast: the per-machine inbound stream count degrades effective
//     bandwidth ("the TCP incast problem"), saturating at MaxIncast;
//   - copies: Local adds two memory copies, Remote one;
//   - Disk mode pays a write and a read pass through the shuffle disks.
func Cost(mode Mode, in CostInput) Breakdown {
	if in.M <= 0 || in.N <= 0 {
		return Breakdown{Mode: mode}
	}
	m := in.Model
	if m == nil {
		m = cluster.DefaultModel()
	}
	py := in.ProducerMachines
	cy := in.ConsumerMachines
	if py <= 0 {
		py = 1
	}
	if cy <= 0 {
		cy = 1
	}
	y := py
	if cy > y {
		y = cy
	}

	b := Breakdown{Mode: mode}
	b.Conns = Connections(mode, in.M, in.N, y)

	congestion := m.Congestion(in.ActiveConns+b.Conns, in.ClusterMachines)
	prodConns, consConns := PerTaskConns(mode, in.M, in.N, y)

	// Machine-local connections (task to its own Cache Worker) skip the
	// network and establish at base latency regardless of congestion.
	switch mode {
	case Local:
		b.Setup = m.ConnSetupBase * 2
	case Disk:
		b.Setup = m.ConnSetupTime(consConns, congestion)
	default:
		ps := m.ConnSetupTime(prodConns, congestion)
		cs := m.ConnSetupTime(consConns, congestion)
		if cs > ps {
			ps = cs
		}
		b.Setup = ps
	}

	// Retransmission.
	switch mode {
	case Direct:
		b.RetransRate = m.RetransRate(b.Conns)
	default:
		b.RetransRate = m.CachedRetransRate
	}

	// Incast at Cache Worker hotspots: a Remote-mode Cache Worker serves
	// all N consumers concurrently; the Local mesh fans in from at most
	// the producer-side machine count; Direct's many short flows show up
	// in the retransmission term instead (the paper's 3% measurement).
	var streams float64
	switch mode {
	case Remote:
		streams = float64(in.N)
	case Local:
		streams = float64(py)
	case Disk:
		streams = float64(in.N) / float64(cy) * float64(min(in.M, py))
	case Direct:
		// many short flows: costed through the retransmission term above
	}
	incast := 1 + streams/m.IncastStreamCapacity
	if incast > m.MaxIncastFactor {
		incast = m.MaxIncastFactor
	}
	if mode == Local {
		incast *= m.LocalHopFactor // extra store-and-forward hop
	}

	transferMachines := py
	if cy < py {
		transferMachines = cy // the narrower side bottlenecks
	}
	b.Transfer = m.NetTransferTime(in.Bytes, transferMachines) * incast * m.RetransSlowdown(b.RetransRate)
	b.Copy = m.MemCopyTime(in.Bytes, y, ExtraCopies(mode))
	if mode == Disk {
		// File-based shuffle writes M×N block files; seek overhead
		// grows with the block count (Riffle's small-file problem).
		seek := m.DiskSeekFactor(in.M * in.N)
		b.DiskWrite = m.DiskTime(in.Bytes, py) * seek
		b.DiskRead = m.DiskTime(in.Bytes, py) * seek
	}
	return b
}

// Adaptive selects a mode from the edge size with the given thresholds and
// returns its cost; it is the runtime policy Swift applies per edge.
func Adaptive(t Thresholds, in CostInput) Breakdown {
	return Cost(t.Select(in.M*in.N), in)
}
