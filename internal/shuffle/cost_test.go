package shuffle

import (
	"testing"

	"swift/internal/cluster"
)

func input(m, n, y int, bytes int64) CostInput {
	return CostInput{
		M: m, N: n,
		ProducerMachines: y, ConsumerMachines: y,
		Bytes:           bytes,
		ClusterMachines: 2000,
		Model:           cluster.DefaultModel(),
	}
}

// TestFig12Orderings asserts the central Fig. 12 result: Direct wins for
// small shuffles, Remote for medium, Local for large (total shuffle time).
func TestFig12Orderings(t *testing.T) {
	small := input(50, 50, 5, 2<<30)
	medium := input(200, 200, 10, 20<<30)
	large := input(1000, 1000, 50, 100<<30)

	cost := func(m Mode, in CostInput) float64 { return Cost(m, in).Total() }

	if !(cost(Direct, small) < cost(Remote, small) && cost(Direct, small) < cost(Local, small)) {
		t.Errorf("small: direct=%.3f remote=%.3f local=%.3f",
			cost(Direct, small), cost(Remote, small), cost(Local, small))
	}
	if !(cost(Remote, medium) < cost(Direct, medium) && cost(Remote, medium) < cost(Local, medium)) {
		t.Errorf("medium: direct=%.3f remote=%.3f local=%.3f",
			cost(Direct, medium), cost(Remote, medium), cost(Local, medium))
	}
	if !(cost(Local, large) < cost(Direct, large) && cost(Local, large) < cost(Remote, large)) {
		t.Errorf("large: direct=%.3f remote=%.3f local=%.3f",
			cost(Direct, large), cost(Remote, large), cost(Local, large))
	}
}

func TestAdaptiveMatchesBestMode(t *testing.T) {
	th := DefaultThresholds()
	for _, in := range []CostInput{
		input(50, 50, 5, 2<<30),        // small -> Direct
		input(200, 200, 10, 20<<30),    // medium -> Remote
		input(1000, 1000, 50, 100<<30), // large -> Local
	} {
		got := Adaptive(th, in)
		want := th.Select(in.M * in.N)
		if got.Mode != want {
			t.Errorf("Adaptive picked %v for edge size %d, want %v", got.Mode, in.M*in.N, want)
		}
	}
}

func TestDirectRetransGrowsWithFanout(t *testing.T) {
	small := Cost(Direct, input(50, 50, 5, 1<<30))
	large := Cost(Direct, input(1500, 1500, 75, 1<<30))
	if large.RetransRate <= small.RetransRate {
		t.Errorf("retrans small=%.5f large=%.5f", small.RetransRate, large.RetransRate)
	}
	if large.RetransRate > 0.03 {
		t.Errorf("retrans rate above the measured 3%% ceiling: %.4f", large.RetransRate)
	}
	// Cache-Worker modes stay at the measured <0.02%.
	if got := Cost(Local, input(1500, 1500, 75, 1<<30)).RetransRate; got > 0.0002 {
		t.Errorf("local retrans = %.5f", got)
	}
}

func TestDiskModeSlowerThanMemoryModes(t *testing.T) {
	in := input(200, 200, 10, 20<<30)
	disk := Cost(Disk, in).Total()
	for _, m := range []Mode{Direct, Local, Remote} {
		if Cost(m, in).Total() >= disk {
			t.Errorf("%v not faster than Disk (%.2f)", m, disk)
		}
	}
	if b := Cost(Disk, in); b.DiskWrite <= 0 || b.DiskRead <= 0 {
		t.Error("disk mode missing disk phases")
	}
	if b := Cost(Local, in); b.DiskWrite != 0 || b.DiskRead != 0 {
		t.Error("memory mode charged disk phases")
	}
}

func TestBreakdownPhases(t *testing.T) {
	b := Cost(Local, input(100, 100, 10, 10<<30))
	if b.Total() <= 0 {
		t.Fatal("zero total")
	}
	sum := b.Write() + b.Read()
	if diff := sum - b.Total(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Write+Read = %.6f, Total = %.6f", sum, b.Total())
	}
}

func TestCostDefensiveDefaults(t *testing.T) {
	// Nil model and zero machine counts must not panic or divide by zero.
	b := Cost(Direct, CostInput{M: 10, N: 10, Bytes: 1 << 20})
	if b.Total() <= 0 {
		t.Error("degenerate input gave non-positive cost")
	}
	if b := Cost(Remote, CostInput{M: 0, N: 0}); b.Total() != 0 {
		t.Errorf("empty shuffle cost = %f", b.Total())
	}
}

func TestCostMonotoneInBytes(t *testing.T) {
	for _, m := range []Mode{Direct, Local, Remote, Disk} {
		lo := Cost(m, input(100, 100, 10, 1<<30)).Total()
		hi := Cost(m, input(100, 100, 10, 64<<30)).Total()
		if hi <= lo {
			t.Errorf("%v: cost not monotone in bytes (%.3f vs %.3f)", m, lo, hi)
		}
	}
}
