package shuffle

import (
	"testing"

	"swift/internal/cluster"
)

func input(m, n, y int, bytes int64) CostInput {
	return CostInput{
		M: m, N: n,
		ProducerMachines: y, ConsumerMachines: y,
		Bytes:           bytes,
		ClusterMachines: 2000,
		Model:           cluster.DefaultModel(),
	}
}

// TestFig12Orderings asserts the central Fig. 12 result: Direct wins for
// small shuffles, Remote for medium, Local for large (total shuffle time).
func TestFig12Orderings(t *testing.T) {
	small := input(50, 50, 5, 2<<30)
	medium := input(200, 200, 10, 20<<30)
	large := input(1000, 1000, 50, 100<<30)

	cost := func(m Mode, in CostInput) float64 { return Cost(m, in).Total() }

	if !(cost(Direct, small) < cost(Remote, small) && cost(Direct, small) < cost(Local, small)) {
		t.Errorf("small: direct=%.3f remote=%.3f local=%.3f",
			cost(Direct, small), cost(Remote, small), cost(Local, small))
	}
	if !(cost(Remote, medium) < cost(Direct, medium) && cost(Remote, medium) < cost(Local, medium)) {
		t.Errorf("medium: direct=%.3f remote=%.3f local=%.3f",
			cost(Direct, medium), cost(Remote, medium), cost(Local, medium))
	}
	if !(cost(Local, large) < cost(Direct, large) && cost(Local, large) < cost(Remote, large)) {
		t.Errorf("large: direct=%.3f remote=%.3f local=%.3f",
			cost(Direct, large), cost(Remote, large), cost(Local, large))
	}
}

func TestAdaptiveMatchesBestMode(t *testing.T) {
	th := DefaultThresholds()
	for _, in := range []CostInput{
		input(50, 50, 5, 2<<30),        // small -> Direct
		input(200, 200, 10, 20<<30),    // medium -> Remote
		input(1000, 1000, 50, 100<<30), // large -> Local
	} {
		got := Adaptive(th, in)
		want := th.Select(in.M * in.N)
		if got.Mode != want {
			t.Errorf("Adaptive picked %v for edge size %d, want %v", got.Mode, in.M*in.N, want)
		}
	}
}

func TestDirectRetransGrowsWithFanout(t *testing.T) {
	small := Cost(Direct, input(50, 50, 5, 1<<30))
	large := Cost(Direct, input(1500, 1500, 75, 1<<30))
	if large.RetransRate <= small.RetransRate {
		t.Errorf("retrans small=%.5f large=%.5f", small.RetransRate, large.RetransRate)
	}
	if large.RetransRate > 0.03 {
		t.Errorf("retrans rate above the measured 3%% ceiling: %.4f", large.RetransRate)
	}
	// Cache-Worker modes stay at the measured <0.02%.
	if got := Cost(Local, input(1500, 1500, 75, 1<<30)).RetransRate; got > 0.0002 {
		t.Errorf("local retrans = %.5f", got)
	}
}

func TestDiskModeSlowerThanMemoryModes(t *testing.T) {
	in := input(200, 200, 10, 20<<30)
	disk := Cost(Disk, in).Total()
	for _, m := range []Mode{Direct, Local, Remote} {
		if Cost(m, in).Total() >= disk {
			t.Errorf("%v not faster than Disk (%.2f)", m, disk)
		}
	}
	if b := Cost(Disk, in); b.DiskWrite <= 0 || b.DiskRead <= 0 {
		t.Error("disk mode missing disk phases")
	}
	if b := Cost(Local, in); b.DiskWrite != 0 || b.DiskRead != 0 {
		t.Error("memory mode charged disk phases")
	}
}

func TestBreakdownPhases(t *testing.T) {
	b := Cost(Local, input(100, 100, 10, 10<<30))
	if b.Total() <= 0 {
		t.Fatal("zero total")
	}
	sum := b.Write() + b.Read()
	if diff := sum - b.Total(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Write+Read = %.6f, Total = %.6f", sum, b.Total())
	}
}

func TestCostDefensiveDefaults(t *testing.T) {
	// Nil model and zero machine counts must not panic or divide by zero.
	b := Cost(Direct, CostInput{M: 10, N: 10, Bytes: 1 << 20})
	if b.Total() <= 0 {
		t.Error("degenerate input gave non-positive cost")
	}
	if b := Cost(Remote, CostInput{M: 0, N: 0}); b.Total() != 0 {
		t.Errorf("empty shuffle cost = %f", b.Total())
	}
}

func TestCostMonotoneInBytes(t *testing.T) {
	for _, m := range []Mode{Direct, Local, Remote, Disk} {
		lo := Cost(m, input(100, 100, 10, 1<<30)).Total()
		hi := Cost(m, input(100, 100, 10, 64<<30)).Total()
		if hi <= lo {
			t.Errorf("%v: cost not monotone in bytes (%.3f vs %.3f)", m, lo, hi)
		}
	}
}

// TestCostServiceFieldsDefaultToV1 pins the zero-value contract: leaving
// SpilledFrac, Replicas and PushMerge at their zero values reproduces the
// v1 breakdown exactly, so existing same-seed runs stay byte-identical.
func TestCostServiceFieldsDefaultToV1(t *testing.T) {
	for _, m := range []Mode{Direct, Local, Remote, Disk} {
		in := input(200, 200, 10, 20<<30)
		base := Cost(m, in)
		in.Replicas = 1 // R=1 means "no extra copies", same as unset
		again := Cost(m, in)
		if base != again {
			t.Errorf("%v: Replicas=1 changed the breakdown: %+v vs %+v", m, base, again)
		}
		if base.TierRead != 0 || base.Replicate != 0 {
			t.Errorf("%v: zero inputs charged service components: %+v", m, base)
		}
	}
}

func TestCostDiskTierReadBack(t *testing.T) {
	in := input(200, 200, 10, 20<<30)
	in.SpilledFrac = 0.5
	half := Cost(Remote, in)
	if half.TierRead <= 0 {
		t.Fatal("SpilledFrac=0.5 charged no tier read")
	}
	in.SpilledFrac = 1.0
	full := Cost(Remote, in)
	if full.TierRead <= half.TierRead {
		t.Errorf("tier read not monotone in spilled fraction: %.3f vs %.3f", half.TierRead, full.TierRead)
	}
	in.SpilledFrac = 5 // clamped to 1
	if got := Cost(Remote, in).TierRead; got != full.TierRead {
		t.Errorf("SpilledFrac not clamped: %.3f vs %.3f", got, full.TierRead)
	}
	// The tier belongs to cache-backed modes only.
	in.SpilledFrac = 0.5
	if got := Cost(Direct, in).TierRead; got != 0 {
		t.Errorf("Direct charged tier read %.3f", got)
	}
	// Read-side charge: consumers pay it.
	if half.Read() <= Cost(Remote, input(200, 200, 10, 20<<30)).Read() {
		t.Error("tier read not charged to the read phase")
	}
}

func TestCostReplicationChargesWriteSide(t *testing.T) {
	in := input(200, 200, 10, 20<<30)
	base := Cost(Remote, in)
	in.Replicas = 3
	rep := Cost(Remote, in)
	if rep.Replicate <= 0 {
		t.Fatal("R=3 charged no replication cost")
	}
	if rep.Write() <= base.Write() {
		t.Error("replication not charged to the write phase")
	}
	if rep.Read() != base.Read() {
		t.Error("replication leaked into the read phase")
	}
	in.Replicas = 2
	if two := Cost(Remote, in).Replicate; two >= rep.Replicate {
		t.Errorf("replicate cost not monotone in R: R=2 %.3f vs R=3 %.3f", two, rep.Replicate)
	}
}

// TestCostPushMergeCutsRemoteIncast verifies push-based merging pays off
// where it should: a wide Remote edge whose fan-in incast dominates gets
// cheaper when fragments are merged reducer-side, despite the merge copy.
func TestCostPushMergeCutsRemoteIncast(t *testing.T) {
	in := input(1000, 1000, 20, 40<<30)
	pull := Cost(Remote, in)
	in.PushMerge = true
	push := Cost(Remote, in)
	if push.Total() >= pull.Total() {
		t.Errorf("push-merge did not help wide remote edge: push=%.3f pull=%.3f", push.Total(), pull.Total())
	}
	if push.Copy <= pull.Copy {
		t.Error("push-merge should pay an extra merge copy")
	}
	// PushMerge is a Remote-mode concept; other modes ignore it.
	in2 := input(1000, 1000, 20, 40<<30)
	in2.PushMerge = true
	if got, want := Cost(Local, in2), Cost(Local, input(1000, 1000, 20, 40<<30)); got != want {
		t.Errorf("PushMerge changed Local cost: %+v vs %+v", got, want)
	}
}
