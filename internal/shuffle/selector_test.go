package shuffle

import "testing"

func TestLoadSelectorZeroValueNeverOverrides(t *testing.T) {
	var s LoadSelector
	for _, m := range []Mode{Direct, Local, Remote, Disk} {
		for _, l := range []Load{{}, {IncastStreams: 1e9}, {MemHeadroom: 0}, {IncastStreams: 1e9, MemHeadroom: 0}} {
			got, reason, ok := s.Adapt(m, l)
			if ok || got != m || reason != "" {
				t.Errorf("zero selector overrode %v under %+v: -> %v (%q)", m, l, got, reason)
			}
		}
	}
}

func TestLoadSelectorIncastEscalation(t *testing.T) {
	s := LoadSelector{MaxIncastStreams: 100}
	if got, reason, ok := s.Adapt(Direct, Load{IncastStreams: 250, MemHeadroom: 0.9}); !ok || got != Remote || reason != "incast" {
		t.Errorf("Direct under incast -> %v (%q, %v)", got, reason, ok)
	}
	if _, _, ok := s.Adapt(Direct, Load{IncastStreams: 100, MemHeadroom: 0.9}); ok {
		t.Error("boundary fan-in (== max) should not override")
	}
	// Cache-backed modes absorb fan-in themselves: no escalation.
	if _, _, ok := s.Adapt(Remote, Load{IncastStreams: 1e6, MemHeadroom: 0.9}); ok {
		t.Error("Remote escalated under incast")
	}
}

func TestLoadSelectorHeadroomDegradation(t *testing.T) {
	s := LoadSelector{MinHeadroom: 0.2}
	for _, m := range []Mode{Local, Remote} {
		if got, reason, ok := s.Adapt(m, Load{MemHeadroom: 0.05}); !ok || got != Direct || reason != "low-headroom" {
			t.Errorf("%v at 5%% headroom -> %v (%q, %v)", m, got, reason, ok)
		}
		if _, _, ok := s.Adapt(m, Load{MemHeadroom: 0.5}); ok {
			t.Errorf("%v overrode with ample headroom", m)
		}
	}
	// Direct has no cache-worker memory to run out of.
	if _, _, ok := s.Adapt(Direct, Load{MemHeadroom: 0}); ok {
		t.Error("Direct degraded on headroom")
	}
}

func TestLoadSelectorDiskNeverAdapts(t *testing.T) {
	s := LoadSelector{MaxIncastStreams: 1, MinHeadroom: 0.99}
	if got, _, ok := s.Adapt(Disk, Load{IncastStreams: 1e9, MemHeadroom: 0}); ok || got != Disk {
		t.Errorf("Disk adapted to %v", got)
	}
}
