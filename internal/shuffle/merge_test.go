package shuffle

import (
	"fmt"
	"testing"
)

func TestMergerFlushOnThreshold(t *testing.T) {
	w := NewCacheWorker(1 << 20)
	m := NewMerger(w, 100, 1)

	// Fragments below the threshold accumulate without sealing.
	for i := 0; i < 4; i++ {
		if err := m.Push("r0", nil, 20); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Blocks("r0"); got != 0 {
		t.Fatalf("sealed %d blocks below threshold", got)
	}
	// The fifth fragment crosses 100 bytes and seals block #0.
	if err := m.Push("r0", nil, 25); err != nil {
		t.Fatal(err)
	}
	if got := m.Blocks("r0"); got != 1 {
		t.Fatalf("Blocks = %d, want 1", got)
	}
	if !w.Has(BlockKey("r0", 0)) {
		t.Fatal("sealed block not in the backing worker")
	}
	st := m.Stats()
	if st.Fragments != 5 || st.FragmentBytes != 105 {
		t.Errorf("fragment stats = %+v", st)
	}
	if st.Blocks != 1 || st.MergedBytes != 105 {
		t.Errorf("block stats = %+v", st)
	}
	if got := st.FanIn(); got != 5 {
		t.Errorf("FanIn = %v, want 5", got)
	}
}

func TestMergerSealFlushesPartialBlocks(t *testing.T) {
	w := NewCacheWorker(1 << 20)
	m := NewMerger(w, 0, 2) // no auto-flush: only Seal writes

	reducers := []string{"r2", "r0", "r1"}
	for _, r := range reducers {
		for i := 0; i < 3; i++ {
			if err := m.Push(r, []byte{byte(i)}, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := m.Stats(); st.Blocks != 0 {
		t.Fatalf("sealed %d blocks with flushSize=0", st.Blocks)
	}
	if err := m.Seal(); err != nil {
		t.Fatal(err)
	}
	for _, r := range reducers {
		if m.Blocks(r) != 1 {
			t.Errorf("%s: Blocks = %d, want 1", r, m.Blocks(r))
		}
		payload, _, ok := w.Get(BlockKey(r, 0))
		if !ok {
			t.Fatalf("%s: merged block missing", r)
		}
		if len(payload) != 3 {
			t.Errorf("%s: %d fragments in block, want 3", r, len(payload))
		}
	}
	// Sealing again is a no-op: empty accumulators are skipped.
	if err := m.Seal(); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Blocks != 3 {
		t.Errorf("double Seal grew blocks: %d", st.Blocks)
	}
}

// TestMergerFanInReduction is the point of push-based merging: a consumer
// fetches far fewer blocks than there were producer fragments.
func TestMergerFanInReduction(t *testing.T) {
	w := NewCacheWorker(10 << 20)
	m := NewMerger(w, 4096, 1)

	const producers = 200
	for p := 0; p < producers; p++ {
		if err := m.Push("part7", nil, 128); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Seal(); err != nil {
		t.Fatal(err)
	}
	blocks := m.Blocks("part7")
	if blocks >= producers/10 {
		t.Fatalf("merging left %d blocks for %d fragments", blocks, producers)
	}
	// Every sealed block is fetchable, and together they hold all the bytes.
	var total int64
	for i := 0; i < blocks; i++ {
		if _, _, ok := w.Get(BlockKey("part7", i)); !ok {
			t.Fatalf("block %d missing", i)
		}
	}
	total = m.Stats().MergedBytes
	if total != producers*128 {
		t.Errorf("merged bytes = %d, want %d", total, producers*128)
	}
	if fi := m.Stats().FanIn(); fi < 10 {
		t.Errorf("fan-in reduction only %.1fx", fi)
	}
}

func TestMergerRejectsNegativeSize(t *testing.T) {
	m := NewMerger(NewCacheWorker(1<<20), 0, 1)
	if err := m.Push("r0", nil, -1); err == nil {
		t.Fatal("negative fragment size accepted")
	}
}

func TestMergerSpillAccounting(t *testing.T) {
	// A tiny worker spills while absorbing sealed blocks; the merger
	// surfaces those bytes so the driver can charge disk cost.
	w := NewCacheWorker(50)
	m := NewMerger(w, 40, 1)
	for i := 0; i < 6; i++ {
		if err := m.Push(fmt.Sprintf("r%d", i%2), nil, 20); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Seal(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().SpillBytes == 0 {
		t.Error("over-capacity merge reported no spill bytes")
	}
	if m.Stats().SpillBytes != w.Stats().SpillBytes {
		t.Errorf("merger spill %d != worker spill %d", m.Stats().SpillBytes, w.Stats().SpillBytes)
	}
}
