package shuffle

// Load is a point-in-time sample of the pressures FuxiShuffle's adaptive
// mode switching reacts to. Drivers fill it from deterministic sources
// (the cluster's connection census, the obs registry's cache-worker
// gauges), so the same seed always samples the same load.
type Load struct {
	// IncastStreams is the current fan-in pressure: concurrent inbound
	// streams at the hottest machine, or a proxy such as active
	// connections per machine.
	IncastStreams float64
	// MemHeadroom is the cache workers' free-memory fraction in [0, 1]
	// (1 = empty, 0 = full).
	MemHeadroom float64
}

// LoadSelector overrides static threshold selection per edge when the
// observed load says the statically chosen mode would misbehave: Direct
// edges escalate to Remote under incast pressure (Cache Workers absorb the
// fan-in), and cache-backed modes fall back to Direct when the workers
// have no memory headroom left to buffer. Zero thresholds disable the
// corresponding override, so the zero value never overrides anything.
type LoadSelector struct {
	// MaxIncastStreams escalates Direct to Remote above this fan-in
	// (0 disables).
	MaxIncastStreams float64
	// MinHeadroom degrades Local/Remote to Direct below this free-memory
	// fraction (0 disables).
	MinHeadroom float64
}

// Adapt returns the mode to use for an edge given its statically selected
// mode and the sampled load, a short reason tag for the override, and
// whether an override applies (false: use the static mode unchanged).
func (s LoadSelector) Adapt(static Mode, l Load) (Mode, string, bool) {
	switch static {
	case Local, Remote:
		if s.MinHeadroom > 0 && l.MemHeadroom < s.MinHeadroom {
			return Direct, "low-headroom", true
		}
	case Direct:
		if s.MaxIncastStreams > 0 && l.IncastStreams > s.MaxIncastStreams {
			return Remote, "incast", true
		}
	case Disk:
		// The file-based baseline never adapts: it exists to model
		// Spark/Bubble, not Swift's runtime.
	}
	return static, "", false
}
