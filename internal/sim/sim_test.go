package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500000 {
		t.Errorf("FromSeconds(1.5) = %d", got)
	}
	if got := FromSeconds(-2); got != 0 {
		t.Errorf("FromSeconds(-2) = %d", got)
	}
	if got := Time(2500000).Seconds(); got != 2.5 {
		t.Errorf("Seconds() = %g", got)
	}
	if got := Time(1500000).String(); got != "1.500000s" {
		t.Errorf("String() = %q", got)
	}
}

func TestRunOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.At(10, func() { order = append(order, 11) }) // same time: FIFO
	end := e.Run()
	if end != 30 {
		t.Errorf("end time = %d", end)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.At(5, func() {
		fired = append(fired, e.Now())
		e.After(10, func() { fired = append(fired, e.Now()) })
		e.After(0, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 3 || fired[0] != 5 || fired[1] != 5 || fired[2] != 15 {
		t.Errorf("fired = %v", fired)
	}
}

func TestPastEventsRunNow(t *testing.T) {
	e := NewEngine(1)
	var at Time = -1
	e.At(100, func() {
		e.At(50, func() { at = e.Now() }) // in the past
	})
	e.Run()
	if at != 100 {
		t.Errorf("past event ran at %d, want 100", at)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	for _, tm := range []Time{10, 20, 30, 40} {
		e.At(tm, func() { ran++ })
	}
	e.RunUntil(25)
	if ran != 2 || e.Now() != 25 || e.Pending() != 2 {
		t.Errorf("ran=%d now=%d pending=%d", ran, e.Now(), e.Pending())
	}
	e.Run()
	if ran != 4 || e.Now() != 40 {
		t.Errorf("after Run: ran=%d now=%d", ran, e.Now())
	}
	// RunUntil past the last event advances the clock.
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Errorf("clock = %d, want 100", e.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		e := NewEngine(42)
		var vals []float64
		for i := 0; i < 50; i++ {
			e.At(Time(i%7)*100, func() { vals = append(vals, e.Rand().Float64()) })
		}
		e.Run()
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different runs")
		}
	}
	if got := NewEngine(42).Steps(); got != 0 {
		t.Errorf("fresh engine steps = %d", got)
	}
}

// TestEventOrderProperty: for random schedules, callbacks observe a
// monotonically non-decreasing clock and every event runs exactly once.
func TestEventOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine(seed)
		n := 1 + r.Intn(300)
		ran := 0
		last := Time(-1)
		okOrder := true
		for i := 0; i < n; i++ {
			e.At(Time(r.Intn(1000)), func() {
				if e.Now() < last {
					okOrder = false
				}
				last = e.Now()
				ran++
			})
		}
		e.Run()
		return okOrder && ran == n && e.Steps() == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
