// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock in integer microseconds, an event heap with stable
// ordering, and a seeded random source. Every large-scale experiment in the
// repository (the paper's 100- and 2,000-node clusters, up to 140,000
// executors) runs on this kernel; identical seeds reproduce identical
// schedules bit for bit.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a simulated instant in microseconds since the start of the run.
type Time int64

// Duration is a simulated interval in microseconds.
type Duration = Time

// Microsecond, Millisecond and Second are Duration units.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000
	Second      Duration = 1000000
)

// Seconds converts a Time or Duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts floating-point seconds to a Duration, rounding to
// the nearest microsecond and flooring negative inputs at zero (cost models
// occasionally produce tiny negative values from subtraction).
func FromSeconds(s float64) Duration {
	if s <= 0 {
		return 0
	}
	return Duration(s*float64(Second) + 0.5)
}

// String renders the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

type event struct {
	at  Time
	seq int64 // tie-break: FIFO among same-time events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all scheduling happens from event callbacks or before Run.
type Engine struct {
	now    Time
	seq    int64
	events eventHeap
	rng    *rand.Rand
	steps  int64
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() int64 { return e.steps }

// At schedules fn to run at the given absolute time. Times in the past run
// at the current instant (ordered after already-queued current events).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now (negative d means now).
func (e *Engine) After(d Duration, fn func()) { e.At(e.now+d, fn) }

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for len(e.events) > 0 {
		e.step()
	}
	return e.now
}

// RunUntil executes events with time ≤ limit; remaining events stay queued.
// The clock is advanced to limit even if the queue drained earlier.
func (e *Engine) RunUntil(limit Time) Time {
	for len(e.events) > 0 && e.events[0].at <= limit {
		e.step()
	}
	if e.now < limit {
		e.now = limit
	}
	return e.now
}

// RunBounded executes events with time ≤ limit, additionally stopping after
// maxSteps events — the guard the chaos soak uses to turn a livelocked
// recovery loop into a detectable violation instead of a hung test. It
// returns the final time and whether the queue drained of events at or
// before the limit (false means the step budget ran out first).
func (e *Engine) RunBounded(limit Time, maxSteps int64) (Time, bool) {
	start := e.steps
	for len(e.events) > 0 && e.events[0].at <= limit {
		if e.steps-start >= maxSteps {
			return e.now, false
		}
		e.step()
	}
	if e.now < limit {
		e.now = limit
	}
	return e.now, true
}

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.events) }

func (e *Engine) step() {
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.steps++
	ev.fn()
}
