package sqlparse

import "testing"

// FuzzParse drives the lexer, parser and planner with arbitrary input.
// Any input may be rejected with an error, but nothing may panic, and
// whatever parses must also plan into a valid job DAG.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT a, COUNT(*) FROM t WHERE a > 1 GROUP BY a ORDER BY a LIMIT 10",
		"SELECT t.a, s.b FROM t JOIN s ON t.id = s.id",
		"SELECT SUM(x) FROM t GROUP BY y HAVING SUM(x) > 0",
		"SELECT DISTINCT a FROM t ORDER BY a DESC",
		"select",
		"SELECT FROM WHERE",
		"SELECT * FROM t WHERE a = 'unterminated",
		"SELECT ((((((((((a))))))))))",
		"\x00\xff SELECT",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		job, err := Plan("fuzz", stmt, DefaultPlanOptions())
		if err != nil {
			return
		}
		if err := job.Validate(); err != nil {
			t.Fatalf("planned job fails validation for %q: %v", src, err)
		}
	})
}
