// Package sqlparse implements the front end for the Swift programming
// language of Section II-A: a SQL dialect (Fig. 1 shows TPC-H Q9 in it).
// The lexer/parser cover the subset the paper exhibits — select lists with
// expressions and aliases, FROM with sub-selects, JOIN ... ON chains,
// WHERE, GROUP BY, ORDER BY ... DESC and LIMIT — and the planner lowers
// the AST to the dag.Job model the schedulers consume, applying the same
// physical conventions as Fig. 4 (scan stages per table, join stages with
// global-sort operators, aggregate/sort/sink tail).
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // ( ) , ; . = < > * + - / %
	tokKeyword
)

var keywords = map[string]bool{
	"select": true, "from": true, "join": true, "on": true, "where": true,
	"group": true, "by": true, "order": true, "limit": true, "as": true,
	"and": true, "or": true, "desc": true, "asc": true, "like": true,
	"not": true, "in": true, "inner": true, "left": true, "outer": true,
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex splits the input into tokens; identifiers are lowercased except
// string literals.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '\'':
			j := i + 1
			for j < len(src) && src[j] != '\'' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("sqlparse: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, src[i : j+1], i})
			i = j + 1
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.') {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			word := strings.ToLower(src[i:j])
			kind := tokIdent
			if keywords[word] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind, word, i})
			i = j
		case strings.ContainsRune("(),;.=<>*+-/%!", rune(c)):
			toks = append(toks, token{tokPunct, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}
