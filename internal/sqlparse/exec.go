package sqlparse

import (
	"fmt"
	"strings"

	"swift/internal/dag"
	"swift/internal/engine"
)

// Executable lowering: Compile turns a parsed statement into stage plans
// over the batch operator kernels, so a query string runs for real on the
// engine instead of stopping at the DAG sketch Plan produces. The supported
// subset is the shape the parser fully structures — a single base table,
// projected columns and sum/count/min/max aggregates, GROUP BY, ORDER BY
// over output columns and LIMIT. WHERE and JOIN conditions are carried as
// opaque expression strings by the parser, so Compile rejects them rather
// than guessing at semantics.

// Compiled is a runnable query: the DAG job, its batch stage plans and the
// output column names (aliases where given).
type Compiled struct {
	Job   *dag.Job
	Plans engine.Plans
	Out   engine.Schema
}

// CompileOptions sizes the compiled job's stages.
type CompileOptions struct {
	// ScanTasks is the scan-stage parallelism (default 4). Scan task i
	// reads table partition i, so this should equal the registered
	// table's partition count to cover the whole table.
	ScanTasks int
	AggTasks  int // aggregate-stage parallelism (default scan/2; global aggregates force 1)
}

// aggKinds maps the SQL function name to the engine aggregate.
var aggKinds = map[string]engine.AggKind{
	"sum":   engine.AggSum,
	"count": engine.AggCount,
	"min":   engine.AggMin,
	"max":   engine.AggMax,
}

// parseAggExpr splits "fn(arg)" for a supported aggregate function.
func parseAggExpr(expr string) (fn, arg string, ok bool) {
	s := strings.TrimSpace(expr)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", "", false
	}
	fn = strings.ToLower(strings.TrimSpace(s[:open]))
	if _, known := aggKinds[fn]; !known {
		return "", "", false
	}
	return fn, strings.TrimSpace(s[open+1 : len(s)-1]), true
}

// Compile lowers stmt against the named table's schema to executable batch
// plans. The result runs with engine.Run; sink rows follow Out's column
// order.
func Compile(id string, stmt *SelectStmt, schema engine.Schema, opts CompileOptions) (*Compiled, error) {
	if stmt.From.Sub != nil {
		return nil, fmt.Errorf("sqlparse: compile: sub-selects are not executable")
	}
	if len(stmt.Joins) > 0 {
		return nil, fmt.Errorf("sqlparse: compile: JOIN is not executable (ON is an opaque expression)")
	}
	if stmt.Where != "" {
		return nil, fmt.Errorf("sqlparse: compile: WHERE is not executable (predicate is an opaque expression)")
	}
	table := stmt.From.Table
	scanTasks := opts.ScanTasks
	if scanTasks < 1 {
		scanTasks = 4
	}

	// GROUP BY columns become the leading scan-projection columns and the
	// aggregate keys.
	nk := len(stmt.GroupBy)
	groupPos := make(map[string]int, nk)
	scanCols := make([]int, 0, nk+len(stmt.Items))
	for i, g := range stmt.GroupBy {
		c := schema.Col(g)
		if c < 0 {
			return nil, fmt.Errorf("sqlparse: compile: unknown GROUP BY column %q", g)
		}
		groupPos[g] = i
		scanCols = append(scanCols, c)
	}

	// Select items: plain columns and aggregates. outSrc maps each output
	// column to its position in the pre-sink batch (aggregate output =
	// keys then aggs; plain projection = scan order).
	var (
		aggs    []engine.Agg
		out     engine.Schema
		outSrc  []int
		plainNP int // plain (non-aggregate) items outside GROUP BY
	)
	for _, it := range stmt.Items {
		name := it.Alias
		if name == "" {
			name = it.Expr
		}
		out = append(out, name)
		if fn, arg, ok := parseAggExpr(it.Expr); ok {
			src := 0 // count(*) folds over the first table column
			if arg != "*" {
				src = schema.Col(arg)
				if src < 0 {
					return nil, fmt.Errorf("sqlparse: compile: unknown column %q in %s()", arg, fn)
				}
			} else if fn != "count" {
				return nil, fmt.Errorf("sqlparse: compile: %s(*) is not a query", fn)
			}
			scanCols = append(scanCols, src)
			aggs = append(aggs, engine.Agg{Kind: aggKinds[fn], Col: nk + len(aggs)})
			outSrc = append(outSrc, nk+len(aggs)-1)
			continue
		}
		c := schema.Col(it.Expr)
		if c < 0 {
			return nil, fmt.Errorf("sqlparse: compile: unknown column %q", it.Expr)
		}
		if p, grouped := groupPos[it.Expr]; grouped {
			outSrc = append(outSrc, p)
			continue
		}
		if nk > 0 {
			return nil, fmt.Errorf("sqlparse: compile: %q must appear in GROUP BY or an aggregate", it.Expr)
		}
		plainNP++
		scanCols = append(scanCols, c)
		outSrc = append(outSrc, len(scanCols)-1)
	}
	aggregated := nk > 0 || len(aggs) > 0
	if aggregated && plainNP > 0 {
		return nil, fmt.Errorf("sqlparse: compile: cannot mix bare columns with aggregates without GROUP BY")
	}

	// ORDER BY resolves against the output schema; directions must agree
	// (the batch sort is one ordering pass, reversed as a whole for DESC).
	var sortKeys []int
	sortDesc := false
	for i, o := range stmt.OrderBy {
		c := out.Col(o.Expr)
		if c < 0 {
			return nil, fmt.Errorf("sqlparse: compile: ORDER BY %q is not an output column", o.Expr)
		}
		if i == 0 {
			sortDesc = o.Desc
		} else if o.Desc != sortDesc {
			return nil, fmt.Errorf("sqlparse: compile: mixed ASC/DESC is not supported")
		}
		sortKeys = append(sortKeys, c)
	}
	limit := stmt.Limit

	// Stage graph: scan → [agg →] sink.
	b := dag.NewBuilder(id).
		Stage("scan", scanTasks, dag.Operator{Kind: dag.OpTableScan, Expr: table}, dag.Op(dag.OpShuffleWrite))
	prev := "scan"
	if aggregated {
		aggTasks := opts.AggTasks
		if aggTasks < 1 {
			aggTasks = clamp(scanTasks/2, 1, 64)
		}
		if nk == 0 {
			aggTasks = 1 // a global aggregate has a single group
		}
		b = b.Stage("agg", aggTasks, dag.Op(dag.OpShuffleRead), dag.Op(dag.OpHashAggregate), dag.Op(dag.OpShuffleWrite)).
			Pipeline("scan", "agg", 1<<20)
		prev = "agg"
	}
	sinkOps := []dag.Operator{dag.Op(dag.OpShuffleRead)}
	if len(sortKeys) > 0 {
		sinkOps = append(sinkOps, dag.Op(dag.OpSortBy))
	}
	if limit >= 0 {
		sinkOps = append(sinkOps, dag.Operator{Kind: dag.OpLimit, Expr: fmt.Sprintf("limit %d", limit)})
	}
	sinkOps = append(sinkOps, dag.Op(dag.OpAdhocSink))
	b = b.StageOpt(&dag.Stage{Name: "sink", Tasks: 1, Idempotent: true, Operators: sinkOps}).
		Pipeline(prev, "sink", 1<<20)
	job := b.MustBuild()

	keys := make([]int, nk)
	for i := range keys {
		keys[i] = i
	}

	plans := engine.Plans{
		"scan": func(ctx *engine.TaskContext) error {
			tb, err := ctx.TablePartitionBatch(table)
			if err != nil {
				return err
			}
			pb := tb.Project(scanCols)
			if aggregated {
				// Hash-partition on the group keys so each agg task owns
				// whole groups; a global aggregate ships everything to the
				// single agg task.
				return ctx.EmitBatchByKey("agg", pb, keys)
			}
			return ctx.EmitBatchByKey("sink", pb, outSrc)
		},
		"sink": func(ctx *engine.TaskContext) error {
			in, err := ctx.InputBatch(prev)
			if err != nil {
				return err
			}
			res := in.Project(outSrc)
			if len(sortKeys) > 0 {
				res = engine.SortBatch(res, sortKeys)
				if sortDesc {
					sel := make([]int32, res.Len)
					for i := range sel {
						sel[i] = int32(res.Len - 1 - i)
					}
					res = res.Gather(sel)
				}
			}
			if limit >= 0 && limit < res.Len {
				sel := make([]int32, limit)
				for i := range sel {
					sel[i] = int32(i)
				}
				res = res.Gather(sel)
			}
			ctx.SinkBatch(res)
			return nil
		},
	}
	if aggregated {
		plans["agg"] = func(ctx *engine.TaskContext) error {
			in, err := ctx.InputBatch("scan")
			if err != nil {
				return err
			}
			return ctx.EmitBatchPartitioned("sink", []*engine.Batch{
				engine.HashAggregateBatch(in, keys, aggs),
			})
		}
	}
	return &Compiled{Job: job, Plans: plans, Out: out}, nil
}

// CompileAndRun is the one-call execution front end: parse, compile against
// the schema, run on the engine.
func CompileAndRun(e *engine.Engine, id, src string, schema engine.Schema, opts CompileOptions) ([]engine.Row, engine.Schema, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	c, err := Compile(id, stmt, schema, opts)
	if err != nil {
		return nil, nil, err
	}
	rows, err := e.Run(c.Job, c.Plans)
	if err != nil {
		return nil, nil, err
	}
	return rows, c.Out, nil
}
