package sqlparse

import (
	"math"
	"sort"
	"testing"

	"swift/internal/engine"
	"swift/internal/tpch"
)

func execEngine(t *testing.T) (*engine.Engine, *tpch.Lite) {
	t.Helper()
	e := engine.New(engine.DefaultConfig())
	t.Cleanup(e.Close)
	l := tpch.GenerateLite(0.2, 11, 4)
	for _, tab := range l.Tables() {
		e.RegisterTable(tab)
	}
	return e, l
}

func TestCompileGroupByMatchesReference(t *testing.T) {
	e, l := execEngine(t)
	src := `SELECT l_returnflag, l_linestatus, sum(l_quantity) AS qty, count(*) AS n
	        FROM lineitem GROUP BY l_returnflag, l_linestatus
	        ORDER BY l_returnflag, l_linestatus`
	rows, out, err := CompileAndRun(e, "q-group", src, tpch.LiteSchemas["lineitem"], CompileOptions{ScanTasks: 4, AggTasks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 || out[2] != "qty" || out[3] != "n" {
		t.Fatalf("out schema = %v", out)
	}

	// Row-computed reference over the raw partitions.
	sch := tpch.LiteSchemas["lineitem"]
	flag, status, qty := sch.MustCol("l_returnflag"), sch.MustCol("l_linestatus"), sch.MustCol("l_quantity")
	type acc struct {
		qty float64
		n   int64
	}
	want := map[[2]string]acc{}
	for _, part := range l.Lineitem.Partitions {
		for _, r := range part {
			k := [2]string{r[flag].(string), r[status].(string)}
			a := want[k]
			a.qty += r[qty].(float64)
			a.n++
			want[k] = a
		}
	}
	if len(rows) != len(want) {
		t.Fatalf("groups = %d, want %d", len(rows), len(want))
	}
	for i, r := range rows {
		k := [2]string{r[0].(string), r[1].(string)}
		w, ok := want[k]
		if !ok {
			t.Fatalf("unexpected group %v", k)
		}
		if math.Abs(r[2].(float64)-w.qty) > 1e-6*w.qty || r[3].(int64) != w.n {
			t.Errorf("group %v = (%v, %v), want (%v, %v)", k, r[2], r[3], w.qty, w.n)
		}
		// ORDER BY (flag, status) ascending.
		if i > 0 {
			prev := rows[i-1]
			pk := [2]string{prev[0].(string), prev[1].(string)}
			if pk[0] > k[0] || (pk[0] == k[0] && pk[1] > k[1]) {
				t.Errorf("rows out of order: %v before %v", pk, k)
			}
		}
	}
}

func TestCompileGlobalAggregate(t *testing.T) {
	e, l := execEngine(t)
	rows, _, err := CompileAndRun(e, "q-global",
		`SELECT sum(l_extendedprice), count(*), min(l_shipdate), max(l_shipdate) FROM lineitem`,
		tpch.LiteSchemas["lineitem"], CompileOptions{ScanTasks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	sch := tpch.LiteSchemas["lineitem"]
	price, ship := sch.MustCol("l_extendedprice"), sch.MustCol("l_shipdate")
	var sum float64
	var n int64
	lo, hi := "~", ""
	for _, part := range l.Lineitem.Partitions {
		for _, r := range part {
			sum += r[price].(float64)
			n++
			if d := r[ship].(string); d < lo {
				lo = d
			} else if d > hi {
				hi = d
			}
		}
	}
	r := rows[0]
	if math.Abs(r[0].(float64)-sum) > 1e-6*sum || r[1].(int64) != n || r[2].(string) != lo || r[3].(string) != hi {
		t.Errorf("got %v, want (%v, %v, %q, %q)", r, sum, n, lo, hi)
	}
}

func TestCompileProjectionOrderLimit(t *testing.T) {
	e, l := execEngine(t)
	rows, _, err := CompileAndRun(e, "q-top",
		`SELECT o_orderkey, o_totalprice FROM orders ORDER BY o_totalprice DESC LIMIT 5`,
		tpch.LiteSchemas["orders"], CompileOptions{ScanTasks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	sch := tpch.LiteSchemas["orders"]
	price := sch.MustCol("o_totalprice")
	var all []float64
	for _, part := range l.Orders.Partitions {
		for _, r := range part {
			all = append(all, r[price].(float64))
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(all)))
	for i, r := range rows {
		if got := r[1].(float64); got != all[i] {
			t.Errorf("rank %d price = %v, want %v", i, got, all[i])
		}
		if i > 0 && rows[i-1][1].(float64) < r[1].(float64) {
			t.Errorf("not descending at %d", i)
		}
	}
}

func TestCompileDistinctViaGroupBy(t *testing.T) {
	e, _ := execEngine(t)
	rows, _, err := CompileAndRun(e, "q-distinct",
		`SELECT c_mktsegment FROM customer GROUP BY c_mktsegment ORDER BY c_mktsegment`,
		tpch.LiteSchemas["customer"], CompileOptions{ScanTasks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || len(rows) > 5 {
		t.Fatalf("segments = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0].(string) >= rows[i][0].(string) {
			t.Errorf("segments not strictly ascending: %v", rows)
		}
	}
}

func TestCompileRejectsUnsupported(t *testing.T) {
	for _, src := range []string{
		`SELECT a FROM t WHERE a > 1`,
		`SELECT a FROM t JOIN u ON t.a = u.a`,
		`SELECT nosuch FROM t`,
		`SELECT a, sum(b) FROM t`,
		`SELECT sum(b) FROM t ORDER BY nope`,
		`SELECT min(*) FROM t`,
		`SELECT a, b FROM t GROUP BY a`,
	} {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Compile("q", stmt, engine.Schema{"a", "b"}, CompileOptions{}); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}
