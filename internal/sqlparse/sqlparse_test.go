package sqlparse

import (
	"strings"
	"testing"

	"swift/internal/dag"
	"swift/internal/graphlet"
	"swift/internal/tpch"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("select a, 'it''?' from t1 -- comment\nwhere x = 1.5;")
	_ = toks
	if err == nil {
		// 'it''?' lexes as two strings; acceptable for the subset —
		// just ensure no error path breaks.
	}
	toks, err = lex("select x from t where s like '%green%'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[0].kind != tokKeyword || toks[1].kind != tokIdent {
		t.Errorf("kinds = %v", kinds)
	}
	if _, err := lex("select \x00"); err == nil {
		t.Error("bad character accepted")
	}
	if _, err := lex("select 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestParseSimpleSelect(t *testing.T) {
	stmt, err := Parse("select a, b as bee from t where a > 1 order by a desc limit 10;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 2 || stmt.Items[1].Alias != "bee" {
		t.Errorf("items = %+v", stmt.Items)
	}
	if stmt.From.Table != "t" {
		t.Errorf("from = %+v", stmt.From)
	}
	if stmt.Where == "" || !strings.Contains(stmt.Where, ">") {
		t.Errorf("where = %q", stmt.Where)
	}
	if len(stmt.OrderBy) != 1 || !stmt.OrderBy[0].Desc {
		t.Errorf("orderby = %+v", stmt.OrderBy)
	}
	if stmt.Limit != 10 {
		t.Errorf("limit = %d", stmt.Limit)
	}
}

func TestParseJoinChainAndGroupBy(t *testing.T) {
	stmt, err := Parse(`select x, sum(y) as s
		from a
		join b on a.k = b.k
		join c on c.j = b.j and c.m = a.m
		where a.x like '%z%'
		group by x`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Joins) != 2 {
		t.Fatalf("joins = %+v", stmt.Joins)
	}
	if !strings.Contains(stmt.Joins[1].On, "and") {
		t.Errorf("second ON lost conjunct: %q", stmt.Joins[1].On)
	}
	if len(stmt.GroupBy) != 1 || stmt.GroupBy[0] != "x" {
		t.Errorf("group by = %v", stmt.GroupBy)
	}
}

func TestParseQ9FromPaper(t *testing.T) {
	stmt, err := Parse(tpch.Q9SwiftSQL)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.From.Sub == nil {
		t.Fatal("Q9 FROM sub-select not detected")
	}
	inner := stmt.From.Sub
	if inner.From.Table != "tpch_supplier" {
		t.Errorf("inner from = %+v", inner.From)
	}
	if len(inner.Joins) != 5 {
		t.Errorf("inner joins = %d, want 5", len(inner.Joins))
	}
	if !strings.Contains(inner.Where, "like") {
		t.Errorf("inner where = %q", inner.Where)
	}
	if len(stmt.GroupBy) != 2 || len(stmt.OrderBy) != 2 || stmt.Limit != 999999 {
		t.Errorf("tail clauses: group=%v order=%v limit=%d", stmt.GroupBy, stmt.OrderBy, stmt.Limit)
	}
	if !stmt.OrderBy[1].Desc {
		t.Error("o_year should be desc")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"update t set x = 1",
		"select from t",
		"select a from",
		"select a from t join b",
		"select a from t limit x",
		"select a from t; garbage",
		"select a from (select b from c",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestPlanQ9ProducesGraphletStructure(t *testing.T) {
	job, err := ParseAndPlan("q9", tpch.Q9SwiftSQL)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
	// Six base tables -> six scan stages.
	scans := 0
	for _, s := range job.Stages() {
		for _, op := range s.Operators {
			if op.Kind == dag.OpTableScan {
				scans++
			}
		}
	}
	if scans != 6 {
		t.Errorf("scan stages = %d, want 6", scans)
	}
	// The lineitem scan inherits the published 956-task parallelism.
	found := false
	for _, s := range job.Stages() {
		for _, op := range s.Operators {
			if op.Kind == dag.OpTableScan && op.Expr == "tpch_lineitem" && s.Tasks == 956 {
				found = true
			}
		}
	}
	if !found {
		t.Error("lineitem scan not planned at 956 tasks")
	}
	// Sort-merge joins cut the plan into multiple graphlets, as in Fig. 4.
	gs, err := graphlet.Partition(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) < 3 {
		t.Errorf("graphlets = %d, want several (Fig. 4 gives 4)", len(gs))
	}
	if _, err := graphlet.SubmissionOrder(gs); err != nil {
		t.Fatal(err)
	}
	// Exactly one sink with LIMIT folded in.
	sinks := job.Sinks()
	if len(sinks) != 1 {
		t.Fatalf("sinks = %v", sinks)
	}
	hasLimit := false
	for _, op := range job.Stage(sinks[0]).Operators {
		if op.Kind == dag.OpLimit {
			hasLimit = true
		}
	}
	if !hasLimit {
		t.Error("LIMIT not folded into sink")
	}
}

func TestPlanSimpleAggregate(t *testing.T) {
	job, err := ParseAndPlan("q", "select k, sum(v) from tpch_orders group by k order by k")
	if err != nil {
		t.Fatal(err)
	}
	// scan -> aggregate -> sort -> sink.
	if job.NumStages() != 4 {
		t.Errorf("stages = %d: %s", job.NumStages(), job)
	}
	// StreamedAggregate is global-sort class: its out-edge is a barrier.
	barriers := 0
	for _, e := range job.Edges() {
		if e.Mode == dag.Barrier {
			barriers++
		}
	}
	if barriers < 2 {
		t.Errorf("barriers = %d, want agg and sort stages to cut", barriers)
	}
	if job.Stage("M1").Tasks != tpch.ScanTasks("orders") {
		t.Errorf("scan tasks = %d", job.Stage("M1").Tasks)
	}
}

func TestPlanOptionsOverride(t *testing.T) {
	stmt, err := Parse("select a from mytable")
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultPlanOptions()
	opts.ScanTasks = map[string]int{"mytable": 13}
	job, err := Plan("j", stmt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if job.Stage("M1").Tasks != 13 {
		t.Errorf("tasks = %d, want 13", job.Stage("M1").Tasks)
	}
	// Unknown table uses the default.
	job2, err := ParseAndPlan("j2", "select a from unknown_table")
	if err != nil {
		t.Fatal(err)
	}
	if job2.Stage("M1").Tasks != DefaultPlanOptions().DefaultScanTasks {
		t.Errorf("default tasks = %d", job2.Stage("M1").Tasks)
	}
}

func TestPlanLimitPushdownIntoSort(t *testing.T) {
	job, err := ParseAndPlan("q", "select a from tpch_orders order by a limit 5")
	if err != nil {
		t.Fatal(err)
	}
	// The sort stage carries the pushed-down limit (per-task top-k) in
	// addition to the sink's global one.
	sortHasLimit := false
	for _, s := range job.Stages() {
		isSort := false
		for _, op := range s.Operators {
			if op.Kind == dag.OpSortBy {
				isSort = true
			}
		}
		if !isSort {
			continue
		}
		for _, op := range s.Operators {
			if op.Kind == dag.OpLimit {
				if op.Expr != "limit 5" {
					t.Errorf("pushed limit expr = %q", op.Expr)
				}
				sortHasLimit = true
			}
		}
	}
	if !sortHasLimit {
		t.Error("LIMIT not pushed into the ORDER BY stage")
	}
	// Without ORDER BY there is no sort stage to push into; the plan must
	// still build with the sink limit only.
	job2, err := ParseAndPlan("q2", "select a from tpch_orders limit 5")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range job2.Stages() {
		for _, op := range s.Operators {
			if op.Kind == dag.OpSortBy {
				t.Error("unexpected sort stage without ORDER BY")
			}
		}
	}
}
