package sqlparse

import (
	"fmt"
	"strings"

	"swift/internal/dag"
	"swift/internal/tpch"
)

// Planner options.
type PlanOptions struct {
	// ScanTasks maps a table name to its scan parallelism; unknown
	// tables fall back to tpch.ScanTasks (for tpch_* names) or
	// DefaultScanTasks.
	ScanTasks map[string]int
	// DefaultScanTasks is the parallelism for unknown tables.
	DefaultScanTasks int
	// BytesPerTask estimates a scan task's input (cost annotation).
	BytesPerTask int64
}

// DefaultPlanOptions mirrors the paper's 200 MB-per-scan-task convention.
func DefaultPlanOptions() PlanOptions {
	return PlanOptions{DefaultScanTasks: 8, BytesPerTask: 200 << 20}
}

// Plan lowers a parsed statement to the DAG job model — the "converted to
// the DAG job model ... by a parser or compiler program" step of Section
// II-A. Physical conventions follow Fig. 4:
//
//   - each base table gets an M (scan) stage;
//   - each JOIN gets a J stage; sort-merge joins (every second join, as a
//     stand-in for the optimizer's choice) carry MergeSort, making their
//     outgoing edges barriers;
//   - GROUP BY lowers to a StreamedAggregate R stage (global-sort class);
//   - ORDER BY lowers to a SortBy R stage;
//   - the job ends in a single-task AdhocSink stage (LIMIT folds into it).
func Plan(id string, stmt *SelectStmt, opts PlanOptions) (*dag.Job, error) {
	p := &planner{job: dag.NewJob(id), opts: opts}
	out, outTasks, err := p.planSelect(stmt)
	if err != nil {
		return nil, err
	}
	// Terminal sink.
	sinkOps := []dag.Operator{dag.Op(dag.OpShuffleRead)}
	if stmt.Limit >= 0 {
		sinkOps = append(sinkOps, dag.Operator{Kind: dag.OpLimit, Expr: fmt.Sprintf("limit %d", stmt.Limit)})
	}
	sinkOps = append(sinkOps, dag.Op(dag.OpAdhocSink))
	sink := p.stage("R", 1, sinkOps...)
	p.edge(out, sink, outTasks/4+1)
	p.job.Classify()
	if err := p.job.Validate(); err != nil {
		return nil, err
	}
	return p.job, nil
}

// ParseAndPlan is the one-call front end used by swiftsql and the examples.
func ParseAndPlan(id, src string) (*dag.Job, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Plan(id, stmt, DefaultPlanOptions())
}

type planner struct {
	job   *dag.Job
	opts  PlanOptions
	seq   int
	joins int
}

func (p *planner) stage(prefix string, tasks int, ops ...dag.Operator) string {
	p.seq++
	name := fmt.Sprintf("%s%d", prefix, p.seq)
	if tasks < 1 {
		tasks = 1
	}
	st := &dag.Stage{Name: name, Tasks: tasks, Operators: ops, Idempotent: true}
	for _, op := range ops {
		if op.Kind == dag.OpTableScan {
			st.Cost.ScanBytes = int64(tasks) * p.opts.BytesPerTask
			st.Cost.ProcessSecondsPerTask = 1
		}
	}
	if st.Cost.ProcessSecondsPerTask == 0 {
		st.Cost.ProcessSecondsPerTask = 1.5
	}
	if err := p.job.AddStage(st); err != nil {
		panic("sqlparse: " + err.Error()) // names are generated; cannot collide
	}
	return name
}

func (p *planner) edge(from, to string, bytesTasks int) {
	err := p.job.AddEdge(&dag.Edge{
		From: from, To: to, Op: dag.OpShuffleRead,
		Bytes: int64(bytesTasks) * p.opts.BytesPerTask / 4,
	})
	if err != nil {
		panic("sqlparse: " + err.Error())
	}
}

func (p *planner) scanTasks(table string) int {
	if n, ok := p.opts.ScanTasks[table]; ok && n > 0 {
		return n
	}
	if strings.HasPrefix(table, "tpch_") {
		return tpch.ScanTasks(strings.TrimPrefix(table, "tpch_"))
	}
	if p.opts.DefaultScanTasks > 0 {
		return p.opts.DefaultScanTasks
	}
	return 8
}

// planSource lowers a FROM/JOIN source, returning its producing stage.
func (p *planner) planSource(ref TableRef) (string, int, error) {
	if ref.Sub != nil {
		return p.planSelect(ref.Sub)
	}
	tasks := p.scanTasks(ref.Table)
	name := p.stage("M", tasks,
		dag.Operator{Kind: dag.OpTableScan, Expr: ref.Table},
		dag.Op(dag.OpShuffleWrite))
	return name, tasks, nil
}

// planSelect lowers one (sub-)select and returns its final stage and that
// stage's task count.
func (p *planner) planSelect(stmt *SelectStmt) (string, int, error) {
	cur, curTasks, err := p.planSource(stmt.From)
	if err != nil {
		return "", 0, err
	}
	for _, jc := range stmt.Joins {
		right, rightTasks, err := p.planSource(jc.Table)
		if err != nil {
			return "", 0, err
		}
		p.joins++
		joinTasks := curTasks
		if rightTasks > joinTasks {
			joinTasks = rightTasks
		}
		joinTasks = clamp(joinTasks/2, 1, 256)
		ops := []dag.Operator{dag.Op(dag.OpShuffleRead)}
		// Alternate physical join strategies: the optimizer's
		// cost-based choice is out of scope (Section II-A), so odd
		// joins sort-merge (global sort — their out-edges become
		// barriers, cutting graphlets as in Fig. 4) and even joins
		// hash.
		if p.joins%2 == 1 {
			ops = append(ops, dag.Operator{Kind: dag.OpMergeJoin, Expr: jc.On}, dag.Op(dag.OpMergeSort))
		} else {
			ops = append(ops, dag.Operator{Kind: dag.OpHashJoin, Expr: jc.On})
		}
		ops = append(ops, dag.Op(dag.OpShuffleWrite))
		j := p.stage("J", joinTasks, ops...)
		p.edge(cur, j, curTasks)
		p.edge(right, j, rightTasks)
		cur, curTasks = j, joinTasks
	}
	if stmt.Where != "" {
		// Filters fuse into the upstream stage in a real optimizer; we
		// annotate the current stage rather than add a vertex.
		st := p.job.Stage(cur)
		st.Operators = append(st.Operators, dag.Operator{Kind: dag.OpFilter, Expr: stmt.Where})
	}
	if len(stmt.GroupBy) > 0 {
		aggTasks := clamp(curTasks/4, 1, 64)
		agg := p.stage("R", aggTasks,
			dag.Op(dag.OpShuffleRead),
			dag.Operator{Kind: dag.OpStreamedAggregate, Expr: strings.Join(stmt.GroupBy, ", ")},
			dag.Op(dag.OpShuffleWrite))
		p.edge(cur, agg, curTasks)
		cur, curTasks = agg, aggTasks
	}
	if len(stmt.OrderBy) > 0 {
		var exprs []string
		for _, o := range stmt.OrderBy {
			e := o.Expr
			if o.Desc {
				e += " desc"
			}
			exprs = append(exprs, e)
		}
		sortTasks := clamp(curTasks/4, 1, 16)
		sortOps := []dag.Operator{
			dag.Op(dag.OpShuffleRead),
			dag.Operator{Kind: dag.OpSortBy, Expr: strings.Join(exprs, ", ")},
		}
		if stmt.Limit >= 0 {
			// Limit pushdown: with ORDER BY + LIMIT each sort task only
			// needs its local top-N (engine.TopK's bounded heap), so the
			// sink reads N×tasks rows instead of the full sort output. The
			// sink keeps its own LIMIT for the global cut.
			sortOps = append(sortOps, dag.Operator{Kind: dag.OpLimit, Expr: fmt.Sprintf("limit %d", stmt.Limit)})
		}
		sortOps = append(sortOps, dag.Op(dag.OpShuffleWrite))
		srt := p.stage("R", sortTasks, sortOps...)
		p.edge(cur, srt, curTasks)
		cur, curTasks = srt, sortTasks
	}
	return cur, curTasks, nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
