package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// SelectItem is one projected expression with an optional alias.
type SelectItem struct {
	Expr  string
	Alias string
}

// TableRef is a FROM/JOIN source: a named table (with optional alias) or a
// parenthesised sub-select.
type TableRef struct {
	Table string
	Alias string
	Sub   *SelectStmt
}

// Name returns the reference's effective name.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	if t.Sub != nil {
		return "subquery"
	}
	return t.Table
}

// JoinClause is one JOIN ... ON element.
type JoinClause struct {
	Table TableRef
	On    string
}

// OrderItem is one ORDER BY column.
type OrderItem struct {
	Expr string
	Desc bool
}

// SelectStmt is the parsed query.
type SelectStmt struct {
	Items   []SelectItem
	From    TableRef
	Joins   []JoinClause
	Where   string
	GroupBy []string
	OrderBy []OrderItem
	Limit   int // -1 when absent
}

type parser struct {
	toks []token
	i    int
}

// Parse parses one Swift-language statement (a trailing semicolon is
// optional).
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sqlparse: trailing input at %q", p.peek().text)
	}
	return stmt, nil
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(s string) bool {
	return p.peek().text == s
}

func (p *parser) expect(s string) error {
	if !p.at(s) {
		return fmt.Errorf("sqlparse: expected %q, got %q at offset %d", s, p.peek().text, p.peek().pos)
	}
	p.next()
	return nil
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if err := p.expect("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	items, err := p.selectList()
	if err != nil {
		return nil, err
	}
	stmt.Items = items
	if err := p.expect("from"); err != nil {
		return nil, err
	}
	from, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = from
	for p.at("join") || p.at("inner") || p.at("left") {
		for p.at("inner") || p.at("left") || p.at("outer") {
			p.next()
		}
		if err := p.expect("join"); err != nil {
			return nil, err
		}
		ref, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expect("on"); err != nil {
			return nil, err
		}
		cond := p.rawUntil("join", "inner", "left", "where", "group", "order", "limit", ")", ";")
		stmt.Joins = append(stmt.Joins, JoinClause{Table: ref, On: cond})
	}
	if p.at("where") {
		p.next()
		stmt.Where = p.rawUntil("group", "order", "limit", ")", ";")
	}
	if p.at("group") {
		p.next()
		if err := p.expect("by"); err != nil {
			return nil, err
		}
		for {
			stmt.GroupBy = append(stmt.GroupBy, p.rawUntil(",", "order", "limit", ")", ";"))
			if !p.at(",") {
				break
			}
			p.next()
		}
	}
	if p.at("order") {
		p.next()
		if err := p.expect("by"); err != nil {
			return nil, err
		}
		for {
			expr := p.rawUntil(",", "desc", "asc", "limit", ")", ";")
			item := OrderItem{Expr: expr}
			if p.at("desc") {
				item.Desc = true
				p.next()
			} else if p.at("asc") {
				p.next()
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.at(",") {
				break
			}
			p.next()
		}
	}
	if p.at("limit") {
		p.next()
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sqlparse: LIMIT needs a number, got %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sqlparse: bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) selectList() ([]SelectItem, error) {
	var items []SelectItem
	for {
		expr := p.rawUntil(",", "from")
		if expr == "" {
			return nil, fmt.Errorf("sqlparse: empty select item at offset %d", p.peek().pos)
		}
		item := SelectItem{Expr: expr}
		// Peel a trailing "as alias" or bare alias out of the raw span.
		if fields := strings.Fields(expr); len(fields) >= 3 && fields[len(fields)-2] == "as" {
			item.Alias = fields[len(fields)-1]
			item.Expr = strings.Join(fields[:len(fields)-2], " ")
		}
		items = append(items, item)
		if !p.at(",") {
			break
		}
		p.next()
	}
	return items, nil
}

func (p *parser) tableRef() (TableRef, error) {
	if p.at("(") {
		p.next()
		sub, err := p.selectStmt()
		if err != nil {
			return TableRef{}, err
		}
		if err := p.expect(")"); err != nil {
			return TableRef{}, err
		}
		ref := TableRef{Sub: sub}
		if p.peek().kind == tokIdent {
			ref.Alias = p.next().text
		}
		return ref, nil
	}
	t := p.next()
	if t.kind != tokIdent {
		return TableRef{}, fmt.Errorf("sqlparse: expected table name, got %q at offset %d", t.text, t.pos)
	}
	ref := TableRef{Table: t.text}
	if p.at("as") {
		p.next()
	}
	if p.peek().kind == tokIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// rawUntil captures raw token text until one of the stop words appears at
// paren depth zero. Stop punctuation ("," ")" ";") is honoured likewise.
func (p *parser) rawUntil(stops ...string) string {
	stop := make(map[string]bool, len(stops))
	for _, s := range stops {
		stop[s] = true
	}
	depth := 0
	var parts []string
	for {
		t := p.peek()
		if t.kind == tokEOF {
			break
		}
		if depth == 0 && stop[t.text] {
			break
		}
		if t.text == "(" {
			depth++
		}
		if t.text == ")" {
			if depth == 0 {
				break
			}
			depth--
		}
		parts = append(parts, t.text)
		p.next()
	}
	return strings.Join(parts, " ")
}
