package tpch

import (
	"sort"
	"testing"
)

func TestLiteQ12MatchesReference(t *testing.T) {
	e, l := liteEngine(t, 0.3, 23, 4)
	lo, hi := "1994-01-01", "1995-01-01"
	// Split at the median order total so both priority classes are
	// populated regardless of generator parameters.
	var totals []float64
	col := orCols.MustCol("o_totalprice")
	for _, part := range l.Orders.Partitions {
		for _, r := range part {
			totals = append(totals, r[col].(float64))
		}
	}
	sort.Float64s(totals)
	priceCut := totals[len(totals)/2]
	job, plans := LiteQ12(4, 3, lo, hi, priceCut)
	rows, err := e.Run(job, plans)
	if err != nil {
		t.Fatal(err)
	}
	want := LiteQ12Reference(l, lo, hi, priceCut)
	if len(rows) != len(want) {
		t.Fatalf("groups = %d, want %d", len(rows), len(want))
	}
	var totalHigh, totalLow int64
	for _, r := range rows {
		status := r[0].(string)
		w, ok := want[status]
		if !ok {
			t.Fatalf("unexpected status %q", status)
		}
		if r[1].(int64) != w[0] || r[2].(int64) != w[1] {
			t.Errorf("status %q = (%d,%d), want (%d,%d)", status, r[1], r[2], w[0], w[1])
		}
		totalHigh += r[1].(int64)
		totalLow += r[2].(int64)
	}
	if totalHigh == 0 || totalLow == 0 {
		t.Error("degenerate split — price cut not discriminating")
	}
}

func TestLiteQ12PartitionsIntoTwoGraphlets(t *testing.T) {
	// The join stage streams (pipeline in-edges) while the aggregate is
	// fed over a barrier: scans+join form one graphlet, agg another.
	job, _ := LiteQ12(4, 3, "1994-01-01", "1995-01-01", 1)
	gs := mustPartition(t, job)
	if len(gs) != 2 {
		t.Fatalf("graphlets = %d, want 2", len(gs))
	}
	if !gs[0].Contains("join") || !gs[1].Contains("agg") {
		t.Errorf("graphlet membership wrong: %v", gs)
	}
}
