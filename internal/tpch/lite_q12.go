package tpch

import (
	"swift/internal/dag"
	"swift/internal/engine"
)

// LiteQ12 is the shipping-modes-style query: join orders to lineitems
// shipped inside a date window and count, per order status, how many
// qualifying orders are high-priority (total price above the threshold)
// versus low-priority — TPC-H Q12's conditional-aggregation shape over a
// co-partitioned join.
func LiteQ12(scanTasks, joinTasks int, lo, hi string, priceCut float64) (*dag.Job, engine.Plans) {
	job := dag.NewBuilder("lite-q12").
		Stage("ord", scanTasks, dag.Op(dag.OpTableScan), dag.Op(dag.OpShuffleWrite)).
		Stage("line", scanTasks, dag.Op(dag.OpTableScan), dag.Op(dag.OpFilter), dag.Op(dag.OpShuffleWrite)).
		Stage("join", joinTasks, dag.Op(dag.OpShuffleRead), dag.Op(dag.OpHashJoin), dag.Op(dag.OpShuffleWrite)).
		StageOpt(&dag.Stage{Name: "agg", Tasks: 1, Idempotent: true,
			Operators: []dag.Operator{dag.Op(dag.OpShuffleRead), dag.Op(dag.OpStreamedAggregate), dag.Op(dag.OpAdhocSink)}}).
		Pipeline("ord", "join", 1<<20).
		Pipeline("line", "join", 1<<20).
		Edge("join", "agg", dag.OpStreamedAggregate, 1<<20).
		MustBuild()

	oKey := orCols.MustCol("o_orderkey")
	oStatus := orCols.MustCol("o_orderstatus")
	oTotal := orCols.MustCol("o_totalprice")
	lKey := liCols.MustCol("l_orderkey")
	lShip := liCols.MustCol("l_shipdate")

	plans := engine.Plans{
		"ord": func(ctx *engine.TaskContext) error {
			part, err := ctx.TablePartition("orders")
			if err != nil {
				return err
			}
			out := make([]engine.Row, 0, len(part))
			for _, r := range part {
				out = append(out, engine.Row{r[oKey], r[oStatus], r[oTotal]})
			}
			return ctx.EmitByKey("join", out, []int{0})
		},
		"line": func(ctx *engine.TaskContext) error {
			part, err := ctx.TablePartition("lineitem")
			if err != nil {
				return err
			}
			var out []engine.Row
			for _, r := range part {
				if s := r[lShip].(string); s >= lo && s < hi {
					out = append(out, engine.Row{r[lKey]})
				}
			}
			return ctx.EmitByKey("join", out, []int{0})
		},
		"join": func(ctx *engine.TaskContext) error {
			orders, err := ctx.Input("ord")
			if err != nil {
				return err
			}
			lines, err := ctx.Input("line")
			if err != nil {
				return err
			}
			// Distinct qualifying order keys in this partition.
			qual := map[int64]bool{}
			for _, l := range lines {
				qual[l[0].(int64)] = true
			}
			var out []engine.Row
			for _, o := range orders {
				if !qual[o[0].(int64)] {
					continue
				}
				high, low := int64(0), int64(1)
				if o[2].(float64) > priceCut {
					high, low = 1, 0
				}
				out = append(out, engine.Row{o[1], high, low})
			}
			return ctx.EmitPartitioned("agg", [][]engine.Row{out})
		},
		"agg": func(ctx *engine.TaskContext) error {
			rows, err := ctx.Input("join")
			if err != nil {
				return err
			}
			ctx.Sink(engine.HashAggregate(rows, []int{0}, []engine.Agg{
				{Kind: engine.AggSum, Col: 1},
				{Kind: engine.AggSum, Col: 2},
			}))
			return nil
		},
	}
	return job, plans
}

// LiteQ12Reference computes Q12 directly: status → (high, low) counts.
func LiteQ12Reference(l *Lite, lo, hi string, priceCut float64) map[string][2]int64 {
	oKey := orCols.MustCol("o_orderkey")
	oStatus := orCols.MustCol("o_orderstatus")
	oTotal := orCols.MustCol("o_totalprice")
	lKey := liCols.MustCol("l_orderkey")
	lShip := liCols.MustCol("l_shipdate")

	qual := map[int64]bool{}
	for _, part := range l.Lineitem.Partitions {
		for _, r := range part {
			if s := r[lShip].(string); s >= lo && s < hi {
				qual[r[lKey].(int64)] = true
			}
		}
	}
	out := map[string][2]int64{}
	for _, part := range l.Orders.Partitions {
		for _, r := range part {
			if !qual[r[oKey].(int64)] {
				continue
			}
			acc := out[r[oStatus].(string)]
			if r[oTotal].(float64) > priceCut {
				acc[0]++
			} else {
				acc[1]++
			}
			out[r[oStatus].(string)] = acc
		}
	}
	return out
}
