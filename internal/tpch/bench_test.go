package tpch

import (
	"fmt"
	"testing"

	"swift/internal/engine"
)

// BenchmarkTPCHLiteEngine runs the TPC-H-lite queries end to end on the
// real engine — scan, shuffle, join, aggregate, top-k with the controller
// scheduling every task — so data-plane regressions show up in a whole-
// query number, not just the operator microbenchmarks. ReportAllocs makes
// the per-query allocation budget part of the bench trajectory.
func BenchmarkTPCHLiteEngine(b *testing.B) {
	e := engine.New(engine.DefaultConfig())
	defer e.Close()
	l := GenerateLite(0.3, 7, 4)
	for _, tab := range l.Tables() {
		e.RegisterTable(tab)
	}
	rows := float64(l.Lineitem.NumRows())
	// The controller rejects duplicate job ids and the harness re-runs
	// each sub-benchmark while ramping b.N, so ids come from a counter
	// that never resets.
	jobSeq := 0
	nextID := func(q string) string {
		jobSeq++
		return fmt.Sprintf("bench-%s-%d", q, jobSeq)
	}

	b.Run("Q1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			job, plans := LiteQ1(4, 3, "1998-09-02")
			job.ID = nextID("q1")
			if _, err := e.Run(job, plans); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "lineitems/s")
	})
	b.Run("Q6", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			job, plans := LiteQ6(4, "1994-01-01", "1995-01-01")
			job.ID = nextID("q6")
			if _, err := e.Run(job, plans); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "lineitems/s")
	})
	b.Run("Q3", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			job, plans := LiteQ3(4, 3, 10, "BUILDING", "1995-03-15")
			job.ID = nextID("q3")
			if _, err := e.Run(job, plans); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "lineitems/s")
	})
}
