package tpch

import (
	"fmt"

	"swift/internal/dag"
)

// Terasort returns the Table I Terasort job with m map tasks and n reduce
// tasks; each map task processes 200 MB, so the total sorted volume is
// m × 200 MB. The reduce side performs the global sort, so the map→reduce
// edge is a barrier and the job forms two graphlets — whose shuffle edge
// size m×n drives the adaptive mode selection (250² = 62,500 → Remote;
// 1500² = 2,250,000 → Local).
func Terasort(m, n int) *dag.Job {
	if m <= 0 || n <= 0 {
		panic("tpch: terasort sizes must be positive")
	}
	total := int64(m) * 200 * MB
	j := dag.NewJob(fmt.Sprintf("terasort-%dx%d", m, n))
	mapStage := &dag.Stage{
		Name:  "map",
		Tasks: m,
		Operators: []dag.Operator{
			dag.Op(dag.OpTableScan), dag.Op(dag.OpMergeSort), dag.Op(dag.OpShuffleWrite),
		},
		Idempotent: true,
		Cost: dag.Cost{
			ScanBytes:             total,
			ProcessSecondsPerTask: 6.0, // partition + local sort of 200 MB
		},
	}
	reduceStage := &dag.Stage{
		Name:  "reduce",
		Tasks: n,
		Operators: []dag.Operator{
			dag.Op(dag.OpShuffleRead), dag.Op(dag.OpMergeSort), dag.Op(dag.OpAdhocSink),
		},
		Idempotent: true,
		Cost: dag.Cost{
			ProcessSecondsPerTask: 6.0 * float64(m) / float64(n), // merge of its partition
			OutputBytes:           total,
		},
	}
	if err := j.AddStage(mapStage); err != nil {
		panic("tpch: " + err.Error())
	}
	if err := j.AddStage(reduceStage); err != nil {
		panic("tpch: " + err.Error())
	}
	if err := j.AddEdge(&dag.Edge{From: "map", To: "reduce", Op: dag.OpShuffleRead, Bytes: total}); err != nil {
		panic("tpch: " + err.Error())
	}
	j.Classify()
	return j
}

// Q9SwiftSQL is the Fig. 1 source text of Q9 in the Swift language, used by
// the SQL front end and the swiftsql tool.
const Q9SwiftSQL = `select nation, o_year, sum(amount) as sum_profit
from (
  select n_name as nation, substr(o_orderdate, 1, 4) as o_year,
    l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity as amount
  from tpch_supplier s
  join tpch_lineitem l on s.s_suppkey = l.l_suppkey
  join tpch_partsupp ps on ps.ps_suppkey = l.l_suppkey and ps.ps_partkey = l.l_partkey
  join tpch_part p on p.p_partkey = l.l_partkey
  join tpch_orders o on o.o_orderkey = l.l_orderkey
  join tpch_nation n on s.s_nationkey = n.n_nationkey
  where p_name like '%green%'
)
group by nation, o_year
order by nation, o_year desc
limit 999999;`
