package tpch

import (
	"reflect"
	"testing"

	"swift/internal/dag"
	"swift/internal/graphlet"
	"swift/internal/shuffle"
)

func TestQ9MatchesPaperStructure(t *testing.T) {
	j := Q9()
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	// Published task counts (Fig. 4a).
	want := map[string]int{"M1": 956, "M2": 220, "M3": 3, "M5": 403, "M7": 220, "M8": 20}
	for s, n := range want {
		if got := j.Stage(s).Tasks; got != n {
			t.Errorf("%s tasks = %d, want %d", s, got, n)
		}
	}
	// Barrier edges J4->J6, J6->J10, J10->R11; everything else pipeline.
	barriers := map[string]bool{"J4->J6": true, "J6->J10": true, "J10->R11": true}
	for _, e := range j.Edges() {
		key := e.From + "->" + e.To
		if (e.Mode == dag.Barrier) != barriers[key] {
			t.Errorf("edge %s mode = %v", key, e.Mode)
		}
	}
	// Exactly the paper's four graphlets.
	gs, err := graphlet.Partition(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 4 {
		t.Fatalf("graphlets = %d, want 4", len(gs))
	}
	wantG := [][]string{
		{"M1", "M2", "M3", "J4"},
		{"M5", "J6"},
		{"M7", "M8", "R9", "J10"},
		{"R11", "R12"},
	}
	for i, g := range gs {
		got := append([]string(nil), g.Stages...)
		if !sameSet(got, wantG[i]) {
			t.Errorf("graphlet %d = %v, want %v", i+1, got, wantG[i])
		}
	}
	if gs[0].Trigger != "J4" || gs[1].Trigger != "J6" || gs[2].Trigger != "J10" {
		t.Errorf("triggers = %q %q %q", gs[0].Trigger, gs[1].Trigger, gs[2].Trigger)
	}
}

func TestQ13MatchesPaperStructure(t *testing.T) {
	j := Q13()
	want := map[string]int{"M1": 498, "M2": 72}
	for s, n := range want {
		if got := j.Stage(s).Tasks; got != n {
			t.Errorf("%s tasks = %d, want %d", s, got, n)
		}
	}
	det := Q13Details()
	if len(det) != 6 || det[0].RecordsPerTask != 3012048 || det[2].InputSizePerTask != "26MB" {
		t.Errorf("details = %+v", det)
	}
	names := make([]string, 0)
	for _, d := range det {
		names = append(names, d.Stage)
	}
	if !reflect.DeepEqual(names, []string{"M1", "M2", "J3", "R4", "R5", "R6"}) {
		t.Errorf("detail stages = %v", names)
	}
}

func TestAllQueriesValid(t *testing.T) {
	qs := Queries()
	if len(qs) != 22 {
		t.Fatalf("queries = %d", len(qs))
	}
	for name, j := range qs {
		if err := j.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		gs, err := graphlet.Partition(j)
		if err != nil {
			t.Errorf("%s: partition: %v", name, err)
			continue
		}
		if _, err := graphlet.SubmissionOrder(gs); err != nil {
			t.Errorf("%s: order: %v", name, err)
		}
		// Every query ends in a single-task sink.
		sinks := j.Sinks()
		if len(sinks) != 1 || j.Stage(sinks[0]).Tasks != 1 {
			t.Errorf("%s: sinks = %v", name, sinks)
		}
		// Scan stages carry bytes; their parallelism follows 200 MB/task.
		for _, s := range j.Stages() {
			for _, op := range s.Operators {
				if op.Kind == dag.OpTableScan && s.Cost.ScanBytes <= 0 {
					t.Errorf("%s/%s: scan without bytes", name, s.Name)
				}
			}
		}
	}
}

func TestScanTasksConvention(t *testing.T) {
	if got := ScanTasks("lineitem"); got != 956 {
		t.Errorf("lineitem scan tasks = %d, want 956 (Fig. 4)", got)
	}
	if got := ScanTasks("nation"); got != 1 {
		t.Errorf("nation scan tasks = %d", got)
	}
	if got := ScanTasks("unknown"); got != 1 {
		t.Errorf("unknown table tasks = %d", got)
	}
}

func TestTerasortShape(t *testing.T) {
	j := Terasort(250, 250)
	if j.NumTasks() != 500 {
		t.Errorf("tasks = %d", j.NumTasks())
	}
	e := j.Edges()[0]
	if e.Mode != dag.Barrier {
		t.Error("terasort shuffle should be a barrier")
	}
	if e.Bytes != int64(250)*200<<20 {
		t.Errorf("shuffle bytes = %d", e.Bytes)
	}
	gs, err := graphlet.Partition(j)
	if err != nil || len(gs) != 2 {
		t.Fatalf("graphlets = %v err=%v", gs, err)
	}
	// Adaptive mode selection per Table I sizes.
	th := shuffle.DefaultThresholds()
	if th.Select(250*250) != shuffle.Remote {
		t.Error("250x250 should select Remote")
	}
	if th.Select(1500*1500) != shuffle.Local {
		t.Error("1500x1500 should select Local")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid terasort size did not panic")
		}
	}()
	Terasort(0, 5)
}

func TestQueryPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Query(23) did not panic")
		}
	}()
	Query(23)
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[string]bool{}
	for _, s := range a {
		m[s] = true
	}
	for _, s := range b {
		if !m[s] {
			return false
		}
	}
	return true
}
