package tpch

import (
	"math"
	"sort"
	"testing"

	"swift/internal/dag"
	"swift/internal/engine"
	"swift/internal/graphlet"
)

func liteEngine(t *testing.T, sf float64, seed int64, parts int) (*engine.Engine, *Lite) {
	t.Helper()
	e := engine.New(engine.DefaultConfig())
	t.Cleanup(e.Close)
	l := GenerateLite(sf, seed, parts)
	for _, tab := range l.Tables() {
		e.RegisterTable(tab)
	}
	return e, l
}

func TestGenerateLiteShape(t *testing.T) {
	l := GenerateLite(0.2, 1, 4)
	if l.Customer.NumRows() < 100 || l.Orders.NumRows() != l.Customer.NumRows()*10 {
		t.Errorf("sizes: cust=%d orders=%d", l.Customer.NumRows(), l.Orders.NumRows())
	}
	// 1–7 lineitems per order, average 4.
	ratio := float64(l.Lineitem.NumRows()) / float64(l.Orders.NumRows())
	if ratio < 3 || ratio > 5 {
		t.Errorf("lineitems per order = %.2f", ratio)
	}
	// Deterministic for a seed.
	l2 := GenerateLite(0.2, 1, 4)
	if l2.Lineitem.NumRows() != l.Lineitem.NumRows() {
		t.Error("generator not deterministic")
	}
	if GenerateLite(0.2, 2, 4).Lineitem.NumRows() == l.Lineitem.NumRows() {
		t.Log("different seeds coincided in size (possible but unusual)")
	}
	// Defensive defaults.
	if l3 := GenerateLite(0, 1, 0); l3.Customer.NumRows() == 0 {
		t.Error("degenerate parameters produced empty tables")
	}
	// Dates are ISO and within range.
	ship := LiteSchemas["lineitem"].MustCol("l_shipdate")
	for _, r := range l.Lineitem.Partitions[0][:10] {
		d := r[ship].(string)
		if len(d) != 10 || d < "1992-01-01" || d > "1998-12-31" {
			t.Fatalf("bad date %q", d)
		}
	}
}

func TestLiteQ1MatchesReference(t *testing.T) {
	e, l := liteEngine(t, 0.3, 7, 5)
	const cutoff = "1998-09-02"
	job, plans := LiteQ1(5, 3, cutoff)
	rows, err := e.Run(job, plans)
	if err != nil {
		t.Fatal(err)
	}
	want := LiteQ1Reference(l, cutoff)
	if len(rows) != len(want) {
		t.Fatalf("groups = %d, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		k := [2]string{r[0].(string), r[1].(string)}
		w, ok := want[k]
		if !ok {
			t.Fatalf("unexpected group %v", k)
		}
		got := [4]float64{r[2].(float64), r[3].(float64), r[4].(float64), float64(r[5].(int64))}
		for i := range got {
			if math.Abs(got[i]-w[i]) > 1e-6*math.Max(1, math.Abs(w[i])) {
				t.Errorf("group %v agg %d = %.4f, want %.4f", k, i, got[i], w[i])
			}
		}
	}
}

func TestLiteQ6MatchesReference(t *testing.T) {
	e, l := liteEngine(t, 0.3, 11, 4)
	lo, hi := "1994-01-01", "1995-01-01"
	job, plans := LiteQ6(4, lo, hi)
	rows, err := e.Run(job, plans)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	got := rows[0][0].(float64)
	want := LiteQ6Reference(l, lo, hi)
	if math.Abs(got-want) > 1e-6*math.Max(1, want) {
		t.Errorf("revenue = %.4f, want %.4f", got, want)
	}
	if want == 0 {
		t.Error("reference revenue is zero — generator selectivity broken")
	}
}

func TestLiteQ3MatchesReference(t *testing.T) {
	e, l := liteEngine(t, 0.3, 13, 4)
	const (
		segment = "BUILDING"
		date    = "1995-03-15"
		k       = 10
	)
	job, plans := LiteQ3(4, 3, k, segment, date)
	rows, err := e.Run(job, plans)
	if err != nil {
		t.Fatal(err)
	}
	ref := LiteQ3Reference(l, segment, date)
	if len(ref) < k {
		t.Fatalf("reference has only %d qualifying orders; enlarge sf", len(ref))
	}
	type ord struct {
		key int64
		rev float64
	}
	var expect []ord
	for key, rev := range ref {
		expect = append(expect, ord{key, rev})
	}
	sort.Slice(expect, func(i, j int) bool {
		if expect[i].rev != expect[j].rev {
			return expect[i].rev > expect[j].rev
		}
		return expect[i].key < expect[j].key
	})
	if len(rows) != k {
		t.Fatalf("top-k returned %d rows", len(rows))
	}
	for i, r := range rows {
		if math.Abs(r[1].(float64)-expect[i].rev) > 1e-6 {
			t.Errorf("rank %d revenue = %.4f, want %.4f (order %d)", i, r[1], expect[i].rev, expect[i].key)
		}
	}
}

func TestLiteQ1SurvivesInjectedFailure(t *testing.T) {
	e, l := liteEngine(t, 0.5, 17, 6)
	const cutoff = "1998-09-02"
	job, plans := LiteQ1(6, 3, cutoff)
	wait, err := e.Submit(job, plans)
	if err != nil {
		t.Fatal(err)
	}
	// Try to kill an agg task while the job is in flight; timing-
	// dependent, so success of the kill is not required for the test.
	for i := 0; i < 200; i++ {
		if e.FailTask(job.ID, "agg") {
			break
		}
	}
	rows, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	want := LiteQ1Reference(l, cutoff)
	if len(rows) != len(want) {
		t.Fatalf("groups = %d, want %d", len(rows), len(want))
	}
}

// mustPartition partitions a job for graphlet-structure assertions.
func mustPartition(t *testing.T, j *dag.Job) []*graphlet.Graphlet {
	t.Helper()
	gs, err := graphlet.Partition(j)
	if err != nil {
		t.Fatal(err)
	}
	return gs
}
