package tpch

import (
	"fmt"
	"math/rand"

	"swift/internal/engine"
)

// TPC-H-lite: a seeded, dbgen-like generator for the three tables the
// runnable query suite needs, sized by a miniature scale factor (sf = 1.0
// ≈ 60k lineitems). Dates are ISO strings, so lexicographic comparison is
// chronological. The generated distributions follow the TPC-H spec's
// shapes (1–7 lineitems per order, uniform discounts 0–10%, etc.) closely
// enough for the queries' selectivities to be realistic.

// LiteSchemas gives the column layout of each generated table.
var LiteSchemas = map[string]engine.Schema{
	"lineitem": {"l_orderkey", "l_partkey", "l_suppkey", "l_quantity",
		"l_extendedprice", "l_discount", "l_tax", "l_returnflag",
		"l_linestatus", "l_shipdate"},
	"orders":   {"o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice", "o_orderdate", "o_shippriority"},
	"customer": {"c_custkey", "c_name", "c_mktsegment"},
}

var mktSegments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
var returnFlags = []string{"R", "A", "N"}
var lineStatuses = []string{"O", "F"}

func liteDate(r *rand.Rand) string {
	year := 1992 + r.Intn(7)
	month := 1 + r.Intn(12)
	day := 1 + r.Intn(28)
	return fmt.Sprintf("%04d-%02d-%02d", year, month, day)
}

// Lite holds a generated TPC-H-lite database.
type Lite struct {
	Customer *engine.Table
	Orders   *engine.Table
	Lineitem *engine.Table
}

// Tables lists the generated tables for engine registration.
func (l *Lite) Tables() []*engine.Table {
	return []*engine.Table{l.Customer, l.Orders, l.Lineitem}
}

// GenerateLite builds the database at the given miniature scale factor
// with the given seed; parts is the partition count (scan parallelism) for
// each table.
func GenerateLite(sf float64, seed int64, parts int) *Lite {
	if sf <= 0 {
		sf = 0.1
	}
	if parts < 1 {
		parts = 4
	}
	r := rand.New(rand.NewSource(seed))
	customers := int(1500 * sf)
	if customers < 10 {
		customers = 10
	}
	orders := customers * 10

	custRows := make([]engine.Row, customers)
	for i := range custRows {
		custRows[i] = engine.Row{
			int64(i + 1),
			fmt.Sprintf("Customer#%06d", i+1),
			mktSegments[r.Intn(len(mktSegments))],
		}
	}

	orderRows := make([]engine.Row, orders)
	var lineRows []engine.Row
	for i := range orderRows {
		okey := int64(i + 1)
		lines := 1 + r.Intn(7)
		var total float64
		date := liteDate(r)
		for ln := 0; ln < lines; ln++ {
			qty := float64(1 + r.Intn(50))
			price := 900.0 + 100*float64(r.Intn(1000))/10
			discount := float64(r.Intn(11)) / 100
			tax := float64(r.Intn(9)) / 100
			total += price * (1 - discount)
			lineRows = append(lineRows, engine.Row{
				okey,
				int64(1 + r.Intn(2000)),
				int64(1 + r.Intn(100)),
				qty,
				price,
				discount,
				tax,
				returnFlags[r.Intn(len(returnFlags))],
				lineStatuses[r.Intn(len(lineStatuses))],
				liteDate(r),
			})
		}
		status := "O"
		if r.Intn(2) == 0 {
			status = "F"
		}
		orderRows[i] = engine.Row{
			okey,
			int64(1 + r.Intn(customers)),
			status,
			total,
			date,
			int64(0),
		}
	}

	return &Lite{
		Customer: engine.NewTable("customer", LiteSchemas["customer"], custRows, parts),
		Orders:   engine.NewTable("orders", LiteSchemas["orders"], orderRows, parts),
		Lineitem: engine.NewTable("lineitem", LiteSchemas["lineitem"], lineRows, parts),
	}
}
