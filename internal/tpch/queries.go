package tpch

// Plan shapes for the TPC-H queries other than the two with published
// structure (Q9, Q13). Each plan scans its base tables in M-stages
// (parallelism = compressed size / 200 MB, possibly reduced by pushed-down
// predicates), joins/aggregates in J/R-stages, and ends in an order-by sort
// feeding a single-task adhoc sink — the operator repertoire of Fig. 4(b).

// scan builds a table-scan stage spec; frac scales the bytes actually read
// after column pruning and predicate pushdown.
func scan(name, table string, frac, proc float64) stageSpec {
	gb := TableGB[table] * frac
	tasks := int(gb * 1024 / 200)
	if tasks < 1 {
		tasks = 1
	}
	return stageSpec{name: name, tasks: tasks, scanGB: gb, proc: proc}
}

func join(name string, tasks int, proc float64) stageSpec {
	return stageSpec{name: name, tasks: tasks, proc: proc}
}

func sortStage(name string, tasks int, proc float64) stageSpec {
	return stageSpec{name: name, tasks: tasks, proc: proc, sort: true}
}

func sink(name string) stageSpec {
	return stageSpec{name: name, tasks: 1, proc: 0.5, sink: true}
}

var genericSpecs = map[int]querySpec{
	// Q1: pricing summary report — lineitem scan, group-by, order-by.
	1: {
		stages: []stageSpec{
			scan("M1", "lineitem", 0.7, 5.0),
			join("R2", 64, 2.0),
			sortStage("R3", 8, 1.0),
			sink("R4"),
		},
		edges: []edgeSpec{{"M1", "R2", 4}, {"R2", "R3", 0.05}, {"R3", "R4", 0.01}},
	},
	// Q2: minimum cost supplier — 5-way join over small tables.
	2: {
		stages: []stageSpec{
			scan("M1", "partsupp", 1.0, 2.0),
			scan("M2", "part", 0.3, 1.0),
			scan("M3", "supplier", 1.0, 1.0),
			sortStage("J4", 96, 3.0),
			join("R5", 24, 1.5),
			sortStage("R6", 4, 0.8),
			sink("R7"),
		},
		edges: []edgeSpec{
			{"M1", "J4", 20}, {"M2", "J4", 1}, {"M3", "J4", 1},
			{"J4", "R5", 3}, {"R5", "R6", 0.2}, {"R6", "R7", 0.01},
		},
	},
	// Q3: shipping priority — customer⋈orders⋈lineitem, top-k by revenue.
	3: {
		stages: []stageSpec{
			scan("M1", "customer", 1.0, 1.5),
			scan("M2", "orders", 0.5, 2.0),
			scan("M3", "lineitem", 0.55, 4.0),
			sortStage("J4", 128, 4.0),
			sortStage("R5", 16, 1.5),
			sink("R6"),
		},
		edges: []edgeSpec{
			{"M1", "J4", 2}, {"M2", "J4", 8}, {"M3", "J4", 30},
			{"J4", "R5", 1}, {"R5", "R6", 0.01},
		},
	},
	// Q4: order priority checking — orders semi-join lineitem.
	4: {
		stages: []stageSpec{
			scan("M1", "orders", 0.4, 2.0),
			scan("M2", "lineitem", 0.5, 3.0),
			sortStage("J3", 96, 3.0),
			sortStage("R4", 4, 0.8),
			sink("R5"),
		},
		edges: []edgeSpec{
			{"M1", "J3", 6}, {"M2", "J3", 18},
			{"J3", "R4", 0.1}, {"R4", "R5", 0.01},
		},
	},
	// Q5: local supplier volume — 6-way join and group-by.
	5: {
		stages: []stageSpec{
			scan("M1", "customer", 1.0, 1.5),
			scan("M2", "orders", 0.3, 2.0),
			scan("M3", "lineitem", 0.6, 4.5),
			scan("M4", "supplier", 1.0, 1.0),
			sortStage("J5", 160, 5.0),
			join("R6", 16, 1.5),
			sortStage("R7", 2, 0.5),
			sink("R8"),
		},
		edges: []edgeSpec{
			{"M1", "J5", 2}, {"M2", "J5", 5}, {"M3", "J5", 35}, {"M4", "J5", 0.5},
			{"J5", "R6", 2}, {"R6", "R7", 0.05}, {"R7", "R8", 0.01},
		},
	},
	// Q6: forecasting revenue change — single-table filter + sum.
	6: {
		stages: []stageSpec{
			scan("M1", "lineitem", 0.35, 2.5),
			join("R2", 16, 0.8),
			sink("R3"),
		},
		edges: []edgeSpec{{"M1", "R2", 0.3}, {"R2", "R3", 0.001}},
	},
	// Q7: volume shipping — nation-pair join with year extraction.
	7: {
		stages: []stageSpec{
			scan("M1", "supplier", 1.0, 1.0),
			scan("M2", "lineitem", 0.6, 4.5),
			scan("M3", "orders", 0.8, 2.2),
			scan("M4", "customer", 1.0, 1.5),
			sortStage("J5", 192, 5.0),
			sortStage("J6", 96, 3.0),
			join("R7", 8, 1.0),
			sink("R8"),
		},
		edges: []edgeSpec{
			{"M1", "J5", 0.5}, {"M2", "J5", 38},
			{"M3", "J6", 12}, {"M4", "J6", 3}, {"J5", "J6", 20},
			{"J6", "R7", 0.5}, {"R7", "R8", 0.01},
		},
	},
	// Q8: national market share — widest join tree in the suite.
	8: {
		stages: []stageSpec{
			scan("M1", "part", 0.1, 1.0),
			scan("M2", "lineitem", 0.55, 4.5),
			scan("M3", "supplier", 1.0, 1.0),
			scan("M4", "orders", 0.6, 2.2),
			scan("M5", "customer", 1.0, 1.5),
			sortStage("J6", 160, 4.5),
			sortStage("J7", 128, 3.5),
			join("R8", 8, 1.0),
			sortStage("R9", 2, 0.5),
			sink("R10"),
		},
		edges: []edgeSpec{
			{"M1", "J6", 0.4}, {"M2", "J6", 32}, {"M3", "J6", 0.5},
			{"M4", "J7", 9}, {"M5", "J7", 3}, {"J6", "J7", 12},
			{"J7", "R8", 0.5}, {"R8", "R9", 0.02}, {"R9", "R10", 0.01},
		},
	},
	// Q10: returned item reporting — join + top-20 aggregation.
	10: {
		stages: []stageSpec{
			scan("M1", "customer", 1.0, 1.5),
			scan("M2", "orders", 0.12, 1.8),
			scan("M3", "lineitem", 0.25, 3.0),
			sortStage("J4", 128, 3.5),
			sortStage("R5", 16, 1.2),
			sink("R6"),
		},
		edges: []edgeSpec{
			{"M1", "J4", 3}, {"M2", "J4", 3}, {"M3", "J4", 12},
			{"J4", "R5", 2}, {"R5", "R6", 0.01},
		},
	},
	// Q11: important stock identification — partsupp aggregation.
	11: {
		stages: []stageSpec{
			scan("M1", "partsupp", 1.0, 2.0),
			scan("M2", "supplier", 1.0, 1.0),
			join("J3", 96, 2.5),
			sortStage("R4", 8, 1.0),
			sink("R5"),
		},
		edges: []edgeSpec{
			{"M1", "J3", 16}, {"M2", "J3", 0.5},
			{"J3", "R4", 1}, {"R4", "R5", 0.05},
		},
	},
	// Q12: shipping modes — orders⋈lineitem with mode filter.
	12: {
		stages: []stageSpec{
			scan("M1", "orders", 1.0, 2.2),
			scan("M2", "lineitem", 0.3, 3.0),
			sortStage("J3", 96, 3.0),
			join("R4", 4, 0.8),
			sink("R5"),
		},
		edges: []edgeSpec{
			{"M1", "J3", 10}, {"M2", "J3", 8},
			{"J3", "R4", 0.1}, {"R4", "R5", 0.01},
		},
	},
	// Q14: promotion effect — part⋈lineitem, single aggregate.
	14: {
		stages: []stageSpec{
			scan("M1", "part", 1.0, 1.2),
			scan("M2", "lineitem", 0.25, 3.0),
			join("J3", 96, 2.5),
			sink("R4"),
		},
		edges: []edgeSpec{{"M1", "J3", 4}, {"M2", "J3", 10}, {"J3", "R4", 0.001}},
	},
	// Q15: top supplier — revenue view + join on max.
	15: {
		stages: []stageSpec{
			scan("M1", "lineitem", 0.3, 3.0),
			join("R2", 64, 2.0),
			scan("M3", "supplier", 1.0, 1.0),
			sortStage("J4", 32, 1.5),
			sink("R5"),
		},
		edges: []edgeSpec{
			{"M1", "R2", 8}, {"R2", "J4", 1}, {"M3", "J4", 0.5},
			{"J4", "R5", 0.01},
		},
	},
	// Q16: parts/supplier relationship — distinct counting.
	16: {
		stages: []stageSpec{
			scan("M1", "partsupp", 1.0, 2.0),
			scan("M2", "part", 0.9, 1.2),
			sortStage("J3", 96, 3.0),
			sortStage("R4", 8, 1.0),
			sink("R5"),
		},
		edges: []edgeSpec{
			{"M1", "J3", 14}, {"M2", "J3", 3},
			{"J3", "R4", 1}, {"R4", "R5", 0.05},
		},
	},
	// Q17: small-quantity-order revenue — correlated subquery on part.
	17: {
		stages: []stageSpec{
			scan("M1", "lineitem", 1.0, 5.5),
			scan("M2", "part", 0.05, 1.0),
			sortStage("J3", 192, 5.0),
			join("R4", 8, 1.0),
			sink("R5"),
		},
		edges: []edgeSpec{
			{"M1", "J3", 55}, {"M2", "J3", 0.3},
			{"J3", "R4", 0.2}, {"R4", "R5", 0.001},
		},
	},
	// Q18: large volume customer — lineitem self-aggregation + 3-way join.
	18: {
		stages: []stageSpec{
			scan("M1", "lineitem", 0.9, 5.0),
			sortStage("R2", 192, 4.0),
			scan("M3", "orders", 1.0, 2.2),
			scan("M4", "customer", 1.0, 1.5),
			sortStage("J5", 128, 4.0),
			sortStage("R6", 8, 1.0),
			sink("R7"),
		},
		edges: []edgeSpec{
			{"M1", "R2", 45}, {"R2", "J5", 5},
			{"M3", "J5", 12}, {"M4", "J5", 3},
			{"J5", "R6", 0.5}, {"R6", "R7", 0.01},
		},
	},
	// Q19: discounted revenue — part⋈lineitem with disjunctive predicate.
	19: {
		stages: []stageSpec{
			scan("M1", "lineitem", 0.5, 4.0),
			scan("M2", "part", 0.8, 1.2),
			join("J3", 128, 3.0),
			sink("R4"),
		},
		edges: []edgeSpec{{"M1", "J3", 20}, {"M2", "J3", 2}, {"J3", "R4", 0.001}},
	},
	// Q20: potential part promotion — nested semi-joins.
	20: {
		stages: []stageSpec{
			scan("M1", "lineitem", 0.35, 3.2),
			join("R2", 96, 2.0),
			scan("M3", "partsupp", 0.8, 1.8),
			scan("M4", "supplier", 1.0, 1.0),
			sortStage("J5", 64, 2.5),
			sortStage("R6", 4, 0.8),
			sink("R7"),
		},
		edges: []edgeSpec{
			{"M1", "R2", 9}, {"R2", "J5", 2},
			{"M3", "J5", 10}, {"M4", "J5", 0.5},
			{"J5", "R6", 0.1}, {"R6", "R7", 0.01},
		},
	},
	// Q21: suppliers who kept orders waiting — heaviest multi-join.
	21: {
		stages: []stageSpec{
			scan("M1", "supplier", 1.0, 1.0),
			scan("M2", "lineitem", 1.0, 5.5),
			scan("M3", "orders", 0.5, 2.2),
			sortStage("J4", 256, 6.0),
			sortStage("J5", 128, 4.0),
			sortStage("R6", 8, 1.0),
			sink("R7"),
		},
		edges: []edgeSpec{
			{"M1", "J4", 0.5}, {"M2", "J4", 58},
			{"M3", "J5", 8}, {"J4", "J5", 25},
			{"J5", "R6", 0.3}, {"R6", "R7", 0.01},
		},
	},
	// Q22: global sales opportunity — customer anti-join.
	22: {
		stages: []stageSpec{
			scan("M1", "customer", 1.0, 1.8),
			scan("M2", "orders", 1.0, 2.2),
			sortStage("J3", 64, 2.5),
			sortStage("R4", 4, 0.8),
			sink("R5"),
		},
		edges: []edgeSpec{
			{"M1", "J3", 2}, {"M2", "J3", 8},
			{"J3", "R4", 0.1}, {"R4", "R5", 0.01},
		},
	},
}
