package tpch

import (
	"swift/internal/dag"
	"swift/internal/engine"
)

// Runnable TPC-H-lite queries: physical plans that execute for real on the
// engine against a GenerateLite database. Three queries cover the suite's
// operator classes — Q1 (scan + streamed aggregation), Q6 (filter + global
// sum) and Q3 (3-way join + group-by + top-k ordering). Each returns the
// job DAG and the stage bodies; reference implementations for verification
// live beside them (LiteQ*Reference).

// liteCols caches frequently used column indexes.
var (
	liCols = LiteSchemas["lineitem"]
	orCols = LiteSchemas["orders"]
	cuCols = LiteSchemas["customer"]
)

// LiteQ1 is the pricing-summary query: per (returnflag, linestatus), sum
// of quantity, sum of extended price, sum of discounted price and row
// count over lineitems shipped up to the cutoff date.
func LiteQ1(scanTasks, aggTasks int, cutoff string) (*dag.Job, engine.Plans) {
	job := dag.NewBuilder("lite-q1").
		Stage("scan", scanTasks, dag.Op(dag.OpTableScan), dag.Op(dag.OpShuffleWrite)).
		StageOpt(&dag.Stage{Name: "agg", Tasks: aggTasks, Idempotent: true,
			Operators: []dag.Operator{dag.Op(dag.OpShuffleRead), dag.Op(dag.OpStreamedAggregate), dag.Op(dag.OpAdhocSink)}}).
		Edge("scan", "agg", dag.OpStreamedAggregate, 1<<20).
		MustBuild()

	flag := liCols.MustCol("l_returnflag")
	status := liCols.MustCol("l_linestatus")
	ship := liCols.MustCol("l_shipdate")
	qty := liCols.MustCol("l_quantity")
	price := liCols.MustCol("l_extendedprice")
	disc := liCols.MustCol("l_discount")

	plans := engine.Plans{
		"scan": func(ctx *engine.TaskContext) error {
			b, err := ctx.TablePartitionBatch("lineitem")
			if err != nil {
				return err
			}
			// Columnar scan: one typed pass over the shipdate vector builds
			// the selection, projection is free, and the discounted-price
			// column is computed vector-at-a-time.
			sel := make([]int32, 0, b.Len)
			for i, s := range b.Cols[ship].Strs {
				if s <= cutoff {
					sel = append(sel, int32(i))
				}
			}
			f := b.Project([]int{flag, status, qty, price, disc}).Gather(sel)
			discounted := make([]float64, f.Len)
			prices := f.Cols[3].Floats
			discs := f.Cols[4].Floats
			for i := range discounted {
				discounted[i] = prices[i] * (1 - discs[i])
			}
			out := f.Project([]int{0, 1, 2, 3}).WithCol(engine.Float64Col(discounted))
			return ctx.EmitBatchByKey("agg", out, []int{0, 1})
		},
		"agg": func(ctx *engine.TaskContext) error {
			b, err := ctx.InputBatch("scan")
			if err != nil {
				return err
			}
			ctx.SinkBatch(engine.HashAggregateBatch(b, []int{0, 1}, []engine.Agg{
				{Kind: engine.AggSum, Col: 2},
				{Kind: engine.AggSum, Col: 3},
				{Kind: engine.AggSum, Col: 4},
				{Kind: engine.AggCount, Col: 0},
			}))
			return nil
		},
	}
	return job, plans
}

// LiteQ1Reference computes Q1 directly over the table.
func LiteQ1Reference(l *Lite, cutoff string) map[[2]string][4]float64 {
	flag := liCols.MustCol("l_returnflag")
	status := liCols.MustCol("l_linestatus")
	ship := liCols.MustCol("l_shipdate")
	qty := liCols.MustCol("l_quantity")
	price := liCols.MustCol("l_extendedprice")
	disc := liCols.MustCol("l_discount")
	out := map[[2]string][4]float64{}
	for _, part := range l.Lineitem.Partitions {
		for _, r := range part {
			if r[ship].(string) > cutoff {
				continue
			}
			k := [2]string{r[flag].(string), r[status].(string)}
			acc := out[k]
			acc[0] += r[qty].(float64)
			acc[1] += r[price].(float64)
			acc[2] += r[price].(float64) * (1 - r[disc].(float64))
			acc[3]++
			out[k] = acc
		}
	}
	return out
}

// LiteQ6 is the forecasting-revenue query: sum(extendedprice × discount)
// over lineitems in a date range with discount and quantity bands.
func LiteQ6(scanTasks int, lo, hi string) (*dag.Job, engine.Plans) {
	job := dag.NewBuilder("lite-q6").
		Stage("scan", scanTasks, dag.Op(dag.OpTableScan), dag.Op(dag.OpFilter), dag.Op(dag.OpShuffleWrite)).
		Stage("sum", 1, dag.Op(dag.OpShuffleRead), dag.Op(dag.OpHashAggregate), dag.Op(dag.OpAdhocSink)).
		Pipeline("scan", "sum", 1<<20).
		MustBuild()
	ship := liCols.MustCol("l_shipdate")
	qty := liCols.MustCol("l_quantity")
	price := liCols.MustCol("l_extendedprice")
	disc := liCols.MustCol("l_discount")
	plans := engine.Plans{
		"scan": func(ctx *engine.TaskContext) error {
			b, err := ctx.TablePartitionBatch("lineitem")
			if err != nil {
				return err
			}
			// Fully columnar filter+sum: the predicate and the fold both run
			// over typed vectors, so no cell is ever boxed.
			ships := b.Cols[ship].Strs
			qtys := b.Cols[qty].Floats
			prices := b.Cols[price].Floats
			var rev float64
			for i, d := range b.Cols[disc].Floats {
				if s := ships[i]; s < lo || s >= hi {
					continue
				}
				if d < 0.05 || d > 0.07 || qtys[i] >= 24 {
					continue
				}
				rev += prices[i] * d
			}
			part := engine.NewBatch(engine.Float64Col([]float64{rev}))
			return ctx.EmitBatchPartitioned("sum", []*engine.Batch{part})
		},
		"sum": func(ctx *engine.TaskContext) error {
			b, err := ctx.InputBatch("scan")
			if err != nil {
				return err
			}
			var total float64
			for _, v := range b.Cols[0].Floats {
				total += v
			}
			ctx.Sink([]engine.Row{{total}})
			return nil
		},
	}
	return job, plans
}

// LiteQ6Reference computes Q6 directly.
func LiteQ6Reference(l *Lite, lo, hi string) float64 {
	ship := liCols.MustCol("l_shipdate")
	qty := liCols.MustCol("l_quantity")
	price := liCols.MustCol("l_extendedprice")
	disc := liCols.MustCol("l_discount")
	var rev float64
	for _, part := range l.Lineitem.Partitions {
		for _, r := range part {
			d := r[disc].(float64)
			if s := r[ship].(string); s < lo || s >= hi {
				continue
			}
			if d < 0.05 || d > 0.07 || r[qty].(float64) >= 24 {
				continue
			}
			rev += r[price].(float64) * d
		}
	}
	return rev
}

// LiteQ3 is the shipping-priority query: customers in a market segment
// joined to their orders placed before a date, revenue aggregated per
// order, top-k by revenue.
func LiteQ3(scanTasks, joinTasks, topK int, segment, date string) (*dag.Job, engine.Plans) {
	job := dag.NewBuilder("lite-q3").
		Stage("cust", scanTasks, dag.Op(dag.OpTableScan), dag.Op(dag.OpFilter), dag.Op(dag.OpShuffleWrite)).
		Stage("ord", scanTasks, dag.Op(dag.OpTableScan), dag.Op(dag.OpFilter), dag.Op(dag.OpShuffleWrite)).
		Stage("line", scanTasks, dag.Op(dag.OpTableScan), dag.Op(dag.OpShuffleWrite)).
		Stage("join", joinTasks, dag.Op(dag.OpShuffleRead), dag.Op(dag.OpHashJoin), dag.Op(dag.OpHashAggregate), dag.Op(dag.OpShuffleWrite)).
		StageOpt(&dag.Stage{Name: "top", Tasks: 1, Idempotent: true,
			Operators: []dag.Operator{dag.Op(dag.OpShuffleRead), dag.Op(dag.OpSortBy), dag.Op(dag.OpLimit), dag.Op(dag.OpAdhocSink)}}).
		Pipeline("cust", "join", 1<<20).
		Pipeline("ord", "join", 1<<20).
		Pipeline("line", "join", 1<<20).
		Edge("join", "top", dag.OpSortBy, 1<<20).
		MustBuild()

	cKey := cuCols.MustCol("c_custkey")
	cSeg := cuCols.MustCol("c_mktsegment")
	oKey := orCols.MustCol("o_orderkey")
	oCust := orCols.MustCol("o_custkey")
	oDate := orCols.MustCol("o_orderdate")
	lKey := liCols.MustCol("l_orderkey")
	lPrice := liCols.MustCol("l_extendedprice")
	lDisc := liCols.MustCol("l_discount")

	plans := engine.Plans{
		"cust": func(ctx *engine.TaskContext) error {
			b, err := ctx.TablePartitionBatch("customer")
			if err != nil {
				return err
			}
			segs := b.Cols[cSeg].Strs
			out := engine.FilterBatch(b, func(i int) bool { return segs[i] == segment }).
				Project([]int{cKey})
			// Customers partition by custkey; orders carry custkey too,
			// but the join key downstream is orderkey, so broadcast the
			// (small, filtered) customer set instead.
			return ctx.BroadcastBatch("join", out)
		},
		"ord": func(ctx *engine.TaskContext) error {
			b, err := ctx.TablePartitionBatch("orders")
			if err != nil {
				return err
			}
			dates := b.Cols[oDate].Strs
			out := engine.FilterBatch(b, func(i int) bool { return dates[i] < date }).
				Project([]int{oKey, oCust, oDate})
			return ctx.EmitBatchByKey("join", out, []int{0})
		},
		"line": func(ctx *engine.TaskContext) error {
			b, err := ctx.TablePartitionBatch("lineitem")
			if err != nil {
				return err
			}
			revs := make([]float64, b.Len)
			prices := b.Cols[lPrice].Floats
			discs := b.Cols[lDisc].Floats
			for i := range revs {
				revs[i] = prices[i] * (1 - discs[i])
			}
			out := b.Project([]int{lKey}).WithCol(engine.Float64Col(revs))
			return ctx.EmitBatchByKey("join", out, []int{0})
		},
		"join": func(ctx *engine.TaskContext) error {
			custs, err := ctx.InputBatch("cust") // (custkey)
			if err != nil {
				return err
			}
			orders, err := ctx.InputBatch("ord") // (orderkey, custkey, orderdate)
			if err != nil {
				return err
			}
			lines, err := ctx.InputBatch("line") // (orderkey, revenue)
			if err != nil {
				return err
			}
			// Semi-join orders to segment customers (custkey is unique, so
			// an inner join cannot duplicate orders), keep (orderkey, date).
			oj := engine.HashJoinBatch(custs, []int{0}, orders, []int{1}).
				Project([]int{0, 2})
			// Lineitems against qualifying orders, then revenue per order.
			// HashAggregateBatch sorts by its keys; orderkey is unique, so
			// the result is orderkey-ordered — deterministic for the sink.
			j := engine.HashJoinBatch(oj, []int{0}, lines, []int{0})
			agg := engine.HashAggregateBatch(j, []int{0, 3}, []engine.Agg{
				{Kind: engine.AggSum, Col: 1},
			})
			out := agg.Project([]int{0, 2, 1}) // (orderkey, revenue, orderdate)
			return ctx.EmitBatchPartitioned("top", []*engine.Batch{out})
		},
		"top": func(ctx *engine.TaskContext) error {
			rows, err := ctx.Input("join")
			if err != nil {
				return err
			}
			// Order by revenue desc via the bounded heap — no negate-and-
			// copy round-trip through an ascending sort.
			ctx.Sink(engine.TopKDesc(rows, []int{1}, topK))
			return nil
		},
	}
	return job, plans
}

// LiteQ3Reference computes Q3 directly, returning orderkey → revenue for
// the qualifying orders (the caller takes the top-k).
func LiteQ3Reference(l *Lite, segment, date string) map[int64]float64 {
	cKey := cuCols.MustCol("c_custkey")
	cSeg := cuCols.MustCol("c_mktsegment")
	oKey := orCols.MustCol("o_orderkey")
	oCust := orCols.MustCol("o_custkey")
	oDate := orCols.MustCol("o_orderdate")
	lKey := liCols.MustCol("l_orderkey")
	lPrice := liCols.MustCol("l_extendedprice")
	lDisc := liCols.MustCol("l_discount")

	inSeg := map[int64]bool{}
	for _, part := range l.Customer.Partitions {
		for _, r := range part {
			if r[cSeg].(string) == segment {
				inSeg[r[cKey].(int64)] = true
			}
		}
	}
	keep := map[int64]bool{}
	for _, part := range l.Orders.Partitions {
		for _, r := range part {
			if r[oDate].(string) < date && inSeg[r[oCust].(int64)] {
				keep[r[oKey].(int64)] = true
			}
		}
	}
	rev := map[int64]float64{}
	for _, part := range l.Lineitem.Partitions {
		for _, r := range part {
			if k := r[lKey].(int64); keep[k] {
				rev[k] += r[lPrice].(float64) * (1 - r[lDisc].(float64))
			}
		}
	}
	return rev
}
