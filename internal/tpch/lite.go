package tpch

import (
	"swift/internal/dag"
	"swift/internal/engine"
)

// Runnable TPC-H-lite queries: physical plans that execute for real on the
// engine against a GenerateLite database. Three queries cover the suite's
// operator classes — Q1 (scan + streamed aggregation), Q6 (filter + global
// sum) and Q3 (3-way join + group-by + top-k ordering). Each returns the
// job DAG and the stage bodies; reference implementations for verification
// live beside them (LiteQ*Reference).

// liteCols caches frequently used column indexes.
var (
	liCols = LiteSchemas["lineitem"]
	orCols = LiteSchemas["orders"]
	cuCols = LiteSchemas["customer"]
)

// LiteQ1 is the pricing-summary query: per (returnflag, linestatus), sum
// of quantity, sum of extended price, sum of discounted price and row
// count over lineitems shipped up to the cutoff date.
func LiteQ1(scanTasks, aggTasks int, cutoff string) (*dag.Job, engine.Plans) {
	job := dag.NewBuilder("lite-q1").
		Stage("scan", scanTasks, dag.Op(dag.OpTableScan), dag.Op(dag.OpShuffleWrite)).
		StageOpt(&dag.Stage{Name: "agg", Tasks: aggTasks, Idempotent: true,
			Operators: []dag.Operator{dag.Op(dag.OpShuffleRead), dag.Op(dag.OpStreamedAggregate), dag.Op(dag.OpAdhocSink)}}).
		Edge("scan", "agg", dag.OpStreamedAggregate, 1<<20).
		MustBuild()

	flag := liCols.MustCol("l_returnflag")
	status := liCols.MustCol("l_linestatus")
	ship := liCols.MustCol("l_shipdate")
	qty := liCols.MustCol("l_quantity")
	price := liCols.MustCol("l_extendedprice")
	disc := liCols.MustCol("l_discount")

	plans := engine.Plans{
		"scan": func(ctx *engine.TaskContext) error {
			part, err := ctx.TablePartition("lineitem")
			if err != nil {
				return err
			}
			var out []engine.Row
			for _, r := range part {
				if r[ship].(string) > cutoff {
					continue
				}
				out = append(out, engine.Row{
					r[flag], r[status], r[qty], r[price],
					r[price].(float64) * (1 - r[disc].(float64)),
				})
			}
			return ctx.EmitByKey("agg", out, []int{0, 1})
		},
		"agg": func(ctx *engine.TaskContext) error {
			rows, err := ctx.Input("scan")
			if err != nil {
				return err
			}
			ctx.Sink(engine.HashAggregate(rows, []int{0, 1}, []engine.Agg{
				{Kind: engine.AggSum, Col: 2},
				{Kind: engine.AggSum, Col: 3},
				{Kind: engine.AggSum, Col: 4},
				{Kind: engine.AggCount, Col: 0},
			}))
			return nil
		},
	}
	return job, plans
}

// LiteQ1Reference computes Q1 directly over the table.
func LiteQ1Reference(l *Lite, cutoff string) map[[2]string][4]float64 {
	flag := liCols.MustCol("l_returnflag")
	status := liCols.MustCol("l_linestatus")
	ship := liCols.MustCol("l_shipdate")
	qty := liCols.MustCol("l_quantity")
	price := liCols.MustCol("l_extendedprice")
	disc := liCols.MustCol("l_discount")
	out := map[[2]string][4]float64{}
	for _, part := range l.Lineitem.Partitions {
		for _, r := range part {
			if r[ship].(string) > cutoff {
				continue
			}
			k := [2]string{r[flag].(string), r[status].(string)}
			acc := out[k]
			acc[0] += r[qty].(float64)
			acc[1] += r[price].(float64)
			acc[2] += r[price].(float64) * (1 - r[disc].(float64))
			acc[3]++
			out[k] = acc
		}
	}
	return out
}

// LiteQ6 is the forecasting-revenue query: sum(extendedprice × discount)
// over lineitems in a date range with discount and quantity bands.
func LiteQ6(scanTasks int, lo, hi string) (*dag.Job, engine.Plans) {
	job := dag.NewBuilder("lite-q6").
		Stage("scan", scanTasks, dag.Op(dag.OpTableScan), dag.Op(dag.OpFilter), dag.Op(dag.OpShuffleWrite)).
		Stage("sum", 1, dag.Op(dag.OpShuffleRead), dag.Op(dag.OpHashAggregate), dag.Op(dag.OpAdhocSink)).
		Pipeline("scan", "sum", 1<<20).
		MustBuild()
	ship := liCols.MustCol("l_shipdate")
	qty := liCols.MustCol("l_quantity")
	price := liCols.MustCol("l_extendedprice")
	disc := liCols.MustCol("l_discount")
	plans := engine.Plans{
		"scan": func(ctx *engine.TaskContext) error {
			part, err := ctx.TablePartition("lineitem")
			if err != nil {
				return err
			}
			var rev float64
			for _, r := range part {
				d := r[disc].(float64)
				if s := r[ship].(string); s < lo || s >= hi {
					continue
				}
				if d < 0.05 || d > 0.07 || r[qty].(float64) >= 24 {
					continue
				}
				rev += r[price].(float64) * d
			}
			return ctx.EmitPartitioned("sum", [][]engine.Row{{{rev}}})
		},
		"sum": func(ctx *engine.TaskContext) error {
			rows, err := ctx.Input("scan")
			if err != nil {
				return err
			}
			var total float64
			for _, r := range rows {
				total += r[0].(float64)
			}
			ctx.Sink([]engine.Row{{total}})
			return nil
		},
	}
	return job, plans
}

// LiteQ6Reference computes Q6 directly.
func LiteQ6Reference(l *Lite, lo, hi string) float64 {
	ship := liCols.MustCol("l_shipdate")
	qty := liCols.MustCol("l_quantity")
	price := liCols.MustCol("l_extendedprice")
	disc := liCols.MustCol("l_discount")
	var rev float64
	for _, part := range l.Lineitem.Partitions {
		for _, r := range part {
			d := r[disc].(float64)
			if s := r[ship].(string); s < lo || s >= hi {
				continue
			}
			if d < 0.05 || d > 0.07 || r[qty].(float64) >= 24 {
				continue
			}
			rev += r[price].(float64) * d
		}
	}
	return rev
}

// LiteQ3 is the shipping-priority query: customers in a market segment
// joined to their orders placed before a date, revenue aggregated per
// order, top-k by revenue.
func LiteQ3(scanTasks, joinTasks, topK int, segment, date string) (*dag.Job, engine.Plans) {
	job := dag.NewBuilder("lite-q3").
		Stage("cust", scanTasks, dag.Op(dag.OpTableScan), dag.Op(dag.OpFilter), dag.Op(dag.OpShuffleWrite)).
		Stage("ord", scanTasks, dag.Op(dag.OpTableScan), dag.Op(dag.OpFilter), dag.Op(dag.OpShuffleWrite)).
		Stage("line", scanTasks, dag.Op(dag.OpTableScan), dag.Op(dag.OpShuffleWrite)).
		Stage("join", joinTasks, dag.Op(dag.OpShuffleRead), dag.Op(dag.OpHashJoin), dag.Op(dag.OpHashAggregate), dag.Op(dag.OpShuffleWrite)).
		StageOpt(&dag.Stage{Name: "top", Tasks: 1, Idempotent: true,
			Operators: []dag.Operator{dag.Op(dag.OpShuffleRead), dag.Op(dag.OpSortBy), dag.Op(dag.OpLimit), dag.Op(dag.OpAdhocSink)}}).
		Pipeline("cust", "join", 1<<20).
		Pipeline("ord", "join", 1<<20).
		Pipeline("line", "join", 1<<20).
		Edge("join", "top", dag.OpSortBy, 1<<20).
		MustBuild()

	cKey := cuCols.MustCol("c_custkey")
	cSeg := cuCols.MustCol("c_mktsegment")
	oKey := orCols.MustCol("o_orderkey")
	oCust := orCols.MustCol("o_custkey")
	oDate := orCols.MustCol("o_orderdate")
	lKey := liCols.MustCol("l_orderkey")
	lPrice := liCols.MustCol("l_extendedprice")
	lDisc := liCols.MustCol("l_discount")

	plans := engine.Plans{
		"cust": func(ctx *engine.TaskContext) error {
			part, err := ctx.TablePartition("customer")
			if err != nil {
				return err
			}
			var out []engine.Row
			for _, r := range part {
				if r[cSeg].(string) == segment {
					out = append(out, engine.Row{r[cKey]})
				}
			}
			// Customers partition by custkey; orders carry custkey too,
			// but the join key downstream is orderkey, so broadcast the
			// (small, filtered) customer set instead.
			return ctx.Broadcast("join", out)
		},
		"ord": func(ctx *engine.TaskContext) error {
			part, err := ctx.TablePartition("orders")
			if err != nil {
				return err
			}
			var out []engine.Row
			for _, r := range part {
				if r[oDate].(string) < date {
					out = append(out, engine.Row{r[oKey], r[oCust], r[oDate]})
				}
			}
			return ctx.EmitByKey("join", out, []int{0})
		},
		"line": func(ctx *engine.TaskContext) error {
			part, err := ctx.TablePartition("lineitem")
			if err != nil {
				return err
			}
			out := make([]engine.Row, 0, len(part))
			for _, r := range part {
				out = append(out, engine.Row{r[lKey], r[lPrice].(float64) * (1 - r[lDisc].(float64))})
			}
			return ctx.EmitByKey("join", out, []int{0})
		},
		"join": func(ctx *engine.TaskContext) error {
			custs, err := ctx.Input("cust")
			if err != nil {
				return err
			}
			orders, err := ctx.Input("ord")
			if err != nil {
				return err
			}
			lines, err := ctx.Input("line")
			if err != nil {
				return err
			}
			inSeg := map[int64]bool{}
			for _, c := range custs {
				inSeg[c[0].(int64)] = true
			}
			// orders filtered to the segment, keyed by orderkey.
			keep := map[int64]string{}
			for _, o := range orders {
				if inSeg[o[1].(int64)] {
					keep[o[0].(int64)] = o[2].(string)
				}
			}
			rev := map[int64]float64{}
			for _, l := range lines {
				k := l[0].(int64)
				if _, ok := keep[k]; ok {
					rev[k] += l[1].(float64)
				}
			}
			var out []engine.Row
			for k, v := range rev {
				out = append(out, engine.Row{k, v, keep[k]})
			}
			engine.SortRows(out, []int{0}) // deterministic order
			return ctx.EmitPartitioned("top", [][]engine.Row{out})
		},
		"top": func(ctx *engine.TaskContext) error {
			rows, err := ctx.Input("join")
			if err != nil {
				return err
			}
			// Order by revenue desc via the bounded heap — no negate-and-
			// copy round-trip through an ascending sort.
			ctx.Sink(engine.TopKDesc(rows, []int{1}, topK))
			return nil
		},
	}
	return job, plans
}

// LiteQ3Reference computes Q3 directly, returning orderkey → revenue for
// the qualifying orders (the caller takes the top-k).
func LiteQ3Reference(l *Lite, segment, date string) map[int64]float64 {
	cKey := cuCols.MustCol("c_custkey")
	cSeg := cuCols.MustCol("c_mktsegment")
	oKey := orCols.MustCol("o_orderkey")
	oCust := orCols.MustCol("o_custkey")
	oDate := orCols.MustCol("o_orderdate")
	lKey := liCols.MustCol("l_orderkey")
	lPrice := liCols.MustCol("l_extendedprice")
	lDisc := liCols.MustCol("l_discount")

	inSeg := map[int64]bool{}
	for _, part := range l.Customer.Partitions {
		for _, r := range part {
			if r[cSeg].(string) == segment {
				inSeg[r[cKey].(int64)] = true
			}
		}
	}
	keep := map[int64]bool{}
	for _, part := range l.Orders.Partitions {
		for _, r := range part {
			if r[oDate].(string) < date && inSeg[r[oCust].(int64)] {
				keep[r[oKey].(int64)] = true
			}
		}
	}
	rev := map[int64]float64{}
	for _, part := range l.Lineitem.Partitions {
		for _, r := range part {
			if k := r[lKey].(int64); keep[k] {
				rev[k] += r[lPrice].(float64) * (1 - r[lDisc].(float64))
			}
		}
	}
	return rev
}
