// Package tpch provides the evaluation workloads: physical DAGs for the 22
// TPC-H queries at the paper's 1 TB scale (Q9 and Q13 reproduce the task
// structure published in Figs. 4 and 13), the Terasort jobs of Table I, and
// the Swift-language source of Q9 (Fig. 1) for the SQL front end.
//
// Task counts follow the paper's 200 MB-per-scan-task convention: lineitem
// at 1 TB compresses to ~190 GB, giving the 956 map tasks of Fig. 4.
package tpch

import (
	"fmt"

	"swift/internal/dag"
)

// GB is bytes per gigabyte.
const GB = int64(1) << 30

// MB is bytes per megabyte.
const MB = int64(1) << 20

// Table sizes at the 1 TB scale factor after columnar compression, in GB.
// Scan-task counts are size/200 MB, matching the published Q9 task counts.
var TableGB = map[string]float64{
	"lineitem": 186.7,
	"orders":   43.0,
	"partsupp": 78.7,
	"part":     9.0,
	"customer": 14.0,
	"supplier": 4.0,
	"nation":   0.2,
	"region":   0.1,
}

// ScanTasks returns the scan parallelism for a table at 1 TB.
func ScanTasks(table string) int {
	gb, ok := TableGB[table]
	if !ok {
		return 1
	}
	t := int(gb*1024/200 + 0.5)
	if t < 1 {
		t = 1
	}
	return t
}

// stageSpec describes one stage of a query plan compactly.
type stageSpec struct {
	name   string
	tasks  int
	scanGB float64 // >0 for table-scan stages
	proc   float64 // per-task record-processing seconds
	sort   bool    // stage performs a global sort (MergeSort)
	sink   bool    // stage is the adhoc sink
	recs   int64   // input records (Fig. 13 reporting; optional)
}

type edgeSpec struct {
	from, to string
	gb       float64
}

type querySpec struct {
	stages []stageSpec
	edges  []edgeSpec
}

// procScale converts the per-stage work units of the query specs into
// seconds of record processing; calibrated so that Swift's TPC-H runtimes
// land in the paper's range (tens to a few hundred seconds at 1 TB).
const procScale = 3.0

// build converts a spec into a validated job DAG. Barrier edges emerge from
// the producers' MergeSort operators via dag.Classify, exactly as in the
// paper's Fig. 4 discussion.
func build(id string, qs querySpec) *dag.Job {
	j := dag.NewJob(id)
	for _, s := range qs.stages {
		ops := []dag.Operator{}
		switch {
		case s.scanGB > 0:
			ops = append(ops, dag.Op(dag.OpTableScan))
			if s.sort {
				ops = append(ops, dag.Op(dag.OpMergeSort))
			}
			ops = append(ops, dag.Op(dag.OpShuffleWrite))
		case s.sink:
			ops = append(ops, dag.Op(dag.OpShuffleRead), dag.Op(dag.OpAdhocSink))
		case s.sort:
			ops = append(ops, dag.Op(dag.OpShuffleRead), dag.Op(dag.OpMergeSort), dag.Op(dag.OpShuffleWrite))
		default:
			ops = append(ops, dag.Op(dag.OpShuffleRead), dag.Op(dag.OpHashAggregate), dag.Op(dag.OpShuffleWrite))
		}
		st := &dag.Stage{
			Name: s.name, Tasks: s.tasks, Operators: ops, Idempotent: true,
			Cost: dag.Cost{
				ScanBytes:             int64(s.scanGB * float64(GB)),
				ProcessSecondsPerTask: s.proc * procScale,
				Records:               s.recs,
			},
		}
		if err := j.AddStage(st); err != nil {
			panic("tpch: " + err.Error())
		}
	}
	for _, e := range qs.edges {
		err := j.AddEdge(&dag.Edge{From: e.from, To: e.to, Op: dag.OpShuffleRead,
			Bytes: int64(e.gb * float64(GB))})
		if err != nil {
			panic("tpch: " + err.Error())
		}
	}
	j.Classify()
	if err := j.Validate(); err != nil {
		panic("tpch: " + err.Error())
	}
	return j
}

// Q9 returns the TPC-H Q9 DAG of Fig. 4: twelve stages in four graphlets,
// with MergeSort in J4, J6 and J10 making J4→J6, J6→J10 and J10→R11 barrier
// edges. Task counts are the published ones; join-stage parallelisms are
// inferred.
func Q9() *dag.Job {
	return build("tpch-q9", querySpec{
		stages: []stageSpec{
			{name: "M1", tasks: 956, scanGB: TableGB["lineitem"], proc: 4.0},
			{name: "M2", tasks: 220, scanGB: TableGB["orders"], proc: 2.5},
			{name: "M3", tasks: 3, scanGB: TableGB["supplier"] * 0.15, proc: 1.0},
			{name: "J4", tasks: 256, proc: 6.0, sort: true},
			{name: "M5", tasks: 403, scanGB: TableGB["partsupp"], proc: 2.5},
			{name: "J6", tasks: 256, proc: 5.0, sort: true},
			{name: "M7", tasks: 220, scanGB: TableGB["orders"], proc: 2.0},
			{name: "M8", tasks: 20, scanGB: TableGB["part"] * 0.45, proc: 1.5},
			{name: "R9", tasks: 64, proc: 2.0},
			{name: "J10", tasks: 128, proc: 5.0, sort: true},
			{name: "R11", tasks: 32, proc: 2.0},
			{name: "R12", tasks: 1, proc: 1.0, sink: true},
		},
		edges: []edgeSpec{
			{"M1", "J4", 60}, {"M2", "J4", 14}, {"M3", "J4", 0.3},
			{"J4", "J6", 40}, {"M5", "J6", 25},
			{"M7", "J10", 12}, {"M8", "R9", 2}, {"R9", "J10", 2},
			{"J6", "J10", 30},
			{"J10", "R11", 3}, {"R11", "R12", 0.05},
		},
	})
}

// Q13 returns the TPC-H Q13 DAG of Fig. 13, used for the fault-tolerance
// experiment (Fig. 14). Per-task record counts and input sizes follow the
// published table.
func Q13() *dag.Job {
	return build("tpch-q13", querySpec{
		stages: []stageSpec{
			{name: "M1", tasks: 498, scanGB: 37.0, proc: 8.0, recs: 498 * 3012048},
			{name: "M2", tasks: 72, scanGB: 14.0, proc: 3.0, recs: 72 * 262697},
			{name: "J3", tasks: 200, proc: 10.0, sort: true, recs: 200 * 2861350},
			{name: "R4", tasks: 100, proc: 8.0, recs: 100 * 262698},
			{name: "R5", tasks: 10, proc: 4.0, sort: true, recs: 10 * 28},
			{name: "R6", tasks: 1, proc: 3.0, sink: true, recs: 30},
		},
		edges: []edgeSpec{
			{"M1", "J3", 28}, {"M2", "J3", 5},
			{"J3", "R4", 12}, {"R4", "R5", 0.01}, {"R5", "R6", 0.001},
		},
	})
}

// Q13Detail is one row of the Fig. 13 job-detail table.
type Q13Detail struct {
	Stage            string
	Tasks            int
	RecordsPerTask   int64
	InputSizePerTask string
}

// Q13Details reproduces the Fig. 13 table.
func Q13Details() []Q13Detail {
	return []Q13Detail{
		{"M1", 498, 3012048, "76MB"},
		{"M2", 72, 262697, "5MB"},
		{"J3", 200, 2861350, "26MB"},
		{"R4", 100, 262698, "2MB"},
		{"R5", 10, 28, "1.1KB"},
		{"R6", 1, 30, "1.3KB"},
	}
}

// Queries returns all 22 TPC-H query DAGs at 1 TB, keyed "Q1".."Q22".
func Queries() map[string]*dag.Job {
	out := make(map[string]*dag.Job, 22)
	for i := 1; i <= 22; i++ {
		out[fmt.Sprintf("Q%d", i)] = Query(i)
	}
	return out
}

// Query returns the DAG for TPC-H query n (1..22); it panics on other n.
// Q9 and Q13 use the published structure; the remaining plans are shaped
// from the query text (tables joined, aggregation depth) with scan
// parallelism derived from table sizes.
func Query(n int) *dag.Job {
	switch n {
	case 9:
		return Q9()
	case 13:
		return Q13()
	}
	spec, ok := genericSpecs[n]
	if !ok {
		panic(fmt.Sprintf("tpch: unknown query %d", n))
	}
	return build(fmt.Sprintf("tpch-q%d", n), spec)
}
