package rpc

import (
	"math"
	"testing"

	"swift/internal/engine"
)

// FuzzBatchCodec hammers the wire codec from both directions: arbitrary
// bytes must decode to an error or a batch — never a panic, never an
// allocation bomb — and whatever decodes must survive the re-encode
// round trip semantically, with the re-encoding a fixpoint (a crafted
// input may be a non-canonical spelling — an all-zero null bitmap, set
// padding bits in a packed bool column — so first-decode byte identity
// is not required, but encode∘decode must converge immediately).
func FuzzBatchCodec(f *testing.F) {
	seedBatches := []*engine.Batch{
		{}, // empty: zero rows, zero columns
		engine.NewBatch(engine.Int64Col([]int64{1, -2, 3})),
		engine.NewBatch(
			engine.Int64Col([]int64{5, 6}),
			engine.Float64Col([]float64{0.5, -1.25}),
			engine.StringCol([]string{"a", ""}),
			engine.BoolCol([]bool{true, false}),
		),
		// All-NULL columns and a mixed (TAny) column.
		engine.BatchFromRows([]engine.Row{{nil, int64(1)}, {nil, "s"}, {nil, nil}}),
		{Len: 9}, // rows without columns (count-only segment)
	}
	for _, b := range seedBatches {
		f.Add(EncodeBatch(b))
	}
	// Dictionary-encoded and selection-vector shapes: a dictified
	// low-cardinality column (packed sub-byte codes), a single-entry
	// zero-width dictionary, and a lazy filtered batch (which must encode
	// as its dense form).
	f.Add(EncodeBatch(engine.DictifyBatch(engine.NewBatch(
		engine.StringCol([]string{"x", "y", "x", "x", "y", "x", "z", "x", "x", "x"})))))
	f.Add(EncodeBatch(engine.DictifyBatch(engine.NewBatch(
		engine.StringCol([]string{"c", "c", "c", "c", "c", "c", "c", "c"}),
		engine.Int64Col([]int64{1, 2, 3, 4, 5, 6, 7, 8})))))
	f.Add(EncodeBatch(engine.FilterBatch(seedBatches[2], func(i int) bool { return i%2 == 0 })))
	// Truncated and corrupt variants seed the error paths, including a
	// dictionary code outside its dictionary and rows claimed against an
	// empty dictionary.
	full := EncodeBatch(seedBatches[2])
	f.Add(full[:1])
	f.Add(full[:len(full)/2])
	f.Add(append(append([]byte(nil), full...), 0x00))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f, 0x02})
	f.Add([]byte{1, 1, 5, 0, 3, 1, 'a', 1, 'b', 1, 'c', 0b11})
	f.Add([]byte{3, 1, 5, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		enc := EncodeBatch(b)
		b2, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if b2.Len != b.Len || b2.NumCols() != b.NumCols() {
			t.Fatalf("shape changed: %dx%d -> %dx%d", b.Len, b.NumCols(), b2.Len, b2.NumCols())
		}
		isStr := func(ct engine.ColType) bool { return ct == engine.TString || ct == engine.TDict }
		for c := 0; c < b.NumCols(); c++ {
			// EncodeBatch may dictionary-encode a plain string column (and
			// never the reverse): TString→TDict is the one legal rewrite.
			if gt, wt := b2.Cols[c].Type, b.Cols[c].Type; gt != wt && !(isStr(gt) && isStr(wt)) {
				t.Fatalf("col %d type changed: %v -> %v", c, wt, gt)
			}
			for i := 0; i < b.Len; i++ {
				if b2.IsNull(c, i) != b.IsNull(c, i) || !valueEq(b2.Value(c, i), b.Value(c, i)) {
					t.Fatalf("cell (%d,%d) changed: %#v -> %#v", c, i, b.Value(c, i), b2.Value(c, i))
				}
			}
		}
		// Canonical from the first re-encoding onward.
		if enc2 := EncodeBatch(b2); string(enc2) != string(enc) {
			t.Fatalf("encoding not a fixpoint: %d vs %d bytes", len(enc), len(enc2))
		}
		// The decoded batch must be internally consistent enough for the
		// row adapter to walk it.
		for _, r := range b.Rows() {
			if len(r) != b.NumCols() {
				t.Fatalf("row width %d, batch has %d cols", len(r), b.NumCols())
			}
		}
	})
}

// valueEq compares cell values; NaN floats (reachable from crafted bit
// patterns) compare by bits so the oracle stays reflexive.
func valueEq(a, b engine.Value) bool {
	af, aok := a.(float64)
	bf, bok := b.(float64)
	if aok && bok {
		return math.Float64bits(af) == math.Float64bits(bf)
	}
	return a == b
}
