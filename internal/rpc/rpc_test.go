package rpc

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"swift/internal/engine"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer()
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func TestCallRoundTrip(t *testing.T) {
	s, addr := startServer(t)
	s.Register("double", func(body []byte) ([]byte, error) {
		var n int
		if err := Decode(body, &n); err != nil {
			return nil, err
		}
		return Encode(n * 2)
	})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out int
	if err := c.Call("double", 21, &out); err != nil {
		t.Fatal(err)
	}
	if out != 42 {
		t.Errorf("out = %d", out)
	}
}

func TestPing(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	lat, err := c.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 || lat > 2*time.Second {
		t.Errorf("latency = %v", lat)
	}
}

func TestUnknownMethodAndHandlerError(t *testing.T) {
	s, addr := startServer(t)
	s.Register("boom", func([]byte) ([]byte, error) { return nil, errors.New("kaput") })
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("nope", nil, nil); err == nil {
		t.Error("unknown method succeeded")
	}
	err = c.Call("boom", nil, nil)
	if err == nil || err.Error() != "kaput" {
		t.Errorf("handler error = %v", err)
	}
	// Connection still usable after errors.
	if _, err := c.Ping(); err != nil {
		t.Errorf("ping after error: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	s, addr := startServer(t)
	s.Register("echo", func(b []byte) ([]byte, error) { return b, nil })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr, time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 50; j++ {
				var out string
				want := fmt.Sprintf("msg-%d-%d", i, j)
				if err := c.Call("echo", want, &out); err != nil || out != want {
					t.Errorf("echo: %v %q", err, out)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestFrameSizeLimit(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := make([]byte, MaxFrameSize+1)
	if err := c.Call("ping", big, nil); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestCacheWorkerService(t *testing.T) {
	s, addr := startServer(t)
	store := engine.NewStore(2, 0)
	ServeCacheWorker(s, store)
	cc, err := DialCache(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	// Miss before put.
	if _, found, err := cc.Get("seg1"); err != nil || found {
		t.Fatalf("premature hit: %v %v", found, err)
	}
	rows := []engine.Row{{int64(1), "a"}, {int64(2), "b"}}
	if err := cc.Put("j", 0, "seg1", rows); err != nil {
		t.Fatal(err)
	}
	got, found, err := cc.Get("seg1")
	if err != nil || !found {
		t.Fatalf("get: %v %v", found, err)
	}
	if len(got) != 2 || got[0][0] != int64(1) || got[1][1] != "b" {
		t.Errorf("rows = %v", got)
	}
	// The segment landed in the local store too.
	if local, ok := store.Get("seg1", nil); !ok || len(local) != 2 {
		t.Error("segment not visible locally")
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s := NewServer()
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Call("ping", nil, nil); err == nil {
		t.Error("call succeeded after server close")
	}
}

// deadlineFailConn is a net.Conn whose SetDeadline fails, covering the
// path where the kernel refuses to arm a socket timer (e.g. the fd was
// torn down underneath us).
type deadlineFailConn struct {
	net.Conn
	deadlineErr error
	closed      bool
}

func (f *deadlineFailConn) Read(b []byte) (int, error)  { return 0, io.EOF }
func (f *deadlineFailConn) Write(b []byte) (int, error) { return len(b), nil }
func (f *deadlineFailConn) Close() error                { f.closed = true; return nil }
func (f *deadlineFailConn) SetDeadline(time.Time) error { return f.deadlineErr }

func TestCallFailsWhenDeadlineCannotBeSet(t *testing.T) {
	fake := &deadlineFailConn{deadlineErr: errors.New("fd torn down")}
	// Point the redial at a port nothing listens on so the failure
	// surfaces instead of being papered over by a successful reconnect.
	c := &Client{conn: fake, addr: "127.0.0.1:1", dialTimeout: 50 * time.Millisecond}
	c.SetCallTimeout(time.Second)
	err := c.Call("ping", nil, nil)
	if err == nil {
		t.Fatal("call succeeded with a conn that cannot set deadlines")
	}
	if !strings.Contains(err.Error(), "set call deadline") {
		t.Errorf("error %q does not mention the deadline failure", err)
	}
	if !fake.closed {
		t.Error("broken conn was not closed")
	}
	c.mu.Lock()
	if c.conn != nil {
		t.Error("broken conn was not cleared; a later call would reuse it")
	}
	c.mu.Unlock()
}
