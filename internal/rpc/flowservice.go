package rpc

// Flow service: the control-plane endpoints swiftd serves. Submissions
// stream as chunked frames so a large trace-encoded job payload never
// approaches the frame bound; the server reassembles chunks by submission
// ID and hands the complete payload to the registered FlowHandler. The
// types here are plain wire data — this file knows nothing about package
// flow, keeping the rpc layer dependency-free.

import (
	"fmt"
	"sync"
	"time"
)

// FlowChunkSize is the payload fragment size clients stream.
const FlowChunkSize = 256 << 10

// maxPendingSubmissions bounds concurrent partial reassemblies; beyond it
// new submissions are rejected (an admission bound of its own, protecting
// the daemon's memory from half-sent uploads).
const maxPendingSubmissions = 64

// maxSubmissionBytes bounds one reassembled submission payload.
const maxSubmissionBytes = 16 << 20

// FlowSubmitChunk is one streamed fragment of a job submission.
type FlowSubmitChunk struct {
	ID   string // submission (job) id
	Seq  int    // 0-based chunk index
	More bool   // further chunks follow
	Data []byte
}

// FlowSubmitReply reports the admission outcome of a completed submission.
// Intermediate chunks are acked with a zero reply.
type FlowSubmitReply struct {
	Decision         string // "admitted" | "queued" | "shed"
	Level            string // "accept" | "queue" | "slow" | "shed"
	QueuePos         int
	RetryAfterMicros int64
	Reason           string // non-empty when the submission was rejected
}

// FlowStatusReply is the service's point-in-time state over the wire.
type FlowStatusReply struct {
	LiveJobs, PendingTasks, RunningTasks, DoneTasks int
	SchedQueueLen, FreeExecutors, TotalExecutors    int
	Admitted, Queued, Shed, Decisions               int64
	FlowQueueLen, MaxQueueLen                       int
	Draining                                        bool
	Level                                           string
	Panics                                          int64
	Tenants                                         []FlowTenantStatus
}

// FlowTenantStatus is one tenant's admission and occupancy state, present
// when the daemon tracks tenants (always at least the default tenant once
// anything was submitted).
type FlowTenantStatus struct {
	Tenant                 string
	Admitted, Queued, Shed int64
	QueueLen               int // current wait-queue entries
	InFlight               int // pending+running tasks in the scheduler
	Budget                 int // configured in-flight budget (0 = unbounded)
}

// FlowCancelReply reports a cancellation outcome.
type FlowCancelReply struct{ Cancelled bool }

// FlowHandler is implemented by the daemon. The submit payload is the
// reassembled trace-encoded job.
type FlowHandler interface {
	FlowSubmit(id string, payload []byte) (FlowSubmitReply, error)
	FlowStatus() (FlowStatusReply, error)
	FlowCancel(id string) (FlowCancelReply, error)
	FlowDrain() error
}

// flowAssembler reassembles chunked submissions by ID.
type flowAssembler struct {
	mu      sync.Mutex
	pending map[string][]byte
}

func (a *flowAssembler) add(ch *FlowSubmitChunk) ([]byte, bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cur, started := a.pending[ch.ID]
	if !started {
		if ch.Seq != 0 {
			return nil, false, fmt.Errorf("rpc: flow submit %q: chunk %d without a start", ch.ID, ch.Seq)
		}
		if !ch.More {
			return ch.Data, true, nil // single-chunk fast path
		}
		if len(a.pending) >= maxPendingSubmissions {
			return nil, false, fmt.Errorf("rpc: flow submit %q: too many partial submissions", ch.ID)
		}
		a.pending[ch.ID] = append([]byte(nil), ch.Data...)
		return nil, false, nil
	}
	if len(cur)+len(ch.Data) > maxSubmissionBytes {
		delete(a.pending, ch.ID)
		return nil, false, fmt.Errorf("rpc: flow submit %q: payload exceeds %d bytes", ch.ID, maxSubmissionBytes)
	}
	cur = append(cur, ch.Data...)
	if ch.More {
		a.pending[ch.ID] = cur
		return nil, false, nil
	}
	delete(a.pending, ch.ID)
	return cur, true, nil
}

// ServeFlow registers the flow endpoints on a server.
func ServeFlow(s *Server, h FlowHandler) {
	asm := &flowAssembler{pending: make(map[string][]byte)}
	s.Register("flow.submit", func(body []byte) ([]byte, error) {
		var ch FlowSubmitChunk
		if err := Decode(body, &ch); err != nil {
			return nil, err
		}
		payload, done, err := asm.add(&ch)
		if err != nil {
			return nil, err
		}
		if !done {
			return Encode(FlowSubmitReply{}) // intermediate-chunk ack
		}
		rep, err := h.FlowSubmit(ch.ID, payload)
		if err != nil {
			return nil, err
		}
		return Encode(rep)
	})
	s.Register("flow.status", func([]byte) ([]byte, error) {
		rep, err := h.FlowStatus()
		if err != nil {
			return nil, err
		}
		return Encode(rep)
	})
	s.Register("flow.cancel", func(body []byte) ([]byte, error) {
		var id string
		if err := Decode(body, &id); err != nil {
			return nil, err
		}
		rep, err := h.FlowCancel(id)
		if err != nil {
			return nil, err
		}
		return Encode(rep)
	})
	s.Register("flow.drain", func([]byte) ([]byte, error) {
		if err := h.FlowDrain(); err != nil {
			return nil, err
		}
		return Encode(true)
	})
}

// FlowClient speaks the flow endpoints over a Client.
type FlowClient struct{ c *Client }

// NewFlowClient wraps an existing connection.
func NewFlowClient(c *Client) *FlowClient { return &FlowClient{c} }

// DialFlow connects to a swiftd instance.
func DialFlow(addr string, timeout time.Duration) (*FlowClient, error) {
	c, err := Dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	return &FlowClient{c}, nil
}

// Close closes the underlying connection.
func (f *FlowClient) Close() error { return f.c.Close() }

// Submit streams one trace-encoded job payload and returns the admission
// outcome. Note submissions are not idempotent: do not combine with a
// retry policy on the underlying client.
func (f *FlowClient) Submit(id string, payload []byte) (FlowSubmitReply, error) {
	var rep FlowSubmitReply
	for off, seq := 0, 0; ; seq++ {
		n := len(payload) - off
		if n > FlowChunkSize {
			n = FlowChunkSize
		}
		ch := FlowSubmitChunk{ID: id, Seq: seq, Data: payload[off : off+n], More: off+n < len(payload)}
		if err := f.c.Call("flow.submit", &ch, &rep); err != nil {
			return rep, err
		}
		off += n
		if !ch.More {
			return rep, nil
		}
	}
}

// Status fetches the service state.
func (f *FlowClient) Status() (FlowStatusReply, error) {
	var rep FlowStatusReply
	err := f.c.Call("flow.status", nil, &rep)
	return rep, err
}

// Cancel cancels a queued or live submission by ID.
func (f *FlowClient) Cancel(id string) (bool, error) {
	var rep FlowCancelReply
	if err := f.c.Call("flow.cancel", id, &rep); err != nil {
		return false, err
	}
	return rep.Cancelled, nil
}

// Drain asks the server to stop admitting and wind down.
func (f *FlowClient) Drain() error {
	var ok bool
	return f.c.Call("flow.drain", nil, &ok)
}
