package rpc

import (
	"time"

	"swift/internal/engine"
)

// Cache Worker RPC service: exposes a machine's shuffle segments to remote
// executors — the Remote Shuffle pull path of Section III-B when executors
// and Cache Workers live in different processes. Segments cross the wire
// in the column codec (typed vectors, exact accounted bytes), not as
// gob-encoded []interface{} rows.

// PutRequest stores a segment. Batch is the column-codec encoding of the
// segment payload (EncodeBatch).
type PutRequest struct {
	Job     string
	Machine int
	Key     string
	Batch   []byte
}

// GetRequest fetches a segment; Get does not block remotely — the puller
// retries, exactly like a reader task polling its source Cache Worker.
type GetRequest struct {
	Key string
}

// GetResponse carries the column-codec-encoded segment if present.
type GetResponse struct {
	Found bool
	Batch []byte
}

// ServeCacheWorker registers cache.put / cache.get handlers backed by the
// given store.
func ServeCacheWorker(s *Server, store *engine.Store) {
	s.Register("cache.put", func(body []byte) ([]byte, error) {
		var req PutRequest
		if err := Decode(body, &req); err != nil {
			return nil, err
		}
		b, err := DecodeBatch(req.Batch)
		if err != nil {
			return nil, err
		}
		if err := store.PutBatch(req.Job, req.Machine, req.Key, b); err != nil {
			return nil, err
		}
		return Encode(true)
	})
	s.Register("cache.get", func(body []byte) ([]byte, error) {
		var req GetRequest
		if err := Decode(body, &req); err != nil {
			return nil, err
		}
		// Non-blocking probe: the wait aborts immediately when the
		// segment is absent; the remote puller retries, like a reader
		// task polling its source Cache Worker.
		b, ok := store.GetBatch(req.Key, func() bool { return true })
		if !ok {
			return Encode(GetResponse{})
		}
		return Encode(GetResponse{Found: true, Batch: EncodeBatch(b)})
	})
}

// CacheClient pulls shuffle segments from a remote Cache Worker.
type CacheClient struct{ c *Client }

// DialCache connects to a Cache Worker service.
func DialCache(addr string) (*CacheClient, error) {
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &CacheClient{c: c}, nil
}

// PutBatch stores a batch segment remotely.
func (cc *CacheClient) PutBatch(job string, machine int, key string, b *engine.Batch) error {
	var ok bool
	req := PutRequest{Job: job, Machine: machine, Key: key, Batch: EncodeBatch(b)}
	return cc.c.Call("cache.put", req, &ok)
}

// Put stores a row segment remotely (row-adapter path: rows convert to a
// batch on the sending side, so the wire never carries boxed cells).
func (cc *CacheClient) Put(job string, machine int, key string, rows []engine.Row) error {
	return cc.PutBatch(job, machine, key, engine.BatchFromRows(rows))
}

// GetBatch fetches a segment as a batch; found is false when the producer
// has not written it yet.
func (cc *CacheClient) GetBatch(key string) (b *engine.Batch, found bool, err error) {
	var resp GetResponse
	if err := cc.c.Call("cache.get", GetRequest{Key: key}, &resp); err != nil {
		return nil, false, err
	}
	if !resp.Found {
		return nil, false, nil
	}
	b, err = DecodeBatch(resp.Batch)
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

// Get fetches a segment as rows (row-adapter read).
func (cc *CacheClient) Get(key string) (rows []engine.Row, found bool, err error) {
	b, found, err := cc.GetBatch(key)
	if err != nil || !found {
		return nil, found, err
	}
	return b.Rows(), true, nil
}

// Close shuts the underlying connection.
func (cc *CacheClient) Close() error { return cc.c.Close() }
