package rpc

import (
	"time"

	"swift/internal/engine"
)

// Cache Worker RPC service: exposes a machine's shuffle segments to remote
// executors — the Remote Shuffle pull path of Section III-B when executors
// and Cache Workers live in different processes.

// PutRequest stores a segment.
type PutRequest struct {
	Job     string
	Machine int
	Key     string
	Rows    []engine.Row
}

// GetRequest fetches a segment; Get does not block remotely — the puller
// retries, exactly like a reader task polling its source Cache Worker.
type GetRequest struct {
	Key string
}

// GetResponse carries the segment if present.
type GetResponse struct {
	Found bool
	Rows  []engine.Row
}

// ServeCacheWorker registers cache.put / cache.get handlers backed by the
// given store.
func ServeCacheWorker(s *Server, store *engine.Store) {
	s.Register("cache.put", func(body []byte) ([]byte, error) {
		var req PutRequest
		if err := Decode(body, &req); err != nil {
			return nil, err
		}
		if err := store.Put(req.Job, req.Machine, req.Key, req.Rows); err != nil {
			return nil, err
		}
		return Encode(true)
	})
	s.Register("cache.get", func(body []byte) ([]byte, error) {
		var req GetRequest
		if err := Decode(body, &req); err != nil {
			return nil, err
		}
		// Non-blocking probe: the wait aborts immediately when the
		// segment is absent; the remote puller retries, like a reader
		// task polling its source Cache Worker.
		rows, ok := store.Get(req.Key, func() bool { return true })
		return Encode(GetResponse{Found: ok, Rows: rows})
	})
}

// CacheClient pulls shuffle segments from a remote Cache Worker.
type CacheClient struct{ c *Client }

// DialCache connects to a Cache Worker service.
func DialCache(addr string) (*CacheClient, error) {
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &CacheClient{c: c}, nil
}

// Put stores a segment remotely.
func (cc *CacheClient) Put(req PutRequest) error {
	var ok bool
	return cc.c.Call("cache.put", req, &ok)
}

// Get fetches a segment; found is false when the producer has not written
// it yet.
func (cc *CacheClient) Get(key string) (rows []engine.Row, found bool, err error) {
	var resp GetResponse
	if err := cc.c.Call("cache.get", GetRequest{Key: key}, &resp); err != nil {
		return nil, false, err
	}
	return resp.Rows, resp.Found, nil
}

// Close shuts the underlying connection.
func (cc *CacheClient) Close() error { return cc.c.Close() }
