package rpc

import (
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"
)

// failDialer counts dial attempts and always refuses.
type failDialer struct{ dials int }

func (d *failDialer) dial(string, time.Duration) (net.Conn, error) {
	d.dials++
	return nil, errors.New("connection refused")
}

func newFakeClient(d *failDialer) *Client {
	return &Client{addr: "fake:0", dialTimeout: time.Second, dial: d.dial, quit: make(chan struct{})}
}

// MaxElapsed bounds the total redial+backoff time regardless of Max.
func TestRetryMaxElapsed(t *testing.T) {
	d := &failDialer{}
	c := newFakeClient(d)
	c.SetRetryPolicy(RetryPolicy{
		Max:        1000,
		Base:       20 * time.Millisecond,
		Cap:        20 * time.Millisecond,
		MaxElapsed: 100 * time.Millisecond,
	})
	start := time.Now()
	err := c.Call("ping", nil, nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call against refusing dialer succeeded")
	}
	if errors.Is(err, ErrClosed) {
		t.Fatalf("budget exhaustion reported as ErrClosed: %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("MaxElapsed=100ms but call took %v", elapsed)
	}
	// ~100ms budget / 20ms sleeps: a handful of attempts, nowhere near Max.
	if d.dials < 2 || d.dials > 20 {
		t.Fatalf("dial attempts = %d, want a few (budget-bounded, not count-bounded)", d.dials)
	}
}

// Close interrupts a Call sleeping in retry backoff instead of waiting the
// backoff out (Close used to block on the client mutex held across the
// sleep).
func TestCloseInterruptsBackoff(t *testing.T) {
	d := &failDialer{}
	c := newFakeClient(d)
	c.SetRetryPolicy(RetryPolicy{Max: 3, Base: 30 * time.Second, Cap: 30 * time.Second})
	done := make(chan error, 1)
	go func() { done <- c.Call("ping", nil, nil) }()
	time.Sleep(50 * time.Millisecond) // let the call enter its first backoff
	start := time.Now()
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("interrupted call returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not interrupt the backoff sleep")
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("Close blocked %v on a sleeping call", waited)
	}
	// A closed client fails fast on later calls.
	if err := c.Call("ping", nil, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after close returned %v, want ErrClosed", err)
	}
}

// Property: Base ≤ backoff(i) ≤ Cap·(1+Jitter) for every attempt index,
// including indices far past the point where Base<<i overflows.
func TestBackoffProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	policies := []RetryPolicy{
		{Base: 10 * time.Millisecond, Cap: 40 * time.Millisecond, Jitter: 0.5},
		{Base: time.Millisecond, Cap: 2 * time.Second, Jitter: 1.0},
		{Base: 50 * time.Millisecond, Cap: 10 * time.Second, Jitter: 0.2},
		{Base: time.Second, Cap: time.Second, Jitter: 0},
	}
	for pi, p := range policies {
		p.Rand = rng
		hi := time.Duration(float64(p.Cap) * (1 + p.Jitter))
		for i := 0; i < 80; i++ {
			for trial := 0; trial < 25; trial++ {
				d := p.backoff(i)
				if d < p.Base {
					t.Fatalf("policy %d: backoff(%d) = %v < Base %v", pi, i, d, p.Base)
				}
				if d > hi {
					t.Fatalf("policy %d: backoff(%d) = %v > Cap·(1+Jitter) %v", pi, i, d, hi)
				}
			}
		}
	}
}

// A seeded policy replays the exact same sleep sequence.
func TestBackoffDeterministic(t *testing.T) {
	mk := func() RetryPolicy {
		return RetryPolicy{
			Base:   10 * time.Millisecond,
			Cap:    5 * time.Second,
			Jitter: 0.5,
			Rand:   rand.New(rand.NewSource(42)),
		}
	}
	p1, p2 := mk(), mk()
	for i := 0; i < 64; i++ {
		a, b := p1.backoff(i%10), p2.backoff(i%10)
		if a != b {
			t.Fatalf("seeded backoff diverged at draw %d: %v != %v", i, a, b)
		}
	}
}
