package rpc

import (
	"strings"
	"testing"
	"time"
)

// A per-call deadline bounds the wait for a stuck handler, and the broken
// stream is discarded so later calls do not read the stale reply.
func TestCallDeadline(t *testing.T) {
	s, addr := startServer(t)
	release := make(chan struct{})
	s.Register("slow", func([]byte) ([]byte, error) {
		<-release
		return Encode("late")
	})
	defer close(release)

	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetCallTimeout(50 * time.Millisecond)

	start := time.Now()
	if err := c.Call("slow", nil, nil); err == nil {
		t.Fatal("call to stuck handler returned nil error")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("deadline not enforced: waited %v", waited)
	}
	// The connection was poisoned by the abandoned reply; the client must
	// redial transparently and serve fresh calls.
	c.SetCallTimeout(time.Second)
	if _, err := c.Ping(); err != nil {
		t.Fatalf("ping after timeout: %v", err)
	}
}

// A dropped connection is redialed under the retry policy, so one broken
// TCP stream does not fail an idempotent control-plane call.
func TestRetryReconnects(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRetryPolicy(RetryPolicy{Max: 2, Base: 10 * time.Millisecond, Cap: 50 * time.Millisecond, Jitter: 0.2})
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	c.conn.Close() // sever the transport under the client
	if _, err := c.Ping(); err != nil {
		t.Fatalf("ping after severed connection: %v", err)
	}
}

// Without a retry policy a transport failure surfaces immediately — and
// must not be confused with a server-side error.
func TestNoRetryByDefault(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.conn.Close()
	if _, err := c.Ping(); err == nil {
		t.Fatal("ping over severed connection succeeded without retry policy")
	}
	// The connection is marked broken; an explicit later call redials even
	// without a retry policy (fresh attempt, not a retry).
	if _, err := c.Ping(); err != nil {
		t.Fatalf("redial on next call: %v", err)
	}
}

// A panicking handler produces an RPC error on that call only; the
// connection and server survive.
func TestHandlerPanicRecovered(t *testing.T) {
	s, addr := startServer(t)
	s.Register("boom", func([]byte) ([]byte, error) { panic("kaboom") })
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("boom", nil, nil)
	if err == nil {
		t.Fatal("panicking handler returned nil error")
	}
	if !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not reported to caller: %v", err)
	}
	// Same connection still serves.
	if _, err := c.Ping(); err != nil {
		t.Fatalf("ping after handler panic: %v", err)
	}
}

// Exponential backoff grows per attempt, honours the cap, and jitter stays
// within its band.
func TestRetryBackoffBounds(t *testing.T) {
	p := RetryPolicy{Max: 5, Base: 10 * time.Millisecond, Cap: 40 * time.Millisecond, Jitter: 0.5}
	for i := 0; i < 8; i++ {
		want := p.Base << uint(i)
		if want > p.Cap {
			want = p.Cap
		}
		for trial := 0; trial < 20; trial++ {
			d := p.backoff(i)
			lo := time.Duration(float64(want) * 0.5)
			hi := time.Duration(float64(want) * 1.5)
			if d < lo || d > hi {
				t.Fatalf("backoff(%d) = %v outside [%v, %v]", i, d, lo, hi)
			}
		}
	}
}
