package rpc

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeFlowHandler records submissions and serves canned replies.
type fakeFlowHandler struct {
	mu       sync.Mutex
	payloads map[string][]byte
	drained  bool
}

func (h *fakeFlowHandler) FlowSubmit(id string, payload []byte) (FlowSubmitReply, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.payloads == nil {
		h.payloads = make(map[string][]byte)
	}
	h.payloads[id] = append([]byte(nil), payload...)
	return FlowSubmitReply{Decision: "admitted", Level: "accept"}, nil
}

func (h *fakeFlowHandler) FlowStatus() (FlowStatusReply, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return FlowStatusReply{LiveJobs: len(h.payloads), Level: "accept"}, nil
}

func (h *fakeFlowHandler) FlowCancel(id string) (FlowCancelReply, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.payloads[id]
	delete(h.payloads, id)
	return FlowCancelReply{Cancelled: ok}, nil
}

func (h *fakeFlowHandler) FlowDrain() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.drained = true
	return nil
}

func startFlowServer(t *testing.T) (*fakeFlowHandler, *FlowClient) {
	t.Helper()
	h := &fakeFlowHandler{}
	s := NewServer()
	ServeFlow(s, h)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	fc, err := DialFlow(addr, time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { _ = fc.Close() })
	return h, fc
}

// A payload larger than one chunk reassembles byte-identically.
func TestFlowSubmitChunked(t *testing.T) {
	h, fc := startFlowServer(t)
	payload := bytes.Repeat([]byte("swift-flow-"), (3*FlowChunkSize)/11)
	rep, err := fc.Submit("job-a", payload)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if rep.Decision != "admitted" {
		t.Fatalf("decision = %q, want admitted", rep.Decision)
	}
	h.mu.Lock()
	got := h.payloads["job-a"]
	h.mu.Unlock()
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mangled: %d bytes arrived, sent %d", len(got), len(payload))
	}
}

// Status, cancel and drain round-trip.
func TestFlowEndpointsRoundTrip(t *testing.T) {
	h, fc := startFlowServer(t)
	if _, err := fc.Submit("job-b", []byte("payload")); err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err := fc.Status()
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.LiveJobs != 1 {
		t.Fatalf("status live jobs = %d, want 1", st.LiveJobs)
	}
	ok, err := fc.Cancel("job-b")
	if err != nil || !ok {
		t.Fatalf("cancel = %v, %v; want true, nil", ok, err)
	}
	if ok, _ := fc.Cancel("job-b"); ok {
		t.Fatal("second cancel reported cancelled")
	}
	if err := fc.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	h.mu.Lock()
	drained := h.drained
	h.mu.Unlock()
	if !drained {
		t.Fatal("drain not delivered to handler")
	}
}

// A chunk arriving without its start (or a mid-stream submission flood) is
// rejected without wedging the assembler.
func TestFlowSubmitAssemblerGuards(t *testing.T) {
	_, fc := startFlowServer(t)
	var rep FlowSubmitReply
	err := fc.c.Call("flow.submit", &FlowSubmitChunk{ID: "x", Seq: 3, Data: []byte("late")}, &rep)
	if err == nil || !strings.Contains(err.Error(), "without a start") {
		t.Fatalf("out-of-order chunk error = %v", err)
	}
	// The assembler bounds concurrent partial uploads.
	for i := 0; ; i++ {
		if i > maxPendingSubmissions {
			t.Fatal("partial-submission bound never enforced")
		}
		err := fc.c.Call("flow.submit", &FlowSubmitChunk{ID: fmt.Sprintf("p%d", i), Seq: 0, More: true, Data: []byte("x")}, &rep)
		if err != nil {
			if !strings.Contains(err.Error(), "too many partial submissions") {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
	}
}
