// Package rpc implements the small framed-gob protocol Swift's processes
// speak: length-prefixed request/response messages over TCP, a method
// registry on the server side, and client-side call/heartbeat helpers. The
// engine's multi-process mode serves Cache Worker segments through it
// (service.go); the admin/executor heartbeats of Section IV-A use Ping.
package rpc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// MaxFrameSize bounds a single message (64 MiB), protecting both sides
// from corrupt length prefixes.
const MaxFrameSize = 64 << 20

// frame layout: 4-byte big-endian length, then a gob-encoded envelope.
type envelope struct {
	ID     uint64
	Method string
	Err    string
	Body   []byte
}

func writeFrame(w io.Writer, env *envelope) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return fmt.Errorf("rpc: encode: %w", err)
	}
	if buf.Len() > MaxFrameSize {
		return fmt.Errorf("rpc: frame too large: %d bytes", buf.Len())
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

func readFrame(r io.Reader) (*envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&env); err != nil {
		return nil, fmt.Errorf("rpc: decode: %w", err)
	}
	return &env, nil
}

// Handler serves one method: it receives the gob-encoded request body and
// returns the gob-encoded response body.
type Handler func(body []byte) ([]byte, error)

// Server accepts connections and dispatches registered methods.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	ln       net.Listener
	wg       sync.WaitGroup
	closed   chan struct{}
	connMu   sync.Mutex
	conns    map[net.Conn]bool
}

// NewServer returns an empty server; register methods before Serve.
func NewServer() *Server {
	s := &Server{
		handlers: make(map[string]Handler),
		closed:   make(chan struct{}),
		conns:    make(map[net.Conn]bool),
	}
	s.Register("ping", func([]byte) ([]byte, error) { return Encode([]byte("pong")) })
	return s
}

// Register installs a method handler. Re-registering replaces.
func (s *Server) Register(method string, h Handler) {
	s.mu.Lock()
	s.handlers[method] = h
	s.mu.Unlock()
}

// Listen binds the address ("127.0.0.1:0" for an ephemeral port) and
// starts serving in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	s.connMu.Lock()
	s.conns[conn] = true
	s.connMu.Unlock()
	defer func() {
		_ = conn.Close() // conn is already drained or torn
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
	}()
	for {
		env, err := readFrame(conn)
		if err != nil {
			return
		}
		s.mu.RLock()
		h := s.handlers[env.Method]
		s.mu.RUnlock()
		resp := &envelope{ID: env.ID, Method: env.Method}
		if h == nil {
			resp.Err = fmt.Sprintf("rpc: unknown method %q", env.Method)
		} else if body, herr := safeCall(h, env.Body); herr != nil {
			resp.Err = herr.Error()
		} else {
			resp.Body = body
		}
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// safeCall invokes a handler, converting a panic into an RPC error so one
// bad request cannot kill the serving goroutine (and with it every other
// in-flight call on the connection).
func safeCall(h Handler, body []byte) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rpc: handler panic: %v", r)
		}
	}()
	return h(body)
}

// Close stops accepting, severs live connections, and waits for the
// handler goroutines to drain.
func (s *Server) Close() error {
	close(s.closed)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.connMu.Lock()
	for c := range s.conns {
		_ = c.Close() // severing: the serving goroutine sees the read error
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}

// RetryPolicy bounds how a client re-attempts a call after a transport
// failure: up to Max redials with exponential backoff starting at Base,
// capped at Cap, with ±Jitter (a fraction) of randomisation so a fleet of
// executors retrying a recovered Admin does not thunder in lockstep.
type RetryPolicy struct {
	Max    int
	Base   time.Duration
	Cap    time.Duration
	Jitter float64
	// MaxElapsed bounds the total time a call may spend across attempts
	// and backoff sleeps, so a redial loop cannot exceed a caller's
	// deadline regardless of Max. Zero means count-bounded only.
	MaxElapsed time.Duration
	// Rand, when set, is the jitter source; seeding it makes backoff
	// sequences reproducible. Nil uses the process-global source.
	Rand *rand.Rand
}

// DefaultRetryPolicy matches the control-plane traffic this package
// carries (heartbeats, segment fetches — all idempotent).
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Max: 3, Base: 50 * time.Millisecond, Cap: 2 * time.Second, Jitter: 0.2}
}

// backoff returns the sleep before retry attempt i (0-based):
// exponential from Base, capped at Cap, with ±Jitter randomisation,
// floored at Base — callers can rely on Base ≤ sleep ≤ Cap·(1+Jitter).
func (p RetryPolicy) backoff(i int) time.Duration {
	shift := uint(i)
	if shift > 31 {
		shift = 31 // Base<<32 would overflow any realistic Base
	}
	d := p.Base << shift
	if d < 0 || (p.Cap > 0 && d > p.Cap) {
		d = p.Cap
	}
	if p.Jitter > 0 {
		r := rand.Float64
		if p.Rand != nil {
			r = p.Rand.Float64
		}
		d += time.Duration((2*r() - 1) * p.Jitter * float64(d))
	}
	if d < p.Base {
		d = p.Base
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Client is a single-connection RPC client. Calls are serialised; Swift's
// executors keep one connection per peer (the connection-count arithmetic
// of Section III-B). Transport failures mark the connection broken; the
// next attempt redials.
type Client struct {
	mu          sync.Mutex
	conn        net.Conn // nil when broken
	next        uint64
	addr        string
	dialTimeout time.Duration
	callTimeout time.Duration
	retry       RetryPolicy
	// dial is the redial function (net.DialTimeout in production;
	// in-package tests substitute fakes).
	dial func(addr string, timeout time.Duration) (net.Conn, error)
	// quit is closed by Close before it takes mu, so a Call sleeping in
	// backoff (which holds mu) wakes up instead of stalling the Close.
	quit     chan struct{}
	quitOnce sync.Once
}

// ErrClosed is returned by calls interrupted by Close.
var ErrClosed = errors.New("rpc: client closed")

// tcpDial is the production dial function.
func tcpDial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// Dial connects to a server. The timeout also bounds later redials.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, addr: addr, dialTimeout: timeout, dial: tcpDial, quit: make(chan struct{})}, nil
}

// SetCallTimeout sets a per-call deadline covering the write and the wait
// for the reply. Zero (the default) means no deadline.
func (c *Client) SetCallTimeout(d time.Duration) {
	c.mu.Lock()
	c.callTimeout = d
	c.mu.Unlock()
}

// SetRetryPolicy enables transport-failure retries (redial + backoff).
// The zero policy (the default) fails calls on the first transport error.
// Only enable it for idempotent methods: a timed-out call may have
// executed on the server.
func (c *Client) SetRetryPolicy(p RetryPolicy) {
	c.mu.Lock()
	c.retry = p
	c.mu.Unlock()
}

// Call invokes a method with a gob-encodable request, decoding the reply
// into resp (a pointer) unless resp is nil. Server-side errors (including
// unknown methods and handler panics) are returned as-is and never
// retried; transport errors retry under the client's RetryPolicy.
func (c *Client) Call(method string, req interface{}, resp interface{}) error {
	var body bytes.Buffer
	if req != nil {
		if err := gob.NewEncoder(&body).Encode(req); err != nil {
			return fmt.Errorf("rpc: encode request: %w", err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	var err error
	for attempt := 0; ; attempt++ {
		if c.isClosed() {
			return ErrClosed
		}
		err = c.callLocked(method, body.Bytes(), resp)
		var transport *transportError
		if err == nil || !errors.As(err, &transport) {
			return err
		}
		if attempt >= c.retry.Max {
			return transport.err
		}
		sleep := c.retry.backoff(attempt)
		// The elapsed-time budget covers the sleep about to happen: if
		// finishing it would overrun MaxElapsed, give up now rather than
		// wake past the caller's deadline.
		if c.retry.MaxElapsed > 0 && time.Since(start)+sleep > c.retry.MaxElapsed {
			return transport.err
		}
		if !c.sleep(sleep) {
			return ErrClosed
		}
	}
}

// sleep waits d while remaining interruptible by Close; it reports false
// when the client was closed.
func (c *Client) sleep(d time.Duration) bool {
	if d <= 0 {
		return !c.isClosed()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.quit:
		return false
	}
}

func (c *Client) isClosed() bool {
	if c.quit == nil {
		return false
	}
	select {
	case <-c.quit:
		return true
	default:
		return false
	}
}

// transportError wraps connection-level failures (as opposed to errors the
// server returned), marking the call retryable.
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// callLocked performs one attempt, redialing if the connection is broken.
// On any transport failure the connection is closed and cleared: a timed-
// out or torn stream may hold a stale reply that would desynchronise every
// later call.
func (c *Client) callLocked(method string, body []byte, resp interface{}) error {
	if c.conn == nil {
		dial := c.dial
		if dial == nil {
			dial = tcpDial
		}
		conn, err := dial(c.addr, c.dialTimeout)
		if err != nil {
			return &transportError{err}
		}
		c.conn = conn
	}
	if c.callTimeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.callTimeout)); err != nil {
			return c.broken(fmt.Errorf("rpc: set call deadline: %w", err))
		}
		defer func() {
			// A connection whose deadline cannot be cleared would time out
			// some future call at an arbitrary moment; drop it now and let
			// the next call redial.
			if c.conn != nil {
				if err := c.conn.SetDeadline(time.Time{}); err != nil {
					_ = c.conn.Close() // already discarding the conn
					c.conn = nil
				}
			}
		}()
	}
	c.next++
	env := &envelope{ID: c.next, Method: method, Body: body}
	if err := writeFrame(c.conn, env); err != nil {
		return c.broken(err)
	}
	reply, err := readFrame(c.conn)
	if err != nil {
		return c.broken(err)
	}
	if reply.ID != env.ID {
		return c.broken(fmt.Errorf("rpc: reply id %d for request %d", reply.ID, env.ID))
	}
	if reply.Err != "" {
		return errors.New(reply.Err)
	}
	if resp != nil {
		if err := gob.NewDecoder(bytes.NewReader(reply.Body)).Decode(resp); err != nil {
			return fmt.Errorf("rpc: decode response: %w", err)
		}
	}
	return nil
}

func (c *Client) broken(err error) error {
	if c.conn != nil {
		_ = c.conn.Close() // the call already fails with err; nothing to add
		c.conn = nil
	}
	return &transportError{err}
}

// Ping round-trips a heartbeat and returns the latency.
func (c *Client) Ping() (time.Duration, error) {
	t0 := time.Now()
	var out []byte
	if err := c.Call("ping", []byte{}, &out); err != nil {
		return 0, err
	}
	return time.Since(t0), nil
}

// Close shuts the connection. A Call sleeping in retry backoff (it holds
// the client mutex) is woken first via the quit channel, so Close never
// blocks for a backoff's duration.
func (c *Client) Close() error {
	if c.quit != nil {
		c.quitOnce.Do(func() { close(c.quit) })
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Encode gob-encodes v (handler helper).
func Encode(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(v)
	return buf.Bytes(), err
}

// Decode gob-decodes data into v (handler helper).
func Decode(data []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
