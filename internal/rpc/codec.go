package rpc

import "swift/internal/engine"

// Column codec entry points for the wire: segment payloads travel as the
// engine's length-prefixed typed-vector encoding (engine/batch_codec.go)
// inside the gob envelope's opaque []byte body — no gob interface
// registration, no per-cell reflection, and the same byte count the Store
// accounts via EncodedBatchSize. FuzzBatchCodec hammers this boundary.

// EncodeBatch encodes a batch for transfer, dictionary-encoding
// low-cardinality string columns first (a no-op for batches the Store
// already dictified).
func EncodeBatch(b *engine.Batch) []byte { return engine.EncodeBatch(engine.DictifyBatch(b)) }

// DecodeBatch decodes a transferred batch, erroring (never panicking) on
// truncated or corrupt input.
func DecodeBatch(data []byte) (*engine.Batch, error) { return engine.DecodeBatch(data) }
