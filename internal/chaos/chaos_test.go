package chaos

import (
	"flag"
	"math/rand"
	"testing"

	"swift/internal/cluster"
	"swift/internal/core"
	"swift/internal/flow"
	"swift/internal/sched"
	"swift/internal/sim"
	"swift/internal/trace"
)

// -chaos.seeds raises the soak breadth: CI runs 8, the acceptance sweep
// runs 64+. Each seed is an independent schedule over ≥20 concurrent jobs.
var chaosSeeds = flag.Int("chaos.seeds", 4, "number of fixed-seed chaos schedules to soak")

func TestGenerateScheduleDeterministicAndComplete(t *testing.T) {
	p := DefaultProfile()
	gen := func() []Fault {
		return GenerateSchedule(rand.New(rand.NewSource(42)), p, 120*sim.Second, 20, 80)
	}
	a, b := gen(), gen()
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Every fault kind appears, times are sorted and inside the window.
	seen := make(map[FaultKind]bool)
	for i, f := range a {
		seen[f.Kind] = true
		if f.At < 0 || f.At >= 120*sim.Second {
			t.Fatalf("fault %d outside window: %v", i, f.At)
		}
		if i > 0 && f.At < a[i-1].At {
			t.Fatalf("schedule unsorted at %d", i)
		}
	}
	// Every enabled kind appears; the default profile deliberately leaves
	// overload bursts off (they need an admission plane to storm).
	rates := p.rates()
	for k := FaultKind(0); k < numFaultKinds; k++ {
		if rates[k] <= 0 {
			if seen[k] {
				t.Errorf("disabled kind %v generated", k)
			}
			continue
		}
		if !seen[k] {
			t.Errorf("default profile never generated %v over 120s", k)
		}
	}
	// An overload-enabled profile generates sized bursts.
	p.OverloadPerMin = 3
	p.OverloadBurst = 17
	bursts := 0
	for _, f := range GenerateSchedule(rand.New(rand.NewSource(42)), p, 120*sim.Second, 20, 80) {
		if f.Kind == KindOverload {
			bursts++
			if f.Count != 17 {
				t.Fatalf("overload burst count = %d, want 17", f.Count)
			}
		}
	}
	if bursts == 0 {
		t.Error("overload-enabled profile generated no bursts over 120s")
	}
}

// TestSoak is the chaos gate: -chaos.seeds independent schedules, each with
// 20 concurrent trace jobs and every fault kind active, must finish with
// zero invariant violations and every job done-or-failed by the horizon.
func TestSoak(t *testing.T) {
	for seed := int64(0); seed < int64(*chaosSeeds); seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			res := Run(Config{Seed: seed})
			t.Log(res)
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if res.Unfinished > 0 {
				t.Errorf("%d jobs unfinished at horizon", res.Unfinished)
			}
			if !res.Quiesced {
				t.Error("simulation did not quiesce within the step budget")
			}
			if res.Injected.Total() == 0 {
				t.Error("no faults injected")
			}
		})
	}
}

// TestSoakDeterminism re-runs one seed and requires a byte-identical event
// trace (hash) and identical outcome counts.
func TestSoakDeterminism(t *testing.T) {
	a := Run(Config{Seed: 7})
	b := Run(Config{Seed: 7})
	if a.TraceHash != b.TraceHash {
		t.Fatalf("trace hash differs across runs of the same seed: %016x vs %016x", a.TraceHash, b.TraceHash)
	}
	if a.Completed != b.Completed || a.Failed != b.Failed || a.Makespan != b.Makespan {
		t.Fatalf("outcome differs: %v vs %v", a, b)
	}
	if a.Injected.String() != b.Injected.String() {
		t.Fatalf("fault tallies differ: [%s] vs [%s]", a.Injected, b.Injected)
	}
	c := Run(Config{Seed: 8})
	if c.TraceHash == a.TraceHash {
		t.Error("different seeds produced the same trace hash")
	}
}

// herdConfig is the thundering-herd soak: the regular fault storm plus
// overload bursts against a small admission plane, so all three decisions
// (admit, queue, shed) occur under fire.
func herdConfig(seed int64) Config {
	p := DefaultProfile()
	p.OverloadPerMin = 2
	p.OverloadBurst = 25
	return Config{
		Seed:    seed,
		Profile: &p,
		Flow:    &flow.Config{MaxQueue: 6, Rate: 5, Burst: 4},
		// Admission spreads the same work over more wall clock: a queued
		// oversized job can only start once the cluster is idle, so the
		// makespan tail is longer than the direct-submission soak's.
		Horizon: 14400 * sim.Second,
	}
}

// TestThunderingHerdSoak is the admission-control chaos gate: every
// submission — trace arrival or burst — gets exactly one decision, no
// admitted job is lost, shed and queued jobs never touch the scheduler,
// and the wait queue stays within its bound. -chaos.seeds widens it.
func TestThunderingHerdSoak(t *testing.T) {
	sawShed := false
	for seed := int64(0); seed < int64(*chaosSeeds); seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			res := Run(herdConfig(seed))
			t.Log(res)
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if !res.Quiesced {
				t.Error("simulation did not quiesce within the step budget")
			}
			if res.Injected.Get(KindOverload.String()) == 0 {
				t.Error("no overload bursts injected")
			}
			if res.FlowAdmitted == 0 {
				t.Error("no submissions admitted")
			}
			if res.FlowShed > 0 {
				sawShed = true
			}
		})
	}
	if !sawShed {
		t.Error("no seed ever shed load: the herd never overwhelmed the queue")
	}
}

// TestThunderingHerdDeterminism re-runs one herd seed and requires
// byte-identical traces and admission tallies.
func TestThunderingHerdDeterminism(t *testing.T) {
	a := Run(herdConfig(3))
	b := Run(herdConfig(3))
	if a.TraceHash != b.TraceHash {
		t.Fatalf("trace hash differs across runs of the same seed: %016x vs %016x", a.TraceHash, b.TraceHash)
	}
	if a.FlowAdmitted != b.FlowAdmitted || a.FlowShed != b.FlowShed || a.FlowQueuedEnd != b.FlowQueuedEnd {
		t.Fatalf("admission tallies differ: %v vs %v", a, b)
	}
	if a.Completed != b.Completed || a.Failed != b.Failed || a.Makespan != b.Makespan {
		t.Fatalf("outcome differs: %v vs %v", a, b)
	}
}

// TestAuditorActionArms drives the action-stream checks directly: the
// post-terminal rules for aborts and resends, and the attempt-floor reset
// a job restart implies. These arms close the exhaustive-switch coverage
// of core.Action; this pins their behaviour.
func TestAuditorActionArms(t *testing.T) {
	newAuditor := func() *Auditor {
		cl := cluster.New(cluster.Config{Machines: 1, ExecutorsPerMachine: 1})
		return NewAuditor(core.NewController(cl, core.DefaultOptions()), cl, 1)
	}
	ref := core.TaskRef{Job: "j", Stage: "s", Index: 0}

	a := newAuditor()
	a.OnAction(0, core.ActJobCompleted{Job: "j"})
	a.OnAction(0, core.ActAbortTask{Task: ref, Attempt: 1})
	a.OnAction(0, core.ActResend{To: ref, FromStage: "up"})
	if n := len(a.Violations()); n != 2 {
		t.Fatalf("want 2 post-terminal violations (abort, resend), got %d: %v", n, a.Violations())
	}

	// Before the job is terminal, the same actions are legal.
	b := newAuditor()
	b.OnAction(0, core.ActAbortTask{Task: ref, Attempt: 1})
	b.OnAction(0, core.ActResend{To: ref, FromStage: "up"})
	if n := len(b.Violations()); n != 0 {
		t.Fatalf("abort/resend on a live job flagged: %v", b.Violations())
	}

	// A job restart resets the attempt floor and the terminal state:
	// attempt 1 may run again without tripping monotonicity, and the
	// re-run may complete again.
	c := newAuditor()
	c.OnAction(0, core.ActStartTask{Task: ref, Attempt: 2})
	c.OnAction(0, core.ActJobFailed{Job: "j", Reason: "x"})
	c.OnAction(0, core.ActJobRestarted{Job: "j"})
	c.OnAction(0, core.ActStartTask{Task: ref, Attempt: 1})
	c.OnAction(0, core.ActJobCompleted{Job: "j"})
	if n := len(c.Violations()); n != 0 {
		t.Fatalf("restart did not reset audit state: %v", c.Violations())
	}

	// Without the restart, re-running attempt 1 after attempt 2 is the
	// monotonicity bug the auditor exists to catch.
	d := newAuditor()
	d.OnAction(0, core.ActStartTask{Task: ref, Attempt: 2})
	d.OnAction(0, core.ActStartTask{Task: ref, Attempt: 1})
	if n := len(d.Violations()); n != 1 {
		t.Fatalf("want 1 monotonicity violation, got %d: %v", n, d.Violations())
	}
}

// fairConfig is the multi-tenant fairness soak: three tenants with 2:1:1
// weights (one bursty, one quota-capped) under the fair-share policy and
// the regular fault storm, with the auditor's starvation and hard-quota
// invariants armed.
func fairConfig(seed int64) Config {
	o := core.DefaultOptions()
	o.Policy = sched.NewFairShare(sched.FairShareConfig{Queues: []sched.QueueSpec{
		{Name: "a", Weight: 2},
		{Name: "b", Weight: 1},
		{Name: "c", Weight: 1, Quota: 30},
	}})
	return Config{
		Seed:    seed,
		Options: &o,
		Tenants: []trace.TenantSpec{
			{Name: "a", Jobs: 12, Rate: 0.4},
			{Name: "b", Jobs: 12, Rate: 0.4, BurstAt: 20, BurstDur: 30, BurstFactor: 10},
			{Name: "c", Jobs: 8, ArrivalWindow: 60},
		},
		TenantQuotas: map[string]int{"c": 30},
	}
}

// TestFairShareSoak: the fair-share policy under the fault storm must
// keep every scheduler invariant, never let the quota-capped tenant run
// above its quota, and never starve a tenant while others complete.
func TestFairShareSoak(t *testing.T) {
	for seed := int64(0); seed < int64(*chaosSeeds); seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			res := Run(fairConfig(seed))
			t.Log(res)
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if !res.Quiesced {
				t.Error("simulation did not quiesce within the step budget")
			}
			if len(res.Tenants) != 3 {
				t.Fatalf("tenant tallies = %d, want 3", len(res.Tenants))
			}
			for _, tr := range res.Tenants {
				if tr.Submitted == 0 {
					t.Errorf("tenant %s submitted no jobs", tr.Name)
				}
			}
		})
	}
}

// TestFairShareSoakDeterminism: the fair policy's trace hash — which now
// folds tenant tallies, reclaim counts, share events and the fault
// schedule — must reproduce exactly per seed.
func TestFairShareSoakDeterminism(t *testing.T) {
	a := Run(fairConfig(3))
	b := Run(fairConfig(3))
	if a.TraceHash != b.TraceHash {
		t.Fatalf("fair soak hash differs: %016x vs %016x", a.TraceHash, b.TraceHash)
	}
	if a.Reclaims != b.Reclaims || a.Completed != b.Completed {
		t.Fatalf("fair soak outcome differs: %v vs %v", a, b)
	}
}
