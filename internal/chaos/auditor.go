package chaos

import (
	"fmt"

	"swift/internal/cluster"
	"swift/internal/core"
	"swift/internal/flow"
	"swift/internal/metrics"
	"swift/internal/sim"
)

// maxViolations caps how many violations one run records; a broken
// invariant tends to repeat on every subsequent event.
const maxViolations = 64

// Auditor observes every controller action and event boundary of a chaos
// run. Action-stream checks (attempt monotonicity, placement legality,
// post-terminal activity) live here; deep state checks are delegated to
// the controller's own CheckInvariants at every event boundary. The
// auditor also folds each action into an FNV-1a trace hash, the
// determinism witness: two runs of the same seed must produce identical
// hashes.
type Auditor struct {
	ctrl        *core.Controller
	cl          *cluster.Cluster
	lastAttempt map[core.TaskRef]int
	terminal    map[string]string // job -> "completed" | "failed"
	flowDec     map[string]flow.Decision
	violations  []string
	actions     *metrics.Counter
	hash        uint64
	checkEvery  int // run CheckInvariants every Nth event boundary (≥1)
	eventCount  int64
	quotas      map[string]int
}

// SetTenantQuotas arms the hard-quota invariant: at every state sweep, no
// listed tenant may hold more running tasks than its quota (the bound a
// quota-configured scheduling policy is supposed to enforce).
func (a *Auditor) SetTenantQuotas(quotas map[string]int) { a.quotas = quotas }

// NewAuditor attaches an auditor to a controller/cluster pair. checkEvery
// thins the (O(cluster) cost) full-state invariant sweep to every Nth event
// boundary; 1 checks every event.
func NewAuditor(ctrl *core.Controller, cl *cluster.Cluster, checkEvery int) *Auditor {
	if checkEvery < 1 {
		checkEvery = 1
	}
	return &Auditor{
		ctrl:        ctrl,
		cl:          cl,
		lastAttempt: make(map[core.TaskRef]int),
		terminal:    make(map[string]string),
		flowDec:     make(map[string]flow.Decision),
		actions:     metrics.NewCounter(),
		hash:        fnv1aOffset,
		checkEvery:  checkEvery,
	}
}

const (
	fnv1aOffset = 14695981039346656037
	fnv1aPrime  = 1099511628211
)

func (a *Auditor) fold(s string) {
	h := a.hash
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnv1aPrime
	}
	a.hash = h
}

// Fold mixes an out-of-band record (e.g. an applied fault) into the trace
// hash so the injected schedule is part of the determinism witness.
func (a *Auditor) Fold(s string) { a.fold(s) }

// TraceHash returns the accumulated event-trace hash.
func (a *Auditor) TraceHash() uint64 { return a.hash }

// Actions returns per-action-type counts.
func (a *Auditor) Actions() *metrics.Counter { return a.actions }

// Violations returns everything the audit caught, in detection order.
func (a *Auditor) Violations() []string { return a.violations }

func (a *Auditor) violate(now sim.Time, format string, args ...interface{}) {
	if len(a.violations) >= maxViolations {
		return
	}
	a.violations = append(a.violations, fmt.Sprintf("[%s] ", now)+fmt.Sprintf(format, args...))
}

// OnAction is the action hook: it validates and hashes one controller
// action as the driver interprets it.
func (a *Auditor) OnAction(now sim.Time, act core.Action) {
	a.fold(fmt.Sprintf("%d|%T|%+v\n", now, act, act))
	a.actions.Add(fmt.Sprintf("%T", act), 1)
	switch act := act.(type) {
	case core.ActStartTask:
		if last, seen := a.lastAttempt[act.Task]; seen && act.Attempt <= last {
			a.violate(now, "attempt not monotonic: %s started with attempt %d after %d", act.Task, act.Attempt, last)
		}
		a.lastAttempt[act.Task] = act.Attempt
		switch a.cl.Machine(a.cl.MachineOf(act.Executor)).Health {
		case cluster.ReadOnly:
			a.violate(now, "task %s launched on read-only machine %d", act.Task, a.cl.MachineOf(act.Executor))
		case cluster.Failed:
			a.violate(now, "task %s launched on failed machine %d", act.Task, a.cl.MachineOf(act.Executor))
		case cluster.Healthy:
			// the only legal placement target
		}
		if state, dead := a.terminal[act.Task.Job]; dead {
			a.violate(now, "task %s launched after its job %s", act.Task, state)
		}
	case core.ActJobCompleted:
		if prev, dead := a.terminal[act.Job]; dead {
			a.violate(now, "job %s completed after already %s", act.Job, prev)
		}
		a.terminal[act.Job] = "completed"
	case core.ActJobFailed:
		if prev, dead := a.terminal[act.Job]; dead {
			a.violate(now, "job %s failed after already %s", act.Job, prev)
		}
		a.terminal[act.Job] = "failed"
	case core.ActAbortTask:
		if state, dead := a.terminal[act.Task.Job]; dead {
			a.violate(now, "task %s aborted after its job %s", act.Task, state)
		}
	case core.ActResend:
		if state, dead := a.terminal[act.To.Job]; dead {
			a.violate(now, "resend to %s after its job %s", act.To, state)
		}
	case core.ActJobRestarted:
		// A restart resets every attempt and terminal expectation for the
		// job; forget its attempt floor so re-runs start clean.
		for ref := range a.lastAttempt {
			if ref.Job == act.Job {
				delete(a.lastAttempt, ref)
			}
		}
		delete(a.terminal, act.Job)
	case core.ActMachineReadOnly, core.ActMachineHealthy:
		// Health transitions carry no task state to validate; the placement
		// checks above use the cluster's live health on every start.
	case core.ActShuffleDegraded:
		// Mode downgrades are validated by the controller's own invariant
		// sweep (CheckInvariants) at the next event boundary.
	case core.ActReplicate:
		if len(act.Machines) == 0 {
			a.violate(now, "replicate %s with no target machines", act.Task)
		}
		if state, dead := a.terminal[act.Task.Job]; dead {
			a.violate(now, "replicate %s after its job %s", act.Task, state)
		}
	}
}

// FlowDecision records one admission decision for submission id and
// enforces the exactly-once rule: every submission is decided exactly once
// at offer time (fromQueue false), and the only legal later transition is
// a queued submission's release into the scheduler (fromQueue true). The
// decision stream folds into the trace hash, so admission is part of the
// determinism witness.
func (a *Auditor) FlowDecision(now sim.Time, id string, d flow.Decision, fromQueue bool) {
	a.fold(fmt.Sprintf("flow|%d|%s|%s|%v\n", now, id, d, fromQueue))
	prev, seen := a.flowDec[id]
	switch {
	case fromQueue && (!seen || prev != flow.Queued || d != flow.Admitted):
		a.violate(now, "flow: queue release of %s is not a queued->admitted transition (prev seen=%v %v, now %v)", id, seen, prev, d)
	case !fromQueue && seen:
		a.violate(now, "flow: submission %s decided twice (%v then %v)", id, prev, d)
	}
	a.flowDec[id] = d
}

// FlowOutcome returns the final admission state of one submission and
// whether any decision was ever recorded for it.
func (a *Auditor) FlowOutcome(id string) (flow.Decision, bool) {
	d, ok := a.flowDec[id]
	return d, ok
}

// AfterEvent is the event-boundary hook: the controller has processed one
// event and drained its actions, so every state invariant must hold.
func (a *Auditor) AfterEvent(now sim.Time) {
	a.eventCount++
	if a.eventCount%int64(a.checkEvery) != 0 {
		return
	}
	a.CheckNow(now)
}

// CheckNow runs the full state-invariant sweep immediately (the soak calls
// it once more at the horizon regardless of thinning).
func (a *Auditor) CheckNow(now sim.Time) {
	for _, msg := range a.ctrl.CheckInvariants() {
		a.violate(now, "%s", msg)
	}
	if len(a.quotas) > 0 {
		for _, tc := range a.ctrl.TenantSnapshots() {
			if q := a.quotas[tc.Tenant]; q > 0 && tc.Running > q {
				a.violate(now, "tenant %s runs %d tasks above its quota %d", tc.Tenant, tc.Running, q)
			}
		}
	}
}
