package chaos

import (
	"fmt"
	"math/rand"

	"swift/internal/cluster"
	"swift/internal/core"
	"swift/internal/dag"
	"swift/internal/flow"
	"swift/internal/metrics"
	"swift/internal/sim"
	"swift/internal/simrun"
	"swift/internal/trace"
)

// Config parameterises one chaos soak: a trace-generated workload run on a
// simulated cluster under a seeded fault schedule with full auditing. The
// zero value of any field takes the default noted on it.
type Config struct {
	Seed int64
	// Jobs is the number of trace-generated concurrent jobs (default 20).
	Jobs int
	// Machines and ExecutorsPerMachine size the cluster (default 20×4).
	Machines            int
	ExecutorsPerMachine int
	// ArrivalWindow spreads job submissions (default 60 s).
	ArrivalWindow sim.Duration
	// FaultWindow bounds fault injection times (default 90 s).
	FaultWindow sim.Duration
	// Horizon is the bounded-termination deadline: every job must be done
	// or failed by then (default 3600 s — the trace's heavy-tail jobs can
	// legitimately need over half an hour of virtual time when a fault
	// storm hits them early).
	Horizon sim.Time
	// MaxSteps bounds total simulation events, turning livelock into a
	// reported violation (default 5,000,000).
	MaxSteps int64
	// CheckEvery thins the full-state invariant sweep to every Nth event
	// (default 1 = every event).
	CheckEvery int
	// Profile overrides the fault mix (default DefaultProfile).
	Profile *Profile
	// Options overrides the controller configuration (default
	// core.DefaultOptions).
	Options *core.Options
	// Flow enables admission control: every submission (trace arrivals and
	// overload bursts alike) passes through a flow controller with this
	// configuration before reaching the scheduler, and the auditor enforces
	// the admission invariants (exactly-once decisions, bounded queue, no
	// admitted job lost). Nil runs the legacy direct-submission soak.
	Flow *flow.Config
	// Tenants switches the workload to the multi-tenant arrival process
	// (see trace.TenantSpec); Jobs and ArrivalWindow are then ignored. The
	// soak additionally audits fairness: every tenant's terminal tallies
	// fold into the trace hash, and a tenant whose every job dies — while
	// others complete — is reported as starved.
	Tenants []trace.TenantSpec
	// TenantQuotas arms the auditor's hard-quota invariant: no listed
	// tenant may ever hold more running tasks than its quota. Pair with a
	// quota-configured scheduling policy in Options.
	TenantQuotas map[string]int
}

func (c Config) withDefaults() Config {
	if c.Jobs <= 0 {
		c.Jobs = 20
	}
	if c.Machines <= 0 {
		c.Machines = 20
	}
	if c.ExecutorsPerMachine <= 0 {
		c.ExecutorsPerMachine = 4
	}
	if c.ArrivalWindow <= 0 {
		c.ArrivalWindow = 60 * sim.Second
	}
	if c.FaultWindow <= 0 {
		c.FaultWindow = 90 * sim.Second
	}
	if c.Horizon <= 0 {
		c.Horizon = 3600 * sim.Second
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 5_000_000
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 1
	}
	if c.Profile == nil {
		p := DefaultProfile()
		c.Profile = &p
	}
	if c.Options == nil {
		o := core.DefaultOptions()
		c.Options = &o
	}
	return c
}

// Result summarises one soak.
type Result struct {
	Seed       int64
	Jobs       int
	Violations []string
	// TraceHash is the FNV-1a hash over every controller action and every
	// applied fault, with timestamps: the determinism witness.
	TraceHash uint64
	Completed int
	Failed    int
	// Unfinished jobs at the horizon are also reported as violations.
	Unfinished int
	// Injected and Skipped tally faults by kind; a fault is skipped when
	// its target does not apply (no running task, machine already down).
	Injected *metrics.Counter
	Skipped  *metrics.Counter
	Restarts int
	Resends  int
	Makespan sim.Time
	// LastFinish is when the final job reached done/failed — the
	// recovery-cost makespan (Makespan itself is clamped to the horizon).
	LastFinish sim.Time
	// MeanLatency is the mean end-to-end latency of completed jobs, in
	// seconds.
	MeanLatency float64
	Quiesced    bool
	// Flow tallies admission outcomes when Config.Flow is set: jobs that
	// ever entered the scheduler, jobs shed at the door, and jobs still
	// parked in the wait queue at the horizon.
	FlowAdmitted  int
	FlowShed      int
	FlowQueuedEnd int
	// Tenants holds per-tenant terminal tallies when Config.Tenants is
	// set, in declaration order.
	Tenants []TenantResult
	// Reclaims counts whole graphlets preempted by the scheduling policy.
	Reclaims int
	// ReplicaHits and Recomputes report shuffle-service recovery outcomes
	// when Options.ShuffleReplicas > 1: lost serving copies recovered from
	// a surviving replica versus lost outputs that re-ran their producer.
	ReplicaHits int
	Recomputes  int
	// Replicated records whether the soak ran with output replication, so
	// the summary line prints the shuffle block only when meaningful.
	Replicated bool
}

// TenantResult is one tenant's terminal job tally.
type TenantResult struct {
	Name      string
	Submitted int
	Done      int
	Failed    int
}

// String renders a one-line summary.
func (r *Result) String() string {
	s := fmt.Sprintf("seed=%d jobs=%d done=%d failed=%d unfinished=%d violations=%d hash=%016x faults[%s] restarts=%d resends=%d last-finish=%.0fs mean-latency=%.1fs",
		r.Seed, r.Jobs, r.Completed, r.Failed, r.Unfinished, len(r.Violations), r.TraceHash, r.Injected, r.Restarts, r.Resends, r.LastFinish.Seconds(), r.MeanLatency)
	if r.FlowAdmitted+r.FlowShed+r.FlowQueuedEnd > 0 {
		s += fmt.Sprintf(" flow[admitted=%d shed=%d queued-end=%d]", r.FlowAdmitted, r.FlowShed, r.FlowQueuedEnd)
	}
	if len(r.Tenants) > 0 {
		s += fmt.Sprintf(" reclaims=%d", r.Reclaims)
		for _, tr := range r.Tenants {
			s += fmt.Sprintf(" %s[done=%d failed=%d]", tr.Name, tr.Done, tr.Failed)
		}
	}
	if r.Replicated {
		s += fmt.Sprintf(" shuffle[replica-hits=%d recomputes=%d]", r.ReplicaHits, r.Recomputes)
	}
	return s
}

// Run executes one fully deterministic chaos soak: generate the workload
// and fault schedule from the seed, wire the auditor into the driver's
// action/event hooks, inject every fault at its scheduled instant, run to
// the horizon and verify bounded termination plus a final invariant sweep.
func Run(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		Seed:     cfg.Seed,
		Jobs:     cfg.Jobs,
		Injected: metrics.NewCounter(),
		Skipped:  metrics.NewCounter(),
	}

	runner := simrun.New(simrun.Config{
		Cluster:      cluster.Config{Machines: cfg.Machines, ExecutorsPerMachine: cfg.ExecutorsPerMachine},
		Options:      *cfg.Options,
		Seed:         cfg.Seed,
		ReadmitDelay: cfg.Profile.RecoverDelay,
	})
	aud := NewAuditor(runner.Controller(), runner.Cluster(), cfg.CheckEvery)
	aud.SetTenantQuotas(cfg.TenantQuotas)
	runner.SetActionHook(aud.OnAction)

	ctrl := runner.Controller()
	eng := runner.Engine()

	// With admission control enabled, every submission is offered to the
	// flow controller instead of reaching the scheduler directly; queued
	// work is pumped back in at event boundaries and on a 1 s tick while
	// the wait queue is nonempty (the tick keeps the queue draining when
	// the cluster goes quiet with the governor dry).
	var fc *flow.Controller
	var offered []*dag.Job
	if cfg.Flow != nil {
		fc = flow.NewController(*cfg.Flow, cfg.Machines*cfg.ExecutorsPerMachine)
	}
	pumping := false
	tickArmed := false
	var pumpTick func()
	armTick := func() {
		if fc != nil && !tickArmed && fc.QueueLen() > 0 {
			tickArmed = true
			eng.After(sim.Second, pumpTick)
		}
	}
	pump := func(now sim.Time) {
		if pumping {
			return
		}
		pumping = true
		for {
			it, ok := fc.PopAdmissible(now, ctrl.Snapshot())
			if !ok {
				break
			}
			aud.FlowDecision(now, it.ID, flow.Admitted, true)
			_ = runner.Submit(it.Payload.(*dag.Job))
		}
		pumping = false
		armTick()
	}
	pumpTick = func() {
		tickArmed = false
		if !pumping {
			pump(eng.Now())
		}
		armTick()
	}
	offer := func(job *dag.Job) {
		now := eng.Now()
		offered = append(offered, job)
		out, _ := fc.Offer(now, ctrl.Snapshot(), flow.Item{ID: job.ID, Tasks: job.NumTasks(), Payload: job, Enqueued: now})
		aud.FlowDecision(now, job.ID, out.Decision, false)
		if out.Decision == flow.Admitted {
			_ = runner.Submit(job)
		}
		armTick()
	}
	if fc == nil {
		runner.SetEventHook(aud.AfterEvent)
	} else {
		runner.SetEventHook(func(now sim.Time) {
			aud.AfterEvent(now)
			pump(now)
		})
	}

	spec := trace.Spec{
		Jobs:          cfg.Jobs,
		Seed:          cfg.Seed,
		ArrivalWindow: cfg.ArrivalWindow.Seconds(),
	}
	if len(cfg.Tenants) > 0 {
		spec = trace.Spec{Seed: cfg.Seed, Tenants: cfg.Tenants}
	}
	tr := trace.Generate(spec)
	res.Jobs = len(tr.Jobs)
	for _, j := range tr.Jobs {
		if fc != nil {
			j := j
			eng.At(sim.FromSeconds(j.SubmitAt), func() { offer(j.Job) })
		} else {
			runner.SubmitAt(sim.FromSeconds(j.SubmitAt), j.Job)
		}
	}

	// Distinct derived seeds keep the four random streams (workload,
	// schedule shape, injection-time victim picks, overload-burst
	// workloads) independent.
	schedule := GenerateSchedule(rand.New(rand.NewSource(cfg.Seed<<1|1)), *cfg.Profile,
		cfg.FaultWindow, cfg.Machines, cfg.Machines*cfg.ExecutorsPerMachine)
	applyRng := rand.New(rand.NewSource(cfg.Seed<<2 | 3))
	overloadIdx := 0
	for _, f := range schedule {
		f := f
		if f.Kind == KindOverload {
			// Overload bursts are submission storms, not injected faults:
			// they never reach apply(). Without a flow controller there is
			// no admission plane to storm, so they are recorded as skipped.
			if fc == nil {
				res.Skipped.Add(f.Kind.String(), 1)
				continue
			}
			idx := overloadIdx
			overloadIdx++
			eng.At(f.At, func() {
				burst := trace.Generate(trace.Spec{Jobs: f.Count, Seed: (cfg.Seed<<3 | 5) + int64(idx)*7919})
				for k, bj := range burst.Jobs {
					bj.Job.ID = fmt.Sprintf("ovl%d-%d", idx, k)
					offer(bj.Job)
				}
				res.Injected.Add(f.Kind.String(), 1)
				aud.Fold(fmt.Sprintf("fault|%d|%s|burst%dx%d\n", eng.Now(), f.Kind, idx, f.Count))
				cfg.Options.Obs.Fault(f.Kind.String(), fmt.Sprintf("burst%d", idx))
			})
			continue
		}
		eng.At(f.At, func() {
			target, ok := apply(runner, f, applyRng, cfg.Profile)
			if ok {
				res.Injected.Add(f.Kind.String(), 1)
				aud.Fold(fmt.Sprintf("fault|%d|%s|%s\n", eng.Now(), f.Kind, target))
				// Mirror applied faults into the observability trace (the
				// recorder arrives through Options.Obs; nil-safe).
				cfg.Options.Obs.Fault(f.Kind.String(), target)
			} else {
				res.Skipped.Add(f.Kind.String(), 1)
			}
		})
	}

	end, quiesced := runner.RunBounded(cfg.Horizon, cfg.MaxSteps)
	res.Quiesced = quiesced
	res.Makespan = end
	if !quiesced {
		aud.violate(end, "event budget of %d steps exhausted before the horizon: livelocked recovery loop", cfg.MaxSteps)
	}
	aud.CheckNow(end)

	// Bounded termination. Without admission control, every submitted job
	// must be done or failed at the horizon. With it, the obligation moves
	// to the admission ledger: every offer got exactly one decision,
	// admitted jobs are terminal, queued/shed jobs never touched the
	// scheduler, and the wait queue never exceeded its bound.
	if fc == nil {
		for _, j := range tr.Jobs {
			switch {
			case ctrl.JobDone(j.Job.ID):
				res.Completed++
			case ctrl.JobFailed(j.Job.ID):
				res.Failed++
			default:
				res.Unfinished++
				aud.violate(end, "job %s neither done nor failed at the horizon", j.Job.ID)
			}
		}
	} else {
		for _, job := range offered {
			dec, ok := aud.FlowOutcome(job.ID)
			if !ok {
				aud.violate(end, "flow: submission %s never received an admission decision", job.ID)
				continue
			}
			switch dec {
			case flow.Admitted:
				res.FlowAdmitted++
				switch {
				case ctrl.JobDone(job.ID):
					res.Completed++
				case ctrl.JobFailed(job.ID):
					res.Failed++
				default:
					res.Unfinished++
					aud.violate(end, "admitted job %s neither done nor failed at the horizon", job.ID)
				}
			case flow.Queued:
				res.FlowQueuedEnd++
				if ctrl.JobDone(job.ID) || ctrl.JobFailed(job.ID) {
					aud.violate(end, "queued job %s reached the scheduler without a release decision", job.ID)
				}
			case flow.Shed:
				res.FlowShed++
				if ctrl.JobDone(job.ID) || ctrl.JobFailed(job.ID) {
					aud.violate(end, "shed job %s reached the scheduler", job.ID)
				}
			}
		}
		st := fc.Stats()
		if st.MaxQueue > fc.MaxQueue() {
			aud.violate(end, "flow wait queue peaked at %d, above its bound %d", st.MaxQueue, fc.MaxQueue())
		}
		if st.QueueLen != res.FlowQueuedEnd {
			aud.violate(end, "flow queue length %d disagrees with %d queued-at-horizon decisions", st.QueueLen, res.FlowQueuedEnd)
		}
		// The final admission tallies are part of the determinism witness.
		aud.Fold(fmt.Sprintf("flowstats|%d|%d|%d|%d\n", st.Admitted, st.Queued, st.Shed, st.QueueLen))
	}
	// Fairness audit: per-tenant terminal tallies join the determinism
	// witness, and a tenant whose submissions all died while another
	// tenant completed work is starvation — the no-starvation invariant a
	// fair policy must uphold even under the fault schedule.
	if len(cfg.Tenants) > 0 {
		anyDone := false
		for _, ts := range cfg.Tenants {
			tres := TenantResult{Name: ts.Name}
			for _, j := range tr.Jobs {
				if j.Job.Tenant != ts.Name {
					continue
				}
				tres.Submitted++
				switch {
				case ctrl.JobDone(j.Job.ID):
					tres.Done++
				case ctrl.JobFailed(j.Job.ID):
					tres.Failed++
				}
			}
			anyDone = anyDone || tres.Done > 0
			res.Tenants = append(res.Tenants, tres)
			aud.Fold(fmt.Sprintf("tenant|%s|%d|%d|%d\n", tres.Name, tres.Submitted, tres.Done, tres.Failed))
		}
		for _, tres := range res.Tenants {
			if anyDone && tres.Submitted > 0 && tres.Done == 0 {
				aud.violate(end, "tenant %s starved: %d jobs submitted, none completed", tres.Name, tres.Submitted)
			}
		}
		res.Reclaims = ctrl.ReclaimedGangs()
		aud.Fold(fmt.Sprintf("reclaims|%d\n", res.Reclaims))
	}
	// Recovery tallies are reported for every soak, but they join the
	// determinism witness (and the summary line) only when replication is
	// on, so legacy (R ≤ 1) trace hashes are unchanged.
	res.ReplicaHits = ctrl.ReplicaRecoveries()
	res.Recomputes = ctrl.OutputRecomputes()
	if cfg.Options.ShuffleReplicas > 1 {
		res.Replicated = true
		aud.Fold(fmt.Sprintf("shuffle|%d|%d\n", res.ReplicaHits, res.Recomputes))
	}
	latency := 0.0
	for _, jr := range runner.Results().Jobs {
		res.Restarts += jr.Restarts
		res.Resends += jr.Resends
		if jr.Finish > res.LastFinish {
			res.LastFinish = jr.Finish
		}
		if jr.Completed {
			latency += jr.Duration()
		}
	}
	if res.Completed > 0 {
		res.MeanLatency = latency / float64(res.Completed)
	}
	res.Violations = aud.Violations()
	res.TraceHash = aud.TraceHash()
	return res
}

// apply injects one fault, choosing live victims for task-scoped kinds
// with the dedicated injection rng. It returns a target description (for
// the trace hash) and whether the fault applied.
func apply(r *simrun.Runner, f Fault, rng *rand.Rand, p *Profile) (string, bool) {
	eng := r.Engine()
	switch f.Kind {
	case KindMachineCrash:
		id := cluster.MachineID(f.Machine)
		if !r.CrashMachine(id) {
			return "", false
		}
		eng.After(p.RebootDelay, func() { r.RebootMachine(id) })
		return fmt.Sprintf("m%d", f.Machine), true
	case KindMachineUnhealthy:
		id := cluster.MachineID(f.Machine)
		if !r.MarkUnhealthy(id) {
			return "", false
		}
		eng.After(p.RecoverDelay, func() { r.RecoverMachine(id) })
		return fmt.Sprintf("m%d", f.Machine), true
	case KindExecutorRestart:
		r.RestartExecutor(cluster.ExecutorID(f.Executor))
		return fmt.Sprintf("e%d", f.Executor), true
	case KindTaskCrash:
		ref, ok := pickRunning(r, rng)
		if !ok {
			return "", false
		}
		kind := core.FailCrash
		if f.AppErr {
			kind = core.FailAppError
		}
		return ref.String(), r.CrashTask(ref, kind)
	case KindTaskTimeout:
		ref, ok := pickRunning(r, rng)
		if !ok {
			return "", false
		}
		return ref.String(), r.TimeoutTask(ref)
	case KindOutputLost:
		ref, ok := pickDone(r, rng)
		if !ok {
			return "", false
		}
		r.LoseOutput(ref)
		return ref.String(), true
	case KindCacheWorkerCrash:
		if !r.CrashCacheWorker(cluster.MachineID(f.Machine)) {
			return "", false
		}
		return fmt.Sprintf("m%d", f.Machine), true
	case KindStraggler:
		ref, ok := pickRunning(r, rng)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("%s*%.2f", ref, f.Factor), r.SlowTask(ref, f.Factor)
	case KindOverload:
		// Submission storms are interpreted by the soak's admission plane
		// (Run), never injected into the cluster; reaching here means the
		// soak had no flow controller, and the fault does not apply.
		return "", false
	}
	return "", false
}

// pickRunning selects one running task uniformly (sorted refs, seeded rng:
// deterministic).
func pickRunning(r *simrun.Runner, rng *rand.Rand) (core.TaskRef, bool) {
	refs := r.RunningTaskRefs()
	if len(refs) == 0 {
		return core.TaskRef{}, false
	}
	return refs[rng.Intn(len(refs))], true
}

// pickDone selects one completed task whose buffered output is still
// intact, from the controller's deterministic snapshots.
func pickDone(r *simrun.Runner, rng *rand.Rand) (core.TaskRef, bool) {
	ctrl := r.Controller()
	var refs []core.TaskRef
	for _, job := range ctrl.LiveJobs() {
		for _, t := range ctrl.Tasks(job) {
			if t.State == core.TaskDone && !t.OutputLost {
				refs = append(refs, t.Ref)
			}
		}
	}
	if len(refs) == 0 {
		return core.TaskRef{}, false
	}
	return refs[rng.Intn(len(refs))], true
}
