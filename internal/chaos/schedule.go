// Package chaos is a deterministic chaos engine for the Swift controller:
// it generates seeded fault schedules (Poisson arrivals with bursts across
// every failure class of Section IV), injects them into a simulated
// cluster running a trace-generated workload, and audits every controller
// action and event against the scheduler's invariants. Same seed, same
// everything — a violating run replays bit for bit from its seed.
package chaos

import (
	"math/rand"
	"sort"

	"swift/internal/sim"
)

// FaultKind classifies one injected fault.
type FaultKind int

const (
	// KindMachineCrash kills a machine; it reboots after Profile.RebootDelay.
	KindMachineCrash FaultKind = iota
	// KindMachineUnhealthy drives the unhealthy→read-only transition; the
	// machine re-admits after Profile.RecoverDelay.
	KindMachineUnhealthy
	// KindExecutorRestart restarts one executor process (self-reported).
	KindExecutorRestart
	// KindTaskCrash kills one running task (error-reported).
	KindTaskCrash
	// KindTaskTimeout hangs one running task (heartbeat-detected).
	KindTaskTimeout
	// KindOutputLost destroys one completed task's buffered output.
	KindOutputLost
	// KindCacheWorkerCrash kills one machine's Cache Worker, losing every
	// output hosted there at once (the TaskOutputLost storm).
	KindCacheWorkerCrash
	// KindStraggler slows one running task down by Fault.Factor.
	KindStraggler
	// KindOverload is a thundering herd: Fault.Count extra job submissions
	// arrive at one tick, stressing the admission plane. It only applies to
	// soaks configured with a flow controller (Config.Flow).
	KindOverload

	numFaultKinds
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case KindMachineCrash:
		return "machine-crash"
	case KindMachineUnhealthy:
		return "machine-unhealthy"
	case KindExecutorRestart:
		return "executor-restart"
	case KindTaskCrash:
		return "task-crash"
	case KindTaskTimeout:
		return "task-timeout"
	case KindOutputLost:
		return "output-lost"
	case KindCacheWorkerCrash:
		return "cacheworker-crash"
	case KindStraggler:
		return "straggler"
	case KindOverload:
		return "overload"
	}
	return "unknown"
}

// Fault is one scheduled injection. Machine/Executor target machine-scoped
// kinds; task-scoped kinds (crash, timeout, output loss, straggler) pick a
// live victim at injection time, because the schedule cannot know future
// task placement.
type Fault struct {
	At       sim.Time
	Kind     FaultKind
	Machine  int
	Executor int
	// Factor is the straggler slowdown multiplier.
	Factor float64
	// AppErr surfaces a task crash as an application error (job-fatal,
	// Section IV-C) instead of an infrastructure failure.
	AppErr bool
	// Count is the overload burst size: how many extra submissions arrive
	// at this fault's tick.
	Count int
}

// Profile sets per-kind mean arrival rates (faults per minute of virtual
// time over the injection window) and the pairing delays that bring
// machines back.
type Profile struct {
	MachineCrashPerMin     float64
	MachineUnhealthyPerMin float64
	ExecutorRestartPerMin  float64
	TaskCrashPerMin        float64
	TaskTimeoutPerMin      float64
	OutputLostPerMin       float64
	CacheWorkerCrashPerMin float64
	StragglerPerMin        float64
	// BurstProb is the probability that an arrival is a burst of 2..BurstMax
	// correlated faults of the same kind within one second (rack switch
	// reboots, correlated evictions).
	BurstProb float64
	BurstMax  int
	// RebootDelay is crash→rejoin; it must exceed the worst-case machine
	// failure detection delay (15 s) so a machine never rejoins a pool the
	// controller still believes it occupies.
	RebootDelay sim.Duration
	// RecoverDelay is the read-only machine's healthy observation window.
	RecoverDelay sim.Duration
	// AppErrorFraction of task crashes are application errors.
	AppErrorFraction float64
	// SlowdownMax bounds the straggler factor, drawn uniformly from
	// (1, SlowdownMax].
	SlowdownMax float64
	// OverloadPerMin is the thundering-herd arrival rate; the default
	// profile leaves it 0 because overload bursts only make sense against
	// a soak with admission control enabled (Config.Flow).
	OverloadPerMin float64
	// OverloadBurst is the submission count per overload fault (default 20).
	OverloadBurst int
}

// DefaultProfile returns a storm that exercises every fault kind hard but
// keeps jobs finishable: machines always come back, and most task crashes
// are recoverable infrastructure faults.
func DefaultProfile() Profile {
	return Profile{
		MachineCrashPerMin:     1.5,
		MachineUnhealthyPerMin: 1.5,
		ExecutorRestartPerMin:  4,
		TaskCrashPerMin:        6,
		TaskTimeoutPerMin:      2,
		OutputLostPerMin:       4,
		CacheWorkerCrashPerMin: 1,
		StragglerPerMin:        3,
		BurstProb:              0.15,
		BurstMax:               4,
		RebootDelay:            25 * sim.Second,
		RecoverDelay:           20 * sim.Second,
		AppErrorFraction:       0.03,
		SlowdownMax:            6,
	}
}

// rates returns the per-kind rates indexed by FaultKind.
func (p Profile) rates() [numFaultKinds]float64 {
	return [numFaultKinds]float64{
		KindMachineCrash:     p.MachineCrashPerMin,
		KindMachineUnhealthy: p.MachineUnhealthyPerMin,
		KindExecutorRestart:  p.ExecutorRestartPerMin,
		KindTaskCrash:        p.TaskCrashPerMin,
		KindTaskTimeout:      p.TaskTimeoutPerMin,
		KindOutputLost:       p.OutputLostPerMin,
		KindCacheWorkerCrash: p.CacheWorkerCrashPerMin,
		KindStraggler:        p.StragglerPerMin,
		KindOverload:         p.OverloadPerMin,
	}
}

// GenerateSchedule samples a fault schedule over [0, window): each kind is
// an independent Poisson process (exponential inter-arrivals at its rate),
// arrivals optionally fan into short bursts, and machine-scoped faults draw
// their targets up front. The result is sorted by time (kind, then target,
// break ties) and is a pure function of the rng's seed.
func GenerateSchedule(rng *rand.Rand, p Profile, window sim.Duration, machines, executors int) []Fault {
	var out []Fault
	minute := float64(60 * sim.Second)
	for kind, rate := range p.rates() {
		if rate <= 0 {
			continue
		}
		mean := minute / rate // mean inter-arrival in µs
		for t := sim.Time(rng.ExpFloat64() * mean); t < window; t += sim.Time(rng.ExpFloat64() * mean) {
			n := 1
			if p.BurstProb > 0 && rng.Float64() < p.BurstProb && p.BurstMax > 1 {
				n = 2 + rng.Intn(p.BurstMax-1)
			}
			for i := 0; i < n; i++ {
				at := t
				if i > 0 {
					at += sim.Time(rng.Int63n(int64(sim.Second)))
				}
				if at >= window {
					continue
				}
				f := Fault{At: at, Kind: FaultKind(kind)}
				switch f.Kind {
				case KindMachineCrash, KindMachineUnhealthy, KindCacheWorkerCrash:
					f.Machine = rng.Intn(machines)
				case KindExecutorRestart:
					f.Executor = rng.Intn(executors)
				case KindTaskCrash:
					f.AppErr = rng.Float64() < p.AppErrorFraction
				case KindStraggler:
					f.Factor = 1 + rng.Float64()*(p.SlowdownMax-1)
				case KindTaskTimeout, KindOutputLost:
					// task-scoped with no extra parameters: the victim is
					// drawn from the live tasks at injection time.
				case KindOverload:
					f.Count = p.OverloadBurst
					if f.Count <= 0 {
						f.Count = 20
					}
				}
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		return a.Executor < b.Executor
	})
	return out
}
