package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is swiftvet's whole-program layer: a module-wide call graph
// over every loaded package plus per-function summaries computed bottom-up
// over the graph, so the interprocedural analyzers (transitive
// determinism, held-lock blocking, lockorder, hotpath) see through helper
// functions instead of stopping at the first call boundary.
//
// The graph is conservative but explicit about its boundaries:
//
//   - static calls and method calls resolve to their *types.Func and are
//     keyed by FullName, which is identical whether the function is seen
//     from its defining package's type-check or through export data;
//   - method calls through a module-declared *sealed* interface (one with
//     an unexported method — the same closed-sum marker the exhaustive
//     analyzer uses) devirtualize to every implementing type's method;
//     open interfaces and func-typed fields are an analysis boundary and
//     produce no edge;
//   - a function value that is merely referenced (assigned, passed,
//     stored) is assumed to be eventually called and gets a synchronous
//     edge — conservative tracking of laundering through variables;
//   - a `go` statement's callee gets an asynchronous edge: its effects
//     count for determinism (a spawned goroutine reading the clock still
//     breaks replay) but not for may-block (the spawner does not wait);
//   - function literals are their own nodes, charged to the enclosing
//     function by the same sync/async edge rules.
//
// Summaries are three boolean taints with deterministic witness chains
// (clock/rand, may-block, hot-path shapes) plus the transitive set of
// mutex classes a function may acquire. Taint sources covered by a
// //lint:allow for the owning analyzer do not taint — an accepted direct
// cost does not re-surface as a finding in every caller.

// FuncID names one function across the whole program: (*types.Func).
// FullName() for declared functions and methods, "<parent>$litN" for the
// N'th function literal inside parent.
type FuncID string

// edge is one call-graph edge, recorded at its source position.
type edge struct {
	callee FuncID
	pos    token.Pos
	async  bool // `go` spawn: counts for determinism, not for may-block
	cold   bool // inside a panic(...) argument: hot-path taint stops here
}

// siteFact is one direct summary-relevant operation inside a function.
type siteFact struct {
	pos  token.Pos
	what string
}

// lockKey classifies a mutex for cross-function identity: field mutexes
// by owning named type ("pkg/path.Type.field"), variable mutexes by
// declaration scope. Two *instances* of the same class are one key — the
// analysis is class-based, like lock-order analysis everywhere.
type lockKey string

// acquire is one direct Lock/RLock on a classified mutex.
type acquire struct {
	key lockKey
	pos token.Pos
}

// region is one syntactically-held stretch of a classified mutex: from
// the Lock to its first matching Unlock, or to the end of the function
// when the Unlock is deferred (or missing — rule 1 reports that
// separately; the region still feeds the lock graph).
type region struct {
	key        lockKey
	recv       string // rendered receiver for messages, e.g. "e.mu"
	start, end token.Pos
	read       bool // RLock region
}

// funcNode is one function in the program graph.
type funcNode struct {
	id   FuncID
	pkg  *Package
	disp string    // compact display name for witness chains
	pos  token.Pos // declaration (or literal) position
	body *ast.BlockStmt

	edges []edge

	clockFacts []siteFact // unsuppressed wall-clock / global-rand reads
	blockFacts []siteFact // unsuppressed may-block operations
	hotFacts   []siteFact // unsuppressed hot-path alloc shapes

	acquires []acquire
	regions  []region

	hot bool // carries a //lint:hotpath tag
}

// witness is one function's entry in a taint table: dist counts call hops
// to the nearest direct fact, via/site say which edge to follow to get
// there, what carries the terminal description. dist 0 means the fact is
// in this very function at site.
type witness struct {
	dist int
	what string
	site token.Pos
	via  FuncID
}

// lockEdge is one arc of the global lock-acquisition graph: while a
// mutex of class src was held, a mutex of class dst was acquired — either
// directly or transitively through via.
type lockEdge struct {
	src, dst lockKey
	pos      token.Pos
	pkgPath  string
	via      FuncID // "" when the acquisition is in the holding function
}

// Program is the whole-program view shared by the interprocedural
// analyzers: every function node, the three taint tables, the transitive
// acquire sets, and the global lock graph.
type Program struct {
	fset  *token.FileSet
	cfg   *Config
	nodes map[FuncID]*funcNode
	ids   []FuncID // sorted — the deterministic iteration order
	lits  map[*ast.FuncLit]FuncID

	clockTaint map[FuncID]*witness
	blockTaint map[FuncID]*witness
	hotTaint   map[FuncID]*witness
	acqSets    map[FuncID]map[lockKey]bool

	lockEdges []lockEdge
	cycles    []lockCycle

	sups   map[string][]suppression // pkg path -> parsed allows
	ranges map[string][]lineRange   // file -> multi-line statement spans
}

// lockCycle is one strongly-connected component of the lock graph with
// more than one class: a potential deadlock.
type lockCycle struct {
	keys  []lockKey // sorted
	edges []lockEdge
}

// buildProgram constructs the graph and computes every summary. It is
// deterministic: nodes are visited in sorted-ID order, edges in source
// order, and witness selection always prefers the fewest hops, then the
// first edge in source order.
func buildProgram(fset *token.FileSet, pkgs []*Package, cfg *Config) *Program {
	prog := &Program{
		fset:   fset,
		cfg:    cfg,
		nodes:  make(map[FuncID]*funcNode),
		lits:   make(map[*ast.FuncLit]FuncID),
		sups:   make(map[string][]suppression),
		ranges: make(map[string][]lineRange),
	}
	for _, pkg := range pkgs {
		sups, _ := collectSuppressions(fset, pkg)
		prog.sups[pkg.Path] = sups
		collectStmtRanges(fset, pkg, prog.ranges)
	}
	for _, pkg := range pkgs {
		prog.addPackage(pkg)
	}
	for _, id := range prog.ids {
		prog.scanNode(prog.nodes[id])
	}
	// scanNode appends literal nodes; re-sort so every later pass walks
	// the full node set in one deterministic order.
	prog.ids = prog.ids[:0]
	for id := range prog.nodes {
		prog.ids = append(prog.ids, id)
	}
	sort.Slice(prog.ids, func(i, j int) bool { return prog.ids[i] < prog.ids[j] })

	prog.clockTaint = prog.propagate(func(n *funcNode) []siteFact { return n.clockFacts }, true, false)
	prog.blockTaint = prog.propagate(func(n *funcNode) []siteFact { return n.blockFacts }, false, false)
	prog.hotTaint = prog.propagate(func(n *funcNode) []siteFact { return n.hotFacts }, true, true)
	prog.computeAcquireSets()
	prog.buildLockGraph()
	prog.findLockCycles()
	return prog
}

// addPackage creates nodes for every declared function in the package's
// production sources. Duplicate IDs (multiple init functions) get a
// deterministic #n suffix.
func (p *Program) addPackage(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			id := FuncID(obj.FullName())
			for n := 2; ; n++ {
				if _, taken := p.nodes[id]; !taken {
					break
				}
				id = FuncID(fmt.Sprintf("%s#%d", obj.FullName(), n))
			}
			node := &funcNode{
				id:   id,
				pkg:  pkg,
				disp: p.shorten(obj.FullName()),
				pos:  fd.Pos(),
				body: fd.Body,
				hot:  hasHotpathTag(fd),
			}
			p.nodes[id] = node
			p.ids = append(p.ids, id)
		}
	}
	sort.Slice(p.ids, func(i, j int) bool { return p.ids[i] < p.ids[j] })
}

// hasHotpathTag reports whether the declaration carries a //lint:hotpath
// directive in its doc comment block.
func hasHotpathTag(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == "//lint:hotpath" || strings.HasPrefix(text, "//lint:hotpath ") {
			return true
		}
	}
	return false
}

// shorten compacts a FullName for witness display by trimming the module
// path prefix: "(*swift/internal/core.Controller).emit" -> "(*core.Controller).emit".
func (p *Program) shorten(full string) string {
	if p.cfg == nil || p.cfg.Module == "" {
		return full
	}
	s := strings.ReplaceAll(full, p.cfg.Module+"/internal/", "")
	return strings.ReplaceAll(s, p.cfg.Module+"/", "")
}

// scanNode walks one function body recording edges and direct facts.
// Function literals become child nodes (scanned recursively); the walk
// never descends into them from the parent.
func (p *Program) scanNode(n *funcNode) {
	s := &nodeScan{prog: p, node: n, info: n.pkg.Info}
	s.collectCapMade(n.body)
	s.walkStmtList(n.body.List, 0)
	n.acquires, n.regions = p.collectLockRegions(n)
}

// nodeScan carries one function's walk state.
type nodeScan struct {
	prog    *Program
	node    *funcNode
	info    *types.Info
	litSeq  int
	cold    int               // >0 while inside a panic(...) argument
	nonComm map[ast.Node]bool // comm ops of a defaulted select: non-blocking
	capMade map[types.Object]bool
}

// collectCapMade records every local slice created with an explicit
// capacity (`make(T, len, cap)`) in this function: appending to one is
// amortized by the author's own sizing, so the growing-append hot shape
// does not apply.
func (s *nodeScan) collectCapMade(body *ast.BlockStmt) {
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) != 3 {
			return
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "make" {
			return
		}
		if b, isB := s.info.Uses[fn].(*types.Builtin); !isB || b.Name() != "make" {
			return
		}
		obj := s.info.Defs[id]
		if obj == nil {
			obj = s.info.Uses[id]
		}
		if obj != nil {
			if s.capMade == nil {
				s.capMade = make(map[types.Object]bool)
			}
			s.capMade[obj] = true
		}
	}
	walkShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i := range n.Rhs {
				if i < len(n.Lhs) {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i := range n.Values {
				if i < len(n.Names) {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
}

func (s *nodeScan) walkStmtList(stmts []ast.Stmt, loopDepth int) {
	for _, st := range stmts {
		s.walk(st, loopDepth)
	}
}

// walk visits one node with explicit loop-depth tracking (the hot-path
// "growing" shapes only count inside a loop).
func (s *nodeScan) walk(n ast.Node, loopDepth int) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.FuncLit:
		s.child(n, false)
		return
	case *ast.GoStmt:
		s.spawn(n.Call, loopDepth)
		return
	case *ast.SelectStmt:
		s.selectStmt(n, loopDepth)
		return
	case *ast.ForStmt:
		s.walk(n.Init, loopDepth)
		s.walk(n.Cond, loopDepth)
		s.walk(n.Post, loopDepth)
		s.walkStmtList(n.Body.List, loopDepth+1)
		return
	case *ast.RangeStmt:
		s.rangeStmt(n, loopDepth)
		return
	case *ast.SendStmt:
		if !s.nonComm[n] {
			s.node.blockFacts = s.fact(s.node.blockFacts, "lockdiscipline", n.Pos(), "channel send")
		}
	case *ast.UnaryExpr:
		if n.Op == token.ARROW && !s.nonComm[n] {
			s.node.blockFacts = s.fact(s.node.blockFacts, "lockdiscipline", n.Pos(), "channel receive")
		}
	case *ast.AssignStmt:
		s.assign(n, loopDepth)
	case *ast.CallExpr:
		s.call(n, loopDepth)
		return
	case *ast.SelectorExpr:
		s.funcRef(n, n.Pos())
		return
	case *ast.Ident:
		s.identRef(n)
		return
	}
	// Generic descent for everything not fully handled above.
	children(n, func(c ast.Node) { s.walk(c, loopDepth) })
}

// fact appends a siteFact unless a //lint:allow for the given analyzer
// covers the site — accepted direct costs must not taint callers.
// Hot-path facts inside a panic(...) argument are dropped: the crash
// path is cold by definition.
func (s *nodeScan) fact(facts []siteFact, analyzer string, pos token.Pos, what string) []siteFact {
	if analyzer == "hotpath" && s.cold > 0 {
		return facts
	}
	position := s.prog.fset.Position(pos)
	probe := Finding{Analyzer: analyzer, File: position.Filename, Line: position.Line}
	if suppressedBy(probe, s.prog.sups[s.node.pkg.Path], s.prog.ranges) {
		return facts
	}
	return append(facts, siteFact{pos: pos, what: what})
}

// child registers a function literal as its own node and charges it to
// the parent through a sync (or async, for go-spawned) edge.
func (s *nodeScan) child(lit *ast.FuncLit, async bool) {
	s.litSeq++
	id := FuncID(fmt.Sprintf("%s$lit%d", s.node.id, s.litSeq))
	node := &funcNode{
		id:   id,
		pkg:  s.node.pkg,
		disp: fmt.Sprintf("%s$%d", s.node.disp, s.litSeq),
		pos:  lit.Pos(),
		body: lit.Body,
	}
	s.prog.nodes[id] = node
	s.prog.lits[lit] = id
	s.addEdge(id, lit.Pos(), async)
	s.prog.scanNode(node)
}

// spawn handles `go f(...)`: async edge to the callee, normal walk of the
// arguments (they evaluate synchronously in the spawner).
func (s *nodeScan) spawn(call *ast.CallExpr, loopDepth int) {
	// A `go` statement allocates its goroutine: a hot-path shape.
	s.node.hotFacts = s.fact(s.node.hotFacts, "hotpath", call.Pos(), "spawns a goroutine")
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		s.child(lit, true)
	} else {
		for _, callee := range s.resolve(call.Fun) {
			s.addEdge(callee, call.Pos(), true)
		}
		s.walkCalleeOperand(call.Fun, loopDepth)
	}
	for _, a := range call.Args {
		s.walk(a, loopDepth)
	}
}

// selectStmt records blocking unless the select carries a default clause,
// in which case its comm operations are non-blocking by construction.
func (s *nodeScan) selectStmt(sel *ast.SelectStmt, loopDepth int) {
	hasDefault := false
	for _, cl := range sel.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		s.node.blockFacts = s.fact(s.node.blockFacts, "lockdiscipline", sel.Pos(), "select without default")
	} else {
		if s.nonComm == nil {
			s.nonComm = make(map[ast.Node]bool)
		}
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
				s.nonComm[cc.Comm] = true
				if es, ok := cc.Comm.(*ast.ExprStmt); ok {
					s.nonComm[es.X] = true
				}
				if as, ok := cc.Comm.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
					s.nonComm[as.Rhs[0]] = true
				}
			}
		}
	}
	children(sel, func(c ast.Node) { s.walk(c, loopDepth) })
}

// rangeStmt records hot/blocking shapes of the range itself, then walks
// the body one loop level deeper.
func (s *nodeScan) rangeStmt(rng *ast.RangeStmt, loopDepth int) {
	if tv, ok := s.info.Types[rng.X]; ok && tv.Type != nil {
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			s.node.hotFacts = s.fact(s.node.hotFacts, "hotpath", rng.Pos(), "map iteration")
		case *types.Chan:
			s.node.blockFacts = s.fact(s.node.blockFacts, "lockdiscipline", rng.Pos(), "range over channel")
		}
	}
	s.walk(rng.Key, loopDepth)
	s.walk(rng.Value, loopDepth)
	s.walk(rng.X, loopDepth)
	s.walkStmtList(rng.Body.List, loopDepth+1)
}

// assign records the growing-append hot shape: `x = append(x, ...)` inside
// a loop where x outlives the loop body (lexically: any loop at all — per-
// iteration slices are declared inside and filtered by position below).
func (s *nodeScan) assign(as *ast.AssignStmt, loopDepth int) {
	if loopDepth == 0 {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || i >= len(as.Lhs) {
			continue
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			continue
		}
		if b, isBuiltin := s.info.Uses[fn].(*types.Builtin); !isBuiltin || b.Name() != "append" {
			continue
		}
		lhs, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		if target, ok := call.Args[0].(*ast.Ident); !ok || target.Name != lhs.Name {
			continue
		}
		if obj := s.info.Uses[lhs]; obj != nil && s.capMade[obj] {
			continue // appends into author-sized capacity: amortized
		}
		s.node.hotFacts = s.fact(s.node.hotFacts, "hotpath", as.Pos(), "append grows "+lhs.Name+" inside a loop")
	}
}

// call handles one call expression: conversions (hot boxing shape), edge
// resolution, per-callee facts, then the operands.
func (s *nodeScan) call(call *ast.CallExpr, loopDepth int) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := s.info.Uses[id].(*types.Builtin); isB && b.Name() == "panic" {
			// panic arguments execute only on the crash path: walk them
			// (clock/blocking facts still count) but keep hot-path
			// shapes from tainting.
			s.cold++
			for _, a := range call.Args {
				s.walk(a, loopDepth)
			}
			s.cold--
			return
		}
	}
	if tv, ok := s.info.Types[call.Fun]; ok && tv.IsType() {
		// A conversion, not a call. Converting to an interface boxes.
		if loopDepth > 0 {
			if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
				s.node.hotFacts = s.fact(s.node.hotFacts, "hotpath", call.Pos(), "interface conversion (boxes its operand)")
			}
		}
		for _, a := range call.Args {
			s.walk(a, loopDepth)
		}
		return
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		s.child(lit, false)
	} else {
		s.directCallFacts(call)
		for _, callee := range s.resolve(call.Fun) {
			s.addEdge(callee, call.Pos(), false)
		}
		s.walkCalleeOperand(call.Fun, loopDepth)
	}
	for _, a := range call.Args {
		s.walk(a, loopDepth)
	}
}

// directCallFacts classifies stdlib and rpc-client calls the graph cannot
// see into: forbidden clock/rand reads, blocking sync waits, hot fmt.
func (s *nodeScan) directCallFacts(call *ast.CallExpr) {
	if path, name, ok := pkgFuncCallee(s.info, call); ok {
		full := path + "." + name
		if why, bad := forbiddenCalls[full]; bad {
			s.node.clockFacts = s.fact(s.node.clockFacts, "determinism", call.Pos(), fmt.Sprintf("%s.%s (%s)", pkgBase(path), name, why))
		}
		if full == "time.Sleep" {
			s.node.blockFacts = s.fact(s.node.blockFacts, "lockdiscipline", call.Pos(), "time.Sleep")
		}
		if path == "fmt" && name != "Errorf" {
			// fmt boxes every operand and allocates its output;
			// fmt.Errorf is exempt as error-path construction, which
			// this codebase keeps off hot paths by convention.
			s.node.hotFacts = s.fact(s.node.hotFacts, "hotpath", call.Pos(), "fmt."+name)
		}
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection := s.info.Selections[sel]
	if selection == nil {
		return
	}
	recv := selection.Recv()
	switch sel.Sel.Name {
	case "Wait":
		// sync.WaitGroup.Wait blocks until the group drains.
		// sync.Cond.Wait is deliberately NOT a blocking fact: it
		// releases the very mutex the caller holds, which is the one
		// sanctioned way to sleep with a lock "held".
		if isSyncType(recv, "WaitGroup") {
			s.node.blockFacts = s.fact(s.node.blockFacts, "lockdiscipline", call.Pos(), "sync.WaitGroup.Wait")
		}
	default:
	}
	if isRPCClient(recv, s.prog.cfg.rpcClientPath()) {
		s.node.blockFacts = s.fact(s.node.blockFacts, "lockdiscipline", call.Pos(), "rpc client call")
	}
}

// walkCalleeOperand walks the receiver part of a call's Fun (which may
// itself contain calls) without re-registering the resolved callee as a
// bare function reference.
func (s *nodeScan) walkCalleeOperand(fun ast.Expr, loopDepth int) {
	if sel, ok := ast.Unparen(fun).(*ast.SelectorExpr); ok {
		s.walk(sel.X, loopDepth)
	}
}

// identRef records a conservative may-call edge for a function named as a
// value (assigned, passed, stored).
func (s *nodeScan) identRef(id *ast.Ident) {
	fn, ok := s.info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	s.addEdge(FuncID(fn.FullName()), id.Pos(), false)
}

// funcRef records method-value and qualified-function references.
func (s *nodeScan) funcRef(sel *ast.SelectorExpr, pos token.Pos) {
	for _, callee := range s.resolve(sel) {
		s.addEdge(callee, pos, false)
	}
	s.walk(sel.X, 0)
}

// addEdge appends one call edge, stamping the current cold depth.
func (s *nodeScan) addEdge(callee FuncID, pos token.Pos, async bool) {
	s.node.edges = append(s.node.edges, edge{callee: callee, pos: pos, async: async, cold: s.cold > 0})
}

// resolve maps a callee expression to zero or more FuncIDs. Sealed
// module interfaces devirtualize to every implementation; everything
// unresolvable (func values, open interfaces, builtins) returns nil.
func (s *nodeScan) resolve(fun ast.Expr) []FuncID {
	switch fun := ast.Unparen(fun).(type) {
	case *ast.Ident:
		if fn, ok := s.info.Uses[fun].(*types.Func); ok {
			return []FuncID{FuncID(fn.FullName())}
		}
	case *ast.SelectorExpr:
		if selection := s.info.Selections[fun]; selection != nil {
			if fn, ok := selection.Obj().(*types.Func); ok {
				recv := selection.Recv()
				if ptr, isPtr := recv.(*types.Pointer); isPtr {
					recv = ptr.Elem()
				}
				if named, isNamed := recv.(*types.Named); isNamed {
					if iface, isIface := named.Underlying().(*types.Interface); isIface {
						return s.devirtualize(named, iface, fun.Sel.Name)
					}
				}
				if _, isIface := recv.Underlying().(*types.Interface); isIface {
					return nil // unnamed/open interface: boundary
				}
				return []FuncID{FuncID(fn.FullName())}
			}
			return nil
		}
		if fn, ok := s.info.Uses[fun.Sel].(*types.Func); ok {
			return []FuncID{FuncID(fn.FullName())}
		}
	}
	return nil
}

// devirtualize resolves a method call through a module-declared sealed
// interface to the same concrete method every implementing type declares
// — the closed-sum knowledge the exhaustive analyzer already relies on.
// Open interfaces return no edges (a declared analysis boundary).
func (s *nodeScan) devirtualize(named *types.Named, iface *types.Interface, method string) []FuncID {
	obj := named.Obj()
	if obj.Pkg() == nil || !s.prog.cfg.inModule(obj.Pkg().Path()) || !isSealed(iface) {
		return nil
	}
	scopes := []*types.Scope{obj.Pkg().Scope()}
	if s.node.pkg.Types != nil && s.node.pkg.Types != obj.Pkg() {
		scopes = append(scopes, s.node.pkg.Types.Scope())
	}
	var out []FuncID
	seen := make(map[FuncID]bool)
	for _, scope := range scopes {
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.Identical(t, named) {
				continue
			}
			if _, isIface := t.Underlying().(*types.Interface); isIface {
				continue
			}
			if !types.Implements(t, iface) && !types.Implements(types.NewPointer(t), iface) {
				continue
			}
			ms := types.NewMethodSet(types.NewPointer(t))
			for i := 0; i < ms.Len(); i++ {
				m := ms.At(i).Obj()
				if m.Name() != method {
					continue
				}
				if fn, isFn := m.(*types.Func); isFn {
					id := FuncID(fn.FullName())
					if !seen[id] {
						seen[id] = true
						out = append(out, id)
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// isSyncType reports whether t is the named sync package type (possibly
// behind a pointer).
func isSyncType(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// propagate computes one taint table: dist-0 entries for every node with
// a direct fact, then Bellman-Ford sweeps over sorted IDs until stable.
// withAsync controls whether `go`-spawn edges conduct the taint;
// skipCold stops it at panic-argument edges (the hot-path table only).
func (p *Program) propagate(facts func(*funcNode) []siteFact, withAsync, skipCold bool) map[FuncID]*witness {
	taint := make(map[FuncID]*witness)
	for _, id := range p.ids {
		n := p.nodes[id]
		if fs := facts(n); len(fs) > 0 {
			first := fs[0]
			for _, f := range fs[1:] {
				if f.pos < first.pos {
					first = f
				}
			}
			taint[id] = &witness{dist: 0, what: first.what, site: first.pos}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, id := range p.ids {
			n := p.nodes[id]
			cur := taint[id]
			if cur != nil && cur.dist == 0 {
				continue
			}
			for _, e := range n.edges {
				if (e.async && !withAsync) || (e.cold && skipCold) {
					continue
				}
				ct := taint[e.callee]
				if ct == nil {
					continue
				}
				cand := ct.dist + 1
				if cur == nil || cand < cur.dist {
					cur = &witness{dist: cand, what: ct.what, site: e.pos, via: e.callee}
					taint[id] = cur
					changed = true
				}
			}
		}
	}
	return taint
}

// Chain renders the witness path from id down to the terminal fact:
// "disp (file:line) -> ... -> terminal". The dist ordering guarantees
// termination even through recursion cycles.
func (p *Program) chain(taint map[FuncID]*witness, id FuncID) []string {
	var out []string
	for cur := id; ; {
		w := taint[cur]
		n := p.nodes[cur]
		if w == nil || n == nil {
			break
		}
		pos := p.fset.Position(w.site)
		out = append(out, fmt.Sprintf("%s (%s:%d)", n.disp, baseName(pos.Filename), pos.Line))
		if w.via == "" {
			out = append(out, w.what)
			break
		}
		cur = w.via
	}
	return out
}

// chainFrom renders a witness chain that starts at the caller's specific
// call site (one explicit edge) and continues with the callee's own
// minimal chain — per-edge reporting with a shared tail.
func (p *Program) chainFrom(taint map[FuncID]*witness, caller *funcNode, e edge) []string {
	pos := p.fset.Position(e.pos)
	out := []string{fmt.Sprintf("%s (%s:%d)", caller.disp, baseName(pos.Filename), pos.Line)}
	return append(out, p.chain(taint, e.callee)...)
}

func baseName(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// computeAcquireSets runs the set-union fixpoint for transitive mutex
// acquisition: acq(f) = direct(f) ∪ acq(g) for every synchronous callee g.
func (p *Program) computeAcquireSets() {
	p.acqSets = make(map[FuncID]map[lockKey]bool)
	for _, id := range p.ids {
		set := make(map[lockKey]bool)
		for _, a := range p.nodes[id].acquires {
			set[a.key] = true
		}
		p.acqSets[id] = set
	}
	for changed := true; changed; {
		changed = false
		for _, id := range p.ids {
			set := p.acqSets[id]
			for _, e := range p.nodes[id].edges {
				if e.async {
					continue
				}
				callee := p.acqSets[e.callee]
				for _, k := range sortedLockKeys(callee) {
					if !set[k] {
						set[k] = true
						changed = true
					}
				}
			}
		}
	}
}

func sortedLockKeys(set map[lockKey]bool) []lockKey {
	keys := make([]lockKey, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// buildLockGraph derives the global acquisition-order edges: inside every
// held region, direct acquisitions and transitive acquisitions through
// synchronous calls of other classes become src->dst arcs.
func (p *Program) buildLockGraph() {
	for _, id := range p.ids {
		n := p.nodes[id]
		for _, r := range n.regions {
			for _, a := range n.acquires {
				if a.key != r.key && a.pos > r.start && a.pos < r.end {
					p.lockEdges = append(p.lockEdges, lockEdge{src: r.key, dst: a.key, pos: a.pos, pkgPath: n.pkg.Path})
				}
			}
			for _, e := range n.edges {
				if e.async || e.pos <= r.start || e.pos >= r.end {
					continue
				}
				for _, k := range sortedLockKeys(p.acqSets[e.callee]) {
					if k != r.key {
						p.lockEdges = append(p.lockEdges, lockEdge{src: r.key, dst: k, pos: e.pos, pkgPath: n.pkg.Path, via: e.callee})
					}
				}
			}
		}
	}
	sort.Slice(p.lockEdges, func(i, j int) bool {
		a, b := p.lockEdges[i], p.lockEdges[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.pos < b.pos
	})
}

// findLockCycles condenses the lock graph into strongly-connected
// components; any component with two or more classes is a potential
// deadlock. Same-class self-edges are excluded: nested acquisition of two
// *instances* of one class is instance-order dependent, which a class-
// level graph cannot decide.
func (p *Program) findLockCycles() {
	adj := make(map[lockKey]map[lockKey]bool)
	nodes := make(map[lockKey]bool)
	for _, e := range p.lockEdges {
		nodes[e.src], nodes[e.dst] = true, true
		if e.src == e.dst {
			continue
		}
		if adj[e.src] == nil {
			adj[e.src] = make(map[lockKey]bool)
		}
		adj[e.src][e.dst] = true
	}
	keys := sortedLockKeys(nodes)
	// Kosaraju over the sorted key universe: forward order, then reverse
	// graph assignment — deterministic and iteration-order free.
	var order []lockKey
	visited := make(map[lockKey]bool)
	var dfs1 func(k lockKey)
	dfs1 = func(k lockKey) {
		visited[k] = true
		for _, nxt := range sortedLockKeys(adj[k]) {
			if !visited[nxt] {
				dfs1(nxt)
			}
		}
		order = append(order, k)
	}
	for _, k := range keys {
		if !visited[k] {
			dfs1(k)
		}
	}
	radj := make(map[lockKey]map[lockKey]bool)
	for _, e := range p.lockEdges {
		if e.src == e.dst {
			continue
		}
		if radj[e.dst] == nil {
			radj[e.dst] = make(map[lockKey]bool)
		}
		radj[e.dst][e.src] = true
	}
	comp := make(map[lockKey]int)
	for k := range nodes {
		comp[k] = -1
	}
	ncomp := 0
	var dfs2 func(k lockKey, c int)
	dfs2 = func(k lockKey, c int) {
		comp[k] = c
		for _, nxt := range sortedLockKeys(radj[k]) {
			if comp[nxt] == -1 {
				dfs2(nxt, c)
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		if comp[order[i]] == -1 {
			dfs2(order[i], ncomp)
			ncomp++
		}
	}
	members := make([][]lockKey, ncomp)
	for _, k := range keys {
		members[comp[k]] = append(members[comp[k]], k)
	}
	for _, m := range members {
		if len(m) < 2 {
			continue
		}
		sort.Slice(m, func(i, j int) bool { return m[i] < m[j] })
		cyc := lockCycle{keys: m}
		in := make(map[lockKey]bool)
		for _, k := range m {
			in[k] = true
		}
		for _, e := range p.lockEdges {
			if e.src != e.dst && in[e.src] && in[e.dst] {
				cyc.edges = append(cyc.edges, e)
			}
		}
		p.cycles = append(p.cycles, cyc)
	}
	sort.Slice(p.cycles, func(i, j int) bool { return p.cycles[i].keys[0] < p.cycles[j].keys[0] })
}

// collectLockRegions finds every classified Lock/RLock in the node's body
// with its held region — Lock to first matching Unlock, or to the body
// end when the Unlock is deferred or missing.
func (p *Program) collectLockRegions(n *funcNode) ([]acquire, []region) {
	info := n.pkg.Info
	type op struct {
		key      lockKey
		recv     string
		name     string
		pos, end token.Pos
		deferred bool
	}
	var ops []op
	add := func(call *ast.CallExpr, deferred bool) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		name := sel.Sel.Name
		switch name {
		case "Lock", "Unlock", "RLock", "RUnlock":
		default:
			return
		}
		selection := info.Selections[sel]
		if selection == nil || !isSyncMutex(selection.Recv()) {
			return
		}
		key := p.lockKeyFor(n, sel.X)
		ops = append(ops, op{key: key, recv: renderExpr(p.fset, sel.X), name: name, pos: call.Pos(), end: call.End(), deferred: deferred})
	}
	walkShallow(n.body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.DeferStmt:
			add(x.Call, true)
			return false
		case *ast.CallExpr:
			add(x, false)
		}
		return true
	})
	var acqs []acquire
	var regs []region
	for _, o := range ops {
		if o.name != "Lock" && o.name != "RLock" {
			continue
		}
		acqs = append(acqs, acquire{key: o.key, pos: o.pos})
		want := unlockName(o.name)
		end := n.body.End()
		for _, u := range ops {
			if u.name == want && u.key == o.key && u.recv == o.recv && !u.deferred &&
				u.pos > o.pos && u.pos < end {
				end = u.pos
			}
		}
		regs = append(regs, region{key: o.key, recv: o.recv, start: o.end, end: end, read: o.name == "RLock"})
	}
	return acqs, regs
}

// lockKeyFor classifies a mutex expression: field mutexes by their owning
// named type, package-level variables by package, locals by function.
func (p *Program) lockKeyFor(n *funcNode, x ast.Expr) lockKey {
	info := n.pkg.Info
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		if selection := info.Selections[x]; selection != nil {
			recv := selection.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
				return lockKey(named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + x.Sel.Name)
			}
		}
		if obj, ok := info.Uses[x.Sel].(*types.Var); ok && obj.Pkg() != nil {
			return lockKey(obj.Pkg().Path() + "." + obj.Name())
		}
	case *ast.Ident:
		if obj, ok := info.Uses[x].(*types.Var); ok {
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return lockKey(obj.Pkg().Path() + "." + obj.Name())
			}
			return lockKey(n.pkg.Path + "." + string(n.id) + "." + obj.Name())
		}
	}
	return lockKey(n.pkg.Path + "." + renderExpr(p.fset, x))
}

// shortKey compacts a lock class for messages.
func (p *Program) shortKey(k lockKey) string {
	return p.shorten(string(k))
}

// nodesOf returns the package's node IDs in sorted order.
func (p *Program) nodesOf(pkg *Package) []FuncID {
	var out []FuncID
	for _, id := range p.ids {
		if p.nodes[id].pkg == pkg {
			out = append(out, id)
		}
	}
	return out
}

// calleeByExpr resolves a call expression to its module callees from a
// given package's type info — the hook interprocedural analyzers use at
// report time. Function literals resolve through the literal-node table.
func (p *Program) calleesOf(pkg *Package, node *funcNode, call *ast.CallExpr) []FuncID {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if id, ok := p.lits[lit]; ok {
			return []FuncID{id}
		}
		return nil
	}
	s := &nodeScan{prog: p, node: node, info: pkg.Info}
	return s.resolve(call.Fun)
}

// nodeEnclosing returns the node whose body lexically contains pos —
// used by analyzers that walk their own AST but need graph context.
func (p *Program) nodeEnclosing(pkg *Package, pos token.Pos) *funcNode {
	var best *funcNode
	for _, id := range p.nodesOf(pkg) {
		n := p.nodes[id]
		if n.body != nil && n.body.Pos() <= pos && pos <= n.body.End() {
			if best == nil || (best.body.Pos() <= n.body.Pos() && n.body.End() <= best.body.End()) {
				best = n
			}
		}
	}
	return best
}

// children calls fn for every direct child node of n, in source order.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}
