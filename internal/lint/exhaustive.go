package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive enforces full coverage of the project's closed sums, the
// partial-coverage class of bug that silently drops a new recovery action
// or fault kind on the floor:
//
//   - a switch whose tag is a module-declared iota enum (integer constants
//     numbered contiguously from zero, e.g. chaos.FaultKind, shuffle.Mode,
//     engine.ColType, core.FailureKind) must cover every member or carry a
//     default;
//   - a type switch over a module-declared sealed interface (one with an
//     unexported method, e.g. core.Action's isAction) must cover every
//     implementing type declared in the interface's package, or carry a
//     default.
//
// Sentinel count members (named num*, e.g. numFaultKinds) are not real
// members and are ignored. An intentional no-op for some members is
// written as an explicit `case X, Y: // why` arm, which both covers the
// members and documents the decision — exactly what a silent omission
// does not.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over module const-enums and sealed interfaces must cover every member or carry default",
	Run:  runExhaustive,
}

func runExhaustive(p *Pass) {
	if !p.Cfg.inModule(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				checkEnumSwitch(p, n)
			case *ast.TypeSwitchStmt:
				checkTypeSwitch(p, n)
			}
			return true
		})
	}
}

// enumMembers returns the constant members of a candidate enum type: the
// package-scope constants of exactly that type, minus sentinel counters.
// The result is nil unless the constants look like an iota enum —
// at least two distinct values, numbered contiguously from zero — which
// keeps unit-style constant families (sim.Second, …) out of scope.
func enumMembers(named *types.Named) map[string][]string {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	members := make(map[string][]string) // exact constant value -> names
	var values []int64
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if strings.HasPrefix(name, "num") || name == "_" {
			continue
		}
		key := c.Val().ExactString()
		if _, seen := members[key]; !seen {
			if v, exact := constIntValue(c); exact {
				values = append(values, v)
			} else {
				return nil // non-integer constants: not an iota enum
			}
		}
		members[key] = append(members[key], name)
	}
	if len(values) < 2 {
		return nil
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for i, v := range values {
		if v != int64(i) {
			return nil
		}
	}
	return members
}

func constIntValue(c *types.Const) (int64, bool) {
	if c.Val() == nil {
		return 0, false
	}
	if basic, ok := c.Type().Underlying().(*types.Basic); !ok || basic.Info()&types.IsInteger == 0 {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(c.Val()))
}

// checkEnumSwitch verifies value-switch coverage over module iota enums.
func checkEnumSwitch(p *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	info := p.Pkg.Info
	tv, ok := info.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || !p.Cfg.inModule(named.Obj().Pkg().Path()) {
		return
	}
	members := enumMembers(named)
	if members == nil {
		return
	}
	covered := make(map[string]bool)
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			if etv, ok := info.Types[e]; ok && etv.Value != nil {
				covered[etv.Value.ExactString()] = true
			}
		}
	}
	if hasDefault {
		return
	}
	var missing []string
	for key, names := range members {
		if !covered[key] {
			missing = append(missing, names[0])
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	p.Reportf(sw.Pos(), "switch over %s misses %s; add explicit cases (a commented no-op arm is fine) or a default",
		named.Obj().Name(), strings.Join(missing, ", "))
}

// checkTypeSwitch verifies type-switch coverage over module sealed
// interfaces.
func checkTypeSwitch(p *Pass, sw *ast.TypeSwitchStmt) {
	info := p.Pkg.Info
	var x ast.Expr
	switch assign := sw.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := assign.X.(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	case *ast.AssignStmt:
		if len(assign.Rhs) == 1 {
			if ta, ok := assign.Rhs[0].(*ast.TypeAssertExpr); ok {
				x = ta.X
			}
		}
	}
	if x == nil {
		return
	}
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || !p.Cfg.inModule(named.Obj().Pkg().Path()) {
		return
	}
	iface, ok := named.Underlying().(*types.Interface)
	if !ok || !isSealed(iface) {
		return
	}
	members := interfaceMembers(p, named, iface)
	if len(members) == 0 {
		return
	}
	covered := make(map[*types.TypeName]bool)
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			etv, ok := info.Types[e]
			if !ok || !etv.IsType() {
				continue // case nil
			}
			t := etv.Type
			if ptr, isPtr := t.(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			if n, isNamed := t.(*types.Named); isNamed {
				covered[n.Obj()] = true
			}
		}
	}
	if hasDefault {
		return
	}
	var missing []string
	for _, m := range members {
		if !covered[m] {
			missing = append(missing, m.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	p.Reportf(sw.Pos(), "type switch over %s misses %s; add explicit cases (a commented no-op arm is fine) or a default",
		named.Obj().Name(), strings.Join(missing, ", "))
}

// isSealed reports whether the interface has an unexported method — the
// project's closed-sum marker (e.g. isAction).
func isSealed(iface *types.Interface) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		if !iface.Method(i).Exported() {
			return true
		}
	}
	return false
}

// interfaceMembers lists the named types implementing the sealed interface
// that are declared in the interface's own package (plus the analyzed
// package, when it adds local implementations). Export data only exposes
// exported names for imported packages; the project's sealed sums are
// exported types, so the catalogue is complete in practice.
func interfaceMembers(p *Pass, named *types.Named, iface *types.Interface) []*types.TypeName {
	scopes := []*types.Scope{named.Obj().Pkg().Scope()}
	if p.Pkg.Types != nil && p.Pkg.Types != named.Obj().Pkg() {
		scopes = append(scopes, p.Pkg.Types.Scope())
	}
	var out []*types.TypeName
	seen := make(map[*types.TypeName]bool)
	for _, scope := range scopes {
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.Identical(t, named) {
				continue
			}
			if _, isIface := t.Underlying().(*types.Interface); isIface {
				continue
			}
			if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
				if !seen[tn] {
					seen[tn] = true
					out = append(out, tn)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
