package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// BatchParity guards the columnar data plane's correctness story: every
// exported batch kernel in internal/engine must be pinned to its row
// counterpart by an equivalence test. A kernel is an exported package-level
// function that takes a *Batch and returns a *Batch (or []*Batch), plus
// the Hash*Batch* in-place hashing kernels; it must be referenced from a
// test function in the same package whose name marks it as an equivalence
// check (Test*Equivalence, Test*Matches*, or Test*Parity*). A batch kernel
// without that anchor can silently drift from the row semantics the whole
// engine is validated against.
var BatchParity = &Analyzer{
	Name: "batchparity",
	Doc:  "every exported *Batch kernel in internal/engine needs a row-equivalence test",
	Run:  runBatchParity,
}

var equivalenceTestName = regexp.MustCompile(`^Test\w*(Equivalence|Matches|Parity)`)

func runBatchParity(p *Pass) {
	if p.Pkg.Path != p.Cfg.Module+"/internal/engine" {
		return
	}
	kernels := batchKernels(p)
	if len(kernels) == 0 {
		return
	}
	refs := equivalenceRefs(p.Pkg.TestFiles)
	var names []string
	for name := range kernels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !refs[name] {
			p.Reportf(kernels[name].Pos(), "batch kernel %s has no row-equivalence test; reference it from a Test*Equivalence/Matches/Parity function in this package", name)
		}
	}
}

// batchKernels finds the exported kernel functions of the package.
func batchKernels(p *Pass) map[string]*ast.FuncDecl {
	out := make(map[string]*ast.FuncDecl)
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !fd.Name.IsExported() {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			if !hasBatchParam(sig) {
				continue
			}
			if returnsBatch(sig) || strings.HasPrefix(fd.Name.Name, "Hash") {
				out[fd.Name.Name] = fd
			}
		}
	}
	return out
}

func isBatchPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Batch"
}

func hasBatchParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isBatchPtr(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func returnsBatch(sig *types.Signature) bool {
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if isBatchPtr(t) {
			return true
		}
		if sl, ok := t.(*types.Slice); ok && isBatchPtr(sl.Elem()) {
			return true
		}
	}
	return false
}

// equivalenceRefs collects every identifier referenced inside equivalence
// test functions (syntax-only scan over the package's test files).
func equivalenceRefs(testFiles []*ast.File) map[string]bool {
	refs := make(map[string]bool)
	for _, f := range testFiles {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !equivalenceTestName.MatchString(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					refs[id.Name] = true
				}
				return true
			})
		}
	}
	return refs
}
