package lint

import (
	"encoding/json"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The golden tests load the fixture module under testdata/src/lintest with
// the real loader (go list + export data + go/types), run the analyzers,
// and diff the findings against `want` directives embedded in the fixture
// sources:
//
//	code() // want <analyzer> "<message substring>"
//
// A `want+N`/`want-N` form anchors the expectation N lines away from the
// directive, for findings that land on comment lines (e.g. a bare
// //lint:allow, which cannot share its line with another comment).

var testdataDir = filepath.Join("testdata", "src", "lintest")

var (
	goldenOnce sync.Once
	goldenPkgs []*Package
	goldenFset *token.FileSet
	goldenErr  error
)

func loadGolden(t *testing.T) ([]*Package, *token.FileSet) {
	t.Helper()
	goldenOnce.Do(func() {
		goldenPkgs, goldenFset, goldenErr = Load(testdataDir, "./...")
	})
	if goldenErr != nil {
		t.Fatalf("load testdata module: %v", goldenErr)
	}
	return goldenPkgs, goldenFset
}

// goldenConfig is the fixture-module policy: the rpc mirror keeps its
// wall-clock exemption and skipme proves the per-package escape hatch.
func goldenConfig() *Config {
	return &Config{
		Module: "lintest",
		Skip: map[string][]string{
			"lintest/internal/rpc":    {"determinism"},
			"lintest/internal/skipme": {"determinism"},
		},
	}
}

type expectation struct {
	file     string // base name
	line     int
	analyzer string
	substr   string
}

var wantRe = regexp.MustCompile(`want([+-]\d+)?\s+(\w+)\s+"([^"]*)"`)

func collectWants(t *testing.T) []expectation {
	t.Helper()
	var wants []expectation
	err := filepath.Walk(testdataDir, func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			if !strings.Contains(line, "//") {
				continue // a want directive only counts inside a comment
			}
			comment := line[strings.Index(line, "//"):]
			for _, m := range wantRe.FindAllStringSubmatch(comment, -1) {
				offset := 0
				if m[1] != "" {
					offset, _ = strconv.Atoi(m[1])
				}
				wants = append(wants, expectation{
					file:     filepath.Base(path),
					line:     i + 1 + offset,
					analyzer: m[2],
					substr:   m[3],
				})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scan wants: %v", err)
	}
	if len(wants) == 0 {
		t.Fatal("no want directives found in testdata")
	}
	return wants
}

// TestGoldenFindings is the end-to-end check for all five analyzers plus
// the suppression machinery: every finding must be wanted, every want must
// be found.
func TestGoldenFindings(t *testing.T) {
	pkgs, fset := loadGolden(t)
	findings := Run(fset, pkgs, goldenConfig(), All())
	wants := collectWants(t)

	matched := make([]bool, len(wants))
	for _, f := range findings {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != filepath.Base(f.File) || w.line != f.Line ||
				w.analyzer != f.Analyzer || !strings.Contains(f.Message, w.substr) {
				continue
			}
			matched[i] = true
			ok = true
			break
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing finding: %s:%d [%s] ~ %q", w.file, w.line, w.analyzer, w.substr)
		}
	}
}

// TestPerPackageConfig proves Config.Skip filters a package's findings and
// nothing else.
func TestPerPackageConfig(t *testing.T) {
	pkgs, fset := loadGolden(t)
	var skipme []*Package
	for _, p := range pkgs {
		if p.Path == "lintest/internal/skipme" {
			skipme = append(skipme, p)
		}
	}
	if len(skipme) != 1 {
		t.Fatalf("fixture package lintest/internal/skipme not loaded (got %d)", len(skipme))
	}

	unskipped := Run(fset, skipme, &Config{Module: "lintest"}, All())
	if len(unskipped) != 1 || unskipped[0].Analyzer != "determinism" {
		t.Fatalf("without Skip want exactly one determinism finding, got %v", unskipped)
	}
	if got := Run(fset, skipme, goldenConfig(), All()); len(got) != 0 {
		t.Fatalf("Skip config left findings behind: %v", got)
	}
}

// TestAnalyzerSubset covers swiftvet's -analyzers path: a single analyzer
// reports only its own findings.
func TestAnalyzerSubset(t *testing.T) {
	pkgs, fset := loadGolden(t)
	sub, err := ByName("exhaustive")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(fset, pkgs, goldenConfig(), sub)
	if len(findings) == 0 {
		t.Fatal("exhaustive found nothing in the fixture module")
	}
	for _, f := range findings {
		if f.Analyzer != "exhaustive" && f.Analyzer != "lint" {
			t.Errorf("analyzer subset leaked a %s finding: %s", f.Analyzer, f)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown analyzer name accepted")
	}
}

// TestSwiftvetCommand runs the real driver over the fixture module: seeded
// violations must produce exit status 1 and a parseable -json stream.
func TestSwiftvetCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the swiftvet binary")
	}
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "swiftvet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/swiftvet")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build swiftvet: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-json", "./...")
	cmd.Dir = testdataDir
	out, runErr := cmd.Output()
	exit, ok := runErr.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit status 1 on seeded violations, got err=%v output=%s", runErr, out)
	}
	if code := exit.ExitCode(); code != 1 {
		t.Fatalf("want exit status 1, got %d (stderr: %s)", code, exit.Stderr)
	}
	var findings []Finding
	if err := json.Unmarshal(out, &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if len(findings) == 0 {
		t.Fatal("-json reported no findings for a module full of seeded violations")
	}
	for _, f := range findings {
		if f.Analyzer == "" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("incomplete JSON finding: %+v", f)
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "determinism", File: "x.go", Line: 3, Col: 7, Message: "m"}
	if got, want := f.String(), "x.go:3:7: [determinism] m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestConfigForModule(t *testing.T) {
	cfg := ConfigForModule("lintest")
	if !cfg.skipped("lintest/internal/rpc", "determinism") {
		t.Error("rpc determinism exemption missing")
	}
	if cfg.skipped("lintest/internal/rpc", "errdiscipline") {
		t.Error("rpc must stay in scope for errdiscipline")
	}
	if !cfg.internalPath("lintest/internal/core") {
		t.Error("internal package not recognised")
	}
	if cfg.internalPath("lintest/cmd/tool") || cfg.internalPath("other/internal/x") {
		t.Error("internalPath scope too wide")
	}
}
