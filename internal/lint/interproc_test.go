package lint

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Tests for the interprocedural layer's supporting machinery: byte-stable
// finding order, the -changed reverse-dependency closure, the -why and
// -changed driver paths, and the self-check that keeps this package clean
// under its own analyzers.

// TestSortFindingsStable is the regression test for the ordering bug where
// two analyzers reporting on the same line came back in load order: the
// sort key must extend past (file, line, col) through analyzer and message
// so any permutation of the input renders identically.
func TestSortFindingsStable(t *testing.T) {
	mk := func(analyzer, msg string) Finding {
		return Finding{Analyzer: analyzer, File: "x.go", Line: 3, Col: 7, Message: msg}
	}
	a := mk("determinism", "channel send inside map iteration")
	b := mk("lockdiscipline", "channel send while b.mu is held")
	c := mk("determinism", "another finding on the same position")

	render := func(fs []Finding) string {
		sortFindings(fs)
		var sb strings.Builder
		for _, f := range fs {
			sb.WriteString(f.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	first := render([]Finding{a, b, c})
	second := render([]Finding{b, c, a})
	third := render([]Finding{c, a, b})
	if first != second || second != third {
		t.Errorf("finding order depends on input order:\n%s---\n%s---\n%s", first, second, third)
	}
	lines := strings.Split(strings.TrimSpace(first), "\n")
	if len(lines) != 3 || !strings.Contains(lines[0], "another finding") ||
		!strings.Contains(lines[1], "map iteration") || !strings.Contains(lines[2], "lockdiscipline") {
		t.Errorf("wrong stable order:\n%s", first)
	}
}

// TestAffected covers the -changed closure and its staleness fallbacks
// against a synthetic package graph (Deps mirrors go list's transitive
// dependency list).
func TestAffected(t *testing.T) {
	pkgs := []*Package{
		{Path: "m/a", Dir: "/tmp/affected/a"},
		{Path: "m/b", Dir: "/tmp/affected/b", Deps: []string{"m/a"}},
		{Path: "m/c", Dir: "/tmp/affected/c", Deps: []string{"m/a", "m/b"}},
		{Path: "m/d", Dir: "/tmp/affected/d"},
	}

	only, stale := Affected(pkgs, []string{"/tmp/affected/a/x.go"})
	if stale != "" {
		t.Fatalf("unexpected staleness: %s", stale)
	}
	for _, want := range []string{"m/a", "m/b", "m/c"} {
		if !only[want] {
			t.Errorf("closure missing %s (got %v)", want, only)
		}
	}
	if only["m/d"] {
		t.Error("m/d does not depend on m/a but landed in the closure")
	}

	if _, stale := Affected(pkgs, []string{"go.mod"}); stale == "" {
		t.Error("a changed go.mod must force the full-tree fallback")
	}
	if _, stale := Affected(pkgs, []string{"/tmp/elsewhere/x.go"}); stale == "" {
		t.Error("a .go file outside every loaded package must force the full-tree fallback")
	}
	only, stale = Affected(pkgs, []string{"README.md", "docs/notes.txt"})
	if stale != "" || len(only) != 0 {
		t.Errorf("non-Go files should affect nothing: only=%v stale=%q", only, stale)
	}
}

// buildSwiftvet compiles the driver for the exec tests; the go build cache
// makes repeat builds nearly free.
func buildSwiftvet(t *testing.T) string {
	t.Helper()
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "swiftvet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/swiftvet")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build swiftvet: %v\n%s", err, out)
	}
	return bin
}

// TestSwiftvetWhy runs the driver with -why over the fixture module and
// checks that a transitive determinism finding carries its full call-chain
// witness: tab-indented frames from the reported call site down to the
// terminal wall-clock fact.
func TestSwiftvetWhy(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the swiftvet binary")
	}
	bin := buildSwiftvet(t)
	cmd := exec.Command(bin, "-why", "./...")
	cmd.Dir = testdataDir
	out, runErr := cmd.Output()
	if exit, ok := runErr.(*exec.ExitError); !ok || exit.ExitCode() != 1 {
		t.Fatalf("want exit status 1, got err=%v output=%s", runErr, out)
	}
	var frames []string
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "\t") {
			frames = append(frames, strings.TrimPrefix(line, "\t"))
		}
	}
	if len(frames) == 0 {
		t.Fatalf("-why printed no witness frames:\n%s", out)
	}
	joined := strings.Join(frames, "\n")
	if !strings.Contains(joined, "timeutil.Stamp") {
		t.Errorf("witness frames never pass through timeutil.Stamp:\n%s", joined)
	}
	if !strings.Contains(joined, "reads the wall clock") {
		t.Errorf("witness frames never reach the terminal wall-clock fact:\n%s", joined)
	}
}

// TestSwiftvetChanged smoke-tests the incremental driver path: a changed
// fixture file narrows reporting to its package plus reverse dependencies,
// and a changed go.mod falls back to the full tree.
func TestSwiftvetChanged(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the swiftvet binary")
	}
	bin := buildSwiftvet(t)

	cmd := exec.Command(bin, "-changed", filepath.Join("internal", "det", "det.go"))
	cmd.Dir = testdataDir
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, runErr := cmd.Output()
	if exit, ok := runErr.(*exec.ExitError); !ok || exit.ExitCode() != 1 {
		t.Fatalf("want exit status 1 (det.go has seeded findings), got err=%v output=%s stderr=%s",
			runErr, out, stderr.String())
	}
	if !strings.Contains(stderr.String(), "analyzing") || strings.Contains(stderr.String(), "full tree") {
		t.Errorf("expected a narrowed-run notice on stderr, got: %s", stderr.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line == "" || strings.HasPrefix(line, "\t") {
			continue
		}
		// Reporting narrows to the changed package (all its files) plus
		// reverse dependencies; det is a leaf, so only det/ may appear.
		if !strings.Contains(line, string(filepath.Separator)+"det"+string(filepath.Separator)) {
			t.Errorf("-changed det.go reported a finding outside its closure: %s", line)
		}
	}

	cmd = exec.Command(bin, "-changed", "go.mod")
	cmd.Dir = testdataDir
	stderr.Reset()
	cmd.Stderr = &stderr
	if _, runErr = cmd.Output(); runErr == nil {
		t.Fatal("full-tree fallback over the fixture module should still exit 1")
	}
	if !strings.Contains(stderr.String(), "full tree") {
		t.Errorf("expected the stale-fallback notice on stderr, got: %s", stderr.String())
	}
}

// TestSelfCheck holds this repository — most importantly this package —
// to its own analyzers: the whole module is loaded (the summaries need
// the full graph) and every package must come back clean.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repository")
	}
	pkgs, fset, err := Load(filepath.Join("..", ".."), "./...")
	if err != nil {
		t.Fatalf("load repository: %v", err)
	}
	findings := Run(fset, pkgs, DefaultConfig(), All())
	for _, f := range findings {
		t.Errorf("repository is not self-clean: %s", f)
	}
}
