package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// This file holds the interprocedural rules built on the Program view
// from callgraph.go: the transitive half of determinism, the transitive
// half of lockdiscipline's held-region rule, and the two whole-program
// analyzers lockorder and hotpath.

// detScoped reports whether path is held to the determinism contract:
// module-internal and not configured out of it (the rpc layer).
func (c *Config) detScoped(path string) bool {
	return c.internalPath(path) && !c.skipped(path, "determinism")
}

// runDeterminismTransitive flags calls from determinism-scoped code into
// out-of-scope module functions that transitively read the wall clock or
// the global rand source — the laundering the per-package check cannot
// see. Calls to determinism-scoped callees are deliberately not flagged:
// the callee's own package gets the finding (direct or transitive), and
// fixing it there fixes every caller at once.
func runDeterminismTransitive(p *Pass) {
	if p.Prog == nil {
		return
	}
	for _, id := range p.Prog.nodesOf(p.Pkg) {
		n := p.Prog.nodes[id]
		for _, e := range n.edges {
			callee := p.Prog.nodes[e.callee]
			if callee == nil || p.Cfg.detScoped(callee.pkg.Path) {
				continue
			}
			w := p.Prog.clockTaint[e.callee]
			if w == nil {
				continue
			}
			why := p.Prog.chainFrom(p.Prog.clockTaint, n, e)
			p.reportWhy(e.pos, why,
				"call to %s transitively %s; thread a seeded *rand.Rand or sim.Time instead (run swiftvet -why for the call chain)",
				callee.disp, taintVerb(w.what))
		}
	}
}

// taintVerb compresses a terminal fact description into the transitive
// message: "time.Now (reads the wall clock)" -> "reads the wall clock".
func taintVerb(what string) string {
	if i := strings.IndexByte(what, '('); i >= 0 && strings.HasSuffix(what, ")") {
		return strings.TrimSuffix(what[i+1:], ")")
	}
	return "reaches " + what
}

// LockOrder reports cycles in the global lock-acquisition graph. An edge
// A->B means some function acquired a class-B mutex (directly or through
// its callees) while a class-A mutex was held; a strongly-connected
// component with two or more classes means two executions can acquire the
// same pair in opposite orders — a potential deadlock. Self-edges
// (nested acquisition of one class) are out of scope: whether they
// deadlock depends on instance identity, which a class-level graph cannot
// decide.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "report cycles in the global mutex acquisition-order graph as potential deadlocks",
	Run:  runLockOrder,
}

func runLockOrder(p *Pass) {
	if p.Prog == nil || !p.Cfg.inModule(p.Pkg.Path) {
		return
	}
	for _, cyc := range p.Prog.cycles {
		why := make([]string, 0, len(cyc.edges))
		for _, e := range cyc.edges {
			pos := p.Fset.Position(e.pos)
			why = append(why, fmt.Sprintf("%s -> %s (%s:%d)",
				p.Prog.shortKey(e.src), p.Prog.shortKey(e.dst), baseName(pos.Filename), pos.Line))
		}
		for _, e := range cyc.edges {
			if e.pkgPath != p.Pkg.Path {
				continue
			}
			suffix := ""
			if e.via != "" {
				if callee := p.Prog.nodes[e.via]; callee != nil {
					suffix = fmt.Sprintf(" via call to %s", callee.disp)
				}
			}
			p.reportWhy(e.pos, why,
				"acquiring %s while %s is held closes a lock-order cycle {%s}%s; pick one global acquisition order",
				p.Prog.shortKey(e.dst), p.Prog.shortKey(e.src), joinKeys(p.Prog, cyc.keys), suffix)
		}
	}
}

func joinKeys(prog *Program, keys []lockKey) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = prog.shortKey(k)
	}
	return strings.Join(parts, ", ")
}

// Hotpath machine-enforces the allocation budgets of functions tagged
//
//	//lint:hotpath
//
// in their doc comment: neither the tagged function nor anything it
// transitively calls (through the module call graph, goroutine spawns
// included) may use fmt (except fmt.Errorf — error construction is cold
// by convention), iterate a map, grow a slice with `x = append(x, ...)`
// inside a loop, box a value through an in-loop interface conversion, or
// spawn a goroutine. A true-but-accepted cost is silenced at its site
// with //lint:allow hotpath <reason>, which also stops it from tainting
// callers.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "//lint:hotpath functions must not transitively allocate: no fmt, map iteration, growing append, boxing, or goroutine spawn",
	Run:  runHotpath,
}

func runHotpath(p *Pass) {
	if p.Prog == nil || !p.Cfg.inModule(p.Pkg.Path) {
		return
	}
	for _, id := range p.Prog.nodesOf(p.Pkg) {
		n := p.Prog.nodes[id]
		if !n.hot {
			continue
		}
		for _, f := range n.hotFacts {
			p.Reportf(f.pos, "hot path: %s in //lint:hotpath function %s", f.what, n.disp)
		}
		for _, e := range n.edges {
			if e.cold {
				continue // panic-argument calls run only on the crash path
			}
			callee := p.Prog.nodes[e.callee]
			if callee == nil || callee.hot {
				// A tagged callee reports (or has allowed) its own costs.
				continue
			}
			w := p.Prog.hotTaint[e.callee]
			if w == nil {
				continue
			}
			why := p.Prog.chainFrom(p.Prog.hotTaint, n, e)
			p.reportWhy(e.pos, why,
				"hot path: call from //lint:hotpath function %s transitively reaches %s (run swiftvet -why for the call chain)",
				n.disp, w.what)
		}
	}
}

// checkHeldRegionTransitive extends lockdiscipline's held-region rule
// through the call graph: a call made while a mutex is held must not
// reach a may-block operation (channel op, select without default,
// WaitGroup.Wait, time.Sleep, rpc client call) through any chain of
// synchronous calls. The rpc package is exempt — serialising calls on
// its connection mutex is its documented design.
func checkHeldRegionTransitive(p *Pass, lock mutexOp, call *ast.CallExpr) {
	if p.Prog == nil || p.Pkg.Path == p.Cfg.rpcClientPath() {
		return
	}
	node := p.Prog.nodeEnclosing(p.Pkg, call.Pos())
	if node == nil {
		return
	}
	for _, callee := range p.Prog.calleesOf(p.Pkg, node, call) {
		calleeNode := p.Prog.nodes[callee]
		w := p.Prog.blockTaint[callee]
		if calleeNode == nil || w == nil {
			continue
		}
		why := p.Prog.chainFrom(p.Prog.blockTaint, node, edge{callee: callee, pos: call.Pos()})
		p.reportWhy(call.Pos(), why,
			"call to %s while %s is held transitively reaches %s; release the mutex first (run swiftvet -why for the call chain)",
			calleeNode.disp, lock.recv, w.what)
	}
}
