package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	Dir          string
	ImportPath   string
	Name         string
	Standard     bool
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Deps         []string
	Module       *struct {
		Path string
		Main bool
	}
	Error *struct{ Err string }
}

// Package is one loaded module package: production sources fully
// type-checked against the compiler's export data, test sources parsed for
// syntax-level analyzers (batchparity's reference scan).
type Package struct {
	Path      string
	Dir       string
	Module    string
	Deps      []string    // import paths of the transitive dependency closure
	Files     []*ast.File // production sources, type-checked
	TestFiles []*ast.File // *_test.go sources, parsed only
	Types     *types.Package
	Info      *types.Info
}

// newInfo allocates the types.Info maps every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// Load resolves patterns with the go tool and returns the matched main-
// module packages, parsed and type-checked. It needs no machinery beyond
// the standard library: `go list -deps -export` names an export-data file
// for every dependency (compiling what is stale), and the stock gc
// importer reads those files back, so full types.Info is available even
// though go.mod stays dependency-free.
func Load(dir string, patterns ...string) ([]*Package, *token.FileSet, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, append([]string{"-deps", "-export"}, patterns...))
	if err != nil {
		return nil, nil, err
	}
	exports := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	// -deps mixes targets with their dependency closure; a second plain
	// list yields exactly the packages the patterns name.
	targets, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, lp := range targets {
		if lp.Standard || lp.Module == nil || !lp.Module.Main {
			continue
		}
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg := &Package{Path: lp.ImportPath, Dir: lp.Dir, Module: lp.Module.Path, Deps: lp.Deps}
		for _, name := range lp.GoFiles {
			af, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, nil, err
			}
			pkg.Files = append(pkg.Files, af)
		}
		for _, name := range append(append([]string{}, lp.TestGoFiles...), lp.XTestGoFiles...) {
			af, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, nil, err
			}
			pkg.TestFiles = append(pkg.TestFiles, af)
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		pkg.Info = newInfo()
		pkg.Types, _ = conf.Check(lp.ImportPath, fset, pkg.Files, pkg.Info)
		if len(typeErrs) > 0 {
			return nil, nil, fmt.Errorf("type-check %s: %v", lp.ImportPath, typeErrs[0])
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, fset, nil
}

// goList runs `go list -json args...` in dir and decodes the JSON stream.
func goList(dir string, args []string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go list: %s", msg)
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}
