package lint

import (
	"path/filepath"
	"strings"
)

// Affected implements swiftvet -changed: given the loaded package set and
// a list of changed file paths (typically `git diff --name-only`), it
// returns the import paths whose findings must be recomputed — the
// changed packages plus their transitive reverse-dependency closure.
//
// The whole program is still loaded and summarised (an interprocedural
// analysis cannot skip the graph), but reporting narrows to the affected
// packages, which is where the analyzers spend their time.
//
// The second result is a non-empty staleness reason when the file list
// cannot be mapped onto the loaded graph — a changed go.mod/go.sum
// (dependency shape changed under us) or a .go file belonging to no
// loaded package (new package, deleted package, or a list from another
// tree). Callers must fall back to a full-tree run in that case.
func Affected(pkgs []*Package, files []string) (map[string]bool, string) {
	byDir := make(map[string]*Package)
	for _, p := range pkgs {
		byDir[filepath.Clean(p.Dir)] = p
	}
	changed := make(map[string]bool)
	for _, f := range files {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		base := filepath.Base(f)
		if base == "go.mod" || base == "go.sum" {
			return nil, base + " changed: dependency graph may be stale"
		}
		if !strings.HasSuffix(f, ".go") {
			continue
		}
		abs, err := filepath.Abs(f)
		if err != nil {
			return nil, "cannot resolve " + f
		}
		pkg, ok := byDir[filepath.Clean(filepath.Dir(abs))]
		if !ok {
			return nil, f + " belongs to no loaded package: call graph is stale"
		}
		changed[pkg.Path] = true
	}
	only := make(map[string]bool)
	for _, p := range pkgs {
		if changed[p.Path] {
			only[p.Path] = true
			continue
		}
		for _, dep := range p.Deps {
			if changed[dep] {
				only[p.Path] = true
				break
			}
		}
	}
	return only, ""
}
