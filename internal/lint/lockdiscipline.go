package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// LockDiscipline enforces two rules over sync.Mutex / sync.RWMutex usage
// in module packages:
//
//  1. a Lock/RLock call must have a matching Unlock/RUnlock (direct or
//     deferred) on the same receiver expression in the same function —
//     cross-function lock helpers hide the critical section from both
//     humans and this analyzer;
//  2. while a mutex is held, the function must not perform a channel send
//     or call into the rpc client — both can block indefinitely (a full
//     channel, a dead peer behind retries), turning a mutex into a
//     system-wide stall. The rpc package itself is exempt from the client
//     half of rule 2: serialising calls on the connection mutex is its
//     documented design.
//
// The held region is computed syntactically: from the Lock statement to
// the first matching Unlock in source order, or to the end of the function
// when the Unlock is deferred. Nested function literals are skipped —
// their execution time is not the lock holder's.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "Lock must pair with a same-function Unlock; no channel sends or rpc calls while a mutex is held",
	Run:  runLockDiscipline,
}

// mutexOp is one Lock/Unlock-family call inside a function.
type mutexOp struct {
	call     *ast.CallExpr
	recv     string // rendered receiver expression, e.g. "e.mu"
	name     string // Lock, Unlock, RLock, RUnlock
	deferred bool
}

func runLockDiscipline(p *Pass) {
	if !p.Cfg.inModule(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		funcBodies(f, func(body *ast.BlockStmt) {
			checkLockFunc(p, body)
		})
	}
}

// unlockName maps an acquire to its release.
func unlockName(lock string) string {
	if lock == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

func checkLockFunc(p *Pass, body *ast.BlockStmt) {
	ops := collectMutexOps(p, body)
	if len(ops) == 0 {
		return
	}
	for _, lock := range ops {
		if lock.name != "Lock" && lock.name != "RLock" {
			continue
		}
		want := unlockName(lock.name)
		// Rule 1: some matching unlock must exist in this function.
		var directUnlock *mutexOp
		hasDeferred := false
		for i := range ops {
			u := &ops[i]
			if u.name != want || u.recv != lock.recv {
				continue
			}
			if u.deferred {
				hasDeferred = true
			} else if u.call.Pos() > lock.call.Pos() && (directUnlock == nil || u.call.Pos() < directUnlock.call.Pos()) {
				directUnlock = u
			}
		}
		if directUnlock == nil && !hasDeferred {
			p.Reportf(lock.call.Pos(), "%s.%s() without a matching %s in this function; release the mutex where it is taken", lock.recv, lock.name, want)
			continue
		}
		// Rule 2: scan the held region for blocking operations.
		start := lock.call.End()
		end := body.End()
		if directUnlock != nil {
			end = directUnlock.call.Pos()
		}
		checkHeldRegion(p, body, lock, start, end)
	}
}

// collectMutexOps finds every sync mutex Lock/Unlock-family call directly
// in the function body (not in nested literals).
func collectMutexOps(p *Pass, body *ast.BlockStmt) []mutexOp {
	info := p.Pkg.Info
	var ops []mutexOp
	add := func(call *ast.CallExpr, deferred bool) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		name := sel.Sel.Name
		switch name {
		case "Lock", "Unlock", "RLock", "RUnlock":
		default:
			return
		}
		selection := info.Selections[sel]
		if selection == nil || !isSyncMutex(selection.Recv()) {
			return
		}
		ops = append(ops, mutexOp{call: call, recv: renderExpr(p.Fset, sel.X), name: name, deferred: deferred})
	}
	walkShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			add(n.Call, true)
			return false
		case *ast.CallExpr:
			add(n, false)
		}
		return true
	})
	return ops
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncMutex(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkHeldRegion flags blocking operations between start and end.
func checkHeldRegion(p *Pass, body *ast.BlockStmt, lock mutexOp, start, end token.Pos) {
	info := p.Pkg.Info
	walkShallow(body, func(n ast.Node) bool {
		if n == nil || n.Pos() < start || n.Pos() >= end {
			// Still descend: a block spanning the region boundary
			// contains nodes inside it.
			return true
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			p.Reportf(n.Pos(), "channel send while %s is held can block every other holder; release the mutex first", lock.recv)
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if s := info.Selections[sel]; s != nil && isRPCClient(s.Recv(), p.Cfg.rpcClientPath()) && p.Pkg.Path != p.Cfg.rpcClientPath() {
					p.Reportf(n.Pos(), "rpc client call while %s is held can stall on the network for the full retry budget; release the mutex first", lock.recv)
					// The direct rule covered this call; the transitive
					// rule would only restate it.
					return true
				}
			}
			checkHeldRegionTransitive(p, lock, n)
		}
		return true
	})
}

// rpcClientPath is the module's rpc package, whose Client blocks on the
// network (dial, retries) and so is forbidden under a held mutex elsewhere.
func (c *Config) rpcClientPath() string {
	if c == nil || c.Module == "" {
		return "swift/internal/rpc"
	}
	return c.Module + "/internal/rpc"
}

// isRPCClient reports whether t is the rpc package's Client.
func isRPCClient(t types.Type, rpcClientPath string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == rpcClientPath && obj.Name() == "Client"
}

// renderExpr prints an expression as source text (receiver identity key).
func renderExpr(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}
