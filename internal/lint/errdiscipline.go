package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDiscipline flags call statements in non-test internal packages whose
// error result vanishes — `conn.SetDeadline(...)` as a bare statement is
// the canonical offender: the deadline silently never takes effect and the
// call it was meant to bound hangs forever.
//
// Only expression statements are flagged. An explicit `_ =` discard is a
// visible, greppable decision; a bare statement is not. A short list of
// callees whose error is structurally impossible is exempt: in-memory
// writers (bytes.Buffer, strings.Builder) that return error only to
// satisfy io interfaces, and fmt printing into those writers or stdout.
var ErrDiscipline = &Analyzer{
	Name: "errdiscipline",
	Doc:  "no silently discarded error returns in non-test internal packages",
	Run:  runErrDiscipline,
}

// infallible lists callee prefixes whose returned error cannot be non-nil.
var infallible = []string{
	"(*bytes.Buffer).",
	"(*strings.Builder).",
	"fmt.Print",   // stdout: best-effort CLI output
	"fmt.Println", // (Print/Printf/Println share the prefix "fmt.Print")
}

func runErrDiscipline(p *Pass) {
	if !p.Cfg.internalPath(p.Pkg.Path) {
		return
	}
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(info, call) {
				return true
			}
			name := calleeName(info, call)
			if name == "" || isInfallible(info, call, name) {
				return true
			}
			p.Reportf(call.Pos(), "result of %s includes an error that is silently discarded; handle it or assign to _ with a comment", name)
			return true
		})
	}
}

// returnsError reports whether the call's results include the error type.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	isErr := func(t types.Type) bool {
		named, ok := t.(*types.Named)
		return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErr(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErr(t)
	}
}

// calleeName renders the callee as a stable, qualified name: method calls
// as "(*pkg.Type).Method", package functions as "pkg.Func". Unresolvable
// callees (function-valued expressions) return "".
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f.FullName()
			}
			return ""
		}
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return obj.FullName()
		}
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			return obj.FullName()
		}
	}
	return ""
}

// isInfallible applies the exempt-callee list, plus the special case of
// fmt.Fprint* whose destination is an in-memory writer.
func isInfallible(info *types.Info, call *ast.CallExpr, name string) bool {
	for _, pre := range infallible {
		if strings.HasPrefix(name, pre) {
			return true
		}
	}
	if strings.HasPrefix(name, "fmt.Fprint") && len(call.Args) > 0 {
		if tv, ok := info.Types[call.Args[0]]; ok && tv.Type != nil {
			s := tv.Type.String()
			if s == "*bytes.Buffer" || s == "*strings.Builder" {
				return true
			}
		}
	}
	return false
}
