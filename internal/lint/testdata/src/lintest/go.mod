module lintest

go 1.22
