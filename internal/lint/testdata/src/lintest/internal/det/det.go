// Package det seeds determinism violations and their sanctioned
// counterparts for the golden tests.
package det

import (
	"math/rand"
	"sort"
	"time"
)

func clock() time.Time {
	return time.Now() // want determinism "reads the wall clock"
}

func draw() int {
	return rand.Intn(6) // want determinism "draws from the global rand source"
}

// seeded draws are the sanctioned idiom: only the process-global source is
// forbidden.
func seeded(rng *rand.Rand) int {
	return rng.Intn(6)
}

func emit(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want determinism "channel send inside map iteration"
	}
}

func collectUnsorted(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want determinism "append to out inside map iteration"
	}
	return out
}

// collectSorted is the sanctioned collect-then-sort shape.
func collectSorted(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// collectHelperSorted sorts through a local helper whose name says so.
func collectHelperSorted(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sortInts(out)
	return out
}

func sortInts(xs []int) { sort.Ints(xs) }

// perIteration appends to a slice scoped inside the loop: harmless.
func perIteration(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// chanCollect drains a worker pool in completion order: the slice bakes in
// goroutine scheduling.
func chanCollect(ch chan int) []int {
	var out []int
	for v := range ch {
		out = append(out, v) // want determinism "leaks goroutine completion order"
	}
	return out
}

// chanCollectSorted is the sanctioned collect-then-sort shape for channels.
func chanCollectSorted(ch chan int) []int {
	var out []int
	for v := range ch {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// chanMergeIndexed is the worker-pool merge idiom: each result carries its
// input slot, so the merged slice is independent of completion order.
func chanMergeIndexed(ch chan struct{ I, V int }, n int) []int {
	res := make([]int, n)
	for s := range ch {
		res[s.I] = s.V
	}
	return res
}

// chanPerIteration appends to a slice scoped inside the loop: harmless.
func chanPerIteration(ch chan int) int {
	n := 0
	for v := range ch {
		var local []int
		local = append(local, v)
		n += len(local)
	}
	return n
}

func pickAny(m map[string]int) int {
	var won int
	for _, v := range m { // want determinism "selects an arbitrary element"
		won = v
		break
	}
	return won
}

// suppressed shows the reason-ful escape hatch: no finding survives.
func suppressed() time.Time {
	//lint:allow determinism fixture: proves a reasoned allow silences the line below
	return time.Now()
}

// want+3 lint "missing its mandatory reason"
// want+3 determinism "reads the wall clock"
func bareAllow() time.Time {
	//lint:allow determinism
	return time.Now()
}

// multiLineAllowed proves an allow on a multi-line statement's first line
// covers findings on its continuation lines: both time.Since calls sit
// below the statement's first line and are still silenced.
func multiLineAllowed(base time.Time) []time.Duration {
	//lint:allow determinism fixture: allow on the first statement line covers the whole statement
	out := []time.Duration{
		time.Since(base),
		time.Since(base.Add(1)),
	}
	return out
}
