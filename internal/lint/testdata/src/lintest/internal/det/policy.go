package det

import "sort"

// These fixtures pin the scheduling-policy-boundary idioms: a policy's
// inputs arrive as per-tenant maps, and its outputs (grant orders, victim
// picks) must not leak Go's randomised map order. The sanctioned shapes
// mirror internal/sched — collect into a slice, then impose a total order;
// pick winners by full iteration with a deterministic tie-break.

type tenantShare struct {
	name    string
	running int
}

// grantOrder is the sanctioned policy shape: collect every tenant from the
// map, then sort by (running, name) into a total deterministic order.
func grantOrder(usage map[string]int) []tenantShare {
	var order []tenantShare
	for name, running := range usage {
		order = append(order, tenantShare{name: name, running: running})
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].running != order[j].running {
			return order[i].running > order[j].running
		}
		return order[i].name < order[j].name
	})
	return order
}

// grantOrderUnsorted leaks map order straight into the grant stream.
func grantOrderUnsorted(usage map[string]int) []tenantShare {
	var order []tenantShare
	for name, running := range usage {
		order = append(order, tenantShare{name: name, running: running}) // want determinism "append to order inside map iteration"
	}
	return order
}

// victimPick is the sanctioned winner-selection shape: iterate the whole
// map and break ties by name, so the pick is a pure function of the map's
// contents.
func victimPick(usage map[string]int) string {
	victim, worst := "", -1
	for name, running := range usage {
		if running > worst || (running == worst && name < victim) {
			victim, worst = name, running
		}
	}
	return victim
}

// victimPickFirst grabs whichever tenant Go's map order happens to yield
// first.
func victimPickFirst(usage map[string]int) string {
	var victim string
	for name := range usage { // want determinism "selects an arbitrary element"
		victim = name
		break
	}
	return victim
}
