// Package engine mirrors the real engine's batch-kernel surface for the
// batchparity golden tests.
package engine

// Batch is a miniature of the real columnar batch.
type Batch struct {
	Ints []int64
}

// FilterBatch is anchored by TestFilterBatchEquivalence: clean.
func FilterBatch(b *Batch) *Batch { return b }

// MapBatch has no equivalence test.
func MapBatch(b *Batch) *Batch { return b } // want batchparity "MapBatch has no row-equivalence test"

// HashBatch is an in-place kernel (Hash prefix) anchored by
// TestHashBatchMatchesRows: clean.
func HashBatch(b *Batch, out []uint64) {
	_ = b
	_ = out
}

// SumBatch consumes a batch but returns a scalar: not a kernel.
func SumBatch(b *Batch) int64 {
	_ = b
	return 0
}
