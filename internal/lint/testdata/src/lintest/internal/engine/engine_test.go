package engine

import "testing"

func TestFilterBatchEquivalence(t *testing.T) {
	if FilterBatch(&Batch{Ints: []int64{1}}) == nil {
		t.Fatal("nil batch")
	}
}

func TestHashBatchMatchesRows(t *testing.T) {
	HashBatch(&Batch{}, nil)
}
