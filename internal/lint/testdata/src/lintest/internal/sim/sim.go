// Package sim mirrors the deterministic simulator core for the
// cross-package transitive-determinism golden tests: every clock read
// reachable from here — even through the out-of-scope timeutil layer or
// a spawned goroutine — must be flagged at the laundering call site.
package sim

import "lintest/timeutil"

// Tick reads the clock through one out-of-scope frame.
func Tick() int64 {
	return timeutil.Stamp() // want determinism "transitively reads the wall clock"
}

// TickIndirect reads it through two frames; -why prints the full chain.
func TickIndirect() int64 {
	return timeutil.Indirect() // want determinism "transitively reads the wall clock"
}

// Spawn launders the read through a goroutine: async edges still carry
// clock taint (a spawned wall-clock read breaks replay all the same).
func Spawn(out chan<- int64) {
	go func() { out <- timeutil.Stamp() }() // want determinism "transitively reads the wall clock"
}

// FuncValue proves conservative function-value tracking: a reference to
// Stamp counts as an eventual call even though nothing invokes it here.
func FuncValue() func() int64 {
	return timeutil.Stamp // want determinism "transitively reads the wall clock"
}

// Scale stays clean: Pure carries no taint.
func Scale(x int64) int64 {
	return timeutil.Pure(x)
}

// stampHelper is determinism-scoped and owns the finding for its own
// laundering call.
func stampHelper() int64 {
	return timeutil.Stamp() // want determinism "transitively reads the wall clock"
}

// NoCascade stays clean: its callee is in scope and owns the finding, so
// fixing stampHelper fixes every caller at once instead of fanning one
// root cause out over the whole tree.
func NoCascade() int64 {
	return stampHelper()
}
