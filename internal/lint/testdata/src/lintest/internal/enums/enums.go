// Package enums seeds exhaustiveness violations over iota enums and sealed
// interface sums for the golden tests.
package enums

// Color is a contiguous iota enum: in scope for exhaustive.
type Color int

// Color members; numColors is a sentinel counter, not a member.
const (
	Red Color = iota
	Green
	Blue
	numColors
)

var _ = numColors

func name(c Color) string {
	switch c { // want exhaustive "misses Blue"
	case Red:
		return "red"
	case Green:
		return "green"
	}
	return "?"
}

// defaulted opts out with a default arm: clean.
func defaulted(c Color) string {
	switch c {
	case Red:
		return "red"
	default:
		return "other"
	}
}

// commented covers the remaining members with an explicit no-op arm: clean.
func commented(c Color) string {
	switch c {
	case Red:
		return "red"
	case Green, Blue:
		// cool colours share a rendering path in this fixture
	}
	return "?"
}

// Weight is a unit family (values not contiguous from zero), out of scope.
type Weight int

// Weight units.
const (
	Light Weight = 1
	Heavy Weight = 10
)

func heavy(w Weight) bool {
	switch w {
	case Heavy:
		return true
	}
	return false
}

// Node is a sealed sum: the unexported marker method closes it.
type Node interface{ isNode() }

// Leaf is a Node.
type Leaf struct{}

// Fork is a Node.
type Fork struct{}

// Root is a Node through its pointer type.
type Root struct{}

func (Leaf) isNode()  {}
func (Fork) isNode()  {}
func (*Root) isNode() {}

func describe(n Node) string {
	switch n.(type) { // want exhaustive "misses Root"
	case Leaf:
		return "leaf"
	case Fork:
		return "fork"
	}
	return "?"
}

// total covers every member (pointer member via its pointer type): clean.
func total(n Node) string {
	switch n.(type) {
	case Leaf, Fork:
		return "inner"
	case *Root:
		return "root"
	}
	return "?"
}
