// Package hot seeds //lint:hotpath violations and their sanctioned
// counterparts for the hotpath golden tests: a tagged function must not
// — directly or through any chain of calls — use fmt, iterate a map,
// grow a slice in a loop, box through an in-loop interface conversion,
// or spawn a goroutine.
package hot

import "fmt"

// SumBatch is the clean shape: flat loop, no allocation.
//
//lint:hotpath
func SumBatch(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

// Format allocates through fmt on a hot path.
//
//lint:hotpath
func Format(x int64) string {
	return fmt.Sprintf("%d", x) // want hotpath "fmt.Sprintf"
}

// Keys iterates a map on a hot path.
//
//lint:hotpath
func Keys(m map[string]int) int {
	n := 0
	for range m { // want hotpath "map iteration"
		n++
	}
	return n
}

// Grow grows a slice inside its loop.
//
//lint:hotpath
func Grow(xs []int64) []int64 {
	var out []int64
	for _, x := range xs {
		out = append(out, x) // want hotpath "append grows out inside a loop"
	}
	return out
}

// Box converts to an interface inside a loop.
//
//lint:hotpath
func Box(xs []int64) int {
	n := 0
	for _, x := range xs {
		n += use(any(x)) // want hotpath "interface conversion"
	}
	return n
}

func use(v any) int {
	if v == nil {
		return 0
	}
	return 1
}

// Spawn starts a goroutine per call.
//
//lint:hotpath
func Spawn(ch chan int64) {
	go drain(ch) // want hotpath "spawns a goroutine"
}

func drain(ch chan int64) {
	for range ch {
	}
}

// Render reaches fmt through untagged helpers; -why prints the chain.
//
//lint:hotpath
func Render(x int64) string {
	return render1(x) // want hotpath "transitively reaches fmt.Sprintf"
}

func render1(x int64) string { return render2(x) }

func render2(x int64) string {
	return fmt.Sprintf("%d", x)
}

// hashAny mirrors the engine's any-kind fallback lane: the cost is
// accepted and documented at its site, which also stops the taint — an
// accepted cost must not re-surface in every tagged caller.
func hashAny(v any) string {
	//lint:allow hotpath fixture: accepted fallback cost stops taint at its site
	return fmt.Sprintf("%v", v)
}

// Accepted stays clean: its only cost is the allowed one above.
//
//lint:hotpath
func Accepted(v any) string {
	return hashAny(v)
}

// Outer stays clean even though Format is dirty: a tagged callee owns its
// own finding, so the violation is reported exactly once.
//
//lint:hotpath
func Outer(x int64) string {
	return Format(x)
}

// GrowPrealloc stays clean: append into capacity the author sized with a
// three-argument make is amortized O(1), not a growing append.
//
//lint:hotpath
func GrowPrealloc(xs []int64) []int64 {
	out := make([]int64, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// ColdPanic stays clean: a fmt call inside a panic argument runs only on
// the crash path, which is cold by definition.
//
//lint:hotpath
func ColdPanic(x int64) int64 {
	if x < 0 {
		panic(fmt.Sprintf("negative input %d", x))
	}
	return x
}
