// Package rpc mirrors the shape of the real rpc layer: its Client blocks
// on the network, and serialising calls on the connection mutex is its own
// documented design (exempt from the client-call-under-lock rule).
package rpc

import "sync"

// Client is the blocking network client the lockdiscipline analyzer
// forbids calling under a held mutex elsewhere in the module.
type Client struct {
	mu sync.Mutex
}

// Call pretends to do a network round-trip.
func (c *Client) Call(method string) error {
	_ = method
	return nil
}

// CallSerialised holds the connection mutex across the call — the rpc
// package's own design, exempt from rule 2.
func (c *Client) CallSerialised(method string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Call(method)
}
