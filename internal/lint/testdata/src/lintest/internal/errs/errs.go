// Package errs seeds error-discipline violations for the golden tests.
package errs

import (
	"bytes"
	"fmt"
	"os"
)

type conn struct{}

func (c *conn) SetDeadline(n int) error {
	_ = n
	return nil
}

// leak drops the error on the floor: the canonical offender.
func leak(c *conn) {
	c.SetDeadline(1) // want errdiscipline "silently discarded"
}

// handled propagates: clean.
func handled(c *conn) error {
	return c.SetDeadline(2)
}

// visible discards explicitly — a greppable decision: clean.
func visible(c *conn) {
	_ = c.SetDeadline(3) // deadline is advisory in this fixture
}

// buffers exercises the infallible in-memory writer exemptions: clean.
func buffers() string {
	var b bytes.Buffer
	b.WriteString("in-memory writers cannot fail")
	fmt.Fprintf(&b, "%d", 7)
	fmt.Println("stdout is best-effort CLI output")
	return b.String()
}

// fileWrite loses a real write error: fmt.Fprint* to anything that is not
// an in-memory writer stays in scope.
func fileWrite(f *os.File) {
	fmt.Fprintln(f, "x") // want errdiscipline "silently discarded"
}
