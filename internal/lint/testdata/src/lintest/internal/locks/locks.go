// Package locks seeds lock-discipline violations for the golden tests.
package locks

import (
	"sync"

	"lintest/internal/rpc"
)

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// forgotten unlock: rule 1.
func (b *box) leak() {
	b.mu.Lock() // want lockdiscipline "without a matching Unlock"
	b.n++
}

// channel send while held: rule 2.
func (b *box) sendHeld(ch chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ch <- b.n // want lockdiscipline "channel send while b.mu is held"
}

// rpc client call while held: rule 2.
func (b *box) rpcHeld(c *rpc.Client) {
	b.mu.Lock()
	defer b.mu.Unlock()
	_ = c.Call("ping") // want lockdiscipline "rpc client call while b.mu is held"
}

// released before the send: clean.
func (b *box) sendAfter(ch chan int) {
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	ch <- n
}

// rpc call after release: clean.
func (b *box) rpcAfter(c *rpc.Client) error {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	return c.Call("ping")
}

// read lock pairing with RUnlock: clean.
func (b *box) read() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.n
}

// a closure is its own scope: the Lock inside must unlock inside.
func (b *box) closureLeak() func() {
	return func() {
		b.mu.Lock() // want lockdiscipline "without a matching Unlock"
		b.n++
	}
}

// blockHelper parks on the channel: a may-block fact the interprocedural
// rule must see through.
func blockHelper(ch chan int) int {
	return <-ch
}

// transitive blocking while held: rule 2, one frame down.
func (b *box) recvHeldTransitively(ch chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n = blockHelper(ch) // want lockdiscipline "transitively reaches channel receive"
}

// rpcLaundered hides the client call one frame down.
func rpcLaundered(c *rpc.Client) error {
	return c.Call("ping")
}

// laundering the rpc call through a helper must not evade rule 2.
func (b *box) rpcHeldTransitively(c *rpc.Client) {
	b.mu.Lock()
	defer b.mu.Unlock()
	_ = rpcLaundered(c) // want lockdiscipline "transitively reaches rpc client call"
}

// released before the helper parks: clean.
func (b *box) recvAfterHelper(ch chan int) int {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	return blockHelper(ch)
}

// mapSendHeld lands two analyzers on one line — the byte-stable ordering
// regression fixture.
func (b *box) mapSendHeld(m map[string]int, ch chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, v := range m {
		ch <- v // want determinism "channel send inside map iteration" want lockdiscipline "channel send while b.mu is held"
	}
}
