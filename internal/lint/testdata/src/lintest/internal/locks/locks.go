// Package locks seeds lock-discipline violations for the golden tests.
package locks

import (
	"sync"

	"lintest/internal/rpc"
)

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// forgotten unlock: rule 1.
func (b *box) leak() {
	b.mu.Lock() // want lockdiscipline "without a matching Unlock"
	b.n++
}

// channel send while held: rule 2.
func (b *box) sendHeld(ch chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ch <- b.n // want lockdiscipline "channel send while b.mu is held"
}

// rpc client call while held: rule 2.
func (b *box) rpcHeld(c *rpc.Client) {
	b.mu.Lock()
	defer b.mu.Unlock()
	_ = c.Call("ping") // want lockdiscipline "rpc client call while b.mu is held"
}

// released before the send: clean.
func (b *box) sendAfter(ch chan int) {
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	ch <- n
}

// rpc call after release: clean.
func (b *box) rpcAfter(c *rpc.Client) error {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	return c.Call("ping")
}

// read lock pairing with RUnlock: clean.
func (b *box) read() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.n
}

// a closure is its own scope: the Lock inside must unlock inside.
func (b *box) closureLeak() func() {
	return func() {
		b.mu.Lock() // want lockdiscipline "without a matching Unlock"
		b.n++
	}
}
