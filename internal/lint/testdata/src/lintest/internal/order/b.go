package order

import "sync"

// lockB is the helper lockAB launders its B.mu acquisition through.
func lockB(b *B) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// lockBA acquires A.mu directly while B.mu is held: the B.mu -> A.mu half
// of the cycle, in the opposite order to lockAB.
func lockBA(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want lockorder "closes a lock-order cycle"
	a.n++
	a.mu.Unlock()
	b.mu.Unlock()
}

// C and D are always acquired in the same order: no cycle, no finding.
type C struct {
	mu sync.Mutex
	n  int
}

type D struct {
	mu sync.Mutex
	n  int
}

func lockCD(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.n++
	d.mu.Unlock()
	c.mu.Unlock()
}

func lockCDAgain(c *C, d *D) {
	c.mu.Lock()
	lockD(d)
	c.mu.Unlock()
}

func lockD(d *D) {
	d.mu.Lock()
	d.n++
	d.mu.Unlock()
}
