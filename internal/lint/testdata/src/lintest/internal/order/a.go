// Package order seeds a lock-order cycle spanning two files for the
// lockorder golden tests, plus a consistently-ordered pair that must
// stay clean.
package order

import "sync"

// A and B are two mutex classes acquired in opposite orders across the
// two files of this package.
type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

// lockAB acquires B.mu — through a helper in the other file — while A.mu
// is held: the A.mu -> B.mu half of the cycle.
func lockAB(a *A, b *B) {
	a.mu.Lock()
	lockB(b) // want lockorder "closes a lock-order cycle"
	a.mu.Unlock()
}
