// Package skipme breaks determinism on purpose; the golden tests disable
// the analyzer for it via Config.Skip to prove the per-package escape
// hatch filters findings.
package skipme

import "time"

// BootTime would be a determinism finding if the package were in scope.
var BootTime = time.Now()
