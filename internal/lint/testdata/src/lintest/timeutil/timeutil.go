// Package timeutil mirrors an out-of-contract utility layer: it lives
// outside /internal/, so the per-package determinism check ignores it —
// the whole-program transitive check must see through it and charge
// determinism-scoped callers at their call sites.
package timeutil

import "time"

// Stamp reads the wall clock. No finding lands here (the package is out
// of determinism scope); every determinism-scoped caller is flagged.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Indirect launders Stamp through one more frame.
func Indirect() int64 {
	return Stamp() + 1
}

// Pure is clock-free: calls to it resolve in the graph but carry no taint.
func Pure(x int64) int64 {
	return x * 2
}
