package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the replay contract of the simulator/controller
// stack: inside module-internal packages (minus configured exemptions such
// as the rpc layer) production code must not read the wall clock or the
// global math/rand source, and must not let Go's randomised map iteration
// order leak into observable output. Three map-range shapes are flagged:
//
//   - a channel send inside a map range (emission order is random),
//   - an append from a map range into a slice declared outside the loop
//     that is never passed to a sort call later in the same function
//     (collect-then-sort is the sanctioned idiom),
//   - a break out of a map range that has assigned loop-derived values to
//     outer variables (selects an arbitrary element).
//
// Ranging over a channel is checked the same way appends are: results
// arrive in goroutine completion order, so `outer = append(outer, v)`
// inside a channel range bakes scheduling order into the slice. The
// sanctioned worker-pool shapes are the indexed merge — each result
// carries its input slot and the loop writes res[s.i] = s.v, making the
// merged slice independent of completion order — and collect-then-sort.
//
// Seeded *rand.Rand values threaded through call graphs are fine — only
// the process-global source and clock are forbidden.
//
// The transitive half (runDeterminismTransitive, interproc.go) extends
// the direct-call rule through the whole-program call graph: a call from
// determinism-scoped code into an out-of-scope module function that
// transitively reaches the clock or global rand is flagged at the call
// site, with the full chain available via swiftvet -why.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global math/rand, and map/channel-order leaks in deterministic packages",
	Run:  runDeterminism,
}

// forbiddenCalls maps package-level functions to the reason they break
// replay. Keys are "<import path>.<func>".
var forbiddenCalls = map[string]string{
	"time.Now":   "reads the wall clock",
	"time.Since": "reads the wall clock",
	"time.Until": "reads the wall clock",
	"time.Sleep": "blocks on the wall clock",
	"time.After": "schedules on the wall clock",
	"time.Tick":  "schedules on the wall clock",

	"math/rand.Int":         "draws from the global rand source",
	"math/rand.Intn":        "draws from the global rand source",
	"math/rand.Int31":       "draws from the global rand source",
	"math/rand.Int31n":      "draws from the global rand source",
	"math/rand.Int63":       "draws from the global rand source",
	"math/rand.Int63n":      "draws from the global rand source",
	"math/rand.Uint32":      "draws from the global rand source",
	"math/rand.Uint64":      "draws from the global rand source",
	"math/rand.Float32":     "draws from the global rand source",
	"math/rand.Float64":     "draws from the global rand source",
	"math/rand.ExpFloat64":  "draws from the global rand source",
	"math/rand.NormFloat64": "draws from the global rand source",
	"math/rand.Perm":        "draws from the global rand source",
	"math/rand.Shuffle":     "draws from the global rand source",
	"math/rand.Seed":        "mutates the global rand source",
	"math/rand.Read":        "draws from the global rand source",

	"math/rand/v2.Int":         "draws from the global rand source",
	"math/rand/v2.IntN":        "draws from the global rand source",
	"math/rand/v2.Int64":       "draws from the global rand source",
	"math/rand/v2.Int64N":      "draws from the global rand source",
	"math/rand/v2.Uint64":      "draws from the global rand source",
	"math/rand/v2.Float64":     "draws from the global rand source",
	"math/rand/v2.Perm":        "draws from the global rand source",
	"math/rand/v2.Shuffle":     "draws from the global rand source",
	"math/rand/v2.ExpFloat64":  "draws from the global rand source",
	"math/rand/v2.NormFloat64": "draws from the global rand source",
}

func runDeterminism(p *Pass) {
	if !p.Cfg.internalPath(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		// Forbidden calls: anywhere in the file, including package-level
		// variable initialisers.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, name, ok := pkgFuncCallee(p.Pkg.Info, call); ok {
				if why, bad := forbiddenCalls[path+"."+name]; bad {
					p.Reportf(call.Pos(), "%s.%s %s; thread a seeded *rand.Rand or sim.Time instead", pkgBase(path), name, why)
				}
			}
			return true
		})
		// Map-iteration-order leaks: per function scope, so the
		// collect-then-sort check looks at the right statements.
		funcBodies(f, func(body *ast.BlockStmt) {
			walkShallow(body, func(n ast.Node) bool {
				if rng, ok := n.(*ast.RangeStmt); ok {
					checkMapRange(p, body, rng)
					checkChanRange(p, body, rng)
				}
				return true
			})
		})
	}
	// Interprocedural half: calls that launder a clock/rand read through
	// out-of-scope module code (see interproc.go).
	runDeterminismTransitive(p)
}

// pkgFuncCallee resolves a call to a package-level function, returning the
// package import path and function name.
func pkgFuncCallee(info *types.Info, call *ast.CallExpr) (path, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// checkMapRange flags the map-iteration shapes whose output depends on Go's
// randomised map order. fnBody is the enclosing function body (the scope of
// the sorted-later check).
func checkMapRange(p *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	info := p.Pkg.Info
	tv, ok := info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	loopVars := rangeVars(info, rng)
	selection := false
	walkShallow(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// A nested map range gets its own visit; sends/appends in a
			// nested non-map range are still inside this map iteration,
			// so keep descending either way.
			if tv, ok := info.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					return false
				}
			}
		case *ast.SendStmt:
			p.Reportf(n.Pos(), "channel send inside map iteration: emission order follows Go's randomised map order")
		case *ast.AssignStmt:
			checkMapRangeAppend(p, fnBody, rng, n)
			if assignsLoopDerived(info, n, loopVars, rng) {
				selection = true
			}
		}
		return true
	})
	if selection && rangeHasBreak(rng) {
		p.Reportf(rng.Pos(), "break after assigning a map element to an outer variable selects an arbitrary element; iterate fully and pick a deterministic winner")
	}
}

// rangeVars returns the objects of the range statement's key/value vars.
func rangeVars(info *types.Info, rng *ast.RangeStmt) []types.Object {
	var out []types.Object
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				out = append(out, obj)
			} else if obj := info.Uses[id]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// rangeHasBreak reports whether the range body contains a break binding to
// the range loop itself (not to a nested loop, switch, or select).
func rangeHasBreak(rng *ast.RangeStmt) bool {
	found := false
	walkShallow(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			return false
		case *ast.BranchStmt:
			if n.Tok.String() == "break" && n.Label == nil {
				found = true
			}
		}
		return true
	})
	return found
}

// assignsLoopDerived reports whether the assignment writes a value derived
// from the loop variables into a variable declared outside the loop.
func assignsLoopDerived(info *types.Info, as *ast.AssignStmt, loopVars []types.Object, rng *ast.RangeStmt) bool {
	if len(loopVars) == 0 {
		return false
	}
	rhsUsesLoop := false
	for _, rhs := range as.Rhs {
		ast.Inspect(rhs, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				obj := info.Uses[id]
				for _, lv := range loopVars {
					if obj == lv {
						rhsUsesLoop = true
					}
				}
			}
			return true
		})
	}
	if !rhsUsesLoop {
		return false
	}
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := info.Uses[id] // plain assignment to an existing var
		if obj == nil {
			continue
		}
		if obj.Pos() < rng.Pos() || obj.Pos() > rng.End() {
			return true
		}
	}
	return false
}

// checkMapRangeAppend flags `outer = append(outer, ...)` inside a map range
// unless the enclosing function later sorts the slice.
func checkMapRangeAppend(p *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, as *ast.AssignStmt) {
	info := p.Pkg.Info
	for _, obj := range outerAppendTargets(info, rng, as) {
		if sortedAfter(info, fnBody, rng, obj) {
			continue
		}
		p.Reportf(as.Pos(), "append to %s inside map iteration leaks Go's randomised map order; collect then sort, or iterate sorted keys", obj.Name())
	}
}

// checkChanRange flags result collection in completion order: an append to
// an outer slice inside a range over a channel. A worker pool's results
// arrive in whatever order goroutines finish, so the collected slice bakes
// in scheduling. Indexed merges (res[s.i] = s.v) and per-iteration slices
// are untouched; collect-then-sort is sanctioned the same way it is for
// map ranges.
func checkChanRange(p *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	info := p.Pkg.Info
	tv, ok := info.Types[rng.X]
	if !ok {
		return
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return
	}
	walkShallow(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			return false // gets its own visit from the function-body walk
		case *ast.AssignStmt:
			for _, obj := range outerAppendTargets(info, rng, n) {
				if sortedAfter(info, fnBody, rng, obj) {
					continue
				}
				p.Reportf(n.Pos(), "append to %s inside a channel range leaks goroutine completion order; write results by index (res[s.i] = v) or collect then sort", obj.Name())
			}
		}
		return true
	})
}

// outerAppendTargets returns the objects of every `outer = append(outer, ...)`
// in the assignment whose target is declared outside the range loop.
func outerAppendTargets(info *types.Info, rng *ast.RangeStmt, as *ast.AssignStmt) []types.Object {
	var out []types.Object
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			continue
		}
		if b, isBuiltin := info.Uses[fn].(*types.Builtin); !isBuiltin || b.Name() != "append" {
			continue
		}
		target, ok := call.Args[0].(*ast.Ident)
		if !ok || i >= len(as.Lhs) {
			continue
		}
		lhs, ok := as.Lhs[i].(*ast.Ident)
		if !ok || lhs.Name != target.Name {
			continue
		}
		obj := info.Uses[target]
		if obj == nil {
			continue
		}
		// Declared inside the loop: scoped per iteration, harmless.
		if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
			continue
		}
		out = append(out, obj)
	}
	return out
}

// sortedAfter reports whether, after the range loop, the enclosing function
// calls into package sort or slices with the collected variable as an
// argument — the collect-then-sort idiom.
func sortedAfter(info *types.Info, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		if !sortingCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
				return true
			})
		}
		return true
	})
	return found
}

// sortingCall reports whether call is a sort: either a sort/slices package
// function, or a local helper whose name says it sorts (sortRefs and kin).
func sortingCall(info *types.Info, call *ast.CallExpr) bool {
	if path, _, ok := pkgFuncCallee(info, call); ok {
		return path == "sort" || path == "slices"
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		return strings.Contains(strings.ToLower(id.Name), "sort")
	}
	return false
}
