// Package lint is swiftvet's analysis framework: a small go/analysis-style
// harness built on go/parser + go/ast + go/types only (no x/tools), a
// whole-program call-graph/summary engine (callgraph.go), and the seven
// project-specific analyzers that machine-enforce this repo's invariants —
// simulator/controller determinism (direct and transitive), lock
// discipline (including transitive may-block reach under a held mutex),
// global lock-acquisition ordering, hot-path allocation budgets, error
// discipline, enum-switch exhaustiveness, and batch/row kernel parity.
//
// Every reproduction experiment (Figs 3–16, the chaos soak, the invariant
// auditor) is only trustworthy because the deterministic packages replay
// bit-for-bit from a seed; these analyzers keep that property from rotting
// one innocuous PR at a time.
//
// A finding is silenced only by an inline comment
//
//	//lint:allow <analyzer> <reason>
//
// on the offending line, the line above, or the first line of the
// offending multi-line statement. The reason is mandatory; a bare allow
// is itself reported. An allowed direct fact also stops tainting callers
// in the interprocedural analyzers.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Finding is one analyzer hit. Interprocedural findings carry a Why
// chain: the call path from the reported site down to the terminal fact,
// printed by swiftvet -why and included in -json output.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
	Why      []string       `json:"why,omitempty"`
}

// String renders a finding the way go vet does.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one named check over a single package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one package. Prog is the
// whole-program call-graph/summary view shared by every package's pass;
// intraprocedural analyzers simply ignore it.
type Pass struct {
	Analyzer *Analyzer
	Cfg      *Config
	Fset     *token.FileSet
	Pkg      *Package
	Prog     *Program

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.reportWhy(pos, nil, format, args...)
}

// reportWhy records a finding carrying a call-chain witness.
func (p *Pass) reportWhy(pos token.Pos, why []string, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
		Why:      why,
	})
}

// Config scopes analyzers per package. The zero value checks everything;
// DefaultConfig encodes this repository's policy.
type Config struct {
	// Module is the main module path analyzers scope themselves by.
	Module string
	// Skip disables the named analyzers for an import path — the
	// per-package escape hatch for layers whose job is the thing an
	// analyzer forbids (the rpc layer really does live on the wall
	// clock).
	Skip map[string][]string
}

// DefaultConfig is the repository policy: every internal package is held
// to the determinism contract except the real-network rpc layer, which
// legitimately reads the wall clock (deadlines, backoff) and jitters
// retries from the global rand.
func DefaultConfig() *Config {
	return ConfigForModule("swift")
}

// ConfigForModule applies the repository policy to an arbitrary main module
// path, so swiftvet works unchanged on any module laid out like this one
// (the lint golden tests run it over a fixture module).
func ConfigForModule(module string) *Config {
	return &Config{
		Module: module,
		Skip: map[string][]string{
			module + "/internal/rpc": {"determinism"},
		},
	}
}

func (c *Config) skipped(pkgPath, analyzer string) bool {
	if c == nil {
		return false
	}
	for _, a := range c.Skip[pkgPath] {
		if a == analyzer {
			return true
		}
	}
	return false
}

// inModule reports whether path is inside the configured main module.
func (c *Config) inModule(path string) bool {
	if c == nil || c.Module == "" {
		return true
	}
	return path == c.Module || strings.HasPrefix(path, c.Module+"/")
}

// internalPath reports whether path is a module-internal package (the
// scope of the determinism and errdiscipline contracts; cmd/ and
// examples/ are user-facing mains that may print, sleep, and exit).
func (c *Config) internalPath(path string) bool {
	return c.inModule(path) && strings.Contains(path, "/internal/")
}

// All returns the seven analyzers in catalogue order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		LockDiscipline,
		LockOrder,
		Hotpath,
		ErrDiscipline,
		Exhaustive,
		BatchParity,
	}
}

// ByName resolves a comma-separated analyzer list ("" = all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		a := byName[strings.TrimSpace(n)]
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// suppression is one parsed //lint:allow comment.
type suppression struct {
	file     string
	line     int
	analyzer string
}

var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+(\S+)\s*(.*)$`)

// collectSuppressions scans every comment of the package (test files
// included) for //lint:allow directives. A directive with no reason is
// itself a finding: suppressions must say why or they are just deletions
// of the check.
func collectSuppressions(fset *token.FileSet, pkg *Package) ([]suppression, []Finding) {
	var sups []suppression
	var bad []Finding
	files := append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					bad = append(bad, Finding{
						Analyzer: "lint",
						Pos:      pos,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  fmt.Sprintf("lint:allow %s is missing its mandatory reason", m[1]),
					})
					continue
				}
				sups = append(sups, suppression{file: pos.Filename, line: pos.Line, analyzer: m[1]})
			}
		}
	}
	return sups, bad
}

// lineRange is the line span of one multi-line simple statement — the
// unit an allow comment on the first line suppresses across.
type lineRange struct {
	start, end int
}

// collectStmtRanges records, per file, the line spans of multi-line
// *simple* statements (calls, assignments, returns, sends, declarations,
// defer/go) so an allow on the statement's first line covers a finding
// reported on any of its continuation lines. Control-flow blocks are
// deliberately excluded: an allow above an `if` must not blanket its body.
func collectStmtRanges(fset *token.FileSet, pkg *Package, ranges map[string][]lineRange) {
	files := append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ExprStmt, *ast.AssignStmt, *ast.ReturnStmt, *ast.SendStmt,
				*ast.DeclStmt, *ast.DeferStmt, *ast.GoStmt:
			default:
				return true
			}
			start := fset.Position(n.Pos())
			end := fset.Position(n.End())
			if end.Line > start.Line {
				ranges[start.Filename] = append(ranges[start.Filename], lineRange{start: start.Line, end: end.Line})
			}
			return true
		})
	}
}

// suppressedBy reports whether a finding is covered by an allow directive:
// on its own line, on the line immediately above, or — when the finding
// falls inside a multi-line simple statement — on that statement's first
// line or the line above it.
func suppressedBy(f Finding, sups []suppression, ranges map[string][]lineRange) bool {
	for _, s := range sups {
		if s.analyzer != f.Analyzer || s.file != f.File {
			continue
		}
		if s.line == f.Line || s.line == f.Line-1 {
			return true
		}
		for _, r := range ranges[f.File] {
			if f.Line >= r.start && f.Line <= r.end && (s.line == r.start || s.line == r.start-1) {
				return true
			}
		}
	}
	return false
}

// Run executes the analyzers over the packages, applies per-package config
// and //lint:allow suppressions, and returns the surviving findings in
// byte-stable (file, line, col, analyzer, message) order.
func Run(fset *token.FileSet, pkgs []*Package, cfg *Config, analyzers []*Analyzer) []Finding {
	return RunPackages(fset, pkgs, cfg, analyzers, nil)
}

// RunPackages is Run with a reporting filter: the whole-program view is
// always built over every loaded package (summaries need the full graph),
// but when only is non-nil, findings are reported just for the packages
// whose import path it maps to true — the -changed incremental mode.
func RunPackages(fset *token.FileSet, pkgs []*Package, cfg *Config, analyzers []*Analyzer, only map[string]bool) []Finding {
	prog := buildProgram(fset, pkgs, cfg)
	var findings []Finding
	for _, pkg := range pkgs {
		if only != nil && !only[pkg.Path] {
			continue
		}
		sups, bad := collectSuppressions(fset, pkg)
		findings = append(findings, bad...)
		var raw []Finding
		for _, a := range analyzers {
			if cfg.skipped(pkg.Path, a.Name) {
				continue
			}
			pass := &Pass{Analyzer: a, Cfg: cfg, Fset: fset, Pkg: pkg, Prog: prog, findings: &raw}
			a.Run(pass)
		}
		seen := make(map[string]bool)
		for _, f := range raw {
			key := f.String()
			if !suppressedBy(f, sups, prog.ranges) && !seen[key] {
				seen[key] = true
				findings = append(findings, f)
			}
		}
	}
	sortFindings(findings)
	return findings
}

// sortFindings orders findings by (file, line, col, analyzer, message) —
// the full key, so output is byte-stable even when two findings from the
// same analyzer land on the same position.
func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// funcBodies yields every function body in the file — declarations and
// literals — each exactly once, with literals reported as their own
// scope (a Lock in a closure must find its Unlock in that closure).
func funcBodies(f *ast.File, visit func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(n.Body)
			}
		case *ast.FuncLit:
			visit(n.Body)
		}
		return true
	})
}

// walkShallow walks the statements of body without descending into nested
// function literals, whose execution time is unknown to the enclosing
// scope's analysis.
func walkShallow(body ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		return visit(n)
	})
}
