package dag

import (
	"strings"
	"testing"
)

func TestAddStageValidation(t *testing.T) {
	j := NewJob("j")
	if err := j.AddStage(&Stage{Name: "", Tasks: 1}); err == nil {
		t.Error("empty stage name accepted")
	}
	if err := j.AddStage(&Stage{Name: "a", Tasks: 0}); err == nil {
		t.Error("zero task count accepted")
	}
	if err := j.AddStage(&Stage{Name: "a", Tasks: -3}); err == nil {
		t.Error("negative task count accepted")
	}
	if err := j.AddStage(&Stage{Name: "a", Tasks: 2}); err != nil {
		t.Fatalf("valid stage rejected: %v", err)
	}
	if err := j.AddStage(&Stage{Name: "a", Tasks: 2}); err == nil {
		t.Error("duplicate stage accepted")
	}
	if err := j.AddStage(nil); err == nil {
		t.Error("nil stage accepted")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	j := NewJob("j")
	mustStage(t, j, "a", 1)
	mustStage(t, j, "b", 1)
	if err := j.AddEdge(&Edge{From: "a", To: "a"}); err == nil {
		t.Error("self-loop accepted")
	}
	if err := j.AddEdge(&Edge{From: "x", To: "b"}); err == nil {
		t.Error("unknown producer accepted")
	}
	if err := j.AddEdge(&Edge{From: "a", To: "x"}); err == nil {
		t.Error("unknown consumer accepted")
	}
	if err := j.AddEdge(nil); err == nil {
		t.Error("nil edge accepted")
	}
	if err := j.AddEdge(&Edge{From: "a", To: "b"}); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := j.AddEdge(&Edge{From: "a", To: "b"}); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestEdgeModeFromOperator(t *testing.T) {
	j := NewJob("j")
	mustStage(t, j, "a", 1)
	mustStage(t, j, "b", 1)
	mustStage(t, j, "c", 1)
	if err := j.AddEdge(&Edge{From: "a", To: "b", Op: OpMergeJoin}); err != nil {
		t.Fatal(err)
	}
	if err := j.AddEdge(&Edge{From: "a", To: "c", Op: OpShuffleRead}); err != nil {
		t.Fatal(err)
	}
	if got := j.Out("a")[0].Mode; got != Barrier {
		t.Errorf("MergeJoin edge mode = %v, want Barrier", got)
	}
	if got := j.Out("a")[1].Mode; got != Pipeline {
		t.Errorf("ShuffleRead edge mode = %v, want Pipeline", got)
	}
}

func TestClassifyProducerGlobalSort(t *testing.T) {
	// Fig. 4 rule: a stage containing MergeSort makes its outgoing edges
	// barriers, while its incoming edges stay pipeline.
	j := NewJob("j")
	mustStage(t, j, "m1", 4)
	if err := j.AddStage(&Stage{Name: "j4", Tasks: 2, Operators: []Operator{Op(OpShuffleRead), Op(OpMergeSort), Op(OpShuffleWrite)}}); err != nil {
		t.Fatal(err)
	}
	mustStage(t, j, "j6", 2)
	if err := j.AddEdge(&Edge{From: "m1", To: "j4", Op: OpShuffleRead}); err != nil {
		t.Fatal(err)
	}
	if err := j.AddEdge(&Edge{From: "j4", To: "j6", Op: OpShuffleRead}); err != nil {
		t.Fatal(err)
	}
	j.Classify()
	if got := j.Out("m1")[0].Mode; got != Pipeline {
		t.Errorf("m1->j4 mode = %v, want Pipeline", got)
	}
	if got := j.Out("j4")[0].Mode; got != Barrier {
		t.Errorf("j4->j6 mode = %v, want Barrier", got)
	}
}

func TestTopoOrder(t *testing.T) {
	j := NewBuilder("t").
		Stage("c", 1).Stage("a", 1).Stage("b", 1).
		Pipeline("a", "b", 0).Pipeline("b", "c", 0).
		MustBuild()
	order, err := j.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("topo order = %v, want %v", order, want)
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	j := NewJob("cyc")
	mustStage(t, j, "a", 1)
	mustStage(t, j, "b", 1)
	if err := j.AddEdge(&Edge{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := j.AddEdge(&Edge{From: "b", To: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := j.TopoOrder(); err == nil {
		t.Error("cycle not detected")
	}
	if err := j.Validate(); err == nil {
		t.Error("Validate accepted a cyclic job")
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := NewJob("e").Validate(); err == nil {
		t.Error("empty job validated")
	}
}

func TestRootsAndSinks(t *testing.T) {
	j := NewBuilder("rs").
		Stage("a", 1).Stage("b", 1).Stage("c", 1).Stage("d", 1).
		Pipeline("a", "c", 0).Pipeline("b", "c", 0).Pipeline("c", "d", 0).
		MustBuild()
	if got := j.Roots(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("roots = %v", got)
	}
	if got := j.Sinks(); len(got) != 1 || got[0] != "d" {
		t.Errorf("sinks = %v", got)
	}
}

func TestShuffleEdgeSizeAndBytes(t *testing.T) {
	j := NewBuilder("sz").
		Stage("m", 250, Op(OpTableScan)).
		Stage("r", 400, Op(OpShuffleRead)).
		Pipeline("m", "r", 5000).
		MustBuild()
	e := j.Edges()[0]
	if got := j.ShuffleEdgeSize(e); got != 100000 {
		t.Errorf("shuffle edge size = %d, want 100000", got)
	}
	if got := j.TotalShuffleBytes(); got != 5000 {
		t.Errorf("total shuffle bytes = %d, want 5000", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	j := NewBuilder("cl").
		Stage("a", 1, Op(OpTableScan)).Stage("b", 2).
		Barrier("a", "b", 10).
		MustBuild()
	c := j.Clone()
	c.Stage("a").Tasks = 99
	c.Edges()[0].Bytes = 42
	c.Stage("a").Operators[0].Kind = OpFilter
	if j.Stage("a").Tasks != 1 {
		t.Error("clone shares stage structs")
	}
	if j.Edges()[0].Bytes != 10 {
		t.Error("clone shares edge structs")
	}
	if j.Stage("a").Operators[0].Kind != OpTableScan {
		t.Error("clone shares operator slices")
	}
	if c.NumStages() != j.NumStages() || c.NumTasks() == j.NumTasks() {
		t.Error("clone structure wrong")
	}
}

func TestParentsChildren(t *testing.T) {
	j := NewBuilder("pc").
		Stage("a", 1).Stage("b", 1).Stage("c", 1).
		Pipeline("a", "b", 0).Pipeline("a", "c", 0).Pipeline("b", "c", 0).
		MustBuild()
	if got := j.Children("a"); len(got) != 2 {
		t.Errorf("children(a) = %v", got)
	}
	if got := j.Parents("c"); len(got) != 2 {
		t.Errorf("parents(c) = %v", got)
	}
	if got := j.Parents("a"); len(got) != 0 {
		t.Errorf("parents(a) = %v", got)
	}
}

func TestGlobalSortOperators(t *testing.T) {
	want := map[OperatorKind]bool{
		OpStreamedAggregate: true, OpMergeJoin: true, OpWindow: true,
		OpSortBy: true, OpMergeSort: true,
		OpTableScan: false, OpShuffleRead: false, OpHashJoin: false,
		OpFilter: false, OpHashAggregate: false, OpLimit: false,
	}
	for k, w := range want {
		if k.GlobalSort() != w {
			t.Errorf("%v.GlobalSort() = %v, want %v", k, !w, w)
		}
	}
}

func TestOperatorStrings(t *testing.T) {
	if OpMergeSort.String() != "MergeSort" {
		t.Errorf("OpMergeSort.String() = %q", OpMergeSort.String())
	}
	if OperatorKind(999).String() != "Invalid" {
		t.Errorf("invalid kind string = %q", OperatorKind(999).String())
	}
}

func TestJobString(t *testing.T) {
	j := NewBuilder("str").
		Stage("a", 1, Op(OpTableScan)).Stage("b", 1).
		Barrier("a", "b", 7).
		MustBuild()
	s := j.String()
	for _, want := range []string{"job str", "a x1", "TableScan", "a -> b", "barrier", "7 bytes"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}

func TestBuilderErrorPropagation(t *testing.T) {
	_, err := NewBuilder("bad").Stage("a", 1).Pipeline("a", "missing", 0).Build()
	if err == nil {
		t.Error("builder swallowed edge error")
	}
	_, err = NewBuilder("bad2").Stage("a", 0).Build()
	if err == nil {
		t.Error("builder swallowed stage error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on invalid job")
		}
	}()
	NewBuilder("bad3").MustBuild()
}

func mustStage(t *testing.T, j *Job, name string, tasks int) {
	t.Helper()
	if err := j.AddStage(&Stage{Name: name, Tasks: tasks}); err != nil {
		t.Fatal(err)
	}
}
