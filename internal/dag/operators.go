package dag

// OperatorKind identifies a relational or data-movement operator inside a
// stage. The set follows Section II-A of the paper ("Swift supports all
// typical SQL operators such as sort merge join, sort aggregate, window,
// order by, and so on") plus the data-movement operators visible in
// Fig. 4(b) (TableScan, ShuffleWrite, ShuffleRead, AdhocSink).
type OperatorKind int

const (
	OpUnknown OperatorKind = iota

	// Data movement.
	OpTableScan
	OpShuffleWrite
	OpShuffleRead
	OpAdhocSink
	OpBroadcast

	// Row-at-a-time relational operators (pipelineable).
	OpFilter
	OpProject
	OpHashJoin
	OpHashAggregate
	OpLimit
	OpUnion

	// Global-sort-class operators (Section III-A1). Data crossing an edge
	// consumed by one of these cannot be streamed: the edge is a barrier.
	OpStreamedAggregate
	OpMergeJoin
	OpWindow
	OpSortBy
	OpMergeSort
)

var operatorNames = map[OperatorKind]string{
	OpUnknown:           "Unknown",
	OpTableScan:         "TableScan",
	OpShuffleWrite:      "ShuffleWrite",
	OpShuffleRead:       "ShuffleRead",
	OpAdhocSink:         "AdhocSink",
	OpBroadcast:         "Broadcast",
	OpFilter:            "Filter",
	OpProject:           "Project",
	OpHashJoin:          "HashJoin",
	OpHashAggregate:     "HashAggregate",
	OpLimit:             "Limit",
	OpUnion:             "Union",
	OpStreamedAggregate: "StreamedAggregate",
	OpMergeJoin:         "MergeJoin",
	OpWindow:            "Window",
	OpSortBy:            "SortBy",
	OpMergeSort:         "MergeSort",
}

// String returns the canonical operator name as used in the paper's figures.
func (k OperatorKind) String() string {
	if s, ok := operatorNames[k]; ok {
		return s
	}
	return "Invalid"
}

// GlobalSort reports whether the operator belongs to the global-sort class
// that forces the edge carrying its input to be a barrier edge
// (StreamedAggregate, MergeJoin, Window, SortBy, MergeSort; Section III-A1).
func (k OperatorKind) GlobalSort() bool {
	switch k {
	case OpStreamedAggregate, OpMergeJoin, OpWindow, OpSortBy, OpMergeSort:
		return true
	default:
		return false
	}
}

// Operator is one step of a stage's physical plan.
type Operator struct {
	Kind OperatorKind
	// Expr optionally carries a human-readable description of the
	// operator's predicate, keys or projection (used by swiftsql and the
	// examples; the schedulers never interpret it).
	Expr string
}

// Op is shorthand for constructing an Operator without an expression.
func Op(kind OperatorKind) Operator { return Operator{Kind: kind} }
