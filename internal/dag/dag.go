// Package dag defines the job model used throughout Swift: a directed
// acyclic graph of stages connected by shuffle edges that are either
// pipeline edges (data can be streamed to the consumer as produced) or
// barrier edges (the consumer applies a global-sort-class operator and the
// producer side must complete first). The classification drives job
// partitioning into graphlets (package graphlet) and shuffle-mode selection
// (package shuffle), exactly as described in Section III of the paper.
package dag

import (
	"fmt"
	"sort"
	"strings"
)

// EdgeMode classifies an inter-stage shuffle edge.
type EdgeMode int

const (
	// Pipeline edges allow the producer to stream data to the consumer
	// for continuous processing; both sides can be gang scheduled into
	// the same graphlet.
	Pipeline EdgeMode = iota
	// Barrier edges involve a global SORT operation on the consuming
	// side, so the producer stages must complete before the consumer can
	// make progress. Barrier edges delimit graphlets.
	Barrier
)

// String returns "pipeline" or "barrier".
func (m EdgeMode) String() string {
	if m == Barrier {
		return "barrier"
	}
	return "pipeline"
}

// Edge is a shuffle dependency between two stages of a job.
type Edge struct {
	From string // producer stage name
	To   string // consumer stage name
	// Op is the operator on the consuming side that ingests this edge's
	// data. If Op.GlobalSort() the edge is a barrier. Planners may leave
	// Op as OpShuffleRead and set Mode explicitly instead.
	Op OperatorKind
	// Mode caches the pipeline/barrier classification. Classify derives
	// it from Op; builders that know the mode can set it directly.
	Mode EdgeMode
	// Bytes is the total shuffle volume crossing the edge. Used by the
	// simulator's cost model and by the Bubble-Execution baseline (which
	// partitions by shuffle data size rather than by shuffle mode).
	Bytes int64
}

// Cost carries the per-stage workload characteristics the simulator needs.
// All values are totals across the stage's tasks unless stated otherwise.
type Cost struct {
	// ScanBytes is data read from base tables (M-stages in the paper's
	// figures). Zero for pure shuffle consumers.
	ScanBytes int64
	// ProcessSecondsPerTask is pure record-processing CPU time for one
	// task once its input is available (the "P" phase of Fig. 9b).
	ProcessSecondsPerTask float64
	// OutputBytes is data written to the job's final sink, if any.
	OutputBytes int64
	// Records is the total input record count (Fig. 13 reporting).
	Records int64
}

// Stage is one vertex of the job DAG: a set of identical parallel tasks.
type Stage struct {
	Name      string
	Tasks     int
	Operators []Operator
	// Idempotent marks tasks whose re-execution regenerates an identical
	// output data set in an identical order (Section IV-B1). Recovery of
	// non-idempotent tasks must also re-run executed successors.
	Idempotent bool
	Cost       Cost
}

// HasGlobalSort reports whether any of the stage's operators is in the
// global-sort class; the paper uses this to mark the stage's outgoing edges
// as barriers ("J4, J6, and J10 contain MergeSort operator, thus the edges
// between J4 and J6, J6 and J10, J10 and R11 are barrier edges").
func (s *Stage) HasGlobalSort() bool {
	for _, op := range s.Operators {
		if op.Kind.GlobalSort() {
			return true
		}
	}
	return false
}

// Job is a complete DAG job as submitted by a client.
type Job struct {
	ID string
	// Tenant labels the submitting tenant for multi-tenant scheduling
	// policies and per-tenant admission budgets. Empty means the default
	// tenant; the label never affects DAG semantics.
	Tenant string
	stages map[string]*Stage
	order  []string // insertion order, used for deterministic iteration
	edges  []*Edge
	in     map[string][]*Edge
	out    map[string][]*Edge
}

// NewJob returns an empty job with the given identifier.
func NewJob(id string) *Job {
	return &Job{
		ID:     id,
		stages: make(map[string]*Stage),
		in:     make(map[string][]*Edge),
		out:    make(map[string][]*Edge),
	}
}

// AddStage inserts a stage. It returns an error if the name is empty,
// duplicated, or the task count is not positive.
func (j *Job) AddStage(s *Stage) error {
	if s == nil || s.Name == "" {
		return fmt.Errorf("dag: stage must have a name")
	}
	if s.Tasks <= 0 {
		return fmt.Errorf("dag: stage %s: task count must be positive, got %d", s.Name, s.Tasks)
	}
	if _, dup := j.stages[s.Name]; dup {
		return fmt.Errorf("dag: duplicate stage %s", s.Name)
	}
	j.stages[s.Name] = s
	j.order = append(j.order, s.Name)
	return nil
}

// AddEdge inserts a shuffle edge. Both endpoints must already exist and the
// edge must not create a self-loop. Mode is derived from Op unless the
// caller has set Mode to Barrier explicitly.
func (j *Job) AddEdge(e *Edge) error {
	if e == nil {
		return fmt.Errorf("dag: nil edge")
	}
	if e.From == e.To {
		return fmt.Errorf("dag: self-loop on stage %s", e.From)
	}
	if _, ok := j.stages[e.From]; !ok {
		return fmt.Errorf("dag: edge %s->%s: unknown producer stage %s", e.From, e.To, e.From)
	}
	if _, ok := j.stages[e.To]; !ok {
		return fmt.Errorf("dag: edge %s->%s: unknown consumer stage %s", e.From, e.To, e.To)
	}
	for _, old := range j.out[e.From] {
		if old.To == e.To {
			return fmt.Errorf("dag: duplicate edge %s->%s", e.From, e.To)
		}
	}
	if e.Op.GlobalSort() {
		e.Mode = Barrier
	}
	j.edges = append(j.edges, e)
	j.out[e.From] = append(j.out[e.From], e)
	j.in[e.To] = append(j.in[e.To], e)
	return nil
}

// Stage returns the named stage, or nil if absent.
func (j *Job) Stage(name string) *Stage { return j.stages[name] }

// Stages returns all stages in insertion order.
func (j *Job) Stages() []*Stage {
	out := make([]*Stage, 0, len(j.order))
	for _, n := range j.order {
		out = append(out, j.stages[n])
	}
	return out
}

// StageNames returns all stage names in insertion order.
func (j *Job) StageNames() []string { return append([]string(nil), j.order...) }

// NumStages returns the stage count.
func (j *Job) NumStages() int { return len(j.stages) }

// NumTasks returns the total task count across all stages.
func (j *Job) NumTasks() int {
	n := 0
	for _, s := range j.stages {
		n += s.Tasks
	}
	return n
}

// Edges returns all edges in insertion order.
func (j *Job) Edges() []*Edge { return append([]*Edge(nil), j.edges...) }

// In returns the edges entering the named stage.
func (j *Job) In(name string) []*Edge { return append([]*Edge(nil), j.in[name]...) }

// Out returns the edges leaving the named stage.
func (j *Job) Out(name string) []*Edge { return append([]*Edge(nil), j.out[name]...) }

// Parents returns the producer stage names feeding the named stage.
func (j *Job) Parents(name string) []string {
	var out []string
	for _, e := range j.in[name] {
		out = append(out, e.From)
	}
	return out
}

// Children returns the consumer stage names fed by the named stage.
func (j *Job) Children(name string) []string {
	var out []string
	for _, e := range j.out[name] {
		out = append(out, e.To)
	}
	return out
}

// Classify re-derives every edge's Mode from the paper's heuristic: an edge
// is a barrier if its consuming operator is in the global-sort class, or if
// its producer stage contains a global-sort operator (the Fig. 4 rule — a
// stage that performs a global sort cannot stream onward). Edges whose Mode
// was explicitly set to Barrier by a planner are left as barriers.
func (j *Job) Classify() {
	for _, e := range j.edges {
		if e.Op.GlobalSort() || j.stages[e.From].HasGlobalSort() {
			e.Mode = Barrier
		}
	}
}

// Validate checks structural invariants: at least one stage, acyclicity,
// and every edge endpoint present. It returns the first violation found.
func (j *Job) Validate() error {
	if len(j.stages) == 0 {
		return fmt.Errorf("dag: job %s has no stages", j.ID)
	}
	if _, err := j.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns the stage names in a deterministic topological order
// (Kahn's algorithm with ties broken by insertion order). It returns an
// error if the graph has a cycle.
func (j *Job) TopoOrder() ([]string, error) {
	indeg := make(map[string]int, len(j.stages))
	for name := range j.stages {
		indeg[name] = len(j.in[name])
	}
	pos := make(map[string]int, len(j.order))
	for i, n := range j.order {
		pos[n] = i
	}
	var ready []string
	for _, n := range j.order {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	var out []string
	for len(ready) > 0 {
		sort.Slice(ready, func(a, b int) bool { return pos[ready[a]] < pos[ready[b]] })
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		for _, e := range j.out[n] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	if len(out) != len(j.stages) {
		return nil, fmt.Errorf("dag: job %s contains a cycle", j.ID)
	}
	return out, nil
}

// Roots returns the stages with no incoming edges, in insertion order.
func (j *Job) Roots() []string {
	var out []string
	for _, n := range j.order {
		if len(j.in[n]) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// Sinks returns the stages with no outgoing edges, in insertion order.
func (j *Job) Sinks() []string {
	var out []string
	for _, n := range j.order {
		if len(j.out[n]) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// ShuffleEdgeSize returns the paper's "shuffle size" for an edge: the number
// of task-to-task links between producer and consumer (M×N), which drives
// adaptive shuffle-mode selection (Section III-B).
func (j *Job) ShuffleEdgeSize(e *Edge) int {
	return j.stages[e.From].Tasks * j.stages[e.To].Tasks
}

// TotalShuffleBytes sums Bytes over all edges.
func (j *Job) TotalShuffleBytes() int64 {
	var n int64
	for _, e := range j.edges {
		n += e.Bytes
	}
	return n
}

// Clone returns a deep copy of the job. Schedulers that consume the DAG
// destructively (Algorithm 1 removes stages) operate on a clone.
func (j *Job) Clone() *Job {
	c := NewJob(j.ID)
	c.Tenant = j.Tenant
	for _, n := range j.order {
		s := *j.stages[n]
		s.Operators = append([]Operator(nil), s.Operators...)
		if err := c.AddStage(&s); err != nil {
			panic("dag: clone: " + err.Error()) // impossible: source was valid
		}
	}
	for _, e := range j.edges {
		ec := *e
		if err := c.AddEdge(&ec); err != nil {
			panic("dag: clone: " + err.Error())
		}
	}
	return c
}

// String renders a compact multi-line description of the job.
func (j *Job) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "job %s: %d stages, %d tasks\n", j.ID, j.NumStages(), j.NumTasks())
	for _, n := range j.order {
		s := j.stages[n]
		ops := make([]string, len(s.Operators))
		for i, op := range s.Operators {
			ops[i] = op.Kind.String()
		}
		fmt.Fprintf(&b, "  %s x%d [%s]\n", s.Name, s.Tasks, strings.Join(ops, ","))
	}
	for _, e := range j.edges {
		fmt.Fprintf(&b, "  %s -> %s (%s, %d bytes)\n", e.From, e.To, e.Mode, e.Bytes)
	}
	return b.String()
}
