package dag

// Builder accumulates stages and edges and defers error handling until
// Build, which makes hand-written DAG construction (tests, tpch, examples)
// read linearly. The first error encountered is retained and returned.
type Builder struct {
	job *Job
	err error
}

// NewBuilder starts a builder for a job with the given identifier.
func NewBuilder(id string) *Builder {
	return &Builder{job: NewJob(id)}
}

// Stage adds a stage with the given name, parallelism and operators.
// Stages added this way default to idempotent (Section IV-B1 notes both
// kinds exist in production; non-idempotent stages use StageOpt).
func (b *Builder) Stage(name string, tasks int, ops ...Operator) *Builder {
	return b.StageOpt(&Stage{Name: name, Tasks: tasks, Operators: ops, Idempotent: true})
}

// StageOpt adds a fully specified stage.
func (b *Builder) StageOpt(s *Stage) *Builder {
	if b.err == nil {
		b.err = b.job.AddStage(s)
	}
	return b
}

// Pipeline adds a pipeline edge carrying the given shuffle volume.
func (b *Builder) Pipeline(from, to string, bytes int64) *Builder {
	return b.edge(&Edge{From: from, To: to, Op: OpShuffleRead, Mode: Pipeline, Bytes: bytes})
}

// Barrier adds a barrier edge carrying the given shuffle volume.
func (b *Builder) Barrier(from, to string, bytes int64) *Builder {
	return b.edge(&Edge{From: from, To: to, Op: OpShuffleRead, Mode: Barrier, Bytes: bytes})
}

// Edge adds an edge whose mode is derived from the consuming operator.
func (b *Builder) Edge(from, to string, op OperatorKind, bytes int64) *Builder {
	return b.edge(&Edge{From: from, To: to, Op: op, Bytes: bytes})
}

func (b *Builder) edge(e *Edge) *Builder {
	if b.err == nil {
		b.err = b.job.AddEdge(e)
	}
	return b
}

// Build validates and returns the job, or the first accumulated error.
func (b *Builder) Build() (*Job, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.job.Validate(); err != nil {
		return nil, err
	}
	return b.job, nil
}

// MustBuild is Build for static DAGs known to be valid; it panics on error.
func (b *Builder) MustBuild() *Job {
	j, err := b.Build()
	if err != nil {
		panic("dag: " + err.Error())
	}
	return j
}
