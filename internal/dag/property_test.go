package dag

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomJob builds a random DAG with edges always pointing from lower to
// higher stage index, guaranteeing acyclicity by construction.
func randomJob(r *rand.Rand) *Job {
	n := 1 + r.Intn(12)
	j := NewJob("rand")
	for i := 0; i < n; i++ {
		stage := &Stage{Name: fmt.Sprintf("s%d", i), Tasks: 1 + r.Intn(50), Idempotent: true}
		if r.Intn(4) == 0 {
			stage.Operators = append(stage.Operators, Op(OpMergeSort))
		}
		if err := j.AddStage(stage); err != nil {
			panic(err)
		}
	}
	for to := 1; to < n; to++ {
		for from := 0; from < to; from++ {
			if r.Intn(3) != 0 {
				continue
			}
			mode := Pipeline
			if r.Intn(3) == 0 {
				mode = Barrier
			}
			e := &Edge{From: fmt.Sprintf("s%d", from), To: fmt.Sprintf("s%d", to),
				Op: OpShuffleRead, Mode: mode, Bytes: r.Int63n(1 << 30)}
			if err := j.AddEdge(e); err != nil {
				panic(err)
			}
		}
	}
	j.Classify()
	return j
}

// TestTopoOrderProperty checks, over random DAGs, that TopoOrder returns a
// permutation of the stages in which every edge points forward.
func TestTopoOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		j := randomJob(rand.New(rand.NewSource(seed)))
		order, err := j.TopoOrder()
		if err != nil {
			return false
		}
		if len(order) != j.NumStages() {
			return false
		}
		pos := make(map[string]int, len(order))
		for i, s := range order {
			if _, dup := pos[s]; dup {
				return false
			}
			pos[s] = i
		}
		for _, e := range j.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCloneProperty checks that a clone is structurally identical but
// storage-independent for random DAGs.
func TestCloneProperty(t *testing.T) {
	f := func(seed int64) bool {
		j := randomJob(rand.New(rand.NewSource(seed)))
		c := j.Clone()
		if c.NumStages() != j.NumStages() || len(c.Edges()) != len(j.Edges()) {
			return false
		}
		if c.String() != j.String() {
			return false
		}
		for _, s := range c.Stages() {
			s.Tasks++
		}
		return c.NumTasks() == j.NumTasks()+j.NumStages()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestClassifyProperty checks the classification invariant on random DAGs:
// after Classify, every out-edge of a global-sort stage is a barrier, and no
// edge whose producer lacks global sort and whose op is streamable got
// promoted from an explicit Pipeline to Barrier spuriously... (explicit
// barriers set by the builder are preserved).
func TestClassifyProperty(t *testing.T) {
	f := func(seed int64) bool {
		j := randomJob(rand.New(rand.NewSource(seed)))
		for _, e := range j.Edges() {
			if j.Stage(e.From).HasGlobalSort() && e.Mode != Barrier {
				return false
			}
			if e.Op.GlobalSort() && e.Mode != Barrier {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
