package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuantileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Quantile([]float64{1, 2, 3, 4}, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("even-sample median = %g, want 2.5", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty sample should give NaN")
	}
	// Out-of-range p clamps.
	if got := Quantile(xs, -1); got != 1 {
		t.Errorf("clamped low = %g", got)
	}
	if got := Quantile(xs, 2); got != 5 {
		t.Errorf("clamped high = %g", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestFourQuartiles(t *testing.T) {
	q := FourQuartiles([]float64{10, 20, 30, 40, 50})
	if q.Min != 10 || q.Q1 != 20 || q.Median != 30 || q.Q3 != 40 || q.Max != 50 {
		t.Errorf("quartiles = %+v", q)
	}
	if math.Abs(q.Mid()-30) > 1e-12 {
		t.Errorf("Mid = %g", q.Mid())
	}
	if q.String() == "" {
		t.Error("empty String()")
	}
}

func TestMeanSumGeoMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %g", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if got := Sum([]float64{1.5, 2.5}); got != 4 {
		t.Errorf("Sum = %g", got)
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %g", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("GeoMean with negatives should be NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("GeoMean(nil) should be NaN")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].X != 1 || math.Abs(pts[0].P-1.0/3) > 1e-12 {
		t.Errorf("first point = %+v", pts[0])
	}
	if pts[2].X != 3 || pts[2].P != 1 {
		t.Errorf("last point = %+v", pts[2])
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) should be nil")
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := FractionBelow(xs, 2); got != 0.5 {
		t.Errorf("FractionBelow(2) = %g", got)
	}
	if got := FractionBelow(xs, 0); got != 0 {
		t.Errorf("FractionBelow(0) = %g", got)
	}
	if got := FractionBelow(xs, 10); got != 1 {
		t.Errorf("FractionBelow(10) = %g", got)
	}
	if !math.IsNaN(FractionBelow(nil, 1)) {
		t.Error("empty sample should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for _, x := range []float64{5, 15, 15, 95, -3, 250} {
		h.Add(x)
	}
	if h.Total != 6 {
		t.Errorf("Total = %d", h.Total)
	}
	if h.Counts[0] != 2 { // 5 and clamped -3
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 2 {
		t.Errorf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[9] != 2 { // 95 and clamped 250
		t.Errorf("bin9 = %d", h.Counts[9])
	}
	if got := h.BinCenter(0); got != 5 {
		t.Errorf("BinCenter(0) = %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid bounds did not panic")
		}
	}()
	NewHistogram(10, 10, 5)
}

func TestSeries(t *testing.T) {
	s := NewSeries()
	s.Delta(1, +5)
	s.Delta(3, -2)
	s.Delta(2, +1)
	pts := s.Points()
	want := []SeriesPoint{{1, 5}, {2, 6}, {3, 4}}
	for i, w := range want {
		if pts[i] != w {
			t.Fatalf("Points()[%d] = %+v, want %+v", i, pts[i], w)
		}
	}
	if got := s.Max(); got != 6 {
		t.Errorf("Max = %g", got)
	}
	samp := s.Sample(4, 1)
	wantV := []float64{0, 5, 6, 4, 4}
	for i, w := range wantV {
		if samp[i].V != w {
			t.Fatalf("Sample[%d] = %+v, want V=%g", i, samp[i], w)
		}
	}
}

// TestQuantileProperty: quantiles are monotone in p and bounded by the
// sample extremes for random samples.
func TestQuantileProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0001; p += 0.05 {
			q := Quantile(xs, p)
			if q < prev-1e-9 || q < sorted[0]-1e-9 || q > sorted[n-1]+1e-9 {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCDFProperty: the CDF is monotone in both coordinates and ends at 1.
func TestCDFProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 1000
		}
		pts := CDF(xs)
		for i := 1; i < len(pts); i++ {
			if pts[i].X < pts[i-1].X || pts[i].P <= pts[i-1].P {
				return false
			}
		}
		return math.Abs(pts[len(pts)-1].P-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
