package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuantileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Quantile([]float64{1, 2, 3, 4}, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("even-sample median = %g, want 2.5", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty sample should give NaN")
	}
	// Out-of-range p clamps.
	if got := Quantile(xs, -1); got != 1 {
		t.Errorf("clamped low = %g", got)
	}
	if got := Quantile(xs, 2); got != 5 {
		t.Errorf("clamped high = %g", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestFourQuartiles(t *testing.T) {
	q := FourQuartiles([]float64{10, 20, 30, 40, 50})
	if q.Min != 10 || q.Q1 != 20 || q.Median != 30 || q.Q3 != 40 || q.Max != 50 {
		t.Errorf("quartiles = %+v", q)
	}
	if math.Abs(q.Mid()-30) > 1e-12 {
		t.Errorf("Mid = %g", q.Mid())
	}
	if q.String() == "" {
		t.Error("empty String()")
	}
}

func TestMeanSumGeoMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %g", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if got := Sum([]float64{1.5, 2.5}); got != 4 {
		t.Errorf("Sum = %g", got)
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %g", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("GeoMean with negatives should be NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("GeoMean(nil) should be NaN")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].X != 1 || math.Abs(pts[0].P-1.0/3) > 1e-12 {
		t.Errorf("first point = %+v", pts[0])
	}
	if pts[2].X != 3 || pts[2].P != 1 {
		t.Errorf("last point = %+v", pts[2])
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) should be nil")
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := FractionBelow(xs, 2); got != 0.5 {
		t.Errorf("FractionBelow(2) = %g", got)
	}
	if got := FractionBelow(xs, 0); got != 0 {
		t.Errorf("FractionBelow(0) = %g", got)
	}
	if got := FractionBelow(xs, 10); got != 1 {
		t.Errorf("FractionBelow(10) = %g", got)
	}
	if !math.IsNaN(FractionBelow(nil, 1)) {
		t.Error("empty sample should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for _, x := range []float64{5, 15, 15, 95, -3, 250} {
		h.Add(x)
	}
	if h.Total != 6 {
		t.Errorf("Total = %d", h.Total)
	}
	if h.Counts[0] != 1 { // just 5; -3 is underflow, not clamped in
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 2 {
		t.Errorf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[9] != 1 { // just 95; 250 is overflow, not clamped in
		t.Errorf("bin9 = %d", h.Counts[9])
	}
	if h.Underflow != 1 || h.Overflow != 1 {
		t.Errorf("Underflow/Overflow = %d/%d, want 1/1", h.Underflow, h.Overflow)
	}
	if got := h.BinCenter(0); got != 5 {
		t.Errorf("BinCenter(0) = %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid bounds did not panic")
		}
	}()
	NewHistogram(10, 10, 5)
}

func TestSeries(t *testing.T) {
	s := NewSeries()
	s.Delta(1, +5)
	s.Delta(3, -2)
	s.Delta(2, +1)
	pts := s.Points()
	want := []SeriesPoint{{1, 5}, {2, 6}, {3, 4}}
	for i, w := range want {
		if pts[i] != w {
			t.Fatalf("Points()[%d] = %+v, want %+v", i, pts[i], w)
		}
	}
	if got := s.Max(); got != 6 {
		t.Errorf("Max = %g", got)
	}
	samp := s.Sample(4, 1)
	wantV := []float64{0, 5, 6, 4, 4}
	for i, w := range wantV {
		if samp[i].V != w {
			t.Fatalf("Sample[%d] = %+v, want V=%g", i, samp[i], w)
		}
	}
}

// TestQuantileProperty: quantiles are monotone in p and bounded by the
// sample extremes for random samples.
func TestQuantileProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0001; p += 0.05 {
			q := Quantile(xs, p)
			if q < prev-1e-9 || q < sorted[0]-1e-9 || q > sorted[n-1]+1e-9 {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCDFProperty: the CDF is monotone in both coordinates and ends at 1.
func TestCDFProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 1000
		}
		pts := CDF(xs)
		for i := 1; i < len(pts); i++ {
			if pts[i].X < pts[i-1].X || pts[i].P <= pts[i-1].P {
				return false
			}
		}
		return math.Abs(pts[len(pts)-1].P-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Regression: Series.Sample with a non-positive step used to loop (and
// allocate) forever because the sampling clock never advanced. It must
// panic instead of hanging.
func TestSeriesSampleNonPositiveStepPanics(t *testing.T) {
	s := NewSeries()
	s.Delta(1, +1)
	for _, step := range []float64{0, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Sample(10, %v) did not panic", step)
				}
			}()
			s.Sample(10, step)
		}()
	}
}

// Regression: FourQuartiles used to copy and sort the sample once per
// Quantile call (five times). It must agree with per-quantile computation
// exactly while sorting only once — pinned by an allocation count.
func TestFourQuartilesEquivalenceAndAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(60)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 50
		}
		q := FourQuartiles(xs)
		want := Quartiles{
			Min:    Quantile(xs, 0),
			Q1:     Quantile(xs, 0.25),
			Median: Quantile(xs, 0.5),
			Q3:     Quantile(xs, 0.75),
			Max:    Quantile(xs, 1),
		}
		if q != want {
			t.Fatalf("trial %d: FourQuartiles = %+v, want %+v", trial, q, want)
		}
	}
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	// One sorted copy of the sample: exactly one allocation.
	allocs := testing.AllocsPerRun(20, func() { FourQuartiles(xs) })
	if allocs > 1 {
		t.Errorf("FourQuartiles allocates %.0f times per run, want 1 (single sort)", allocs)
	}
	empty := FourQuartiles(nil)
	if !math.IsNaN(empty.Min) || !math.IsNaN(empty.Median) || !math.IsNaN(empty.Max) {
		t.Errorf("FourQuartiles(nil) = %+v, want all NaN", empty)
	}
}

// Regression: Histogram.Add used to clamp out-of-range observations into
// the first/last bin, silently distorting distribution shapes. They must
// land in Underflow/Overflow and leave the bins untouched.
func TestHistogramOutOfRangeNotClamped(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-0.001)
	h.Add(10) // hi is exclusive
	h.Add(1e9)
	h.Add(math.NaN())
	for i, c := range h.Counts {
		if c != 0 {
			t.Errorf("bin %d = %d, want 0 (nothing in range was added)", i, c)
		}
	}
	if h.Underflow != 1 {
		t.Errorf("Underflow = %d, want 1", h.Underflow)
	}
	if h.Overflow != 3 {
		t.Errorf("Overflow = %d, want 3 (10, 1e9 and NaN)", h.Overflow)
	}
	if h.Total != 4 {
		t.Errorf("Total = %d, want 4", h.Total)
	}
	h.Add(0) // lo is inclusive
	h.Add(9.999)
	if h.Counts[0] != 1 || h.Counts[4] != 1 {
		t.Errorf("edge bins = %d/%d, want 1/1", h.Counts[0], h.Counts[4])
	}
}

// Regression: Quartiles.Mid is Tukey's trimean (Q1 + 2·Median + Q3) / 4.
// An earlier revision computed (Q1+Median+Q3)/3, which is neither the
// midhinge nor the trimean; an asymmetric sample distinguishes them.
func TestQuartilesMidIsTrimean(t *testing.T) {
	q := Quartiles{Q1: 2, Median: 3, Q3: 10}
	want := (2 + 2*3 + 10) / 4.0 // 4.5; the old formula gave 5
	if got := q.Mid(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Mid = %g, want trimean %g", got, want)
	}
	// Symmetric sample: trimean equals median.
	sym := FourQuartiles([]float64{10, 20, 30, 40, 50})
	if got := sym.Mid(); math.Abs(got-30) > 1e-12 {
		t.Errorf("symmetric Mid = %g, want 30", got)
	}
}

// NaN policy: Quantile and FourQuartiles strip NaN observations before
// computing order statistics (sort.Float64s gives NaNs an arbitrary
// position, which used to poison every quartile). All-NaN samples behave
// like empty ones.
func TestQuantileNaNPolicy(t *testing.T) {
	nan := math.NaN()
	xs := []float64{3, nan, 1, nan, 2}
	if got := Quantile(xs, 0.5); got != 2 {
		t.Errorf("median with NaNs = %g, want 2 (NaNs stripped)", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("min with NaNs = %g, want 1", got)
	}
	if got := Quantile(xs, 1); got != 3 {
		t.Errorf("max with NaNs = %g, want 3", got)
	}
	q := FourQuartiles(xs)
	if q.Min != 1 || q.Median != 2 || q.Max != 3 {
		t.Errorf("FourQuartiles with NaNs = %+v", q)
	}
	if !math.IsNaN(Quantile([]float64{nan, nan}, 0.5)) {
		t.Error("all-NaN sample should give NaN")
	}
	allNaN := FourQuartiles([]float64{nan})
	if !math.IsNaN(allNaN.Median) {
		t.Errorf("FourQuartiles(all-NaN) = %+v, want NaN", allNaN)
	}
}
