// Package metrics provides the small statistical toolkit the evaluation
// needs: sample quantiles computed with the Hyndman–Fan method the paper
// cites as the "widely-used four quartile method" [26], summary statistics,
// CDFs (Fig. 11), histograms (Fig. 8) and step time series (Fig. 10).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of xs using Hyndman & Fan's
// definition 7 (linear interpolation of order statistics; the default of R
// and the method behind standard quartile reporting). It returns NaN for an
// empty sample and clamps p into [0,1].
//
// NaN policy: NaN observations are stripped before the quantile is
// computed, so one poisoned measurement cannot corrupt every order
// statistic (sort.Float64s gives NaNs an arbitrary-looking position).
// A sample that is entirely NaN behaves like an empty one and returns NaN.
func Quantile(xs []float64, p float64) float64 {
	s := sortedClean(xs)
	if len(s) == 0 {
		return math.NaN()
	}
	return quantileSorted(s, p)
}

// sortedClean returns a sorted copy of xs with NaNs stripped (the shared
// NaN policy of Quantile and FourQuartiles).
func sortedClean(xs []float64) []float64 {
	s := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			s = append(s, x)
		}
	}
	sort.Float64s(s)
	return s
}

// quantileSorted computes the Hyndman–Fan definition-7 quantile of an
// already sorted, NaN-free, non-empty sample.
func quantileSorted(s []float64, p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	h := (float64(len(s)) - 1) * p
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return s[lo]
	}
	return s[lo] + (h-float64(lo))*(s[hi]-s[lo])
}

// Quartiles holds the four-quartile summary of a sample.
type Quartiles struct {
	Min, Q1, Median, Q3, Max float64
}

// FourQuartiles computes the quartile summary the paper reports cluster
// averages with (Figs. 3 and 15). The sample is copied and sorted exactly
// once; all five order statistics come from that one sorted slice, keeping
// Quantile's contract (Hyndman–Fan definition 7, NaNs stripped) without
// its five-fold copy-and-sort cost.
func FourQuartiles(xs []float64) Quartiles {
	s := sortedClean(xs)
	if len(s) == 0 {
		nan := math.NaN()
		return Quartiles{Min: nan, Q1: nan, Median: nan, Q3: nan, Max: nan}
	}
	return Quartiles{
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
	}
}

// Mid returns Tukey's trimean of the quartile summary,
// (Q1 + 2·Median + Q3) / 4 — a robust location estimate for skewed
// samples that weights the median twice as heavily as the hinges. (An
// earlier revision averaged Q1, median and Q3 equally, which is neither
// the midhinge nor the trimean; the estimator is pinned by test now.)
func (q Quartiles) Mid() float64 { return (q.Q1 + 2*q.Median + q.Q3) / 4 }

// String renders the summary compactly.
func (q Quartiles) String() string {
	return fmt.Sprintf("min=%.3g q1=%.3g med=%.3g q3=%.3g max=%.3g",
		q.Min, q.Q1, q.Median, q.Q3, q.Max)
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the total of the sample.
func Sum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// GeoMean returns the geometric mean of a positive sample, or NaN if the
// sample is empty or contains non-positive values. Speedup aggregation
// across TPC-H queries uses it.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // cumulative fraction of the sample ≤ X
}

// CDF returns the empirical CDF of the sample as sorted points.
// (Repeated-sort audit: CDF copies and sorts exactly once, and
// FractionBelow is a single linear scan — neither shares FourQuartiles'
// old sort-per-quantile shape.)
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pts := make([]CDFPoint, len(s))
	for i, x := range s {
		pts[i] = CDFPoint{X: x, P: float64(i+1) / float64(len(s))}
	}
	return pts
}

// FractionBelow returns the fraction of the sample strictly less than or
// equal to x.
func FractionBelow(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, v := range xs {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Histogram counts samples into fixed-width bins covering [lo, hi).
// Out-of-range observations are NOT clamped into the edge bins — clamping
// silently piles mass onto the first/last bin and distorts Fig. 8-style
// shapes — they are tallied in Underflow/Overflow instead. Total counts
// every observation, in range or not.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
	// Underflow counts observations with x < Lo; Overflow counts x ≥ Hi
	// (and NaN). Neither appears in Counts.
	Underflow, Overflow int
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("metrics: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation. Values outside [Lo, Hi) land in
// Underflow/Overflow, not in the edge bins.
func (h *Histogram) Add(x float64) {
	h.Total++
	if x < h.Lo {
		h.Underflow++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i >= len(h.Counts) || i < 0 { // i < 0: NaN comparisons are all false
		h.Overflow++
		return
	}
	h.Counts[i]++
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Counter accumulates named integer counts and reports them in sorted key
// order, so chaos-soak fault tallies print and hash deterministically.
type Counter struct {
	counts map[string]int64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int64)} }

// Add increments a named count by n.
func (c *Counter) Add(key string, n int64) { c.counts[key] += n }

// Get returns one named count (0 if never added).
func (c *Counter) Get(key string) int64 { return c.counts[key] }

// Total sums all counts.
func (c *Counter) Total() int64 {
	var t int64
	for _, v := range c.counts {
		t += v
	}
	return t
}

// Keys returns the counter's keys in sorted order.
func (c *Counter) Keys() []string {
	keys := make([]string, 0, len(c.counts))
	for k := range c.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders "k1=v1 k2=v2 ..." in key order.
func (c *Counter) String() string {
	var b []byte
	for i, k := range c.Keys() {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, fmt.Sprintf("%s=%d", k, c.counts[k])...)
	}
	return string(b)
}

// SeriesPoint is one sample of a step time series.
type SeriesPoint struct {
	T float64
	V float64
}

// Series accumulates a piecewise-constant time series by deltas, e.g. the
// number of running executors over time (Fig. 10).
type Series struct {
	deltas map[float64]float64
}

// NewSeries returns an empty series.
func NewSeries() *Series { return &Series{deltas: make(map[float64]float64)} }

// Delta records a change of v at time t.
func (s *Series) Delta(t, v float64) { s.deltas[t] += v }

// Points integrates the deltas into the running value sampled at every
// change point, in time order.
func (s *Series) Points() []SeriesPoint {
	ts := make([]float64, 0, len(s.deltas))
	for t := range s.deltas {
		ts = append(ts, t)
	}
	sort.Float64s(ts)
	out := make([]SeriesPoint, 0, len(ts))
	run := 0.0
	for _, t := range ts {
		run += s.deltas[t]
		out = append(out, SeriesPoint{T: t, V: run})
	}
	return out
}

// Sample returns the series value at regular intervals over [0, end],
// carrying the last value forward; convenient for printing Fig. 10-style
// rows. step must be positive: a zero or negative step would never advance
// the sampling clock (an unbounded allocation loop), so it panics.
func (s *Series) Sample(end, step float64) []SeriesPoint {
	if step <= 0 || math.IsNaN(step) {
		panic(fmt.Sprintf("metrics: Series.Sample step %v must be positive", step))
	}
	pts := s.Points()
	var out []SeriesPoint
	i, cur := 0, 0.0
	for t := 0.0; t <= end+1e-9; t += step {
		for i < len(pts) && pts[i].T <= t {
			cur = pts[i].V
			i++
		}
		out = append(out, SeriesPoint{T: t, V: cur})
	}
	return out
}

// Max returns the maximum value the series ever reaches (0 for empty).
func (s *Series) Max() float64 {
	var m float64
	for _, p := range s.Points() {
		if p.V > m {
			m = p.V
		}
	}
	return m
}
