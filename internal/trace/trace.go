// Package trace generates production-like job workloads calibrated to the
// characteristics the paper publishes in Fig. 8: mean job runtime ~30 s with
// more than 90% of jobs under 120 s, more than 80% of jobs with at most 80
// tasks and 4 stages, and failure times with ~50% within 30 s and ~90%
// within 200 s of job start. The generator is fully seeded, so a trace is a
// pure function of its Spec.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"swift/internal/dag"
)

// Spec configures a trace.
type Spec struct {
	Jobs int
	Seed int64
	// ArrivalWindow is the span in seconds over which jobs arrive
	// (uniformly); 0 means all jobs arrive at t=0.
	ArrivalWindow float64
	// Scale multiplies task counts, for experiments that need bigger
	// jobs than the production mix (Fig. 12's medium/large categories,
	// Fig. 16's 140k-executor runs). Default 1.
	Scale float64
	// RuntimeCap truncates the sampled per-job intended runtime (0 = no
	// cap). The strong-scaling experiment caps the tail so a single
	// straggler job's critical path does not bound the makespan.
	RuntimeCap float64
	// Tenants switches the generator to a multi-tenant arrival process:
	// each entry draws its jobs from its own sub-RNG (seeded from Seed and
	// the tenant's position, so adding a tenant never perturbs another's
	// stream) and tags them with its name. When empty the generator runs
	// the original single-stream path, byte-identical to earlier versions;
	// Jobs/ArrivalWindow are ignored when Tenants is set.
	Tenants []TenantSpec
}

// TenantSpec configures one tenant's workload within a multi-tenant trace.
type TenantSpec struct {
	Name string
	Jobs int
	// Rate is the tenant's mean Poisson arrival rate in jobs/second.
	// When 0 the tenant's jobs spread uniformly over ArrivalWindow
	// (which then must be > 0).
	Rate float64
	// ArrivalWindow bounds uniform arrivals when Rate is 0.
	ArrivalWindow float64
	// BurstAt/BurstDur/BurstFactor carve a burst window out of the
	// Poisson process: inside [BurstAt, BurstAt+BurstDur) the arrival
	// rate is multiplied by BurstFactor. Zero BurstFactor or BurstDur
	// means no burst.
	BurstAt     float64
	BurstDur    float64
	BurstFactor float64
	// Scale/RuntimeCap override the Spec-level values when > 0.
	Scale      float64
	RuntimeCap float64
}

// Job is one trace entry.
type Job struct {
	Job      *dag.Job
	SubmitAt float64 // seconds
}

// Trace is a generated workload.
type Trace struct {
	Spec Spec
	Jobs []Job
}

// Lognormal parameters fitted to Fig. 8 (see package comment):
// runtime: median 15 s, σ = 1.1  → mean ≈ 27 s, P(<120 s) ≈ 0.97
// tasks:   median 25,   σ = 1.2  → P(≤80) ≈ 0.83
const (
	runtimeMedian = 15.0
	runtimeSigma  = 1.1
	tasksMedian   = 22.0
	tasksSigma    = 1.2
)

func lognormal(r *rand.Rand, median, sigma float64) float64 {
	return median * math.Exp(sigma*r.NormFloat64())
}

// stageCount samples the per-job stage count: 80%+ of jobs have ≤4 stages.
func stageCount(r *rand.Rand) int {
	x := r.Float64()
	switch {
	case x < 0.28:
		return 2
	case x < 0.55:
		return 3
	case x < 0.82:
		return 4
	case x < 0.92:
		return 5
	case x < 0.97:
		return 6
	default:
		return 7 + r.Intn(4)
	}
}

// Generate builds a trace from the spec.
func Generate(spec Spec) *Trace {
	if len(spec.Tenants) > 0 {
		return generateTenants(spec)
	}
	if spec.Jobs <= 0 {
		panic("trace: job count must be positive")
	}
	if spec.Scale <= 0 {
		spec.Scale = 1
	}
	r := rand.New(rand.NewSource(spec.Seed))
	t := &Trace{Spec: spec}
	for i := 0; i < spec.Jobs; i++ {
		job := synthJob(r, fmt.Sprintf("job-%04d", i), spec.Scale, spec.RuntimeCap)
		at := 0.0
		if spec.ArrivalWindow > 0 {
			at = r.Float64() * spec.ArrivalWindow
		}
		t.Jobs = append(t.Jobs, Job{Job: job, SubmitAt: at})
	}
	return t
}

// tenantSeed derives a sub-seed for the tenant at position i, decorrelated
// from the base seed and from other tenants by a golden-ratio multiplier
// (overflow wraps, which is fine for a seed).
func tenantSeed(base int64, i int) int64 {
	return base + int64(i+1)*-0x61C8864680B583EB // 0x9E3779B97F4A7C15 as int64
}

// generateTenants builds the multi-tenant trace: each tenant's jobs and
// arrival times come from that tenant's own derived-seed RNG, then the
// streams merge in arrival order (ties broken by job ID, so the merged
// order — and therefore FIFO submission order — is deterministic).
func generateTenants(spec Spec) *Trace {
	t := &Trace{Spec: spec}
	for ti, ts := range spec.Tenants {
		if ts.Jobs <= 0 {
			panic(fmt.Sprintf("trace: tenant %q job count must be positive", ts.Name))
		}
		if ts.Rate <= 0 && ts.ArrivalWindow <= 0 {
			panic(fmt.Sprintf("trace: tenant %q needs Rate or ArrivalWindow", ts.Name))
		}
		scale, rcap := ts.Scale, ts.RuntimeCap
		if scale <= 0 {
			scale = spec.Scale
		}
		if scale <= 0 {
			scale = 1
		}
		if rcap <= 0 {
			rcap = spec.RuntimeCap
		}
		r := rand.New(rand.NewSource(tenantSeed(spec.Seed, ti)))
		at := 0.0
		for i := 0; i < ts.Jobs; i++ {
			job := synthJob(r, fmt.Sprintf("%s-%04d", ts.Name, i), scale, rcap)
			job.Tenant = ts.Name
			if ts.Rate > 0 {
				// Inhomogeneous Poisson: exponential gap at the rate in
				// effect at the current time (burst windows multiply it).
				rate := ts.Rate
				if ts.BurstFactor > 1 && ts.BurstDur > 0 &&
					at >= ts.BurstAt && at < ts.BurstAt+ts.BurstDur {
					rate *= ts.BurstFactor
				}
				at += r.ExpFloat64() / rate
			} else {
				at = r.Float64() * ts.ArrivalWindow
			}
			t.Jobs = append(t.Jobs, Job{Job: job, SubmitAt: at})
		}
	}
	sort.SliceStable(t.Jobs, func(i, j int) bool {
		a, b := t.Jobs[i], t.Jobs[j]
		if a.SubmitAt != b.SubmitAt {
			return a.SubmitAt < b.SubmitAt
		}
		return a.Job.ID < b.Job.ID
	})
	return t
}

// synthJob builds one job: a chain (sometimes with a side input) of
// `stages` stages whose total intended runtime and task counts follow the
// Fig. 8 distributions. Roughly 60% of inter-stage edges carry global-sort
// operators and become barriers, matching the prevalence of order-by /
// group-by / join the paper cites (97 of 100 TPC-DS queries).
func synthJob(r *rand.Rand, id string, scale, runtimeCap float64) *dag.Job {
	stages := stageCount(r)
	// Job sizes are a mixture: the bulk follows the Fig. 8(b) body
	// (>80% at ≤80 tasks), plus a ~5% heavy class reaching the
	// ~2,000-task tail visible in the figure — the jobs whose whole-job
	// gang scheduling stalls JetScope in Fig. 10.
	var totalTasks int
	if r.Float64() < 0.06 {
		totalTasks = int(lognormal(r, 550, 0.8)*scale + 1)
	} else {
		totalTasks = int(lognormal(r, tasksMedian, tasksSigma)*scale + 1)
	}
	// Fig. 8(b)'s task-count axis tops out at 2,000 tasks; clamp the
	// tail accordingly (scaled experiments scale the clamp too).
	if max := int(2000 * scale); totalTasks > max {
		totalTasks = max
	}
	if totalTasks < stages {
		totalTasks = stages
	}
	runtime := lognormal(r, runtimeMedian, runtimeSigma)
	if runtime < 1 {
		runtime = 1
	}
	if runtimeCap > 0 && runtime > runtimeCap {
		runtime = runtimeCap
	}

	// Split tasks across stages with a front-heavy profile (scans are
	// the widest), and runtime across stages evenly-ish.
	weights := make([]float64, stages)
	sum := 0.0
	for i := range weights {
		w := 1.0 / float64(i+1)
		w *= 0.75 + 0.5*r.Float64()
		weights[i] = w
		sum += w
	}
	j := dag.NewJob(id)
	prev := ""
	perStageTime := runtime / float64(stages)
	for i := 0; i < stages; i++ {
		tasks := int(float64(totalTasks) * weights[i] / sum)
		if tasks < 1 {
			tasks = 1
		}
		name := fmt.Sprintf("S%d", i+1)
		barrier := i > 0 && r.Float64() < 0.6
		ops := []dag.Operator{dag.Op(dag.OpShuffleRead)}
		var scanBytes int64
		if i == 0 {
			ops = []dag.Operator{dag.Op(dag.OpTableScan)}
			scanBytes = int64(float64(tasks) * (20 + 100*r.Float64()) * float64(1<<20))
		}
		if barrier {
			ops = append(ops, dag.Op(dag.OpMergeSort))
		}
		if i == stages-1 {
			ops = append(ops, dag.Op(dag.OpAdhocSink))
		} else {
			ops = append(ops, dag.Op(dag.OpShuffleWrite))
		}
		st := &dag.Stage{
			Name: name, Tasks: tasks, Operators: ops, Idempotent: r.Float64() < 0.9,
			Cost: dag.Cost{
				ScanBytes:             scanBytes,
				ProcessSecondsPerTask: perStageTime * (0.6 + 0.8*r.Float64()),
			},
		}
		if err := j.AddStage(st); err != nil {
			panic("trace: " + err.Error())
		}
		if prev != "" {
			mode := dag.Pipeline
			if barrier {
				mode = dag.Barrier
			}
			bytes := int64(float64(tasks) * (5 + 40*r.Float64()) * float64(1<<20))
			if err := j.AddEdge(&dag.Edge{From: prev, To: name, Op: dag.OpShuffleRead, Mode: mode, Bytes: bytes}); err != nil {
				panic("trace: " + err.Error())
			}
		}
		prev = name
	}
	return j
}

// FailureTime samples a failure occurrence time relative to job start,
// matching Fig. 8(a)'s failed-job runtime curve (≈50% < 30 s, ≈90% < 200 s).
func FailureTime(r *rand.Rand) float64 {
	// Lognormal with median 30 s; P(<200 s) = Φ(ln(200/30)/σ) = 0.9
	// → σ = ln(6.67)/1.2816 ≈ 1.48.
	return lognormal(r, 30, 1.48)
}

// ShuffleCategoryJob builds a synthetic two-stage job whose single shuffle
// edge lands in the requested Fig. 12 size class: m×n producer/consumer
// tasks around 50×50 (small), 200×200 (medium) or 400×400+ (large).
func ShuffleCategoryJob(id string, m, n int, bytesPerMapTask int64, proc float64) *dag.Job {
	j := dag.NewJob(id)
	total := int64(m) * bytesPerMapTask
	stages := []*dag.Stage{
		{
			Name: "map", Tasks: m, Idempotent: true,
			Operators: []dag.Operator{dag.Op(dag.OpTableScan), dag.Op(dag.OpMergeSort), dag.Op(dag.OpShuffleWrite)},
			Cost:      dag.Cost{ScanBytes: total, ProcessSecondsPerTask: proc},
		},
		{
			Name: "reduce", Tasks: n, Idempotent: true,
			Operators: []dag.Operator{dag.Op(dag.OpShuffleRead), dag.Op(dag.OpAdhocSink)},
			Cost:      dag.Cost{ProcessSecondsPerTask: proc},
		},
	}
	for _, s := range stages {
		if err := j.AddStage(s); err != nil {
			panic("trace: " + err.Error())
		}
	}
	if err := j.AddEdge(&dag.Edge{From: "map", To: "reduce", Op: dag.OpShuffleRead, Bytes: total}); err != nil {
		panic("trace: " + err.Error())
	}
	j.Classify()
	return j
}
