package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	orig := Generate(Spec{Jobs: 60, Seed: 9, ArrivalWindow: 50})
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != len(orig.Jobs) {
		t.Fatalf("jobs = %d, want %d", len(got.Jobs), len(orig.Jobs))
	}
	for i := range got.Jobs {
		a, b := orig.Jobs[i], got.Jobs[i]
		if a.SubmitAt != b.SubmitAt || a.Job.ID != b.Job.ID {
			t.Fatalf("job %d header mismatch", i)
		}
		if a.Job.NumStages() != b.Job.NumStages() || a.Job.NumTasks() != b.Job.NumTasks() {
			t.Fatalf("job %d shape mismatch", i)
		}
		ae, be := a.Job.Edges(), b.Job.Edges()
		if len(ae) != len(be) {
			t.Fatalf("job %d edges mismatch", i)
		}
		for k := range ae {
			if ae[k].Mode != be[k].Mode || ae[k].Bytes != be[k].Bytes || ae[k].From != be[k].From {
				t.Fatalf("job %d edge %d mismatch: %+v vs %+v", i, k, ae[k], be[k])
			}
		}
		for _, name := range a.Job.StageNames() {
			sa, sb := a.Job.Stage(name), b.Job.Stage(name)
			if sb == nil || sa.Tasks != sb.Tasks || sa.Idempotent != sb.Idempotent {
				t.Fatalf("job %d stage %s mismatch", i, name)
			}
			if sa.Cost.ProcessSecondsPerTask != sb.Cost.ProcessSecondsPerTask ||
				sa.Cost.ScanBytes != sb.Cost.ScanBytes {
				t.Fatalf("job %d stage %s cost mismatch", i, name)
			}
		}
	}
	// A second write produces identical bytes.
	var buf2 bytes.Buffer
	if err := got.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := orig.Write(&buf3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
		t.Error("round-trip bytes differ")
	}
}

func TestTenantRoundTrip(t *testing.T) {
	orig := Generate(Spec{Seed: 4, Tenants: []TenantSpec{
		{Name: "prod", Jobs: 10, Rate: 1},
		{Name: "batch", Jobs: 10, ArrivalWindow: 30},
	}})
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig.Jobs {
		if got.Jobs[i].Job.Tenant != orig.Jobs[i].Job.Tenant {
			t.Fatalf("job %d tenant = %q, want %q", i, got.Jobs[i].Job.Tenant, orig.Jobs[i].Job.Tenant)
		}
	}
	// Untenanted traces serialise without the field at all.
	var plain bytes.Buffer
	if err := Generate(Spec{Jobs: 3, Seed: 1}).Write(&plain); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain.Bytes(), []byte(`"tenant"`)) {
		t.Error("untenanted trace serialised a tenant field")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("{bad json")); err == nil {
		t.Error("bad json accepted")
	}
	// Edge referencing an unknown stage.
	line := `{"id":"x","submit_at":0,"stages":[{"name":"a","tasks":1,"proc_sec":1}],"edges":[{"from":"a","to":"zzz","bytes":1}]}`
	if _, err := Read(strings.NewReader(line)); err == nil {
		t.Error("dangling edge accepted")
	}
	// Empty input is an empty trace.
	tr, err := Read(strings.NewReader(""))
	if err != nil || len(tr.Jobs) != 0 {
		t.Errorf("empty input: %v %v", tr, err)
	}
}
