package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"swift/internal/dag"
)

// Trace serialization: one JSON object per line, so production traces can
// be exported, inspected and replayed byte-identically across machines
// (`swifttrace -out trace.jsonl`, `swiftbench` replays).

type jsonStage struct {
	Name       string  `json:"name"`
	Tasks      int     `json:"tasks"`
	Idempotent bool    `json:"idempotent"`
	Sort       bool    `json:"sort,omitempty"`
	Scan       bool    `json:"scan,omitempty"`
	Sink       bool    `json:"sink,omitempty"`
	ScanBytes  int64   `json:"scan_bytes,omitempty"`
	ProcSec    float64 `json:"proc_sec"`
}

type jsonEdge struct {
	From    string `json:"from"`
	To      string `json:"to"`
	Barrier bool   `json:"barrier"`
	Bytes   int64  `json:"bytes"`
}

type jsonJob struct {
	ID       string      `json:"id"`
	Tenant   string      `json:"tenant,omitempty"`
	SubmitAt float64     `json:"submit_at"`
	Stages   []jsonStage `json:"stages"`
	Edges    []jsonEdge  `json:"edges"`
}

// Write serialises the trace as JSON lines.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, j := range t.Jobs {
		jj := jsonJob{ID: j.Job.ID, Tenant: j.Job.Tenant, SubmitAt: j.SubmitAt}
		for _, s := range j.Job.Stages() {
			js := jsonStage{
				Name: s.Name, Tasks: s.Tasks, Idempotent: s.Idempotent,
				ScanBytes: s.Cost.ScanBytes, ProcSec: s.Cost.ProcessSecondsPerTask,
			}
			for _, op := range s.Operators {
				switch op.Kind {
				case dag.OpMergeSort:
					js.Sort = true
				case dag.OpTableScan:
					js.Scan = true
				case dag.OpAdhocSink:
					js.Sink = true
				default:
					// other operators don't change the serialised shape
				}
			}
			jj.Stages = append(jj.Stages, js)
		}
		for _, e := range j.Job.Edges() {
			jj.Edges = append(jj.Edges, jsonEdge{
				From: e.From, To: e.To, Barrier: e.Mode == dag.Barrier, Bytes: e.Bytes,
			})
		}
		if err := enc.Encode(&jj); err != nil {
			return fmt.Errorf("trace: encode %s: %w", j.Job.ID, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSON-lines trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	dec := json.NewDecoder(r)
	for {
		var jj jsonJob
		if err := dec.Decode(&jj); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode: %w", err)
		}
		job := dag.NewJob(jj.ID)
		job.Tenant = jj.Tenant
		for _, s := range jj.Stages {
			var ops []dag.Operator
			if s.Scan {
				ops = append(ops, dag.Op(dag.OpTableScan))
			} else {
				ops = append(ops, dag.Op(dag.OpShuffleRead))
			}
			if s.Sort {
				ops = append(ops, dag.Op(dag.OpMergeSort))
			}
			if s.Sink {
				ops = append(ops, dag.Op(dag.OpAdhocSink))
			} else {
				ops = append(ops, dag.Op(dag.OpShuffleWrite))
			}
			st := &dag.Stage{
				Name: s.Name, Tasks: s.Tasks, Operators: ops, Idempotent: s.Idempotent,
				Cost: dag.Cost{ScanBytes: s.ScanBytes, ProcessSecondsPerTask: s.ProcSec},
			}
			if err := job.AddStage(st); err != nil {
				return nil, fmt.Errorf("trace: job %s: %w", jj.ID, err)
			}
		}
		for _, e := range jj.Edges {
			mode := dag.Pipeline
			if e.Barrier {
				mode = dag.Barrier
			}
			de := &dag.Edge{From: e.From, To: e.To, Op: dag.OpShuffleRead, Mode: mode, Bytes: e.Bytes}
			if err := job.AddEdge(de); err != nil {
				return nil, fmt.Errorf("trace: job %s: %w", jj.ID, err)
			}
		}
		if err := job.Validate(); err != nil {
			return nil, fmt.Errorf("trace: job %s: %w", jj.ID, err)
		}
		t.Jobs = append(t.Jobs, Job{Job: job, SubmitAt: jj.SubmitAt})
	}
	return t, nil
}
