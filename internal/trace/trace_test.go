package trace

import (
	"math/rand"
	"testing"

	"swift/internal/dag"
	"swift/internal/graphlet"
	"swift/internal/metrics"
)

func TestGenerateMatchesFig8Characteristics(t *testing.T) {
	tr := Generate(Spec{Jobs: 2000, Seed: 42, ArrivalWindow: 200})
	if len(tr.Jobs) != 2000 {
		t.Fatalf("jobs = %d", len(tr.Jobs))
	}
	var tasks, stages []float64
	for _, j := range tr.Jobs {
		tasks = append(tasks, float64(j.Job.NumTasks()))
		stages = append(stages, float64(j.Job.NumStages()))
		if j.SubmitAt < 0 || j.SubmitAt > 200 {
			t.Fatalf("arrival out of window: %f", j.SubmitAt)
		}
		if err := j.Job.Validate(); err != nil {
			t.Fatalf("invalid job: %v", err)
		}
	}
	// Fig. 8(b): >80% of jobs have ≤80 tasks and ≤4 stages.
	if got := metrics.FractionBelow(tasks, 80); got < 0.8 {
		t.Errorf("fraction with ≤80 tasks = %.3f, want ≥0.8", got)
	}
	if got := metrics.FractionBelow(stages, 4); got < 0.8 {
		t.Errorf("fraction with ≤4 stages = %.3f, want ≥0.8", got)
	}
	// Intended runtimes: mean ≈30s, >90% under 120s. The intended
	// runtime of a job is the sum of its per-stage critical processing.
	var runtimes []float64
	for _, j := range tr.Jobs {
		total := 0.0
		for _, s := range j.Job.Stages() {
			total += s.Cost.ProcessSecondsPerTask
		}
		runtimes = append(runtimes, total)
	}
	mean := metrics.Mean(runtimes)
	if mean < 15 || mean > 50 {
		t.Errorf("mean intended runtime = %.1fs, want ≈30s", mean)
	}
	if got := metrics.FractionBelow(runtimes, 120); got < 0.9 {
		t.Errorf("fraction under 120s = %.3f, want ≥0.9", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Spec{Jobs: 50, Seed: 7, ArrivalWindow: 100})
	b := Generate(Spec{Jobs: 50, Seed: 7, ArrivalWindow: 100})
	for i := range a.Jobs {
		if a.Jobs[i].SubmitAt != b.Jobs[i].SubmitAt {
			t.Fatal("arrivals differ")
		}
		if a.Jobs[i].Job.String() != b.Jobs[i].Job.String() {
			t.Fatal("jobs differ")
		}
	}
	c := Generate(Spec{Jobs: 50, Seed: 8, ArrivalWindow: 100})
	same := true
	for i := range a.Jobs {
		if a.Jobs[i].Job.String() != c.Jobs[i].Job.String() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGeneratedJobsPartitionable(t *testing.T) {
	tr := Generate(Spec{Jobs: 200, Seed: 3})
	for _, j := range tr.Jobs {
		gs, err := graphlet.Partition(j.Job)
		if err != nil {
			t.Fatalf("%s: %v", j.Job.ID, err)
		}
		if _, err := graphlet.SubmissionOrder(gs); err != nil {
			t.Fatalf("%s: %v", j.Job.ID, err)
		}
	}
}

func TestScaleMultipliesTasks(t *testing.T) {
	small := Generate(Spec{Jobs: 300, Seed: 5, Scale: 1})
	big := Generate(Spec{Jobs: 300, Seed: 5, Scale: 8})
	sum := func(tr *Trace) int {
		n := 0
		for _, j := range tr.Jobs {
			n += j.Job.NumTasks()
		}
		return n
	}
	if s, b := sum(small), sum(big); b < 4*s {
		t.Errorf("scale 8 gave %d tasks vs %d at scale 1", b, s)
	}
}

func TestFailureTimeDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var xs []float64
	for i := 0; i < 5000; i++ {
		xs = append(xs, FailureTime(r))
	}
	within30 := metrics.FractionBelow(xs, 30)
	within200 := metrics.FractionBelow(xs, 200)
	if within30 < 0.4 || within30 > 0.6 {
		t.Errorf("P(<30s) = %.3f, want ≈0.5", within30)
	}
	if within200 < 0.85 || within200 > 0.95 {
		t.Errorf("P(<200s) = %.3f, want ≈0.9", within200)
	}
}

func TestShuffleCategoryJob(t *testing.T) {
	j := ShuffleCategoryJob("m", 200, 200, 100<<20, 2)
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	e := j.Edges()[0]
	if j.ShuffleEdgeSize(e) != 40000 {
		t.Errorf("edge size = %d", j.ShuffleEdgeSize(e))
	}
	if e.Mode != dag.Barrier {
		t.Error("category job shuffle should be a barrier (sorted)")
	}
	if e.Bytes != 200*100<<20 {
		t.Errorf("bytes = %d", e.Bytes)
	}
}

func TestGenerateTenants(t *testing.T) {
	spec := Spec{Seed: 11, Tenants: []TenantSpec{
		{Name: "a", Jobs: 40, Rate: 0.5},
		{Name: "b", Jobs: 40, Rate: 0.5, BurstAt: 20, BurstDur: 40, BurstFactor: 10},
		{Name: "c", Jobs: 20, ArrivalWindow: 100},
	}}
	tr := Generate(spec)
	if len(tr.Jobs) != 100 {
		t.Fatalf("jobs = %d, want 100", len(tr.Jobs))
	}
	perTenant := map[string]int{}
	last := -1.0
	for _, j := range tr.Jobs {
		perTenant[j.Job.Tenant]++
		if j.SubmitAt < last {
			t.Fatalf("merged trace not sorted by arrival: %f after %f", j.SubmitAt, last)
		}
		last = j.SubmitAt
		if err := j.Job.Validate(); err != nil {
			t.Fatalf("invalid job %s: %v", j.Job.ID, err)
		}
	}
	if perTenant["a"] != 40 || perTenant["b"] != 40 || perTenant["c"] != 20 {
		t.Fatalf("per-tenant counts = %v", perTenant)
	}
	// Determinism: regenerating yields the identical merged stream.
	tr2 := Generate(spec)
	for i := range tr.Jobs {
		if tr.Jobs[i].SubmitAt != tr2.Jobs[i].SubmitAt || tr.Jobs[i].Job.ID != tr2.Jobs[i].Job.ID {
			t.Fatal("multi-tenant trace not deterministic")
		}
	}
	// Stream isolation: dropping tenant c must not perturb a's stream.
	tr3 := Generate(Spec{Seed: 11, Tenants: spec.Tenants[:2]})
	var a13, a3 []float64
	for _, j := range tr.Jobs {
		if j.Job.Tenant == "a" {
			a13 = append(a13, j.SubmitAt)
		}
	}
	for _, j := range tr3.Jobs {
		if j.Job.Tenant == "a" {
			a3 = append(a3, j.SubmitAt)
		}
	}
	for i := range a13 {
		if a13[i] != a3[i] {
			t.Fatal("tenant a's arrival stream changed when tenant c was removed")
		}
	}
}

func TestTenantBurstCompressesArrivals(t *testing.T) {
	flat := Generate(Spec{Seed: 3, Tenants: []TenantSpec{{Name: "x", Jobs: 200, Rate: 1}}})
	burst := Generate(Spec{Seed: 3, Tenants: []TenantSpec{
		{Name: "x", Jobs: 200, Rate: 1, BurstAt: 0, BurstDur: 1e9, BurstFactor: 10},
	}})
	span := func(tr *Trace) float64 { return tr.Jobs[len(tr.Jobs)-1].SubmitAt }
	if s, b := span(flat), span(burst); b > s/4 {
		t.Errorf("10x burst span = %.1fs vs flat %.1fs, want ≥4x compression", b, s)
	}
}

func TestGenerateTenantsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("tenant without Rate or ArrivalWindow did not panic")
		}
	}()
	Generate(Spec{Seed: 1, Tenants: []TenantSpec{{Name: "a", Jobs: 5}}})
}

func TestGenerateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero jobs did not panic")
		}
	}()
	Generate(Spec{Jobs: 0})
}
