package exp

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"swift/internal/obs"
)

// The parallel sweep runner. Every experiment (and, in cmd/swiftchaos,
// every soak seed) is an isolated simulation: it builds its own engine,
// its own RNGs and — via Config.Obs — its own recorder, so fanning runs
// across OS threads cannot perturb any run's virtual execution. The only
// nondeterminism a worker pool introduces is completion ORDER, and Sweep
// erases it by writing each result into its input slot: res[i] depends
// only on run(i), never on scheduling. RunAll then exposes the proof:
// per-run obs stream hashes, which must be byte-for-byte identical
// whether the sweep ran on one worker or sixteen.

// ErrUnknown reports a sweep name that no experiment registers.
var ErrUnknown = errors.New("unknown experiment")

// Sweep runs run(0..n-1) on a pool of workers and returns the results in
// input order. workers <= 0 means GOMAXPROCS; workers == 1 degenerates to
// a plain serial loop (no goroutines, no channels), which doubles as the
// reference execution for determinism checks.
func Sweep[T any](n, workers int, run func(i int) T) []T {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	res := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			res[i] = run(i)
		}
		return res
	}
	type slot struct {
		i int
		v T
	}
	jobs := make(chan int)
	out := make(chan slot)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out <- slot{i, run(i)}
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(out)
	}()
	// Results arrive in completion order; the indexed write restores input
	// order, so the merged slice is independent of worker scheduling.
	for s := range out {
		res[s.i] = s.v
	}
	return res
}

// RunResult is one experiment's outcome in a RunAll sweep.
type RunResult struct {
	Name   string
	Output string // the rendered paper-style report
	Hash   uint64 // obs stream hash of every simulated run the experiment made
	Err    error  // ErrUnknown for unregistered names, else the report error
}

// RunAll executes the named experiments on a worker pool and returns their
// reports in input order. Each experiment gets a fresh obs recorder (any
// recorder already present in cfg is replaced), so its Hash witnesses that
// experiment's simulated event stream in isolation: RunAll(names, cfg, 1)
// and RunAll(names, cfg, k) must agree on every Output and every Hash.
func RunAll(names []string, cfg Config, workers int) []RunResult {
	return Sweep(len(names), workers, func(i int) RunResult {
		rec := obs.New()
		c := cfg
		c.Obs = rec
		var buf bytes.Buffer
		ok, err := Run(names[i], c, &buf)
		if !ok {
			err = fmt.Errorf("%w %q", ErrUnknown, names[i])
		}
		return RunResult{Name: names[i], Output: buf.String(), Hash: rec.StreamHash(), Err: err}
	})
}
