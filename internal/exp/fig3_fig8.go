package exp

import (
	"swift/internal/baseline"
	"swift/internal/metrics"
	"swift/internal/trace"
)

// Fig3Row is one bar of Fig. 3: the average IdleRatio of one production
// cluster when gang scheduling is adopted.
type Fig3Row struct {
	Cluster      string
	IdleRatioPct float64 // four-quartile average, percent
}

// Fig3IdleRatio measures the IdleRatio of trace jobs under whole-job gang
// scheduling on four cluster profiles, reproducing Fig. 3. The paper's
// clusters differ in workload mix; here each profile replays a trace with a
// different seed (and thus job mix). Paper values: 3.81%, 13.15%, 14.45%,
// 14.92%.
func Fig3IdleRatio(cfg Config) []Fig3Row {
	jobs := cfg.traceJobs(500)
	if jobs < 150 {
		jobs = 150 // keep the per-cluster sample meaningful at reduced scale
	}
	var rows []Fig3Row
	for i := 0; i < 4; i++ {
		tr := trace.Generate(trace.Spec{
			Jobs:          jobs,
			Seed:          cfg.Seed + int64(i)*101,
			ArrivalWindow: 120,
		})
		res := cfg.runTrace(tr, cfg.cluster100(), baseline.JetScope(), cfg.Seed+int64(i))
		// Per-job mean task IdleRatio, then the four-quartile average
		// across jobs (the paper reports per-cluster averages of job
		// measurements).
		var perJob []float64
		for _, jr := range res.SortedJobs() {
			if !jr.Completed || len(jr.Samples) == 0 {
				continue
			}
			var xs []float64
			for _, s := range jr.Samples {
				xs = append(xs, s.IdleRatio())
			}
			perJob = append(perJob, metrics.Mean(xs))
		}
		q := metrics.FourQuartiles(perJob)
		rows = append(rows, Fig3Row{
			Cluster:      string(rune('1' + i)),
			IdleRatioPct: q.Mid() * 100,
		})
	}
	return rows
}

// Fig8Stats summarises the generated production trace the way Fig. 8
// characterises the real one.
type Fig8Stats struct {
	Jobs                int
	MeanRuntimeSec      float64
	FracRuntimeUnder120 float64
	FracTasksUnder80    float64
	FracStagesUnder4    float64
	RuntimeQuartiles    metrics.Quartiles
	TaskQuartiles       metrics.Quartiles
}

// Fig8TraceCharacteristics replays the 2,000-job trace on Swift and reports
// the measured job-runtime and size distributions. Paper: average runtime
// 30 s, >90% under 120 s, >80% with ≤80 tasks and ≤4 stages.
func Fig8TraceCharacteristics(cfg Config) Fig8Stats {
	tr := trace.Generate(trace.Spec{Jobs: cfg.traceJobs(2000), Seed: cfg.Seed, ArrivalWindow: 500})
	res := cfg.runTrace(tr, cfg.cluster100(), baseline.Swift(), cfg.Seed)
	var runtimes, tasks, stages []float64
	for _, j := range tr.Jobs {
		jr := res.Jobs[j.Job.ID]
		if jr == nil || !jr.Completed {
			continue
		}
		runtimes = append(runtimes, jr.Duration())
		tasks = append(tasks, float64(j.Job.NumTasks()))
		stages = append(stages, float64(j.Job.NumStages()))
	}
	return Fig8Stats{
		Jobs:                len(runtimes),
		MeanRuntimeSec:      metrics.Mean(runtimes),
		FracRuntimeUnder120: metrics.FractionBelow(runtimes, 120),
		FracTasksUnder80:    metrics.FractionBelow(tasks, 80),
		FracStagesUnder4:    metrics.FractionBelow(stages, 4),
		RuntimeQuartiles:    metrics.FourQuartiles(runtimes),
		TaskQuartiles:       metrics.FourQuartiles(tasks),
	}
}
