package exp

import "testing"

// TestShuffleRecoveryReplicaCheaper is the experiment's acceptance bar:
// under the identical seed and fault schedule, the replicated arm must
// recover strictly more cheaply than the recompute arm — fewer producer
// re-runs, because surviving replicas absorb the losses.
func TestShuffleRecoveryReplicaCheaper(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Reduced = true
	rows := ShuffleRecovery(cfg)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	recompute, replica := rows[0], rows[1]
	if recompute.Policy != "recompute" || replica.Policy != "replica" {
		t.Fatalf("unexpected arm order: %q, %q", recompute.Policy, replica.Policy)
	}
	for _, r := range rows {
		if r.Violations != 0 {
			t.Errorf("%s arm reported %d invariant violations", r.Policy, r.Violations)
		}
		if r.Completed == 0 {
			t.Errorf("%s arm completed no jobs", r.Policy)
		}
	}
	if replica.Recomputes >= recompute.Recomputes {
		t.Errorf("replica arm not strictly cheaper: recomputes %d vs %d",
			replica.Recomputes, recompute.Recomputes)
	}
	if replica.ReplicaHits == 0 {
		t.Error("replica arm never served from a replica — schedule too gentle to test failover")
	}
	if recompute.ReplicaHits != 0 {
		t.Errorf("R=1 arm claims %d replica hits", recompute.ReplicaHits)
	}
}

// TestShuffleRecoveryDeterministic re-runs one arm and demands an identical
// trace hash: replication and its recovery events are part of the
// determinism witness.
func TestShuffleRecoveryDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Reduced = true
	a := ShuffleRecovery(cfg)
	b := ShuffleRecovery(cfg)
	for i := range a {
		if a[i].TraceHash != b[i].TraceHash {
			t.Errorf("%s arm hash differs across reruns: %016x vs %016x",
				a[i].Policy, a[i].TraceHash, b[i].TraceHash)
		}
	}
}
