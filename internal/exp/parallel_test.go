package exp

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestSweepOrderAndCoverage(t *testing.T) {
	// Every index runs exactly once and lands in its own slot, whatever the
	// worker count (including workers > n and the serial degenerate case).
	for _, workers := range []int{1, 2, 7, 64, 0} {
		var calls atomic.Int64
		res := Sweep(100, workers, func(i int) int {
			calls.Add(1)
			return i * i
		})
		if calls.Load() != 100 {
			t.Fatalf("workers=%d: %d calls, want 100", workers, calls.Load())
		}
		for i, v := range res {
			if v != i*i {
				t.Fatalf("workers=%d: res[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
	if res := Sweep(0, 4, func(i int) int { return i }); len(res) != 0 {
		t.Fatalf("empty sweep returned %d results", len(res))
	}
}

// TestRunAllParallelMatchesSerial is the determinism witness for the sweep
// runner: four workers must reproduce the one-worker outputs and obs stream
// hashes byte for byte.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	cfg := Config{Reduced: true, Seed: 3}
	names := []string{"fig3", "fig9a", "fig12", "fig14", "table1"}
	serial := RunAll(names, cfg, 1)
	parallel := RunAll(names, cfg, 4)
	if len(serial) != len(names) || len(parallel) != len(names) {
		t.Fatalf("result counts %d/%d, want %d", len(serial), len(parallel), len(names))
	}
	emptyHash := RunAll([]string{"nope"}, cfg, 1)[0].Hash
	for i, name := range names {
		s, p := serial[i], parallel[i]
		if s.Name != name || p.Name != name {
			t.Fatalf("slot %d holds %q/%q, want %q", i, s.Name, p.Name, name)
		}
		if s.Err != nil || p.Err != nil {
			t.Fatalf("%s: errors %v / %v", name, s.Err, p.Err)
		}
		if s.Output == "" || s.Output != p.Output {
			t.Errorf("%s: parallel output differs from serial (%dB vs %dB)", name, len(p.Output), len(s.Output))
		}
		if s.Hash != p.Hash {
			t.Errorf("%s: parallel hash %016x != serial %016x", name, p.Hash, s.Hash)
		}
		if s.Hash == emptyHash {
			t.Errorf("%s: stream hash is the empty-stream hash; recorder not plumbed through", name)
		}
	}
}

func TestRunAllUnknownName(t *testing.T) {
	res := RunAll([]string{"fig12", "nope"}, Config{Reduced: true, Seed: 1}, 2)
	if res[0].Err != nil {
		t.Fatalf("fig12: %v", res[0].Err)
	}
	if !errors.Is(res[1].Err, ErrUnknown) {
		t.Fatalf("unknown name error = %v, want ErrUnknown", res[1].Err)
	}
}

// BenchmarkRunAllReduced measures the reduced sweep serial vs parallel —
// the speedup column of the EXPERIMENTS.md wall-clock table.
func BenchmarkRunAllReduced(b *testing.B) {
	cfg := Config{Reduced: true, Seed: 1}
	names := []string{"fig3", "fig9a", "fig9b", "table1", "fig12", "fig14"}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, r := range RunAll(names, cfg, workers) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}
