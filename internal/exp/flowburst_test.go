package exp

import "testing"

// TestFlowBurstShape asserts the sustained-load sweep's shape: baseline
// load admits everything with no shedding, 10x load sheds, admission waits
// grow with intensity, and the in-flight gauge respects the budget bound
// max(budget, largest job) at every intensity.
func TestFlowBurstShape(t *testing.T) {
	rows := FlowBurst(cfg())
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		t.Logf("%+v", r)
		if r.Admitted+r.Shed+r.Queued < r.Offered-r.Queued {
			// Every offer is decided: admitted directly, queued (then
			// admitted or still parked), or shed.
			t.Errorf("%s: decisions do not cover offers: %+v", r.Burst, r)
		}
		bound := r.Budget
		if r.MaxJobTasks > bound {
			bound = r.MaxJobTasks
		}
		if r.MaxInFlight > bound {
			t.Errorf("%s: in-flight peak %d exceeds max(budget %d, largest job %d)",
				r.Burst, r.MaxInFlight, r.Budget, r.MaxJobTasks)
		}
		if r.Completed > r.Admitted {
			t.Errorf("%s: completed %d > admitted %d", r.Burst, r.Completed, r.Admitted)
		}
	}
	if base := rows[0]; base.Shed != 0 || base.Admitted != base.Offered {
		t.Errorf("1x load should admit everything: %+v", base)
	}
	if storm := rows[2]; storm.Shed == 0 {
		t.Errorf("10x load never shed: %+v", storm)
	}
	if rows[2].WaitP99 < rows[0].WaitP99 {
		t.Errorf("wait p99 should not shrink under 10x load: %.2f vs %.2f",
			rows[2].WaitP99, rows[0].WaitP99)
	}
}

// TestFlowBurstDeterministic pins the sweep as a pure function of its
// seed, so the flowburst report can join the RunAll determinism witness.
func TestFlowBurstDeterministic(t *testing.T) {
	a, b := FlowBurst(cfg()), FlowBurst(cfg())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
