package exp

import (
	"swift/internal/baseline"
	"swift/internal/core"
	"swift/internal/shuffle"
	"swift/internal/trace"
)

// Ablations beyond the paper's figures, for the design decisions DESIGN.md
// calls out.

// AblationShuffleRow compares one shuffle policy over a mixed workload.
type AblationShuffleRow struct {
	Policy  string
	MeanSec float64
}

// AblationAdaptiveShuffle runs a mixed small/medium/large shuffle workload
// under the adaptive policy and under each fixed mode. The adaptive policy
// should be at worst marginally behind the per-class winner and strictly
// better than the worst fixed mode — the justification for runtime
// selection (Section III-B).
func AblationAdaptiveShuffle(cfg Config) []AblationShuffleRow {
	type jobSpec struct {
		m, n    int
		perTask int64
	}
	specs := []jobSpec{
		{60, 60, 256 << 20},
		{200, 200, 1 << 30},
		{400, 400, 1 << 30},
	}
	if !cfg.Reduced {
		specs = append(specs, jobSpec{1000, 1000, 1 << 30})
	}
	policies := []struct {
		name string
		opts core.Options
	}{
		{"adaptive", baseline.Swift()},
		{"direct", baseline.FixedShuffle(shuffle.Direct)},
		{"local", baseline.FixedShuffle(shuffle.Local)},
		{"remote", baseline.FixedShuffle(shuffle.Remote)},
	}
	ccfg := cfg.cluster2000()
	var rows []AblationShuffleRow
	for _, p := range policies {
		var total float64
		count := 0
		for i, s := range specs {
			job := trace.ShuffleCategoryJob(p.name+"-"+string(rune('a'+i)), s.m, s.n, s.perTask, 2)
			jr, _ := cfg.runOne(job, ccfg, p.opts, cfg.Seed)
			if jr != nil && jr.Completed {
				total += jr.Duration()
				count++
			}
		}
		rows = append(rows, AblationShuffleRow{Policy: p.name, MeanSec: total / float64(count)})
	}
	return rows
}

// AblationPartitionRow compares one partitioning policy on a trace.
type AblationPartitionRow struct {
	Policy      string
	MakespanSec float64
	MeanIdle    float64 // mean task IdleRatio
}

// AblationPartition replays one saturated trace under the three DAG
// partitioning strategies with everything else fixed (adaptive shuffle,
// fine-grained recovery): Swift's graphlets, Spark-style per-stage
// scheduling, and JetScope-style whole-job gangs. Graphlets should match
// per-stage on utilization while avoiding its per-stage scheduling latency,
// and beat whole-job on both.
func AblationPartition(cfg Config) []AblationPartitionRow {
	tr := fig10Trace(cfg)
	policies := []struct {
		name string
		opts core.Options
	}{
		{"graphlet", baseline.Swift()},
		{"per-stage", func() core.Options {
			o := core.DefaultOptions()
			o.Partition = core.PerStagePartition
			return o
		}()},
		{"whole-job", baseline.JetScope()},
	}
	var rows []AblationPartitionRow
	for _, p := range policies {
		res := cfg.runTrace(tr, cfg.fig10Cluster(), p.opts, cfg.Seed)
		var idle []float64
		for _, jr := range res.SortedJobs() {
			if !jr.Completed {
				continue
			}
			for _, s := range jr.Samples {
				idle = append(idle, s.IdleRatio())
			}
		}
		mean := 0.0
		for _, x := range idle {
			mean += x
		}
		if len(idle) > 0 {
			mean /= float64(len(idle))
		}
		rows = append(rows, AblationPartitionRow{
			Policy:      p.name,
			MakespanSec: res.Makespan.Seconds(),
			MeanIdle:    mean,
		})
	}
	return rows
}
