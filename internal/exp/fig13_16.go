package exp

import (
	"fmt"
	"math/rand"
	"sort"

	"swift/internal/baseline"
	"swift/internal/core"
	"swift/internal/metrics"
	"swift/internal/sim"
	"swift/internal/tpch"
	"swift/internal/trace"
)

// Fig13Q13Detail returns the Fig. 13 job-detail table verbatim.
func Fig13Q13Detail() []tpch.Q13Detail { return tpch.Q13Details() }

// Fig14Row is one injection point of Fig. 14: a failure injected into TPC-H
// Q13 at a normalised time, with the resulting job slowdown under Swift's
// fine-grained recovery and under whole-job restart.
type Fig14Row struct {
	InjectAtPct        int // normalised injection time (paper: 20..100)
	Stage              string
	SwiftSlowdownPct   float64
	RestartSlowdownPct float64
}

// Fig14Injections are the published (time, stage) pairs: failures at
// normalised times 20, 40, 60, 80, 100 into M2, J3, R4, R5, R6.
var Fig14Injections = []struct {
	Pct   int
	Stage string
}{
	{20, "M2"}, {40, "J3"}, {60, "R4"}, {80, "R5"}, {100, "R6"},
}

// Fig14FaultInjection reproduces Fig. 14: the non-failure Q13 execution
// time is the baseline (normalised to 100); one failure is injected per
// run. Paper: Swift's slowdown stays under 10% for every injection, far
// below job restart.
func Fig14FaultInjection(cfg Config) []Fig14Row {
	ccfg := cfg.cluster100()
	clean, _ := cfg.runOne(tpch.Q13(), ccfg, baseline.Swift(), cfg.Seed)
	base := clean.Duration()

	run := func(opts core.Options, pct int, stage string) float64 {
		r := cfg.sim(ccfg, opts, cfg.Seed)
		job := tpch.Q13()
		r.SubmitAt(0, job)
		// Injections at 100 land just inside the run (the paper's time
		// axis normalises the non-failure completion to 100).
		at := sim.FromSeconds(base * float64(pct) / 100 * 0.98)
		r.InjectTaskFailureAt(at, job.ID, stage, core.FailCrash)
		res := r.Run()
		jr := res.Jobs[job.ID]
		if !jr.Completed {
			panic(fmt.Sprintf("exp: fig14 run (%d%%, %s) failed", pct, stage))
		}
		return jr.Duration()
	}

	var rows []Fig14Row
	for _, inj := range Fig14Injections {
		swift := run(baseline.Swift(), inj.Pct, inj.Stage)
		restart := run(baseline.JobRestart(baseline.Swift()), inj.Pct, inj.Stage)
		rows = append(rows, Fig14Row{
			InjectAtPct:        inj.Pct,
			Stage:              inj.Stage,
			SwiftSlowdownPct:   (swift/base - 1) * 100,
			RestartSlowdownPct: (restart/base - 1) * 100,
		})
	}
	return rows
}

// Fig15Result compares end-to-end trace execution with realistic failures
// under Swift recovery vs job restart, normalised to the failure-free run.
type Fig15Result struct {
	BaselineNorm       float64 // always 100
	SwiftSlowdownPct   float64 // paper: ≈5%
	RestartSlowdownPct float64 // paper: ≈45%
	SwiftQuartiles     metrics.Quartiles
	RestartQuartiles   metrics.Quartiles
}

// Fig15TraceFailures replays the production trace three times: without
// failures (baseline), with failures under fine-grained recovery, and with
// the same failures under job restart. Failure times follow the Fig. 8(a)
// distribution; roughly half the jobs experience one failure.
func Fig15TraceFailures(cfg Config) Fig15Result {
	tr := trace.Generate(trace.Spec{Jobs: cfg.traceJobs(1000), Seed: cfg.Seed, ArrivalWindow: 120})
	ccfg := cfg.cluster100()

	type injection struct {
		job   string
		stage string
		after float64 // seconds after submission
	}

	run := func(opts core.Options, injections []injection) map[string]float64 {
		r := cfg.sim(ccfg, opts, cfg.Seed)
		at := make(map[string]float64)
		for _, j := range tr.Jobs {
			r.SubmitAt(sim.FromSeconds(j.SubmitAt), j.Job)
			at[j.Job.ID] = j.SubmitAt
		}
		for _, inj := range injections {
			r.InjectTaskFailureAt(sim.FromSeconds(at[inj.job]+inj.after), inj.job, inj.stage, core.FailCrash)
		}
		res := r.Run()
		out := make(map[string]float64)
		for id, jr := range res.Jobs {
			if jr.Completed {
				out[id] = jr.Duration()
			}
		}
		return out
	}

	baselineDur := run(baseline.Swift(), nil)

	// Failure times follow the Fig. 8(a) curve but are clamped inside
	// each job's actual execution window so the failure really occurs
	// during the run (the paper regenerates failures from the failed-job
	// runtime distribution, which is conditioned on jobs that failed
	// while running).
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	var injections []injection
	for _, j := range tr.Jobs {
		if rng.Float64() > 0.5 {
			continue
		}
		dur, ok := baselineDur[j.Job.ID]
		if !ok {
			continue
		}
		after := trace.FailureTime(rng)
		if cap := 0.85 * dur; after > cap {
			after = cap * (0.4 + 0.6*rng.Float64())
		}
		stages := j.Job.StageNames()
		injections = append(injections, injection{
			job:   j.Job.ID,
			stage: stages[rng.Intn(len(stages))],
			after: after,
		})
	}

	swiftDur := run(baseline.Swift(), injections)
	restartDur := run(baseline.JobRestart(baseline.Swift()), injections)

	ratios := func(d map[string]float64) []float64 {
		ids := make([]string, 0, len(baselineDur))
		for id := range baselineDur {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		var out []float64
		for _, id := range ids {
			if v, ok := d[id]; ok && baselineDur[id] > 0 {
				out = append(out, v/baselineDur[id]*100)
			}
		}
		return out
	}
	sw, re := ratios(swiftDur), ratios(restartDur)
	swQ, reQ := metrics.FourQuartiles(sw), metrics.FourQuartiles(re)
	return Fig15Result{
		BaselineNorm:       100,
		SwiftSlowdownPct:   metrics.Mean(sw) - 100,
		RestartSlowdownPct: metrics.Mean(re) - 100,
		SwiftQuartiles:     swQ,
		RestartQuartiles:   reQ,
	}
}

// Fig16Row is one point of the strong-scaling curve.
type Fig16Row struct {
	Executors int
	Speedup   float64 // T(10k) / T(executors)
	Ideal     float64 // executors / 10k
}

// Fig16Scalability replays a fixed workload with growing executor counts
// (10k → 140k), normalising end-to-end time to the 10k run. Paper: near-
// linear scaling across the whole range.
func Fig16Scalability(cfg Config) []Fig16Row {
	counts := []int{10000, 20000, 40000, 80000, 140000}
	jobs, scale, cap := 12000, 5.0, 90.0
	execsPerMachine := 60
	if cfg.Reduced {
		counts = []int{1000, 2000, 4000, 8000}
		jobs, scale, cap = 1200, 3.0, 60.0
	}
	tr := trace.Generate(trace.Spec{Jobs: jobs, Seed: cfg.Seed, Scale: scale, RuntimeCap: cap})
	var rows []Fig16Row
	var baseMakespan float64
	for i, n := range counts {
		ccfg := cfg.cluster2000()
		ccfg.ExecutorsPerMachine = execsPerMachine
		ccfg.Machines = (n + execsPerMachine - 1) / execsPerMachine
		res := cfg.runTrace(tr, ccfg, baseline.Swift(), cfg.Seed)
		mk := res.Makespan.Seconds()
		if i == 0 {
			baseMakespan = mk
		}
		rows = append(rows, Fig16Row{
			Executors: n,
			Speedup:   baseMakespan / mk,
			Ideal:     float64(n) / float64(counts[0]),
		})
	}
	return rows
}
