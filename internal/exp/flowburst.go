package exp

import (
	"fmt"

	"swift/internal/cluster"
	"swift/internal/core"
	"swift/internal/dag"
	"swift/internal/flow"
	"swift/internal/metrics"
	"swift/internal/sim"
	"swift/internal/trace"
)

// FlowBurstRow is one sustained-load intensity of the admission-control
// sweep: the same 60 s arrival window carrying Offered jobs through a flow
// controller in front of a small cluster.
type FlowBurstRow struct {
	// Burst labels the arrival multiplier ("1x", "3x", "10x").
	Burst   string
	Offered int
	// Admitted counts jobs that reached the scheduler (directly or after
	// queueing); Queued counts jobs that ever waited; Shed counts rejects.
	Admitted int
	Queued   int
	Shed     int
	// WaitP50/WaitP99 are admission-latency quantiles in seconds over every
	// admitted job (a direct admit contributes 0).
	WaitP50 float64
	WaitP99 float64
	// MaxQueueSeen is the wait queue's high-water mark; MaxInFlight is the
	// peak of the controller's in-flight task gauge.
	MaxQueueSeen int
	MaxInFlight  int
	// Budget is the resolved in-flight task budget and MaxJobTasks the
	// largest offered job: in-flight never exceeds max(Budget, MaxJobTasks)
	// (the oversized-job liveness rule admits such a job only alone).
	Budget      int
	MaxJobTasks int
	Completed   int
}

// flowBurstMults are the arrival multipliers of the sustained-load sweep.
var flowBurstMults = [3]int{1, 3, 10}

// FlowBurst is the sustained-load admission experiment behind swiftd's
// service mode: 1x/3x/10x the base job count arrive over one 60 s window
// against a 10×4-executor cluster guarded by a flow controller (wait queue
// 8, arrival governor 1 job/s, burst 4). At 1x everything admits directly;
// at 10x the governor and queue bound force load shedding while the
// in-flight gauge stays within the admission budget.
func FlowBurst(cfg Config) []FlowBurstRow {
	rows := make([]FlowBurstRow, 0, len(flowBurstMults))
	for _, m := range flowBurstMults {
		rows = append(rows, cfg.flowBurstOne(m))
	}
	return rows
}

func (c Config) flowBurstOne(mult int) FlowBurstRow {
	base := 20
	if c.Reduced {
		base = 8
	}
	jobs := base * mult
	ccfg := cluster.Config{Machines: 20, ExecutorsPerMachine: 4}
	r := c.sim(ccfg, core.DefaultOptions(), c.Seed)
	eng, ctrl := r.Engine(), r.Controller()
	fc := flow.NewController(flow.Config{MaxQueue: 8, Rate: 1, Burst: 4},
		ccfg.Machines*ccfg.ExecutorsPerMachine)

	var waits []float64
	maxInFlight, maxJob := 0, 0

	// Queued work is pumped back in at every event boundary and on a 1 s
	// tick while the queue is nonempty (the tick keeps the queue draining
	// when the cluster goes quiet with the governor dry) — the same pump the
	// chaos herd soak and swiftd's service loop use.
	pumping, tickArmed := false, false
	var pumpTick func()
	armTick := func() {
		if !tickArmed && fc.QueueLen() > 0 {
			tickArmed = true
			eng.After(sim.Second, pumpTick)
		}
	}
	pump := func(now sim.Time) {
		if pumping {
			return
		}
		pumping = true
		for {
			it, ok := fc.PopAdmissible(now, ctrl.Snapshot())
			if !ok {
				break
			}
			waits = append(waits, (now - it.Enqueued).Seconds())
			_ = r.Submit(it.Payload.(*dag.Job))
		}
		pumping = false
		armTick()
	}
	pumpTick = func() {
		tickArmed = false
		if !pumping {
			pump(eng.Now())
		}
		armTick()
	}
	r.SetEventHook(func(now sim.Time) {
		if n := ctrl.Snapshot().InFlightTasks(); n > maxInFlight {
			maxInFlight = n
		}
		pump(now)
	})

	// Scale and RuntimeCap tame the trace's heavy tail: the sweep measures
	// admission behaviour versus arrival intensity, so the baseline (1x)
	// must be a load the cluster genuinely absorbs — a single 700-task
	// outlier job would otherwise congest even the idle-rate run.
	tr := trace.Generate(trace.Spec{Jobs: jobs, Seed: c.Seed, ArrivalWindow: 60,
		Scale: 0.5, RuntimeCap: 120})
	for _, j := range tr.Jobs {
		j := j
		if t := j.Job.NumTasks(); t > maxJob {
			maxJob = t
		}
		eng.At(sim.FromSeconds(j.SubmitAt), func() {
			now := eng.Now()
			out, _ := fc.Offer(now, ctrl.Snapshot(),
				flow.Item{ID: j.Job.ID, Tasks: j.Job.NumTasks(), Payload: j.Job, Enqueued: now})
			if out.Decision == flow.Admitted {
				waits = append(waits, 0)
				_ = r.Submit(j.Job)
			}
			armTick()
		})
	}
	r.RunBounded(4*3600*sim.Second, 5_000_000)

	completed := 0
	for _, jr := range r.Results().SortedJobs() {
		if jr.Completed {
			completed++
		}
	}
	st := fc.Stats()
	q := func(p float64) float64 {
		if len(waits) == 0 {
			return 0
		}
		return metrics.Quantile(waits, p)
	}
	return FlowBurstRow{
		Burst:        fmt.Sprintf("%dx", mult),
		Offered:      jobs,
		Admitted:     int(st.Admitted),
		Queued:       int(st.Queued),
		Shed:         int(st.Shed),
		WaitP50:      q(0.5),
		WaitP99:      q(0.99),
		MaxQueueSeen: st.MaxQueue,
		MaxInFlight:  maxInFlight,
		Budget:       fc.Budget(),
		MaxJobTasks:  maxJob,
		Completed:    completed,
	}
}
