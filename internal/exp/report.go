package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table renders rows of columns with aligned widths, in the style of the
// paper's tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.Rows {
		line(r)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Names lists the experiment identifiers runnable by Run.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// registry maps experiment ids to report functions.
var registry = map[string]func(Config, io.Writer) error{
	"fig3":            reportFig3,
	"fig8":            reportFig8,
	"fig9a":           reportFig9a,
	"fig9b":           reportFig9b,
	"table1":          reportTable1,
	"fig10":           reportFig10,
	"fig11":           reportFig11,
	"fig12":           reportFig12,
	"fig13":           reportFig13,
	"fig14":           reportFig14,
	"fig15":           reportFig15,
	"fig16":           reportFig16,
	"flowburst":       reportFlowBurst,
	"fairshare":       reportFairShare,
	"shufflerecovery": reportShuffleRecovery,
}

// Run executes one named experiment and writes its paper-style report. It
// returns false for unknown names; the error is the first write failure.
func Run(name string, cfg Config, w io.Writer) (bool, error) {
	fn, ok := registry[name]
	if !ok {
		return false, nil
	}
	return true, fn(cfg, w)
}

func reportFig3(cfg Config, w io.Writer) error {
	t := &Table{Title: "Fig. 3 — IdleRatio under gang scheduling (paper: 3.81 / 13.15 / 14.45 / 14.92 %)",
		Headers: []string{"cluster", "idle_ratio_%"}}
	for _, r := range Fig3IdleRatio(cfg) {
		t.Add("#"+r.Cluster, r.IdleRatioPct)
	}
	_, err := t.WriteTo(w)
	return err
}

func reportFig8(cfg Config, w io.Writer) error {
	s := Fig8TraceCharacteristics(cfg)
	t := &Table{Title: "Fig. 8 — trace characteristics (paper: mean 30 s, >90% <120 s, >80% ≤80 tasks & ≤4 stages)",
		Headers: []string{"metric", "value"}}
	t.Add("jobs completed", s.Jobs)
	t.Add("mean runtime (s)", s.MeanRuntimeSec)
	t.Add("P(runtime<120s)", s.FracRuntimeUnder120)
	t.Add("P(tasks<=80)", s.FracTasksUnder80)
	t.Add("P(stages<=4)", s.FracStagesUnder4)
	_, err := t.WriteTo(w)
	return err
}

func reportFig9a(cfg Config, w io.Writer) error {
	res := Fig9aTPCH(cfg)
	t := &Table{Title: "Fig. 9(a) — TPC-H 1 TB, Swift vs Spark (paper total speedup: 2.11x)",
		Headers: []string{"query", "spark_s", "swift_s", "speedup"}}
	for _, r := range res.Rows {
		t.Add(r.Query, r.SparkSec, r.SwiftSec, r.Speedup)
	}
	t.Add("TOTAL", "", "", res.TotalSpeedup)
	_, err := t.WriteTo(w)
	return err
}

func reportFig9b(cfg Config, w io.Writer) error {
	t := &Table{Title: "Fig. 9(b) — Q9 phase breakdown (L/SR/P/SW seconds per critical task)",
		Headers: []string{"stage", "system", "launch", "read", "process", "write"}}
	for _, r := range Fig9bQ9Phases(cfg) {
		t.Add(r.Stage, r.System, r.Launch, r.Read, r.Process, r.Write)
	}
	_, err := t.WriteTo(w)
	return err
}

func reportTable1(cfg Config, w io.Writer) error {
	t := &Table{Title: "Table I — Terasort (paper speedups: 3.07 / 3.96 / 7.06 / 14.18)",
		Headers: []string{"job_size", "spark_s", "swift_s", "speedup"}}
	for _, r := range Table1Terasort(cfg) {
		t.Add(r.Size, r.SparkSec, r.SwiftSec, r.Speedup)
	}
	_, err := t.WriteTo(w)
	return err
}

func reportFig10(cfg Config, w io.Writer) error {
	res := Fig10ExecutorTimeline(cfg)
	t := &Table{Title: "Fig. 10 — trace replay makespan (paper: Swift 2.44x, Bubble 1.98x over JetScope)",
		Headers: []string{"system", "makespan_s", "speedup_vs_jetscope", "peak_executors"}}
	for _, sys := range Fig10Systems {
		peak := 0.0
		for _, p := range res.Series[sys] {
			if p.V > peak {
				peak = p.V
			}
		}
		t.Add(sys, res.Makespan[sys], res.SpeedupOverJetScope[sys], peak)
	}
	_, err := t.WriteTo(w)
	return err
}

func reportFig11(cfg Config, w io.Writer) error {
	res := Fig11LatencyCDF(cfg)
	t := &Table{Title: "Fig. 11 — job latency vs Swift (paper: >60% of JetScope jobs >2x Swift)",
		Headers: []string{"metric", "value"}}
	t.Add("frac JetScope jobs >2x Swift", res.FracJetScopeOver2x)
	t.Add("mean Bubble/Swift latency", res.MeanBubbleRatio)
	for _, sys := range []string{"JetScope", "Bubble"} {
		rs := res.Ratios[sys]
		if len(rs) == 0 {
			continue
		}
		t.Add(sys+" median ratio", rs[len(rs)/2])
		t.Add(sys+" p90 ratio", rs[len(rs)*9/10])
	}
	_, err := t.WriteTo(w)
	return err
}

func reportFig12(cfg Config, w io.Writer) error {
	t := &Table{Title: "Fig. 12 — shuffle-mode ablation, normalized to Direct (paper winners: Direct/Remote/Local)",
		Headers: []string{"class", "mode", "normalized_time"}}
	cells := Fig12ShuffleModes(cfg)
	for _, c := range cells {
		t.Add(c.Class.String(), c.Mode.String(), fmt.Sprintf("%.3f", c.Normalized))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	best := Fig12Best(cells)
	_, err := fmt.Fprintf(w, "winners: small=%v medium=%v large=%v\n",
		best[0], best[1], best[2])
	return err
}

func reportFig13(_ Config, w io.Writer) error {
	t := &Table{Title: "Fig. 13 — TPC-H Q13 job detail",
		Headers: []string{"stage", "tasks", "records/task", "input/task"}}
	for _, d := range Fig13Q13Detail() {
		t.Add(d.Stage, d.Tasks, d.RecordsPerTask, d.InputSizePerTask)
	}
	_, err := t.WriteTo(w)
	return err
}

func reportFig14(cfg Config, w io.Writer) error {
	t := &Table{Title: "Fig. 14 — Q13 fault injection (paper: Swift <10% slowdown at every point)",
		Headers: []string{"inject_at", "stage", "swift_slowdown_%", "restart_slowdown_%"}}
	for _, r := range Fig14FaultInjection(cfg) {
		t.Add(r.InjectAtPct, r.Stage, r.SwiftSlowdownPct, r.RestartSlowdownPct)
	}
	_, err := t.WriteTo(w)
	return err
}

func reportFig15(cfg Config, w io.Writer) error {
	res := Fig15TraceFailures(cfg)
	t := &Table{Title: "Fig. 15 — trace replay with failures (paper: restart +45%, Swift +5%)",
		Headers: []string{"policy", "mean_slowdown_%", "quartiles(normalized)"}}
	t.Add("fine-grained (Swift)", res.SwiftSlowdownPct, res.SwiftQuartiles.String())
	t.Add("job restart", res.RestartSlowdownPct, res.RestartQuartiles.String())
	_, err := t.WriteTo(w)
	return err
}

func reportFlowBurst(cfg Config, w io.Writer) error {
	t := &Table{Title: "Sustained load — admission control under 1x/3x/10x arrival storms",
		Headers: []string{"burst", "offered", "admitted", "queued", "shed", "wait_p50_s", "wait_p99_s", "max_queue", "max_inflight", "budget", "completed"}}
	for _, r := range FlowBurst(cfg) {
		t.Add(r.Burst, r.Offered, r.Admitted, r.Queued, r.Shed, r.WaitP50, r.WaitP99, r.MaxQueueSeen, r.MaxInFlight, r.Budget, r.Completed)
	}
	_, err := t.WriteTo(w)
	return err
}

func reportFairShare(cfg Config, w io.Writer) error {
	t := &Table{Title: "Fair share — three tenants (weights 2:1:1), tenant b bursting 1x/3x/10x",
		Headers: []string{"burst", "policy", "contended_s", "share_a", "share_b", "share_c", "jain", "max_dev_%", "p99_a_s", "p99_b_s", "p99_c_s", "reclaims", "completed"}}
	for _, r := range FairShare(cfg) {
		t.Add(r.Burst, r.Policy, r.ContendedSec,
			r.Shares[0], r.Shares[1], r.Shares[2], r.Jain, r.MaxDevPct,
			r.P99[0], r.P99[1], r.P99[2], r.Reclaims, r.Completed)
	}
	_, err := t.WriteTo(w)
	return err
}

func reportFig16(cfg Config, w io.Writer) error {
	t := &Table{Title: "Fig. 16 — strong scaling (paper: near-linear 10k→140k executors)",
		Headers: []string{"executors", "speedup", "ideal"}}
	for _, r := range Fig16Scalability(cfg) {
		t.Add(r.Executors, r.Speedup, r.Ideal)
	}
	_, err := t.WriteTo(w)
	return err
}
