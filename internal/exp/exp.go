// Package exp regenerates every table and figure of the paper's evaluation
// (Section V) on the simulated platform: one exported function per
// experiment, each returning the same rows/series the paper reports. The
// package is the single source of truth used by cmd/swiftbench, the
// examples and the top-level benchmarks.
//
// Absolute seconds differ from the paper (the substrate is a calibrated
// simulator, not Alibaba's clusters); the shapes — who wins, by what
// factor, where the crossovers fall — are asserted by this package's tests
// and recorded against the paper's numbers in EXPERIMENTS.md.
package exp

import (
	"swift/internal/cluster"
	"swift/internal/core"
	"swift/internal/dag"
	"swift/internal/obs"
	"swift/internal/sim"
	"swift/internal/simrun"
	"swift/internal/trace"
)

// Config scales the experiments. Reduced runs shrink workloads so the full
// suite finishes in seconds (used by `go test -bench` and CI); the default
// is the paper-scale configuration.
type Config struct {
	Reduced bool
	Seed    int64

	// Obs, when non-nil, is installed as the observability recorder of
	// every simulated deployment an experiment spins up (unless the
	// experiment supplies its own via core.Options). RunAll gives each
	// experiment a fresh recorder and reports its StreamHash — the witness
	// that a parallel sweep replayed exactly the serial execution.
	Obs *obs.Recorder
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config { return Config{Seed: 1} }

// cluster100 is the paper's 100-node evaluation cluster. The reduced
// variant stays above 2,000 executors — the largest job in the trace —
// so whole-job gang scheduling (JetScope) can always eventually place
// every job.
func (c Config) cluster100() cluster.Config {
	cfg := cluster.Paper100()
	if c.Reduced {
		cfg.Machines = 40
	}
	return cfg
}

// cluster2000 is the paper's 2,000-node cluster.
func (c Config) cluster2000() cluster.Config {
	cfg := cluster.Paper2000()
	if c.Reduced {
		cfg.Machines = 100
	}
	return cfg
}

func (c Config) traceJobs(full int) int {
	if c.Reduced {
		return full / 10
	}
	return full
}

// sim builds a fresh simulated deployment, routing the config's recorder
// into the run unless the caller's options already carry one.
func (c Config) sim(ccfg cluster.Config, opts core.Options, seed int64) *simrun.Runner {
	if opts.Obs == nil {
		opts.Obs = c.Obs
	}
	return simrun.New(simrun.Config{Cluster: ccfg, Options: opts, Seed: seed})
}

// runTrace replays a trace on a fresh simulated deployment.
func (c Config) runTrace(tr *trace.Trace, ccfg cluster.Config, opts core.Options, seed int64) *simrun.Results {
	r := c.sim(ccfg, opts, seed)
	for _, j := range tr.Jobs {
		r.SubmitAt(sim.FromSeconds(j.SubmitAt), j.Job)
	}
	return r.Run()
}

// runOne runs a single job on a fresh deployment and returns its duration
// in seconds along with the full result (for phase inspection).
func (c Config) runOne(job *dag.Job, ccfg cluster.Config, opts core.Options, seed int64) (*simrun.JobResult, *simrun.Results) {
	r := c.sim(ccfg, opts, seed)
	r.SubmitAt(0, job)
	res := r.Run()
	return res.Jobs[job.ID], res
}
