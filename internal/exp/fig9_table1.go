package exp

import (
	"fmt"

	"swift/internal/baseline"
	"swift/internal/metrics"
	"swift/internal/tpch"
)

// Fig9aRow is one query of Fig. 9(a): TPC-H at 1 TB, Swift vs Spark.
type Fig9aRow struct {
	Query    string
	SparkSec float64
	SwiftSec float64
	Speedup  float64
}

// Fig9aResult is the full Fig. 9(a) experiment.
type Fig9aResult struct {
	Rows []Fig9aRow
	// TotalSpeedup is Σspark / Σswift, the paper's headline "total
	// speedup of 2.11×".
	TotalSpeedup float64
	// GeoMeanSpeedup aggregates per-query speedups geometrically.
	GeoMeanSpeedup float64
}

// Fig9aTPCH runs the 22 TPC-H queries on the 100-node cluster under Swift
// and under the Spark baseline.
func Fig9aTPCH(cfg Config) Fig9aResult {
	ccfg := cfg.cluster100()
	var out Fig9aResult
	var sparkTotal, swiftTotal float64
	var speedups []float64
	queries := 22
	step := 1
	if cfg.Reduced {
		step = 4 // Q1, Q5, Q9, Q13, Q17, Q21
	}
	for i := 1; i <= queries; i += step {
		job := tpch.Query(i)
		swiftRes, _ := cfg.runOne(job, ccfg, baseline.Swift(), cfg.Seed)
		sparkRes, _ := cfg.runOne(tpch.Query(i), ccfg, baseline.Spark(), cfg.Seed)
		if swiftRes == nil || !swiftRes.Completed || sparkRes == nil || !sparkRes.Completed {
			panic(fmt.Sprintf("exp: Q%d did not complete", i))
		}
		row := Fig9aRow{
			Query:    fmt.Sprintf("Q%d", i),
			SparkSec: sparkRes.Duration(),
			SwiftSec: swiftRes.Duration(),
		}
		row.Speedup = row.SparkSec / row.SwiftSec
		out.Rows = append(out.Rows, row)
		sparkTotal += row.SparkSec
		swiftTotal += row.SwiftSec
		speedups = append(speedups, row.Speedup)
	}
	out.TotalSpeedup = sparkTotal / swiftTotal
	out.GeoMeanSpeedup = metrics.GeoMean(speedups)
	return out
}

// Fig9bRow is one (stage, system) cell of Fig. 9(b): the 4-phase execution
// time of a critical task of TPC-H Q9.
type Fig9bRow struct {
	Stage   string
	System  string // "Swift" or "Spark"
	Launch  float64
	Read    float64 // shuffle reading (table scanning for M-stages)
	Process float64
	Write   float64 // shuffle writing (adhoc sinking for R12)
}

// Fig9bStages are the critical stages the paper plots.
var Fig9bStages = []string{"M1", "J4", "M5", "J6", "J10", "R11", "R12"}

// Fig9bQ9Phases decomposes Q9's critical-stage tasks into the launching /
// shuffle-read / processing / shuffle-write phases for both systems.
func Fig9bQ9Phases(cfg Config) []Fig9bRow {
	ccfg := cfg.cluster100()
	var rows []Fig9bRow
	for _, sys := range []struct {
		name string
	}{{"Swift"}, {"Spark"}} {
		opts := baseline.Swift()
		if sys.name == "Spark" {
			opts = baseline.Spark()
		}
		jr, _ := cfg.runOne(tpch.Q9(), ccfg, opts, cfg.Seed)
		for _, st := range Fig9bStages {
			p := jr.Phases[st]
			if p == nil {
				continue
			}
			rows = append(rows, Fig9bRow{
				Stage: st, System: sys.name,
				Launch: p.Launch, Read: p.ShuffleRead,
				Process: p.Process, Write: p.ShuffleWrite,
			})
		}
	}
	return rows
}

// Table1Row is one row of Table I: Terasort, Spark vs Swift.
type Table1Row struct {
	Size     string
	M, N     int
	SparkSec float64
	SwiftSec float64
	Speedup  float64
}

// Table1Sizes are the published job sizes.
var Table1Sizes = []int{250, 500, 1000, 1500}

// Table1Terasort reproduces Table I: Terasort jobs of growing size on the
// 100-node cluster. Paper speedups: 3.07, 3.96, 7.06, 14.18.
func Table1Terasort(cfg Config) []Table1Row {
	ccfg := cfg.cluster100()
	sizes := Table1Sizes
	if cfg.Reduced {
		sizes = []int{250, 1000}
	}
	var rows []Table1Row
	for _, s := range sizes {
		swiftRes, _ := cfg.runOne(tpch.Terasort(s, s), ccfg, baseline.Swift(), cfg.Seed)
		sparkRes, _ := cfg.runOne(tpch.Terasort(s, s), ccfg, baseline.Spark(), cfg.Seed)
		row := Table1Row{
			Size: fmt.Sprintf("%dx%d", s, s), M: s, N: s,
			SparkSec: sparkRes.Duration(),
			SwiftSec: swiftRes.Duration(),
		}
		row.Speedup = row.SparkSec / row.SwiftSec
		rows = append(rows, row)
	}
	return rows
}
