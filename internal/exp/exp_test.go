package exp

import (
	"bytes"
	"strings"
	"testing"

	"swift/internal/shuffle"
)

// The experiment tests assert the paper's result *shapes* at reduced scale:
// who wins, rough factors, orderings and crossovers. Paper-vs-measured for
// the full-scale runs is recorded in EXPERIMENTS.md.

func cfg() Config { return Config{Reduced: true, Seed: 1} }

func TestFig3IdleRatioShape(t *testing.T) {
	rows := Fig3IdleRatio(cfg())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	sum := 0.0
	for _, r := range rows {
		if r.IdleRatioPct < 0 || r.IdleRatioPct > 60 {
			t.Errorf("cluster %s idle = %.2f%%, out of range", r.Cluster, r.IdleRatioPct)
		}
		sum += r.IdleRatioPct
	}
	// Paper: averages between 3.81% and 14.92% — "a large quantity of
	// resources have been wasted in gang scheduling".
	if avg := sum / 4; avg < 3 || avg > 40 {
		t.Errorf("average idle = %.2f%%, want meaningful waste (3..40)", avg)
	}
}

func TestFig8TraceCharacteristicsShape(t *testing.T) {
	s := Fig8TraceCharacteristics(cfg())
	if s.Jobs < 150 {
		t.Fatalf("too few completed jobs: %d", s.Jobs)
	}
	if s.MeanRuntimeSec < 15 || s.MeanRuntimeSec > 60 {
		t.Errorf("mean runtime = %.1fs, paper ≈30s", s.MeanRuntimeSec)
	}
	if s.FracRuntimeUnder120 < 0.88 {
		t.Errorf("P(<120s) = %.2f, paper >0.9", s.FracRuntimeUnder120)
	}
	if s.FracTasksUnder80 < 0.75 {
		t.Errorf("P(tasks≤80) = %.2f, paper >0.8", s.FracTasksUnder80)
	}
	if s.FracStagesUnder4 < 0.75 {
		t.Errorf("P(stages≤4) = %.2f, paper >0.8", s.FracStagesUnder4)
	}
}

func TestFig9aSwiftBeatsSparkOnEveryQuery(t *testing.T) {
	res := Fig9aTPCH(cfg())
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range res.Rows {
		if r.Speedup <= 1 {
			t.Errorf("%s: speedup %.2f ≤ 1", r.Query, r.Speedup)
		}
	}
	// Paper: total speedup 2.11x; accept a 1.5..3.5 band at reduced scale.
	if res.TotalSpeedup < 1.5 || res.TotalSpeedup > 3.5 {
		t.Errorf("total speedup = %.2f, want ≈2.11", res.TotalSpeedup)
	}
}

func TestFig9bPhaseBreakdownShape(t *testing.T) {
	rows := Fig9bQ9Phases(cfg())
	var sparkLaunch, swiftLaunch, sparkShuffle, swiftShuffle float64
	for _, r := range rows {
		switch r.System {
		case "Spark":
			sparkLaunch += r.Launch
			if r.Stage != "M1" && r.Stage != "M5" { // scans read tables, not shuffle
				sparkShuffle += r.Read + r.Write
			}
		case "Swift":
			swiftLaunch += r.Launch
			if r.Stage != "M1" && r.Stage != "M5" {
				swiftShuffle += r.Read + r.Write
			}
		}
	}
	// Paper Fig. 9b: Spark's launch totals >71s across critical stages;
	// Swift's is negligible. Spark's disk shuffle dwarfs Swift's
	// in-network shuffle (137.8+133.9s vs 8.92+9.61s).
	if sparkLaunch < 10*swiftLaunch {
		t.Errorf("launch: spark=%.1fs swift=%.1fs, want ≥10x gap", sparkLaunch, swiftLaunch)
	}
	if sparkShuffle < 3*swiftShuffle {
		t.Errorf("shuffle: spark=%.1fs swift=%.1fs, want ≥3x gap", sparkShuffle, swiftShuffle)
	}
}

func TestTable1SpeedupGrowsWithJobSize(t *testing.T) {
	rows := Table1Terasort(cfg())
	if len(rows) < 2 {
		t.Fatal("need at least 2 sizes")
	}
	prev := 0.0
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Errorf("%s: swift not faster (%.2f)", r.Size, r.Speedup)
		}
		if r.Speedup <= prev {
			t.Errorf("%s: speedup %.2f not growing (prev %.2f)", r.Size, r.Speedup, prev)
		}
		prev = r.Speedup
	}
	// Paper: 3.07 at 250² growing to 14.18 at 1500²; the largest reduced
	// size must show a clearly super-proportional gap.
	if last := rows[len(rows)-1]; last.Speedup < 2*rows[0].Speedup {
		t.Errorf("speedup growth too weak: %.2f -> %.2f", rows[0].Speedup, last.Speedup)
	}
}

func TestFig10SwiftFastestJetScopeSlowest(t *testing.T) {
	res := Fig10ExecutorTimeline(cfg())
	swift, bubble, jet := res.Makespan["Swift"], res.Makespan["Bubble"], res.Makespan["JetScope"]
	if !(swift < jet && bubble < jet) {
		t.Errorf("makespans swift=%.0f bubble=%.0f jet=%.0f: JetScope should be slowest", swift, bubble, jet)
	}
	if swift > bubble {
		t.Errorf("swift %.0f slower than bubble %.0f", swift, bubble)
	}
	// Paper: Swift 2.44x, Bubble 1.98x over JetScope.
	if res.SpeedupOverJetScope["Swift"] < 1.3 {
		t.Errorf("swift speedup over jetscope = %.2f, want ≥1.3", res.SpeedupOverJetScope["Swift"])
	}
	for _, sys := range Fig10Systems {
		if len(res.Series[sys]) == 0 {
			t.Errorf("no executor series for %s", sys)
		}
	}
}

func TestFig11LatencyShape(t *testing.T) {
	res := Fig11LatencyCDF(cfg())
	if len(res.Ratios["JetScope"]) == 0 || len(res.Ratios["Bubble"]) == 0 {
		t.Fatal("missing ratio samples")
	}
	// Paper: Swift outperforms Bubble Execution by 1.23x on average.
	if res.MeanBubbleRatio < 1.0 || res.MeanBubbleRatio > 2.0 {
		t.Errorf("mean bubble/swift ratio = %.2f, want ≈1.23", res.MeanBubbleRatio)
	}
	// JetScope must inflate a meaningful share of jobs well past Swift.
	if res.FracJetScopeOver2x < 0.05 {
		t.Errorf("frac jetscope >2x = %.2f, want substantial", res.FracJetScopeOver2x)
	}
	// Ratios are sorted.
	js := res.Ratios["JetScope"]
	for i := 1; i < len(js); i++ {
		if js[i] < js[i-1] {
			t.Fatal("ratios not sorted")
		}
	}
}

func TestFig12WinnersMatchPaper(t *testing.T) {
	cells := Fig12ShuffleModes(cfg())
	if len(cells) != 9 {
		t.Fatalf("cells = %d", len(cells))
	}
	best := Fig12Best(cells)
	if best[shuffle.SmallShuffle] != shuffle.Direct {
		t.Errorf("small winner = %v, want Direct", best[shuffle.SmallShuffle])
	}
	if best[shuffle.MediumShuffle] != shuffle.Remote {
		t.Errorf("medium winner = %v, want Remote", best[shuffle.MediumShuffle])
	}
	if best[shuffle.LargeShuffle] != shuffle.Local {
		t.Errorf("large winner = %v, want Local", best[shuffle.LargeShuffle])
	}
	for _, c := range cells {
		if c.Mode == shuffle.Direct && c.Normalized != 1 {
			t.Errorf("direct not normalized to 1: %v", c)
		}
		if c.Normalized <= 0 {
			t.Errorf("non-positive cell: %v", c)
		}
	}
}

func TestFig13DetailMatchesPaper(t *testing.T) {
	det := Fig13Q13Detail()
	if len(det) != 6 {
		t.Fatalf("rows = %d", len(det))
	}
	if det[0].Stage != "M1" || det[0].Tasks != 498 || det[0].RecordsPerTask != 3012048 {
		t.Errorf("M1 row = %+v", det[0])
	}
}

func TestFig14RecoveryShape(t *testing.T) {
	rows := Fig14FaultInjection(cfg())
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Paper: Swift's slowdown stays under ~10% (we allow 15%).
		if r.SwiftSlowdownPct > 15 {
			t.Errorf("t=%d %s: swift slowdown %.1f%% too high", r.InjectAtPct, r.Stage, r.SwiftSlowdownPct)
		}
		if r.SwiftSlowdownPct < -2 {
			t.Errorf("t=%d: negative slowdown %.1f%%", r.InjectAtPct, r.SwiftSlowdownPct)
		}
	}
	// No slowdown for the first injection: M2's output already flowed on.
	if rows[0].SwiftSlowdownPct > 1 {
		t.Errorf("t=20 swift slowdown = %.1f%%, paper: none", rows[0].SwiftSlowdownPct)
	}
	// Restart slowdown grows roughly with injection time and far exceeds
	// Swift's on late injections.
	last := rows[len(rows)-1]
	if last.RestartSlowdownPct < 50 {
		t.Errorf("restart at t=100 only %.1f%%", last.RestartSlowdownPct)
	}
	if last.RestartSlowdownPct < 3*last.SwiftSlowdownPct {
		t.Errorf("restart %.1f%% not ≫ swift %.1f%%", last.RestartSlowdownPct, last.SwiftSlowdownPct)
	}
}

func TestFig15RecoveryBeatsRestart(t *testing.T) {
	res := Fig15TraceFailures(cfg())
	if res.BaselineNorm != 100 {
		t.Fatal("baseline not normalized")
	}
	// Paper: restart ≈ +45%, Swift ≈ +5%.
	if res.SwiftSlowdownPct < 0 || res.SwiftSlowdownPct > 15 {
		t.Errorf("swift slowdown = %.1f%%, want small (paper ≈5%%)", res.SwiftSlowdownPct)
	}
	if res.RestartSlowdownPct < 2.5*res.SwiftSlowdownPct {
		t.Errorf("restart %.1f%% not ≫ swift %.1f%%", res.RestartSlowdownPct, res.SwiftSlowdownPct)
	}
	if res.RestartSlowdownPct < 10 {
		t.Errorf("restart slowdown = %.1f%%, implausibly low", res.RestartSlowdownPct)
	}
}

func TestFig16NearLinearScaling(t *testing.T) {
	rows := Fig16Scalability(cfg())
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Speedup != 1 {
		t.Errorf("baseline speedup = %.2f", rows[0].Speedup)
	}
	prev := 0.0
	for _, r := range rows {
		if r.Speedup <= prev {
			t.Errorf("speedup not monotone at %d executors: %.2f", r.Executors, r.Speedup)
		}
		prev = r.Speedup
	}
	last := rows[len(rows)-1]
	if eff := last.Speedup / last.Ideal; eff < 0.6 {
		t.Errorf("scaling efficiency at %d executors = %.2f, want ≥0.6 (near-linear)", last.Executors, eff)
	}
}

// TestFairShareAcceptance pins the fairness sweep's headline claims: under
// the fair policy every burst intensity keeps Jain's index ≥ 0.9 with
// weight-normalized shares within 10% of each other, the 10x burst forces
// actual gang reclaims (not just grant withholding), and FIFO demonstrably
// lacks all of this — the bursting tenant takes over and its neighbours'
// p99 collapses onto the burst's.
func TestFairShareAcceptance(t *testing.T) {
	rows := FairShare(cfg())
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 bursts x 2 policies)", len(rows))
	}
	byKey := map[string]FairShareRow{}
	for _, r := range rows {
		byKey[r.Burst+"/"+r.Policy] = r
		if r.ContendedSec <= 0 {
			t.Errorf("%s/%s: empty contention window", r.Burst, r.Policy)
		}
		if r.Completed != r.Jobs {
			t.Errorf("%s/%s: %d of %d jobs completed", r.Burst, r.Policy, r.Completed, r.Jobs)
		}
	}
	for _, burst := range []string{"1x", "3x", "10x"} {
		fair := byKey[burst+"/fair"]
		if fair.Jain < 0.9 {
			t.Errorf("%s fair: Jain = %.3f, want ≥ 0.9", burst, fair.Jain)
		}
		if fair.MaxDevPct > 10 {
			t.Errorf("%s fair: weighted shares deviate %.1f%%, want ≤ 10%%", burst, fair.MaxDevPct)
		}
		if fair.Reclaims == 0 {
			t.Errorf("%s fair: no gang reclaims — the burst never exercised preemption", burst)
		}
	}
	fifo10, fair10 := byKey["10x/fifo"], byKey["10x/fair"]
	if fifo10.Jain >= fair10.Jain {
		t.Errorf("10x: FIFO Jain %.3f not below fair %.3f", fifo10.Jain, fair10.Jain)
	}
	if fifo10.Shares[1] < 0.6 {
		t.Errorf("10x fifo: bursting tenant share = %.2f, want monopolization (≥ 0.6)", fifo10.Shares[1])
	}
	// Isolation: under FIFO the innocent tenants' p99 rides the burst; the
	// fair policy must cut it to well under half.
	for _, i := range []int{0, 2} {
		if fair10.P99[i] >= fifo10.P99[i]/2 {
			t.Errorf("10x tenant %s: fair p99 %.1fs not ≪ fifo p99 %.1fs", fairTenants[i], fair10.P99[i], fifo10.P99[i])
		}
	}
}

func TestRunRegistryCoversAllExperiments(t *testing.T) {
	names := Names()
	want := []string{"fig3", "fig8", "fig9a", "fig9b", "table1", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "flowburst", "fairshare", "shufflerecovery"}
	if len(names) != len(want) {
		t.Fatalf("registry has %d entries: %v", len(names), names)
	}
	if ok, _ := Run("nope", cfg(), &bytes.Buffer{}); ok {
		t.Error("unknown experiment accepted")
	}
	// Smoke-run the cheap reports through the registry.
	for _, n := range []string{"fig13", "fig9a", "table1"} {
		var b bytes.Buffer
		ok, err := Run(n, cfg(), &b)
		if !ok || err != nil {
			t.Fatalf("Run(%s) failed: ok=%v err=%v", n, ok, err)
		}
		if b.Len() == 0 {
			t.Errorf("Run(%s) produced no output", n)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Headers: []string{"a", "bb"}}
	tbl.Add("x", 1.5)
	tbl.Add("longer", "v")
	var b bytes.Buffer
	if _, err := tbl.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"T\n", "a", "bb", "1.50", "longer", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
