package exp

import (
	"sort"

	"swift/internal/baseline"
	"swift/internal/cluster"
	"swift/internal/core"
	"swift/internal/metrics"
	"swift/internal/shuffle"
	"swift/internal/trace"
)

// Fig10Result holds the running-executor timelines and makespans of the
// trace replay under the three schedulers (Fig. 10).
type Fig10Result struct {
	Series   map[string][]metrics.SeriesPoint // system -> sampled timeline
	Makespan map[string]float64               // seconds to finish all jobs
	// SpeedupOverJetScope is makespan(JetScope)/makespan(system); the
	// paper reports 2.44× for Swift and 1.98× for Bubble Execution.
	SpeedupOverJetScope map[string]float64
}

// Fig10Systems are the compared schedulers.
var Fig10Systems = []string{"JetScope", "Bubble", "Swift"}

func systemOptions(name string) core.Options {
	switch name {
	case "JetScope":
		return baseline.JetScope()
	case "Bubble":
		return baseline.Bubble(baseline.DefaultBubbleTasks, 96<<20)
	default:
		return baseline.Swift()
	}
}

// fig10Cluster is the replay cluster: the paper's Fig. 10 shows ~3,000
// running executors peak on the 100-node cluster, and the trace is
// replayed as a batch ("Swift and Bubble Execution can finish all jobs in
// 240s and 296s"), so the scheduler runs saturated — which is exactly
// where whole-job gang scheduling falls apart.
func (c Config) fig10Cluster() cluster.Config {
	ccfg := c.cluster100()
	ccfg.ExecutorsPerMachine = 30
	if c.Reduced {
		ccfg.Machines = 70 // keep capacity above the largest gang (2,000 tasks)
	}
	return ccfg
}

// Fig10ExecutorTimeline replays the production trace on the 100-node
// cluster under JetScope, Bubble Execution and Swift, recording the number
// of running executors over time.
func Fig10ExecutorTimeline(cfg Config) Fig10Result {
	out := Fig10Result{
		Series:              make(map[string][]metrics.SeriesPoint),
		Makespan:            make(map[string]float64),
		SpeedupOverJetScope: make(map[string]float64),
	}
	tr := fig10Trace(cfg)
	for _, sys := range Fig10Systems {
		res := cfg.runTrace(tr, cfg.fig10Cluster(), systemOptions(sys), cfg.Seed)
		out.Makespan[sys] = res.Makespan.Seconds()
		out.Series[sys] = res.ExecSeries.Sample(res.Makespan.Seconds(), 10)
	}
	for _, sys := range Fig10Systems {
		out.SpeedupOverJetScope[sys] = out.Makespan["JetScope"] / out.Makespan[sys]
	}
	return out
}

// Fig11Result holds, per system, the distribution of job latencies
// normalised to Swift's latency for the same job (Fig. 11).
type Fig11Result struct {
	// Ratios maps system -> sorted per-job latency ratios vs Swift.
	Ratios map[string][]float64
	// FracJetScopeOver2x: the paper reports "more than 60% of jobs are
	// with a latency 2× greater than that of Swift" for JetScope.
	FracJetScopeOver2x float64
	// MeanBubbleRatio: the paper's abstract reports Swift outperforming
	// Bubble Execution by 1.23× on latency.
	MeanBubbleRatio float64
}

// Fig11LatencyCDF replays the trace under the three systems and normalises
// each job's latency to Swift's.
// fig10Trace is the batch-replayed production trace: runtimes capped at
// the Fig. 8 "90% under 120 s" knee so a single straggler's critical path
// does not mask the schedulers' differences.
func fig10Trace(cfg Config) *trace.Trace {
	return trace.Generate(trace.Spec{Jobs: cfg.traceJobs(2000), Seed: cfg.Seed, RuntimeCap: 120})
}

func Fig11LatencyCDF(cfg Config) Fig11Result {
	tr := fig10Trace(cfg)
	durations := make(map[string]map[string]float64) // system -> job -> sec
	for _, sys := range Fig10Systems {
		res := cfg.runTrace(tr, cfg.fig10Cluster(), systemOptions(sys), cfg.Seed)
		d := make(map[string]float64)
		for id, jr := range res.Jobs {
			if jr.Completed {
				d[id] = jr.Duration()
			}
		}
		durations[sys] = d
	}
	out := Fig11Result{Ratios: make(map[string][]float64)}
	for _, sys := range []string{"JetScope", "Bubble"} {
		var ratios []float64
		for id, sw := range durations["Swift"] {
			if other, ok := durations[sys][id]; ok && sw > 0 {
				ratios = append(ratios, other/sw)
			}
		}
		sort.Float64s(ratios)
		out.Ratios[sys] = ratios
	}
	js := out.Ratios["JetScope"]
	if len(js) > 0 {
		out.FracJetScopeOver2x = 1 - metrics.FractionBelow(js, 2)
	}
	out.MeanBubbleRatio = metrics.Mean(out.Ratios["Bubble"])
	return out
}

// Fig12Cell is one bar of Fig. 12: the average job execution time of one
// shuffle-size category under one fixed shuffle mode, normalised to the
// category's Direct Shuffle time.
type Fig12Cell struct {
	Class      shuffle.SizeClass
	Mode       shuffle.Mode
	Normalized float64
}

// Fig12ShuffleModes replays shuffle-heavy jobs of the three size classes
// under each fixed shuffle mode on the 2,000-node cluster. Paper: small —
// Direct best (Local +4%, Remote +3%); medium — Remote best (Direct +25%,
// Local +3.8%); large — Local best (Direct +108.3%, Remote +47.9%).
func Fig12ShuffleModes(cfg Config) []Fig12Cell {
	type category struct {
		class   shuffle.SizeClass
		m, n    int
		perTask int64
		proc    float64
	}
	cats := []category{
		{shuffle.SmallShuffle, 60, 60, 256 << 20, 2},
		{shuffle.MediumShuffle, 200, 200, 1 << 30, 2},
		{shuffle.LargeShuffle, 1000, 1000, 1 << 30, 2},
	}
	if cfg.Reduced {
		cats = []category{
			{shuffle.SmallShuffle, 30, 30, 256 << 20, 2},
			{shuffle.MediumShuffle, 150, 150, 1 << 30, 2},
			{shuffle.LargeShuffle, 400, 400, 1 << 30, 2},
		}
	}
	jobsPer := 6
	if cfg.Reduced {
		jobsPer = 2
	}
	ccfg := cfg.cluster2000()
	var cells []Fig12Cell
	for _, cat := range cats {
		times := make(map[shuffle.Mode]float64)
		for _, mode := range []shuffle.Mode{shuffle.Direct, shuffle.Local, shuffle.Remote} {
			var total float64
			for k := 0; k < jobsPer; k++ {
				job := trace.ShuffleCategoryJob(
					cat.class.String()+"-"+mode.String()+"-"+string(rune('a'+k)),
					cat.m, cat.n, cat.perTask, cat.proc)
				jr, _ := cfg.runOne(job, ccfg, baseline.FixedShuffle(mode), cfg.Seed+int64(k))
				total += jr.Duration()
			}
			times[mode] = total / float64(jobsPer)
		}
		base := times[shuffle.Direct]
		for _, mode := range []shuffle.Mode{shuffle.Direct, shuffle.Local, shuffle.Remote} {
			cells = append(cells, Fig12Cell{Class: cat.class, Mode: mode, Normalized: times[mode] / base})
		}
	}
	return cells
}

// Fig12Best returns the winning mode per size class from the cells.
func Fig12Best(cells []Fig12Cell) map[shuffle.SizeClass]shuffle.Mode {
	best := make(map[shuffle.SizeClass]shuffle.Mode)
	bestV := make(map[shuffle.SizeClass]float64)
	for _, c := range cells {
		if v, ok := bestV[c.Class]; !ok || c.Normalized < v {
			bestV[c.Class] = c.Normalized
			best[c.Class] = c.Mode
		}
	}
	return best
}
