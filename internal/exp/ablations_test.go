package exp

import "testing"

func TestAblationAdaptiveShuffle(t *testing.T) {
	rows := AblationAdaptiveShuffle(cfg())
	byName := map[string]float64{}
	for _, r := range rows {
		if r.MeanSec <= 0 {
			t.Fatalf("%s: non-positive mean", r.Policy)
		}
		byName[r.Policy] = r.MeanSec
	}
	adaptive := byName["adaptive"]
	worst := 0.0
	best := 1e18
	for _, p := range []string{"direct", "local", "remote"} {
		if byName[p] > worst {
			worst = byName[p]
		}
		if byName[p] < best {
			best = byName[p]
		}
	}
	// Adaptive must clearly beat the worst fixed policy and stay within
	// 10% of the best fixed policy on the mixed workload.
	if adaptive >= worst {
		t.Errorf("adaptive %.2fs not better than worst fixed %.2fs", adaptive, worst)
	}
	if adaptive > best*1.10 {
		t.Errorf("adaptive %.2fs more than 10%% behind best fixed %.2fs", adaptive, best)
	}
}

func TestAblationPartition(t *testing.T) {
	rows := AblationPartition(cfg())
	byName := map[string]AblationPartitionRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	g, ps, wj := byName["graphlet"], byName["per-stage"], byName["whole-job"]
	if g.MakespanSec <= 0 || ps.MakespanSec <= 0 || wj.MakespanSec <= 0 {
		t.Fatalf("rows = %+v", rows)
	}
	// Graphlets must beat whole-job gangs on makespan and idle.
	if g.MakespanSec >= wj.MakespanSec {
		t.Errorf("graphlet makespan %.0fs not below whole-job %.0fs", g.MakespanSec, wj.MakespanSec)
	}
	if g.MeanIdle >= wj.MeanIdle {
		t.Errorf("graphlet idle %.3f not below whole-job %.3f", g.MeanIdle, wj.MeanIdle)
	}
	// Per-stage scheduling has near-zero idle (consumers start after
	// producers) but must not beat graphlets by much on makespan.
	if g.MakespanSec > ps.MakespanSec*1.25 {
		t.Errorf("graphlet %.0fs much slower than per-stage %.0fs", g.MakespanSec, ps.MakespanSec)
	}
}
