package exp

import (
	"fmt"

	"swift/internal/cluster"
	"swift/internal/core"
	"swift/internal/metrics"
	"swift/internal/sched"
	"swift/internal/sim"
	"swift/internal/trace"
)

// fairTenants orders the sweep's tenants; weights are 2:1:1 and tenant b
// is the one whose arrival rate the burst multiplier scales.
var fairTenants = [3]string{"a", "b", "c"}
var fairWeights = [3]float64{2, 1, 1}

// FairShareRow is one (policy, burst) cell of the multi-tenant fairness
// sweep: three tenants with 2:1:1 weights share one cluster while tenant
// b's arrival rate is scaled 1x/3x/10x.
type FairShareRow struct {
	Policy string
	Burst  string
	// ContendedSec is the total virtual time during which every tenant had
	// a resource request in the scheduler queue — the window fairness is
	// measured over. Shares are each tenant's fraction of the
	// executor-time consumed in that window, in fairTenants order.
	ContendedSec float64
	Shares       [3]float64
	// Jain is Jain's fairness index over the weight-normalized shares
	// (1.0 = perfectly weighted-fair); MaxDevPct is the largest relative
	// deviation of any tenant's weight-normalized share from their mean.
	Jain      float64
	MaxDevPct float64
	// P99 is each tenant's p99 end-to-end job latency in seconds, in
	// fairTenants order.
	P99 [3]float64
	// Reclaims counts whole graphlets the policy preempted; Completed and
	// Jobs tally terminal outcomes across all tenants.
	Reclaims  int
	Completed int
	Jobs      int
}

// fairShareBursts are the arrival multipliers applied to tenant b.
var fairShareBursts = [3]int{1, 3, 10}

// FairShare is the fairness experiment behind the scheduling policy layer:
// tenants a/b/c (weights 2:1:1) submit Poisson arrivals against a
// 10-machine cluster, with tenant b's rate and job count scaled by the
// burst multiplier. Each intensity runs once under the default FIFO policy
// and once under the hierarchical fair-share policy; executor-time shares
// are integrated over the instants when all three tenants have queued
// backlog, where a weighted-fair scheduler keeps weight-normalized shares
// equal. Under FIFO the 10x burst lets tenant b monopolize the pool;
// under fair share Jain's index stays near 1 and the burst's latency cost
// lands on the bursting tenant instead of its neighbours.
func FairShare(cfg Config) []FairShareRow {
	rows := make([]FairShareRow, 0, 2*len(fairShareBursts))
	for _, mult := range fairShareBursts {
		for _, policy := range [2]string{"fifo", "fair"} {
			rows = append(rows, cfg.fairShareOne(policy, mult))
		}
	}
	return rows
}

func (c Config) fairShareOne(policy string, mult int) FairShareRow {
	base := 10
	if c.Reduced {
		base = 5
	}
	opts := core.DefaultOptions()
	if policy == "fair" {
		opts.Policy = sched.NewFairShare(sched.FairShareConfig{Queues: []sched.QueueSpec{
			{Name: fairTenants[0], Weight: fairWeights[0]},
			{Name: fairTenants[1], Weight: fairWeights[1]},
			{Name: fairTenants[2], Weight: fairWeights[2]},
		}})
	}
	ccfg := cluster.Config{Machines: 20, ExecutorsPerMachine: 4}
	r := c.sim(ccfg, opts, c.Seed)
	ctrl := r.Controller()

	// Scale/RuntimeCap tame the trace's heavy tail exactly as the flow
	// burst sweep does: fairness is measured against arrival intensity,
	// not against one 700-task outlier congesting every run. Tenant b's
	// whole burst lands in the first two seconds — before its neighbours'
	// backlogs build — so the fair policy must claw the pool back from a
	// tenant that legitimately acquired it while idle (the reclaim path),
	// not merely withhold grants.
	tr := trace.Generate(trace.Spec{Seed: c.Seed, Scale: 0.5, RuntimeCap: 60,
		Tenants: []trace.TenantSpec{
			{Name: fairTenants[0], Jobs: 2 * base, ArrivalWindow: 10},
			{Name: fairTenants[1], Jobs: 2 * base * mult, ArrivalWindow: 2},
			{Name: fairTenants[2], Jobs: 2 * base, ArrivalWindow: 10},
		}})
	steadyAt := sim.Time(0)
	for _, j := range tr.Jobs {
		if at := sim.FromSeconds(j.SubmitAt); at > steadyAt {
			steadyAt = at
		}
	}

	// Step-function integration of per-tenant running executors over the
	// contended instants: between two event boundaries the controller's
	// state is constant, so usage accumulates running·dt from the previous
	// snapshot whenever every tenant had a resource request sitting in the
	// scheduler queue — the only instants where shares are
	// demand-unconstrained and a weighted-fair policy owes each tenant
	// running_i ∝ weight_i. Pending-task counts are deliberately not the
	// gate: a tenant whose remaining work is gated behind its own producer
	// stages cannot absorb more executors, and lending its slice out is
	// work conservation, not unfairness. Instants before the last arrival
	// are excluded too: while offered loads are still ramping, the pool's
	// composition reflects arrival order, not the policy.
	var usage [3]float64
	var window float64
	var last sim.Time
	var prevRunning [3]int
	prevContended := false
	snap := func() {
		var running [3]int
		contended := true
		byName := map[string]core.TenantCounts{}
		for _, tc := range ctrl.TenantSnapshots() {
			byName[tc.Tenant] = tc
		}
		for i, name := range fairTenants {
			tc := byName[name]
			running[i] = tc.Running
			if tc.Queued == 0 {
				contended = false
			}
		}
		prevRunning, prevContended = running, contended
	}
	r.SetEventHook(func(now sim.Time) {
		if dt := (now - last).Seconds(); dt > 0 {
			if prevContended && last >= steadyAt {
				for i := range usage {
					usage[i] += float64(prevRunning[i]) * dt
				}
				window += dt
			}
			last = now
		}
		snap()
	})

	for _, j := range tr.Jobs {
		r.SubmitAt(sim.FromSeconds(j.SubmitAt), j.Job)
	}
	r.RunBounded(4*3600*sim.Second, 5_000_000)

	row := FairShareRow{Policy: policy, Burst: fmt.Sprintf("%dx", mult),
		ContendedSec: window, Jobs: len(tr.Jobs), Reclaims: ctrl.ReclaimedGangs()}

	var total float64
	for _, u := range usage {
		total += u
	}
	var x [3]float64 // weight-normalized shares
	var sum, sumSq, mean float64
	for i, u := range usage {
		if total > 0 {
			row.Shares[i] = u / total
		}
		x[i] = u / fairWeights[i]
		sum += x[i]
		sumSq += x[i] * x[i]
	}
	if sumSq > 0 {
		row.Jain = sum * sum / (3 * sumSq)
	}
	mean = sum / 3
	for _, xi := range x {
		if mean > 0 {
			if dev := 100 * abs(xi-mean) / mean; dev > row.MaxDevPct {
				row.MaxDevPct = dev
			}
		}
	}

	durs := map[string][]float64{}
	for _, jr := range r.Results().SortedJobs() {
		if jr.Completed {
			row.Completed++
			durs[jr.Tenant] = append(durs[jr.Tenant], jr.Duration())
		}
	}
	for i, name := range fairTenants {
		if d := durs[name]; len(d) > 0 {
			row.P99[i] = metrics.Quantile(d, 0.99)
		}
	}
	return row
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
