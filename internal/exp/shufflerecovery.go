package exp

import (
	"io"

	"swift/internal/chaos"
	"swift/internal/core"
	"swift/internal/sim"
)

// ShuffleRecoveryRow is one arm of the recompute-vs-replica recovery-cost
// comparison: a trace workload soaked under the same machine-loss and
// Cache-Worker-crash schedule, once with single-copy outputs (every loss
// whose data is still needed re-runs its producer) and once with the
// shuffle service's R-way replication (losses fail over to a surviving
// copy and only fully-orphaned outputs recompute).
type ShuffleRecoveryRow struct {
	Policy      string // "recompute" (R=1) or "replica" (R=3)
	Replicas    int
	Jobs        int
	Completed   int
	Failed      int
	ReplicaHits int // lost serving copies promoted in place
	Recomputes  int // lost outputs that re-ran their producer
	Restarts    int
	LastFinish  float64 // recovery-cost makespan, seconds
	MeanLatency float64 // mean end-to-end latency of completed jobs, s
	Violations  int
	TraceHash   uint64
}

// shuffleRecoveryProfile is a machine-loss-heavy fault mix: Cache-Worker
// crashes and machine crashes destroy buffered outputs wholesale, which is
// exactly the damage replication absorbs. Direct output-lost faults stay
// at zero — they model fleet-wide buffer eviction, which bypasses replicas
// by design and would only add identical noise to both arms.
func shuffleRecoveryProfile() chaos.Profile {
	p := chaos.DefaultProfile()
	p.MachineCrashPerMin = 1
	p.CacheWorkerCrashPerMin = 4
	p.OutputLostPerMin = 0
	p.TaskCrashPerMin = 0.5
	p.TaskTimeoutPerMin = 0
	p.StragglerPerMin = 0
	p.ExecutorRestartPerMin = 0
	p.MachineUnhealthyPerMin = 0.5
	return p
}

// ShuffleRecovery runs the recovery-cost comparison behind the shuffle
// service's replication: identical seed, workload and fault schedule, with
// only the replication factor differing between arms. With R=1 every lost
// still-needed output is a producer re-run (and its consumers may cascade);
// with R=3 the controller consults surviving replicas first, so recomputes
// collapse to the rare all-copies-lost case and recovery cost (last-finish
// time, mean latency) drops with them.
func ShuffleRecovery(cfg Config) []ShuffleRecoveryRow {
	jobs, machines := 16, 12
	window := 600 * sim.Second
	if cfg.Reduced {
		jobs, machines = 8, 8
		window = 120 * sim.Second
	}
	profile := shuffleRecoveryProfile()
	arms := []struct {
		policy   string
		replicas int
	}{
		{"recompute", 1},
		{"replica", 3},
	}
	rows := make([]ShuffleRecoveryRow, 0, len(arms))
	for _, arm := range arms {
		opts := core.DefaultOptions()
		opts.Obs = cfg.Obs
		opts.ShuffleReplicas = arm.replicas
		res := chaos.Run(chaos.Config{
			Seed:        cfg.Seed,
			Jobs:        jobs,
			Machines:    machines,
			FaultWindow: window,
			Profile:     &profile,
			Options:     &opts,
		})
		rows = append(rows, ShuffleRecoveryRow{
			Policy:      arm.policy,
			Replicas:    arm.replicas,
			Jobs:        res.Jobs,
			Completed:   res.Completed,
			Failed:      res.Failed,
			ReplicaHits: res.ReplicaHits,
			Recomputes:  res.Recomputes,
			Restarts:    res.Restarts,
			LastFinish:  res.LastFinish.Seconds(),
			MeanLatency: res.MeanLatency,
			Violations:  len(res.Violations),
			TraceHash:   res.TraceHash,
		})
	}
	return rows
}

func reportShuffleRecovery(cfg Config, w io.Writer) error {
	t := &Table{Title: "Shuffle recovery — recompute (R=1) vs replica failover (R=3) under machine loss",
		Headers: []string{"policy", "replicas", "jobs", "completed", "replica_hits", "recomputes", "restarts", "last_finish_s", "mean_latency_s", "violations"}}
	for _, r := range ShuffleRecovery(cfg) {
		t.Add(r.Policy, r.Replicas, r.Jobs, r.Completed, r.ReplicaHits, r.Recomputes, r.Restarts, r.LastFinish, r.MeanLatency, r.Violations)
	}
	_, err := t.WriteTo(w)
	return err
}
