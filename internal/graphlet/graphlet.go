// Package graphlet implements Swift's shuffle-mode-aware job partitioning
// (Section III-A, Algorithms 1 and 2): a job DAG is split into graphlets —
// maximal sub-graphs connected by pipeline edges — and the graphlets are
// gang scheduled one at a time in dependency order, which avoids both the
// resource fragmentation of whole-job gang scheduling and the idle-executor
// waste of scheduling consumers long before their input data exist.
package graphlet

import (
	"fmt"
	"sort"
	"strings"

	"swift/internal/dag"
)

// Graphlet is a sub-graph of a job: the unit of gang scheduling and of
// failure-recovery scoping in Swift.
type Graphlet struct {
	// Index is the graphlet's position in Algorithm 1's output order
	// (0-based). The paper numbers graphlets from 1 in Fig. 4.
	Index int
	// Stages are the member stage names in the order Algorithm 2
	// discovered them.
	Stages []string
	// Trigger is the stage whose completion releases this graphlet's
	// dependants ("Trigger Stage" in Fig. 4): the member stage with
	// outgoing barrier edges. Empty if the graphlet has none (terminal).
	Trigger string
	// Tasks is the total task count, i.e. the executors the graphlet
	// needs when gang scheduled.
	Tasks int
	// DependsOn lists indices of graphlets that must complete (their
	// barrier-producing stages finish) before this one may be submitted.
	DependsOn []int
}

// String renders the graphlet like the paper's Fig. 4 annotations.
func (g *Graphlet) String() string {
	return fmt.Sprintf("graphlet %d {%s} trigger=%s tasks=%d",
		g.Index+1, strings.Join(g.Stages, ","), g.Trigger, g.Tasks)
}

// Contains reports whether the named stage belongs to this graphlet.
func (g *Graphlet) Contains(stage string) bool {
	for _, s := range g.Stages {
		if s == stage {
			return true
		}
	}
	return false
}

// Partition runs Algorithm 1 (Shuffle-Mode-Aware Job Partitioning) on the
// job and returns the graphlet list. The input job is not modified. The
// result is deterministic: stages are consumed in topological order with
// ties broken by insertion order, exactly once each.
func Partition(job *dag.Job) ([]*Graphlet, error) {
	topo, err := job.TopoOrder()
	if err != nil {
		return nil, err
	}

	remaining := make(map[string]bool, len(topo))
	for _, s := range topo {
		remaining[s] = true
	}

	var graphlets []*Graphlet
	// Algorithm 1: while Job_DAG not empty, pop the first stage in
	// topology order, open a new graphlet, and expand it.
	for _, start := range topo {
		if !remaining[start] {
			continue
		}
		delete(remaining, start)
		g := &Graphlet{Index: len(graphlets)}
		scanAndAddStages(job, start, g, remaining)
		graphlets = append(graphlets, g)
	}
	graphlets = mergeCyclicGroups(job, graphlets)
	for _, g := range graphlets {
		finish(job, g)
	}
	resolveDependencies(job, graphlets)
	return graphlets, nil
}

// mergeCyclicGroups collapses strongly connected groups of graphlets into
// single graphlets. SQL planners emit plans whose graphlet dependencies are
// acyclic (the paper's case), but on an arbitrary DAG two pipeline
// components can carry barrier edges in both directions; gang scheduling
// them together is the sound fallback. Graphlets are re-indexed in the
// order their first member appeared.
func mergeCyclicGroups(job *dag.Job, graphlets []*Graphlet) []*Graphlet {
	owner := make(map[string]int)
	for _, g := range graphlets {
		for _, s := range g.Stages {
			owner[s] = g.Index
		}
	}
	// Union-find over graphlet indices; union endpoints of any barrier
	// edge cycle. Detect cycles by Tarjan-free iteration: union every
	// pair of graphlets that reach each other. With the small graphlet
	// counts of real jobs an O(G^2) reachability check is fine.
	adj := make(map[int]map[int]bool)
	for _, e := range job.Edges() {
		if e.Mode != dag.Barrier {
			continue
		}
		a, b := owner[e.From], owner[e.To]
		if a == b {
			continue
		}
		if adj[a] == nil {
			adj[a] = make(map[int]bool)
		}
		adj[a][b] = true
	}
	sortedNeighbors := func(set map[int]bool) []int {
		ns := make([]int, 0, len(set))
		for m := range set {
			ns = append(ns, m)
		}
		sort.Ints(ns)
		return ns
	}
	reach := func(from, to int) bool {
		seen := map[int]bool{from: true}
		stack := []int{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			for _, m := range sortedNeighbors(adj[n]) {
				if !seen[m] {
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
		return false
	}
	group := make([]int, len(graphlets))
	for i := range group {
		group[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		if group[i] != i {
			group[i] = find(group[i])
		}
		return group[i]
	}
	merged := false
	for a := range graphlets {
		for b := range adj[a] {
			if find(a) != find(b) && reach(b, a) {
				group[find(a)] = find(b)
				merged = true
			}
		}
	}
	if !merged {
		return graphlets
	}
	byRoot := make(map[int]*Graphlet)
	var out []*Graphlet
	for _, g := range graphlets {
		root := find(g.Index)
		t, ok := byRoot[root]
		if !ok {
			t = &Graphlet{Index: len(out)}
			byRoot[root] = t
			out = append(out, t)
		}
		t.Stages = append(t.Stages, g.Stages...)
	}
	// Merging may connect further cycles through the coarser graph;
	// recurse until a fixed point.
	return mergeCyclicGroups(job, out)
}

// scanAndAddStages is Algorithm 2: add the stage, then recursively absorb
// every not-yet-assigned neighbour reachable over a pipeline edge, in both
// the output and the input direction.
func scanAndAddStages(job *dag.Job, stage string, g *Graphlet, remaining map[string]bool) {
	g.Stages = append(g.Stages, stage)
	for _, e := range job.Out(stage) {
		if remaining[e.To] && e.Mode == dag.Pipeline {
			delete(remaining, e.To)
			scanAndAddStages(job, e.To, g, remaining)
		}
	}
	for _, e := range job.In(stage) {
		if remaining[e.From] && e.Mode == dag.Pipeline {
			delete(remaining, e.From)
			scanAndAddStages(job, e.From, g, remaining)
		}
	}
}

// finish computes derived fields: task total and trigger stage.
func finish(job *dag.Job, g *Graphlet) {
	for _, s := range g.Stages {
		g.Tasks += job.Stage(s).Tasks
	}
	// The trigger stage is the member with at least one outgoing barrier
	// edge; if several exist the topologically last one gates the most
	// dependants, so prefer the one with the most member predecessors
	// (deterministic tie-break by name).
	var candidates []string
	for _, s := range g.Stages {
		for _, e := range job.Out(s) {
			if e.Mode == dag.Barrier {
				candidates = append(candidates, s)
				break
			}
		}
	}
	if len(candidates) == 0 {
		return
	}
	sort.Strings(candidates)
	best, bestDepth := candidates[0], -1
	for _, c := range candidates {
		d := depthWithin(job, g, c)
		if d > bestDepth {
			best, bestDepth = c, d
		}
	}
	g.Trigger = best
}

// depthWithin returns the longest pipeline-path length from any member
// stage to the given stage, staying inside the graphlet.
func depthWithin(job *dag.Job, g *Graphlet, stage string) int {
	memo := make(map[string]int)
	var rec func(s string) int
	rec = func(s string) int {
		if d, ok := memo[s]; ok {
			return d
		}
		memo[s] = 0 // cycle guard; DAG makes this unreachable
		best := 0
		for _, e := range job.In(s) {
			if e.Mode == dag.Pipeline && g.Contains(e.From) {
				if d := rec(e.From) + 1; d > best {
					best = d
				}
			}
		}
		memo[s] = best
		return best
	}
	return rec(stage)
}

// resolveDependencies fills DependsOn: graphlet B depends on graphlet A when
// a barrier edge runs from a stage in A to a stage in B. The paper's
// submission rule is conservative — "a graphlet can be submitted only when
// all its input data are ready" — so every barrier in-edge is a dependency.
func resolveDependencies(job *dag.Job, graphlets []*Graphlet) {
	owner := make(map[string]int)
	for _, g := range graphlets {
		for _, s := range g.Stages {
			owner[s] = g.Index
		}
	}
	for _, g := range graphlets {
		seen := make(map[int]bool)
		for _, s := range g.Stages {
			for _, e := range job.In(s) {
				if e.Mode != dag.Barrier {
					continue
				}
				from := owner[e.From]
				if from != g.Index && !seen[from] {
					seen[from] = true
					g.DependsOn = append(g.DependsOn, from)
				}
			}
		}
		sort.Ints(g.DependsOn)
	}
}

// Find returns the graphlet containing the named stage, or nil.
func Find(graphlets []*Graphlet, stage string) *Graphlet {
	for _, g := range graphlets {
		if g.Contains(stage) {
			return g
		}
	}
	return nil
}

// SubmissionOrder returns graphlet indices in a valid submission order:
// a graphlet appears only after everything it depends on. Partition already
// emits graphlets in such an order (it walks stages topologically), but the
// function re-derives it defensively and errors on inconsistency.
func SubmissionOrder(graphlets []*Graphlet) ([]int, error) {
	done := make(map[int]bool, len(graphlets))
	var order []int
	for len(order) < len(graphlets) {
		progressed := false
		for _, g := range graphlets {
			if done[g.Index] {
				continue
			}
			ready := true
			for _, d := range g.DependsOn {
				if !done[d] {
					ready = false
					break
				}
			}
			if ready {
				done[g.Index] = true
				order = append(order, g.Index)
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("graphlet: cyclic graphlet dependencies")
		}
	}
	return order, nil
}
