package graphlet

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"swift/internal/dag"
)

// q9 builds the TPC-H Q9 DAG of Fig. 4: stages M1,M2,M3,J4 / M5,J6 /
// M7,M8,R9,J10 / R11,R12 with MergeSort in J4, J6 and J10 making the edges
// J4->J6, J6->J10 and J10->R11 barriers.
func q9(t *testing.T) *dag.Job {
	t.Helper()
	ms := func() []dag.Operator {
		return []dag.Operator{dag.Op(dag.OpShuffleRead), dag.Op(dag.OpMergeSort), dag.Op(dag.OpShuffleWrite)}
	}
	b := dag.NewBuilder("q9").
		Stage("M1", 956, dag.Op(dag.OpTableScan), dag.Op(dag.OpShuffleWrite)).
		Stage("M2", 220, dag.Op(dag.OpTableScan), dag.Op(dag.OpShuffleWrite)).
		Stage("M3", 3, dag.Op(dag.OpTableScan), dag.Op(dag.OpShuffleWrite)).
		StageOpt(&dag.Stage{Name: "J4", Tasks: 256, Operators: ms(), Idempotent: true}).
		Stage("M5", 403, dag.Op(dag.OpTableScan), dag.Op(dag.OpShuffleWrite)).
		StageOpt(&dag.Stage{Name: "J6", Tasks: 256, Operators: ms(), Idempotent: true}).
		Stage("M7", 220, dag.Op(dag.OpTableScan), dag.Op(dag.OpShuffleWrite)).
		Stage("M8", 20, dag.Op(dag.OpTableScan), dag.Op(dag.OpShuffleWrite)).
		Stage("R9", 64, dag.Op(dag.OpShuffleRead), dag.Op(dag.OpHashJoin), dag.Op(dag.OpShuffleWrite)).
		StageOpt(&dag.Stage{Name: "J10", Tasks: 128, Operators: ms(), Idempotent: true}).
		Stage("R11", 32, dag.Op(dag.OpShuffleRead), dag.Op(dag.OpHashAggregate), dag.Op(dag.OpShuffleWrite)).
		Stage("R12", 1, dag.Op(dag.OpShuffleRead), dag.Op(dag.OpAdhocSink)).
		Pipeline("M1", "J4", 0).Pipeline("M2", "J4", 0).Pipeline("M3", "J4", 0).
		Pipeline("M5", "J6", 0).
		Pipeline("M7", "J10", 0).Pipeline("M8", "R9", 0).Pipeline("R9", "J10", 0).
		Pipeline("R11", "R12", 0)
	j := b.MustBuild()
	// The barrier edges come from the producers' MergeSort via Classify.
	for _, e := range []dag.Edge{{From: "J4", To: "J6"}, {From: "J6", To: "J10"}, {From: "J10", To: "R11"}} {
		ec := e
		ec.Op = dag.OpShuffleRead
		if err := j.AddEdge(&ec); err != nil {
			t.Fatal(err)
		}
	}
	j.Classify()
	return j
}

func TestPartitionQ9MatchesPaper(t *testing.T) {
	gs, err := Partition(q9(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 4 {
		t.Fatalf("got %d graphlets, want 4:\n%v", len(gs), gs)
	}
	want := [][]string{
		{"M1", "M2", "M3", "J4"},
		{"M5", "J6"},
		{"M7", "M8", "R9", "J10"},
		{"R11", "R12"},
	}
	for i, stages := range want {
		got := append([]string(nil), gs[i].Stages...)
		if !sameSet(got, stages) {
			t.Errorf("graphlet %d = %v, want %v", i+1, got, stages)
		}
	}
	triggers := []string{"J4", "J6", "J10", ""}
	for i, w := range triggers {
		if gs[i].Trigger != w {
			t.Errorf("graphlet %d trigger = %q, want %q", i+1, gs[i].Trigger, w)
		}
	}
	// Dependency structure: g2 on g1, g3 on g2, g4 on g3 (Fig. 4 order).
	if !reflect.DeepEqual(gs[1].DependsOn, []int{0}) {
		t.Errorf("g2 deps = %v", gs[1].DependsOn)
	}
	if !reflect.DeepEqual(gs[2].DependsOn, []int{1}) {
		t.Errorf("g3 deps = %v", gs[2].DependsOn)
	}
	if !reflect.DeepEqual(gs[3].DependsOn, []int{2}) {
		t.Errorf("g4 deps = %v", gs[3].DependsOn)
	}
	if gs[0].Tasks != 956+220+3+256 {
		t.Errorf("g1 tasks = %d", gs[0].Tasks)
	}
}

func TestSubmissionOrderQ9(t *testing.T) {
	gs, err := Partition(q9(t))
	if err != nil {
		t.Fatal(err)
	}
	order, err := SubmissionOrder(gs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3}) {
		t.Errorf("submission order = %v", order)
	}
}

func TestPartitionSingleStage(t *testing.T) {
	j := dag.NewBuilder("one").Stage("s", 7).MustBuild()
	gs, err := Partition(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 1 || gs[0].Tasks != 7 || gs[0].Trigger != "" {
		t.Errorf("got %v", gs)
	}
}

func TestPartitionAllPipeline(t *testing.T) {
	// A diamond of pipeline edges must collapse into one graphlet.
	j := dag.NewBuilder("dia").
		Stage("a", 1).Stage("b", 1).Stage("c", 1).Stage("d", 1).
		Pipeline("a", "b", 0).Pipeline("a", "c", 0).
		Pipeline("b", "d", 0).Pipeline("c", "d", 0).
		MustBuild()
	gs, err := Partition(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 1 || len(gs[0].Stages) != 4 {
		t.Errorf("got %v", gs)
	}
}

func TestPartitionAllBarrier(t *testing.T) {
	// A chain of barrier edges yields one graphlet per stage.
	j := dag.NewBuilder("chain").
		Stage("a", 1).Stage("b", 1).Stage("c", 1).
		Barrier("a", "b", 0).Barrier("b", "c", 0).
		MustBuild()
	gs, err := Partition(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 3 {
		t.Fatalf("got %d graphlets, want 3", len(gs))
	}
	if gs[0].Trigger != "a" || gs[1].Trigger != "b" || gs[2].Trigger != "" {
		t.Errorf("triggers = %q %q %q", gs[0].Trigger, gs[1].Trigger, gs[2].Trigger)
	}
}

func TestPartitionDisconnected(t *testing.T) {
	j := dag.NewBuilder("disc").
		Stage("a", 2).Stage("b", 3).
		MustBuild()
	gs, err := Partition(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 2 {
		t.Fatalf("got %d graphlets, want 2", len(gs))
	}
	if len(gs[0].DependsOn) != 0 || len(gs[1].DependsOn) != 0 {
		t.Error("disconnected graphlets should have no dependencies")
	}
}

func TestPartitionMixedFanIn(t *testing.T) {
	// A consumer with one pipeline parent and one barrier parent joins the
	// pipeline parent's graphlet and depends on the barrier parent's.
	j := dag.NewBuilder("fanin").
		Stage("p", 1).Stage("q", 1).Stage("c", 1).
		Pipeline("p", "c", 0).Barrier("q", "c", 0).
		MustBuild()
	gs, err := Partition(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 2 {
		t.Fatalf("got %d graphlets, want 2: %v", len(gs), gs)
	}
	gp := Find(gs, "p")
	if gp == nil || !gp.Contains("c") {
		t.Fatalf("p and c not co-located: %v", gs)
	}
	gq := Find(gs, "q")
	if gq == nil || gq == gp {
		t.Fatal("q should be alone")
	}
	if !reflect.DeepEqual(gp.DependsOn, []int{gq.Index}) {
		t.Errorf("deps of {p,c} = %v, want [%d]", gp.DependsOn, gq.Index)
	}
}

func TestFind(t *testing.T) {
	gs, err := Partition(q9(t))
	if err != nil {
		t.Fatal(err)
	}
	if g := Find(gs, "R9"); g == nil || g.Index != 2 {
		t.Errorf("Find(R9) = %v", g)
	}
	if g := Find(gs, "nope"); g != nil {
		t.Errorf("Find(nope) = %v", g)
	}
}

func TestGraphletString(t *testing.T) {
	gs, err := Partition(q9(t))
	if err != nil {
		t.Fatal(err)
	}
	s := gs[0].String()
	if s == "" || gs[0].Index != 0 {
		t.Errorf("String() = %q", s)
	}
}

// randomJob mirrors the generator in package dag's property tests.
func randomJob(r *rand.Rand) *dag.Job {
	n := 1 + r.Intn(14)
	j := dag.NewJob("rand")
	for i := 0; i < n; i++ {
		if err := j.AddStage(&dag.Stage{Name: fmt.Sprintf("s%d", i), Tasks: 1 + r.Intn(40), Idempotent: true}); err != nil {
			panic(err)
		}
	}
	for to := 1; to < n; to++ {
		for from := 0; from < to; from++ {
			if r.Intn(3) != 0 {
				continue
			}
			mode := dag.Pipeline
			if r.Intn(2) == 0 {
				mode = dag.Barrier
			}
			if err := j.AddEdge(&dag.Edge{From: fmt.Sprintf("s%d", from), To: fmt.Sprintf("s%d", to),
				Op: dag.OpShuffleRead, Mode: mode}); err != nil {
				panic(err)
			}
		}
	}
	return j
}

// TestPartitionProperty validates the core partition invariants over random
// DAGs: exact cover, task totals preserved, graphlets equal the connected
// components of the pipeline-edge graph (which is what Algorithm 2's
// bidirectional pipeline expansion computes — note a barrier edge may then
// legally sit *inside* a graphlet when its endpoints are also pipeline-
// connected), and submission order valid.
func TestPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		j := randomJob(rand.New(rand.NewSource(seed)))
		gs, err := Partition(j)
		if err != nil {
			return false
		}
		owner := make(map[string]int)
		total := 0
		for _, g := range gs {
			for _, s := range g.Stages {
				if _, dup := owner[s]; dup {
					return false // stage in two graphlets
				}
				owner[s] = g.Index
			}
			total += g.Tasks
		}
		if len(owner) != j.NumStages() || total != j.NumTasks() {
			return false
		}
		// Union-find over pipeline edges: the reference partition.
		parent := make(map[string]string, j.NumStages())
		var find func(string) string
		find = func(s string) string {
			if parent[s] == s {
				return s
			}
			parent[s] = find(parent[s])
			return parent[s]
		}
		for _, s := range j.StageNames() {
			parent[s] = s
		}
		for _, e := range j.Edges() {
			if e.Mode == dag.Pipeline {
				parent[find(e.From)] = find(e.To)
			}
		}
		for _, e := range j.Edges() {
			sameComponent := find(e.From) == find(e.To)
			sameGraphlet := owner[e.From] == owner[e.To]
			if e.Mode == dag.Pipeline && !sameGraphlet {
				return false // pipeline edge must be internal
			}
			// The partition is a coarsening of pipeline components:
			// mergeCyclicGroups may fuse components linked by
			// mutually dependent barrier edges, but never splits one.
			if sameComponent && !sameGraphlet {
				return false
			}
		}
		order, err := SubmissionOrder(gs)
		return err == nil && len(order) == len(gs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[string]bool, len(a))
	for _, s := range a {
		m[s] = true
	}
	for _, s := range b {
		if !m[s] {
			return false
		}
	}
	return true
}
