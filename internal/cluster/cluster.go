// Package cluster models the simulated compute platform: machines hosting
// pre-launched executors, the network/disk cost model (model.go), machine
// health states for the failure experiments, and executor allocation with
// the data-locality + machine-load policy of Section III-A2.
//
// Allocation is performance-critical (the scalability experiment allocates
// hundreds of thousands of executors), so the cluster keeps a per-machine
// free-executor stack and a lazy min-heap of machines keyed by load.
package cluster

import (
	"container/heap"
	"fmt"
	"sort"
)

// ExecutorID identifies one executor slot cluster-wide.
type ExecutorID int

// MachineID identifies one machine.
type MachineID int

// Health is a machine's health state (Section IV-A).
type Health int

const (
	// Healthy machines accept new tasks.
	Healthy Health = iota
	// ReadOnly machines finish their running tasks but receive no new
	// ones ("mark it as read-only and stop scheduling new tasks to it").
	ReadOnly
	// Failed machines have crashed; their executors are revoked.
	Failed
)

// String renders the health state.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case ReadOnly:
		return "read-only"
	case Failed:
		return "failed"
	}
	return "unknown"
}

// Machine is one simulated worker machine.
type Machine struct {
	ID        MachineID
	Executors []ExecutorID
	Health    Health
	busy      int          // executors currently running tasks
	freeList  []ExecutorID // idle executors (stack)
	// recentTaskFailures counts task failures since the last health
	// sweep; a burst marks the machine unhealthy.
	recentTaskFailures int
}

// Busy returns the number of executors running tasks.
func (m *Machine) Busy() int { return m.busy }

// Load returns the busy fraction of the machine's executors.
func (m *Machine) Load() float64 {
	if len(m.Executors) == 0 {
		return 1
	}
	return float64(m.busy) / float64(len(m.Executors))
}

// Config sizes a simulated cluster.
type Config struct {
	Machines            int
	ExecutorsPerMachine int
	Model               *Model
}

// Paper100 returns the paper's 100-node evaluation cluster with the
// executor density used throughout the experiments.
func Paper100() Config {
	return Config{Machines: 100, ExecutorsPerMachine: 60, Model: DefaultModel()}
}

// Paper2000 returns the paper's 2,000-node cluster.
func Paper2000() Config {
	return Config{Machines: 2000, ExecutorsPerMachine: 60, Model: DefaultModel()}
}

// loadEntry is a lazy heap entry; stale entries (busy changed since push)
// are discarded at pop time.
type loadEntry struct {
	id   MachineID
	busy int
}

type loadHeap []loadEntry

func (h loadHeap) Len() int { return len(h) }
func (h loadHeap) Less(i, j int) bool {
	if h[i].busy != h[j].busy {
		return h[i].busy < h[j].busy
	}
	return h[i].id < h[j].id
}
func (h loadHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *loadHeap) Push(x interface{}) { *h = append(*h, x.(loadEntry)) }
func (h *loadHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Cluster tracks machines, executor occupancy and active connection load.
type Cluster struct {
	cfg      Config
	machines []*Machine
	owner    []MachineID // executor -> machine
	busyExec []bool      // executor -> running a task
	nFree    int
	byLoad   loadHeap
	inHeap   []bool // machine -> has a (possibly stale) heap entry
	// activeConns approximates the cluster-wide live TCP connection
	// count feeding the congestion model.
	activeConns int
}

// New builds a cluster from the configuration.
func New(cfg Config) *Cluster {
	if cfg.Machines <= 0 || cfg.ExecutorsPerMachine <= 0 {
		panic("cluster: non-positive size")
	}
	if cfg.Model == nil {
		cfg.Model = DefaultModel()
	}
	c := &Cluster{
		cfg:      cfg,
		busyExec: make([]bool, cfg.Machines*cfg.ExecutorsPerMachine),
		inHeap:   make([]bool, cfg.Machines),
	}
	next := ExecutorID(0)
	for i := 0; i < cfg.Machines; i++ {
		m := &Machine{ID: MachineID(i)}
		for j := 0; j < cfg.ExecutorsPerMachine; j++ {
			m.Executors = append(m.Executors, next)
			c.owner = append(c.owner, m.ID)
			next++
		}
		// Stack order: highest ID on top; allocation pops from the top.
		m.freeList = append([]ExecutorID(nil), m.Executors...)
		c.machines = append(c.machines, m)
		c.pushLoad(m)
	}
	c.nFree = len(c.owner)
	return c
}

func (c *Cluster) pushLoad(m *Machine) {
	heap.Push(&c.byLoad, loadEntry{id: m.ID, busy: m.busy})
	c.inHeap[m.ID] = true
}

// Model returns the cost model.
func (c *Cluster) Model() *Model { return c.cfg.Model }

// NumMachines returns the machine count.
func (c *Cluster) NumMachines() int { return len(c.machines) }

// NumExecutors returns the total executor count.
func (c *Cluster) NumExecutors() int { return len(c.owner) }

// FreeExecutors returns how many executors are idle and schedulable.
func (c *Cluster) FreeExecutors() int { return c.nFree }

// BusyExecutors returns how many executors are running tasks.
func (c *Cluster) BusyExecutors() int {
	n := 0
	for _, m := range c.machines {
		n += m.busy
	}
	return n
}

// Machine returns the machine with the given ID.
func (c *Cluster) Machine(id MachineID) *Machine { return c.machines[id] }

// ExecutorBusy reports whether an executor currently holds a task lease
// (audit/diagnostic accessor).
func (c *Cluster) ExecutorBusy(e ExecutorID) bool { return c.busyExec[e] }

// MachineOf returns the machine hosting an executor.
func (c *Cluster) MachineOf(e ExecutorID) MachineID { return c.owner[e] }

// takeFrom pops one free executor from a machine; the caller guarantees
// one exists.
func (c *Cluster) takeFrom(m *Machine) ExecutorID {
	e := m.freeList[len(m.freeList)-1]
	m.freeList = m.freeList[:len(m.freeList)-1]
	c.busyExec[e] = true
	m.busy++
	c.nFree--
	return e
}

// Allocate hands out up to n free executors, preferring machines in
// locality (data locality) but never pushing a preferred machine past 90%
// load — the guard against "scheduling flock" (Section III-A2). Remaining
// demand is served from the least-loaded healthy machines ("for tasks
// without locality preference, the most free machine is chosen"). It
// returns fewer than n when the cluster cannot supply them.
func (c *Cluster) Allocate(n int, locality []MachineID) []ExecutorID {
	if n <= 0 || c.nFree == 0 {
		return nil
	}
	out := make([]ExecutorID, 0, n)
	for _, mid := range locality {
		if len(out) >= n {
			break
		}
		m := c.machines[mid]
		if m.Health != Healthy {
			continue
		}
		localityCap := int(0.9 * float64(len(m.Executors)))
		for len(out) < n && len(m.freeList) > 0 && m.busy < localityCap {
			out = append(out, c.takeFrom(m))
		}
		if !c.inHeap[mid] {
			c.pushLoad(m)
		}
	}
	// Load-balancing pass over the lazy min-heap.
	for len(out) < n && c.nFree > 0 && c.byLoad.Len() > 0 {
		top := c.byLoad[0]
		m := c.machines[top.id]
		if top.busy != m.busy {
			// Stale entry: refresh.
			heap.Pop(&c.byLoad)
			heap.Push(&c.byLoad, loadEntry{id: m.ID, busy: m.busy})
			continue
		}
		if m.Health != Healthy || len(m.freeList) == 0 {
			heap.Pop(&c.byLoad)
			c.inHeap[m.ID] = false
			continue
		}
		out = append(out, c.takeFrom(m))
		c.byLoad[0].busy = m.busy // update key in place, then restore heap order
		heap.Fix(&c.byLoad, 0)
	}
	return out
}

// Release returns executors to the free pool. Executors on non-healthy
// machines are not re-pooled (read-only machines drain; failed machines
// have lost them).
func (c *Cluster) Release(execs []ExecutorID) {
	for _, e := range execs {
		if !c.busyExec[e] {
			continue
		}
		c.busyExec[e] = false
		m := c.machines[c.owner[e]]
		m.busy--
		if m.Health == Healthy {
			m.freeList = append(m.freeList, e)
			c.nFree++
			if !c.inHeap[m.ID] {
				c.pushLoad(m)
			}
		}
	}
}

// SetHealth transitions a machine's health state. Marking a machine Failed
// or ReadOnly removes its idle executors from the pool; restoring it to
// Healthy re-pools the idle ones.
func (c *Cluster) SetHealth(id MachineID, h Health) {
	m := c.machines[id]
	if m.Health == h {
		return
	}
	wasHealthy := m.Health == Healthy
	m.Health = h
	switch {
	case wasHealthy && h != Healthy:
		c.nFree -= len(m.freeList)
	case !wasHealthy && h == Healthy:
		// Re-pool idle executors that are not running tasks. A failed
		// machine's executors were revoked; they come back fresh.
		m.freeList = m.freeList[:0]
		for _, e := range m.Executors {
			if !c.busyExec[e] {
				m.freeList = append(m.freeList, e)
			}
		}
		c.nFree += len(m.freeList)
		if !c.inHeap[id] {
			c.pushLoad(m)
		}
	}
}

// ExecutorsOn returns the busy executors currently hosted by a machine.
func (c *Cluster) ExecutorsOn(id MachineID) []ExecutorID {
	var out []ExecutorID
	for _, e := range c.machines[id].Executors {
		if c.busyExec[e] {
			out = append(out, e)
		}
	}
	return out
}

// RecordTaskFailure bumps a machine's recent failure counter and returns
// the new count, letting the health monitor apply its "large quantity of
// tasks failed in a short time" rule.
func (c *Cluster) RecordTaskFailure(id MachineID) int {
	m := c.machines[id]
	m.recentTaskFailures++
	return m.recentTaskFailures
}

// ResetTaskFailures clears a machine's failure counter (periodic sweep).
func (c *Cluster) ResetTaskFailures(id MachineID) {
	c.machines[id].recentTaskFailures = 0
}

// AddConns and RemoveConns adjust the live connection estimate.
func (c *Cluster) AddConns(n int) { c.activeConns += n }

// RemoveConns lowers the estimate, clamping at zero.
func (c *Cluster) RemoveConns(n int) {
	c.activeConns -= n
	if c.activeConns < 0 {
		c.activeConns = 0
	}
}

// ActiveConns returns the live connection estimate.
func (c *Cluster) ActiveConns() int { return c.activeConns }

// Congestion returns the current congestion level from the model.
func (c *Cluster) Congestion() float64 {
	return c.cfg.Model.Congestion(c.activeConns, len(c.machines))
}

// SpreadMachines returns how many distinct machines host the given
// executors.
func (c *Cluster) SpreadMachines(execs []ExecutorID) int {
	seen := make(map[MachineID]bool)
	for _, e := range execs {
		seen[c.owner[e]] = true
	}
	return len(seen)
}

// MachinesByLoad returns machine IDs sorted by ascending load, a helper
// for deterministic tests and diagnostics.
func (c *Cluster) MachinesByLoad() []MachineID {
	ids := make([]MachineID, len(c.machines))
	for i := range c.machines {
		ids[i] = MachineID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		la, lb := c.machines[ids[a]].Load(), c.machines[ids[b]].Load()
		if la != lb {
			return la < lb
		}
		return ids[a] < ids[b]
	})
	return ids
}

// String summarises the cluster.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster{%d machines, %d executors, %d free, %d conns}",
		len(c.machines), len(c.owner), c.nFree, c.activeConns)
}
