package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() *Cluster {
	return New(Config{Machines: 4, ExecutorsPerMachine: 3, Model: DefaultModel()})
}

func TestNewCounts(t *testing.T) {
	c := small()
	if c.NumMachines() != 4 || c.NumExecutors() != 12 || c.FreeExecutors() != 12 {
		t.Errorf("counts: %v", c)
	}
	if c.BusyExecutors() != 0 {
		t.Error("fresh cluster has busy executors")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid config did not panic")
		}
	}()
	New(Config{Machines: 0, ExecutorsPerMachine: 1})
}

func TestAllocateBalancesLoad(t *testing.T) {
	c := small()
	got := c.Allocate(4, nil)
	if len(got) != 4 {
		t.Fatalf("allocated %d", len(got))
	}
	// With no locality, allocation spreads one per machine.
	seen := make(map[MachineID]int)
	for _, e := range got {
		seen[c.MachineOf(e)]++
	}
	if len(seen) != 4 {
		t.Errorf("allocation not spread: %v", seen)
	}
}

func TestAllocateLocality(t *testing.T) {
	c := small()
	got := c.Allocate(2, []MachineID{2})
	if len(got) != 2 {
		t.Fatalf("allocated %d", len(got))
	}
	for _, e := range got {
		if c.MachineOf(e) != 2 {
			t.Errorf("executor %d on machine %d, want 2", e, c.MachineOf(e))
		}
	}
}

func TestAllocateAntiFlock(t *testing.T) {
	// Locality must not push a machine past 90% load: with 3 slots the
	// third request for the same machine spills elsewhere.
	c := small()
	got := c.Allocate(3, []MachineID{1})
	onPreferred := 0
	for _, e := range got {
		if c.MachineOf(e) == 1 {
			onPreferred++
		}
	}
	if onPreferred != 2 {
		t.Errorf("preferred machine got %d tasks, want 2 (anti-flock)", onPreferred)
	}
}

func TestAllocateExhaustion(t *testing.T) {
	c := small()
	got := c.Allocate(100, nil)
	if len(got) != 12 {
		t.Errorf("allocated %d, want all 12", len(got))
	}
	if c.FreeExecutors() != 0 {
		t.Error("free pool not drained")
	}
	if more := c.Allocate(1, nil); len(more) != 0 {
		t.Errorf("over-allocated %d", len(more))
	}
	if got := c.Allocate(0, nil); got != nil {
		t.Errorf("Allocate(0) = %v", got)
	}
}

func TestReleaseRepools(t *testing.T) {
	c := small()
	got := c.Allocate(5, nil)
	c.Release(got)
	if c.FreeExecutors() != 12 || c.BusyExecutors() != 0 {
		t.Errorf("after release: %v", c)
	}
	// Double release is harmless.
	c.Release(got)
	if c.FreeExecutors() != 12 {
		t.Error("double release corrupted pool")
	}
}

func TestHealthTransitions(t *testing.T) {
	c := small()
	busy := c.Allocate(2, []MachineID{0})
	c.SetHealth(0, ReadOnly)
	if c.FreeExecutors() != 9 {
		t.Errorf("free after read-only = %d, want 9", c.FreeExecutors())
	}
	// Busy executors on a read-only machine keep running...
	if got := c.ExecutorsOn(0); len(got) != 2 {
		t.Errorf("busy on machine 0 = %d", len(got))
	}
	// ...and are not re-pooled on release.
	c.Release(busy)
	if c.FreeExecutors() != 9 {
		t.Errorf("free after draining read-only = %d, want 9", c.FreeExecutors())
	}
	// Allocation skips non-healthy machines even with locality.
	for _, e := range c.Allocate(12, []MachineID{0}) {
		if c.MachineOf(e) == 0 {
			t.Error("allocated on read-only machine")
		}
	}
	c.SetHealth(0, Healthy)
	if c.FreeExecutors() != 3 {
		t.Errorf("free after heal = %d, want 3", c.FreeExecutors())
	}
	if Healthy.String() != "healthy" || ReadOnly.String() != "read-only" || Failed.String() != "failed" {
		t.Error("health strings wrong")
	}
}

func TestTaskFailureCounter(t *testing.T) {
	c := small()
	if got := c.RecordTaskFailure(1); got != 1 {
		t.Errorf("count = %d", got)
	}
	if got := c.RecordTaskFailure(1); got != 2 {
		t.Errorf("count = %d", got)
	}
	c.ResetTaskFailures(1)
	if got := c.RecordTaskFailure(1); got != 1 {
		t.Errorf("after reset = %d", got)
	}
}

func TestConnTracking(t *testing.T) {
	c := small()
	c.AddConns(100)
	if c.ActiveConns() != 100 {
		t.Errorf("conns = %d", c.ActiveConns())
	}
	c.RemoveConns(300)
	if c.ActiveConns() != 0 {
		t.Errorf("conns clamped = %d", c.ActiveConns())
	}
	if c.Congestion() < DefaultModel().BaseCongestion {
		t.Error("congestion below base")
	}
}

func TestSpreadMachines(t *testing.T) {
	c := small()
	e := c.Allocate(6, nil)
	if got := c.SpreadMachines(e); got != 4 {
		t.Errorf("spread = %d, want 4", got)
	}
	if got := c.SpreadMachines(nil); got != 0 {
		t.Errorf("spread(nil) = %d", got)
	}
}

func TestMachinesByLoad(t *testing.T) {
	c := small()
	c.Allocate(2, []MachineID{3})
	ids := c.MachinesByLoad()
	if ids[len(ids)-1] != 3 {
		t.Errorf("most loaded = %v", ids)
	}
}

func TestModelBasics(t *testing.T) {
	m := DefaultModel()
	if m.ConnSetupLatency(0) < m.ConnSetupBase {
		t.Error("latency below base")
	}
	if m.ConnSetupLatency(1) != m.ConnSetupBase+m.ConnSetupCongested {
		t.Error("saturated latency wrong")
	}
	if m.ConnSetupLatency(-5) != m.ConnSetupLatency(0) || m.ConnSetupLatency(5) != m.ConnSetupLatency(1) {
		t.Error("latency not clamped")
	}
	if m.ConnSetupTime(0, 0.5) != 0 {
		t.Error("zero conns should cost nothing")
	}
	if m.ConnSetupTime(100, 0.5) <= m.ConnSetupTime(10, 0.5) {
		t.Error("setup not monotone in conns")
	}
	if m.RetransRate(0) != 0 || m.RetransRate(1<<40) > m.RetransMaxRate {
		t.Error("retrans rate bounds violated")
	}
	if m.RetransSlowdown(0) != 1 {
		t.Error("zero rate should not slow down")
	}
	if m.NetTransferTime(0, 5) != 0 || m.NetTransferTime(100, 0) != 0 {
		t.Error("degenerate transfer should be 0")
	}
	if m.DiskTime(1e9, 1) <= m.NetTransferTime(1e9, 1) {
		t.Error("disk should be slower than network for shuffle")
	}
	if m.MemCopyTime(1e9, 1, 2) != 2*m.MemCopyTime(1e9, 1, 1) {
		t.Error("copies not linear")
	}
	if m.Congestion(0, 0) != m.BaseCongestion {
		t.Error("zero machines should give base congestion")
	}
	if m.Congestion(1<<40, 10) > 1 {
		t.Error("congestion above 1")
	}
}

// TestAllocateReleaseProperty: random allocate/release sequences never
// corrupt pool accounting.
func TestAllocateReleaseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(Config{Machines: 1 + r.Intn(8), ExecutorsPerMachine: 1 + r.Intn(8)})
		var held [][]ExecutorID
		for i := 0; i < 60; i++ {
			if r.Intn(2) == 0 {
				got := c.Allocate(1+r.Intn(10), nil)
				if len(got) > 0 {
					held = append(held, got)
				}
			} else if len(held) > 0 {
				k := r.Intn(len(held))
				c.Release(held[k])
				held = append(held[:k], held[k+1:]...)
			}
			busy := 0
			for _, h := range held {
				busy += len(h)
			}
			if c.BusyExecutors() != busy || c.FreeExecutors()+busy != c.NumExecutors() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
