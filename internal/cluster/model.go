package cluster

import "math"

// Model holds the calibrated cost constants of the simulated platform.
// The defaults correspond to the paper's evaluation clusters (two-socket
// Xeon machines, 10 GbE, a dozen SATA disks) and are calibrated so the
// published result *shapes* hold; see DESIGN.md ("Cost-model calibration").
// All rates are bytes per second, all latencies seconds.
type Model struct {
	// NICBandwidth is the per-machine network bandwidth (10 GbE).
	NICBandwidth float64
	// NetUtilization derates the NIC for protocol overhead and the
	// background workload the paper keeps running during evaluations.
	NetUtilization float64
	// DiskShuffleBandwidth is the effective per-machine disk bandwidth
	// for shuffle files: far below sequential speed because file-based
	// shuffle does many small, seek-heavy accesses (the Dryad/Spark
	// behaviour the paper contrasts against).
	DiskShuffleBandwidth float64
	// MemBandwidth is the per-machine memory-copy bandwidth used when a
	// shuffle mode introduces additional copies.
	MemBandwidth float64

	// ConnSetupBase is the uncongested TCP connection establishment
	// latency; ConnSetupCongested is the asymptote under congestion
	// ("hundreds of milliseconds in a congested network").
	ConnSetupBase      float64
	ConnSetupCongested float64
	// ConnParallelism is how many connections one task establishes
	// concurrently; with hundreds of successors the serial remainder
	// reaches "dozens of seconds", as the paper's logs report.
	ConnParallelism float64
	// ConnCapacityPerMachine is the connection load at which the
	// congestion curve reaches its half-way point.
	ConnCapacityPerMachine float64

	// RetransMaxRate is the retransmission-rate ceiling for Direct
	// Shuffle at very large fan-out (the paper measured 3%);
	// RetransHalfConns is the connection count at which half the ceiling
	// is reached. CachedRetransRate is the rate through Cache Workers
	// (measured < 0.02%).
	RetransMaxRate    float64
	RetransHalfConns  float64
	CachedRetransRate float64
	// RetransPenalty converts a retransmission rate into a transfer
	// slowdown factor (each retransmission stalls a connection for an
	// RTO, so the cost is far above the byte share).
	RetransPenalty float64

	// SwiftPlanDelivery is the time for Swift Admin to ship a cached
	// execution plan to a pre-launched executor (milliseconds).
	SwiftPlanDelivery float64
	// ColdLaunch is the per-stage cost of downloading packages and
	// launching executors in systems without long-running executors
	// (Spark in Fig. 9b: >71 s summed over the critical stages).
	ColdLaunch float64
	// TaskDispatch is the per-wave task dispatch overhead common to all
	// systems.
	TaskDispatch float64

	// IncastStreamCapacity is the concurrent-stream count at which a
	// Cache Worker hotspot (a Remote-mode worker serving all N consumers)
	// doubles its service time; MaxIncastFactor caps the degradation.
	IncastStreamCapacity float64
	MaxIncastFactor      float64

	// LocalHopFactor is the store-and-forward overhead of Local
	// Shuffle's extra Cache-Worker-to-Cache-Worker hop on the transfer
	// path (> 1).
	LocalHopFactor float64

	// BaseCongestion is the standing congestion level contributed by the
	// background workload the paper keeps running in every evaluation.
	BaseCongestion float64

	// ScanBandwidth is the per-task table-scan throughput from the
	// distributed store (columnar decode + local disk / rack-local read).
	ScanBandwidth float64

	// DiskBlockHalfCount is the shuffle block count (M×N) at which
	// file-based shuffle's seek overhead doubles the disk time — the
	// small-file explosion that makes Spark's Terasort "shoot up" past
	// 1000×1000 in Table I.
	DiskBlockHalfCount float64

	// TaskPacking is the average number of a stage's tasks co-located
	// per machine on a busy production cluster; it converts task counts
	// into the machine spread Y of Section III-B ("each machine can run
	// tens of Executors, Y is much smaller than M and N").
	TaskPacking float64
}

// DefaultModel returns the calibration used across the test-suite and
// benchmark harness.
func DefaultModel() *Model {
	return &Model{
		NICBandwidth:           1.25e9, // 10 GbE
		NetUtilization:         0.70,
		DiskShuffleBandwidth:   9.0e7, // seek-bound shuffle files
		MemBandwidth:           5.0e9,
		ConnSetupBase:          0.0005,
		ConnSetupCongested:     0.30,
		ConnParallelism:        16,
		ConnCapacityPerMachine: 4000,
		RetransMaxRate:         0.03,
		RetransHalfConns:       60000,
		CachedRetransRate:      0.0002,
		RetransPenalty:         60,
		SwiftPlanDelivery:      0.005,
		ColdLaunch:             5.5,
		TaskDispatch:           0.05,
		IncastStreamCapacity:   1200,
		MaxIncastFactor:        3,
		LocalHopFactor:         1.10,
		BaseCongestion:         0.02,
		ScanBandwidth:          1.5e8,
		DiskBlockHalfCount:     8e5,
		TaskPacking:            8,
	}
}

// Congestion maps a cluster-wide active connection count to a [0,1)
// congestion level with soft saturation.
func (m *Model) Congestion(activeConns, machines int) float64 {
	if machines <= 0 {
		return m.BaseCongestion
	}
	load := float64(activeConns) / (float64(machines) * m.ConnCapacityPerMachine)
	c := m.BaseCongestion + load/(1+load)
	if c > 1 {
		c = 1
	}
	return c
}

// ConnSetupLatency returns the per-connection establishment latency at the
// given congestion level.
func (m *Model) ConnSetupLatency(congestion float64) float64 {
	if congestion < 0 {
		congestion = 0
	}
	if congestion > 1 {
		congestion = 1
	}
	return m.ConnSetupBase + congestion*m.ConnSetupCongested
}

// ConnSetupTime returns how long one task needs to establish conns
// connections at the given congestion level.
func (m *Model) ConnSetupTime(conns int, congestion float64) float64 {
	if conns <= 0 {
		return 0
	}
	rounds := math.Ceil(float64(conns) / m.ConnParallelism)
	return rounds * m.ConnSetupLatency(congestion)
}

// RetransRate returns the TCP retransmission rate for a direct task-to-task
// shuffle with the given total connection count ("TCP retransmission rate
// increases as the number of connections").
func (m *Model) RetransRate(conns int) float64 {
	if conns <= 0 {
		return 0
	}
	c := float64(conns)
	return m.RetransMaxRate * c / (c + m.RetransHalfConns)
}

// RetransSlowdown converts a retransmission rate into a multiplicative
// transfer slowdown.
func (m *Model) RetransSlowdown(rate float64) float64 {
	return 1 + rate*m.RetransPenalty
}

// NetTransferTime returns the time to move bytes across the network when
// the flows are spread over the given number of machine NICs.
func (m *Model) NetTransferTime(bytes int64, machines int) float64 {
	if bytes <= 0 || machines <= 0 {
		return 0
	}
	bw := m.NICBandwidth * m.NetUtilization * float64(machines)
	return float64(bytes) / bw
}

// DiskTime returns the time to stream bytes through the machines' shuffle
// disks (one pass; a disk-based shuffle pays it twice, write then read).
func (m *Model) DiskTime(bytes int64, machines int) float64 {
	if bytes <= 0 || machines <= 0 {
		return 0
	}
	return float64(bytes) / (m.DiskShuffleBandwidth * float64(machines))
}

// DiskSeekFactor returns the seek-overhead multiplier of a file-based
// shuffle producing blocks = M×N shuffle files.
func (m *Model) DiskSeekFactor(blocks int) float64 {
	if blocks <= 0 || m.DiskBlockHalfCount <= 0 {
		return 1
	}
	return 1 + float64(blocks)/m.DiskBlockHalfCount
}

// Spread converts a stage's task count into the number of machines it
// realistically occupies on a busy cluster (TaskPacking tasks per machine,
// capped at the cluster size).
func (m *Model) Spread(tasks, machines int) int {
	if tasks <= 0 {
		return 1
	}
	p := m.TaskPacking
	if p < 1 {
		p = 1
	}
	y := int(float64(tasks)/p + 0.999)
	if y < 1 {
		y = 1
	}
	if machines > 0 && y > machines {
		y = machines
	}
	return y
}

// ScanTime returns the per-task time to scan its share of bytes base-table
// data with the stage's task count.
func (m *Model) ScanTime(bytes int64, tasks int) float64 {
	if bytes <= 0 || tasks <= 0 {
		return 0
	}
	return float64(bytes) / float64(tasks) / m.ScanBandwidth
}

// MemCopyTime returns the time for copies additional in-memory copies of
// bytes spread across machines.
func (m *Model) MemCopyTime(bytes int64, machines, copies int) float64 {
	if bytes <= 0 || machines <= 0 || copies <= 0 {
		return 0
	}
	return float64(copies) * float64(bytes) / (m.MemBandwidth * float64(machines))
}
