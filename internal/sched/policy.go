// Package sched is the controller's pluggable scheduling policy layer.
// core.Controller owns the mechanism — queue bookkeeping, executor leases,
// gang launch, recovery — and delegates three decisions to a Policy, the
// plugin shape KAI-Scheduler and kube-arbitrator use for their
// proportion / job-order / preempt plugins:
//
//   - JobOrder: in which order, and with what per-item executor caps, the
//     queued graphlet requests are served this round;
//   - Proportion: how much of the cluster each tenant deserves right now
//     (hierarchical weighted share with hard quotas);
//   - Preempt: which running graphlet, if any, to reclaim when the pool is
//     dry and an under-served tenant is starving.
//
// Policies are pure functions of the inputs they are handed: they own no
// clock, no randomness and no state that changes answer-for-equal-inputs,
// so scheduling stays deterministic and replayable. The package must not
// import core (core imports it); everything a policy sees is flattened
// into the plain structs below.
package sched

// Item is one queued graphlet resource request as a policy sees it. Index
// is the request's position in the controller's queue (echoed back in
// Grant); Seq is the owning job's admission sequence number, the FIFO
// tiebreak. Pending is zero for requests whose job already left the live
// set — policies may grant or skip them, the controller discards them
// either way when it processes the grant.
type Item struct {
	Index    int
	Job      string
	Tenant   string
	Graphlet int
	Pending  int
	Seq      int
}

// Gang is one graphlet currently holding executors — the unit of
// preemption. Running counts its placed tasks.
type Gang struct {
	Job      string
	Tenant   string
	Graphlet int
	Running  int
	Seq      int
}

// TenantUsage is one tenant's point-in-time resource footprint: running
// and pending task counts over its live jobs, plus how many of its
// graphlet requests wait in the scheduler queue.
type TenantUsage struct {
	Tenant  string
	Running int
	Pending int
	Queued  int
}

// View is the cluster/tenant state a policy decides against. Tenants is
// sorted by tenant name (the controller guarantees it), so policies can
// iterate it directly without re-sorting.
type View struct {
	TotalExecutors int
	FreeExecutors  int
	Tenants        []TenantUsage
}

// Grant instructs the controller to serve the queue entry at Index,
// launching at most Cap of its pending tasks this round (Cap <= 0 means
// uncapped). Grants are processed in order until the pool runs dry.
type Grant struct {
	Index int
	Cap   int
}

// Share is one tenant's deserved allocation as computed by Proportion.
// Deserved is in executors (fractional: water-filling splits idle share);
// Quota echoes the tenant's hard cap (0 = none).
type Share struct {
	Tenant   string
	Weight   float64
	Deserved float64
	Running  int
	Quota    int
}

// Victim names a whole graphlet to reclaim: every running task of the
// graphlet is aborted and re-pended, and the graphlet re-queues.
type Victim struct {
	Job      string
	Graphlet int
	Tenant   string
}

// Policy is the pluggable decision surface. Implementations must be
// deterministic: equal inputs produce equal outputs, and any internal
// map-keyed state is iterated collect-then-sort.
type Policy interface {
	// Name identifies the policy in status output and experiment reports.
	Name() string
	// JobOrder returns the serve plan for one scheduling round. A nil
	// result means "serve every item in queue order, uncapped" — the FIFO
	// answer, which the controller executes on a fast path with no view
	// construction at all.
	JobOrder(items []Item, view View) []Grant
	// Proportion computes per-tenant deserved shares, sorted by tenant
	// name. A nil result means the policy does not differentiate tenants.
	Proportion(view View) []Share
	// Preempt nominates at most a handful of whole-graphlet victims when
	// the pool is dry and queued work is starving. A nil result means no
	// preemption; the controller re-serves the queue after each reclaim
	// and asks again, so returning a single victim per call is enough.
	Preempt(items []Item, gangs []Gang, view View) []Victim
}
