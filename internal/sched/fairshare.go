package sched

import (
	"math"
	"sort"
)

// QueueSpec declares one node of the hierarchical fair-share tree. Nodes
// named by a tenant are leaves carrying that tenant's demand; nodes named
// as another spec's Parent are interior queues. Weight is the node's share
// among its siblings (<= 0 means FairShareConfig.DefaultWeight); Quota is
// a hard executor cap on the whole subtree (0 = unlimited).
type QueueSpec struct {
	Name   string
	Parent string // "" attaches to the root
	Weight float64
	Quota  int
}

// FairShareConfig configures a FairShare policy. Tenants that show up at
// runtime without a QueueSpec are attached to the root with DefaultWeight,
// so the config only needs to name the tenants it wants to differentiate.
type FairShareConfig struct {
	Queues        []QueueSpec
	DefaultWeight float64 // weight for undeclared tenants; <= 0 means 1
	// NoBorrow disables redistribution of idle share: each queue gets
	// min(demand, weighted slice) and unclaimed capacity stays idle. The
	// default (borrowing) water-fills unclaimed share across queues that
	// still have demand, never past any node's hard quota.
	NoBorrow bool
}

// FairShare is a hierarchical weighted fair-share policy in the
// proportion-plugin mold: Proportion water-fills cluster capacity down
// the queue tree, JobOrder serves the most-under-served tenant first
// under floor(deserved) budgets, and Preempt reclaims one whole graphlet
// per round from the most-over-share tenant when queued work is starving.
type FairShare struct {
	cfg FairShareConfig
}

// NewFairShare builds the policy; the zero config is a flat equal-weight
// share over whatever tenants appear.
func NewFairShare(cfg FairShareConfig) *FairShare {
	if cfg.DefaultWeight <= 0 {
		cfg.DefaultWeight = 1
	}
	return &FairShare{cfg: cfg}
}

// Name implements Policy.
func (f *FairShare) Name() string {
	if f.cfg.NoBorrow {
		return "fairshare-noborrow"
	}
	return "fairshare"
}

// rounding epsilon: deserved shares come out of float division, so a
// tenant deserving "exactly 4" may read 3.9999…; floor/ceil snap first.
const shareEps = 1e-9

func floorShare(x float64) int { return int(math.Floor(x + shareEps)) }
func ceilShare(x float64) int  { return int(math.Ceil(x - shareEps)) }

// fsNode is one queue-tree node during a single Proportion evaluation.
// Trees are rebuilt per call from the static config plus the live view;
// nothing is cached, so the policy stays a pure function of its inputs.
type fsNode struct {
	name     string
	weight   float64
	quota    int
	children []*fsNode
	demand   int     // tenant demand attached directly to this node
	cap      float64 // quota-clamped subtree demand
	assigned float64 // capacity granted to the subtree
	own      float64 // share kept by this node's own tenant (leaf: == assigned)
}

// tree builds the queue tree for one evaluation: declared queues first (in
// declaration order, cycles broken toward the root), then any tenants the
// view carries that the config never named, attached to the root. The
// returned map resolves tenant name -> node.
func (f *FairShare) tree(view View) (*fsNode, map[string]*fsNode) {
	root := &fsNode{name: ""}
	nodes := map[string]*fsNode{"": root}
	parentOf := map[string]string{}
	var order []string
	declare := func(name, parent string) {
		if name == "" {
			return
		}
		if _, ok := nodes[name]; !ok {
			nodes[name] = &fsNode{name: name, weight: f.cfg.DefaultWeight}
			parentOf[name] = parent
			order = append(order, name)
		}
	}
	for _, q := range f.cfg.Queues {
		declare(q.Name, q.Parent)
		if n := nodes[q.Name]; q.Name != "" {
			if q.Weight > 0 {
				n.weight = q.Weight
			}
			if q.Quota > 0 {
				n.quota = q.Quota
			}
		}
	}
	// Parents referenced but never declared become root-attached interior
	// queues. order grows while we walk it, which is the point.
	for i := 0; i < len(order); i++ {
		declare(parentOf[order[i]], "")
	}
	// A parent chain that loops (a->b->a) would detach from the root and
	// silently zero every share under it; reparent such nodes to the root.
	for _, name := range order {
		hops := 0
		for p := parentOf[name]; p != ""; p = parentOf[p] {
			if p == name || hops > len(order) {
				parentOf[name] = ""
				break
			}
			hops++
		}
	}
	for _, name := range order {
		nodes[parentOf[name]].children = append(nodes[parentOf[name]].children, nodes[name])
	}
	// view.Tenants is sorted by name (controller contract), so runtime
	// tenants attach in deterministic order too.
	for _, t := range view.Tenants {
		if _, ok := nodes[t.Tenant]; !ok {
			nodes[t.Tenant] = &fsNode{name: t.Tenant, weight: f.cfg.DefaultWeight}
			root.children = append(root.children, nodes[t.Tenant])
		}
		n := nodes[t.Tenant]
		n.demand += t.Running + t.Pending
	}
	return root, nodes
}

// subtreeCap computes the quota-clamped demand of every subtree
// (post-order). Clamping at every level is what makes quotas hard: no
// water-fill below can hand a subtree more than its cap.
func subtreeCap(n *fsNode) float64 {
	c := float64(n.demand)
	for _, ch := range n.children {
		c += subtreeCap(ch)
	}
	if n.quota > 0 && c > float64(n.quota) {
		c = float64(n.quota)
	}
	n.cap = c
	return c
}

// distribute hands amount executors to the subtree rooted at n and splits
// it among the children. Borrow mode water-fills: capacity a capped child
// cannot absorb is re-offered to its siblings by weight. NoBorrow gives
// each child min(cap, weighted slice) and lets the rest idle. Demand
// attached to an interior node is served from whatever its children leave
// behind.
func (f *FairShare) distribute(n *fsNode, amount float64) {
	if amount > n.cap {
		amount = n.cap
	}
	if amount < 0 {
		amount = 0
	}
	n.assigned = amount
	if len(n.children) == 0 {
		n.own = amount
		return
	}
	given := 0.0
	if f.cfg.NoBorrow {
		totalW := 0.0
		for _, ch := range n.children {
			totalW += ch.weight
		}
		for _, ch := range n.children {
			slice := 0.0
			if totalW > 0 {
				slice = amount * ch.weight / totalW
			}
			f.distribute(ch, slice)
			given += ch.assigned
		}
	} else {
		active := append([]*fsNode(nil), n.children...)
		remaining := amount
		for len(active) > 0 && remaining > shareEps {
			totalW := 0.0
			for _, ch := range active {
				totalW += ch.weight
			}
			if totalW <= 0 {
				break
			}
			unit := remaining / totalW
			next := make([]*fsNode, 0, len(active))
			saturated := false
			for _, ch := range active {
				if unit*ch.weight >= ch.cap-shareEps {
					f.distribute(ch, ch.cap)
					remaining -= ch.assigned
					given += ch.assigned
					saturated = true
				} else {
					next = append(next, ch)
				}
			}
			if !saturated {
				for _, ch := range next {
					f.distribute(ch, unit*ch.weight)
					remaining -= ch.assigned
					given += ch.assigned
				}
				break
			}
			active = next
		}
	}
	n.own = n.assigned - given
	if n.own < 0 {
		n.own = 0
	}
}

// Proportion implements Policy: deserved shares per tenant, sorted by
// tenant name.
func (f *FairShare) Proportion(view View) []Share {
	if len(view.Tenants) == 0 {
		return nil
	}
	root, nodes := f.tree(view)
	subtreeCap(root)
	f.distribute(root, float64(view.TotalExecutors))
	shares := make([]Share, 0, len(view.Tenants))
	for _, t := range view.Tenants {
		n := nodes[t.Tenant]
		shares = append(shares, Share{
			Tenant:   t.Tenant,
			Weight:   n.weight,
			Deserved: n.own,
			Running:  t.Running,
			Quota:    n.quota,
		})
	}
	return shares
}

// shareRatio orders tenants most-under-served first: running over
// deserved, with zero-deserved tenants sorting last when they hold
// executors and first when they hold nothing.
func shareRatio(s Share) float64 {
	if s.Deserved <= shareEps {
		if s.Running > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return float64(s.Running) / s.Deserved
}

// tenantBudget is one tenant's serve plan for a round.
type tenantBudget struct {
	name    string
	budget  int
	pending int
	running int
	quota   int
	ratio   float64
}

// JobOrder implements Policy. Each tenant gets a budget of
// floor(deserved) - running task slots (never past its quota), tenants
// are served most-under-served first, and within a tenant items keep
// queue order. Fractional floors can strand free executors, so leftover
// free capacity tops budgets back up round-robin across tenants that
// still have demand — hard quotas excepted, the plan is work-conserving.
func (f *FairShare) JobOrder(items []Item, view View) []Grant {
	shares := f.Proportion(view)
	if len(shares) == 0 {
		return nil
	}
	hasItem := make(map[string]bool, len(shares))
	for _, it := range items {
		if it.Pending > 0 {
			hasItem[it.Tenant] = true
		}
	}
	order := make([]*tenantBudget, 0, len(shares))
	sum := 0
	for i := range shares {
		s := shares[i]
		b := floorShare(s.Deserved) - s.Running
		if b < 0 {
			b = 0
		}
		if s.Quota > 0 && b > s.Quota-s.Running {
			b = s.Quota - s.Running
			if b < 0 {
				b = 0
			}
		}
		// Liveness floor: a tenant with queued work and nothing running
		// always rates one slot, so rounding can never starve it outright.
		if b == 0 && s.Running == 0 && hasItem[s.Tenant] && (s.Quota == 0 || s.Quota >= 1) {
			b = 1
		}
		tb := &tenantBudget{name: s.Tenant, budget: b, running: s.Running,
			quota: s.Quota, ratio: shareRatio(s)}
		order = append(order, tb)
		sum += b
	}
	for _, t := range view.Tenants {
		for _, tb := range order {
			if tb.name == t.Tenant {
				tb.pending = t.Pending
			}
		}
	}
	// Top up stranded capacity (floor rounding) one slot at a time, most
	// under-served tenant first, demand- and quota-guarded.
	for extra := view.FreeExecutors - sum; extra > 0; {
		progress := false
		for _, tb := range order {
			if extra == 0 {
				break
			}
			if tb.budget >= tb.pending {
				continue
			}
			if tb.quota > 0 && tb.running+tb.budget >= tb.quota {
				continue
			}
			tb.budget++
			extra--
			progress = true
		}
		if !progress {
			break
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].ratio != order[j].ratio {
			return order[i].ratio < order[j].ratio
		}
		return order[i].name < order[j].name
	})
	grants := make([]Grant, 0, len(items))
	for _, tb := range order {
		rem := tb.budget
		if rem <= 0 {
			continue
		}
		for _, it := range items {
			if it.Tenant != tb.name || it.Pending <= 0 {
				continue
			}
			grants = append(grants, Grant{Index: it.Index, Cap: rem})
			take := it.Pending
			if take > rem {
				take = rem
			}
			rem -= take
			if rem <= 0 {
				break
			}
		}
	}
	return grants
}

// Preempt implements Policy: when some tenant with queued work sits below
// its floor(deserved) share (or at zero) with quota headroom, reclaim one
// whole graphlet from the tenant furthest above its ceil(deserved) share.
// The eligible victim gang must leave its owner at or above ceil(deserved)
// after the reclaim — that asymmetric floor/ceil band is what stops
// preemption ping-pong: a tenant granted the liveness floor is never
// itself over-ceil, and a victim is never cut below what it deserves.
// Among eligible gangs the smallest goes first (cheapest reclaim), newest
// job breaking ties, so long-running work is disturbed last.
func (f *FairShare) Preempt(items []Item, gangs []Gang, view View) []Victim {
	shares := f.Proportion(view)
	if len(shares) == 0 {
		return nil
	}
	hasItem := make(map[string]bool, len(shares))
	for _, it := range items {
		if it.Pending > 0 {
			hasItem[it.Tenant] = true
		}
	}
	starved := false
	for _, s := range shares {
		if !hasItem[s.Tenant] {
			continue
		}
		if s.Quota > 0 && s.Running >= s.Quota {
			continue
		}
		if s.Running == 0 || floorShare(s.Deserved)-s.Running > 0 {
			starved = true
			break
		}
	}
	if !starved {
		return nil
	}
	var victim *Share
	surplus := 0
	for i := range shares {
		s := &shares[i]
		sp := s.Running - ceilShare(s.Deserved)
		if sp <= 0 {
			continue
		}
		if victim == nil || sp > surplus || (sp == surplus && s.Tenant < victim.Tenant) {
			victim, surplus = s, sp
		}
	}
	if victim == nil {
		return nil
	}
	keep := ceilShare(victim.Deserved)
	var best *Gang
	for i := range gangs {
		g := &gangs[i]
		if g.Tenant != victim.Tenant || g.Running <= 0 {
			continue
		}
		if victim.Running-g.Running < keep {
			continue
		}
		if best == nil || gangLess(g, best) {
			best = g
		}
	}
	if best == nil {
		return nil
	}
	return []Victim{{Job: best.Job, Graphlet: best.Graphlet, Tenant: best.Tenant}}
}

// gangLess orders candidate victim gangs: fewest running tasks first,
// then newest job (highest admission seq), then job id and graphlet for a
// total deterministic order.
func gangLess(a, b *Gang) bool {
	if a.Running != b.Running {
		return a.Running < b.Running
	}
	if a.Seq != b.Seq {
		return a.Seq > b.Seq
	}
	if a.Job != b.Job {
		return a.Job < b.Job
	}
	return a.Graphlet < b.Graphlet
}
