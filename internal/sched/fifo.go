package sched

// FIFO is the default policy: serve the queue in arrival order, uncapped,
// never preempt, no tenant differentiation. All three methods return nil,
// which the controller recognises and executes on its legacy fast path —
// same code path, same obs stream, byte-identical hashes.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// JobOrder implements Policy: nil means queue order, uncapped.
func (FIFO) JobOrder([]Item, View) []Grant { return nil }

// Proportion implements Policy: FIFO does not differentiate tenants.
func (FIFO) Proportion(View) []Share { return nil }

// Preempt implements Policy: FIFO never reclaims running work.
func (FIFO) Preempt([]Item, []Gang, View) []Victim { return nil }
