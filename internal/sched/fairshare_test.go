package sched

import (
	"math"
	"reflect"
	"testing"
)

func usage(name string, running, pending, queued int) TenantUsage {
	return TenantUsage{Tenant: name, Running: running, Pending: pending, Queued: queued}
}

func deservedOf(t *testing.T, shares []Share, tenant string) float64 {
	t.Helper()
	for _, s := range shares {
		if s.Tenant == tenant {
			return s.Deserved
		}
	}
	t.Fatalf("no share for tenant %q in %+v", tenant, shares)
	return 0
}

func TestFIFOReturnsNil(t *testing.T) {
	p := FIFO{}
	if p.Name() != "fifo" {
		t.Fatalf("name = %q", p.Name())
	}
	view := View{TotalExecutors: 4, FreeExecutors: 4,
		Tenants: []TenantUsage{usage("a", 0, 3, 1)}}
	items := []Item{{Index: 0, Job: "j", Tenant: "a", Pending: 3}}
	if g := p.JobOrder(items, view); g != nil {
		t.Fatalf("JobOrder = %v, want nil", g)
	}
	if s := p.Proportion(view); s != nil {
		t.Fatalf("Proportion = %v, want nil", s)
	}
	if v := p.Preempt(items, nil, view); v != nil {
		t.Fatalf("Preempt = %v, want nil", v)
	}
}

func TestProportionEqualWeights(t *testing.T) {
	p := NewFairShare(FairShareConfig{})
	view := View{TotalExecutors: 10, FreeExecutors: 0, Tenants: []TenantUsage{
		usage("a", 5, 20, 2), usage("b", 5, 20, 2)}}
	shares := p.Proportion(view)
	if got := deservedOf(t, shares, "a"); math.Abs(got-5) > 1e-6 {
		t.Fatalf("a deserved = %v, want 5", got)
	}
	if got := deservedOf(t, shares, "b"); math.Abs(got-5) > 1e-6 {
		t.Fatalf("b deserved = %v, want 5", got)
	}
}

func TestProportionWeighted(t *testing.T) {
	p := NewFairShare(FairShareConfig{Queues: []QueueSpec{
		{Name: "a", Weight: 2}, {Name: "b", Weight: 1}}})
	view := View{TotalExecutors: 9, Tenants: []TenantUsage{
		usage("a", 0, 100, 1), usage("b", 0, 100, 1)}}
	shares := p.Proportion(view)
	if got := deservedOf(t, shares, "a"); math.Abs(got-6) > 1e-6 {
		t.Fatalf("a deserved = %v, want 6", got)
	}
	if got := deservedOf(t, shares, "b"); math.Abs(got-3) > 1e-6 {
		t.Fatalf("b deserved = %v, want 3", got)
	}
}

func TestProportionBorrowsIdleShare(t *testing.T) {
	p := NewFairShare(FairShareConfig{})
	view := View{TotalExecutors: 10, Tenants: []TenantUsage{
		usage("a", 1, 1, 0), usage("b", 2, 40, 3)}}
	shares := p.Proportion(view)
	// a's demand caps at 2; b water-fills the rest of the cluster.
	if got := deservedOf(t, shares, "a"); math.Abs(got-2) > 1e-6 {
		t.Fatalf("a deserved = %v, want 2", got)
	}
	if got := deservedOf(t, shares, "b"); math.Abs(got-8) > 1e-6 {
		t.Fatalf("b deserved = %v, want 8", got)
	}
}

func TestProportionNoBorrowStrandsIdleShare(t *testing.T) {
	p := NewFairShare(FairShareConfig{NoBorrow: true})
	view := View{TotalExecutors: 10, Tenants: []TenantUsage{
		usage("a", 1, 1, 0), usage("b", 2, 40, 3)}}
	shares := p.Proportion(view)
	if got := deservedOf(t, shares, "a"); math.Abs(got-2) > 1e-6 {
		t.Fatalf("a deserved = %v, want 2", got)
	}
	// b keeps only its weighted half; a's unused 3 slots idle.
	if got := deservedOf(t, shares, "b"); math.Abs(got-5) > 1e-6 {
		t.Fatalf("b deserved = %v, want 5", got)
	}
}

func TestProportionHardQuota(t *testing.T) {
	p := NewFairShare(FairShareConfig{Queues: []QueueSpec{
		{Name: "b", Quota: 4}}})
	view := View{TotalExecutors: 10, Tenants: []TenantUsage{
		usage("a", 0, 100, 1), usage("b", 0, 100, 1)}}
	shares := p.Proportion(view)
	if got := deservedOf(t, shares, "b"); math.Abs(got-4) > 1e-6 {
		t.Fatalf("b deserved = %v, want quota-capped 4", got)
	}
	// Borrowing hands b's stranded share to a, but never past b's quota.
	if got := deservedOf(t, shares, "a"); math.Abs(got-6) > 1e-6 {
		t.Fatalf("a deserved = %v, want 6", got)
	}
}

func TestProportionHierarchy(t *testing.T) {
	// prod (weight 3) vs batch (weight 1); two equal children inside prod.
	p := NewFairShare(FairShareConfig{Queues: []QueueSpec{
		{Name: "prod", Weight: 3},
		{Name: "batch", Weight: 1},
		{Name: "web", Parent: "prod"},
		{Name: "etl", Parent: "prod"},
	}})
	view := View{TotalExecutors: 8, Tenants: []TenantUsage{
		usage("batch", 0, 100, 1), usage("etl", 0, 100, 1), usage("web", 0, 100, 1)}}
	shares := p.Proportion(view)
	if got := deservedOf(t, shares, "batch"); math.Abs(got-2) > 1e-6 {
		t.Fatalf("batch deserved = %v, want 2", got)
	}
	if got := deservedOf(t, shares, "web"); math.Abs(got-3) > 1e-6 {
		t.Fatalf("web deserved = %v, want 3", got)
	}
	if got := deservedOf(t, shares, "etl"); math.Abs(got-3) > 1e-6 {
		t.Fatalf("etl deserved = %v, want 3", got)
	}
}

func TestProportionParentCycleFallsBackToRoot(t *testing.T) {
	p := NewFairShare(FairShareConfig{Queues: []QueueSpec{
		{Name: "a", Parent: "b"}, {Name: "b", Parent: "a"}}})
	view := View{TotalExecutors: 4, Tenants: []TenantUsage{
		usage("a", 0, 10, 1), usage("b", 0, 10, 1)}}
	shares := p.Proportion(view)
	total := deservedOf(t, shares, "a") + deservedOf(t, shares, "b")
	if total < 4-1e-6 {
		t.Fatalf("cycle stranded capacity: a+b deserved = %v, want 4", total)
	}
}

func TestJobOrderBudgetsAndOrder(t *testing.T) {
	p := NewFairShare(FairShareConfig{})
	// a is over its share (6 running of 5 deserved), b under (0 of 5).
	view := View{TotalExecutors: 10, FreeExecutors: 4, Tenants: []TenantUsage{
		usage("a", 6, 10, 1), usage("b", 0, 10, 2)}}
	items := []Item{
		{Index: 0, Job: "a1", Tenant: "a", Pending: 10, Seq: 1},
		{Index: 1, Job: "b1", Tenant: "b", Pending: 3, Seq: 2},
		{Index: 2, Job: "b2", Tenant: "b", Pending: 7, Seq: 3},
	}
	grants := p.JobOrder(items, view)
	if len(grants) == 0 {
		t.Fatal("no grants")
	}
	// b is most under-served: its items come first, in queue order.
	if grants[0].Index != 1 {
		t.Fatalf("first grant index = %d, want 1 (tenant b, queue order)", grants[0].Index)
	}
	for _, g := range grants {
		if g.Index == 0 {
			t.Fatalf("over-share tenant a granted: %+v", grants)
		}
	}
	// The plan is work-conserving: b's grants cover all 4 free executors.
	if grants[0].Cap < 4 {
		t.Fatalf("b cap = %d, want >= 4 (free pool covered)", grants[0].Cap)
	}
}

func TestJobOrderLivenessFloor(t *testing.T) {
	p := NewFairShare(FairShareConfig{Queues: []QueueSpec{
		{Name: "a", Weight: 100}, {Name: "b", Weight: 1}}})
	// b deserves well under 1 executor but has queued work and nothing
	// running: it still rates one slot.
	view := View{TotalExecutors: 4, FreeExecutors: 1, Tenants: []TenantUsage{
		usage("a", 3, 50, 1), usage("b", 0, 5, 1)}}
	items := []Item{
		{Index: 0, Job: "a1", Tenant: "a", Pending: 50, Seq: 1},
		{Index: 1, Job: "b1", Tenant: "b", Pending: 5, Seq: 2},
	}
	grants := p.JobOrder(items, view)
	found := false
	for _, g := range grants {
		if g.Index == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("liveness floor missing: grants = %+v", grants)
	}
}

func TestJobOrderQuotaBlocksGrants(t *testing.T) {
	p := NewFairShare(FairShareConfig{Queues: []QueueSpec{{Name: "a", Quota: 2}}})
	view := View{TotalExecutors: 10, FreeExecutors: 8, Tenants: []TenantUsage{
		usage("a", 2, 10, 1)}}
	items := []Item{{Index: 0, Job: "a1", Tenant: "a", Pending: 10, Seq: 1}}
	if grants := p.JobOrder(items, view); len(grants) != 0 {
		t.Fatalf("tenant at quota still granted: %+v", grants)
	}
}

func TestPreemptReclaimsFromMostOverShare(t *testing.T) {
	p := NewFairShare(FairShareConfig{})
	// a holds the whole cluster; b starves with queued work.
	view := View{TotalExecutors: 8, FreeExecutors: 0, Tenants: []TenantUsage{
		usage("a", 8, 0, 0), usage("b", 0, 4, 1)}}
	items := []Item{{Index: 0, Job: "b1", Tenant: "b", Pending: 4, Seq: 9}}
	gangs := []Gang{
		{Job: "a1", Tenant: "a", Graphlet: 0, Running: 5, Seq: 1},
		{Job: "a2", Tenant: "a", Graphlet: 0, Running: 3, Seq: 2},
	}
	victims := p.Preempt(items, gangs, view)
	if len(victims) != 1 {
		t.Fatalf("victims = %+v, want exactly one", victims)
	}
	// a deserves ceil(4) = 4, keeps 8-3 = 5 >= 4 after losing the smaller
	// gang; the 5-task gang would also be eligible but the smaller wins.
	want := Victim{Job: "a2", Graphlet: 0, Tenant: "a"}
	if victims[0] != want {
		t.Fatalf("victim = %+v, want %+v", victims[0], want)
	}
}

func TestPreemptKeepsVictimAtDeservedShare(t *testing.T) {
	p := NewFairShare(FairShareConfig{})
	// a holds everything in one gang: reclaiming it would cut a below its
	// deserved share, so nothing is eligible.
	view := View{TotalExecutors: 8, FreeExecutors: 0, Tenants: []TenantUsage{
		usage("a", 8, 0, 0), usage("b", 0, 4, 1)}}
	items := []Item{{Index: 0, Job: "b1", Tenant: "b", Pending: 4, Seq: 9}}
	gangs := []Gang{{Job: "a1", Tenant: "a", Graphlet: 0, Running: 8, Seq: 1}}
	if v := p.Preempt(items, gangs, view); v != nil {
		t.Fatalf("victims = %+v, want nil (reclaim would undercut victim)", v)
	}
}

func TestPreemptNoStarvationNoVictim(t *testing.T) {
	p := NewFairShare(FairShareConfig{})
	view := View{TotalExecutors: 8, FreeExecutors: 0, Tenants: []TenantUsage{
		usage("a", 4, 2, 1), usage("b", 4, 2, 1)}}
	items := []Item{
		{Index: 0, Job: "a1", Tenant: "a", Pending: 2, Seq: 1},
		{Index: 1, Job: "b1", Tenant: "b", Pending: 2, Seq: 2},
	}
	gangs := []Gang{
		{Job: "a0", Tenant: "a", Graphlet: 0, Running: 4, Seq: 0},
		{Job: "b0", Tenant: "b", Graphlet: 0, Running: 4, Seq: 0},
	}
	if v := p.Preempt(items, gangs, view); v != nil {
		t.Fatalf("victims = %+v, want nil (both tenants at share)", v)
	}
}

func TestPreemptFloorCeilBandStopsPingPong(t *testing.T) {
	p := NewFairShare(FairShareConfig{Queues: []QueueSpec{
		{Name: "a", Weight: 100}, {Name: "b", Weight: 1}}})
	// b got the liveness floor (1 running, deserved < 1): it must never be
	// picked as a victim, because running - ceil(deserved) = 0.
	view := View{TotalExecutors: 4, FreeExecutors: 0, Tenants: []TenantUsage{
		usage("a", 3, 50, 1), usage("b", 1, 5, 1)}}
	items := []Item{
		{Index: 0, Job: "a1", Tenant: "a", Pending: 50, Seq: 1},
		{Index: 1, Job: "b1", Tenant: "b", Pending: 5, Seq: 2},
	}
	gangs := []Gang{
		{Job: "a0", Tenant: "a", Graphlet: 0, Running: 3, Seq: 0},
		{Job: "b1", Tenant: "b", Graphlet: 0, Running: 1, Seq: 2},
	}
	for _, v := range p.Preempt(items, gangs, view) {
		if v.Tenant == "b" {
			t.Fatalf("floor-granted tenant b victimized: %+v", v)
		}
	}
}

func TestPolicyDeterminism(t *testing.T) {
	p := NewFairShare(FairShareConfig{Queues: []QueueSpec{
		{Name: "a", Weight: 2, Quota: 6}, {Name: "b"}, {Name: "c", Weight: 3}}})
	view := View{TotalExecutors: 12, FreeExecutors: 3, Tenants: []TenantUsage{
		usage("a", 4, 9, 2), usage("b", 3, 1, 1), usage("c", 2, 7, 2)}}
	items := []Item{
		{Index: 0, Job: "a1", Tenant: "a", Pending: 9, Seq: 1},
		{Index: 1, Job: "b1", Tenant: "b", Pending: 1, Seq: 2},
		{Index: 2, Job: "c1", Tenant: "c", Pending: 7, Seq: 3},
	}
	gangs := []Gang{
		{Job: "a0", Tenant: "a", Graphlet: 0, Running: 4, Seq: 0},
		{Job: "b0", Tenant: "b", Graphlet: 0, Running: 3, Seq: 0},
		{Job: "c0", Tenant: "c", Graphlet: 1, Running: 2, Seq: 0},
	}
	g1, g2 := p.JobOrder(items, view), p.JobOrder(items, view)
	if !reflect.DeepEqual(g1, g2) {
		t.Fatalf("JobOrder not deterministic: %+v vs %+v", g1, g2)
	}
	s1, s2 := p.Proportion(view), p.Proportion(view)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("Proportion not deterministic: %+v vs %+v", s1, s2)
	}
	v1, v2 := p.Preempt(items, gangs, view), p.Preempt(items, gangs, view)
	if !reflect.DeepEqual(v1, v2) {
		t.Fatalf("Preempt not deterministic: %+v vs %+v", v1, v2)
	}
	for i := 1; i < len(s1); i++ {
		if s1[i-1].Tenant >= s1[i].Tenant {
			t.Fatalf("shares not sorted by tenant: %+v", s1)
		}
	}
}
