// Package baseline configures the comparison systems of the paper's
// evaluation on top of the shared controller and simulator: Spark
// (per-stage scheduling, disk-based shuffle, cold executor launch),
// JetScope (whole-job gang scheduling, fine-grained recovery) and Bubble
// Execution (shuffle-data-size bubbles, disk shuffle between bubbles).
// Because all four systems run the same cost model and differ only in the
// policies below, measured differences isolate the scheduling and shuffle
// decisions the paper credits.
package baseline

import (
	"sort"

	"swift/internal/core"
	"swift/internal/dag"
	"swift/internal/graphlet"
	"swift/internal/shuffle"
)

// Swift returns Swift's own production configuration (graphlet
// partitioning, adaptive in-network shuffle, fine-grained recovery).
func Swift() core.Options { return core.DefaultOptions() }

// Spark models Spark: every stage is an independent scheduling unit, all
// shuffle goes through files on disk, and task launching pays package
// download plus executor start ("launching all the critical tasks takes
// over 71s" in Fig. 9b).
func Spark() core.Options {
	o := core.DefaultOptions()
	o.Partition = core.PerStagePartition
	o.Shuffle = core.DiskShuffle()
	o.ColdLaunch = true
	return o
}

// JetScope models JetScope/Impala-style interactive engines: the whole job
// is gang scheduled as one unit (nothing starts until every executor is
// available), with memory-based streaming between vertices and
// fine-grained recovery.
func JetScope() core.Options {
	o := core.DefaultOptions()
	o.Partition = core.WholeJobPartition
	o.StrictGang = true
	o.StrictFIFO = true
	return o
}

// DefaultBubbleTasks caps a bubble's gang size in BubblePartition; the
// published system sizes bubbles to fit guaranteed resources.
const DefaultBubbleTasks = 512

// Bubble models Bubble Execution: the DAG is divided into "bubbles" by
// shuffle data size and resource demand, pipelined channels run inside a
// bubble, and inter-bubble data is spilled to disk.
func Bubble(maxBubbleTasks int, cutBytes int64) core.Options {
	o := core.DefaultOptions()
	o.Partition = BubblePartition(maxBubbleTasks, cutBytes)
	o.Shuffle = core.BubbleShuffle()
	return o
}

// BubblePartition returns the Bubble Execution partitioner: walk stages in
// topological order and greedily grow the current bubble, cutting an edge
// when (a) it carries at least cutBytes of shuffle data, or (b) absorbing
// the consumer would push the bubble past maxBubbleTasks. The paper notes
// this data-size-driven scheme has "high partitioning overhead and
// long-time waiting" compared with Swift's shuffle-mode heuristic; here it
// also means barrier edges can end up inside a bubble, whose consumers
// then hold executors idle.
func BubblePartition(maxBubbleTasks int, cutBytes int64) core.PartitionPolicy {
	if maxBubbleTasks <= 0 {
		maxBubbleTasks = DefaultBubbleTasks
	}
	return func(job *dag.Job) ([]*graphlet.Graphlet, error) {
		topo, err := job.TopoOrder()
		if err != nil {
			return nil, err
		}
		bubbleOf := make(map[string]int, len(topo))
		sizes := make(map[int]int)
		next := 0
		for _, s := range topo {
			tasks := job.Stage(s).Tasks
			// A stage may only join the newest bubble among its
			// producers: joining an older one while another producer
			// sits in a newer bubble would make the bubble dependency
			// graph cyclic and deadlock submission.
			maxB := -1
			for _, e := range job.In(s) {
				if b := bubbleOf[e.From]; b > maxB {
					maxB = b
				}
			}
			best := -1
			if maxB >= 0 && sizes[maxB]+tasks <= maxBubbleTasks {
				for _, e := range job.In(s) {
					if bubbleOf[e.From] != maxB {
						continue
					}
					if cutBytes > 0 && e.Bytes >= cutBytes {
						continue
					}
					best = maxB // a pipelineable edge from the newest bubble
					break
				}
			}
			if best < 0 {
				best = next
				next++
			}
			bubbleOf[s] = best
			sizes[best] += tasks
		}
		// Materialise bubbles in first-appearance order.
		idx := make(map[int]int)
		var gs []*graphlet.Graphlet
		for _, s := range topo {
			b := bubbleOf[s]
			gi, ok := idx[b]
			if !ok {
				gi = len(gs)
				idx[b] = gi
				gs = append(gs, &graphlet.Graphlet{Index: gi})
			}
			g := gs[gi]
			g.Stages = append(g.Stages, s)
			g.Tasks += job.Stage(s).Tasks
		}
		// Dependencies and triggers from crossing edges.
		owner := make(map[string]int)
		for _, g := range gs {
			for _, s := range g.Stages {
				owner[s] = g.Index
			}
		}
		for _, g := range gs {
			seen := make(map[int]bool)
			for _, s := range g.Stages {
				for _, e := range job.In(s) {
					if d := owner[e.From]; d != g.Index && !seen[d] {
						seen[d] = true
						g.DependsOn = append(g.DependsOn, d)
					}
				}
				for _, e := range job.Out(s) {
					if owner[e.To] != g.Index {
						g.Trigger = s
					}
				}
			}
			sort.Ints(g.DependsOn)
		}
		return gs, nil
	}
}

// JobRestart wraps any configuration with the whole-job-restart recovery
// policy (the Figs. 14/15 baseline).
func JobRestart(o core.Options) core.Options {
	o.Recovery = core.JobRestart
	return o
}

// FixedShuffle wraps Swift with a pinned shuffle mode (Fig. 12's arms).
func FixedShuffle(m shuffle.Mode) core.Options {
	o := core.DefaultOptions()
	o.Shuffle = core.FixedShuffle(m)
	return o
}
