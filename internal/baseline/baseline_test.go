package baseline

import (
	"testing"

	"swift/internal/core"
	"swift/internal/dag"
	"swift/internal/graphlet"
	"swift/internal/shuffle"
)

// diamond builds a 4-stage DAG with one heavy and several light edges.
func diamond() *dag.Job {
	return dag.NewBuilder("d").
		Stage("a", 10).Stage("b", 10).Stage("c", 10).Stage("d", 4).
		Pipeline("a", "b", 1<<20).
		Pipeline("a", "c", 200<<20). // heavy edge
		Pipeline("b", "d", 1<<20).
		Pipeline("c", "d", 1<<20).
		MustBuild()
}

func TestPresetShapes(t *testing.T) {
	if o := Spark(); !o.ColdLaunch || o.StrictGang {
		t.Error("spark preset wrong")
	}
	if o := JetScope(); !o.StrictGang || o.ColdLaunch {
		t.Error("jetscope preset wrong")
	}
	if o := Swift(); o.StrictGang || o.ColdLaunch || o.Recovery != core.FineGrained {
		t.Error("swift preset wrong")
	}
	if o := JobRestart(Swift()); o.Recovery != core.JobRestart {
		t.Error("job-restart wrapper wrong")
	}
	if o := FixedShuffle(shuffle.Local); o.Shuffle(1, 1, false) != shuffle.Local {
		t.Error("fixed shuffle wrong")
	}
	// Shuffle policies of the presets.
	if Spark().Shuffle(5, 5, false) != shuffle.Disk {
		t.Error("spark should use disk shuffle")
	}
	bo := Bubble(0, 50<<20)
	if bo.Shuffle(5, 5, true) != shuffle.Disk || bo.Shuffle(5, 5, false) != shuffle.Direct {
		t.Error("bubble shuffle should be disk across, direct within")
	}
}

func TestBubblePartitionCutsHeavyEdges(t *testing.T) {
	gs, err := BubblePartition(1000, 50<<20)(diamond())
	if err != nil {
		t.Fatal(err)
	}
	find := func(s string) *graphlet.Graphlet { return graphlet.Find(gs, s) }
	if find("a") == nil || find("d") == nil {
		t.Fatal("stages missing from bubbles")
	}
	// The heavy a->c edge must be cut; a->b is pipelined together.
	if find("a") == find("c") {
		t.Error("heavy edge not cut")
	}
	if find("a") != find("b") {
		t.Error("light edge a->b should stay in one bubble")
	}
	// All stages covered exactly once.
	total := 0
	for _, g := range gs {
		total += len(g.Stages)
	}
	if total != 4 {
		t.Errorf("stage cover = %d", total)
	}
	if _, err := graphlet.SubmissionOrder(gs); err != nil {
		t.Errorf("bubble deps not schedulable: %v", err)
	}
}

func TestBubblePartitionRespectsTaskCap(t *testing.T) {
	j := dag.NewBuilder("caps").
		Stage("a", 300).Stage("b", 300).Stage("c", 300).
		Pipeline("a", "b", 1).Pipeline("b", "c", 1).
		MustBuild()
	gs, err := BubblePartition(512, 0)(j)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range gs {
		if g.Tasks > 512 {
			t.Errorf("bubble exceeds cap: %d tasks", g.Tasks)
		}
	}
	if len(gs) < 2 {
		t.Errorf("cap did not split: %d bubbles", len(gs))
	}
}

func TestBubblePartitionAcyclicOnCrossDeps(t *testing.T) {
	// s0 -> s3 (light), s1 -> s2 (cut), s2 -> s3 (light): with naive
	// joining s3 could join s0's bubble while depending on the newer s2
	// bubble. The partition must stay schedulable regardless.
	j := dag.NewBuilder("x").
		Stage("s0", 5).Stage("s1", 5).Stage("s2", 5).Stage("s3", 5).
		Pipeline("s0", "s3", 1<<10).
		Pipeline("s1", "s2", 500<<20).
		Pipeline("s2", "s3", 1<<10).
		MustBuild()
	gs, err := BubblePartition(1000, 100<<20)(j)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := graphlet.SubmissionOrder(gs); err != nil {
		t.Fatalf("cyclic bubbles: %v", err)
	}
}

func TestBubblePartitionDefaultCap(t *testing.T) {
	gs, err := BubblePartition(0, 0)(diamond())
	if err != nil || len(gs) == 0 {
		t.Fatalf("default cap failed: %v", err)
	}
}
