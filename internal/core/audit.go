package core

import (
	"fmt"
	"sort"

	"swift/internal/cluster"
)

// This file is the controller's self-audit surface: deterministic
// introspection snapshots for external monitors (the chaos auditor in
// internal/chaos) and CheckInvariants, which verifies every internal
// consistency property the scheduler and recovery paths are supposed to
// maintain. It is pure observation — calling it never mutates state — and
// all iteration follows submission/stage order so output is reproducible.

// TaskState is the externally visible execution state of one task.
type TaskState int8

const (
	// TaskPending tasks await an executor.
	TaskPending TaskState = iota
	// TaskRunning tasks hold an executor.
	TaskRunning
	// TaskDone tasks completed and (unless OutputLost) hold usable output.
	TaskDone
)

// String renders the state.
func (s TaskState) String() string {
	switch s {
	case TaskPending:
		return "pending"
	case TaskRunning:
		return "running"
	case TaskDone:
		return "done"
	}
	return "invalid"
}

// TaskSnapshot is one task's controller-side state at audit time.
type TaskSnapshot struct {
	Ref      TaskRef
	State    TaskState
	Executor cluster.ExecutorID // current/last attempt's executor (-1 unknown)
	Attempt  int
	Retries  int
	Graphlet int
	// OutputLost marks a done task whose buffered output is gone but was
	// not needed when the loss was detected.
	OutputLost bool
}

// LiveJobs returns the IDs of admitted jobs that are neither done nor
// failed, in submission order.
func (c *Controller) LiveJobs() []string {
	var out []string
	for _, id := range c.order {
		if m := c.jobs[id]; m != nil && !m.done && !m.failed {
			out = append(out, id)
		}
	}
	return out
}

// Tasks returns snapshots of every task of a job in stage order (nil for
// unknown jobs). The order is deterministic: stages in DAG insertion
// order, tasks by index.
func (c *Controller) Tasks(job string) []TaskSnapshot {
	m := c.jobs[job]
	if m == nil {
		return nil
	}
	var out []TaskSnapshot
	for _, name := range m.job.StageNames() {
		st := m.stages[name]
		for i := range st.status {
			out = append(out, TaskSnapshot{
				Ref:        TaskRef{Job: job, Stage: name, Index: i},
				State:      TaskState(st.status[i]),
				Executor:   st.executor[i],
				Attempt:    st.attempt[i],
				Retries:    st.retries[i],
				Graphlet:   st.graphlet,
				OutputLost: st.lost[i],
			})
		}
	}
	return out
}

// QueueLen returns the number of graphlet resource requests waiting in the
// scheduler queue.
func (c *Controller) QueueLen() int { return len(c.queue) }

// CheckInvariants verifies the controller's safety and liveness
// invariants and returns one message per violation (empty when
// consistent). It is intended to run at event boundaries — after the
// caller has processed one controller event and drained its actions — and
// covers:
//
//   - task-state conservation: every task is exactly one of
//     pending/running/done, and per-stage done counters match;
//   - graphlet accounting: running counters match running tasks, the
//     pending queue of each graphlet contains exactly the pending tasks,
//     each exactly once;
//   - executor leases: no two running tasks share an executor, every
//     running task holds a known executor, the cluster's busy-executor
//     count balances against the controller's running-task count, and no
//     running task sits on a machine the controller knows has failed;
//   - scheduler liveness: a graphlet with pending work is either gated
//     (waiting on an incomplete producer stage), registered in the
//     request queue, or still has running tasks whose completion will
//     re-trigger scheduling — anything else is a stuck scheduler;
//   - recovery consistency: no stage with a pending consumer task has a
//     producer task whose output is recorded lost but still marked done
//     (the consumer would launch against data that no longer exists), and
//     the controller's disordered-run counter — which gates the
//     deadlock-breaking queue scan — matches the number of graphlet runs
//     actually flagged disordered;
//   - tenant accounting: the O(delta) per-tenant counters behind
//     TenantSnapshots match a full per-tenant recount of live jobs,
//     task states and queue entries.
func (c *Controller) CheckInvariants() []string {
	var v []string
	seenExec := make(map[cluster.ExecutorID]TaskRef)
	totalRunning := 0
	totalPending, totalDone, liveJobs := 0, 0, 0
	disordered := 0
	tenantRecount := make(map[string]*TenantCounts)
	recountFor := func(name string) *TenantCounts {
		tc := tenantRecount[name]
		if tc == nil {
			tc = &TenantCounts{Tenant: name}
			tenantRecount[name] = tc
		}
		return tc
	}

	for _, jobID := range c.order {
		m := c.jobs[jobID]
		if m == nil || m.done || m.failed {
			continue
		}
		liveJobs++
		ttc := recountFor(m.tenant)
		ttc.Jobs++
		queued := make(map[int]int) // graphlet -> queue entries
		for _, it := range c.queue {
			if it.job == jobID {
				queued[it.g]++
			}
		}
		pendingInQueue := make([]map[int]int, len(m.gruns)) // graphlet -> task key -> count
		for g, run := range m.gruns {
			pendingInQueue[g] = make(map[int]int)
			for _, ref := range run.pending {
				st := m.stages[ref.Stage]
				if st == nil || ref.Index < 0 || ref.Index >= len(st.status) {
					v = append(v, fmt.Sprintf("%s: graphlet %d pending queue holds invalid ref %s", jobID, g, ref))
					continue
				}
				pendingInQueue[g][taskKey(m, ref)]++
			}
		}

		for _, name := range m.job.StageNames() {
			st := m.stages[name]
			doneCount, runningCount := 0, 0
			for i := range st.status {
				ref := TaskRef{Job: jobID, Stage: name, Index: i}
				switch st.status[i] {
				case tPending:
					totalPending++
					ttc.Pending++
					if n := pendingInQueue[st.graphlet][taskKey(m, ref)]; n != 1 {
						v = append(v, fmt.Sprintf("%s: pending task %s appears %d times in graphlet %d's pending queue (want 1)", jobID, ref, n, st.graphlet))
					}
				case tRunning:
					runningCount++
					totalRunning++
					ttc.Running++
					e := st.executor[i]
					if e < 0 {
						v = append(v, fmt.Sprintf("%s: running task %s has no executor", jobID, ref))
						break
					}
					if prev, dup := seenExec[e]; dup {
						v = append(v, fmt.Sprintf("executor %d double-assigned to %s and %s", e, prev, ref))
					}
					seenExec[e] = ref
					if c.cl.Machine(c.cl.MachineOf(e)).Health == cluster.Failed {
						v = append(v, fmt.Sprintf("%s: task %s still running on failed machine %d", jobID, ref, c.cl.MachineOf(e)))
					}
					if n := pendingInQueue[st.graphlet][taskKey(m, ref)]; n != 0 {
						v = append(v, fmt.Sprintf("%s: running task %s also in pending queue", jobID, ref))
					}
				case tDone:
					doneCount++
					totalDone++
					ttc.Done++
					if n := pendingInQueue[st.graphlet][taskKey(m, ref)]; n != 0 {
						v = append(v, fmt.Sprintf("%s: done task %s also in pending queue", jobID, ref))
					}
				default:
					v = append(v, fmt.Sprintf("%s: task %s has invalid status %d", jobID, ref, st.status[i]))
				}
			}
			if doneCount != st.done {
				v = append(v, fmt.Sprintf("%s: stage %s done counter %d != %d done tasks", jobID, name, st.done, doneCount))
			}
			// Recovery consistency: pending consumers imply no
			// done-but-lost producer outputs.
			if pendingTasks(st) > 0 {
				for _, e := range m.job.In(name) {
					pst := m.stages[e.From]
					for i := range pst.status {
						if pst.status[i] == tDone && pst.lost[i] {
							v = append(v, fmt.Sprintf("%s: task %s/%s[%d] output lost but consumer stage %s has pending tasks", jobID, jobID, e.From, i, name))
						}
					}
				}
			}
		}

		// Per-graphlet accounting and liveness.
		for g, run := range m.gruns {
			if run.disordered {
				disordered++
				if len(run.pending) == 0 {
					v = append(v, fmt.Sprintf("%s: graphlet %d flagged disordered with empty pending queue", jobID, g))
				}
			}
			running := 0
			for _, name := range m.job.StageNames() {
				st := m.stages[name]
				if st.graphlet != g {
					continue
				}
				for i := range st.status {
					if st.status[i] == tRunning {
						running++
					}
				}
			}
			if running != run.running {
				v = append(v, fmt.Sprintf("%s: graphlet %d running counter %d != %d running tasks", jobID, g, run.running, running))
			}
			total := 0
			for _, n := range pendingInQueue[g] {
				total += n
			}
			if total != len(run.pending) {
				v = append(v, fmt.Sprintf("%s: graphlet %d pending queue inconsistent", jobID, g))
			}
			switch run.status {
			case gWaiting:
				gated := false
				for _, s := range run.gating {
					if !m.stages[s].complete() {
						gated = true
						break
					}
				}
				if !gated {
					v = append(v, fmt.Sprintf("%s: graphlet %d waiting but all gating stages complete", jobID, g))
				}
			case gQueued:
				if queued[g] == 0 {
					v = append(v, fmt.Sprintf("%s: graphlet %d marked queued but absent from request queue", jobID, g))
				}
			case gRunning, gDone:
				if len(run.pending) > 0 && running == 0 && queued[g] == 0 {
					v = append(v, fmt.Sprintf("%s: graphlet %d stuck: %d pending tasks, none running, not queued", jobID, g, len(run.pending)))
				}
			}
		}
	}

	if busy := c.cl.BusyExecutors(); busy != totalRunning {
		v = append(v, fmt.Sprintf("executor lease imbalance: cluster reports %d busy, controller runs %d tasks", busy, totalRunning))
	}
	if disordered != c.disorderedRuns {
		v = append(v, fmt.Sprintf("disordered-run counter %d != %d flagged graphlet runs", c.disorderedRuns, disordered))
	}
	// Snapshot aggregates: the incremental counters behind the O(1)
	// Snapshot() accessor must match a full recount of live-job state.
	if liveJobs != c.snapLive || totalPending != c.snapPending || totalRunning != c.snapRunning || totalDone != c.snapDone {
		v = append(v, fmt.Sprintf("snapshot counters (live=%d pending=%d running=%d done=%d) != recount (live=%d pending=%d running=%d done=%d)",
			c.snapLive, c.snapPending, c.snapRunning, c.snapDone, liveJobs, totalPending, totalRunning, totalDone))
	}
	// Per-tenant counters: every queue entry charges its job's tenant
	// (entries of dead jobs are filtered by failJob/restartJob, so the
	// lookup always resolves), then each maintained record must match the
	// recount — including records whose tenant retired (recount zero).
	for _, it := range c.queue {
		if m := c.jobs[it.job]; m != nil {
			recountFor(m.tenant).Queued++
		}
	}
	names := make([]string, 0, len(c.tenants)+len(tenantRecount))
	for name := range c.tenants {
		names = append(names, name)
	}
	for name := range tenantRecount {
		if _, tracked := c.tenants[name]; !tracked {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		var have, want TenantCounts
		have.Tenant, want.Tenant = name, name
		if tc := c.tenants[name]; tc != nil {
			have = *tc
		}
		if tc := tenantRecount[name]; tc != nil {
			want = *tc
		}
		if have != want {
			v = append(v, fmt.Sprintf("tenant %q counters %+v != recount %+v", name, have, want))
		}
	}
	return v
}

// pendingTasks counts a stage's pending tasks.
func pendingTasks(st *stageState) int {
	n := 0
	for _, s := range st.status {
		if s == tPending {
			n++
		}
	}
	return n
}

// taskKey flattens a TaskRef into a job-wide dense index for the pending
// multiset check (stage order × index).
func taskKey(m *monitor, ref TaskRef) int {
	key := 0
	for _, name := range m.job.StageNames() {
		if name == ref.Stage {
			return key + ref.Index
		}
		key += m.job.Stage(name).Tasks
	}
	return -1 - ref.Index
}
