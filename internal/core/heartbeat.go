package core

import "time"

// Failure-detection latencies (Section IV-A). Swift layers three
// mechanisms: executor self-reporting on process restart (fast), proxied
// heartbeats whose interval scales with cluster size, and machine health
// monitoring. The helpers below give drivers the corresponding detection
// delays; the controller itself is clock-free.

// HeartbeatInterval returns the heartbeat period for a cluster of the
// given machine count: "5s, 10s, 15s for small, medium, large cluster
// respectively".
func HeartbeatInterval(machines int) time.Duration {
	switch {
	case machines <= 200:
		return 5 * time.Second
	case machines <= 1000:
		return 10 * time.Second
	default:
		return 15 * time.Second
	}
}

// SelfReportDelay is how quickly a restarted executor process re-registers
// with Swift Admin and the failure handling starts — the lazy, passive
// channel that detects process death without waiting for a heartbeat.
const SelfReportDelay = 500 * time.Millisecond

// TaskErrorReportDelay is the latency for an executor to report a task
// that exited with an error (the executor itself is alive).
const TaskErrorReportDelay = 200 * time.Millisecond

// MachineFailureDetectionDelay returns how long a machine crash goes
// unnoticed: the heartbeat proxy stops answering and Swift Admin declares
// the machine dead after one missed interval.
func MachineFailureDetectionDelay(machines int) time.Duration {
	return HeartbeatInterval(machines)
}
