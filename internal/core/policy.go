package core

import (
	"swift/internal/sched"
)

// This file is the controller side of the pluggable policy pipeline: it
// flattens controller state into the pure sched.Item/Gang/View structs,
// executes JobOrder grant plans against the executor pool, and turns
// Preempt victims into whole-graphlet reclaims using the same per-task
// machinery as the deadlock breaker (abort → release → re-pend → cascade
// → requeue). The FIFO fast path in serveFIFO never enters this file.

// policyItems flattens the request queue for the policy. Entries whose
// job left the live set or whose graphlet is no longer actually queued
// carry Pending 0; policies skip them and servePolicy's sweep retires
// them exactly as the FIFO walk would.
func (c *Controller) policyItems() []sched.Item {
	items := make([]sched.Item, len(c.queue))
	for i, it := range c.queue {
		pi := sched.Item{Index: i, Job: it.job, Graphlet: it.g}
		if m := c.jobs[it.job]; m != nil && !m.failed && !m.done {
			pi.Tenant = m.tenant
			pi.Seq = m.seq
			if run := m.gruns[it.g]; run.status == gQueued {
				pi.Pending = len(run.pending)
			}
		}
		items[i] = pi
	}
	return items
}

// policyGangs flattens every graphlet currently holding executors, in
// submission order — the preemption candidate set.
func (c *Controller) policyGangs() []sched.Gang {
	gangs := make([]sched.Gang, 0, len(c.order))
	for _, id := range c.order {
		m := c.jobs[id]
		if m == nil || m.failed || m.done {
			continue
		}
		for g, run := range m.gruns {
			if run.running > 0 {
				gangs = append(gangs, sched.Gang{Job: id, Tenant: m.tenant,
					Graphlet: g, Running: run.running, Seq: m.seq})
			}
		}
	}
	return gangs
}

// policyView assembles the cluster/tenant state policies decide against.
func (c *Controller) policyView() sched.View {
	return sched.View{
		TotalExecutors: c.cl.NumExecutors(),
		FreeExecutors:  c.cl.FreeExecutors(),
		Tenants:        c.usageSnapshots(),
	}
}

// usageSnapshots projects the per-tenant counters into the policy's usage
// struct, sorted by tenant name (the View contract).
func (c *Controller) usageSnapshots() []sched.TenantUsage {
	tcs := c.TenantSnapshots()
	if len(tcs) == 0 {
		return nil
	}
	out := make([]sched.TenantUsage, len(tcs))
	for i, tc := range tcs {
		out[i] = sched.TenantUsage{Tenant: tc.Tenant, Running: tc.Running,
			Pending: tc.Pending, Queued: tc.Queued}
	}
	return out
}

// servePolicy serves one scheduling round under a non-FIFO policy: ask
// JobOrder for a grant plan, execute it against the pool, then compact
// the queue. A nil plan falls back to the FIFO walk, so a policy can
// defer rounds it has no opinion on.
func (c *Controller) servePolicy() {
	grants := c.policy.JobOrder(c.policyItems(), c.policyView())
	if grants == nil {
		c.serveFIFO()
		return
	}
	served := make([]bool, len(c.queue))
	for _, g := range grants {
		if c.cl.FreeExecutors() == 0 {
			break
		}
		if g.Index < 0 || g.Index >= len(served) || served[g.Index] {
			continue
		}
		if !c.serveItem(c.queue[g.Index], g.Cap) {
			served[g.Index] = true
		}
	}
	// Compact: drop entries the grants consumed. When executors remain —
	// the round visited everything it wanted — also retire dead and stale
	// entries the policy skipped, mirroring the FIFO walk (which visits
	// every entry whenever the pool stays wet).
	sweep := c.cl.FreeExecutors() > 0
	w := 0
	for i, it := range c.queue {
		drop := served[i]
		if !drop && sweep {
			m := c.jobs[it.job]
			if m == nil || m.failed || m.done {
				drop = true // defensive: failJob/restartJob filter the queue
			} else if run := m.gruns[it.g]; run.status != gQueued || len(run.pending) == 0 {
				if run.status == gQueued {
					run.status = gRunning
				}
				drop = true
			}
		}
		if drop {
			c.queueDropped(it)
			continue
		}
		c.queue[w] = it
		w++
	}
	c.queue = c.queue[:w]
}

// preemptRound asks the policy for graphlet victims when the pool is dry
// with queued work waiting, reclaims them, and reports whether anything
// was freed (so schedule() re-serves the queue). The per-tenant share
// picture justifying the reclaim is recorded to the obs stream — only on
// rounds that actually preempt, so non-preempting runs keep their event
// streams (and hashes) unchanged.
func (c *Controller) preemptRound() bool {
	items := c.policyItems()
	view := c.policyView()
	victims := c.policy.Preempt(items, c.policyGangs(), view)
	if len(victims) == 0 {
		return false
	}
	if c.opts.Obs.Enabled() {
		for _, s := range c.policy.Proportion(view) {
			c.opts.Obs.TenantShare(s.Tenant, s.Running, s.Deserved)
		}
	}
	reclaimed := false
	for _, v := range victims {
		if c.reclaimGang(v) {
			reclaimed = true
		}
	}
	return reclaimed
}

// reclaimGang preempts every running task of one graphlet and re-queues
// it, reusing the deadlock breaker's machinery: abort, release the
// executor, re-pend with the retry reason (the preemption is not the
// task's fault, so retry budgets are untouched), and cascade when the
// stage is non-idempotent. Reports whether any task was actually
// reclaimed.
func (c *Controller) reclaimGang(v sched.Victim) bool {
	m := c.jobs[v.Job]
	if m == nil || m.failed || m.done || v.Graphlet < 0 || v.Graphlet >= len(m.gruns) {
		return false
	}
	aborted := 0
	for _, s := range m.topo {
		st := m.stages[s]
		if st.graphlet != v.Graphlet {
			continue
		}
		for i := range st.status {
			if st.status[i] != tRunning {
				continue
			}
			ref := TaskRef{Job: m.job.ID, Stage: s, Index: i}
			c.emit(ActAbortTask{Task: ref, Executor: st.executor[i], Attempt: st.attempt[i]})
			c.releaseRunning(m, ref)
			c.markPending(m, ref, StartRetry)
			if !m.job.Stage(s).Idempotent {
				// Successors may have consumed streamed rows; they re-run
				// too (and any running ones are aborted by the cascade, so
				// this loop sees them as no longer running).
				c.cascade(m, s, v.Graphlet, map[string]bool{s: true})
			}
			aborted++
		}
	}
	if aborted == 0 {
		return false
	}
	c.requeue(m, v.Graphlet)
	c.reclaims++
	c.opts.Obs.GangReclaimed(m.job.ID, v.Graphlet, aborted, m.tenant)
	return true
}
