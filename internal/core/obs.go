package core

import "swift/internal/obs"

// Observability hooks. The controller records alongside emit(): every
// action the drivers see is also translated into a typed obs event, so the
// trace is a faithful mirror of the action stream. Detection-side events
// (task failures, lost outputs, machine death) have no Action — drivers
// already know, they reported them — and are recorded at the recovery
// entry points instead. A nil recorder (observability off) costs one nil
// check per call and cannot perturb any scheduling decision: the recorder
// only reads.

// String names the start reason for trace labels.
func (r StartReason) String() string {
	switch r {
	case StartFresh:
		return "fresh"
	case StartRetry:
		return "retry"
	case StartCascade:
		return "cascade"
	}
	return "invalid"
}

// String names the failure kind for trace labels.
func (k FailureKind) String() string {
	switch k {
	case FailCrash:
		return "crash"
	case FailAppError:
		return "app-error"
	}
	return "invalid"
}

// observe mirrors one emitted action into the recorder.
func (c *Controller) observe(a Action) {
	r := c.opts.Obs
	if r == nil {
		return
	}
	switch a := a.(type) {
	case ActStartTask:
		r.TaskStarted(a.Task.Job, a.Task.Stage, a.Task.Index, a.Attempt, a.Graphlet,
			int(a.Executor), a.Reason.String())
	case ActAbortTask:
		r.TaskAborted(a.Task.Job, a.Task.Stage, a.Task.Index, a.Attempt, int(a.Executor))
	case ActResend:
		r.Resend(a.To.Job, a.To.Stage, a.To.Index, a.FromStage)
	case ActJobCompleted:
		r.JobCompleted(a.Job)
	case ActJobFailed:
		r.JobFailed(a.Job, a.Reason)
	case ActJobRestarted:
		r.JobRestarted(a.Job)
	case ActMachineReadOnly:
		r.MachineReadOnly(int(a.Machine))
	case ActMachineHealthy:
		r.MachineHealthy(int(a.Machine))
	case ActShuffleDegraded:
		r.ShuffleDegraded(a.Job, a.From, a.To, a.Old.String(), a.New.String())
	case ActReplicate:
		machine := -1
		if len(a.Machines) > 0 {
			machine = int(a.Machines[0])
		}
		r.Replicated(a.Task.Job, a.Task.Stage, a.Task.Index, a.Attempt, len(a.Machines), machine)
	}
}

// Obs returns the controller's recorder (nil when observability is off).
func (c *Controller) Obs() *obs.Recorder { return c.opts.Obs }
