package core

import (
	"swift/internal/dag"
	"swift/internal/graphlet"
	"swift/internal/obs"
	"swift/internal/sched"
	"swift/internal/shuffle"
)

// PartitionPolicy turns a job DAG into schedulable graphlets. Swift's
// default is the shuffle-mode-aware Algorithm 1; the baselines substitute
// whole-job gang scheduling (JetScope), per-stage scheduling (Spark) or
// shuffle-size bubbles (Bubble Execution).
type PartitionPolicy func(*dag.Job) ([]*graphlet.Graphlet, error)

// GraphletPartition is Swift's partitioner (Section III-A).
func GraphletPartition(j *dag.Job) ([]*graphlet.Graphlet, error) { return graphlet.Partition(j) }

// WholeJobPartition treats the entire job as a single gang-scheduled unit,
// as JetScope and Impala do.
func WholeJobPartition(j *dag.Job) ([]*graphlet.Graphlet, error) {
	topo, err := j.TopoOrder()
	if err != nil {
		return nil, err
	}
	g := &graphlet.Graphlet{Index: 0, Stages: topo, Tasks: j.NumTasks()}
	return []*graphlet.Graphlet{g}, nil
}

// PerStagePartition schedules every stage independently, the Spark model.
func PerStagePartition(j *dag.Job) ([]*graphlet.Graphlet, error) {
	topo, err := j.TopoOrder()
	if err != nil {
		return nil, err
	}
	owner := make(map[string]int, len(topo))
	gs := make([]*graphlet.Graphlet, 0, len(topo))
	for i, s := range topo {
		owner[s] = i
		gs = append(gs, &graphlet.Graphlet{Index: i, Stages: []string{s}, Tasks: j.Stage(s).Tasks})
	}
	for _, g := range gs {
		seen := make(map[int]bool)
		for _, e := range j.In(g.Stages[0]) {
			d := owner[e.From]
			if !seen[d] {
				seen[d] = true
				g.DependsOn = append(g.DependsOn, d)
			}
		}
		for _, e := range j.Out(g.Stages[0]) {
			if len(e.To) > 0 {
				g.Trigger = g.Stages[0]
			}
		}
	}
	return gs, nil
}

// ShufflePolicy chooses the shuffle mode for one edge. crossing reports
// whether the edge crosses a graphlet boundary.
type ShufflePolicy func(edgeSize int, bytes int64, crossing bool) shuffle.Mode

// AdaptiveShuffle is Swift's runtime selection by shuffle edge size.
func AdaptiveShuffle(t shuffle.Thresholds) ShufflePolicy {
	return func(edgeSize int, _ int64, _ bool) shuffle.Mode { return t.Select(edgeSize) }
}

// FixedShuffle always uses one mode (the Fig. 12 ablation arms).
func FixedShuffle(m shuffle.Mode) ShufflePolicy {
	return func(int, int64, bool) shuffle.Mode { return m }
}

// DiskShuffle is the Spark-style file-based shuffle for every edge.
func DiskShuffle() ShufflePolicy {
	return func(int, int64, bool) shuffle.Mode { return shuffle.Disk }
}

// BubbleShuffle pipelines inside a bubble and spills to disk across bubble
// boundaries, the Bubble Execution model.
func BubbleShuffle() ShufflePolicy {
	return func(_ int, _ int64, crossing bool) shuffle.Mode {
		if crossing {
			return shuffle.Disk
		}
		return shuffle.Direct
	}
}

// AdaptiveLoad couples the shuffle package's load-observed selector with a
// deterministic probe. The probe is sampled once per job admission; drivers
// wire it to deterministic sources (the cluster's connection census, the
// obs registry's cache-worker gauges) so the same seed always samples the
// same load and the event stream stays reproducible.
type AdaptiveLoad struct {
	Selector shuffle.LoadSelector
	Probe    func() shuffle.Load
}

// RecoveryPolicy selects the failure-handling strategy.
type RecoveryPolicy int

const (
	// FineGrained is Swift's graphlet-based recovery (Section IV-B).
	FineGrained RecoveryPolicy = iota
	// JobRestart re-runs the whole job on any failure, the baseline the
	// paper compares against in Figs. 14 and 15.
	JobRestart
)

// Options configures a Controller. The zero value is not usable; call
// DefaultOptions and adjust.
type Options struct {
	Partition PartitionPolicy
	Shuffle   ShufflePolicy
	Recovery  RecoveryPolicy
	// StrictGang makes a graphlet wait until its full executor demand is
	// free before any task starts (JetScope semantics). Swift instead
	// accepts partial allocations and runs waves.
	StrictGang bool
	// StrictFIFO stops serving the request queue at the first entry that
	// cannot be fully served, so a large waiting job blocks everything
	// behind it — the head-of-line behaviour that makes JetScope's
	// running-executor curve in Fig. 10 "full of waiting and waste".
	// Swift and Bubble Execution backfill past stuck entries.
	StrictFIFO bool
	// ColdLaunch charges the per-stage package-download/executor-launch
	// cost to every first task wave (Spark semantics); Swift's executors
	// are pre-launched.
	ColdLaunch bool
	// MaxTaskRetries bounds recovery attempts per task before the job is
	// declared failed.
	MaxTaskRetries int
	// UnhealthyThreshold is the recent-task-failure count at which the
	// health monitor marks a machine read-only (Section IV-A).
	UnhealthyThreshold int
	// MaxGraphletExecutors caps executors granted to one graphlet in one
	// allocation round (0 = no cap), keeping a single huge graphlet from
	// starving the rest of the queue.
	MaxGraphletExecutors int
	// Policy is the pluggable scheduling policy: serve order and per-item
	// executor caps (JobOrder), per-tenant deserved shares (Proportion)
	// and gang-aware preemption (Preempt). Nil means sched.FIFO{}, the
	// legacy arrival-order behaviour, which the controller runs on a fast
	// path with zero policy overhead — provably byte-identical obs streams.
	Policy sched.Policy
	// Obs records spans and events for the observability plane. Nil (the
	// default) disables recording; the controller's decisions are identical
	// either way.
	Obs *obs.Recorder
	// ShuffleReplicas is the Cache-Worker replication factor R for finished
	// tasks' buffered outputs. Values ≤ 1 (the default) keep the
	// single-copy behaviour byte-identical to v1; with R > 1 the controller
	// tracks R machine homes per finished task, instructs drivers to copy
	// (ActReplicate), and a Cache Worker or machine loss promotes a
	// surviving replica instead of recomputing the producer.
	ShuffleReplicas int
	// AdaptiveLoad enables FuxiShuffle-style adaptive mode switching: the
	// load sampled at admission may override the static threshold choice
	// per edge (recorded as an EvShuffleAdapted event). Nil (the default)
	// disables overrides entirely.
	AdaptiveLoad *AdaptiveLoad
}

// DefaultOptions returns Swift's production configuration.
func DefaultOptions() Options {
	return Options{
		Partition:          GraphletPartition,
		Shuffle:            AdaptiveShuffle(shuffle.DefaultThresholds()),
		Recovery:           FineGrained,
		MaxTaskRetries:     3,
		UnhealthyThreshold: 8,
	}
}
