package core

import (
	"fmt"

	"swift/internal/cluster"
	"swift/internal/shuffle"
)

// TaskRef identifies one task instance.
type TaskRef struct {
	Job   string
	Stage string
	Index int
}

// String renders the reference like "q9/M1[3]".
func (t TaskRef) String() string { return fmt.Sprintf("%s/%s[%d]", t.Job, t.Stage, t.Index) }

// StartReason explains why a task is being started.
type StartReason int

const (
	// StartFresh is the first execution of a task.
	StartFresh StartReason = iota
	// StartRetry re-runs a failed task whose inputs must be re-read from
	// Cache Workers or re-sent by (unaffected) upstream tasks.
	StartRetry
	// StartCascade re-runs a successor of a non-idempotent failed task.
	StartCascade
)

// Action is an instruction from the controller to the runtime driver
// (the simulator or the real engine).
type Action interface{ isAction() }

// ActStartTask launches a task on an executor. Attempt distinguishes
// re-executions so stale completion notifications can be discarded.
type ActStartTask struct {
	Task     TaskRef
	Executor cluster.ExecutorID
	Graphlet int
	Attempt  int
	Reason   StartReason
}

// ActAbortTask cancels a running task (its attempt is obsolete).
type ActAbortTask struct {
	Task     TaskRef
	Executor cluster.ExecutorID
	Attempt  int
}

// ActResend tells surviving upstream tasks to replay their buffered output
// to a re-launched idempotent task ("T1 and T2 are notified to update their
// output channels to T4' and re-send the shuffle data without re-running").
type ActResend struct {
	To        TaskRef
	FromStage string
}

// ActJobCompleted reports successful job completion.
type ActJobCompleted struct{ Job string }

// ActJobFailed reports a job abandoned after an unrecoverable failure or
// retry exhaustion; Reason is human-readable.
type ActJobFailed struct {
	Job    string
	Reason string
}

// ActJobRestarted reports that the JobRestart recovery policy reset the
// job; drivers use it to account restart overhead.
type ActJobRestarted struct{ Job string }

// ActMachineReadOnly reports the health monitor draining a machine.
type ActMachineReadOnly struct{ Machine cluster.MachineID }

// ActMachineHealthy reports a machine re-admitted to the pool after a
// healthy window (read-only drain ended) or a reboot after a crash.
type ActMachineHealthy struct{ Machine cluster.MachineID }

// ActShuffleDegraded reports that a Cache-Worker-backed shuffle edge fell
// back to a mode that does not depend on the lost worker (Local/Remote →
// Direct) for the re-run after a Cache Worker crash.
type ActShuffleDegraded struct {
	Job      string
	From, To string
	Old, New shuffle.Mode
}

// ActReplicate tells the driver to copy a finished task's buffered output
// to extra Cache Workers for resilience. Machines lists the homes in
// serving order: the executor's own machine first, then the R−1 replica
// machines chosen on the healthy-machine ring.
type ActReplicate struct {
	Task     TaskRef
	Attempt  int
	Machines []cluster.MachineID
}

func (ActStartTask) isAction()       {}
func (ActAbortTask) isAction()       {}
func (ActResend) isAction()          {}
func (ActJobCompleted) isAction()    {}
func (ActJobFailed) isAction()       {}
func (ActJobRestarted) isAction()    {}
func (ActMachineReadOnly) isAction() {}
func (ActMachineHealthy) isAction()  {}
func (ActShuffleDegraded) isAction() {}
func (ActReplicate) isAction()       {}

// FailureKind classifies a task failure for recovery purposes.
type FailureKind int

const (
	// FailCrash is a recoverable infrastructure failure (process death,
	// machine crash, network partition).
	FailCrash FailureKind = iota
	// FailAppError is an application-logic failure (memory access
	// violation, missing table); re-running cannot help, so Swift
	// reports it and skips recovery (Section IV-C).
	FailAppError
)
