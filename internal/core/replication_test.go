package core

import (
	"testing"

	"swift/internal/cluster"
	"swift/internal/obs"
	"swift/internal/shuffle"
)

func (h *harness) replicates() []ActReplicate {
	var out []ActReplicate
	for _, a := range h.events {
		if r, ok := a.(ActReplicate); ok {
			out = append(out, r)
		}
	}
	return out
}

func (h *harness) degrades() []ActShuffleDegraded {
	var out []ActShuffleDegraded
	for _, a := range h.events {
		if d, ok := a.(ActShuffleDegraded); ok {
			out = append(out, d)
		}
	}
	return out
}

func TestReplicationDisabledByDefault(t *testing.T) {
	h := newHarness(t, 4, 4, DefaultOptions())
	h.submit(barrierJob("j", 3, 2))
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job did not complete")
	}
	if got := h.replicates(); len(got) != 0 {
		t.Fatalf("R<=1 emitted %d ActReplicate actions", len(got))
	}
}

func TestTaskFinishEmitsReplicate(t *testing.T) {
	opts := DefaultOptions()
	opts.ShuffleReplicas = 2
	h := newHarness(t, 4, 2, opts)
	h.submit(barrierJob("j", 3, 2))
	for i := 0; i < 3; i++ {
		h.finish(ref("j", "A", i))
	}
	reps := h.replicates()
	if len(reps) != 3 {
		t.Fatalf("got %d ActReplicate, want 3 (one per producer task)", len(reps))
	}
	for _, r := range reps {
		if len(r.Machines) != 2 {
			t.Errorf("replicate %s landed %d machines, want 2", r.Task, len(r.Machines))
		}
		seen := map[cluster.MachineID]bool{}
		for _, m := range r.Machines {
			if seen[m] {
				t.Errorf("replicate %s placed two copies on machine %d", r.Task, m)
			}
			seen[m] = true
		}
	}
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job did not complete")
	}
	// Sink stages have no consumers: their output goes to the client, so
	// B tasks must not have replicated.
	for _, r := range reps {
		if r.Task.Stage != "A" {
			t.Errorf("sink task %s replicated", r.Task)
		}
	}
}

// TestCacheWorkerLostServedFromReplica is the headline recovery win: the
// serving copy's Cache Worker dies, a replica survives, and the controller
// takes no recovery step — no re-run, no degrade, job completes.
func TestCacheWorkerLostServedFromReplica(t *testing.T) {
	opts := DefaultOptions()
	opts.ShuffleReplicas = 2
	h := newHarness(t, 4, 2, opts)
	h.submit(barrierJob("j", 2, 2))
	h.finish(ref("j", "A", 0))
	h.finish(ref("j", "A", 1))
	reps := h.replicates()
	if len(reps) != 2 {
		t.Fatalf("got %d replicates, want 2", len(reps))
	}
	startsBefore := len(h.starts)

	// Kill the Cache Worker holding A[0]'s serving copy.
	h.c.CacheWorkerLost(reps[0].Machines[0])
	h.drain()

	if got := h.c.ReplicaRecoveries(); got < 1 {
		t.Fatalf("ReplicaRecoveries = %d, want >= 1", got)
	}
	if got := h.c.OutputRecomputes(); got != 0 {
		t.Fatalf("OutputRecomputes = %d, want 0 (replica survived)", got)
	}
	if got := h.degrades(); len(got) != 0 {
		t.Fatalf("edges degraded despite surviving replica: %v", got)
	}
	for _, s := range h.starts[startsBefore:] {
		if s.Task.Stage == "A" {
			t.Fatalf("producer %s re-ran despite surviving replica", s.Task)
		}
	}
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job did not complete after replica failover")
	}
}

// TestAllReplicasLostFallsBackToRecompute: once every copy is gone the
// replica-aware path must behave like v1 — degrade the edges and re-run the
// producer whose output a pending consumer still needs.
func TestAllReplicasLostFallsBackToRecompute(t *testing.T) {
	opts := DefaultOptions()
	opts.ShuffleReplicas = 2
	// 2 machines × 1 executor: B's 4 tasks cannot all launch, so some stay
	// pending and the lost output is still needed (the "rerun" branch).
	h := newHarness(t, 2, 1, opts)
	h.submit(barrierJob("j", 2, 4))
	h.finish(ref("j", "A", 0))
	h.finish(ref("j", "A", 1))
	reps := h.replicates()
	if len(reps) != 2 || len(reps[0].Machines) != 2 {
		t.Fatalf("unexpected replication: %+v", reps)
	}

	// Both machines' Cache Workers die: every copy of every output is gone.
	h.c.CacheWorkerLost(0)
	h.drain()
	h.c.CacheWorkerLost(1)
	h.drain()

	if got := h.c.OutputRecomputes(); got == 0 {
		t.Fatal("no recompute recorded after losing every copy")
	}
	rerun := false
	for _, s := range h.starts {
		if s.Task.Stage == "A" && s.Reason == StartRetry {
			rerun = true
		}
	}
	if !rerun {
		t.Fatal("producer never re-ran after losing every copy")
	}
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job did not complete after recompute recovery")
	}
}

// TestMachineFailedConsultsReplicas: a machine crash destroys its Cache
// Worker too, but replicated outputs with surviving copies must not re-run.
func TestMachineFailedConsultsReplicas(t *testing.T) {
	opts := DefaultOptions()
	opts.ShuffleReplicas = 3
	h := newHarness(t, 4, 2, opts)
	h.submit(barrierJob("j", 2, 2))
	h.finish(ref("j", "A", 0))
	h.finish(ref("j", "A", 1))
	reps := h.replicates()
	startsBefore := len(h.starts)

	h.c.MachineFailed(reps[0].Machines[0])
	h.drain()

	if got := h.c.OutputRecomputes(); got != 0 {
		t.Fatalf("OutputRecomputes = %d after machine crash with replicas", got)
	}
	for _, s := range h.starts[startsBefore:] {
		if s.Task.Stage == "A" && s.Reason == StartRetry {
			t.Fatalf("producer %s re-ran despite surviving replicas", s.Task)
		}
	}
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job did not complete")
	}
}

func TestAdaptiveLoadOverridesStaticMode(t *testing.T) {
	rec := obs.New()
	opts := DefaultOptions()
	opts.Obs = rec
	probes := 0
	opts.AdaptiveLoad = &AdaptiveLoad{
		Selector: shuffle.LoadSelector{MaxIncastStreams: 10},
		Probe: func() shuffle.Load {
			probes++
			return shuffle.Load{IncastStreams: 500, MemHeadroom: 0.9}
		},
	}
	h := newHarness(t, 4, 4, opts)
	// Edge size 3×2=6: statically Direct, escalated to Remote under incast.
	h.submit(pipelineJob("j", 3, 2))
	if got := h.c.EdgeMode("j", "A", "B"); got != shuffle.Remote {
		t.Fatalf("EdgeMode = %v, want Remote under incast pressure", got)
	}
	if probes != 1 {
		t.Errorf("probe sampled %d times, want once per admission", probes)
	}
	adapted := 0
	for _, e := range rec.Events() {
		if e.Kind == obs.EvShuffleAdapted {
			adapted++
			if e.Label != "Direct->Remote|incast" {
				t.Errorf("adapt label = %q", e.Label)
			}
		}
	}
	if adapted != 1 {
		t.Errorf("recorded %d EvShuffleAdapted events, want 1", adapted)
	}
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job did not complete")
	}
}

func TestAdaptiveLoadNilNeverOverrides(t *testing.T) {
	h := newHarness(t, 4, 4, DefaultOptions())
	h.submit(pipelineJob("j", 3, 2))
	if got := h.c.EdgeMode("j", "A", "B"); got != shuffle.Direct {
		t.Fatalf("EdgeMode = %v, want Direct with no adaptive selector", got)
	}
}
